package arcreg_test

// Cross-module integration tests: every register implementation is driven
// through the verified workload, its complete execution history recorded
// and judged by the linearizability checker — the executable form of the
// paper's §4 proof obligations, applied uniformly to ARC, both ablated
// variants, and all three baselines, with and without CPU-steal
// injection.

import (
	"fmt"
	"sync"
	"testing"

	"arcreg/internal/harness"
	"arcreg/internal/history"
	"arcreg/internal/membuf"
	"arcreg/internal/register"
	"arcreg/internal/steal"
	"arcreg/internal/workload"
)

// checkAtomic runs writers+readers with full history recording and fails
// the test on any atomicity violation.
func checkAtomic(t *testing.T, alg harness.Algorithm, readers, writes, readsPer, size int, stealFrac float64) {
	t.Helper()
	if size < membuf.MinPayload {
		size = membuf.MinPayload
	}
	seed := make([]byte, size)
	membuf.Encode(seed, 0)
	reg, err := harness.NewRegister(alg, register.Config{
		MaxReaders:   readers,
		MaxValueSize: size,
		Initial:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := steal.NewInjector(steal.Config{Fraction: stealFrac, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	var (
		clock = history.NewClock()
		logs  = make([]*history.Log, readers+1)
		wg    sync.WaitGroup
		mu    sync.Mutex
		errs  []error
	)
	logs[0] = history.NewLog(writes)
	for i := 1; i <= readers; i++ {
		logs[i] = history.NewLog(readsPer)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		vw := workload.NewVerifiedWriter(reg.Writer(), size, clock, logs[0])
		vcpu := inj.VCPU(0)
		for i := 0; i < writes; i++ {
			if err := vw.Do(); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("writer: %w", err))
				mu.Unlock()
				return
			}
			vcpu.Tick()
		}
	}()
	for r := 0; r < readers; r++ {
		rd, err := reg.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(proc int, rd register.Reader) {
			defer wg.Done()
			defer rd.Close()
			vr := workload.NewVerifiedReader(rd, proc, size, clock, logs[1+proc])
			vcpu := inj.VCPU(1 + proc)
			for i := 0; i < readsPer; i++ {
				if err := vr.Do(); err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("reader %d: %w", proc, err))
					mu.Unlock()
					return
				}
				vcpu.Tick()
			}
		}(r, rd)
	}
	wg.Wait()
	for _, err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	res := history.Merge(logs...).Check()
	if !res.Ok() {
		for _, v := range res.Violations {
			t.Errorf("%s: %s", alg, v)
		}
		t.Fatalf("%s: %d atomicity violations over %d operations", alg, len(res.Violations), res.Checked)
	}
	t.Logf("%s: %d operations atomic", alg, res.Checked)
}

func TestAtomicityAllAlgorithms(t *testing.T) {
	algs := []harness.Algorithm{
		harness.AlgARC, harness.AlgARCNoFast, harness.AlgARCNoHint,
		harness.AlgRF, harness.AlgPeterson, harness.AlgLock,
		harness.AlgSeqlock, harness.AlgLeftRight,
	}
	writes, reads := 20_000, 40_000
	if testing.Short() {
		writes, reads = 4_000, 8_000
	}
	for _, alg := range algs {
		t.Run(string(alg), func(t *testing.T) {
			checkAtomic(t, alg, 3, writes, reads, 256, 0)
		})
	}
}

// The virtualized regime (Figure 2's point): steal injection perturbs
// timing wildly; atomicity must be unaffected for every algorithm.
func TestAtomicityUnderCPUSteal(t *testing.T) {
	if testing.Short() {
		t.Skip("steal stress skipped in -short")
	}
	for _, alg := range []harness.Algorithm{harness.AlgARC, harness.AlgRF, harness.AlgPeterson, harness.AlgLock} {
		t.Run(string(alg), func(t *testing.T) {
			checkAtomic(t, alg, 3, 3_000, 5_000, 256, 0.4)
		})
	}
}

// Large values stretch copy windows (more chances to observe tearing) —
// the 32KB panel of the paper's figures, as a correctness test.
func TestAtomicityLargeValues(t *testing.T) {
	if testing.Short() {
		t.Skip("large-value stress skipped in -short")
	}
	for _, alg := range []harness.Algorithm{harness.AlgARC, harness.AlgPeterson} {
		t.Run(string(alg), func(t *testing.T) {
			checkAtomic(t, alg, 2, 2_000, 3_000, 32<<10, 0)
		})
	}
}

// Many readers on one ARC register: beyond RF's 58-reader bound — the
// paper's scalability headline, exercised functionally.
func TestARCBeyondRFReaderLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("many-reader stress skipped in -short")
	}
	const readers = 128 // > 58, far beyond RF's architectural cap
	checkAtomic(t, harness.AlgARC, readers, 2_000, 500, 64, 0)
}
