package arcreg

import (
	"encoding"

	"arcreg/internal/codec"
)

// Codec converts between Go values and the byte strings registers
// store; it is the one encoding layer every typed surface (New,
// Typed, TypedMN, MapOf) shares. Implement it to plug a custom wire
// format into all of them at once.
//
// Decode is handed a slice that may alias a register slot recycled as
// soon as Decode returns: implementations must not retain it or any
// sub-slice (encoding/json and encoding/gob already copy; a decoder
// that keeps sub-slices must copy them first). Raw is the one
// deliberate exception.
type Codec[T any] = codec.Codec[T]

// JSON returns the encoding/json codec — the zero-configuration choice
// for sharing configuration structs, snapshots and similar values, and
// the default codec of New.
func JSON[T any]() Codec[T] { return codec.JSON[T]() }

// Gob returns the encoding/gob codec — the binary stdlib choice for Go
// value graphs (maps, slices, nested structs) without hand-written
// marshalers: denser and faster than JSON for most struct payloads, at
// the cost of a per-blob type preamble and Go-only wire compatibility.
// Every blob is self-contained (fresh encoder per call), and
// encoding/gob copies everything it decodes, satisfying the register
// aliasing contract.
func Gob[T any]() Codec[T] { return codec.Gob[T]() }

// Raw returns the zero-copy []byte passthrough codec: Encode and Decode
// are the identity, so Get returns a direct view of the register slot.
// Values obtained through it follow zero-copy view semantics — valid
// only until the reading handle's next operation, never to be modified.
func Raw() Codec[[]byte] { return codec.Raw() }

// String returns the codec for plain string values. Both directions
// copy, so decoded strings are immune to slot recycling.
func String() Codec[string] { return codec.String() }

// Binary returns a codec for types implementing
// encoding.BinaryMarshaler and encoding.BinaryUnmarshaler on their
// pointer receiver: Binary[Point, *Point](). The stdlib
// BinaryUnmarshaler contract requires implementations to copy data they
// retain, which is exactly the register aliasing contract.
func Binary[T any, PT interface {
	*T
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}]() Codec[T] {
	return codec.Binary[T, PT]()
}
