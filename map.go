package arcreg

import (
	"fmt"

	"arcreg/internal/codec"
	"arcreg/internal/regmap"
)

// ErrKeyNotFound is returned by MapReader.Get for a key no Set created.
var ErrKeyNotFound = regmap.ErrKeyNotFound

// MapConfig parametrizes a Map.
type MapConfig struct {
	// Shards is the number of key partitions, rounded up to a power of
	// two (default 8). Writes to different shards may run concurrently;
	// see Map.Set.
	Shards int
	// MaxReaders is N, the number of concurrently live MapReader
	// handles.
	MaxReaders int
	// MaxValueSize bounds values in bytes (default 4096).
	MaxValueSize int
	// DynamicValues makes every Set allocate an exact-size buffer (the
	// paper's §3.3 variant) instead of pre-allocating MaxReaders+2
	// MaxValueSize buffers per key — the right choice for maps with many
	// keys holding small values.
	DynamicValues bool
}

// MapReadStats counts a MapReader's work: Ops (Gets), FastPath (Gets
// served with zero RMW instructions), RMW (summed over the directory and
// per-key handles), plus Misses and DirRefreshes.
type MapReadStats = regmap.ReadStats

// MapWriteStats counts the map writer side's work: value publishes,
// directory publications and keys created.
type MapWriteStats = regmap.WriteStats

// Map is a sharded, keyed store where every key is its own wait-free ARC
// (1,N) register and every shard publishes its key directory through a
// directory ARC register. Key lookup, key enumeration and value reads
// are wait-free zero-copy register reads; adding a key is one directory
// re-publish by that shard's writer. A Get of an unchanged hot key costs
// two atomic loads — zero RMW instructions — regardless of map size (see
// internal/regmap for the protocol).
type Map struct {
	m *regmap.Map
}

// NewMap constructs a Map.
func NewMap(cfg MapConfig) (*Map, error) {
	m, err := regmap.New(regmap.Config{
		Shards:        cfg.Shards,
		MaxReaders:    cfg.MaxReaders,
		MaxValueSize:  cfg.MaxValueSize,
		DynamicValues: cfg.DynamicValues,
	})
	if err != nil {
		return nil, err
	}
	return &Map{m: m}, nil
}

// Set publishes val under key, creating the key if needed (keys are
// never removed — this is a snapshot map). Each shard is single-writer:
// call Set from one goroutine, or partition keys by ShardOf to write
// shards in parallel.
func (m *Map) Set(key string, val []byte) error { return m.m.Set(key, val) }

// ShardOf reports which shard key routes to (deterministic FNV-1a
// routing, stable across Map instances with equal shard counts).
func (m *Map) ShardOf(key string) int { return m.m.ShardOf(key) }

// Shards reports the shard count.
func (m *Map) Shards() int { return m.m.Shards() }

// Len reports the number of keys; safe concurrently with Sets.
func (m *Map) Len() int { return m.m.Len() }

// MaxReaders reports the MapReader capacity N.
func (m *Map) MaxReaders() int { return m.m.MaxReaders() }

// MaxValueSize reports the per-value byte bound.
func (m *Map) MaxValueSize() int { return m.m.MaxValueSize() }

// WriteStats reports aggregate publish-side counters. Collect at
// quiescence.
func (m *Map) WriteStats() MapWriteStats { return m.m.WriteStats() }

// NewReader allocates a read endpoint (one per goroutine, up to
// MaxReaders).
func (m *Map) NewReader() (*MapReader, error) {
	r, err := m.m.NewReader()
	if err != nil {
		return nil, err
	}
	return &MapReader{r: r}, nil
}

// MapReader is a per-goroutine read endpoint over the whole map. It
// caches, per shard, the decoded directory and the per-key reader
// handles, so repeated Gets of unchanged keys are two atomic loads.
type MapReader struct {
	r *regmap.Reader
}

// Get returns a zero-copy view of key's freshest value, or
// ErrKeyNotFound. The view is valid until this handle's next Get/GetCopy
// of the same key or Close; Gets of other keys do not invalidate it.
// Callers must not modify the returned slice.
func (r *MapReader) Get(key string) ([]byte, error) { return r.r.Get(key) }

// GetCopy copies key's freshest value into dst and returns its length
// (ErrBufferTooSmall with the required length if dst cannot hold it).
func (r *MapReader) GetCopy(key string, dst []byte) (int, error) { return r.r.GetCopy(key, dst) }

// Fresh reports whether the handle's last Get of key is still current —
// one to two atomic loads, no RMW; false for keys this handle never Get.
func (r *MapReader) Fresh(key string) bool { return r.r.Fresh(key) }

// Keys lists the map's keys (each shard's listing individually atomic;
// no cross-shard snapshot implied).
func (r *MapReader) Keys() ([]string, error) { return r.r.Keys() }

// Len reports the number of keys visible to this handle.
func (r *MapReader) Len() (int, error) { return r.r.Len() }

// ReadStats reports the handle's counters; collect after the owning
// goroutine has quiesced.
func (r *MapReader) ReadStats() MapReadStats { return r.r.Stats() }

// Close releases the handle and every register handle it cached.
func (r *MapReader) Close() error { return r.r.Close() }

// MapOf wraps a Map with an encoding, turning the byte-oriented keyed
// store into a typed one — the Typed equivalent at map scale. Encoding
// and decoding run outside the registers' critical operations, so they
// may be arbitrarily expensive without affecting other threads'
// progress.
type MapOf[T any] struct {
	m *Map
	c Codec[T]
}

// NewCodecMap builds a typed store over m with the given codec — the
// keyed counterpart of New's WithCodec. Any Codec[T] plugs in: JSON,
// Binary, String, Raw, or a custom implementation.
func NewCodecMap[T any](m *Map, c Codec[T]) *MapOf[T] {
	return &MapOf[T]{m: m, c: c}
}

// NewMapOf wraps m with the given encoding. enc must produce at most
// MaxValueSize bytes; dec must not retain its argument (the slice may
// alias a register slot recycled after the decode returns).
//
// Deprecated: implement Codec[T] (or use a built-in codec) and pass it
// to NewCodecMap. NewMapOf delegates to the same codec layer.
func NewMapOf[T any](m *Map, enc func(T) ([]byte, error), dec func([]byte) (T, error)) *MapOf[T] {
	return NewCodecMap(m, codec.Funcs(enc, dec))
}

// NewJSONMap builds a Map-backed typed store using encoding/json — the
// zero-configuration path for keyed configuration and snapshot sharing.
func NewJSONMap[T any](cfg MapConfig) (*MapOf[T], error) {
	m, err := NewMap(cfg)
	if err != nil {
		return nil, err
	}
	return NewCodecMap(m, JSON[T]()), nil
}

// Map exposes the underlying byte map (stats, capacity, raw access).
func (t *MapOf[T]) Map() *Map { return t.m }

// Set publishes a typed value under key (shard-single-writer, like
// Map.Set).
func (t *MapOf[T]) Set(key string, v T) error {
	blob, err := t.c.Encode(v)
	if err != nil {
		return fmt.Errorf("arcreg: encode %q: %w", key, err)
	}
	return t.m.Set(key, blob)
}

// Codec reports the encoding in use.
func (t *MapOf[T]) Codec() Codec[T] { return t.c }

// NewReader allocates a typed read endpoint (counted against the map's
// MaxReaders).
func (t *MapOf[T]) NewReader() (*MapOfReader[T], error) {
	r, err := t.m.NewReader()
	if err != nil {
		return nil, err
	}
	return &MapOfReader[T]{r: r, c: t.c}, nil
}

// MapOfReader is a per-goroutine typed read endpoint.
type MapOfReader[T any] struct {
	r *MapReader
	c Codec[T]
}

// Get returns the freshest typed value under key (decoding straight from
// the register slot, no intermediate copy), or ErrKeyNotFound.
func (r *MapOfReader[T]) Get(key string) (T, error) {
	v, err := r.r.Get(key)
	if err != nil {
		var zero T
		return zero, err
	}
	return r.c.Decode(v)
}

// Reader exposes the underlying byte reader (freshness probes, stats).
func (r *MapOfReader[T]) Reader() *MapReader { return r.r }

// Close releases the handle.
func (r *MapOfReader[T]) Close() error { return r.r.Close() }
