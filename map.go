package arcreg

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"
	"time"

	"arcreg/internal/codec"
	"arcreg/internal/regmap"
)

// ErrKeyNotFound is returned by MapReader.Get for a key no Set created
// (or a deleted one), and by Map.Delete for an absent key.
var ErrKeyNotFound = regmap.ErrKeyNotFound

// ErrDirectoryFull is returned by Map.Set when a shard's live keys
// alone exceed the directory ceiling. Mere churn (deleted keys bloating
// the log) never surfaces it: appends compact the shard automatically
// when the log outgrows its live set, so ErrDirectoryFull means the
// map's live population is genuinely too large for the directory, not
// that it has been running too long. Match with errors.Is — the error
// is wrapped with the shard and occupancy context.
var ErrDirectoryFull = regmap.ErrDirectoryFull

// ErrShardCorrupt is returned by MapReader operations when a reader's
// decode of a shard directory fails validation (torn or damaged
// publication). The latch is per-reader and sticky only while the
// directory is quiet: any later genuine publication — an ordinary Set
// or Delete on that shard, or a Map.Compact — repairs the reader, which
// rebases onto the published log and resumes. Parked Watch/WatchAll
// iterators observe the episode as one (zero, ErrShardCorrupt) event
// and continue after repair. Match with errors.Is.
var ErrShardCorrupt = regmap.ErrShardCorrupt

// MapConfig parametrizes a byte-level Map (see NewByteMap). The typed
// entry point NewMap takes the same parameters as functional options
// (WithShards, WithReaders, WithMaxValueSize, WithDynamicValues).
type MapConfig struct {
	// Shards is the number of key partitions, rounded up to a power of
	// two (default 8). Writes to different shards may run concurrently;
	// see Map.Set.
	Shards int
	// MaxReaders is N, the number of concurrently live MapReader
	// handles.
	MaxReaders int
	// MaxValueSize bounds values in bytes (default 4096).
	MaxValueSize int
	// DynamicValues makes every Set allocate an exact-size buffer (the
	// paper's §3.3 variant) instead of pre-allocating MaxReaders+2
	// MaxValueSize buffers per key — the right choice for maps with many
	// keys holding small values.
	DynamicValues bool
	// Trace enables the always-on flight recorder (see WithTrace):
	// per-domain event rings threading publish→deliver spans, with zero
	// RMW and zero allocation added to the instrumented hot paths.
	Trace bool
	// TraceRingEvents is the per-ring event capacity when Trace is set
	// (default 1024, rounded up to a power of two).
	TraceRingEvents int
	// TraceLanes bounds the traced watch-session pool when Trace is set
	// (default 64); sessions beyond it run untraced.
	TraceLanes int
}

// MapReadStats counts a MapReader's work: Ops (Gets), FastPath (Gets
// served with zero RMW instructions), RMW (summed over the directory and
// per-key handles), plus Misses, DirRefreshes, Snapshots and
// SnapshotRetries.
type MapReadStats = regmap.ReadStats

// MapWriteStats counts the map writer side's work: value publishes,
// directory publications, keys created and tombstones published.
type MapWriteStats = regmap.WriteStats

// Map is a sharded, keyed store where every key is its own wait-free ARC
// (1,N) register and every shard publishes its key directory through a
// directory ARC register. Key lookup, key enumeration and value reads
// are wait-free zero-copy register reads; adding or deleting a key is
// one directory re-publish by that shard's writer. A Get of an unchanged
// hot key costs two atomic loads — zero RMW instructions — regardless of
// map size, and Snapshot yields an atomic point-in-time view of all live
// keys (see internal/regmap for the protocol).
type Map struct {
	m *regmap.Map
}

// NewByteMap constructs a byte-level Map. Most callers want the typed
// NewMap instead; NewByteMap is the raw-bytes path, parallel to NewARC
// and NewMN.
func NewByteMap(cfg MapConfig) (*Map, error) {
	m, err := regmap.New(regmap.Config{
		Shards:          cfg.Shards,
		MaxReaders:      cfg.MaxReaders,
		MaxValueSize:    cfg.MaxValueSize,
		DynamicValues:   cfg.DynamicValues,
		Trace:           cfg.Trace,
		TraceRingEvents: cfg.TraceRingEvents,
		TraceLanes:      cfg.TraceLanes,
	})
	if err != nil {
		return nil, err
	}
	return &Map{m: m}, nil
}

// Set publishes val under key, creating (or re-creating) the key if
// needed. Each shard is single-writer: call Set and Delete from one
// goroutine, or partition keys by ShardOf to write shards in parallel.
func (m *Map) Set(key string, val []byte) error { return m.m.Set(key, val) }

// Delete removes key by publishing a tombstone through its shard's
// directory register, recycling the key's slot for a later creation; a
// re-created key gets a fresh value register, so deleted values never
// resurrect. Returns ErrKeyNotFound for an absent key. Same
// single-writer-per-shard contract as Set. Concurrent Gets linearize
// before the delete (returning the last value) or after it (missing);
// views readers already hold stay valid.
func (m *Map) Delete(key string) error { return m.m.Delete(key) }

// ShardOf reports which shard key routes to (deterministic FNV-1a
// routing, stable across Map instances with equal shard counts).
func (m *Map) ShardOf(key string) int { return m.m.ShardOf(key) }

// Shards reports the shard count.
func (m *Map) Shards() int { return m.m.Shards() }

// Len reports the number of live keys; safe concurrently with Sets and
// Deletes (no cross-shard atomicity implied — use Snapshot for that).
func (m *Map) Len() int { return m.m.Len() }

// MaxReaders reports the MapReader capacity N.
func (m *Map) MaxReaders() int { return m.m.MaxReaders() }

// MaxValueSize reports the per-value byte bound.
func (m *Map) MaxValueSize() int { return m.m.MaxValueSize() }

// Caps reports the map's capability set — the per-key ARC registers'
// full surface: zero-copy views, freshness probing, stats on both
// sides, wait-free reads and writes. Snapshot is the one operation with
// a weaker progress property (retries on observed concurrent
// publications; see MapReader.Snapshot).
func (m *Map) Caps() Caps {
	return Caps{
		ZeroCopyView:  true,
		FreshProbe:    true,
		ReadStats:     true,
		WriteStats:    true,
		WaitFreeRead:  true,
		WaitFreeWrite: true,
		Watchable:     true,
	}
}

// WriteStats reports aggregate publish-side counters. Collect at
// quiescence.
func (m *Map) WriteStats() MapWriteStats { return m.m.WriteStats() }

// Stats returns the map's observability tree: whole-map totals (live
// keys, publications, directory bytes, compactions), a "watchers"
// child aggregating the backpressure ledgers of live Watch/WatchAll
// iterators (lag, conflation, wakeup latency), and one child per
// shard. Each shard node is internally consistent even while that
// shard compacts — its counters are collected inside a validated
// publication window, so cgen always equals compactions within a node
// (cross-shard totals are per-shard instants, like Len). Collecting
// the tree only loads: no RMW on any register path, nothing added to
// writer cost. Safe to poll continuously (see Observe).
func (m *Map) Stats() Stats { return m.m.Stats() }

// Tracer returns the map's flight recorder, nil unless the map was
// built with WithTrace (or MapConfig.Trace). Walk it for reconstructed
// publish→deliver spans (Spans, WriteJSON, WriteText) and per-stage
// latency breakdowns (Breakdown, Stats) — all walker-side: snapshots
// are seqlock-validated against the live rings, and the recording
// domains never block or retry for a walker.
func (m *Map) Tracer() *Tracer { return m.m.Tracer() }

// Compact rewrites every shard's directory log down to its live keys
// and publishes the result as a new compaction epoch. Appends already
// compact automatically when a shard's log outgrows its live set, so
// routine use never needs Compact; call it to reclaim directory memory
// eagerly (after bulk deletes), or to force readers latched on a
// corrupt shard to repair without waiting for the next write. Same
// single-writer-per-shard contract as Set and Delete. Readers rebase
// onto the new epoch on their next operation; views and watch
// subscriptions they hold survive the bump (see DESIGN.md §9).
func (m *Map) Compact() error { return m.m.Compact() }

// NewReader allocates a read endpoint (one per goroutine, up to
// MaxReaders).
func (m *Map) NewReader() (*MapReader, error) {
	r, err := m.m.NewReader()
	if err != nil {
		return nil, err
	}
	return &MapReader{r: r}, nil
}

// MapReader is a per-goroutine read endpoint over the whole map. It
// caches, per shard, the decoded directory and the per-key reader
// handles, so repeated Gets of unchanged keys are two atomic loads.
type MapReader struct {
	r *regmap.Reader
}

// Get returns a zero-copy view of key's freshest value, or
// ErrKeyNotFound. The view is valid until this handle's next
// Get/GetCopy/Snapshot of the same key or Close; Gets of other keys do
// not invalidate it, and neither does the key's deletion. Callers must
// not modify the returned slice.
func (r *MapReader) Get(key string) ([]byte, error) { return r.r.Get(key) }

// GetFresh is Get plus a change report: changed is false exactly when
// the view is the same publication of the same key incarnation the
// handle's previous Get/GetFresh of key returned. Pollers use it to
// skip decoding when directory churn did not touch their key.
func (r *MapReader) GetFresh(key string) (v []byte, changed bool, err error) {
	return r.r.GetFresh(key)
}

// GetCopy copies key's freshest value into dst and returns its length
// (ErrBufferTooSmall with the required length if dst cannot hold it).
func (r *MapReader) GetCopy(key string, dst []byte) (int, error) { return r.r.GetCopy(key, dst) }

// Fresh reports whether the handle's last Get of key is still current —
// one to two atomic loads, no RMW; false for keys this handle never Get
// and for deleted keys.
func (r *MapReader) Fresh(key string) bool { return r.r.Fresh(key) }

// Keys lists the map's live keys (each shard's listing individually
// atomic; no cross-shard snapshot implied — use Snapshot for that).
func (r *MapReader) Keys() ([]string, error) { return r.r.Keys() }

// Len reports the number of live keys visible to this handle.
func (r *MapReader) Len() (int, error) { return r.r.Len() }

// Snapshot returns an atomic point-in-time copy of every live key and
// its value: there is an instant during the call at which the map's
// state was exactly the returned one, across all shards (DESIGN.md §7
// gives the linearization argument). Values are copies owned by the
// caller.
//
// Snapshot executes no RMW instructions and, at steady state, reads
// every key through ARC's one-load fast path in a single pass; a shard
// is re-collected only when a concurrent publication is observed.
// Snapshot counts as a Get of every live key, so views previously
// returned by Get may be invalidated.
func (r *MapReader) Snapshot() (map[string][]byte, error) { return r.r.Snapshot() }

// ReadStats reports the handle's counters; collect after the owning
// goroutine has quiesced.
func (r *MapReader) ReadStats() MapReadStats { return r.r.Stats() }

// MapDelta is one WatchAll event at the byte level: the keys whose
// values changed since the previous event (the full snapshot on the
// first one, marked Full) and the keys deleted since then. Values are
// copies owned by the caller.
type MapDelta = regmap.Delta

// Watch returns an iterator over one key's publications: the value
// current when iteration starts (or ErrKeyNotFound if absent), then
// every change, parking between changes — an idle watcher costs
// nothing, and sibling-key traffic on the shard does not wake it.
// Deletions are part of the stream: a delete yields
// (nil, ErrKeyNotFound) once and the watch continues, so a later
// re-creation yields the fresh incarnation's value (never the deleted
// bytes). Delivery is at-least-once per publication with latest-value
// conflation; the iterator ends on consumer break, ctx done (yielding
// ctx's error) or a terminal register error. Watch owns the handle
// while it runs.
func (r *MapReader) Watch(ctx context.Context, key string) iter.Seq2[[]byte, error] {
	return r.r.Watch(ctx, key)
}

// WatchAll returns an iterator over whole-map changes as a
// snapshot-delta stream: the first event is a full linearizable
// Snapshot (MapDelta.Full), every later event the keys that changed
// and the keys that disappeared between consecutive snapshots. Each
// event derives from one atomic Snapshot, so applying the deltas in
// order reconstructs exactly the certified sequence of map states.
// Between events the watcher parks on the map-level gate. WatchAll
// owns the handle while it runs; like Snapshot, each collect counts as
// a Get of every live key.
func (r *MapReader) WatchAll(ctx context.Context) iter.Seq2[MapDelta, error] {
	return r.r.WatchAll(ctx)
}

// Close releases the handle and every register handle it cached.
func (r *MapReader) Close() error { return r.r.Close() }

// MapOf wraps a Map with an encoding, turning the byte-oriented keyed
// store into a typed one — the keyed counterpart of Reg[T]. Encoding
// and decoding run outside the registers' critical operations, so they
// may be arbitrarily expensive without affecting other threads'
// progress.
type MapOf[T any] struct {
	m *Map
	c Codec[T]
}

// NewMap constructs a typed keyed store — the map-scale counterpart of
// New, sharing its option set. The defaults are 8 shards, the JSON
// codec, N = GOMAXPROCS readers and 4KB values:
//
//	m, err := arcreg.NewMap[Endpoint](
//		arcreg.WithShards(16),
//		arcreg.WithReaders(64),
//		arcreg.WithMaxValueSize(1<<10),
//		arcreg.WithCodec(arcreg.Binary[Endpoint]()),
//	)
//
// Register-only options (WithAlgorithm, WithWriters, WithInitial,
// WithARC, …) are rejected: the map is built from ARC registers and is
// single-writer per shard by construction.
func NewMap[T any](opts ...Option) (*MapOf[T], error) {
	cfg := config{alg: ARC, writers: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	switch {
	case cfg.alg != ARC:
		return nil, fmt.Errorf("arcreg: NewMap is built from ARC registers; WithAlgorithm(%s) does not apply", cfg.alg)
	case cfg.writers > 1:
		return nil, fmt.Errorf("arcreg: NewMap(WithWriters(%d)): the map is single-writer per shard; use WithShards and partition keys by ShardOf", cfg.writers)
	case cfg.hasInitial || cfg.initialRaw != nil:
		return nil, fmt.Errorf("arcreg: WithInitial/WithInitialBytes do not apply to NewMap (a key's first Set is its initial value)")
	case len(cfg.arcOpts) > 0:
		return nil, fmt.Errorf("arcreg: WithARC does not apply to NewMap")
	case cfg.noFreshGate || cfg.noEpochGate:
		return nil, fmt.Errorf("arcreg: WithoutFreshGate/WithoutEpochGate apply to the (M,N) composition, not NewMap")
	}
	cd := JSON[T]()
	if cfg.codec != nil {
		var ok bool
		if cd, ok = cfg.codec.(Codec[T]); !ok {
			return nil, fmt.Errorf("arcreg: WithCodec value is a %T, not a Codec[%T]", cfg.codec, *new(T))
		}
	}
	if cfg.readers == 0 {
		cfg.readers = runtime.GOMAXPROCS(0)
	}
	m, err := NewByteMap(MapConfig{
		Shards:          cfg.shards,
		MaxReaders:      cfg.readers,
		MaxValueSize:    cfg.maxValueSize,
		DynamicValues:   cfg.dynamicValues,
		Trace:           cfg.trace,
		TraceRingEvents: cfg.traceRings,
		TraceLanes:      cfg.traceLanes,
	})
	if err != nil {
		return nil, err
	}
	return NewCodecMap(m, cd), nil
}

// NewCodecMap builds a typed store over an existing byte map with the
// given codec. Most callers want NewMap, which constructs the map and
// the codec binding in one call; NewCodecMap remains for wrapping a
// NewByteMap the caller already holds.
func NewCodecMap[T any](m *Map, c Codec[T]) *MapOf[T] {
	return &MapOf[T]{m: m, c: c}
}

// NewMapOf wraps m with the given encoding. enc must produce at most
// MaxValueSize bytes; dec must not retain its argument (the slice may
// alias a register slot recycled after the decode returns).
//
// Deprecated: implement Codec[T] (or use a built-in codec) and pass it
// to NewMap(WithCodec(c)) or NewCodecMap. NewMapOf delegates to the
// same codec layer.
func NewMapOf[T any](m *Map, enc func(T) ([]byte, error), dec func([]byte) (T, error)) *MapOf[T] {
	return NewCodecMap(m, codec.Funcs(enc, dec))
}

// NewJSONMap builds a Map-backed typed store using encoding/json.
//
// Deprecated: use NewMap, whose default codec is JSON:
// NewMap[T](WithShards(cfg.Shards), WithReaders(cfg.MaxReaders),
// WithMaxValueSize(cfg.MaxValueSize)).
func NewJSONMap[T any](cfg MapConfig) (*MapOf[T], error) {
	m, err := NewByteMap(cfg)
	if err != nil {
		return nil, err
	}
	return NewCodecMap(m, JSON[T]()), nil
}

// Map exposes the underlying byte map (stats, capacity, raw access).
func (t *MapOf[T]) Map() *Map { return t.m }

// Set publishes a typed value under key (shard-single-writer, like
// Map.Set).
func (t *MapOf[T]) Set(key string, v T) error {
	blob, err := t.c.Encode(v)
	if err != nil {
		return fmt.Errorf("arcreg: encode %q: %w", key, err)
	}
	return t.m.Set(key, blob)
}

// Delete removes key (see Map.Delete).
func (t *MapOf[T]) Delete(key string) error { return t.m.Delete(key) }

// Len reports the number of live keys (see Map.Len).
func (t *MapOf[T]) Len() int { return t.m.Len() }

// Shards reports the shard count.
func (t *MapOf[T]) Shards() int { return t.m.Shards() }

// ShardOf reports which shard key routes to (see Map.ShardOf).
func (t *MapOf[T]) ShardOf(key string) int { return t.m.ShardOf(key) }

// Caps reports the map's capability set (see Map.Caps).
func (t *MapOf[T]) Caps() Caps { return t.m.Caps() }

// WriteStats reports aggregate publish-side counters; collect at
// quiescence.
func (t *MapOf[T]) WriteStats() MapWriteStats { return t.m.WriteStats() }

// Stats returns the map's observability tree (see Map.Stats).
func (t *MapOf[T]) Stats() Stats { return t.m.Stats() }

// Compact rewrites every shard's directory down to its live keys (see
// Map.Compact).
func (t *MapOf[T]) Compact() error { return t.m.Compact() }

// Codec reports the encoding in use.
func (t *MapOf[T]) Codec() Codec[T] { return t.c }

// NewReader allocates a typed read endpoint (counted against the map's
// MaxReaders).
func (t *MapOf[T]) NewReader() (*MapOfReader[T], error) {
	r, err := t.m.NewReader()
	if err != nil {
		return nil, err
	}
	return &MapOfReader[T]{r: r, c: t.c}, nil
}

// MapOfReader is a per-goroutine typed read endpoint with the full
// capability surface of the byte reader: decoding reads, freshness
// probes, enumeration, the atomic snapshot, and a Values poll iterator.
type MapOfReader[T any] struct {
	r *MapReader
	c Codec[T]
}

// Get returns the freshest typed value under key (decoding straight from
// the register slot, no intermediate copy), or ErrKeyNotFound.
func (r *MapOfReader[T]) Get(key string) (T, error) {
	v, err := r.r.Get(key)
	if err != nil {
		var zero T
		return zero, err
	}
	return r.c.Decode(v)
}

// Fresh reports whether the handle's last Get of key is still current
// (see MapReader.Fresh).
func (r *MapOfReader[T]) Fresh(key string) bool { return r.r.Fresh(key) }

// Keys lists the map's live keys (see MapReader.Keys).
func (r *MapOfReader[T]) Keys() ([]string, error) { return r.r.Keys() }

// Len reports the number of live keys visible to this handle.
func (r *MapOfReader[T]) Len() (int, error) { return r.r.Len() }

// Snapshot returns an atomic point-in-time view of every live key,
// decoded — the typed counterpart of MapReader.Snapshot (same
// linearization guarantee and cost model).
func (r *MapOfReader[T]) Snapshot() (map[string]T, error) {
	return SnapshotOf[T](r.r, r.c)
}

// ReadStats reports the handle's counters (see MapReader.ReadStats).
func (r *MapOfReader[T]) ReadStats() MapReadStats { return r.r.ReadStats() }

// Values returns a poll iterator over one key's publications: it yields
// the value current when iteration starts, then every change it
// observes, sleeping `every` between polls (0 yields the scheduler
// instead). Between changes a poll is the map's freshness probe — one
// to two atomic loads, no RMW, no decoding. Like all reads, polling
// observes the freshest value: rapid successive Sets may be observed as
// one change. If the key is deleted (or never existed), the iterator
// yields (zero, ErrKeyNotFound) and stops; resume by ranging again
// after the key reappears.
//
// Values owns the handle while it runs: do not touch the MapOfReader
// from other goroutines (handles are single-goroutine, like every
// reader in this package).
func (r *MapOfReader[T]) Values(key string, every time.Duration) iter.Seq2[T, error] {
	return func(yield func(T, error) bool) {
		first := true
		for {
			// The Fresh probe gates the re-read; GetFresh's change report
			// gates the decode and the yield, so directory churn on other
			// keys of the shard cannot fabricate duplicate observations.
			if first || !r.r.Fresh(key) {
				raw, changed, err := r.r.GetFresh(key)
				if err != nil {
					var zero T
					yield(zero, err)
					return
				}
				if first || changed {
					v, err := r.c.Decode(raw)
					if !yield(v, err) || err != nil {
						return
					}
					first = false
				}
			}
			if every > 0 {
				time.Sleep(every)
			} else {
				runtime.Gosched()
			}
		}
	}
}

// Watch returns an iterator over one key's publications, decoded: the
// typed counterpart of MapReader.Watch. It yields the value current
// when iteration starts, then every change, parking between changes.
// A deletion yields (zero, ErrKeyNotFound) once and the watch
// continues — a later re-creation yields the new incarnation's value;
// break on the miss if deletion should end the subscription. Delivery
// is at-least-once with latest-value conflation (a slow consumer sees
// fewer, newer values and never blocks the writer). The iterator ends
// on consumer break, ctx done (yielding ctx's error), a decode error,
// or a terminal register error. Watch owns the handle while it runs.
func (r *MapOfReader[T]) Watch(ctx context.Context, key string) iter.Seq2[T, error] {
	return func(yield func(T, error) bool) {
		var zero T
		for raw, err := range r.r.Watch(ctx, key) {
			if err != nil {
				if errors.Is(err, ErrKeyNotFound) {
					if !yield(zero, err) {
						return
					}
					continue
				}
				yield(zero, err)
				return
			}
			v, derr := r.c.Decode(raw)
			if !yield(v, derr) || derr != nil {
				return
			}
		}
	}
}

// MapDeltaOf is one typed WatchAll event: created/changed keys decoded
// to T, deleted keys by name, Full marking the initial whole-map
// snapshot.
type MapDeltaOf[T any] struct {
	// Values holds created keys and keys whose value changed, decoded.
	// On the first event it is the complete snapshot.
	Values map[string]T
	// Deleted lists keys present in the previous event and absent now,
	// sorted.
	Deleted []string
	// Full marks the first event (Values is the whole map).
	Full bool
}

// WatchAll returns an iterator over whole-map changes as a decoded
// snapshot-delta stream — the typed counterpart of MapReader.WatchAll
// (same atomicity: every event derives from one linearizable
// Snapshot). The iterator ends on consumer break, ctx done (yielding
// ctx's error), a decode error, or a terminal register error. WatchAll
// owns the handle while it runs.
func (r *MapOfReader[T]) WatchAll(ctx context.Context) iter.Seq2[MapDeltaOf[T], error] {
	return func(yield func(MapDeltaOf[T], error) bool) {
		for d, err := range r.r.WatchAll(ctx) {
			if err != nil {
				yield(MapDeltaOf[T]{}, err)
				return
			}
			out := MapDeltaOf[T]{
				Values:  make(map[string]T, len(d.Values)),
				Deleted: d.Deleted,
				Full:    d.Full,
			}
			for k, raw := range d.Values {
				v, derr := r.c.Decode(raw)
				if derr != nil {
					yield(MapDeltaOf[T]{}, fmt.Errorf("arcreg: decode %q: %w", k, derr))
					return
				}
				out.Values[k] = v
			}
			if !yield(out, nil) {
				return
			}
		}
	}
}

// Reader exposes the underlying byte reader (raw views, stats).
func (r *MapOfReader[T]) Reader() *MapReader { return r.r }

// Close releases the handle.
func (r *MapOfReader[T]) Close() error { return r.r.Close() }

// SnapshotOf decodes an atomic Snapshot through c — the generic escape
// hatch for reading one byte map under several typed views. Most
// callers use MapOfReader.Snapshot, which supplies the store's own
// codec.
func SnapshotOf[T any](r *MapReader, c Codec[T]) (map[string]T, error) {
	raw, err := r.Snapshot()
	if err != nil {
		return nil, err
	}
	out := make(map[string]T, len(raw))
	for k, v := range raw {
		t, err := c.Decode(v)
		if err != nil {
			return nil, fmt.Errorf("arcreg: decode %q: %w", k, err)
		}
		out[k] = t
	}
	return out, nil
}
