package arcreg

import (
	"encoding/json"
	"fmt"
)

// Typed wraps a Register with an encoding, turning the byte-oriented
// multi-word register into a typed single-value store: one goroutine
// Sets, many goroutines Get, all with the underlying register's progress
// guarantees (wait-free end to end when built over ARC).
//
// The encode/decode functions run outside the register's critical
// operations — encoding happens before the wait-free write, decoding
// after the wait-free read — so they may be arbitrarily expensive without
// affecting other threads' progress.
type Typed[T any] struct {
	reg Register
	enc func(T) ([]byte, error)
	dec func([]byte) (T, error)
}

// NewTyped wraps reg with the given encoding. enc must produce at most
// reg.MaxValueSize() bytes. dec must not retain its argument: the slice
// may alias a register slot that is recycled after the decode returns
// (encoding/json and encoding/gob satisfy this; a decoder that keeps
// sub-slices must copy them).
func NewTyped[T any](reg Register, enc func(T) ([]byte, error), dec func([]byte) (T, error)) *Typed[T] {
	return &Typed[T]{reg: reg, enc: enc, dec: dec}
}

// NewJSON builds an ARC-backed typed register using encoding/json — the
// zero-configuration path for sharing configuration structs, snapshots
// and similar values.
func NewJSON[T any](cfg Config) (*Typed[T], error) {
	if cfg.Initial == nil {
		var zero T
		blob, err := json.Marshal(zero)
		if err != nil {
			return nil, fmt.Errorf("arcreg: encoding zero value: %w", err)
		}
		if cfg.MaxValueSize != 0 && len(blob) > cfg.MaxValueSize {
			return nil, fmt.Errorf("arcreg: zero value needs %d bytes > MaxValueSize %d", len(blob), cfg.MaxValueSize)
		}
		cfg.Initial = blob
	}
	reg, err := NewARC(cfg)
	if err != nil {
		return nil, err
	}
	return NewTyped(reg,
		func(v T) ([]byte, error) { return json.Marshal(v) },
		func(p []byte) (T, error) {
			var v T
			err := json.Unmarshal(p, &v)
			return v, err
		}), nil
}

// Register exposes the underlying byte register (for stats, capacity
// queries, or mixing typed and raw access).
func (t *Typed[T]) Register() Register { return t.reg }

// Set publishes a new value. Single-goroutine, like Writer.Write.
func (t *Typed[T]) Set(v T) error {
	blob, err := t.enc(v)
	if err != nil {
		return fmt.Errorf("arcreg: encode: %w", err)
	}
	return t.reg.Writer().Write(blob)
}

// TypedReader is a per-goroutine typed read endpoint.
type TypedReader[T any] struct {
	rd     Reader
	viewer Viewer
	dec    func([]byte) (T, error)
	buf    []byte
}

// NewReader allocates a typed reader handle (one per goroutine, counted
// against the register's MaxReaders).
func (t *Typed[T]) NewReader() (*TypedReader[T], error) {
	rd, err := t.reg.NewReader()
	if err != nil {
		return nil, err
	}
	tr := &TypedReader[T]{rd: rd, dec: t.dec}
	if v, ok := rd.(Viewer); ok {
		tr.viewer = v // decode straight from the slot, no copy
	} else {
		tr.buf = make([]byte, t.reg.MaxValueSize())
	}
	return tr, nil
}

// Get returns the freshest value.
func (r *TypedReader[T]) Get() (T, error) {
	var zero T
	if r.viewer != nil {
		v, err := r.viewer.View()
		if err != nil {
			return zero, err
		}
		return r.dec(v)
	}
	n, err := r.rd.Read(r.buf)
	if err != nil {
		return zero, err
	}
	return r.dec(r.buf[:n])
}

// Close releases the handle.
func (r *TypedReader[T]) Close() error { return r.rd.Close() }
