package arcreg

import "arcreg/internal/codec"

// Typed wraps a Register with an encoding, turning the byte-oriented
// multi-word register into a typed single-value store.
//
// Deprecated: Typed predates the unified facade and survives as a thin
// wrapper; New returns the same capability surface (and more) as
// *Reg[T] directly. It remains fully functional.
type Typed[T any] struct {
	*Reg[T]
}

// NewTyped wraps reg with the given encoding. enc must produce at most
// reg.MaxValueSize() bytes. dec must not retain its argument: the slice
// may alias a register slot that is recycled after the decode returns
// (encoding/json and encoding/gob satisfy this; a decoder that keeps
// sub-slices must copy them).
//
// Deprecated: implement Codec[T] (or use a built-in codec) and pass it
// to New with WithCodec. NewTyped delegates to the same codec layer.
func NewTyped[T any](reg Register, enc func(T) ([]byte, error), dec func([]byte) (T, error)) *Typed[T] {
	return &Typed[T]{wrapRegister(reg, codec.Funcs(enc, dec))}
}

// NewJSON builds an ARC-backed typed register using encoding/json. When
// cfg.Initial is nil the JSON encoding of T's zero value seeds the
// register, so a Get before the first Set decodes cleanly.
//
// Deprecated: use New, whose defaults are exactly this (ARC + JSON +
// zero-value seed):
//
//	reg, err := arcreg.New[T](
//		arcreg.WithReaders(cfg.MaxReaders),
//		arcreg.WithMaxValueSize(cfg.MaxValueSize),
//	)
func NewJSON[T any](cfg Config) (*Typed[T], error) {
	cd := JSON[T]()
	if cfg.Initial == nil {
		blob, err := codec.ZeroInitial(cd, cfg.MaxValueSize)
		if err != nil {
			return nil, err
		}
		cfg.Initial = blob
	}
	reg, err := NewARC(cfg)
	if err != nil {
		return nil, err
	}
	return &Typed[T]{wrapRegister(reg, cd)}, nil
}
