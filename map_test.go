package arcreg_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"arcreg"
	"arcreg/internal/regmap"
)

// TestMapBasic covers the public Map surface: Set/Get/GetCopy round
// trips, key enumeration, shard routing, misses, freshness probes.
func TestMapBasic(t *testing.T) {
	m, err := arcreg.NewByteMap(arcreg.MapConfig{Shards: 4, MaxReaders: 2, MaxValueSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 4 || m.MaxReaders() != 2 || m.MaxValueSize() != 128 {
		t.Fatalf("config round-trip: %d/%d/%d", m.Shards(), m.MaxReaders(), m.MaxValueSize())
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	if _, err := rd.Get("missing"); !errors.Is(err, arcreg.ErrKeyNotFound) {
		t.Fatalf("miss error = %v", err)
	}
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("cfg/%d", i)
		if err := m.Set(k, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
		if m.ShardOf(k) < 0 || m.ShardOf(k) >= m.Shards() {
			t.Fatalf("ShardOf out of range for %q", k)
		}
	}
	if m.Len() != 32 {
		t.Fatalf("Len = %d", m.Len())
	}
	v, err := rd.Get("cfg/7")
	if err != nil || string(v) != "value-7" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if !rd.Fresh("cfg/7") {
		t.Error("just-read key not fresh")
	}
	dst := make([]byte, 4)
	if n, err := rd.GetCopy("cfg/7", dst); !errors.Is(err, arcreg.ErrBufferTooSmall) || n != len("value-7") {
		t.Fatalf("short GetCopy = %d, %v", n, err)
	}
	dst = make([]byte, 64)
	n, err := rd.GetCopy("cfg/7", dst)
	if err != nil || string(dst[:n]) != "value-7" {
		t.Fatalf("GetCopy = %q, %v", dst[:n], err)
	}
	keys, err := rd.Keys()
	if err != nil || len(keys) != 32 {
		t.Fatalf("Keys = %d, %v", len(keys), err)
	}
	if n, err := rd.Len(); err != nil || n != 32 {
		t.Fatalf("Reader.Len = %d, %v", n, err)
	}
	// Key creation seeds the value register via its initial content (no
	// Write op); only updates count as value publishes.
	if err := m.Set("cfg/7", []byte("updated")); err != nil {
		t.Fatal(err)
	}
	ws := m.WriteStats()
	if ws.Keys != 32 || ws.Value.Ops != 1 || ws.Directory.Ops != 32 {
		t.Fatalf("WriteStats = %+v", ws)
	}
}

// TestMapHotGetZeroRMW is the acceptance criterion at the public layer:
// a Get of an unchanged hot key reports ~0 rmw/get through map-level
// ReadStats — the fresh gate preserved through the map.
func TestMapHotGetZeroRMW(t *testing.T) {
	m, err := arcreg.NewByteMap(arcreg.MapConfig{MaxReaders: 1, MaxValueSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := m.Set(fmt.Sprintf("key-%06d", i), bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, err := rd.Get("key-000007"); err != nil {
		t.Fatal(err)
	}
	base := rd.ReadStats()
	const hot = 10_000
	for i := 0; i < hot; i++ {
		if _, err := rd.Get("key-000007"); err != nil {
			t.Fatal(err)
		}
	}
	st := rd.ReadStats()
	if st.RMW != base.RMW {
		t.Errorf("hot Gets executed %d RMW instructions, want 0", st.RMW-base.RMW)
	}
	if got := st.FastPath - base.FastPath; got != hot {
		t.Errorf("fast-path Gets = %d, want %d", got, hot)
	}
}

// TestMapOfJSON covers the typed wrapper end to end.
func TestMapOfJSON(t *testing.T) {
	type endpoint struct {
		Host string
		Port int
	}
	tm, err := arcreg.NewJSONMap[endpoint](arcreg.MapConfig{MaxReaders: 2, MaxValueSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := tm.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, err := rd.Get("svc/a"); !errors.Is(err, arcreg.ErrKeyNotFound) {
		t.Fatalf("typed miss = %v", err)
	}
	if err := tm.Set("svc/a", endpoint{Host: "10.0.0.1", Port: 443}); err != nil {
		t.Fatal(err)
	}
	if err := tm.Set("svc/b", endpoint{Host: "10.0.0.2", Port: 80}); err != nil {
		t.Fatal(err)
	}
	got, err := rd.Get("svc/a")
	if err != nil || got != (endpoint{Host: "10.0.0.1", Port: 443}) {
		t.Fatalf("typed Get = %+v, %v", got, err)
	}
	if err := tm.Set("svc/a", endpoint{Host: "10.0.0.9", Port: 443}); err != nil {
		t.Fatal(err)
	}
	got, err = rd.Get("svc/a")
	if err != nil || got.Host != "10.0.0.9" {
		t.Fatalf("typed Get after update = %+v, %v", got, err)
	}
	if tm.Map().Len() != 2 {
		t.Fatalf("underlying Len = %d", tm.Map().Len())
	}
	if rd.Reader().ReadStats().Ops == 0 {
		t.Error("typed reads not counted in map ReadStats")
	}
}

// TestMapLifecyclePublic covers Delete and Snapshot through the public
// byte surface: miss-after-delete, recreate-after-delete without
// resurrection, snapshot-vs-model agreement, and stats.
func TestMapLifecyclePublic(t *testing.T) {
	m, err := arcreg.NewByteMap(arcreg.MapConfig{Shards: 4, MaxReaders: 2, MaxValueSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	for i := 0; i < 10; i++ {
		if err := m.Set(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Delete("k3"); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("k3"); !errors.Is(err, arcreg.ErrKeyNotFound) {
		t.Fatalf("double Delete = %v", err)
	}
	if _, err := rd.Get("k3"); !errors.Is(err, arcreg.ErrKeyNotFound) {
		t.Fatalf("Get after Delete = %v", err)
	}
	if m.Len() != 9 {
		t.Fatalf("Len = %d", m.Len())
	}
	if err := m.Set("k3", []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	if v, err := rd.Get("k3"); err != nil || string(v) != "reborn" {
		t.Fatalf("Get after recreate = %q, %v", v, err)
	}
	snap, err := rd.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 10 {
		t.Fatalf("snapshot has %d keys", len(snap))
	}
	if string(snap["k3"]) != "reborn" || string(snap["k7"]) != "v7" {
		t.Fatalf("snapshot contents wrong: %q / %q", snap["k3"], snap["k7"])
	}
	ws := m.WriteStats()
	if ws.Deletes != 1 || ws.Keys != 11 {
		t.Fatalf("WriteStats = %+v", ws)
	}
	if st := rd.ReadStats(); st.Snapshots != 1 {
		t.Fatalf("ReadStats.Snapshots = %d", st.Snapshots)
	}
	if !m.Caps().WaitFreeRead || !m.Caps().FreshProbe {
		t.Fatalf("Map.Caps = %+v", m.Caps())
	}
}

// TestMapCompactPublic covers the facade compaction surface: Compact
// reclaims directory memory after bulk deletes, the Compactions and
// DirBytes write-side counters report it, readers stay consistent
// across the epoch bump, and a live population genuinely past the
// directory ceiling surfaces ErrDirectoryFull through errors.Is.
func TestMapCompactPublic(t *testing.T) {
	m, err := arcreg.NewByteMap(arcreg.MapConfig{Shards: 2, MaxReaders: 2, MaxValueSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	for i := 0; i < 64; i++ {
		if err := m.Set(fmt.Sprintf("bulk/%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rd.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 64; i++ {
		if err := m.Delete(fmt.Sprintf("bulk/%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := m.WriteStats().DirBytes
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	ws := m.WriteStats()
	if ws.Compactions != 2 { // one epoch per shard
		t.Fatalf("WriteStats.Compactions = %d, want 2", ws.Compactions)
	}
	if ws.DirBytes >= before {
		t.Fatalf("DirBytes %d not reclaimed (was %d)", ws.DirBytes, before)
	}
	for i := 0; i < 8; i++ {
		if v, err := rd.Get(fmt.Sprintf("bulk/%d", i)); err != nil || string(v) != "x" {
			t.Fatalf("Get(bulk/%d) across compaction = %q, %v", i, v, err)
		}
	}
	if _, err := rd.Get("bulk/33"); !errors.Is(err, arcreg.ErrKeyNotFound) {
		t.Fatalf("deleted key after compaction = %v", err)
	}
	if n, err := rd.Len(); err != nil || n != 8 {
		t.Fatalf("Len across compaction = %d, %v", n, err)
	}
	// The typed wrapper exposes the same operation.
	tm, err := arcreg.NewMap[int](arcreg.WithReaders(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Set("n", 1); err != nil {
		t.Fatal(err)
	}
	if err := tm.Compact(); err != nil {
		t.Fatal(err)
	}
	if tm.WriteStats().Compactions == 0 {
		t.Fatal("typed Compact published no epochs")
	}
}

// TestMapDirectoryFullPublic shrinks the directory ceiling (test hook)
// and verifies the facade surfaces ErrDirectoryFull for a live set the
// directory cannot hold — and only for that: churn alone auto-compacts.
func TestMapDirectoryFullPublic(t *testing.T) {
	restore := regmap.SetDirCapacity(64)
	defer restore()
	m, err := arcreg.NewByteMap(arcreg.MapConfig{Shards: 1, MaxReaders: 1, MaxValueSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	var full error
	for i := 0; i < 64 && full == nil; i++ {
		full = m.Set(fmt.Sprintf("live-key-%02d", i), []byte("v"))
	}
	if !errors.Is(full, arcreg.ErrDirectoryFull) {
		t.Fatalf("overfilling live set = %v, want ErrDirectoryFull", full)
	}
	// Churn on the keys that fit keeps succeeding indefinitely: the log
	// auto-compacts instead of exhausting the ceiling.
	for round := 0; round < 50; round++ {
		if err := m.Delete("live-key-00"); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := m.Set("live-key-00", []byte("v")); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if m.WriteStats().Compactions == 0 {
		t.Fatal("ceiling churn triggered no auto-compaction")
	}
}

// TestNewMapOptions covers the typed options-parity constructor: the
// accepted option set, its defaults, the typed lifecycle (Set/Get/
// Delete/Snapshot/Values), and rejection of register-only options.
func TestNewMapOptions(t *testing.T) {
	type endpoint struct {
		Host string
		Port int
	}
	tm, err := arcreg.NewMap[endpoint](
		arcreg.WithShards(4),
		arcreg.WithReaders(2),
		arcreg.WithMaxValueSize(256),
	)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Shards() != 4 || tm.Map().MaxReaders() != 2 || tm.Map().MaxValueSize() != 256 {
		t.Fatalf("config round-trip: %d/%d/%d", tm.Shards(), tm.Map().MaxReaders(), tm.Map().MaxValueSize())
	}
	if tm.Codec().Name() != "json" {
		t.Fatalf("default codec = %q", tm.Codec().Name())
	}
	rd, err := tm.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if err := tm.Set("svc/a", endpoint{Host: "10.0.0.1", Port: 443}); err != nil {
		t.Fatal(err)
	}
	if err := tm.Set("svc/b", endpoint{Host: "10.0.0.2", Port: 80}); err != nil {
		t.Fatal(err)
	}
	got, err := rd.Get("svc/a")
	if err != nil || got != (endpoint{Host: "10.0.0.1", Port: 443}) {
		t.Fatalf("typed Get = %+v, %v", got, err)
	}
	if !rd.Fresh("svc/a") {
		t.Error("just-read key not fresh")
	}
	if n, err := rd.Len(); err != nil || n != 2 {
		t.Fatalf("typed Len = %d, %v", n, err)
	}
	if keys, err := rd.Keys(); err != nil || len(keys) != 2 {
		t.Fatalf("typed Keys = %v, %v", keys, err)
	}
	snap, err := rd.Snapshot()
	if err != nil || len(snap) != 2 || snap["svc/b"].Port != 80 {
		t.Fatalf("typed Snapshot = %+v, %v", snap, err)
	}
	if err := tm.Delete("svc/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Get("svc/b"); !errors.Is(err, arcreg.ErrKeyNotFound) {
		t.Fatalf("typed Get after Delete = %v", err)
	}
	if tm.Len() != 1 {
		t.Fatalf("typed Len after Delete = %d", tm.Len())
	}
	// SnapshotOf re-decodes the byte snapshot under a second view.
	raw, err := arcreg.SnapshotOf[endpoint](rd.Reader(), arcreg.JSON[endpoint]())
	if err != nil || len(raw) != 1 || raw["svc/a"].Host != "10.0.0.1" {
		t.Fatalf("SnapshotOf = %+v, %v", raw, err)
	}

	// Register-only options are rejected with a pointer at the right API.
	for name, opts := range map[string][]arcreg.Option{
		"algorithm": {arcreg.WithAlgorithm(arcreg.RF)},
		"writers":   {arcreg.WithWriters(2)},
		"initial":   {arcreg.WithInitial(endpoint{})},
		"arc":       {arcreg.WithARC(arcreg.WithDynamicBuffers())},
		"freshgate": {arcreg.WithoutFreshGate()},
		"bad-codec": {arcreg.WithCodec(arcreg.String())},
	} {
		if _, err := arcreg.NewMap[endpoint](opts[0]); err == nil {
			t.Errorf("NewMap accepted register-only option %s", name)
		}
	}
	// And the map-only options are rejected by New.
	if _, err := arcreg.New[endpoint](arcreg.WithShards(4)); err == nil {
		t.Error("New accepted WithShards")
	}
	if _, err := arcreg.New[endpoint](arcreg.WithDynamicValues()); err == nil {
		t.Error("New accepted WithDynamicValues")
	}
}

// TestMapValuesPoll covers the per-key poll iterator: initial value,
// observed changes in order, and termination on deletion.
func TestMapValuesPoll(t *testing.T) {
	tm, err := arcreg.NewMap[int](arcreg.WithReaders(2), arcreg.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Set("counter", 1); err != nil {
		t.Fatal(err)
	}
	rd, err := tm.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	var seen []int
	var pollErr error
	next := 2
	for v, err := range rd.Values("counter", 0) {
		if err != nil {
			pollErr = err
			break
		}
		seen = append(seen, v)
		if next <= 3 {
			if err := tm.Set("counter", next); err != nil {
				t.Fatal(err)
			}
			next++
		} else {
			if err := tm.Delete("counter"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !errors.Is(pollErr, arcreg.ErrKeyNotFound) {
		t.Fatalf("poll ended with %v, want ErrKeyNotFound", pollErr)
	}
	want := []int{1, 2, 3}
	if len(seen) != len(want) {
		t.Fatalf("observed %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("observed %v, want %v", seen, want)
		}
	}
}

// TestMapValuesNoSpuriousYields pins the Values contract under
// directory churn: creating, updating and deleting other keys on the
// watched key's shard must not fabricate duplicate observations — the
// iterator yields only real changes of its own key (GetFresh's change
// report, not the shard-wide Fresh probe, gates the yield).
func TestMapValuesNoSpuriousYields(t *testing.T) {
	tm, err := arcreg.NewMap[int](arcreg.WithShards(1), arcreg.WithReaders(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Set("watched", 1); err != nil {
		t.Fatal(err)
	}
	rd, err := tm.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	saw1 := make(chan struct{})
	saw2 := make(chan struct{})
	go func() { // the single writer: noise churn around one real change
		<-saw1
		for i := 0; i < 200; i++ {
			if err := tm.Set(fmt.Sprintf("noise-%d", i), i); err != nil {
				t.Error(err)
				return
			}
		}
		if err := tm.Set("watched", 2); err != nil {
			t.Error(err)
			return
		}
		<-saw2
		for i := 0; i < 200; i++ {
			if err := tm.Delete(fmt.Sprintf("noise-%d", i)); err != nil {
				t.Error(err)
				return
			}
		}
		if err := tm.Delete("watched"); err != nil {
			t.Error(err)
		}
	}()

	var seen []int
	var pollErr error
	for v, err := range rd.Values("watched", 0) {
		if err != nil {
			pollErr = err
			break
		}
		seen = append(seen, v)
		switch v {
		case 1:
			close(saw1)
		case 2:
			close(saw2)
		}
	}
	if !errors.Is(pollErr, arcreg.ErrKeyNotFound) {
		t.Fatalf("poll ended with %v, want ErrKeyNotFound", pollErr)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("observed %v, want [1 2] — directory churn fabricated yields", seen)
	}
}

// ExampleMap shows the map as a wait-free config service: one writer
// goroutine publishes keyed snapshots, readers poll hot keys for free.
func ExampleMap() {
	m, err := arcreg.NewByteMap(arcreg.MapConfig{MaxReaders: 8})
	if err != nil {
		panic(err)
	}
	_ = m.Set("limits/max-conns", []byte("4096"))
	_ = m.Set("limits/max-rps", []byte("10000"))

	rd, _ := m.NewReader()
	defer rd.Close()
	v, _ := rd.Get("limits/max-conns")
	fmt.Printf("max-conns=%s keys=%d\n", v, m.Len())

	// Nothing changed: this Get costs two atomic loads, zero RMW.
	v, _ = rd.Get("limits/max-conns")
	fmt.Printf("still %s, fresh=%v\n", v, rd.Fresh("limits/max-conns"))
	// Output:
	// max-conns=4096 keys=2
	// still 4096, fresh=true
}
