package arcreg_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"arcreg"
)

// TestMapBasic covers the public Map surface: Set/Get/GetCopy round
// trips, key enumeration, shard routing, misses, freshness probes.
func TestMapBasic(t *testing.T) {
	m, err := arcreg.NewMap(arcreg.MapConfig{Shards: 4, MaxReaders: 2, MaxValueSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 4 || m.MaxReaders() != 2 || m.MaxValueSize() != 128 {
		t.Fatalf("config round-trip: %d/%d/%d", m.Shards(), m.MaxReaders(), m.MaxValueSize())
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	if _, err := rd.Get("missing"); !errors.Is(err, arcreg.ErrKeyNotFound) {
		t.Fatalf("miss error = %v", err)
	}
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("cfg/%d", i)
		if err := m.Set(k, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
		if m.ShardOf(k) < 0 || m.ShardOf(k) >= m.Shards() {
			t.Fatalf("ShardOf out of range for %q", k)
		}
	}
	if m.Len() != 32 {
		t.Fatalf("Len = %d", m.Len())
	}
	v, err := rd.Get("cfg/7")
	if err != nil || string(v) != "value-7" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if !rd.Fresh("cfg/7") {
		t.Error("just-read key not fresh")
	}
	dst := make([]byte, 4)
	if n, err := rd.GetCopy("cfg/7", dst); !errors.Is(err, arcreg.ErrBufferTooSmall) || n != len("value-7") {
		t.Fatalf("short GetCopy = %d, %v", n, err)
	}
	dst = make([]byte, 64)
	n, err := rd.GetCopy("cfg/7", dst)
	if err != nil || string(dst[:n]) != "value-7" {
		t.Fatalf("GetCopy = %q, %v", dst[:n], err)
	}
	keys, err := rd.Keys()
	if err != nil || len(keys) != 32 {
		t.Fatalf("Keys = %d, %v", len(keys), err)
	}
	if n, err := rd.Len(); err != nil || n != 32 {
		t.Fatalf("Reader.Len = %d, %v", n, err)
	}
	// Key creation seeds the value register via its initial content (no
	// Write op); only updates count as value publishes.
	if err := m.Set("cfg/7", []byte("updated")); err != nil {
		t.Fatal(err)
	}
	ws := m.WriteStats()
	if ws.Keys != 32 || ws.Value.Ops != 1 || ws.Directory.Ops != 32 {
		t.Fatalf("WriteStats = %+v", ws)
	}
}

// TestMapHotGetZeroRMW is the acceptance criterion at the public layer:
// a Get of an unchanged hot key reports ~0 rmw/get through map-level
// ReadStats — the fresh gate preserved through the map.
func TestMapHotGetZeroRMW(t *testing.T) {
	m, err := arcreg.NewMap(arcreg.MapConfig{MaxReaders: 1, MaxValueSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := m.Set(fmt.Sprintf("key-%06d", i), bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, err := rd.Get("key-000007"); err != nil {
		t.Fatal(err)
	}
	base := rd.ReadStats()
	const hot = 10_000
	for i := 0; i < hot; i++ {
		if _, err := rd.Get("key-000007"); err != nil {
			t.Fatal(err)
		}
	}
	st := rd.ReadStats()
	if st.RMW != base.RMW {
		t.Errorf("hot Gets executed %d RMW instructions, want 0", st.RMW-base.RMW)
	}
	if got := st.FastPath - base.FastPath; got != hot {
		t.Errorf("fast-path Gets = %d, want %d", got, hot)
	}
}

// TestMapOfJSON covers the typed wrapper end to end.
func TestMapOfJSON(t *testing.T) {
	type endpoint struct {
		Host string
		Port int
	}
	tm, err := arcreg.NewJSONMap[endpoint](arcreg.MapConfig{MaxReaders: 2, MaxValueSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := tm.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, err := rd.Get("svc/a"); !errors.Is(err, arcreg.ErrKeyNotFound) {
		t.Fatalf("typed miss = %v", err)
	}
	if err := tm.Set("svc/a", endpoint{Host: "10.0.0.1", Port: 443}); err != nil {
		t.Fatal(err)
	}
	if err := tm.Set("svc/b", endpoint{Host: "10.0.0.2", Port: 80}); err != nil {
		t.Fatal(err)
	}
	got, err := rd.Get("svc/a")
	if err != nil || got != (endpoint{Host: "10.0.0.1", Port: 443}) {
		t.Fatalf("typed Get = %+v, %v", got, err)
	}
	if err := tm.Set("svc/a", endpoint{Host: "10.0.0.9", Port: 443}); err != nil {
		t.Fatal(err)
	}
	got, err = rd.Get("svc/a")
	if err != nil || got.Host != "10.0.0.9" {
		t.Fatalf("typed Get after update = %+v, %v", got, err)
	}
	if tm.Map().Len() != 2 {
		t.Fatalf("underlying Len = %d", tm.Map().Len())
	}
	if rd.Reader().ReadStats().Ops == 0 {
		t.Error("typed reads not counted in map ReadStats")
	}
}

// ExampleMap shows the map as a wait-free config service: one writer
// goroutine publishes keyed snapshots, readers poll hot keys for free.
func ExampleMap() {
	m, err := arcreg.NewMap(arcreg.MapConfig{MaxReaders: 8})
	if err != nil {
		panic(err)
	}
	_ = m.Set("limits/max-conns", []byte("4096"))
	_ = m.Set("limits/max-rps", []byte("10000"))

	rd, _ := m.NewReader()
	defer rd.Close()
	v, _ := rd.Get("limits/max-conns")
	fmt.Printf("max-conns=%s keys=%d\n", v, m.Len())

	// Nothing changed: this Get costs two atomic loads, zero RMW.
	v, _ = rd.Get("limits/max-conns")
	fmt.Printf("still %s, fresh=%v\n", v, rd.Fresh("limits/max-conns"))
	// Output:
	// max-conns=4096 keys=2
	// still 4096, fresh=true
}
