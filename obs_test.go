package arcreg_test

// Facade-level tests for the observability surface: the Stats tree
// across the (1,N), (M,N) and map shapes, the watcher backpressure
// ledger recorded by parked Watch iterators, and the expvar export
// path (Observe / StatsVar / StatsRegistry).

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"strings"
	"testing"
	"time"

	"arcreg"
)

// TestRegStatsShape pins the (1,N) tree: the register node with its
// protocol gauges, the notify child with the publication epoch, and
// the watchers child (empty population).
func TestRegStatsShape(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithReaders(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := reg.Set(i); err != nil {
			t.Fatal(err)
		}
	}
	sn := reg.Stats()
	if sn.Name != "register" {
		t.Fatalf("root name %q, want register", sn.Name)
	}
	if v, ok := sn.Get("slots"); !ok || v == 0 {
		t.Fatalf("slots = %d (ok=%v):\n%s", v, ok, sn.String())
	}
	nt := sn.Child("notify")
	if nt == nil {
		t.Fatalf("no notify child:\n%s", sn.String())
	}
	if epoch, _ := nt.Get("epoch"); epoch != 3 {
		t.Fatalf("notify epoch = %d, want 3", epoch)
	}
	w := sn.Child("watchers")
	if w == nil {
		t.Fatalf("no watchers child:\n%s", sn.String())
	}
	if live, _ := w.Get("live"); live != 0 {
		t.Fatalf("live watchers = %d, want 0", live)
	}
}

// TestMNRegStatsShape pins the (M,N) tree: composite gauges plus one
// child per ARC component.
func TestMNRegStatsShape(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithWriters(2), arcreg.WithReaders(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Set(7); err != nil {
		t.Fatal(err)
	}
	sn := reg.Stats()
	if sn.Name != "mnreg" {
		t.Fatalf("root name %q, want mnreg", sn.Name)
	}
	if epoch, _ := sn.Get("epoch"); epoch == 0 {
		t.Fatalf("epoch = 0 after Set:\n%s", sn.String())
	}
	for i := 0; i < 2; i++ {
		if sn.Child(fmt.Sprintf("component%d", i)) == nil {
			t.Fatalf("no component%d child:\n%s", i, sn.String())
		}
	}
	if sn.Child("watchers") == nil {
		t.Fatalf("no watchers child:\n%s", sn.String())
	}
}

// TestRegWatchLedger drives a facade Watch through a burst consumed in
// one wakeup and checks the backpressure ledger surfaces in Reg.Stats:
// deliveries, conflation, wakeups, and a live watcher while the
// iterator runs.
func TestRegWatchLedger(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithReaders(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Set(0); err != nil {
		t.Fatal(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got := make(chan int)
	go func() {
		defer close(got)
		for v, err := range rd.Watch(ctx) {
			if err != nil {
				return
			}
			select {
			case got <- v:
			case <-ctx.Done():
				return
			}
		}
	}()

	if v := <-got; v != 0 {
		t.Fatalf("first delivery %d", v)
	}
	// Wait until the watcher's ledger is attached (it is between
	// deliveries, blocked on the unbuffered channel send or parked).
	deadline := time.Now().Add(5 * time.Second)
	for {
		sn := reg.Stats()
		if w := sn.Child("watchers"); w != nil {
			if live, _ := w.Get("live"); live == 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("watcher ledger never attached")
		}
		time.Sleep(time.Millisecond)
	}

	// Publish a burst while the consumer cannot deliver: intermediate
	// publications conflate.
	const burst = 50
	for i := 1; i <= burst; i++ {
		if err := reg.Set(i); err != nil {
			t.Fatal(err)
		}
	}
	for v := range got {
		if v == burst {
			break
		}
	}

	sn := reg.Stats()
	w := sn.Child("watchers")
	if w == nil {
		t.Fatal("watchers child vanished")
	}
	if v, _ := w.Get("delivered"); v < 2 {
		t.Fatalf("delivered = %d, want ≥ 2", v)
	}
	if v, _ := w.Get("conflated"); v == 0 {
		t.Fatalf("burst of %d conflated nothing:\n%s", burst, w.String())
	}
	if v, _ := w.Get("wakeups"); v == 0 {
		t.Fatal("watcher parked through a burst without a wakeup")
	}

	cancel()
	for range got {
	}
	if sn := reg.Stats(); sn.Child("watchers") != nil {
		w := sn.Child("watchers")
		if live, _ := w.Get("live"); live != 0 {
			t.Fatalf("live watchers after exit = %d", live)
		}
		if retired, _ := w.Get("retired"); retired != 1 {
			t.Fatalf("retired watchers = %d, want 1", retired)
		}
	}
}

// TestObserveServesJSON pins the export path: Observe publishes a
// StatsVar whose String() is the JSON rendering of the live tree, and
// a StatsRegistry composes several sources under one root.
func TestObserveServesJSON(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithReaders(2))
	if err != nil {
		t.Fatal(err)
	}
	m, err := arcreg.NewMap[int](arcreg.WithShards(2), arcreg.WithReaders(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set("k", 1); err != nil {
		t.Fatal(err)
	}

	var root arcreg.StatsRegistry
	if err := root.Register("register", reg); err != nil {
		t.Fatal(err)
	}
	if err := root.Register("map", m); err != nil {
		t.Fatal(err)
	}

	// expvar's registry is process-global and Publish panics on
	// duplicates, so use a name unique to this test binary run.
	name := fmt.Sprintf("arcreg-test-%d", time.Now().UnixNano())
	arcreg.Observe(name, &root)
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar.Get(%q) = nil", name)
	}
	var decoded struct {
		Name     string `json:"name"`
		Children []struct {
			Name string `json:"name"`
		} `json:"children"`
	}
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("expvar output is not JSON: %v\n%s", err, v.String())
	}
	var names []string
	for _, c := range decoded.Children {
		names = append(names, c.Name)
	}
	if len(names) != 2 || names[0] != "map" || names[1] != "register" {
		t.Fatalf("registry children = %v, want [map register]", names)
	}

	// The text dump is the human-readable view of the same tree.
	var sb strings.Builder
	root.Stats().WriteText(&sb)
	if !strings.Contains(sb.String(), "live_keys") {
		t.Fatalf("text dump missing map counters:\n%s", sb.String())
	}
}
