package arcreg_test

// The public HTTP facade, exercised end to end over real connections:
// NewHTTPHandler on a Map, a PUT/GET round-trip, an in-process Set
// visible over the wire, and the serve stats node. The serving layer's
// deep coverage lives in internal/serve; this pins the exported
// surface.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"arcreg"
)

func TestHTTPHandlerFacade(t *testing.T) {
	m, err := arcreg.NewByteMap(arcreg.MapConfig{Shards: 2, MaxReaders: 8, MaxValueSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	h, err := arcreg.NewHTTPHandler(m, arcreg.HTTPOptions{Readers: 2, WatchStreams: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(h)
	ts.Config.ConnState = h.ConnState
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		h.Close()
	})
	c := ts.Client()

	req, _ := http.NewRequest("PUT", ts.URL+"/k/greeting", bytes.NewReader([]byte("hello")))
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: status %d", resp.StatusCode)
	}
	resp, err = c.Get(ts.URL + "/k/greeting")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "hello" {
		t.Fatalf("GET: status %d body %q", resp.StatusCode, body)
	}

	// In-process writes route through the same shard writer queues.
	if err := h.Set("greeting", []byte("rebonjour")); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Get(ts.URL + "/k/greeting")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "rebonjour" {
		t.Fatalf("GET after Set: body %q", body)
	}
	if err := h.Delete("greeting"); err != nil {
		t.Fatal(err)
	}
	if resp, err = c.Get(ts.URL + "/k/greeting"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after Delete: status %d, want 404", resp.StatusCode)
	}
	if err := h.Compact(); err != nil {
		t.Fatal(err)
	}

	sn := h.Stats()
	if sn.Name != "serve" {
		t.Fatalf("stats node name %q, want serve", sn.Name)
	}
	if v, _ := sn.Get("req_get"); v < 3 {
		t.Fatalf("req_get = %d, want >= 3", v)
	}
	if v, _ := sn.Get("writes_applied"); v < 2 {
		t.Fatalf("writes_applied = %d, want >= 2", v)
	}
	var text strings.Builder
	sn.WriteText(&text)
	if !strings.Contains(text.String(), "req_get") {
		t.Fatalf("stats text missing req_get:\n%s", text.String())
	}
}
