package arcreg_test

// Golden snapshot of the package's exported API surface. The redesigned
// generics-first facade is now the contract every future algorithm and
// store plugs into; this test makes any change to it — a renamed option,
// a dropped method, a widened interface — show up as a reviewable diff
// in testdata/api.txt instead of slipping through. Regenerate after an
// intentional change with:
//
//	go test -run TestPublicAPI -update .
//
// CI runs this test on every push.

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/api.txt with the current exported API")

const apiGolden = "testdata/api.txt"

func TestPublicAPI(t *testing.T) {
	got := renderPublicAPI(t, ".")
	if *update {
		if err := os.MkdirAll(filepath.Dir(apiGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", apiGolden)
		return
	}
	want, err := os.ReadFile(apiGolden)
	if err != nil {
		t.Fatalf("missing golden API snapshot (run `go test -run TestPublicAPI -update .`): %v", err)
	}
	if got != string(want) {
		t.Errorf("exported API drifted from %s.\nIf the change is intentional, regenerate with `go test -run TestPublicAPI -update .` and review the diff.\n--- got ---\n%s", apiGolden, diffHint(string(want), got))
	}
}

// renderPublicAPI parses the package in dir and renders one sorted,
// normalized entry per exported symbol: funcs and methods as bodyless
// signatures, types with unexported struct fields elided, consts and
// vars as name/type lines.
func renderPublicAPI(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["arcreg"]
	if !ok {
		t.Fatalf("package arcreg not found in %s (got %v)", dir, pkgs)
	}

	var entries []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if e := renderFunc(fset, d); e != "" {
					entries = append(entries, e)
				}
			case *ast.GenDecl:
				entries = append(entries, renderGen(fset, d)...)
			}
		}
	}
	sort.Strings(entries)
	return strings.Join(entries, "\n") + "\n"
}

func renderFunc(fset *token.FileSet, d *ast.FuncDecl) string {
	if !d.Name.IsExported() {
		return ""
	}
	if d.Recv != nil && !exportedRecv(d.Recv) {
		return ""
	}
	clone := *d
	clone.Doc = nil
	clone.Body = nil
	return oneLine(render(fset, &clone))
}

// exportedRecv reports whether a method's receiver base type is
// exported.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr:
			typ = x.X
		case *ast.IndexListExpr:
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

func renderGen(fset *token.FileSet, d *ast.GenDecl) []string {
	var entries []string
	kw := d.Tok.String()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			clone := *s
			clone.Doc = nil
			clone.Comment = nil
			clone.Type = elideUnexported(clone.Type)
			entries = append(entries, kw+" "+render(fset, &clone))
		case *ast.ValueSpec:
			var names []string
			for _, n := range s.Names {
				if n.IsExported() {
					names = append(names, n.Name)
				}
			}
			if len(names) == 0 {
				continue
			}
			line := kw + " " + strings.Join(names, ", ")
			if s.Type != nil {
				line += " " + oneLine(render(fset, s.Type))
			}
			entries = append(entries, line)
		}
	}
	return entries
}

// elideUnexported strips unexported fields from struct types (they are
// not API) and comments everywhere, so internal layout changes don't
// churn the snapshot.
func elideUnexported(typ ast.Expr) ast.Expr {
	st, ok := typ.(*ast.StructType)
	if !ok {
		return typ
	}
	clone := *st
	fields := &ast.FieldList{Opening: st.Fields.Opening, Closing: st.Fields.Closing}
	for _, f := range st.Fields.List {
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(f.Names) > 0 && len(names) == 0 {
			continue // all-unexported field line
		}
		if len(f.Names) == 0 {
			// Embedded field: keep only if its base type is exported.
			if !exportedRecv(&ast.FieldList{List: []*ast.Field{f}}) {
				continue
			}
		}
		fc := *f
		fc.Doc = nil
		fc.Comment = nil
		fc.Names = names
		if len(f.Names) == 0 {
			fc.Names = nil
		}
		fields.List = append(fields.List, &fc)
	}
	clone.Fields = fields
	return &clone
}

func render(fset *token.FileSet, node any) string {
	var b strings.Builder
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 8}
	if err := cfg.Fprint(&b, fset, node); err != nil {
		return "<render error: " + err.Error() + ">"
	}
	return b.String()
}

// oneLine collapses a rendering onto a single line so gofmt wrapping
// differences can't churn the snapshot.
func oneLine(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// diffHint renders a compact line diff — enough to locate the drift
// without a diff dependency.
func diffHint(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	inWant := map[string]bool{}
	for _, l := range wl {
		inWant[l] = true
	}
	inGot := map[string]bool{}
	for _, l := range gl {
		inGot[l] = true
	}
	var b strings.Builder
	for _, l := range wl {
		if !inGot[l] {
			b.WriteString("- " + l + "\n")
		}
	}
	for _, l := range gl {
		if !inWant[l] {
			b.WriteString("+ " + l + "\n")
		}
	}
	if b.Len() == 0 {
		return "(ordering or whitespace difference)"
	}
	return b.String()
}
