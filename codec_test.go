package arcreg_test

// Codec-layer tests: round-trip fuzzing over every built-in codec, and
// the aliasing test for the documented decode contract — decoders must
// not retain the register-slot memory they are handed, because slots
// are recycled once the reading handle moves on.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"unicode/utf8"

	"arcreg"
)

// fuzzVal exercises JSON over the field kinds with retention hazards:
// strings and byte slices both alias their input in a careless decoder.
type fuzzVal struct {
	S string `json:"s"`
	I int64  `json:"i"`
	B []byte `json:"b"`
}

// pair implements encoding.BinaryMarshaler/Unmarshaler on its pointer
// receiver — the Binary codec's shape.
type pair struct{ A, B uint32 }

func (p *pair) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[0:], p.A)
	binary.LittleEndian.PutUint32(buf[4:], p.B)
	return buf, nil
}

func (p *pair) UnmarshalBinary(data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("pair: %d bytes, want 8", len(data))
	}
	p.A = binary.LittleEndian.Uint32(data[0:])
	p.B = binary.LittleEndian.Uint32(data[4:])
	return nil
}

// FuzzCodecRoundTrip drives Encode→Decode over all built-in codecs:
// JSON, String, Raw, Binary and Gob. Whatever goes in must come out.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte("raw bytes"), "a string", int64(7), uint32(1), uint32(2))
	f.Add([]byte{}, "", int64(0), uint32(0), uint32(0))
	f.Add([]byte{0xff, 0x00}, "日本語\x00", int64(-1), uint32(1<<32-1), uint32(42))
	f.Fuzz(func(t *testing.T, raw []byte, s string, i int64, a, b uint32) {
		jc := arcreg.JSON[fuzzVal]()
		jv := fuzzVal{S: s, I: i, B: raw}
		blob, err := jc.Encode(jv)
		if err != nil {
			// Arbitrary fuzz strings may not be valid UTF-8; encoding/json
			// replaces invalid runes, so the round trip is only exact for
			// encodable values.
			t.Skipf("json encode: %v", err)
		}
		got, err := jc.Decode(blob)
		if err != nil {
			t.Fatalf("json decode of own encoding %q: %v", blob, err)
		}
		if got.I != i || !bytes.Equal(got.B, raw) {
			t.Errorf("json round trip: got %+v, want I=%d B=%q", got, i, raw)
		}
		// encoding/json coerces invalid UTF-8 to replacement runes on the
		// first pass; strings surviving one trip must round-trip exactly.
		if utf8.ValidString(s) && got.S != s {
			t.Errorf("json round trip: S = %q, want %q", got.S, s)
		}
		blob2, err := jc.Encode(got)
		if err != nil {
			t.Fatalf("json re-encode: %v", err)
		}
		got2, err := jc.Decode(blob2)
		if err != nil {
			t.Fatalf("json second decode: %v", err)
		}
		if got2.S != got.S || got2.I != got.I || !bytes.Equal(got2.B, got.B) {
			t.Errorf("json round trip not idempotent: %+v != %+v", got2, got)
		}

		sc := arcreg.String()
		sblob, err := sc.Encode(s)
		if err != nil {
			t.Fatalf("string encode: %v", err)
		}
		if gs, err := sc.Decode(sblob); err != nil || gs != s {
			t.Errorf("string round trip: %q, %v", gs, err)
		}

		rc := arcreg.Raw()
		rblob, err := rc.Encode(raw)
		if err != nil {
			t.Fatalf("raw encode: %v", err)
		}
		if gr, err := rc.Decode(rblob); err != nil || !bytes.Equal(gr, raw) {
			t.Errorf("raw round trip: %q, %v", gr, err)
		}

		bc := arcreg.Binary[pair]()
		pv := pair{A: a, B: b}
		bblob, err := bc.Encode(pv)
		if err != nil {
			t.Fatalf("binary encode: %v", err)
		}
		if gp, err := bc.Decode(bblob); err != nil || gp != pv {
			t.Errorf("binary round trip: %+v, %v", gp, err)
		}

		// Gob is 8-bit clean: unlike JSON, arbitrary strings and bytes
		// must round-trip exactly, zero values included (gob omits zero
		// struct fields on the wire; they must still decode to equal
		// values).
		gc := arcreg.Gob[fuzzVal]()
		gv := fuzzVal{S: s, I: i, B: raw}
		gblob, err := gc.Encode(gv)
		if err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		gotG, err := gc.Decode(gblob)
		if err != nil {
			t.Fatalf("gob decode of own encoding: %v", err)
		}
		if gotG.S != s || gotG.I != i || !bytes.Equal(gotG.B, raw) {
			t.Errorf("gob round trip: got %+v, want S=%q I=%d B=%q", gotG, s, i, raw)
		}
		// Every gob blob must be self-contained: decoding through a
		// second, fresh codec value (fresh gob decoder) must work too —
		// the property registers rely on when any reader decodes any
		// publication in isolation.
		if got2, err := arcreg.Gob[fuzzVal]().Decode(gblob); err != nil || got2.S != s {
			t.Errorf("gob blob not self-contained: %+v, %v", got2, err)
		}
	})
}

// clobberReads forces the slot that backed the handle's previous view to
// be unpinned and recycled: the next Get releases the pin, and the
// subsequent writes (more than ARC's N+2 slots) reuse and overwrite the
// freed buffer.
func clobberReads[T any](t *testing.T, reg *arcreg.Reg[T], rd *arcreg.TypedReader[T], set func(i int) T) {
	t.Helper()
	for i := 0; i < 8; i++ {
		if err := reg.Set(set(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := rd.Get(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCodecDecodeDoesNotAlias pins the documented decode contract for
// every copying built-in codec (the NewTyped/Codec doc: "dec must not
// retain its argument: the slice may alias a register slot that is
// recycled after the decode returns"). The decode happens straight from
// an ARC slot view; the slot is then recycled under fresh writes; the
// previously decoded value must be unaffected.
func TestCodecDecodeDoesNotAlias(t *testing.T) {
	t.Run("json", func(t *testing.T) {
		reg, err := arcreg.New[fuzzVal](arcreg.WithReaders(1), arcreg.WithMaxValueSize(256))
		if err != nil {
			t.Fatal(err)
		}
		rd, err := reg.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		want := fuzzVal{S: "retained-string-aaaaaaaaaaaaaaaa", I: 42, B: []byte("retained-bytes-bbbbbbbbbbbbbbbb")}
		if err := reg.Set(want); err != nil {
			t.Fatal(err)
		}
		got, err := rd.Get() // decoded straight from the slot view
		if err != nil {
			t.Fatal(err)
		}
		clobberReads(t, reg, rd, func(i int) fuzzVal {
			return fuzzVal{S: "clobber-XXXXXXXXXXXXXXXXXXXXXXXX", I: int64(i), B: bytes.Repeat([]byte{byte('0' + i)}, 32)}
		})
		if got.S != want.S || got.I != want.I || !bytes.Equal(got.B, want.B) {
			t.Errorf("decoded value mutated by slot recycling: %+v", got)
		}
	})

	t.Run("string", func(t *testing.T) {
		reg, err := arcreg.New[string](
			arcreg.WithCodec(arcreg.String()),
			arcreg.WithReaders(1), arcreg.WithMaxValueSize(64))
		if err != nil {
			t.Fatal(err)
		}
		rd, err := reg.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		const want = "immutable-string-payload"
		if err := reg.Set(want); err != nil {
			t.Fatal(err)
		}
		got, err := rd.Get()
		if err != nil {
			t.Fatal(err)
		}
		clobberReads(t, reg, rd, func(i int) string { return fmt.Sprintf("clobber-%024d", i) })
		if got != want {
			t.Errorf("decoded string mutated by slot recycling: %q", got)
		}
	})

	t.Run("binary", func(t *testing.T) {
		reg, err := arcreg.New[pair](
			arcreg.WithCodec(arcreg.Binary[pair]()),
			arcreg.WithReaders(1), arcreg.WithMaxValueSize(16))
		if err != nil {
			t.Fatal(err)
		}
		rd, err := reg.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		want := pair{A: 0xdeadbeef, B: 0xcafebabe}
		if err := reg.Set(want); err != nil {
			t.Fatal(err)
		}
		got, err := rd.Get()
		if err != nil {
			t.Fatal(err)
		}
		clobberReads(t, reg, rd, func(i int) pair { return pair{A: uint32(i), B: uint32(i)} })
		if got != want {
			t.Errorf("decoded pair mutated by slot recycling: %+v", got)
		}
	})

	t.Run("gob", func(t *testing.T) {
		reg, err := arcreg.New[fuzzVal](
			arcreg.WithCodec(arcreg.Gob[fuzzVal]()),
			arcreg.WithReaders(1), arcreg.WithMaxValueSize(256))
		if err != nil {
			t.Fatal(err)
		}
		rd, err := reg.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		want := fuzzVal{S: "retained-string-aaaaaaaaaaaaaaaa", I: 42, B: []byte("retained-bytes-bbbbbbbbbbbbbbbb")}
		if err := reg.Set(want); err != nil {
			t.Fatal(err)
		}
		got, err := rd.Get() // decoded straight from the slot view
		if err != nil {
			t.Fatal(err)
		}
		clobberReads(t, reg, rd, func(i int) fuzzVal {
			return fuzzVal{S: "clobber-XXXXXXXXXXXXXXXXXXXXXXXX", I: int64(i), B: bytes.Repeat([]byte{byte('0' + i)}, 32)}
		})
		if got.S != want.S || got.I != want.I || !bytes.Equal(got.B, want.B) {
			t.Errorf("decoded value mutated by slot recycling: %+v", got)
		}
	})

	// The NewTyped contract itself — a func-pair decoder that copies
	// (like encoding/json) stays intact under recycling.
	t.Run("newtyped-funcs", func(t *testing.T) {
		raw, err := arcreg.NewARC(arcreg.Config{MaxReaders: 1, MaxValueSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		tr := arcreg.NewTyped[string](raw,
			func(v string) ([]byte, error) { return []byte(v), nil },
			func(p []byte) (string, error) { return string(p), nil }) // copies: honors the contract
		rd, err := tr.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		const want = "newtyped-contract-payload"
		if err := tr.Set(want); err != nil {
			t.Fatal(err)
		}
		got, err := rd.Get()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := tr.Set(fmt.Sprintf("clobber-%024d", i)); err != nil {
				t.Fatal(err)
			}
			if _, err := rd.Get(); err != nil {
				t.Fatal(err)
			}
		}
		if got != want {
			t.Errorf("decoded value mutated by slot recycling: %q", got)
		}
	})

	// Raw is the documented exception: its Decode intentionally aliases
	// the slot, giving view semantics. Pin that the alias really is a
	// view of register memory (same backing array as ViewBytes).
	t.Run("raw-aliases-by-design", func(t *testing.T) {
		reg, err := arcreg.New[[]byte](
			arcreg.WithCodec(arcreg.Raw()),
			arcreg.WithReaders(1), arcreg.WithMaxValueSize(64))
		if err != nil {
			t.Fatal(err)
		}
		rd, err := reg.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		if err := reg.Set([]byte("view-semantics")); err != nil {
			t.Fatal(err)
		}
		got, err := rd.Get()
		if err != nil {
			t.Fatal(err)
		}
		view, err := rd.ViewBytes()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 || len(view) == 0 || &got[0] != &view[0] {
			t.Error("Raw Decode did not alias the slot view")
		}
	})
}
