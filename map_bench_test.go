package arcreg_test

// Benchmarks for the sharded snapshot map. BenchmarkMapGet is the
// acceptance benchmark: a Get of an unchanged hot key must report ~0
// rmw/get through map-level ReadStats — ARC's fresh-path economy
// surviving both the directory and the per-key layer. BenchmarkMapMiss
// prices the absent-key path (directory probe + hash lookup), and the
// remaining benchmarks cover updates, skewed multi-key reading, and the
// harness figure at smoke scale.

import (
	"fmt"
	"testing"
	"time"

	"arcreg"
	"arcreg/internal/harness"
	"arcreg/internal/workload"
)

func benchMap(b *testing.B, keys int) (*arcreg.Map, []string) {
	b.Helper()
	m, err := arcreg.NewByteMap(arcreg.MapConfig{Shards: 16, MaxReaders: 2, MaxValueSize: 1024})
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, keys)
	val := make2(1024)
	for i := range names {
		names[i] = workload.KeyName(i)
		if err := m.Set(names[i], val); err != nil {
			b.Fatal(err)
		}
	}
	return m, names
}

// BenchmarkMapGet is the steady-state hot path: the key and its shard
// directory are unchanged, so every Get is two atomic loads. The
// rmw/get metric (from map ReadStats) must be ~0.
func BenchmarkMapGet(b *testing.B) {
	m, names := benchMap(b, 64)
	rd, err := m.NewReader()
	if err != nil {
		b.Fatal(err)
	}
	defer rd.Close()
	hot := names[7]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Get(hot); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := rd.ReadStats()
	if st.Ops > 0 {
		b.ReportMetric(float64(st.RMW)/float64(st.Ops), "rmw/get")
		b.ReportMetric(100*float64(st.FastPath)/float64(st.Ops), "fastpath-%")
	}
}

// BenchmarkMapMiss prices a Get of an absent key on an unchanged
// directory: one atomic load plus the hash lookup.
func BenchmarkMapMiss(b *testing.B) {
	m, _ := benchMap(b, 64)
	rd, err := m.NewReader()
	if err != nil {
		b.Fatal(err)
	}
	defer rd.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Get("absent-key"); err != arcreg.ErrKeyNotFound {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := rd.ReadStats()
	if st.Ops > 0 {
		b.ReportMetric(float64(st.RMW)/float64(st.Ops), "rmw/get")
	}
}

// BenchmarkMapGetZipf reads across 4096 keys under Zipf(1.2) popularity
// — the keyed figure's read body as a micro-benchmark.
func BenchmarkMapGetZipf(b *testing.B) {
	m, names := benchMap(b, 4096)
	rd, err := m.NewReader()
	if err != nil {
		b.Fatal(err)
	}
	defer rd.Close()
	choose := workload.NewKeyChooser(len(names), 1.2, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Get(names[choose.Next()]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := rd.ReadStats()
	if st.Ops > 0 {
		b.ReportMetric(float64(st.RMW)/float64(st.Ops), "rmw/get")
	}
}

// BenchmarkMapSet prices an update of an existing key (one ARC write:
// one copy, one RMW publish).
func BenchmarkMapSet(b *testing.B) {
	m, names := benchMap(b, 64)
	val := make2(1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Set(names[i&63], val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapAddKey prices key creation — register construction plus
// the shard directory re-publish — under dynamic value buffers, the
// configuration meant for large key counts.
func BenchmarkMapAddKey(b *testing.B) {
	m, err := arcreg.NewByteMap(arcreg.MapConfig{
		Shards: 16, MaxReaders: 1, MaxValueSize: 1 << 20, DynamicValues: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	val := []byte("first value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Set(fmt.Sprintf("grow-%09d", i), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapSnapshot is the snapshot acceptance benchmark: a
// steady-state snapshot of an unchanged map must report ~0 rmw/get and
// zero retries — every per-key read is ARC's one-load fast path, and
// one validated pass certifies the whole map.
func BenchmarkMapSnapshot(b *testing.B) {
	for _, keys := range []int{64, 1024} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			m, names := benchMap(b, keys)
			_ = names
			rd, err := m.NewReader()
			if err != nil {
				b.Fatal(err)
			}
			defer rd.Close()
			if _, err := rd.Snapshot(); err != nil { // pay the first-pass acquisitions
				b.Fatal(err)
			}
			base := rd.ReadStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap, err := rd.Snapshot()
				if err != nil {
					b.Fatal(err)
				}
				if len(snap) != keys {
					b.Fatalf("snapshot has %d keys", len(snap))
				}
			}
			b.StopTimer()
			st := rd.ReadStats()
			b.ReportMetric(float64(st.RMW-base.RMW)/float64(b.N), "rmw/snapshot")
			b.ReportMetric(float64(st.SnapshotRetries-base.SnapshotRetries)/float64(b.N), "retries/snapshot")
			if st.RMW != base.RMW {
				b.Fatalf("steady-state snapshots executed %d RMW instructions", st.RMW-base.RMW)
			}
		})
	}
}

// BenchmarkMapDelete prices a delete/recreate cycle: two directory log
// appends and publications plus one register construction.
func BenchmarkMapDelete(b *testing.B) {
	m, names := benchMap(b, 64)
	val := make2(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := names[i&63]
		if err := m.Delete(k); err != nil {
			b.Fatal(err)
		}
		if err := m.Set(k, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigMap drives the harness keyed figure at bench scale;
// `arcbench -figure map` runs the full version.
func BenchmarkFigMap(b *testing.B) {
	var mops, rmwPerGet float64
	for b.Loop() {
		res, err := harness.RunMap(harness.MapRunConfig{
			Threads:   2,
			Keys:      256,
			ValueSize: 1024,
			Zipf:      1.2,
			Duration:  60 * time.Millisecond,
			Warmup:    10 * time.Millisecond,
			Seed:      5,
		})
		if err != nil {
			b.Fatal(err)
		}
		mops = res.Mops()
		rmwPerGet = res.RMWPerGet()
	}
	b.ReportMetric(mops, "Mops")
	b.ReportMetric(rmwPerGet, "rmw/get")
}
