package arcreg

import (
	"arcreg/internal/arc"
	"arcreg/internal/leftright"
	"arcreg/internal/lockreg"
	"arcreg/internal/peterson"
	"arcreg/internal/register"
	"arcreg/internal/rf"
	"arcreg/internal/seqlock"
)

// Config parametrizes register construction.
//
// MaxReaders is N, the number of reader handles that may be live at once.
// MaxValueSize bounds the values Write accepts (buffers are pre-allocated
// at this size; it defaults to 4096). Initial optionally sets the value
// readers see before the first write.
type Config = register.Config

// Register is a multi-word atomic (1,N) register: one writer endpoint and
// up to MaxReaders concurrent reader handles.
type Register = register.Register

// Writer stores new values. Use from one goroutine at a time — the "1" in
// (1,N).
type Writer = register.Writer

// Reader retrieves values. One handle per goroutine; handles carry the
// per-process protocol state.
type Reader = register.Reader

// Viewer is implemented by readers supporting zero-copy views (ARC, RF and
// the lock register; Peterson reads inherently copy).
type Viewer = register.Viewer

// ReadStats counts per-handle read work (operations, RMW instructions,
// fast-path hits); see StatReader. Its Snapshot method renders the
// counters as a node of the Stats observability tree (see Reg.Stats).
type ReadStats = register.ReadStats

// WriteStats counts writer work (operations, RMW instructions, slot-scan
// probes, hint hits); see StatWriter. Its Snapshot method renders the
// counters as a node of the Stats observability tree (see Reg.Stats).
type WriteStats = register.WriteStats

// StatReader is implemented by reader handles exposing ReadStats.
//
// Deprecated: the New facade resolves capabilities at construction —
// use TypedReader.ReadStats (and Reg.Caps().ReadStats) instead of
// asserting byte handles; use Reg.Stats for the live observability
// tree. StatReader remains for raw-register code.
type StatReader = register.StatReader

// StatWriter is implemented by writers exposing WriteStats.
//
// Deprecated: the New facade resolves capabilities at construction —
// use TypedWriter.WriteStats (and Reg.Caps().WriteStats) instead of
// asserting byte handles; use Reg.Stats for the live observability
// tree. StatWriter remains for raw-register code.
type StatWriter = register.StatWriter

// Errors returned by register operations.
var (
	// ErrTooManyReaders: NewReader beyond MaxReaders.
	ErrTooManyReaders = register.ErrTooManyReaders
	// ErrValueTooLarge: Write beyond MaxValueSize.
	ErrValueTooLarge = register.ErrValueTooLarge
	// ErrReaderClosed: operation on a closed handle.
	ErrReaderClosed = register.ErrReaderClosed
	// ErrBufferTooSmall: Read destination cannot hold the value.
	ErrBufferTooSmall = register.ErrBufferTooSmall
)

// MaxARCReaders is ARC's architectural reader bound on 64-bit machines:
// 2³²−2 (the paper's headline scalability figure).
const MaxARCReaders = 1<<32 - 2

// MaxRFReaders is the RF baseline's architectural bound: 58.
const MaxRFReaders = rf.MaxReaders

// ARCOption tunes the ARC register.
type ARCOption func(*arc.Options)

// WithoutFastPath disables the R1–R2 read fast path, forcing RMW
// instructions on every read. Benchmarks use it to quantify the
// optimization; applications should not.
func WithoutFastPath() ARCOption {
	return func(o *arc.Options) { o.DisableFastPath = true }
}

// WithoutFreeHint disables the §3.4 free-slot hint, leaving the writer
// with a plain linear slot scan. Benchmarks only.
func WithoutFreeHint() ARCOption {
	return func(o *arc.Options) { o.DisableFreeHint = true }
}

// WithStaticReaders reproduces the paper's Algorithm 1 initialization:
// all N reader identities are pre-charged onto the initial value's slot
// and exactly MaxReaders handles can ever be created.
func WithStaticReaders() ARCOption {
	return func(o *arc.Options) { o.StaticInit = true }
}

// WithDynamicBuffers enables the paper's §3.3 allocation variant: every
// write allocates an exact-size buffer instead of filling a pre-allocated
// MaxValueSize slot. Memory then scales with the values actually stored
// (useful when MaxValueSize is large and typical values are small), at
// the cost of one allocation per write; retired buffers are reclaimed by
// the garbage collector.
func WithDynamicBuffers() ARCOption {
	return func(o *arc.Options) { o.DynamicBuffers = true }
}

// NewARC constructs an Anonymous Readers Counting register — the paper's
// algorithm. Reads are wait-free and constant-time (zero RMW instructions
// when the value is unchanged); writes are wait-free and amortized
// constant-time; values are copied exactly once per write and never on
// read (views alias the internal slot).
func NewARC(cfg Config, opts ...ARCOption) (Register, error) {
	var o arc.Options
	for _, opt := range opts {
		opt(&o)
	}
	return arc.New(cfg, o)
}

// NewRF constructs a Readers-Field register (Larsson et al., JEA 2009) —
// the closest RMW-based prior work. Wait-free; one RMW per read; at most
// 58 readers; O(N) writes.
func NewRF(cfg Config) (Register, error) { return rf.New(cfg) }

// NewPeterson constructs a Peterson-style register (TOPLAS 1983) built
// purely from single-word atomic reads and writes. Wait-free with zero
// RMW instructions, at the cost of up to three value copies per read and
// per-reader copy-outs on write.
func NewPeterson(cfg Config) (Register, error) { return peterson.New(cfg) }

// NewLocked constructs a reader/writer-spinlock register. Linearizable
// but not wait-free — the comparator the paper uses to show what lock
// preemption costs on virtualized and oversubscribed hosts.
func NewLocked(cfg Config) (Register, error) { return lockreg.New(cfg) }

// NewSeqlock constructs a sequence-lock register (the Linux-kernel
// seqcount pattern) — an extension baseline beyond the paper. Writes are
// wait-free and use a single buffer; reads are only lock-free: they retry
// without bound while a write is in flight, so a preempted writer stalls
// every reader.
func NewSeqlock(cfg Config) (Register, error) { return seqlock.New(cfg) }

// NewLeftRight constructs a Left-Right register (Ramalhete & Correia,
// 2013) — an extension baseline beyond the paper. Reads are wait-free
// with zero-copy views and only two value instances exist, but writes
// block until reader versions drain, so a stalled reader stalls the
// writer (ARC avoids exactly this with its N+2 slots).
func NewLeftRight(cfg Config) (Register, error) { return leftright.New(cfg) }

// View returns a zero-copy view of the freshest value if the reader
// supports it, or (nil, false) otherwise. The view is valid until the
// handle's next Read, View or Close.
//
// Deprecated: the New facade resolves capabilities at construction —
// use TypedReader.ViewBytes (and Reg.Caps().ZeroCopyView) instead of
// asserting byte handles. View remains for raw-register code.
func View(r Reader) ([]byte, bool) {
	v, ok := r.(Viewer)
	if !ok {
		return nil, false
	}
	buf, err := v.View()
	if err != nil {
		return nil, false
	}
	return buf, true
}

// FreshnessProber is implemented by readers that can report, without
// performing a read, whether their last-returned value is still current.
// ARC and RF support it; for ARC the probe is a single atomic load with
// no RMW instruction.
type FreshnessProber = register.FreshnessProber

// Fresh reports whether r's last-returned value is still the freshest
// one. ok is false when the reader cannot answer without a full read.
// Use it to skip decoding/processing in polling loops:
//
//	if fresh, ok := arcreg.Fresh(rd); !ok || !fresh {
//	    v, _ := rd.Read(buf) // something new (or unknown): actually read
//	    process(v)
//	}
//
// Deprecated: the New facade resolves capabilities at construction —
// use TypedReader.Fresh (and Reg.Caps().FreshProbe), or the Values poll
// iterator, instead of asserting byte handles. Fresh remains for
// raw-register code.
func Fresh(r Reader) (fresh, ok bool) {
	p, ok := r.(FreshnessProber)
	if !ok {
		return false, false
	}
	return p.Fresh(), true
}
