// Package arcreg provides wait-free multi-word atomic (1,N) registers for
// large-scale data sharing between one writer and many readers on
// multi-core machines, implementing Anonymous Readers Counting (ARC) from
// Ianni, Pellegrini & Quaglia, "A Wait-free Multi-word Atomic (1,N)
// Register for Large-scale Data Sharing on Multi-core Machines"
// (CLUSTER 2017, arXiv:1707.07478), together with the baselines the paper
// evaluates against and an (M,N) multi-writer extension.
//
// # The problem
//
// Hardware atomicity covers single words; sharing a multi-word value (a
// configuration blob, a statistics snapshot, an order book) between one
// producer and many consumers needs an algorithm. Locks serialize readers
// against the writer and collapse when a lock holder loses its CPU;
// classical wait-free registers copy the value multiple times per
// operation. ARC gives every operation a bounded, constant number of
// steps, copies the value exactly once (on write — reads are zero-copy),
// admits up to 2³²−2 concurrent readers, and needs only N+2 value buffers.
//
// # Quick start
//
// New is the generics-first entry point: one constructor for every
// algorithm, both writer shapes, and any encoding. The defaults are the
// paper's algorithm (ARC) over encoding/json, seeded with T's zero
// value:
//
//	type Limits struct{ RPS, Burst int }
//
//	reg, err := arcreg.New[Limits]()
//	if err != nil { ... }
//
//	// One goroutine writes:
//	_ = reg.Set(Limits{RPS: 100, Burst: 250})
//
//	// Up to Readers goroutines read, each through its own handle:
//	rd, _ := reg.NewReader()
//	defer rd.Close()
//	v, _ := rd.Get()          // decoded straight from the slot, no copy
//
// Options select the construction, shape, capacity and codec:
//
//	reg, err := arcreg.New[Snapshot](
//		arcreg.WithAlgorithm(arcreg.ARC), // or RF, Peterson, Lock, Seqlock, LeftRight
//		arcreg.WithWriters(4),            // M > 1 selects the (M,N) composition
//		arcreg.WithReaders(64),
//		arcreg.WithMaxValueSize(32<<10),
//		arcreg.WithCodec(arcreg.Binary[Snapshot]()),
//		arcreg.WithInitial(Snapshot{Epoch: 1}),
//	)
//
// The handles are capability-complete — Get, ViewBytes, Fresh,
// ReadStats/WriteStats, and the Watch/Values change iterators are
// methods, with Reg.Caps reporting at construction time what the
// chosen algorithm supports (no type assertions):
//
//	for v, err := range rd.Watch(ctx) {
//		if err != nil { break } // ctx.Err() or a read/decode error
//		apply(v) // runs once per observed change; the watcher parks
//		         // between changes and wakes in ~µs on publication
//	}
//
// To share more than one value, NewMap is the keyed store with the same
// option set — every key its own wait-free register, with the full
// lifecycle:
//
//	m, err := arcreg.NewMap[Session](arcreg.WithShards(16))
//	rd, err := m.NewReader()
//	_ = m.Set("alice", Session{Node: "n1"})  // create or update
//	s, err := rd.Get("alice")                // 2 atomic loads when unchanged
//	_ = m.Delete("alice")                    // tombstone; no resurrection
//	all, err := rd.Snapshot()                // atomic multi-key view
//
// # Watching for changes
//
// Watch is the event-driven subscription surface: instead of polling,
// a watcher parks on the register's publication sequencer
// (internal/notify) and is woken by the next publication — wakeup
// latency is microseconds, an idle watcher consumes nothing, and the
// writer's publish path stays zero-RMW and allocation-free while no
// watcher is parked (BenchmarkSetWithWatcherIdle vs BenchmarkSet).
// Delivery is at-least-once per publication with latest-value
// conflation: the register holds one value, so a slow consumer simply
// observes fewer, newer values and can never build a backlog or block
// the writer.
//
//	rd, _ := reg.NewReader()
//	for v, err := range rd.Watch(ctx) { ... }   // every change, parked
//
//	select {                                    // one-shot, select-friendly
//	case <-reg.Changed(ctx): ...
//	case <-timeout: ...
//	}
//
//	mrd, _ := m.NewReader()
//	for v, err := range mrd.Watch(ctx, "alice") { ... } // one key: woken by
//	    // its changes and lifecycle only; a delete yields ErrKeyNotFound
//	    // once and the watch survives re-creation (fresh incarnation,
//	    // never resurrected bytes)
//	for d, err := range mrd.WatchAll(ctx) { ... }       // whole map: a
//	    // snapshot-delta stream; every event derives from one atomic
//	    // Snapshot
//
// Caps.Watchable reports whether the construction carries a sequencer
// (ARC, the (M,N) composition, the map); the other algorithms serve
// Watch and Changed through a millisecond poll fallback. Values(every)
// remains as the explicit polling shim over the same engine.
//
// # Capabilities
//
// register.Caps declares what each construction's handles support; New
// and NewMap resolve it once at construction (Reg.Caps, Map.Caps), so
// application code branches on fields instead of type-asserting. A true
// field is a promise, a false one is advisory. Per algorithm:
//
//   - ARC: the full set — ZeroCopyView, FreshProbe, FreshView,
//     ReadStats, WriteStats, WaitFreeRead, WaitFreeWrite, Watchable.
//   - RF: ZeroCopyView, FreshProbe, stats and wait-freedom on both
//     sides — everything but the combined FreshView probe-and-fetch
//     (and every read costs one RMW, which Caps does not model; see
//     the rmw figure).
//   - Peterson: WaitFreeRead/WaitFreeWrite and stats only — reads copy
//     (up to three times) and cannot probe freshness.
//   - Lock: ZeroCopyView (a view pins the read lock) and stats, but
//     neither side is wait-free: WaitFreeRead/WaitFreeWrite are false.
//   - Seqlock: WaitFreeWrite but not WaitFreeRead (reads retry while a
//     write overlaps); no views (reads copy under the seqcount).
//   - LeftRight: ZeroCopyView and WaitFreeRead, but writes block on
//     readers (WaitFreeWrite false).
//   - The (M,N) composite and the Map inherit ARC's full set
//     (including Watchable); the map-level Fresh probe spans the
//     directory and the key register.
//
// Handles degrade conservatively where a capability is absent: Fresh
// reports false (forcing a re-read), stats report zero, ViewBytes
// returns ErrNoView, Watch and Changed fall back to polling. The harness summary tables (cmd/arcbench -figure
// rmw/latency) print the WaitFree capabilities per row, so measured
// numbers and progress guarantees read side by side.
//
// # Codecs
//
// Codec[T] is the one encoding layer every typed surface shares: JSON
// (the default), Gob (binary stdlib encoding for Go value graphs), Raw
// (zero-copy []byte passthrough with view semantics), String, and
// Binary (encoding.BinaryMarshaler/Unmarshaler) are built in;
// implement the interface to plug in any wire format. Decoders must not retain the slice they are handed — it
// may alias a register slot that is recycled after the decode returns
// (Raw is the documented exception).
//
// # Choosing an algorithm
//
//   - ARC — the paper's algorithm; wait-free, constant-time reads,
//     amortized constant-time writes, zero-copy views. Use this (it is
//     the default).
//   - RF — the Readers-Field register (Larsson et al. 2009); wait-free
//     but pays one RMW per read and is limited to 58 readers. The
//     paper's principal baseline.
//   - Peterson — Peterson's 1983 construction from single-word
//     registers; wait-free without any RMW instruction, but reads copy
//     the value up to three times. Historical baseline.
//   - Lock — a reader/writer-spinlock register; simple but not
//     wait-free: one preempted reader stalls the writer. Comparator.
//   - Seqlock, LeftRight — extension baselines beyond the paper (see
//     their constant docs for the trade-offs).
//
// WithWriters(m > 1) composes M ARC registers into an (M,N) multi-
// writer register with tag-based ordering, a freshness-gated collect
// and an adaptive epoch gate (one-load all-fresh scans). NewMap scales
// the primitive to a keyed store instead — use it when you share more
// than one value.
//
// # Byte-level access
//
// The untyped constructors remain for code that works in raw bytes:
// NewARC, NewRF, NewPeterson, NewLocked, NewSeqlock, NewLeftRight
// return Register (one Writer, per-goroutine Readers, optional Viewer/
// FreshnessProber capabilities), NewMN the (M,N) composite, NewByteMap
// the keyed store. All of them share or adapt to the Register/Reader/
// Writer interfaces, so they are interchangeable in application code
// and in the bundled benchmark harness (cmd/arcbench) that regenerates
// the paper's figures. Reg.Register/Reg.MN expose the byte register
// underneath a typed facade; TypedReader.ViewBytes/ReadBytes and
// TypedWriter.SetBytes bypass the codec per call.
//
// # The (M,N) fresh-gated collect
//
// The (M,N) composite preserves ARC's zero-RMW steady state at the
// composite level. Every scan handle caches the last decoded (tag,
// view) per component; a read probes each component with ARC's
// freshness check (one atomic load, no RMW — the paper's R1 comparison
// exposed standalone) and re-reads and re-decodes only components that
// actually changed, keeping a running argmax so an all-fresh scan
// returns the cached winner immediately. Writers skip their own
// component entirely: its tag is their own last publish. A steady-state
// read therefore costs M atomic loads with zero RMW instructions and
// zero tag decoding; measured at M=4 this is ~2.7x faster than the
// always-scan collect (MNConfig.DisableFreshGate re-enables the old
// path for ablation).
//
// The RMW economy is observable: MNReader.ReadStats aggregates
// component RMW per composite read (the mn-rmw/read metric reported by
// BenchmarkRMWCount and cmd/arcbench -figure rmw), and MNWriter
// .WriteStats folds the collect cost into the publish-side counters.
// See DESIGN.md for the design notes and measured numbers.
//
// # The sharded snapshot map
//
// Map scales the register to an addressable store: keys are partitioned
// over shards, each key owns an ARC register, and each shard publishes
// its key directory — an append-only log of add and tombstone entries —
// through a further ARC register, so key lookup, enumeration, and value
// reads are all wait-free zero-copy register reads. Per-reader handles
// cache the decoded directory behind ARC's freshness probe: a Get of an
// unchanged hot key is two atomic loads with zero RMW instructions
// regardless of map size, observable through MapReader.ReadStats
// (BenchmarkMapGet; cmd/arcbench -figure map sweeps key counts ×
// threads under Zipf popularity, with -delete-every and -snapshot-every
// mixing in the lifecycle operations).
//
// The lifecycle is complete: Delete publishes a tombstone through the
// directory register (the hot-key read path is untouched — still two
// loads, zero RMW), the key's slot is recycled, and a re-created key
// gets a fresh value register so deleted values can never resurrect.
// MapReader.Snapshot returns an atomic point-in-time copy of every live
// key across all shards, built on per-shard validated publish counters
// (the mnreg epoch-gate technique): no RMW instructions, one pass at
// steady state, re-collecting only shards observed to move (DESIGN.md
// §7 has the linearization argument). Typed access mirrors the
// single-register API: NewMap[T] shares New's option set and returns
// capability-complete handles (Get, Fresh, Keys, Snapshot, a per-key
// Values poll iterator); the same Codec[T] layer plugs in throughout.
package arcreg
