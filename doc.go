// Package arcreg provides wait-free multi-word atomic (1,N) registers for
// large-scale data sharing between one writer and many readers on
// multi-core machines, implementing Anonymous Readers Counting (ARC) from
// Ianni, Pellegrini & Quaglia, "A Wait-free Multi-word Atomic (1,N)
// Register for Large-scale Data Sharing on Multi-core Machines"
// (CLUSTER 2017, arXiv:1707.07478), together with the baselines the paper
// evaluates against and an (M,N) multi-writer extension.
//
// # The problem
//
// Hardware atomicity covers single words; sharing a multi-word value (a
// configuration blob, a statistics snapshot, an order book) between one
// producer and many consumers needs an algorithm. Locks serialize readers
// against the writer and collapse when a lock holder loses its CPU;
// classical wait-free registers copy the value multiple times per
// operation. ARC gives every operation a bounded, constant number of
// steps, copies the value exactly once (on write — reads are zero-copy),
// admits up to 2³²−2 concurrent readers, and needs only N+2 value buffers.
//
// # Quick start
//
//	reg, err := arcreg.NewARC(arcreg.Config{
//		MaxReaders:   8,
//		MaxValueSize: 4096,
//	})
//	if err != nil { ... }
//
//	// One goroutine writes:
//	w := reg.Writer()
//	_ = w.Write(snapshot)
//
//	// Up to MaxReaders goroutines read, each through its own handle:
//	rd, _ := reg.NewReader()
//	buf := make([]byte, 4096)
//	n, _ := rd.Read(buf)      // copying read
//	v, _ := arcreg.View(rd)   // zero-copy view (valid until rd's next op)
//
// # Choosing an implementation
//
//   - NewARC — the paper's algorithm; wait-free, constant-time reads,
//     amortized constant-time writes, zero-copy views. Use this.
//   - NewRF — the Readers-Field register (Larsson et al. 2009); wait-free
//     but pays one RMW per read and is limited to 58 readers. Provided as
//     the paper's principal baseline.
//   - NewPeterson — Peterson's 1983 construction from single-word
//     registers; wait-free without any RMW instruction, but reads copy
//     the value up to three times. Historical baseline.
//   - NewLocked — a reader/writer-spinlock register; simple but not
//     wait-free: one preempted reader stalls the writer. Comparator.
//   - NewMN — an (M,N) multi-writer register composed from M ARC
//     registers with tag-based ordering, a freshness-gated collect and
//     an adaptive epoch gate (one-load all-fresh scans).
//   - NewMap — a sharded, keyed store where every key is its own ARC
//     register and each shard publishes its key directory through a
//     directory ARC register: a wait-free snapshot map scaling the
//     primitive to many values. Use this when you share more than one
//     value.
//
// All of them share or adapt to the Register/Reader/Writer interfaces,
// so they are interchangeable in application code and in the bundled
// benchmark harness (cmd/arcbench) that regenerates the paper's
// figures.
//
// # The (M,N) fresh-gated collect
//
// The (M,N) composite preserves ARC's zero-RMW steady state at the
// composite level. Every scan handle caches the last decoded (tag,
// view) per component; a read probes each component with ARC's
// freshness check (one atomic load, no RMW — the paper's R1 comparison
// exposed standalone) and re-reads and re-decodes only components that
// actually changed, keeping a running argmax so an all-fresh scan
// returns the cached winner immediately. Writers skip their own
// component entirely: its tag is their own last publish. A steady-state
// read therefore costs M atomic loads with zero RMW instructions and
// zero tag decoding; measured at M=4 this is ~2.7x faster than the
// always-scan collect (MNConfig.DisableFreshGate re-enables the old
// path for ablation).
//
// The RMW economy is observable: MNReader.ReadStats aggregates
// component RMW per composite read (the mn-rmw/read metric reported by
// BenchmarkRMWCount and cmd/arcbench -figure rmw), and MNWriter
// .WriteStats folds the collect cost into the publish-side counters.
// See DESIGN.md for the design notes and measured numbers.
//
// # The sharded snapshot map
//
// Map scales the register to an addressable store: keys are partitioned
// over shards, each key owns an ARC register, and each shard publishes
// its growable key directory through a further ARC register — so key
// lookup, enumeration, and value reads are all wait-free zero-copy
// register reads. Per-reader handles cache the decoded directory behind
// ARC's freshness probe: a Get of an unchanged hot key is two atomic
// loads with zero RMW instructions regardless of map size, observable
// through MapReader.ReadStats (BenchmarkMapGet; cmd/arcbench -figure
// map sweeps key counts × threads under Zipf popularity). Typed access
// mirrors the single-register API: MapOf[T]/NewJSONMap for the map,
// Typed[T]/NewJSON for (1,N), TypedMN[T]/NewJSONMN for (M,N).
package arcreg
