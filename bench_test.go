package arcreg_test

// One benchmark per paper table/figure, plus the per-operation
// micro-benchmarks behind them. The figure benchmarks drive the same
// harness as cmd/arcbench with scaled-down sweeps (this is `go test
// -bench`, not the full evaluation — run `arcbench -figure all` for the
// paper-sized tables); each reports the ARC throughput of its headline
// cell as a custom metric alongside ns/op.
//
// Index (see DESIGN.md for the full experiment-to-benchmark mapping):
//
//	BenchmarkFig1a/b/c      — Figure 1: thread sweep at 4/32/128KB, physical
//	BenchmarkFig2a/b/c      — Figure 2: same under CPU-steal (virtualized)
//	BenchmarkFig3a/b/c      — Figure 3: oversubscribed thread counts
//	BenchmarkProcessing     — §5 second workload (ops with processing)
//	BenchmarkRMWCount       — RMW-per-read accounting, ARC vs RF vs (M,N)
//	BenchmarkAblationFastPath / BenchmarkAblationFreeHint
//	BenchmarkRead*/BenchmarkWrite* — per-op costs per algorithm
//	BenchmarkMN*, BenchmarkFigMN — the (M,N) extension and its fresh-gate
//	ablation (BenchmarkMNReadNoFreshGate)

import (
	"runtime"
	"testing"
	"time"

	"arcreg"
	"arcreg/internal/harness"
	"arcreg/internal/membuf"
	"arcreg/internal/workload"
)

// benchWindow is the per-cell measurement window for figure benchmarks.
const benchWindow = 60 * time.Millisecond

// runFigure executes a scaled figure once per b.Loop iteration and
// reports the ARC (or first-algorithm) throughput at the largest thread
// count as the headline metric.
func runFigure(b *testing.B, fig harness.Figure) {
	b.Helper()
	var headline float64
	for b.Loop() {
		data, err := fig.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		alg := fig.Algorithms[0]
		series := data.Series(alg, fig.Sizes[0])
		if len(series) == 0 {
			b.Fatalf("no cells for %s", alg)
		}
		last := series[len(series)-1]
		if last.Err == nil {
			headline = last.Result.Mops()
		}
	}
	b.ReportMetric(headline, "Mops")
}

// scaledPaperFigure shrinks a paper figure to bench dimensions: a single
// size panel, thread counts capped to the host.
func scaledPaperFigure(fig harness.Figure, size int, threads []int) harness.Figure {
	fig.Sizes = []int{size}
	fig.Threads = threads
	fig.Duration = benchWindow
	fig.Warmup = 10 * time.Millisecond
	return fig
}

func hostThreads() []int {
	n := runtime.NumCPU()
	if n >= 4 {
		return []int{2, n}
	}
	return []int{2, 4}
}

// --- Figure 1: throughput vs threads, physical machine ----------------

func BenchmarkFig1a_4KB(b *testing.B) {
	runFigure(b, scaledPaperFigure(harness.Fig1(), 4<<10, hostThreads()))
}

func BenchmarkFig1b_32KB(b *testing.B) {
	runFigure(b, scaledPaperFigure(harness.Fig1(), 32<<10, hostThreads()))
}

func BenchmarkFig1c_128KB(b *testing.B) {
	runFigure(b, scaledPaperFigure(harness.Fig1(), 128<<10, hostThreads()))
}

// --- Figure 2: virtualized host (CPU-steal simulation) ----------------

func BenchmarkFig2a_4KB(b *testing.B) {
	runFigure(b, scaledPaperFigure(harness.Fig2(), 4<<10, hostThreads()))
}

func BenchmarkFig2b_32KB(b *testing.B) {
	runFigure(b, scaledPaperFigure(harness.Fig2(), 32<<10, hostThreads()))
}

func BenchmarkFig2c_128KB(b *testing.B) {
	runFigure(b, scaledPaperFigure(harness.Fig2(), 128<<10, hostThreads()))
}

// --- Figure 3: oversubscribed thread counts ----------------------------

// fig3Threads scales the 1000–4000 sweep to bench time; the time-sharing
// regime already holds once goroutines ≫ cores.
func fig3Threads() []int { return []int{64, 256} }

func BenchmarkFig3a_4KB(b *testing.B) {
	runFigure(b, scaledPaperFigure(harness.Fig3(), 4<<10, fig3Threads()))
}

func BenchmarkFig3b_32KB(b *testing.B) {
	runFigure(b, scaledPaperFigure(harness.Fig3(), 32<<10, fig3Threads()))
}

func BenchmarkFig3c_128KB(b *testing.B) {
	runFigure(b, scaledPaperFigure(harness.Fig3(), 128<<10, fig3Threads()))
}

// --- §5 second workload: operations with processing --------------------

func BenchmarkProcessing_32KB(b *testing.B) {
	runFigure(b, scaledPaperFigure(harness.FigProcessing(), 32<<10, hostThreads()))
}

// --- RMW accounting: the paper's synchronization-economy claim ---------

func BenchmarkRMWCount(b *testing.B) {
	var arcPerRead, rfPerRead, mnPerRead float64
	for b.Loop() {
		rep, err := harness.RunRMWComparison(hostThreads(), 4<<10, benchWindow, 10*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rep.Rows {
			switch row.Algorithm {
			case harness.AlgARC:
				arcPerRead = row.RMWPerRead()
			case harness.AlgRF:
				rfPerRead = row.RMWPerRead()
			}
		}
		// (M,N) composite accounting: M=2 writers, fresh-gated collect.
		mnRep, err := harness.RunMNRMWComparison([]int{4}, 2, 4<<10, benchWindow, 10*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range mnRep.Rows {
			if row.Algorithm == harness.AlgMN {
				mnPerRead = row.RMWPerRead()
			}
		}
	}
	b.ReportMetric(arcPerRead, "arc-rmw/read")
	b.ReportMetric(rfPerRead, "rf-rmw/read")
	b.ReportMetric(mnPerRead, "mn-rmw/read")
}

// --- Ablations ----------------------------------------------------------

func benchAblation(b *testing.B, variant harness.Algorithm, metric string) {
	threads := hostThreads()
	th := threads[len(threads)-1]
	var baseline, ablated float64
	for b.Loop() {
		for _, alg := range []harness.Algorithm{harness.AlgARC, variant} {
			res, err := harness.Run(harness.RunConfig{
				Algorithm: alg,
				Threads:   th,
				ValueSize: 4 << 10,
				Mode:      workload.Dummy,
				Duration:  benchWindow,
				Warmup:    10 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			if alg == harness.AlgARC {
				baseline = res.Mops()
			} else {
				ablated = res.Mops()
			}
		}
	}
	b.ReportMetric(baseline, "arc-Mops")
	b.ReportMetric(ablated, metric)
}

// BenchmarkAblationFastPath quantifies the R1–R2 read fast path by
// comparing ARC with the variant that RMWs on every read.
func BenchmarkAblationFastPath(b *testing.B) {
	benchAblation(b, harness.AlgARCNoFast, "nofastpath-Mops")
}

// BenchmarkAblationFreeHint quantifies the §3.4 reader-posted hint by
// comparing against the plain W1 linear scan.
func BenchmarkAblationFreeHint(b *testing.B) {
	benchAblation(b, harness.AlgARCNoHint, "nohint-Mops")
}

// --- Per-operation micro-benchmarks -------------------------------------

func mkRegister(b *testing.B, mk func(arcreg.Config) (arcreg.Register, error), size int) (arcreg.Register, arcreg.Reader) {
	b.Helper()
	seed := make2(size)
	reg, err := mk(arcreg.Config{MaxReaders: 4, MaxValueSize: size, Initial: seed})
	if err != nil {
		b.Fatal(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		b.Fatal(err)
	}
	return reg, rd
}

func make2(size int) []byte {
	buf := make([]byte, size)
	membuf.Encode(buf, 1)
	return buf
}

func benchReadUncontended(b *testing.B, mk func(arcreg.Config) (arcreg.Register, error), size int) {
	_, rd := mkRegister(b, mk, size)
	dst := make([]byte, size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Read(dst); err != nil {
			b.Fatal(err)
		}
	}
}

func benchViewUncontended(b *testing.B, mk func(arcreg.Config) (arcreg.Register, error), size int) {
	_, rd := mkRegister(b, mk, size)
	v, ok := rd.(arcreg.Viewer)
	if !ok {
		b.Skip("algorithm has no zero-copy view")
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.View(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWriteUncontended(b *testing.B, mk func(arcreg.Config) (arcreg.Register, error), size int) {
	reg, rd := mkRegister(b, mk, size)
	defer rd.Close()
	val := make2(size)
	w := reg.Writer()
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadARC_4KB(b *testing.B) {
	benchReadUncontended(b, func(c arcreg.Config) (arcreg.Register, error) { return arcreg.NewARC(c) }, 4<<10)
}

func BenchmarkReadRF_4KB(b *testing.B)       { benchReadUncontended(b, arcreg.NewRF, 4<<10) }
func BenchmarkReadPeterson_4KB(b *testing.B) { benchReadUncontended(b, arcreg.NewPeterson, 4<<10) }
func BenchmarkReadLock_4KB(b *testing.B)     { benchReadUncontended(b, arcreg.NewLocked, 4<<10) }

// BenchmarkViewARC is the paper's headline read path: zero copies, zero
// RMW on unchanged content — compare its ns/op with BenchmarkViewRF's,
// which pays a FetchAndOr every time.
func BenchmarkViewARC(b *testing.B) {
	benchViewUncontended(b, func(c arcreg.Config) (arcreg.Register, error) { return arcreg.NewARC(c) }, 4<<10)
}

func BenchmarkViewRF(b *testing.B)   { benchViewUncontended(b, arcreg.NewRF, 4<<10) }
func BenchmarkViewLock(b *testing.B) { benchViewUncontended(b, arcreg.NewLocked, 4<<10) }

// --- facade overhead ---------------------------------------------------

// BenchmarkFacadeRawGet measures the typed facade's steady-state read
// over the Raw codec: New[[]byte] + TypedReader.Get against the raw
// BenchmarkViewARC path it wraps. The delta is the cost of the
// capability-complete handle (one codec-interface call; the codec
// itself is the identity).
func BenchmarkFacadeRawGet(b *testing.B) {
	reg, err := arcreg.New[[]byte](
		arcreg.WithCodec(arcreg.Raw()),
		arcreg.WithReaders(1),
		arcreg.WithMaxValueSize(4<<10),
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := reg.Set(make([]byte, 4<<10)); err != nil {
		b.Fatal(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		b.Fatal(err)
	}
	defer rd.Close()
	b.SetBytes(4 << 10)
	for b.Loop() {
		if _, err := rd.Get(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacadeFresh measures the handle freshness probe — ARC's R1
// comparison through the facade: one atomic load, no RMW, no decode.
func BenchmarkFacadeFresh(b *testing.B) {
	reg, err := arcreg.New[[]byte](
		arcreg.WithCodec(arcreg.Raw()),
		arcreg.WithReaders(1),
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := reg.Set([]byte("steady")); err != nil {
		b.Fatal(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		b.Fatal(err)
	}
	defer rd.Close()
	if _, err := rd.Get(); err != nil {
		b.Fatal(err)
	}
	for b.Loop() {
		if !rd.Fresh() {
			b.Fatal("steady-state handle went stale")
		}
	}
}

func BenchmarkWriteARC_4KB(b *testing.B) {
	benchWriteUncontended(b, func(c arcreg.Config) (arcreg.Register, error) { return arcreg.NewARC(c) }, 4<<10)
}

func BenchmarkWriteRF_4KB(b *testing.B)       { benchWriteUncontended(b, arcreg.NewRF, 4<<10) }
func BenchmarkWritePeterson_4KB(b *testing.B) { benchWriteUncontended(b, arcreg.NewPeterson, 4<<10) }
func BenchmarkWriteLock_4KB(b *testing.B)     { benchWriteUncontended(b, arcreg.NewLocked, 4<<10) }

// Size sensitivity of writes (the memcopy is the dominant cost; the paper
// leans on this for the 32KB/128KB panels).
func BenchmarkWriteARC_128KB(b *testing.B) {
	benchWriteUncontended(b, func(c arcreg.Config) (arcreg.Register, error) { return arcreg.NewARC(c) }, 128<<10)
}

func BenchmarkWritePeterson_128KB(b *testing.B) {
	benchWriteUncontended(b, arcreg.NewPeterson, 128<<10)
}

// --- (M,N) extension -----------------------------------------------------

// benchMNSteadyRead measures the steady-state composite read: every
// component holds a value, no writer publishes during the measurement —
// the "readers over an idle interval between writes" regime. With the
// adaptive epoch gate the whole scan is ONE atomic load; with only the
// per-component fresh gate it is M loads (zero RMW, zero tag decoding
// either way); the full ablation performs M ARC reads per scan. The
// mn-rmw/read metric comes from the composite ReadStats.
func benchMNSteadyRead(b *testing.B, cfg arcreg.MNConfig) {
	b.Helper()
	const m = 4
	cfg.Writers, cfg.Readers, cfg.MaxValueSize = m, 2, 1024
	reg, err := arcreg.NewMN(cfg)
	if err != nil {
		b.Fatal(err)
	}
	val := make2(1024)
	for i := 0; i < m; i++ {
		w, err := reg.NewWriter()
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Write(val); err != nil {
			b.Fatal(err)
		}
		defer w.Close()
	}
	rd, err := reg.NewReader()
	if err != nil {
		b.Fatal(err)
	}
	defer rd.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.View(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := rd.ReadStats()
	if st.Ops > 0 {
		b.ReportMetric(float64(st.RMW)/float64(st.Ops), "mn-rmw/read")
		b.ReportMetric(100*float64(st.FastPath)/float64(st.Ops), "fresh-scan-%")
	}
}

// BenchmarkMNRead is the headline (M,N) read cost with all gates on:
// ~0 mn-rmw/read in the steady state (the only RMW instructions are the
// first scan's M slot acquisitions) and one atomic load per scan once
// the epoch gate validates. Compare with BenchmarkMNReadNoFreshGate, the
// always-View ablation — the acceptance bar for the gates is ≥2x ns/op
// at M=4.
func BenchmarkMNRead(b *testing.B) { benchMNSteadyRead(b, arcreg.MNConfig{}) }

// BenchmarkMNReadFreshGate names the gated variant explicitly so the
// ablation pair reads side by side in
// `go test -bench 'BenchmarkMNRead(No)?FreshGate'` output.
func BenchmarkMNReadFreshGate(b *testing.B) { benchMNSteadyRead(b, arcreg.MNConfig{}) }

// BenchmarkMNReadNoEpochGate isolates the adaptive epoch gate: the
// per-component fresh gate stays on, so a steady scan is M probe loads
// instead of one epoch load.
func BenchmarkMNReadNoEpochGate(b *testing.B) {
	benchMNSteadyRead(b, arcreg.MNConfig{DisableEpochGate: true})
}

// BenchmarkMNReadNoFreshGate is the DisableFreshGate ablation: every scan
// re-Views and re-decodes all M components.
func BenchmarkMNReadNoFreshGate(b *testing.B) {
	benchMNSteadyRead(b, arcreg.MNConfig{DisableFreshGate: true})
}

func BenchmarkMNWrite(b *testing.B) {
	reg, err := arcreg.NewMN(arcreg.MNConfig{Writers: 4, Readers: 2, MaxValueSize: 1024})
	if err != nil {
		b.Fatal(err)
	}
	w, err := reg.NewWriter()
	if err != nil {
		b.Fatal(err)
	}
	val := make2(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigMN drives the harness's (M,N) thread sweep (gated vs
// ablated collect) at bench scale; `arcbench -figure mn` runs the full
// version.
func BenchmarkFigMN(b *testing.B) {
	fig := harness.FigMN()
	fig.Writers = 2
	runFigure(b, scaledPaperFigure(fig, 4<<10, []int{3, 5}))
}

// --- contended read benchmark: the regime the figures measure -----------

func benchContendedReads(b *testing.B, alg harness.Algorithm, size int) {
	// RunParallel spawns GOMAXPROCS workers; leave headroom for -cpu runs.
	maxReaders := runtime.GOMAXPROCS(0) * 2
	if maxReaders < 4 {
		maxReaders = 4
	}
	reg, err := harness.NewRegister(alg, arcreg.Config{MaxReaders: maxReaders, MaxValueSize: size, Initial: make2(size)})
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() { // background writer at full tilt
		ww := workload.NewWriterWork(reg.Writer(), workload.Dummy, size)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := ww.Do(); err != nil {
				return
			}
		}
	}()
	b.RunParallel(func(pb *testing.PB) {
		rd, err := reg.NewReader()
		if err != nil {
			b.Error(err)
			return
		}
		defer rd.Close()
		rw := workload.NewReaderWork(rd, workload.Dummy, size)
		for pb.Next() {
			if err := rw.Do(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkContendedReadARC(b *testing.B)      { benchContendedReads(b, harness.AlgARC, 4<<10) }
func BenchmarkContendedReadRF(b *testing.B)       { benchContendedReads(b, harness.AlgRF, 4<<10) }
func BenchmarkContendedReadPeterson(b *testing.B) { benchContendedReads(b, harness.AlgPeterson, 4<<10) }
func BenchmarkContendedReadLock(b *testing.B)     { benchContendedReads(b, harness.AlgLock, 4<<10) }

// Extension baselines (beyond the paper's comparison set).
func BenchmarkContendedReadSeqlock(b *testing.B) { benchContendedReads(b, harness.AlgSeqlock, 4<<10) }
func BenchmarkContendedReadLeftRight(b *testing.B) {
	benchContendedReads(b, harness.AlgLeftRight, 4<<10)
}

func BenchmarkReadSeqlock_4KB(b *testing.B)   { benchReadUncontended(b, arcreg.NewSeqlock, 4<<10) }
func BenchmarkReadLeftRight_4KB(b *testing.B) { benchReadUncontended(b, arcreg.NewLeftRight, 4<<10) }
func BenchmarkViewLeftRight(b *testing.B)     { benchViewUncontended(b, arcreg.NewLeftRight, 4<<10) }

func BenchmarkWriteSeqlock_4KB(b *testing.B) { benchWriteUncontended(b, arcreg.NewSeqlock, 4<<10) }
func BenchmarkWriteLeftRight_4KB(b *testing.B) {
	benchWriteUncontended(b, arcreg.NewLeftRight, 4<<10)
}

// BenchmarkExtensions mirrors the "extensions" figure: ARC vs seqlock vs
// Left-Right on the standard sweep.
func BenchmarkExtensions_4KB(b *testing.B) {
	runFigure(b, scaledPaperFigure(harness.FigExtensions(), 4<<10, hostThreads()))
}
