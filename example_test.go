package arcreg_test

import (
	"context"
	"fmt"
	"sort"
	"time"

	"arcreg"
)

// The canonical usage: New builds an ARC register over JSON; one
// goroutine Sets, readers Get wait-free through their own handles.
func ExampleNew() {
	type limits struct {
		RPS   int `json:"rps"`
		Burst int `json:"burst"`
	}
	reg, err := arcreg.New[limits](
		arcreg.WithReaders(4),
		arcreg.WithMaxValueSize(256),
	)
	if err != nil {
		panic(err)
	}
	if err := reg.Set(limits{RPS: 100, Burst: 250}); err != nil {
		panic(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		panic(err)
	}
	defer rd.Close()
	cfg, err := rd.Get()
	if err != nil {
		panic(err)
	}
	fmt.Printf("rps=%d burst=%d\n", cfg.RPS, cfg.Burst)
	// Output: rps=100 burst=250
}

// WithWriters selects the (M,N) multi-writer composition: several
// writers, totally ordered by tag, same handle surface.
func ExampleNew_multiWriter() {
	reg, err := arcreg.New[string](
		arcreg.WithWriters(2),
		arcreg.WithReaders(1),
		arcreg.WithCodec(arcreg.String()),
		arcreg.WithMaxValueSize(32),
	)
	if err != nil {
		panic(err)
	}
	w0, _ := reg.NewWriter()
	w1, _ := reg.NewWriter()
	rd, _ := reg.NewReader()
	defer rd.Close()

	w0.Set("from writer zero")
	w1.Set("from writer one") // outbids w0's tag
	v, _ := rd.Get()
	fmt.Println(v)
	// Output: from writer one
}

// Capability discovery is first-class: Caps is resolved at
// construction, so code branches on fields instead of type-asserting
// handles.
func ExampleReg_Caps() {
	reg, _ := arcreg.New[int](arcreg.WithAlgorithm(arcreg.Peterson), arcreg.WithReaders(1))
	caps := reg.Caps()
	fmt.Println("zero-copy views:", caps.ZeroCopyView)
	fmt.Println("freshness probe:", caps.FreshProbe)
	fmt.Println("wait-free reads:", caps.WaitFreeRead)
	// Output:
	// zero-copy views: false
	// freshness probe: false
	// wait-free reads: true
}

// Freshness probing: skip work when nothing changed, for the cost of
// one atomic load (no RMW instruction).
func ExampleTypedReader_Fresh() {
	reg, _ := arcreg.New[string](
		arcreg.WithCodec(arcreg.String()),
		arcreg.WithReaders(1), arcreg.WithMaxValueSize(32))
	rd, _ := reg.NewReader()
	defer rd.Close()

	reg.Set("v1")
	rd.Get()
	fmt.Println("after read:", rd.Fresh())

	reg.Set("v2")
	fmt.Println("after write:", rd.Fresh())
	// Output:
	// after read: true
	// after write: false
}

// Values polls for changes: each idle poll is one freshness probe (on
// ARC one atomic load, zero RMW, zero decoding); every observed change
// is yielded exactly once.
func ExampleTypedReader_Values() {
	reg, _ := arcreg.New[int](arcreg.WithReaders(1))
	rd, _ := reg.NewReader()
	defer rd.Close()

	go func() {
		for i := 1; i <= 3; i++ {
			reg.Set(i * 10)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var seen []int
	for v, err := range rd.Values(100 * time.Microsecond) {
		if err != nil {
			panic(err)
		}
		seen = append(seen, v)
		if v == 30 {
			break
		}
	}
	// Polling observes the freshest value, so intermediate publications
	// may be skipped — but changes arrive in order and the last write
	// is always seen.
	fmt.Println("last:", seen[len(seen)-1], "ordered:", sort.IntsAreSorted(seen))
	// Output: last: 30 ordered: true
}

// Watch is the event-driven counterpart of Values: the watcher parks
// on the register's publication sequencer between changes (no polling,
// no idle cost, microsecond wakeups) and the writer's publish path
// stays RMW- and allocation-free while nobody is parked. Delivery is
// at-least-once with latest-value conflation: a slow watcher sees
// fewer, newer values and never blocks the writer.
func ExampleTypedReader_Watch() {
	reg, _ := arcreg.New[int](arcreg.WithReaders(1))
	rd, _ := reg.NewReader()
	defer rd.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	go func() {
		for i := 1; i <= 3; i++ {
			reg.Set(i * 10)
		}
	}()

	var seen []int
	for v, err := range rd.Watch(ctx) {
		if err != nil {
			break // ctx.Err() or a read/decode error
		}
		seen = append(seen, v)
		if v == 30 {
			break
		}
	}
	fmt.Println("last:", seen[len(seen)-1], "ordered:", sort.IntsAreSorted(seen))
	// Output: last: 30 ordered: true
}

// NewMap is the keyed store with the same option set as New: every key
// is its own wait-free ARC register, and the full lifecycle — create,
// update, delete, re-create — runs without a single lock. This is the
// examples/kvstore pattern in miniature.
func ExampleNewMap() {
	type session struct {
		User  string
		Epoch int
	}
	store, err := arcreg.NewMap[session](
		arcreg.WithShards(4),
		arcreg.WithReaders(2),
		arcreg.WithMaxValueSize(256),
	)
	if err != nil {
		panic(err)
	}
	rd, err := store.NewReader()
	if err != nil {
		panic(err)
	}
	defer rd.Close()

	_ = store.Set("alice", session{User: "alice", Epoch: 1})
	_ = store.Set("bob", session{User: "bob", Epoch: 1})
	s, _ := rd.Get("alice")
	fmt.Printf("alice@%d of %d sessions\n", s.Epoch, store.Len())

	// Delete publishes a tombstone; the reader misses on its next probe.
	_ = store.Delete("bob")
	_, err = rd.Get("bob")
	fmt.Println("bob deleted:", err == arcreg.ErrKeyNotFound, "len:", store.Len())

	// A re-created key never resurrects its old value.
	_ = store.Set("bob", session{User: "bob", Epoch: 2})
	s, _ = rd.Get("bob")
	fmt.Println("bob reborn at epoch", s.Epoch)
	// Output:
	// alice@1 of 2 sessions
	// bob deleted: true len: 1
	// bob reborn at epoch 2
}

// Snapshot returns an atomic point-in-time view of every live key —
// across all shards, with zero RMW instructions at steady state.
func ExampleMapOfReader_Snapshot() {
	store, _ := arcreg.NewMap[int](arcreg.WithShards(4), arcreg.WithReaders(1))
	for _, k := range []string{"a", "b", "c"} {
		_ = store.Set(k, 1)
	}
	_ = store.Delete("b")

	rd, _ := store.NewReader()
	defer rd.Close()
	snap, _ := rd.Snapshot()

	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("live keys:", keys)
	// Output: live keys: [a c]
}

// Byte-level access: the raw register constructors remain for code
// that works in bytes (and for the benchmark harness).
func ExampleNewARC() {
	reg, err := arcreg.NewARC(arcreg.Config{MaxReaders: 2, MaxValueSize: 64})
	if err != nil {
		panic(err)
	}
	if err := reg.Writer().Write([]byte("hello, wait-free world")); err != nil {
		panic(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		panic(err)
	}
	defer rd.Close()
	buf := make([]byte, 64)
	n, err := rd.Read(buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(buf[:n]))
	// Output: hello, wait-free world
}

// The Raw codec is the typed facade's zero-copy path: Get returns a
// direct view of the register slot (valid until the handle's next
// operation, never to be modified).
func ExampleRaw() {
	reg, _ := arcreg.New[[]byte](
		arcreg.WithCodec(arcreg.Raw()),
		arcreg.WithReaders(1), arcreg.WithMaxValueSize(32))
	reg.Set([]byte("no bytes were copied"))
	rd, _ := reg.NewReader()
	defer rd.Close()
	v, _ := rd.Get()
	fmt.Println(string(v))
	// Output: no bytes were copied
}
