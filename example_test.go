package arcreg_test

import (
	"fmt"

	"arcreg"
)

// The canonical usage: one writer publishes, readers consume wait-free.
func ExampleNewARC() {
	reg, err := arcreg.NewARC(arcreg.Config{MaxReaders: 2, MaxValueSize: 64})
	if err != nil {
		panic(err)
	}
	if err := reg.Writer().Write([]byte("hello, wait-free world")); err != nil {
		panic(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		panic(err)
	}
	defer rd.Close()
	buf := make([]byte, 64)
	n, err := rd.Read(buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(buf[:n]))
	// Output: hello, wait-free world
}

// Zero-copy reads: the view aliases the register's internal slot, which
// stays pinned until the handle's next operation.
func ExampleView() {
	reg, _ := arcreg.NewARC(arcreg.Config{MaxReaders: 1, MaxValueSize: 32})
	reg.Writer().Write([]byte("no bytes were copied"))
	rd, _ := reg.NewReader()
	defer rd.Close()
	if v, ok := arcreg.View(rd); ok {
		fmt.Println(string(v))
	}
	// Output: no bytes were copied
}

// Freshness probing: skip work when nothing changed, for the cost of one
// atomic load (no RMW instruction).
func ExampleFresh() {
	reg, _ := arcreg.NewARC(arcreg.Config{MaxReaders: 1, MaxValueSize: 32})
	rd, _ := reg.NewReader()
	defer rd.Close()

	reg.Writer().Write([]byte("v1"))
	rd.Read(make([]byte, 32))

	fresh, _ := arcreg.Fresh(rd)
	fmt.Println("after read:", fresh)

	reg.Writer().Write([]byte("v2"))
	fresh, _ = arcreg.Fresh(rd)
	fmt.Println("after write:", fresh)
	// Output:
	// after read: true
	// after write: false
}

// Typed access over JSON: share configuration structs instead of bytes.
func ExampleNewJSON() {
	type limits struct {
		RPS   int `json:"rps"`
		Burst int `json:"burst"`
	}
	reg, err := arcreg.NewJSON[limits](arcreg.Config{MaxReaders: 4, MaxValueSize: 256})
	if err != nil {
		panic(err)
	}
	if err := reg.Set(limits{RPS: 100, Burst: 250}); err != nil {
		panic(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		panic(err)
	}
	defer rd.Close()
	cfg, err := rd.Get()
	if err != nil {
		panic(err)
	}
	fmt.Printf("rps=%d burst=%d\n", cfg.RPS, cfg.Burst)
	// Output: rps=100 burst=250
}

// The (M,N) extension: several writers, totally ordered by tag.
func ExampleNewMN() {
	reg, err := arcreg.NewMN(arcreg.MNConfig{Writers: 2, Readers: 1, MaxValueSize: 32})
	if err != nil {
		panic(err)
	}
	w0, _ := reg.NewWriter()
	w1, _ := reg.NewWriter()
	rd, _ := reg.NewReader()
	defer rd.Close()

	w0.Write([]byte("from writer zero"))
	w1.Write([]byte("from writer one")) // outbids w0's tag
	v, _ := rd.View()
	fmt.Println(string(v))
	// Output: from writer one
}
