package arcreg

import (
	"encoding/json"
	"fmt"
)

// TypedMN wraps an (M,N) register with an encoding — the Typed
// equivalent for the multi-writer composite: up to M goroutines Set
// through their own writer handles, up to N goroutines Get, all with the
// underlying register's wait-free progress. Encoding and decoding run
// outside the register's critical operations, so they may be arbitrarily
// expensive without affecting other threads' progress.
type TypedMN[T any] struct {
	reg *MNRegister
	enc func(T) ([]byte, error)
	dec func([]byte) (T, error)
}

// NewTypedMN wraps reg with the given encoding. enc must produce at most
// reg.MaxValueSize() bytes. dec must not retain its argument: the slice
// may alias a register slot that is recycled after the decode returns.
func NewTypedMN[T any](reg *MNRegister, enc func(T) ([]byte, error), dec func([]byte) (T, error)) *TypedMN[T] {
	return &TypedMN[T]{reg: reg, enc: enc, dec: dec}
}

// NewJSONMN builds an (M,N)-backed typed register using encoding/json —
// the multi-writer counterpart of NewJSON. When cfg.Initial is nil the
// JSON encoding of T's zero value seeds the register, so a Get before
// the first Set decodes cleanly.
func NewJSONMN[T any](cfg MNConfig) (*TypedMN[T], error) {
	if cfg.Initial == nil {
		var zero T
		blob, err := json.Marshal(zero)
		if err != nil {
			return nil, fmt.Errorf("arcreg: encoding zero value: %w", err)
		}
		if cfg.MaxValueSize != 0 && len(blob) > cfg.MaxValueSize {
			return nil, fmt.Errorf("arcreg: zero value needs %d bytes > MaxValueSize %d", len(blob), cfg.MaxValueSize)
		}
		cfg.Initial = blob
	}
	reg, err := NewMN(cfg)
	if err != nil {
		return nil, err
	}
	return NewTypedMN(reg,
		func(v T) ([]byte, error) { return json.Marshal(v) },
		func(p []byte) (T, error) {
			var v T
			err := json.Unmarshal(p, &v)
			return v, err
		}), nil
}

// Register exposes the underlying (M,N) byte register (stats, capacity,
// raw access).
func (t *TypedMN[T]) Register() *MNRegister { return t.reg }

// NewWriter allocates one of the M typed writer endpoints (one
// goroutine per handle).
func (t *TypedMN[T]) NewWriter() (*TypedMNWriter[T], error) {
	w, err := t.reg.NewWriter()
	if err != nil {
		return nil, err
	}
	return &TypedMNWriter[T]{w: w, enc: t.enc}, nil
}

// NewReader allocates one of the N typed reader endpoints (one goroutine
// per handle).
func (t *TypedMN[T]) NewReader() (*TypedMNReader[T], error) {
	rd, err := t.reg.NewReader()
	if err != nil {
		return nil, err
	}
	return &TypedMNReader[T]{rd: rd, dec: t.dec}, nil
}

// TypedMNWriter is one of the M typed write endpoints.
type TypedMNWriter[T any] struct {
	w   MNWriter
	enc func(T) ([]byte, error)
}

// Set publishes a typed value, outbidding every write currently visible.
func (w *TypedMNWriter[T]) Set(v T) error {
	blob, err := w.enc(v)
	if err != nil {
		return fmt.Errorf("arcreg: encode: %w", err)
	}
	return w.w.Write(blob)
}

// ID reports the writer identity in [0, M).
func (w *TypedMNWriter[T]) ID() int { return w.w.ID() }

// Writer exposes the underlying byte endpoint (stats, raw writes).
func (w *TypedMNWriter[T]) Writer() MNWriter { return w.w }

// Close releases the writer identity for reuse.
func (w *TypedMNWriter[T]) Close() error { return w.w.Close() }

// TypedMNReader is one of the N typed read endpoints.
type TypedMNReader[T any] struct {
	rd  MNReader
	dec func([]byte) (T, error)
}

// Get returns the freshest typed value, decoding straight from the
// winning component's slot (no intermediate copy).
func (r *TypedMNReader[T]) Get() (T, error) {
	var zero T
	v, err := r.rd.View()
	if err != nil {
		return zero, err
	}
	return r.dec(v)
}

// LastTag reports the (M,N) version tag of the last value Get returned.
func (r *TypedMNReader[T]) LastTag() MNTag { return r.rd.LastTag() }

// Reader exposes the underlying byte endpoint (stats, freshness).
func (r *TypedMNReader[T]) Reader() MNReader { return r.rd }

// Close releases the handle.
func (r *TypedMNReader[T]) Close() error { return r.rd.Close() }
