package arcreg

import "arcreg/internal/codec"

// TypedMN wraps an (M,N) register with an encoding — the Typed
// equivalent for the multi-writer composite: up to M goroutines Set
// through their own writer handles, up to N goroutines Get, all with the
// underlying register's wait-free progress. Encoding and decoding run
// outside the register's critical operations, so they may be arbitrarily
// expensive without affecting other threads' progress.
//
// Deprecated: TypedMN predates the unified facade and survives as a
// thin wrapper over the same Reg[T] handles; New with WithWriters(m)
// returns the equivalent capability surface directly.
type TypedMN[T any] struct {
	r *Reg[T]
}

// wrapMN builds a Reg over an existing (M,N) byte register — the
// delegation target of the deprecated TypedMN constructors.
func wrapMN[T any](reg *MNRegister, cd Codec[T]) *Reg[T] {
	return &Reg[T]{c: cd, mn: reg, caps: reg.Caps(), alg: ARC}
}

// NewTypedMN wraps reg with the given encoding. enc must produce at most
// reg.MaxValueSize() bytes. dec must not retain its argument: the slice
// may alias a register slot that is recycled after the decode returns.
//
// Deprecated: implement Codec[T] (or use a built-in codec) and pass it
// to New with WithWriters and WithCodec.
func NewTypedMN[T any](reg *MNRegister, enc func(T) ([]byte, error), dec func([]byte) (T, error)) *TypedMN[T] {
	return &TypedMN[T]{wrapMN(reg, codec.Funcs(enc, dec))}
}

// NewJSONMN builds an (M,N)-backed typed register using encoding/json —
// the multi-writer counterpart of NewJSON. When cfg.Initial is nil the
// JSON encoding of T's zero value seeds the register, so a Get before
// the first Set decodes cleanly.
//
// Deprecated: use New with WithWriters, whose defaults are exactly this
// (JSON + zero-value seed):
//
//	reg, err := arcreg.New[T](
//		arcreg.WithWriters(cfg.Writers),
//		arcreg.WithReaders(cfg.Readers),
//	)
func NewJSONMN[T any](cfg MNConfig) (*TypedMN[T], error) {
	cd := JSON[T]()
	if cfg.Initial == nil {
		blob, err := codec.ZeroInitial(cd, cfg.MaxValueSize)
		if err != nil {
			return nil, err
		}
		cfg.Initial = blob
	}
	reg, err := NewMN(cfg)
	if err != nil {
		return nil, err
	}
	return &TypedMN[T]{wrapMN(reg, cd)}, nil
}

// Register exposes the underlying (M,N) byte register (stats, capacity,
// raw access).
func (t *TypedMN[T]) Register() *MNRegister { return t.r.MN() }

// NewWriter allocates one of the M typed writer endpoints (one
// goroutine per handle).
func (t *TypedMN[T]) NewWriter() (*TypedMNWriter[T], error) {
	w, err := t.r.NewWriter()
	if err != nil {
		return nil, err
	}
	return &TypedMNWriter[T]{w}, nil
}

// NewReader allocates one of the N typed reader endpoints (one goroutine
// per handle).
func (t *TypedMN[T]) NewReader() (*TypedMNReader[T], error) {
	rd, err := t.r.NewReader()
	if err != nil {
		return nil, err
	}
	return &TypedMNReader[T]{rd}, nil
}

// TypedMNWriter is one of the M typed write endpoints.
//
// Deprecated: New with WithWriters returns *TypedWriter[T] handles with
// the same surface; TypedMNWriter is that handle plus the legacy Writer
// accessor.
type TypedMNWriter[T any] struct {
	*TypedWriter[T]
}

// Writer exposes the underlying byte endpoint (stats, raw writes).
func (w *TypedMNWriter[T]) Writer() MNWriter { return w.MNWriter() }

// TypedMNReader is one of the N typed read endpoints.
//
// Deprecated: New with WithWriters returns *TypedReader[T] handles with
// the same surface; TypedMNReader is that handle plus the legacy
// LastTag/Reader accessors.
type TypedMNReader[T any] struct {
	*TypedReader[T]
}

// LastTag reports the (M,N) version tag of the last value Get returned.
func (r *TypedMNReader[T]) LastTag() MNTag { return r.MNReader().LastTag() }

// Reader exposes the underlying byte endpoint (stats, freshness).
func (r *TypedMNReader[T]) Reader() MNReader { return r.MNReader() }
