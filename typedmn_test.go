package arcreg_test

import (
	"fmt"
	"sync"
	"testing"

	"arcreg"
)

// TestTypedMNRoundtrip covers the typed (M,N) path: M writers publish
// typed values through their own handles, readers decode the freshest
// one, and tags stay monotone per reader.
func TestTypedMNRoundtrip(t *testing.T) {
	type state struct {
		Writer int
		Round  int
	}
	reg, err := arcreg.NewJSONMN[state](arcreg.MNConfig{Writers: 3, Readers: 2, MaxValueSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	// The zero value seeds the register: a Get before any Set decodes.
	got, err := rd.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got != (state{}) {
		t.Fatalf("genesis value = %+v", got)
	}

	var writers []*arcreg.TypedMNWriter[state]
	for i := 0; i < 3; i++ {
		w, err := reg.NewWriter()
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		writers = append(writers, w)
	}
	last := rd.LastTag()
	for round := 1; round <= 5; round++ {
		for _, w := range writers {
			if err := w.Set(state{Writer: w.ID(), Round: round}); err != nil {
				t.Fatal(err)
			}
			got, err := rd.Get()
			if err != nil {
				t.Fatal(err)
			}
			if got.Writer != w.ID() || got.Round != round {
				t.Fatalf("got %+v after writer %d round %d", got, w.ID(), round)
			}
			tag := rd.LastTag()
			if tag.Less(last) {
				t.Fatalf("tag regressed: %v after %v", tag, last)
			}
			last = tag
		}
	}
}

// TestTypedMNConcurrent exercises the typed path under concurrency:
// every writer publishes its own counter, every reader sees values that
// never regress per writer.
func TestTypedMNConcurrent(t *testing.T) {
	type tick struct{ W, N int }
	reg, err := arcreg.NewJSONMN[tick](arcreg.MNConfig{Writers: 2, Readers: 2, MaxValueSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	const perW = 200
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := reg.NewWriter()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer w.Close()
			for n := 1; n <= perW; n++ {
				if err := w.Set(tick{W: w.ID(), N: n}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for i := 0; i < 2; i++ {
		rd, err := reg.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		rg.Add(1)
		go func() {
			defer rg.Done()
			defer rd.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := rd.Get()
				if err != nil {
					t.Error(err)
					return
				}
				if v.N < 0 || v.N > perW || v.W < 0 || v.W > 1 {
					t.Errorf("impossible value %+v", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
}

// ExampleNewJSONMN shows the multi-writer typed register: several
// components publish concurrently; every reader decodes the freshest
// publication.
func ExampleNewJSONMN() {
	type health struct {
		Shard  string
		Status string
	}
	reg, err := arcreg.NewJSONMN[health](arcreg.MNConfig{Writers: 2, Readers: 4})
	if err != nil {
		panic(err)
	}
	w0, _ := reg.NewWriter()
	w1, _ := reg.NewWriter()
	defer w0.Close()
	defer w1.Close()

	_ = w0.Set(health{Shard: "eu", Status: "ok"})
	_ = w1.Set(health{Shard: "us", Status: "degraded"})

	rd, _ := reg.NewReader()
	defer rd.Close()
	v, _ := rd.Get()
	fmt.Printf("%s: %s\n", v.Shard, v.Status)
	// Output: us: degraded
}
