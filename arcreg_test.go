package arcreg_test

// Black-box tests of the public API: everything an importing application
// can reach must work as documented, across all five constructors.

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"arcreg"
)

type factory struct {
	name     string
	make     func(arcreg.Config) (arcreg.Register, error)
	hasView  bool
	waitFree bool
}

func factories() []factory {
	return []factory{
		{"arc", func(c arcreg.Config) (arcreg.Register, error) { return arcreg.NewARC(c) }, true, true},
		{"rf", arcreg.NewRF, true, true},
		{"peterson", arcreg.NewPeterson, false, true},
		{"lock", arcreg.NewLocked, true, false},
		{"seqlock", arcreg.NewSeqlock, false, false},
		{"leftright", arcreg.NewLeftRight, true, false},
	}
}

func TestPublicRoundTripAllAlgorithms(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			reg, err := f.make(arcreg.Config{MaxReaders: 4, MaxValueSize: 128})
			if err != nil {
				t.Fatal(err)
			}
			if reg.Name() != f.name {
				t.Fatalf("Name() = %q", reg.Name())
			}
			rd, err := reg.NewReader()
			if err != nil {
				t.Fatal(err)
			}
			defer rd.Close()
			w := reg.Writer()
			for i := 0; i < 20; i++ {
				val := []byte(fmt.Sprintf("value %02d", i))
				if err := w.Write(val); err != nil {
					t.Fatal(err)
				}
				buf := make([]byte, 128)
				n, err := rd.Read(buf)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf[:n], val) {
					t.Fatalf("read %q want %q", buf[:n], val)
				}
			}
		})
	}
}

func TestPublicViewSupport(t *testing.T) {
	for _, f := range factories() {
		reg, err := f.make(arcreg.Config{MaxReaders: 2, MaxValueSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Writer().Write([]byte("zero-copy")); err != nil {
			t.Fatal(err)
		}
		rd, _ := reg.NewReader()
		v, ok := arcreg.View(rd)
		if ok != f.hasView {
			t.Fatalf("%s: View support = %v, want %v", f.name, ok, f.hasView)
		}
		if ok && string(v) != "zero-copy" {
			t.Fatalf("%s: view = %q", f.name, v)
		}
		rd.Close()
	}
}

func TestPublicErrors(t *testing.T) {
	reg, err := arcreg.NewARC(arcreg.Config{MaxReaders: 1, MaxValueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Writer().Write(make([]byte, 9)); !errors.Is(err, arcreg.ErrValueTooLarge) {
		t.Fatalf("oversized write: %v", err)
	}
	a, _ := reg.NewReader()
	if _, err := reg.NewReader(); !errors.Is(err, arcreg.ErrTooManyReaders) {
		t.Fatalf("capacity: %v", err)
	}
	a.Close()
	if _, err := a.Read(make([]byte, 8)); !errors.Is(err, arcreg.ErrReaderClosed) {
		t.Fatalf("closed read: %v", err)
	}
	reg.Writer().Write([]byte("12345678"))
	b, _ := reg.NewReader()
	if _, err := b.Read(make([]byte, 2)); !errors.Is(err, arcreg.ErrBufferTooSmall) {
		t.Fatalf("small dst: %v", err)
	}
}

func TestPublicARCOptions(t *testing.T) {
	reg, err := arcreg.NewARC(arcreg.Config{MaxReaders: 2, MaxValueSize: 32},
		arcreg.WithoutFastPath(), arcreg.WithoutFreeHint())
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := reg.NewReader()
	reg.Writer().Write([]byte("x"))
	for i := 0; i < 10; i++ {
		if _, err := rd.Read(make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
	}
	st := rd.(arcreg.StatReader).ReadStats()
	if st.FastPath != 0 {
		t.Fatalf("fast path used despite WithoutFastPath: %d", st.FastPath)
	}

	static, err := arcreg.NewARC(arcreg.Config{MaxReaders: 1, MaxValueSize: 8},
		arcreg.WithStaticReaders())
	if err != nil {
		t.Fatal(err)
	}
	h, err := static.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if _, err := static.NewReader(); !errors.Is(err, arcreg.ErrTooManyReaders) {
		t.Fatalf("static mode allowed a second handle lifetime: %v", err)
	}
}

func TestPublicStats(t *testing.T) {
	reg, _ := arcreg.NewARC(arcreg.Config{MaxReaders: 1, MaxValueSize: 64})
	rd, _ := reg.NewReader()
	w := reg.Writer()
	for i := 0; i < 5; i++ {
		w.Write([]byte("v"))
		rd.Read(make([]byte, 64))
	}
	if st := rd.(arcreg.StatReader).ReadStats(); st.Ops != 5 {
		t.Fatalf("read ops = %d", st.Ops)
	}
	if ws := w.(arcreg.StatWriter).WriteStats(); ws.Ops != 5 {
		t.Fatalf("write ops = %d", ws.Ops)
	}
}

func TestPublicLimitsDocumented(t *testing.T) {
	if arcreg.MaxARCReaders != 1<<32-2 {
		t.Fatalf("MaxARCReaders = %d", arcreg.MaxARCReaders)
	}
	if arcreg.MaxRFReaders != 58 {
		t.Fatalf("MaxRFReaders = %d", arcreg.MaxRFReaders)
	}
	if _, err := arcreg.NewRF(arcreg.Config{MaxReaders: 59}); err == nil {
		t.Fatal("RF accepted 59 readers")
	}
}

func TestPublicMNRegister(t *testing.T) {
	reg, err := arcreg.NewMN(arcreg.MNConfig{Writers: 2, Readers: 2, MaxValueSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Writers() != 2 || reg.Readers() != 2 || reg.MaxValueSize() != 64 {
		t.Fatal("MN accessors wrong")
	}
	w0, err := reg.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	w1, err := reg.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	if err := w0.Write([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	v, err := rd.View()
	if err != nil || string(v) != "alpha" {
		t.Fatalf("view: %q %v", v, err)
	}
	t0 := rd.LastTag()
	if err := w1.Write([]byte("beta")); err != nil {
		t.Fatal(err)
	}
	v, _ = rd.View()
	if string(v) != "beta" {
		t.Fatalf("after w1: %q", v)
	}
	if !t0.Less(rd.LastTag()) {
		t.Fatal("tag did not advance across writers")
	}
	w0.Close()
	w1.Close()
	rd.Close()
}

// The public API under real concurrency: hammer ARC through the facade
// and check handles behave.
func TestPublicConcurrentSmoke(t *testing.T) {
	reg, err := arcreg.NewARC(arcreg.Config{MaxReaders: 4, MaxValueSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		rd, err := reg.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rd.Close()
			buf := make([]byte, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := rd.Read(buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	w := reg.Writer()
	for i := 0; i < 5000; i++ {
		if err := w.Write([]byte{byte(i), byte(i >> 8)}); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

func TestPublicFreshness(t *testing.T) {
	reg, err := arcreg.NewARC(arcreg.Config{MaxReaders: 1, MaxValueSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := reg.NewReader()
	if fresh, ok := arcreg.Fresh(rd); !ok || fresh {
		t.Fatalf("unread ARC handle: fresh=%v ok=%v", fresh, ok)
	}
	reg.Writer().Write([]byte("v1"))
	rd.Read(make([]byte, 32))
	if fresh, ok := arcreg.Fresh(rd); !ok || !fresh {
		t.Fatalf("after read: fresh=%v ok=%v", fresh, ok)
	}
	reg.Writer().Write([]byte("v2"))
	if fresh, _ := arcreg.Fresh(rd); fresh {
		t.Fatal("stale handle reports fresh")
	}

	// Peterson cannot answer without a read.
	p, _ := arcreg.NewPeterson(arcreg.Config{MaxReaders: 1, MaxValueSize: 32})
	prd, _ := p.NewReader()
	if _, ok := arcreg.Fresh(prd); ok {
		t.Fatal("Peterson claimed freshness support")
	}
}
