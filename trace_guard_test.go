package arcreg_test

// Guard tests for the flight-recorder tentpole's zero-overhead
// contract: the recorder runs always-on inside the hot paths it
// instruments, so enabling it must not add a single RMW instruction or
// allocation to steady-state Get, Set, or the no-waiter publish. The
// RMW guards compare instrumented traces between an untraced map and a
// traced one — bit-identical counts, not "small" — and the allocation
// guards run on the traced map directly.

import (
	"bytes"
	"fmt"
	"testing"

	"arcreg"
)

// guardMaps builds a matched untraced/traced map pair in the same
// steady state: 64 keys seeded, one reader warmed on a hot key.
func guardTraceMap(t testing.TB, traced bool) (*arcreg.Map, *arcreg.MapReader) {
	t.Helper()
	m, err := arcreg.NewByteMap(arcreg.MapConfig{
		MaxReaders:   1,
		MaxValueSize: 256,
		Trace:        traced,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := m.Set(fmt.Sprintf("key-%06d", i), bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })
	if _, err := rd.Get("key-000007"); err != nil {
		t.Fatal(err)
	}
	return m, rd
}

// TestTraceGuardHotGetRMWBitIdentical pins the read side: the RMW trace
// of a hot-key Get run is bit-identical with the recorder on and off —
// and both are zero. The traced map is genuinely recording (its shard
// writers stamped publishes during seeding), so this is the live
// configuration, not a disabled recorder.
func TestTraceGuardHotGetRMWBitIdentical(t *testing.T) {
	const ops = 20000
	run := func(traced bool) (rmw, fast uint64) {
		_, rd := guardTraceMap(t, traced)
		before := rd.ReadStats()
		for i := 0; i < ops; i++ {
			if _, err := rd.Get("key-000007"); err != nil {
				t.Fatal(err)
			}
		}
		after := rd.ReadStats()
		return after.RMW - before.RMW, after.FastPath - before.FastPath
	}
	quietRMW, quietFast := run(false)
	tracedRMW, tracedFast := run(true)
	if tracedRMW != quietRMW {
		t.Errorf("hot Get RMW trace not bit-identical: %d untraced vs %d traced over %d ops",
			quietRMW, tracedRMW, ops)
	}
	if tracedRMW != 0 {
		t.Errorf("traced hot Gets executed %d RMW instructions, want 0", tracedRMW)
	}
	if quietFast != ops || tracedFast != ops {
		t.Errorf("fast-path Gets = %d untraced / %d traced, want %d both", quietFast, tracedFast, ops)
	}
}

// TestTraceGuardSetRMWBitIdentical pins the write side: steady-state
// Set (existing key, no waiter parked) has an inherent RMW budget of
// exactly one per publish (the register's W2 swap); recording the
// publish event and its span stamp must not move it.
func TestTraceGuardSetRMWBitIdentical(t *testing.T) {
	const ops = 5000
	val := bytes.Repeat([]byte{0xab}, 64)
	run := func(traced bool) uint64 {
		m, _ := guardTraceMap(t, traced)
		if err := m.Set("key-000007", val); err != nil { // settle the slot scan
			t.Fatal(err)
		}
		before := m.WriteStats()
		for i := 0; i < ops; i++ {
			if err := m.Set("key-000007", val); err != nil {
				t.Fatal(err)
			}
		}
		after := m.WriteStats()
		return after.Value.RMW - before.Value.RMW
	}
	quiet := run(false)
	traced := run(true)
	if traced != quiet {
		t.Errorf("Set RMW trace not bit-identical: %d untraced vs %d traced over %d ops",
			quiet, traced, ops)
	}
	if traced != ops {
		t.Errorf("traced no-waiter Set executed %d RMW over %d ops, want exactly %d (the W2 swap only)",
			traced, ops, ops)
	}
}

// TestTraceGuardHotGetZeroAlloc pins zero allocations on the traced
// steady-state Get.
func TestTraceGuardHotGetZeroAlloc(t *testing.T) {
	_, rd := guardTraceMap(t, true)
	if avg := testing.AllocsPerRun(2000, func() {
		if _, err := rd.Get("key-000007"); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("traced steady-state Get allocates %.1f objects/op, want 0", avg)
	}
}

// benchTraceGet / benchTraceSet measure the recorder's wall-clock cost
// directly: same map shape, same steady state, recorder on vs off. The
// deltas back the overhead table in DESIGN.md §13.
func benchTraceGet(b *testing.B, traced bool) {
	_, rd := guardTraceMap(b, traced)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Get("key-000007"); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTraceSet(b *testing.B, traced bool) {
	m, _ := guardTraceMap(b, traced)
	val := bytes.Repeat([]byte{0xab}, 64)
	if err := m.Set("key-000007", val); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Set("key-000007", val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetUntraced(b *testing.B) { benchTraceGet(b, false) }
func BenchmarkGetTraced(b *testing.B)   { benchTraceGet(b, true) }
func BenchmarkSetUntraced(b *testing.B) { benchTraceSet(b, false) }
func BenchmarkSetTraced(b *testing.B)   { benchTraceSet(b, true) }

// TestTraceGuardNoWaiterPublishZeroAlloc pins zero allocations on the
// traced no-waiter publish: the recording path is four plain stores
// and a head store into a preallocated ring — no boxing, no growth.
func TestTraceGuardNoWaiterPublishZeroAlloc(t *testing.T) {
	m, _ := guardTraceMap(t, true)
	val := bytes.Repeat([]byte{0xcd}, 64)
	if err := m.Set("key-000007", val); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(2000, func() {
		if err := m.Set("key-000007", val); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("traced no-waiter Set allocates %.1f objects/op, want 0", avg)
	}
	// The recorder really ran: the shard's ring holds the publishes.
	tr := m.Tracer()
	if tr == nil {
		t.Fatal("traced map returned nil Tracer")
	}
	b := tr.Breakdown()
	if b.Count[arcreg.StagePublish] == 0 {
		t.Fatal("traced publishes recorded no StagePublish events")
	}
}
