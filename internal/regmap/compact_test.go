package regmap

// Compaction-epoch and repair tests: explicit and automatic compaction,
// bounded directory memory under churn, reader rebase (held views and
// handles surviving the epoch bump, no resurrection), corrupt-latch
// repair through Get and parked watchers, crash-point recovery via
// Compact, and fault-point coverage (run under -race in CI).

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"arcreg/internal/fault"
)

// verKey / verVal build versioned values (8-byte LE version + payload)
// for monotonicity checks across delete/recreate churn.
func verVal(version uint64) []byte {
	v := make([]byte, 16)
	binary.LittleEndian.PutUint64(v, version)
	binary.LittleEndian.PutUint64(v[8:], ^version)
	return v
}

func verOf(t testing.TB, v []byte) uint64 {
	t.Helper()
	if len(v) != 16 {
		t.Fatalf("versioned value has %d bytes, want 16", len(v))
	}
	ver := binary.LittleEndian.Uint64(v)
	if chk := binary.LittleEndian.Uint64(v[8:]); chk != ^ver {
		t.Fatalf("torn versioned value: version %d, check %d", ver, chk)
	}
	return ver
}

// TestCompactExplicit pins the epoch-bump basics: Compact shrinks the
// log to the live set, bumps the compaction generation, and both an
// incremental reader (rebase) and a fresh reader (cold decode of the
// compacted log) agree with the writer afterwards.
func TestCompactExplicit(t *testing.T) {
	m := newMap(t, Config{Shards: 1, MaxReaders: 2, MaxValueSize: 32})
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	for i := 0; i < 8; i++ {
		if err := m.Set(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Prime the incremental reader, then churn garbage into the log.
	if _, err := rd.Get("k0"); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		if err := m.Delete(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	sh := m.shards[0]
	before := len(sh.dirBuf)
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := len(sh.dirBuf); got >= before {
		t.Fatalf("compacted log %d bytes, want < %d", got, before)
	}
	if sh.cgen != 1 || sh.compactions != 1 {
		t.Fatalf("cgen %d compactions %d, want 1/1", sh.cgen, sh.compactions)
	}
	if sh.nentries != len(sh.index) {
		t.Fatalf("compacted log has %d entries for %d live keys", sh.nentries, len(sh.index))
	}
	check := func(r *Reader, label string) {
		t.Helper()
		for i := 0; i < 4; i++ {
			k := fmt.Sprintf("k%d", i)
			if v, err := r.Get(k); err != nil || len(v) != 1 || v[0] != byte(i) {
				t.Fatalf("%s Get(%s) after compact = %v, %v", label, k, v, err)
			}
		}
		for i := 4; i < 8; i++ {
			if _, err := r.Get(fmt.Sprintf("k%d", i)); !errors.Is(err, ErrKeyNotFound) {
				t.Fatalf("%s deleted key resurrected after compact: %v", label, err)
			}
		}
		if n, err := r.Len(); err != nil || n != 4 {
			t.Fatalf("%s Len after compact = %d, %v", label, n, err)
		}
	}
	check(rd, "rebased reader")
	rd2, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd2.Close()
	check(rd2, "fresh reader")
	if ws := m.WriteStats(); ws.Compactions != 1 || ws.DirBytes != uint64(len(sh.dirBuf)) {
		t.Fatalf("WriteStats compactions/dirbytes = %d/%d", ws.Compactions, ws.DirBytes)
	}
}

// TestCompactPreservesViewsAndHandles pins the reader-side survival
// guarantees across an epoch bump: a view held across Compact stays
// byte-stable, the key's handle is picked back up (not re-acquired),
// and the hot Get returns to the zero-RMW fast path immediately after
// the rebase.
func TestCompactPreservesViewsAndHandles(t *testing.T) {
	m := newMap(t, Config{Shards: 1, MaxReaders: 1, MaxValueSize: 32})
	if err := m.Set("held", []byte("stable-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("churn", []byte("x")); err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	view, err := rd.Get("held")
	if err != nil {
		t.Fatal(err)
	}
	rs := &rd.shards[0]
	slot := rs.table["held"]
	h := rs.handles[slot]
	if err := m.Delete("churn"); err != nil {
		t.Fatal(err)
	}
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	got, err := rd.Get("held")
	if err != nil || string(got) != "stable-bytes" {
		t.Fatalf("Get(held) across compact = %q, %v", got, err)
	}
	if string(view) != "stable-bytes" {
		t.Fatalf("held view mutated across compact: %q", view)
	}
	if rs.handles[slot] != h {
		t.Fatal("compaction rebase re-acquired the key handle instead of reusing it")
	}
	// Steady state restored: the next Get is the two-load fast path.
	rmw := rd.Stats().RMW
	if _, err := rd.Get("held"); err != nil {
		t.Fatal(err)
	}
	if got := rd.Stats().RMW; got != rmw {
		t.Fatalf("hot Get after compact executed %d RMW", got-rmw)
	}
}

// TestAutoCompactionBoundedChurn is the ceiling-lifecycle test: under
// delete/recreate churn against a test-shrunk ceiling, appends
// auto-compact — writes keep succeeding across 10+ epochs, directory
// bytes stay bounded, held views survive, versions stay monotone, and
// no deleted key resurrects.
func TestAutoCompactionBoundedChurn(t *testing.T) {
	restore := SetDirCapacity(512)
	defer restore()
	m := newMap(t, Config{Shards: 1, MaxReaders: 2, MaxValueSize: 32})
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	const keys = 4
	versions := make([]uint64, keys)
	lastSeen := make([]uint64, keys)
	var ver uint64
	key := func(i int) string { return fmt.Sprintf("churn-%d", i) }
	for i := 0; i < keys; i++ {
		ver++
		versions[i] = ver
		if err := m.Set(key(i), verVal(ver)); err != nil {
			t.Fatal(err)
		}
	}
	held, err := rd.Get(key(0))
	if err != nil {
		t.Fatal(err)
	}
	heldVer := verOf(t, held)
	sh := m.shards[0]
	maxBytes := len(sh.dirBuf)
	for round := 0; round < 600; round++ {
		i := round % keys
		if err := m.Delete(key(i)); err != nil {
			t.Fatalf("round %d: Delete: %v", round, err)
		}
		if v, err := rd.Get(key(i)); !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("round %d: deleted key visible: %q, %v", round, v, err)
		}
		ver++
		versions[i] = ver
		if err := m.Set(key(i), verVal(ver)); err != nil {
			t.Fatalf("round %d: Set: %v", round, err)
		}
		if n := len(sh.dirBuf); n > maxBytes {
			maxBytes = n
		}
		// The reader tracks the churn exactly, with monotone versions.
		j := (round * 7) % keys
		v, err := rd.Get(key(j))
		if err != nil {
			t.Fatalf("round %d: Get(%s): %v", round, key(j), err)
		}
		got := verOf(t, v)
		if got < lastSeen[j] || got != versions[j] {
			t.Fatalf("round %d: key %d version %d (last seen %d, writer %d)", round, j, got, lastSeen[j], versions[j])
		}
		lastSeen[j] = got
	}
	if sh.compactions < 10 {
		t.Fatalf("churn drove only %d compaction epochs, want >= 10", sh.compactions)
	}
	if maxBytes > 512 {
		t.Fatalf("directory grew to %d bytes past the 512 ceiling", maxBytes)
	}
	if verOf(t, held) != heldVer {
		t.Fatalf("held view mutated across %d compactions", sh.compactions)
	}
	if n, err := rd.Len(); err != nil || n != keys {
		t.Fatalf("Len after churn = %d, %v", n, err)
	}
}

// TestCorruptRepair pins the latch-and-heal lifecycle on the plain read
// path: a corrupt publication latches every touched operation with
// ErrShardCorrupt (sticky while the directory is quiet), a later
// genuine publication — append or compaction — repairs the reader, and
// the repair is counted.
func TestCorruptRepair(t *testing.T) {
	for _, heal := range []string{"compact", "append"} {
		t.Run(heal, func(t *testing.T) {
			m := newMap(t, Config{Shards: 1, MaxReaders: 1, MaxValueSize: 32})
			if err := m.Set("a", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			rd, err := m.NewReader()
			if err != nil {
				t.Fatal(err)
			}
			defer rd.Close()
			if _, err := rd.Get("a"); err != nil {
				t.Fatal(err)
			}
			if err := m.InjectDirectoryCorruption(0); err != nil {
				t.Fatal(err)
			}
			if _, err := rd.Get("a"); !errors.Is(err, ErrShardCorrupt) {
				t.Fatalf("Get on corrupt shard = %v, want ErrShardCorrupt", err)
			}
			// Sticky while nothing new publishes: Get, Len, Keys, Snapshot
			// all return the latch; Fresh reports false.
			if _, err := rd.Get("a"); !errors.Is(err, ErrShardCorrupt) {
				t.Fatalf("latch not sticky: %v", err)
			}
			if _, err := rd.Len(); !errors.Is(err, ErrShardCorrupt) {
				t.Fatal("Len served a corrupt shard")
			}
			if _, err := rd.Keys(); !errors.Is(err, ErrShardCorrupt) {
				t.Fatal("Keys served a corrupt shard")
			}
			if _, err := rd.Snapshot(); !errors.Is(err, ErrShardCorrupt) {
				t.Fatal("Snapshot served a corrupt shard")
			}
			if rd.Fresh("a") {
				t.Fatal("corrupt shard reports fresh")
			}
			want := "v1"
			switch heal {
			case "compact":
				if err := m.Compact(); err != nil {
					t.Fatal(err)
				}
			case "append":
				// The writer never saw the injected garbage: its next
				// ordinary publication republishes the genuine log and
				// the reader rebases onto it — no compaction required.
				if err := m.Set("b", []byte("v2")); err != nil {
					t.Fatal(err)
				}
			}
			if v, err := rd.Get("a"); err != nil || string(v) != want {
				t.Fatalf("Get after %s repair = %q, %v", heal, v, err)
			}
			if st := rd.Stats(); st.Repairs != 1 {
				t.Fatalf("Repairs = %d, want 1", st.Repairs)
			}
			if snap, err := rd.Snapshot(); err != nil || string(snap["a"]) != want {
				t.Fatalf("Snapshot after repair = %v, %v", snap, err)
			}
		})
	}
}

// TestWatchAcrossRepair is the satellite regression test: a watcher
// parked on a shard that latches corrupt observes the episode as an
// event (not a terminal error) and resumes with the repaired state.
func TestWatchAcrossRepair(t *testing.T) {
	m := newMap(t, Config{Shards: 1, MaxReaders: 1, MaxValueSize: 32})
	if err := m.Set("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type event struct {
		val []byte
		err error
	}
	events := make(chan event)
	go func() {
		defer close(events)
		for v, err := range rd.Watch(ctx, "k") {
			var cp []byte
			if v != nil {
				cp = append([]byte(nil), v...)
			}
			events <- event{cp, err}
		}
	}()
	expect := func(stage string, wantVal string, wantErr error) {
		t.Helper()
		ev, ok := <-events
		if !ok {
			t.Fatalf("%s: watch ended", stage)
		}
		if wantErr != nil {
			if !errors.Is(ev.err, wantErr) {
				t.Fatalf("%s: event err = %v, want %v", stage, ev.err, wantErr)
			}
			return
		}
		if ev.err != nil || string(ev.val) != wantVal {
			t.Fatalf("%s: event = %q, %v; want %q", stage, ev.val, ev.err, wantVal)
		}
	}
	expect("initial", "v1", nil)
	if err := m.InjectDirectoryCorruption(0); err != nil {
		t.Fatal(err)
	}
	expect("corrupt episode", "", ErrShardCorrupt)
	// The epoch bump both repairs the latch and carries the next value:
	// the parked watcher must wake, heal, and deliver it.
	if err := m.Set("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	expect("post-repair value", "v2", nil)
	cancel()
	for range events {
	}
}

// TestWatchAcrossCompaction pins that an epoch bump alone is invisible
// to a parked single-key watcher — no spurious event, no duplicate —
// while a genuine change right after the bump is delivered.
func TestWatchAcrossCompaction(t *testing.T) {
	m := newMap(t, Config{Shards: 1, MaxReaders: 1, MaxValueSize: 32})
	if err := m.Set("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("other", []byte("x")); err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan string)
	go func() {
		defer close(events)
		for v, err := range rd.Watch(ctx, "k") {
			if err != nil {
				events <- "err:" + err.Error()
				continue
			}
			events <- string(v)
		}
	}()
	if got := <-events; got != "v1" {
		t.Fatalf("initial event = %q", got)
	}
	if err := m.Delete("other"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Set("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// The only event across three compactions is the genuine change.
	if got := <-events; got != "v2" {
		t.Fatalf("event across compactions = %q, want v2 (no spurious events)", got)
	}
	cancel()
	for range events {
	}
}

// TestWatchAllAcrossRepair mirrors TestWatchAcrossRepair for the
// whole-map snapshot-delta stream.
func TestWatchAllAcrossRepair(t *testing.T) {
	m := newMap(t, Config{Shards: 2, MaxReaders: 1, MaxValueSize: 32})
	if err := m.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type event struct {
		delta Delta
		err   error
	}
	events := make(chan event)
	go func() {
		defer close(events)
		for d, err := range rd.WatchAll(ctx) {
			events <- event{d, err}
		}
	}()
	ev := <-events
	if ev.err != nil || !ev.delta.Full || string(ev.delta.Values["a"]) != "1" {
		t.Fatalf("first event = %+v, %v", ev.delta, ev.err)
	}
	si := m.ShardOf("a")
	if err := m.InjectDirectoryCorruption(si); err != nil {
		t.Fatal(err)
	}
	ev = <-events
	if !errors.Is(ev.err, ErrShardCorrupt) {
		t.Fatalf("corrupt episode event err = %v, want ErrShardCorrupt", ev.err)
	}
	if err := m.Set("a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	ev = <-events
	if ev.err != nil || string(ev.delta.Values["a"]) != "2" {
		t.Fatalf("post-repair event = %+v, %v", ev.delta, ev.err)
	}
	cancel()
	for range events {
	}
}

// TestCrashRecoveryViaCompact drives each crash-capable fault point
// once: the operation unwinds with fault.Crashed, the writer's tables
// stay internally consistent, and one Compact reconverges every reader
// with the writer — the universal crash repair.
func TestCrashRecoveryViaCompact(t *testing.T) {
	recoverCrash := func(t *testing.T, op func() error) (crashed bool) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(fault.Crashed); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		if err := op(); err != nil {
			t.Fatalf("op: %v", err)
		}
		return false
	}
	t.Run("delete-recycle", func(t *testing.T) {
		m := newMap(t, Config{Shards: 1, MaxReaders: 1, MaxValueSize: 32})
		for _, k := range []string{"a", "b"} {
			if err := m.Set(k, []byte(k)); err != nil {
				t.Fatal(err)
			}
		}
		rd, err := m.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		if _, err := rd.Get("a"); err != nil {
			t.Fatal(err)
		}
		s, err := fault.NewSchedule(1, fault.Rule{Point: FaultDeleteRecycle, Kind: fault.Crash, On: 1})
		if err != nil {
			t.Fatal(err)
		}
		s.Arm()
		crashed := recoverCrash(t, func() error { return m.Delete("a") })
		s.Disarm()
		if !crashed {
			t.Fatal("armed crash did not fire")
		}
		// The delete applied to the writer but never published; readers
		// still see the key until the repair compaction.
		if v, err := rd.Get("a"); err != nil || string(v) != "a" {
			t.Fatalf("pre-repair Get = %q, %v", v, err)
		}
		if err := m.Compact(); err != nil {
			t.Fatal(err)
		}
		if _, err := rd.Get("a"); !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("post-repair Get = %v, want ErrKeyNotFound", err)
		}
		if v, err := rd.Get("b"); err != nil || string(v) != "b" {
			t.Fatalf("post-repair Get(b) = %q, %v", v, err)
		}
	})
	t.Run("dir-prepublish", func(t *testing.T) {
		m := newMap(t, Config{Shards: 1, MaxReaders: 1, MaxValueSize: 32})
		if err := m.Set("a", []byte("a")); err != nil {
			t.Fatal(err)
		}
		rd, err := m.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		s, err := fault.NewSchedule(1, fault.Rule{Point: FaultDirPrepublish, Kind: fault.Crash, On: 1})
		if err != nil {
			t.Fatal(err)
		}
		s.Arm()
		crashed := recoverCrash(t, func() error { return m.Set("new", []byte("n")) })
		s.Disarm()
		if !crashed {
			t.Fatal("armed crash did not fire")
		}
		// The add is fully prepared but unpublished: invisible until the
		// repair compaction publishes the writer's tables.
		if _, err := rd.Get("new"); !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("pre-repair Get(new) = %v", err)
		}
		if err := m.Compact(); err != nil {
			t.Fatal(err)
		}
		if v, err := rd.Get("new"); err != nil || string(v) != "n" {
			t.Fatalf("post-repair Get(new) = %q, %v", v, err)
		}
	})
	t.Run("compact-built", func(t *testing.T) {
		m := newMap(t, Config{Shards: 1, MaxReaders: 1, MaxValueSize: 32})
		if err := m.Set("a", []byte("a")); err != nil {
			t.Fatal(err)
		}
		if err := m.Delete("a"); err != nil {
			t.Fatal(err)
		}
		s, err := fault.NewSchedule(1, fault.Rule{Point: FaultCompactBuilt, Kind: fault.Crash, On: 1})
		if err != nil {
			t.Fatal(err)
		}
		s.Arm()
		crashed := recoverCrash(t, func() error { return m.Compact() })
		s.Disarm()
		if !crashed {
			t.Fatal("armed crash did not fire")
		}
		// Dying mid-compaction loses nothing: the next compact rebuilds
		// from the same tables and publishes.
		if err := m.Compact(); err != nil {
			t.Fatal(err)
		}
		rd, err := m.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		if n, err := rd.Len(); err != nil || n != 0 {
			t.Fatalf("post-repair Len = %d, %v", n, err)
		}
	})
}

// TestFaultPointsExercised arms a yield rule on every regmap fault
// point, drives the code paths they sit on under concurrent readers,
// and then asserts (a) every point actually observed hits and (b) no
// regmap point is left in the never-armed set — the in-suite version of
// the chaos binary's coverage check.
func TestFaultPointsExercised(t *testing.T) {
	points := []*fault.Point{
		faultValuePublish, faultDirPrepublish, faultDirPublish,
		faultSlotStore, faultDeleteRecycle, faultCompactBuilt, faultCompactPublish,
	}
	rules := make([]fault.Rule, len(points))
	before := make([]uint64, len(points))
	for i, p := range points {
		rules[i] = fault.Rule{Point: p.Name(), Kind: fault.Yield, Every: 2}
		before[i] = p.Hits()
	}
	s, err := fault.NewSchedule(42, rules...)
	if err != nil {
		t.Fatal(err)
	}
	m := newMap(t, Config{Shards: 1, MaxReaders: 3, MaxValueSize: 32})
	s.Arm()
	defer s.Disarm()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		rd, err := m.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rd.Close()
			for !stop.Load() {
				for i := 0; i < 4; i++ {
					if _, err := rd.Get(fmt.Sprintf("k%d", i)); err != nil && !errors.Is(err, ErrKeyNotFound) {
						t.Errorf("reader: %v", err)
						return
					}
				}
				if _, err := rd.Snapshot(); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
			}
		}()
	}
	for round := 0; round < 200; round++ {
		k := fmt.Sprintf("k%d", round%4)
		if err := m.Set(k, verVal(uint64(round))); err != nil {
			t.Fatal(err)
		}
		if err := m.Set(k, verVal(uint64(round)+1)); err != nil {
			t.Fatal(err)
		}
		if round%3 == 2 {
			if err := m.Delete(k); err != nil {
				t.Fatal(err)
			}
		}
		if round%50 == 49 {
			if err := m.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	for i, p := range points {
		if p.Hits() == before[i] {
			t.Errorf("fault point %q saw no hits under churn", p.Name())
		}
	}
	_, unarmed := fault.Coverage()
	for _, name := range unarmed {
		if strings.HasPrefix(name, "regmap/") {
			t.Errorf("regmap fault point %q never armed by any schedule", name)
		}
	}
}
