package regmap

import (
	"arcreg/internal/register"
)

// singleKey is the key a NewSingleKeyRegister adapter stores its value
// under.
const singleKey = "register"

// keyRegister adapts one key of a Map to the shared register.Register
// contract, so the conformance battery and the harness hold the map's
// Get/Set path to exactly the same behavioral requirements as the raw
// algorithms. Write goes through Map.Set, reads through Reader.Get — the
// full directory-probe-then-value-read path, not a shortcut.
type keyRegister struct {
	m   *Map
	key string
}

// NewSingleKeyRegister builds a Map holding a single key and adapts it to
// register.Register. cfg maps one-to-one: MaxReaders is the map's reader
// capacity, MaxValueSize the value bound, Initial the key's first value.
func NewSingleKeyRegister(cfg register.Config) (register.Register, error) {
	if cfg.MaxValueSize == 0 {
		cfg.MaxValueSize = register.DefaultMaxValueSize
	}
	m, err := New(Config{
		Shards:       4,
		MaxReaders:   cfg.MaxReaders,
		MaxValueSize: cfg.MaxValueSize,
	})
	if err != nil {
		return nil, err
	}
	if err := m.Set(singleKey, cfg.InitialOrDefault()); err != nil {
		return nil, err
	}
	return &keyRegister{m: m, key: singleKey}, nil
}

// Compile-time conformance to the shared contract.
var (
	_ register.Register        = (*keyRegister)(nil)
	_ register.Writer          = (*keyRegister)(nil)
	_ register.StatWriter      = (*keyRegister)(nil)
	_ register.Reader          = (*keyReader)(nil)
	_ register.Viewer          = (*keyReader)(nil)
	_ register.FreshnessProber = (*keyReader)(nil)
	_ register.StatReader      = (*keyReader)(nil)
)

func (k *keyRegister) Name() string      { return "map" }
func (k *keyRegister) MaxReaders() int   { return k.m.MaxReaders() }
func (k *keyRegister) MaxValueSize() int { return k.m.MaxValueSize() }

// Caps implements register.CapabilityReporter: the map's Get/Set path
// inherits the per-key ARC registers' full capability set.
func (k *keyRegister) Caps() register.Caps {
	return register.Caps{
		ZeroCopyView:  true,
		FreshProbe:    true,
		ReadStats:     true,
		WriteStats:    true,
		WaitFreeRead:  true,
		WaitFreeWrite: true,
	}
}

// Writer implements register.Register; the adapter itself is the writer
// endpoint (single-writer, like the underlying shard).
func (k *keyRegister) Writer() register.Writer { return k }

// Write implements register.Writer via Map.Set.
func (k *keyRegister) Write(p []byte) error { return k.m.Set(k.key, p) }

// WriteStats implements register.StatWriter: the key's value publishes
// plus the directory publications the key creation cost.
func (k *keyRegister) WriteStats() register.WriteStats {
	ws := k.m.WriteStats()
	out := ws.Value
	out.Add(ws.Directory)
	return out
}

// NewReader implements register.Register.
func (k *keyRegister) NewReader() (register.Reader, error) {
	r, err := k.m.NewReader()
	if err != nil {
		return nil, err
	}
	return &keyReader{r: r, key: k.key}, nil
}

// keyReader adapts a map Reader to the single-key register.Reader shape.
type keyReader struct {
	r   *Reader
	key string
}

func (rd *keyReader) Read(dst []byte) (int, error) { return rd.r.GetCopy(rd.key, dst) }
func (rd *keyReader) View() ([]byte, error)        { return rd.r.Get(rd.key) }
func (rd *keyReader) Fresh() bool                  { return rd.r.Fresh(rd.key) }
func (rd *keyReader) Close() error                 { return rd.r.Close() }

func (rd *keyReader) ReadStats() register.ReadStats { return rd.r.Stats().ReadStats }
