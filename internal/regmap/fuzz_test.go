package regmap

import (
	"hash/fnv"
	"testing"
)

// FuzzShardRouting pins the shard router on arbitrary keys: the inlined
// FNV-1a matches the stdlib reference, the assignment is in range and a
// pure function of (key, shard count), and a key written through Set is
// found again through Get at the shard the router names — hash, router
// and directory agree for every byte sequence.
func FuzzShardRouting(f *testing.F) {
	f.Add("")
	f.Add("key-000001")
	f.Add("a long key \x00 with embedded zero bytes \xff and high bits")
	f.Add("ünïcødé ✓")
	for _, seed := range []string{"a", "ab", "abc", "abcd"} {
		f.Add(seed)
	}
	m8, err := New(Config{Shards: 8, MaxReaders: 1})
	if err != nil {
		f.Fatal(err)
	}
	m1, err := New(Config{Shards: 1, MaxReaders: 1})
	if err != nil {
		f.Fatal(err)
	}
	rd, err := m8.NewReader()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, key string) {
		ref := fnv.New64a()
		ref.Write([]byte(key))
		if got, want := Hash(key), ref.Sum64(); got != want {
			t.Fatalf("Hash(%q) = %d, stdlib fnv-1a = %d", key, got, want)
		}
		si := m8.ShardOf(key)
		if si < 0 || si >= m8.Shards() {
			t.Fatalf("ShardOf(%q) = %d out of [0,%d)", key, si, m8.Shards())
		}
		if again := m8.ShardOf(key); again != si {
			t.Fatalf("ShardOf(%q) unstable: %d then %d", key, si, again)
		}
		if got := m1.ShardOf(key); got != 0 {
			t.Fatalf("single-shard ShardOf(%q) = %d", key, got)
		}
		// Round-trip through the directory: the router, the writer-side
		// index and the reader-side decode must agree on the key bytes.
		if err := m8.Set(key, []byte("v")); err != nil {
			t.Fatalf("Set(%q): %v", key, err)
		}
		before := m8.Len()
		if err := m8.Set(key, []byte("v2")); err != nil { // update, not a new key
			t.Fatalf("re-Set(%q): %v", key, err)
		}
		if m8.Len() != before {
			t.Fatalf("re-Set(%q) created a duplicate key", key)
		}
		v, err := rd.Get(key)
		if err != nil {
			t.Fatalf("Get(%q): %v", key, err)
		}
		if string(v) != "v2" {
			t.Fatalf("Get(%q) = %q", key, v)
		}
	})
}
