// Package regmap composes many ARC (1,N) registers into one addressable,
// sharded, wait-free snapshot map — the "large-scale data sharing" step
// the paper motivates: the register is the primitive, a keyed store of
// registers is the service built from it (registers as the communication
// substrate larger objects are composed from, in Vitányi's framing).
//
// # Structure
//
//   - Every key owns a dedicated ARC (1,N) register holding its current
//     value. Value reads inherit ARC's properties verbatim: wait-free,
//     zero-copy views, zero RMW instructions when the value is unchanged.
//
//   - Keys are partitioned over S shards by an FNV-1a hash. Each shard
//     owns a dynamically growable key directory — the ordered list of the
//     shard's keys; a key's position in it is its slot index, stable for
//     the key's lifetime (the directory is append-only: this is a
//     snapshot map, keys are added, never removed).
//
//   - The directory itself is published through a directory ARC register
//     (one per shard, §3.3 dynamic-buffer variant, so its value can grow
//     without bound while unchanged publications cost nothing). Adding a
//     key is therefore one register creation plus one directory
//     re-publish by that shard's writer — and directory lookups, key
//     enumeration and change detection on the reader side are all
//     wait-free zero-copy register reads, never mutex acquisitions.
//
// # The fresh-gated Get
//
// Every Reader handle caches, per shard, the decoded directory — a
// (directory epoch, key→slot table, per-key ARC reader) tuple. A Get
// probes the shard's directory register with arc.Reader.Fresh (one atomic
// load, no RMW); only when the directory actually changed does it re-view
// and re-decode — and the decode is incremental: the append-only encoding
// is prefix-stable, so only the new tail entries are parsed. The key's
// own register is then read through arc.Reader.ViewFresh, whose unchanged
// case is ARC's R1–R2 fast path. A Get of an unchanged key on an
// unchanged directory therefore costs two atomic loads total — zero RMW
// instructions, zero decoding, zero copies — regardless of how many keys
// the map holds. A miss on an unchanged directory costs one atomic load
// plus a hash lookup.
//
// # Concurrency contract
//
// Each shard is single-writer: Set may be invoked concurrently only for
// keys living on different shards (ShardOf reports the routing). The
// common deployment is one writer goroutine for the whole map, mirroring
// the paper's (1,N) shape; partition keys by ShardOf to scale writes.
// Readers are one handle per goroutine, as everywhere in this module.
//
// The writer-to-reader handoff of a new key needs no locks: the shard's
// slot array is an immutable snapshot behind an atomic pointer, replaced
// (copy-on-append) before the directory register publishes the new
// count. A reader that observes the new directory through the register's
// RMW chain therefore observes the longer slot array too, and slot
// indices below the published count are always valid. The new key's
// register is created with the first value as its initial content, so no
// reader can ever see a key without a value.
package regmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"arcreg/internal/arc"
	"arcreg/internal/register"
)

// ErrKeyNotFound is returned by Get for a key no Set has created.
var ErrKeyNotFound = errors.New("regmap: key not found")

// DefaultShards is the shard count when Config.Shards is zero.
const DefaultShards = 8

// dirMaxBytes bounds a shard directory encoding (1 GiB of key material
// per shard — an administrative ceiling, not a pre-allocation: the
// directory register uses dynamic buffers).
const dirMaxBytes = 1 << 30

// dirHeaderSize is the fixed directory prefix: 8-byte epoch + 4-byte
// entry count. Fixed-width (not varint) so the entry region's byte
// offsets never shift as the directory grows — that is what makes the
// reader's incremental tail decode sound.
const dirHeaderSize = 12

// Config parametrizes a Map.
type Config struct {
	// Shards is the number of key partitions, rounded up to a power of
	// two (default DefaultShards). More shards mean more write
	// parallelism headroom and smaller directories, at the cost of one
	// directory register (and one per-reader handle) each.
	Shards int
	// MaxReaders is N, the number of concurrently live Reader handles.
	MaxReaders int
	// MaxValueSize bounds values in bytes (default
	// register.DefaultMaxValueSize). Per-key registers pre-allocate
	// MaxReaders+2 buffers of this size unless DynamicValues is set.
	MaxValueSize int
	// DynamicValues selects the §3.3 dynamic-buffer variant for the
	// per-key value registers: each Set allocates an exact-size buffer
	// instead of filling a pre-allocated slot. Memory then scales with
	// the values actually stored — the right choice when the map holds
	// many keys with small or rarely-updated values.
	DynamicValues bool
}

// fnv64Offset/fnv64Prime are the FNV-1a 64-bit parameters. The hash is
// inlined (rather than hash/fnv) to keep ShardOf allocation-free on the
// read path; the fuzz tests pin it to the stdlib implementation.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// Hash is the FNV-1a 64-bit hash of key — the map's shard router,
// exported for tests and for callers that partition writer goroutines.
func Hash(key string) uint64 {
	h := uint64(fnv64Offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnv64Prime
	}
	return h
}

// slots is an immutable snapshot of a shard's per-key registers, in slot
// (directory) order. Grown copy-on-append by the shard writer; readers
// load it atomically after observing the directory.
type slots struct {
	regs []*arc.Register
}

// shard owns one key partition: the directory register and the
// writer-side key table. All non-atomic fields are owned by the shard's
// single writer.
type shard struct {
	dir     *arc.Register         // directory publications (dynamic buffers)
	entries atomic.Pointer[slots] // reader-visible slot array snapshot
	index   map[string]int        // writer-side key → slot
	wregs   []*arc.Register       // writer-side slot array (uncopied)
	epoch   uint64                // directory publish count (== key count while add-only)
	dirBuf  []byte                // directory encoding (prefix-stable, appended to)
}

// Map is a sharded wait-free snapshot map of ARC registers.
type Map struct {
	shards       []*shard
	mask         uint64
	maxReaders   int
	maxValueSize int
	dynamic      bool

	mu          sync.Mutex
	liveReaders int
}

// New constructs a Map.
func New(cfg Config) (*Map, error) {
	if cfg.MaxReaders <= 0 {
		return nil, fmt.Errorf("regmap: MaxReaders must be positive, got %d", cfg.MaxReaders)
	}
	if cfg.MaxValueSize == 0 {
		cfg.MaxValueSize = register.DefaultMaxValueSize
	}
	if cfg.MaxValueSize < 0 {
		return nil, fmt.Errorf("regmap: MaxValueSize must be positive, got %d", cfg.MaxValueSize)
	}
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("regmap: Shards must be positive, got %d", cfg.Shards)
	}
	nshards := 1
	for nshards < cfg.Shards {
		nshards <<= 1
	}
	m := &Map{
		shards:       make([]*shard, nshards),
		mask:         uint64(nshards - 1),
		maxReaders:   cfg.MaxReaders,
		maxValueSize: cfg.MaxValueSize,
		dynamic:      cfg.DynamicValues,
	}
	genesis := make([]byte, dirHeaderSize) // epoch 0, count 0
	for i := range m.shards {
		dir, err := arc.New(register.Config{
			MaxReaders:   cfg.MaxReaders,
			MaxValueSize: dirMaxBytes,
			Initial:      genesis,
		}, arc.Options{DynamicBuffers: true})
		if err != nil {
			return nil, fmt.Errorf("regmap: shard %d directory: %w", i, err)
		}
		sh := &shard{
			dir:    dir,
			index:  make(map[string]int),
			dirBuf: append([]byte(nil), genesis...),
		}
		sh.entries.Store(&slots{})
		m.shards[i] = sh
	}
	return m, nil
}

// Shards reports the shard count (a power of two).
func (m *Map) Shards() int { return len(m.shards) }

// MaxReaders reports the Reader-handle capacity N.
func (m *Map) MaxReaders() int { return m.maxReaders }

// MaxValueSize reports the per-value byte bound.
func (m *Map) MaxValueSize() int { return m.maxValueSize }

// ShardOf reports which shard key routes to — deterministic across
// processes and Map instances with the same shard count. Writers that
// want parallel Sets partition their keys by this.
func (m *Map) ShardOf(key string) int { return int(Hash(key) & m.mask) }

// Len reports the number of keys in the map. Safe to call concurrently
// with Sets (it sums the shards' atomic slot snapshots).
func (m *Map) Len() int {
	n := 0
	for _, sh := range m.shards {
		n += len(sh.entries.Load().regs)
	}
	return n
}

// Set publishes val under key, creating the key if needed. Single
// goroutine per shard (see the package concurrency contract). The value
// is copied into a register slot; the caller keeps ownership of val.
func (m *Map) Set(key string, val []byte) error {
	if len(val) > m.maxValueSize {
		return fmt.Errorf("%w: %d > %d", register.ErrValueTooLarge, len(val), m.maxValueSize)
	}
	sh := m.shards[m.ShardOf(key)]
	if i, ok := sh.index[key]; ok {
		return sh.wregs[i].Write(val)
	}
	return m.addKey(sh, key, val)
}

// addKey creates the key's register (seeded with the first value, so the
// key is never visible without one), grows the reader-visible slot
// snapshot, and re-publishes the shard directory. The order — register
// ready, slots stored, directory published — is what readers rely on:
// observing the new directory count through the register's RMW chain
// happens-after the slot store.
func (m *Map) addKey(sh *shard, key string, val []byte) error {
	initial := val
	if initial == nil {
		initial = []byte{}
	}
	reg, err := arc.New(register.Config{
		MaxReaders:   m.maxReaders,
		MaxValueSize: m.maxValueSize,
		Initial:      initial,
	}, arc.Options{DynamicBuffers: m.dynamic})
	if err != nil {
		return fmt.Errorf("regmap: key %q register: %w", key, err)
	}
	if len(sh.dirBuf)+binary.MaxVarintLen64+len(key) > dirMaxBytes {
		return fmt.Errorf("regmap: shard directory full (%d bytes)", len(sh.dirBuf))
	}

	sh.wregs = append(sh.wregs, reg)
	next := &slots{regs: append(make([]*arc.Register, 0, len(sh.wregs)), sh.wregs...)}
	sh.entries.Store(next)
	sh.index[key] = len(sh.wregs) - 1

	// Append the entry to the prefix-stable encoding and re-publish.
	sh.epoch++
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(key)))
	sh.dirBuf = append(sh.dirBuf, lenBuf[:n]...)
	sh.dirBuf = append(sh.dirBuf, key...)
	binary.LittleEndian.PutUint64(sh.dirBuf[0:8], sh.epoch)
	binary.LittleEndian.PutUint32(sh.dirBuf[8:12], uint32(len(sh.wregs)))
	return sh.dir.Write(sh.dirBuf)
}

// WriteStats aggregates the map's publish-side counters. Collect only at
// quiescence (no Set in flight), like every stats accessor in this
// module.
func (m *Map) WriteStats() WriteStats {
	var ws WriteStats
	for _, sh := range m.shards {
		ws.Directory.Add(sh.dir.WriteStats())
		ws.Keys += uint64(len(sh.wregs))
		for _, reg := range sh.entries.Load().regs {
			ws.Value.Add(reg.WriteStats())
		}
	}
	return ws
}

// WriteStats counts the work the map's writer side performed.
type WriteStats struct {
	// Value aggregates the per-key value registers' write counters.
	Value register.WriteStats
	// Directory aggregates the shard directory registers' write
	// counters; Directory.Ops is the number of directory publications.
	Directory register.WriteStats
	// Keys is the number of keys created.
	Keys uint64
}

// ReadStats counts the work a Reader handle performed.
type ReadStats struct {
	// ReadStats aggregates over the handle's component registers: Ops
	// counts Gets (hits and misses), FastPath counts Gets served with
	// zero RMW instructions (unchanged directory and unchanged or absent
	// key), RMW sums the RMW instructions the directory and per-key
	// handles executed.
	register.ReadStats
	// Misses counts Gets of absent keys.
	Misses uint64
	// DirRefreshes counts directory re-decodes (a changed directory
	// observed); the incremental decode parses only the tail entries.
	DirRefreshes uint64
}

// readerShard is a Reader's per-shard cache: the directory reader handle
// plus the decoded (epoch, key→slot, per-key handle) table.
type readerShard struct {
	dirRd *arc.Reader
	// table, keys, regs, handles are the decoded directory: key → slot,
	// keys in slot order, the slot snapshot the decode observed, and the
	// lazily created per-key reader handles.
	table   map[string]int
	keys    []string
	regs    []*arc.Register
	handles []*arc.Reader
	// epoch is the decoded directory epoch — consumed as a monotonicity
	// guard: a publication carries a strictly larger epoch, so a decode
	// observing a smaller one means the protocol broke. decoded/tailOff
	// track the incremental decode frontier (entries parsed, byte offset
	// of the next one — valid across publications because the encoding
	// is prefix-stable).
	epoch   uint64
	decoded int
	tailOff int
}

// Reader is a per-goroutine read endpoint over the whole map. One handle
// per goroutine; at most MaxReaders live at once.
type Reader struct {
	m      *Map
	shards []readerShard
	closed bool

	ops       uint64
	fastPath  uint64
	misses    uint64
	refreshes uint64
}

// NewReader allocates a reader handle (one directory handle per shard;
// per-key handles are created lazily on first Get of each key).
func (m *Map) NewReader() (*Reader, error) {
	m.mu.Lock()
	if m.liveReaders >= m.maxReaders {
		m.mu.Unlock()
		return nil, register.ErrTooManyReaders
	}
	m.liveReaders++
	m.mu.Unlock()
	r := &Reader{m: m, shards: make([]readerShard, len(m.shards))}
	for i, sh := range m.shards {
		h, err := sh.dir.NewReaderHandle()
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("regmap: shard %d directory handle: %w", i, err)
		}
		r.shards[i].dirRd = h
		r.shards[i].table = make(map[string]int)
	}
	return r, nil
}

// refresh re-views and incrementally decodes shard si's directory. Called
// only when the directory register reports a change (or on first touch).
func (r *Reader) refresh(si int) error {
	rs := &r.shards[si]
	v, err := rs.dirRd.View()
	if err != nil {
		return err
	}
	if len(v) < dirHeaderSize {
		return fmt.Errorf("regmap: shard %d directory shorter than header (%d bytes)", si, len(v))
	}
	epoch := binary.LittleEndian.Uint64(v[0:8])
	count := int(binary.LittleEndian.Uint32(v[8:12]))
	if epoch < rs.epoch || count < rs.decoded {
		// ARC never serves an older publication to the same handle; a
		// regressed epoch or count means the directory protocol broke.
		return fmt.Errorf("regmap: shard %d directory regressed (epoch %d→%d, count %d→%d)",
			si, rs.epoch, epoch, rs.decoded, count)
	}
	// Load the slot snapshot after viewing the directory: the writer
	// stored it before publishing, so it covers every published slot.
	el := r.m.shards[si].entries.Load()
	if count > len(el.regs) {
		return fmt.Errorf("regmap: shard %d directory count %d exceeds %d slots", si, count, len(el.regs))
	}
	off := rs.tailOff
	if rs.decoded == 0 {
		off = dirHeaderSize
	}
	for i := rs.decoded; i < count; i++ {
		klen, n := binary.Uvarint(v[off:])
		if n <= 0 || off+n+int(klen) > len(v) {
			return fmt.Errorf("regmap: shard %d directory entry %d corrupt at offset %d", si, i, off)
		}
		off += n
		key := string(v[off : off+int(klen)])
		off += int(klen)
		rs.table[key] = i
		rs.keys = append(rs.keys, key)
		rs.handles = append(rs.handles, nil)
	}
	rs.decoded = count
	rs.tailOff = off
	rs.epoch = epoch
	rs.regs = el.regs
	r.refreshes++
	return nil
}

// Get returns a zero-copy view of key's freshest value, or ErrKeyNotFound.
// The view is valid until this handle's next Get/GetCopy of the same key
// or Close; Gets of other keys do not invalidate it. When neither the
// shard directory nor the key changed since the handle's last Get of it,
// the cost is two atomic loads — zero RMW instructions, zero decoding.
func (r *Reader) Get(key string) ([]byte, error) {
	if r.closed {
		return nil, register.ErrReaderClosed
	}
	si := r.m.ShardOf(key)
	rs := &r.shards[si]
	r.ops++
	dirFresh := rs.dirRd.Fresh()
	if !dirFresh {
		if err := r.refresh(si); err != nil {
			return nil, err
		}
	}
	i, ok := rs.table[key]
	if !ok {
		r.misses++
		if dirFresh {
			r.fastPath++ // one load, no RMW: the directory probe
		}
		return nil, ErrKeyNotFound
	}
	h := rs.handles[i]
	if h == nil {
		var err error
		h, err = rs.regs[i].NewReaderHandle()
		if err != nil {
			return nil, fmt.Errorf("regmap: key %q handle: %w", key, err)
		}
		rs.handles[i] = h
	}
	v, changed, err := h.ViewFresh()
	if err != nil {
		return nil, err
	}
	if dirFresh && !changed {
		r.fastPath++ // two loads, no RMW: the fully gated hot path
	}
	return v, nil
}

// GetCopy copies key's freshest value into dst and returns its length
// (register.ErrBufferTooSmall with the required length if dst cannot
// hold it).
func (r *Reader) GetCopy(key string, dst []byte) (int, error) {
	v, err := r.Get(key)
	if err != nil {
		return 0, err
	}
	if len(dst) < len(v) {
		return len(v), register.ErrBufferTooSmall
	}
	return copy(dst, v), nil
}

// Fresh reports whether the handle's last Get of key would return the
// same publication again — the map-level freshness probe: true only when
// the shard directory is unchanged, the key is known, and its register
// still holds the handle's slot. A key this handle never Get was not
// read, so it reports false (matching register.FreshnessProber).
func (r *Reader) Fresh(key string) bool {
	if r.closed {
		return false
	}
	rs := &r.shards[r.m.ShardOf(key)]
	if !rs.dirRd.Fresh() {
		return false
	}
	i, ok := rs.table[key]
	if !ok {
		return false
	}
	h := rs.handles[i]
	return h != nil && h.Fresh()
}

// Keys returns the map's keys (shard by shard, slot order within a
// shard; no cross-shard snapshot is implied — each shard's listing is
// individually atomic). The slice is the caller's.
func (r *Reader) Keys() ([]string, error) {
	if r.closed {
		return nil, register.ErrReaderClosed
	}
	n := 0
	for si := range r.shards {
		rs := &r.shards[si]
		if !rs.dirRd.Fresh() {
			if err := r.refresh(si); err != nil {
				return nil, err
			}
		}
		n += len(rs.keys)
	}
	out := make([]string, 0, n)
	for si := range r.shards {
		out = append(out, r.shards[si].keys...)
	}
	return out, nil
}

// Len reports the number of keys visible to this handle (refreshing each
// shard's directory view first).
func (r *Reader) Len() (int, error) {
	if r.closed {
		return 0, register.ErrReaderClosed
	}
	n := 0
	for si := range r.shards {
		rs := &r.shards[si]
		if !rs.dirRd.Fresh() {
			if err := r.refresh(si); err != nil {
				return 0, err
			}
		}
		n += len(rs.keys)
	}
	return n, nil
}

// Stats reports the handle's read counters. Collect after the owning
// goroutine has quiesced.
func (r *Reader) Stats() ReadStats {
	st := ReadStats{
		ReadStats:    register.ReadStats{Ops: r.ops, FastPath: r.fastPath},
		Misses:       r.misses,
		DirRefreshes: r.refreshes,
	}
	for si := range r.shards {
		rs := &r.shards[si]
		if rs.dirRd != nil {
			st.RMW += rs.dirRd.ReadStats().RMW
		}
		for _, h := range rs.handles {
			if h != nil {
				st.RMW += h.ReadStats().RMW
			}
		}
	}
	return st
}

// Close releases the handle: every per-key handle and directory handle
// is returned to its register, and the map-level capacity is freed.
func (r *Reader) Close() error {
	if r.closed {
		return register.ErrReaderClosed
	}
	r.closed = true
	for si := range r.shards {
		rs := &r.shards[si]
		if rs.dirRd != nil {
			rs.dirRd.Close()
		}
		for _, h := range rs.handles {
			if h != nil {
				h.Close()
			}
		}
	}
	r.m.mu.Lock()
	r.m.liveReaders--
	r.m.mu.Unlock()
	return nil
}

// LiveReaders reports the number of open Reader handles.
func (m *Map) LiveReaders() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.liveReaders
}
