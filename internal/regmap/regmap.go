// Package regmap composes many ARC (1,N) registers into one addressable,
// sharded, wait-free snapshot map — the "large-scale data sharing" step
// the paper motivates: the register is the primitive, a keyed store of
// registers is the service built from it (registers as the communication
// substrate larger objects are composed from, in Vitányi's framing).
//
// # Structure
//
//   - Every key owns a dedicated ARC (1,N) register holding its current
//     value. Value reads inherit ARC's properties verbatim: wait-free,
//     zero-copy views, zero RMW instructions when the value is unchanged.
//
//   - Keys are partitioned over S shards by an FNV-1a hash. Each shard
//     owns a dynamically growable key directory — an append-only log of
//     add and tombstone entries; a key's position in the slot array is its
//     slot index, stable for the key's lifetime. Delete publishes a
//     tombstone and recycles the slot: a later creation may reuse it with
//     a fresh value register (a new slot generation), so deleted keys
//     never resurrect stale values.
//
//   - Delete/recreate churn accretes dead entries in the log, so the log
//     is compacted in epochs: when an append would cross the directory
//     ceiling (or on an explicit Map.Compact), the writer publishes a
//     fresh log that re-registers every live key at its current slot and
//     generation, under a bumped compaction generation in the header.
//     Readers that observe the bump discard their incremental-decode
//     cursor and rebase onto the new log; prefix-stability holds within
//     each compaction epoch (DESIGN.md §9). The bump doubles as the
//     repair path: a reader shard whose decode latched corrupt retries a
//     full rebase when the directory publishes again, so poisoned shards
//     heal instead of failing forever.
//
//   - The directory itself is published through a directory ARC register
//     (one per shard, §3.3 dynamic-buffer variant, so its value can grow
//     without bound while unchanged publications cost nothing). Adding or
//     deleting a key is one log append plus one directory re-publish by
//     that shard's writer — and directory lookups, key enumeration and
//     change detection on the reader side are all wait-free zero-copy
//     register reads, never mutex acquisitions.
//
// # The fresh-gated Get
//
// Every Reader handle caches, per shard, the decoded directory — a
// (directory epoch, key→slot table, per-key ARC reader) tuple. A Get
// probes the shard's directory register with arc.Reader.Fresh (one atomic
// load, no RMW); only when the directory actually changed does it re-view
// and re-decode — and the decode is incremental: the append-only log is
// prefix-stable, so only the new tail entries are parsed. The key's
// own register is then read through arc.Reader.ViewFresh, whose unchanged
// case is ARC's R1–R2 fast path. A Get of an unchanged key on an
// unchanged directory therefore costs two atomic loads total — zero RMW
// instructions, zero decoding, zero copies — regardless of how many keys
// the map holds, and regardless of deletions elsewhere. A miss on an
// unchanged directory costs one atomic load plus a hash lookup.
//
// # The multi-key snapshot
//
// Reader.Snapshot returns a point-in-time copy of every live key. Each
// shard carries a pair of publish counters (pubStarted, bumped by the
// shard writer immediately before any publication — value write,
// directory append — and pubDone, bumped immediately after). A snapshot
// collects each shard under a validated counter window (started == done
// before the collect, started unchanged after it), then runs a global
// verification pass re-reading every shard's counter; shards that moved
// are re-collected. When a verification pass observes no movement, every
// shard's collected state was simultaneously current at the pass's start
// — a single linearization point for the whole map (see DESIGN.md §7 for
// the argument and for why an unvalidated counter gate is unsound).
// Snapshot executes no RMW instructions and retries only on observed
// publications.
//
// # Concurrency contract
//
// Each shard is single-writer: Set and Delete may be invoked concurrently
// only for keys living on different shards (ShardOf reports the routing).
// The common deployment is one writer goroutine for the whole map,
// mirroring the paper's (1,N) shape; partition keys by ShardOf to scale
// writes. Readers are one handle per goroutine, as everywhere in this
// module.
//
// The writer-to-reader handoff of a new key needs no locks: the shard's
// slot array is an immutable snapshot behind an atomic pointer, replaced
// (copy-on-write) before the directory register publishes the new entry.
// A reader that observes the new directory through the register's RMW
// chain therefore observes the updated slot array too. Slot reuse adds
// one subtlety: the slot array can run ahead of the directory view a
// reader decodes (the writer stores the array before publishing), so each
// slot carries a generation — the number of add entries that targeted it
// — and a reader that catches the array ahead of its view re-views the
// directory. The retry is sound because a generation mismatch proves the
// intervening tombstone was already fully published (never in flight), so
// the re-view observes it; see DESIGN.md §7.
package regmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"arcreg/internal/arc"
	"arcreg/internal/notify"
	"arcreg/internal/obs"
	"arcreg/internal/pad"
	"arcreg/internal/register"
	"arcreg/internal/trace"
)

// ErrKeyNotFound is returned by Get for a key no Set has created (or a
// deleted one), and by Delete for a key that does not exist.
var ErrKeyNotFound = errors.New("regmap: key not found")

// ErrDirectoryFull is returned by Set when a shard's live keys alone
// (after compacting away any dead log entries) cannot fit under the
// directory ceiling. It marks genuine capacity exhaustion, not churn:
// churn is absorbed by compaction epochs. Match with errors.Is.
var ErrDirectoryFull = errors.New("regmap: shard directory full")

// ErrShardCorrupt is returned by reads of a shard whose directory decode
// failed a structural or protocol check. The latch is per reader shard
// and heals: the reader retries a full rebase decode when the writer
// publishes again (Map.Compact guarantees a repairable publication).
// Match with errors.Is.
var ErrShardCorrupt = errors.New("regmap: shard directory corrupt")

// DefaultShards is the shard count when Config.Shards is zero.
const DefaultShards = 8

// dirMaxBytes bounds a shard directory log (1 GiB of entry material per
// shard — an administrative ceiling, not a pre-allocation: the directory
// register uses dynamic buffers). The log is append-only, so delete/
// recreate churn consumes directory capacity; the ceiling is what makes
// every directory refresh loop terminate absolutely.
const dirMaxBytes = 1 << 30

// dirCapacity is the enforced log ceiling — a variable only so tests can
// exercise the full-directory paths without allocating a gibibyte.
var dirCapacity = dirMaxBytes

// dirHeaderSize is the fixed directory prefix: 8-byte publication epoch
// + 4-byte entry count + 4-byte compaction generation. Fixed-width (not
// varint) so the entry region's byte offsets never shift as the log
// grows — that is what makes the reader's incremental tail decode sound.
// The epoch is globally monotone (it never resets); the entry count
// restarts at each compaction; the compaction generation (cgen) bumps
// once per compaction and is the reader's rebase signal.
const dirHeaderSize = 16

// Directory log entries are tagged with their target slot:
//
//	add:       uvarint(slot<<1) | uvarint(gen) | uvarint(len(key)) | key bytes
//	tombstone: uvarint(slot<<1|1)
//
// An add either appends a brand-new slot (slot == current slot count) or
// reuses a tombstoned one. The add carries the slot's generation
// explicitly: within one compaction epoch it matches the count of adds
// that targeted the slot, but a compacted log re-registers slots at
// their *current* generations, so readers cannot derive generations by
// counting — they decode them.
const tombstoneFlag = 1

// addEntryMax bounds an add entry's encoded size (three varints plus the
// key bytes) — the writer's capacity pre-check.
func addEntryMax(key string) int { return 3*binary.MaxVarintLen64 + len(key) }

// appendAdd appends one add entry for (slot, gen, key) to buf.
func appendAdd(buf []byte, slot int, gen uint32, key string) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(slot)<<1)
	buf = append(buf, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(gen))
	buf = append(buf, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(len(key)))
	buf = append(buf, tmp[:n]...)
	return append(buf, key...)
}

// Config parametrizes a Map.
type Config struct {
	// Shards is the number of key partitions, rounded up to a power of
	// two (default DefaultShards). More shards mean more write
	// parallelism headroom and smaller directories, at the cost of one
	// directory register (and one per-reader handle) each.
	Shards int
	// MaxReaders is N, the number of concurrently live Reader handles.
	MaxReaders int
	// MaxValueSize bounds values in bytes (default
	// register.DefaultMaxValueSize). Per-key registers pre-allocate
	// MaxReaders+2 buffers of this size unless DynamicValues is set.
	MaxValueSize int
	// DynamicValues selects the §3.3 dynamic-buffer variant for the
	// per-key value registers: each Set allocates an exact-size buffer
	// instead of filling a pre-allocated slot. Memory then scales with
	// the values actually stored — the right choice when the map holds
	// many keys with small or rarely-updated values.
	DynamicValues bool
	// Trace enables the always-on flight recorder: one writer ring per
	// shard (value and directory publications record StagePublish and
	// stamp the notify cascade), one ring for the map-level fan's root
	// relay, and a pool of watcher lanes Reader handles borrow. The
	// recording paths stay RMW- and allocation-free (owner-plain rings,
	// see internal/trace); untraced maps skip even the clock read, so
	// the hot paths are bit-identical with Trace off.
	Trace bool
	// TraceRingEvents is the per-ring event capacity when Trace is set
	// (default trace.DefaultRingEvents, rounded up to a power of two).
	TraceRingEvents int
	// TraceLanes bounds the watcher-lane pool when Trace is set
	// (default trace.DefaultLanes); readers beyond it run untraced.
	TraceLanes int
}

// fnv64Offset/fnv64Prime are the FNV-1a 64-bit parameters. The hash is
// inlined (rather than hash/fnv) to keep ShardOf allocation-free on the
// read path; the fuzz tests pin it to the stdlib implementation.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// Hash is the FNV-1a 64-bit hash of key — the map's shard router,
// exported for tests and for callers that partition writer goroutines.
func Hash(key string) uint64 {
	h := uint64(fnv64Offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnv64Prime
	}
	return h
}

// slots is an immutable snapshot of a shard's per-key registers and their
// generations, in slot order. Replaced copy-on-write by the shard writer
// whenever a slot is added or reused; readers load it atomically after
// viewing the directory and verify the generations against their decoded
// state.
type slots struct {
	regs []*arc.Register
	gens []uint32
}

// shard owns one key partition: the directory register, the snapshot
// publish counters, and the writer-side key table. All non-atomic fields
// are owned by the shard's single writer.
type shard struct {
	dir     *arc.Register         // directory publications (dynamic buffers)
	entries atomic.Pointer[slots] // reader-visible slot array snapshot
	// pubStarted / pubDone bracket every publication on this shard
	// (value write, directory append): the writer bumps pubStarted
	// immediately before and pubDone immediately after. Snapshot's
	// validated collect is built on them (see DESIGN.md §7).
	pubStarted pad.PaddedUint64
	pubDone    pad.PaddedUint64
	// liveKeys is the shard's live key count, maintained by the writer,
	// read by Map.Len.
	liveKeys atomic.Int64
	// notify is the per-shard publication sequencer: the shard writer
	// publishes it after every publication on the shard (value write,
	// key creation, tombstone), and its gate is chained to the map-level
	// watch gate, so whole-map watchers park in one place. Per-key value
	// changes additionally wake the key register's own sequencer (inside
	// arc.Write), which single-key watchers park on — sibling-key
	// traffic does not wake them. All of it is store+load only: the
	// publish paths stay RMW- and allocation-free while nobody is
	// parked.
	notify notify.Sequencer

	// rec is the shard writer's flight-recorder ring (nil = untraced):
	// every value and directory register the shard owns records its
	// StagePublish events here (they share the shard's single writer,
	// so the ring stays single-writer), and stampNow reads the clock
	// only when it is set.
	rec *trace.Ring

	si          int             // shard index (error context)
	index       map[string]int  // writer-side key → slot (live keys only)
	wregs       []*arc.Register // writer-side slot array (uncopied)
	wgens       []uint32        // writer-side slot generations
	wkeys       []string        // writer-side slot → key ("" when dead) — compaction's source of truth
	freeSlots   []int           // tombstoned slots available for reuse
	epoch       uint64          // directory publish count (monotone across compactions)
	cgen        uint32          // compaction generation (bumps per compaction)
	nentries    int             // log entries in the current compaction epoch
	dirBuf      []byte          // directory encoding (prefix-stable within an epoch)
	deletes     uint64          // tombstones published (including compaction-folded deletes)
	creates     uint64          // keys created (including re-creations)
	compactions uint64          // compaction epochs published

	// stats mirrors the plain directory counters above as live cells
	// for Map.Stats. The writer flushes it with flushStats only inside
	// a publication window (after beginPub), so the validated collect
	// in statsSnapshot — same seqlock argument as Snapshot's — either
	// sees a mutually consistent flush or detects the overlap and
	// retries. In particular cgen == compactions in every snapshot the
	// walker accepts, even mid-Compact.
	stats shardStats
}

// shardStats is the shard writer's tier-1 live counter block:
// single-writer cells, pad-bracketed so neighbouring shards' walkers
// and writers do not false-share.
type shardStats struct {
	_           pad.CacheLinePad
	epoch       obs.Cell
	cgen        obs.Cell
	entries     obs.Cell
	dirBytes    obs.Cell
	creates     obs.Cell
	deletes     obs.Cell
	compactions obs.Cell
	_           pad.CacheLinePad
}

// beginPub / endPub bracket one publication for the snapshot gate.
func (sh *shard) beginPub() { sh.pubStarted.Add(1) }
func (sh *shard) endPub()   { sh.pubDone.Add(1) }

// stampNow returns the origin stamp for a publication about to happen
// on this shard: trace.Now when the shard is traced, 0 (unstamped)
// otherwise — so untraced publish paths never read the clock.
func (sh *shard) stampNow() int64 {
	if sh.rec == nil {
		return 0
	}
	return trace.Now()
}

// flushStats publishes the shard's directory counters into the live
// cells. Call only from the shard writer, only inside a publication
// window (between beginPub and endPub): the window is what lets the
// stats walker validate that the seven cells belong to one publication
// instead of tearing across two.
func (sh *shard) flushStats() {
	sh.stats.epoch.Store(sh.epoch)
	sh.stats.cgen.Store(uint64(sh.cgen))
	sh.stats.entries.Store(uint64(sh.nentries))
	sh.stats.dirBytes.Store(uint64(len(sh.dirBuf)))
	sh.stats.creates.Store(sh.creates)
	sh.stats.deletes.Store(sh.deletes)
	sh.stats.compactions.Store(sh.compactions)
}

// Map is a sharded wait-free snapshot map of ARC registers.
type Map struct {
	shards       []*shard
	mask         uint64
	maxReaders   int
	maxValueSize int
	dynamic      bool

	// watchGate aggregates every shard sequencer: any publication
	// anywhere in the map wakes watchers parked here (Reader.WatchAll).
	watchGate notify.Gate

	// watchTrack aggregates the live Watch/WatchAll population's
	// backpressure ledgers into the Stats tree. Watchers attach on
	// entry and detach on return — lifecycle edges, never per-event.
	watchTrack notify.Tracker

	// tracer owns the map's flight-recorder rings (nil when Config.Trace
	// is off — every use degrades to untraced); fanRing is the dedicated
	// ring of the map-level fan's root relay, attached lazily when the
	// first WatchAll session fans the watch gate.
	tracer  *trace.Tracer
	fanRing *trace.Ring

	mu          sync.Mutex
	liveReaders int
}

// New constructs a Map.
func New(cfg Config) (*Map, error) {
	if cfg.MaxReaders <= 0 {
		return nil, fmt.Errorf("regmap: MaxReaders must be positive, got %d", cfg.MaxReaders)
	}
	if cfg.MaxValueSize == 0 {
		cfg.MaxValueSize = register.DefaultMaxValueSize
	}
	if cfg.MaxValueSize < 0 {
		return nil, fmt.Errorf("regmap: MaxValueSize must be positive, got %d", cfg.MaxValueSize)
	}
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("regmap: Shards must be positive, got %d", cfg.Shards)
	}
	nshards := 1
	for nshards < cfg.Shards {
		nshards <<= 1
	}
	m := &Map{
		shards:       make([]*shard, nshards),
		mask:         uint64(nshards - 1),
		maxReaders:   cfg.MaxReaders,
		maxValueSize: cfg.MaxValueSize,
		dynamic:      cfg.DynamicValues,
	}
	if cfg.Trace {
		m.tracer = trace.New(trace.Config{RingEvents: cfg.TraceRingEvents, Lanes: cfg.TraceLanes})
		m.fanRing = m.tracer.Ring("fan-root")
	}
	genesis := make([]byte, dirHeaderSize) // epoch 0, no entries, cgen 0
	for i := range m.shards {
		dir, err := arc.New(register.Config{
			MaxReaders:   cfg.MaxReaders,
			MaxValueSize: dirMaxBytes,
			Initial:      genesis,
		}, arc.Options{DynamicBuffers: true})
		if err != nil {
			return nil, fmt.Errorf("regmap: shard %d directory: %w", i, err)
		}
		sh := &shard{
			dir:    dir,
			si:     i,
			index:  make(map[string]int),
			dirBuf: append([]byte(nil), genesis...),
		}
		sh.entries.Store(&slots{})
		sh.notify.Chain(&m.watchGate)
		if m.tracer != nil {
			// One ring per shard writer; the directory register shares it
			// (same single writer). Key registers join in addKey.
			sh.rec = m.tracer.Ring(fmt.Sprintf("shard%d", i))
			dir.Trace(sh.rec)
		}
		sh.flushStats() // seed the live cells before the shard is shared
		m.shards[i] = sh
	}
	return m, nil
}

// Shards reports the shard count (a power of two).
func (m *Map) Shards() int { return len(m.shards) }

// MaxReaders reports the Reader-handle capacity N.
func (m *Map) MaxReaders() int { return m.maxReaders }

// MaxValueSize reports the per-value byte bound.
func (m *Map) MaxValueSize() int { return m.maxValueSize }

// ShardOf reports which shard key routes to — deterministic across
// processes and Map instances with the same shard count. Writers that
// want parallel Sets partition their keys by this.
func (m *Map) ShardOf(key string) int { return int(Hash(key) & m.mask) }

// Len reports the number of live keys in the map. Safe to call
// concurrently with Sets and Deletes (it sums the shards' atomic live
// counters; no cross-shard atomicity is implied — use Snapshot for
// that).
func (m *Map) Len() int {
	n := 0
	for _, sh := range m.shards {
		n += int(sh.liveKeys.Load())
	}
	return n
}

// Set publishes val under key, creating (or re-creating) the key if
// needed. Single goroutine per shard (see the package concurrency
// contract). The value is copied into a register slot; the caller keeps
// ownership of val.
func (m *Map) Set(key string, val []byte) error {
	if len(val) > m.maxValueSize {
		return fmt.Errorf("%w: %d > %d", register.ErrValueTooLarge, len(val), m.maxValueSize)
	}
	sh := m.shards[m.ShardOf(key)]
	if i, ok := sh.index[key]; ok {
		// Stamp the publication on traced shards: the key register's
		// StagePublish event, the shard notify wake, and every downstream
		// stage share this one span ID (see internal/trace).
		stamp := sh.stampNow()
		sh.beginPub()
		faultValuePublish.Hit()
		err := sh.wregs[i].WriteStamped(val, stamp)
		sh.endPub()
		if err == nil {
			sh.notify.PublishAt(stamp)
		}
		return err
	}
	return m.addKey(sh, key, val)
}

// Delete removes key from the map by publishing a tombstone through the
// shard's directory register; the slot is recycled for a later creation.
// Returns ErrKeyNotFound when the key does not exist. Same single-writer-
// per-shard contract as Set. Readers holding views of the deleted key's
// value keep them (the retired register is never written again); readers
// observe the deletion on their next directory probe, so a concurrent Get
// linearizes before the delete and returns the last value, or after it
// and misses.
func (m *Map) Delete(key string) error {
	sh := m.shards[m.ShardOf(key)]
	slot, ok := sh.index[key]
	if !ok {
		return ErrKeyNotFound
	}
	var tagBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tagBuf[:], uint64(slot)<<1|tombstoneFlag)
	if len(sh.dirBuf)+n > dirCapacity {
		// No room for a tombstone: fold the deletion into a compaction
		// epoch — the fresh log simply omits the key, so Delete succeeds
		// at any fill level and the map can always shrink.
		sh.unbind(key, slot)
		return sh.compact()
	}
	sh.unbind(key, slot)
	faultDeleteRecycle.Hit()

	sh.epoch++
	sh.nentries++
	sh.dirBuf = append(sh.dirBuf, tagBuf[:n]...)
	binary.LittleEndian.PutUint64(sh.dirBuf[0:8], sh.epoch)
	binary.LittleEndian.PutUint32(sh.dirBuf[8:12], uint32(sh.nentries))
	faultDirPrepublish.Hit()
	stamp := sh.stampNow()
	sh.beginPub()
	sh.flushStats()
	faultDirPublish.Hit()
	err := sh.dir.WriteStamped(sh.dirBuf, stamp)
	sh.endPub()
	if err == nil {
		sh.notify.PublishAt(stamp)
	}
	return err
}

// unbind removes key (at slot) from the writer's live state; the
// directory publication (tombstone or compaction) follows separately.
func (sh *shard) unbind(key string, slot int) {
	delete(sh.index, key)
	sh.wkeys[slot] = ""
	sh.freeSlots = append(sh.freeSlots, slot)
	sh.deletes++
	sh.liveKeys.Add(-1)
}

// addKey creates a fresh register for the key (seeded with the first
// value, so the key is never visible without one — and so a re-created
// key can never resurrect its predecessor's value), installs it into a
// free slot (or appends one), publishes the new slot snapshot, and
// appends an add entry to the directory log. The order — register ready,
// slots stored, directory published — is what readers rely on: observing
// the new entry through the register's RMW chain happens-after the slot
// store.
func (m *Map) addKey(sh *shard, key string, val []byte) error {
	initial := val
	if initial == nil {
		initial = []byte{}
	}
	reg, err := arc.New(register.Config{
		MaxReaders:   m.maxReaders,
		MaxValueSize: m.maxValueSize,
		Initial:      initial,
	}, arc.Options{DynamicBuffers: m.dynamic})
	if err != nil {
		return fmt.Errorf("regmap: key %q register: %w", key, err)
	}
	// The key register's writer is the shard writer, so it shares the
	// shard's flight-recorder ring (nil on untraced maps).
	reg.Trace(sh.rec)
	if err := sh.ensureRoom(addEntryMax(key)); err != nil {
		return err
	}

	var slot int
	if n := len(sh.freeSlots); n > 0 {
		slot = sh.freeSlots[n-1]
		sh.freeSlots = sh.freeSlots[:n-1]
		sh.wregs[slot] = reg
		sh.wgens[slot]++
		sh.wkeys[slot] = key
	} else {
		slot = len(sh.wregs)
		sh.wregs = append(sh.wregs, reg)
		sh.wgens = append(sh.wgens, 1)
		sh.wkeys = append(sh.wkeys, key)
	}
	next := &slots{
		regs: append(make([]*arc.Register, 0, len(sh.wregs)), sh.wregs...),
		gens: append(make([]uint32, 0, len(sh.wgens)), sh.wgens...),
	}
	sh.index[key] = slot
	sh.creates++
	sh.liveKeys.Add(1)

	// Append the add entry to the prefix-stable log and re-publish.
	sh.epoch++
	sh.nentries++
	sh.dirBuf = appendAdd(sh.dirBuf, slot, sh.wgens[slot], key)
	binary.LittleEndian.PutUint64(sh.dirBuf[0:8], sh.epoch)
	binary.LittleEndian.PutUint32(sh.dirBuf[8:12], uint32(sh.nentries))
	faultDirPrepublish.Hit()
	stamp := sh.stampNow()
	sh.beginPub()
	sh.flushStats()
	sh.entries.Store(next)
	faultSlotStore.Hit()
	err = sh.dir.WriteStamped(sh.dirBuf, stamp)
	sh.endPub()
	if err == nil {
		sh.notify.PublishAt(stamp)
	}
	return err
}

// ensureRoom guarantees the next append of up to need bytes fits under
// the directory ceiling, compacting first when the log carries dead
// entries (tombstones and their superseded adds). ErrDirectoryFull only
// when even the compacted live set leaves no room — genuine capacity
// exhaustion, not churn.
func (sh *shard) ensureRoom(need int) error {
	if len(sh.dirBuf)+need <= dirCapacity {
		return nil
	}
	if sh.nentries > len(sh.index) {
		if err := sh.compact(); err != nil {
			return err
		}
		if len(sh.dirBuf)+need <= dirCapacity {
			return nil
		}
	}
	return fmt.Errorf("%w: shard %d holds %d live keys in %d bytes (ceiling %d)",
		ErrDirectoryFull, sh.si, len(sh.index), len(sh.dirBuf), dirCapacity)
}

// compact publishes a new compaction epoch: a fresh directory log whose
// entries re-register every live key at its current slot and generation,
// under a bumped cgen. Slot numbering, value registers and generations
// are untouched — only the log representation resets — so reader handles
// parked on live keys survive the epoch (their (slot, gen) bindings
// re-validate against the new log). The publication epoch keeps rising
// across the bump: readers use it to order publications globally.
//
// compact is also the universal repair publication: it is built purely
// from the writer-side tables (index/wkeys/wgens), so after a crash that
// left an append unpublished — or after a corruption was injected behind
// the writer's back — one compact republishes the writer's truth and
// every latched reader rebases onto it.
func (sh *shard) compact() error {
	buf := make([]byte, dirHeaderSize, dirHeaderSize+len(sh.dirBuf)/2)
	count := 0
	for slot, key := range sh.wkeys {
		if key == "" {
			continue
		}
		buf = appendAdd(buf, slot, sh.wgens[slot], key)
		count++
	}
	sh.epoch++
	sh.cgen++
	sh.nentries = count
	sh.dirBuf = buf
	binary.LittleEndian.PutUint64(buf[0:8], sh.epoch)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(count))
	binary.LittleEndian.PutUint32(buf[12:16], sh.cgen)
	sh.compactions++
	// Re-store the slot snapshot from the writer tables: normally a
	// no-op copy, but after a crash that unwound addKey between its
	// state mutation and its publication, the published pointer is
	// stale — re-storing it here is what makes compact the universal
	// crash repair (readers verify decoded generations against it).
	next := &slots{
		regs: append(make([]*arc.Register, 0, len(sh.wregs)), sh.wregs...),
		gens: append(make([]uint32, 0, len(sh.wgens)), sh.wgens...),
	}
	faultCompactBuilt.Hit()
	stamp := sh.stampNow()
	sh.beginPub()
	sh.flushStats()
	sh.entries.Store(next)
	faultCompactPublish.Hit()
	err := sh.dir.WriteStamped(sh.dirBuf, stamp)
	sh.endPub()
	if err == nil {
		sh.notify.PublishAt(stamp)
	}
	return err
}

// Compact publishes a compaction epoch on every shard: directory logs
// shrink to their live sets, and every reader-side corrupt latch in the
// map becomes repairable (readers rebase on their next touch). Writers
// rarely need to call it — appends auto-compact at the ceiling — but it
// is the explicit recovery step after a crash mid-operation and the
// administrative "truncate the logs now" knob.
//
// Compact is a writer-side operation on all shards at once: call it from
// the goroutine that owns the whole map's writes, or use CompactShard
// from partitioned writers.
func (m *Map) Compact() error {
	for si := range m.shards {
		if err := m.CompactShard(si); err != nil {
			return err
		}
	}
	return nil
}

// CompactShard publishes a compaction epoch on one shard, under the same
// single-writer-per-shard contract as Set and Delete.
func (m *Map) CompactShard(si int) error { return m.shards[si].compact() }

// WriteStats aggregates the map's publish-side counters. Collect only at
// quiescence (no Set or Delete in flight), like every stats accessor in
// this module.
func (m *Map) WriteStats() WriteStats {
	var ws WriteStats
	for _, sh := range m.shards {
		ws.Directory.Add(sh.dir.WriteStats())
		ws.Keys += sh.creates
		ws.Deletes += sh.deletes
		ws.Compactions += sh.compactions
		ws.DirBytes += uint64(len(sh.dirBuf))
		// Aggregate live incarnations only: a tombstoned slot keeps its
		// retired register parked until reuse, but its counters leave
		// the aggregate at the Delete (deterministically, as documented).
		for slot, reg := range sh.wregs {
			if sh.wkeys[slot] != "" {
				ws.Value.Add(reg.WriteStats())
			}
		}
	}
	return ws
}

// Stats returns the map's live telemetry as a Stats-tree node: map
// totals, one child per shard, and the aggregated watcher-backpressure
// ledger. Safe from any goroutine at any time, concurrently with Sets,
// Deletes and Compacts — unlike WriteStats it never touches the plain
// writer-side fields, only the shard stat cells flushed inside
// publication windows plus independently atomic gauges.
//
// Per-shard counters are mutually consistent: each shard node comes
// from one validated collect (statsSnapshot), so within it cgen ==
// compactions even while a Compact is publishing. Cross-shard totals
// sum per-shard snapshots taken at slightly different instants — the
// same per-shard consistency contract as Snapshot's value collect.
func (m *Map) Stats() obs.Snapshot {
	sn := obs.Snapshot{Name: "map"}
	var keys, pubs, wakes, epoch, entries, dirBytes, creates, deletes, compactions uint64
	children := make([]obs.Snapshot, 0, len(m.shards)+1)
	for _, sh := range m.shards {
		node := sh.statsSnapshot()
		get := func(name string) uint64 { v, _ := node.Get(name); return v }
		keys += get("live_keys")
		pubs += get("publications")
		wakes += get("wakes")
		epoch += get("dir_epoch")
		entries += get("dir_entries")
		dirBytes += get("dir_bytes")
		creates += get("creates")
		deletes += get("deletes")
		compactions += get("compactions")
		children = append(children, node)
	}
	sn.Put("shards", uint64(len(m.shards)))
	sn.Put("live_keys", keys)
	sn.Put("live_readers", uint64(m.LiveReaders()))
	sn.Put("max_readers", uint64(m.maxReaders))
	sn.Put("publications", pubs)
	sn.Put("wakes", wakes)
	sn.Put("dir_epoch", epoch)
	sn.Put("dir_entries", entries)
	sn.Put("dir_bytes", dirBytes)
	sn.Put("creates", creates)
	sn.Put("deletes", deletes)
	sn.Put("compactions", compactions)
	sn.Children = append(sn.Children, m.watchTrack.Stats())
	if t := m.watchGate.Fanned(); t != nil {
		// The map-level gate's wakeup tree (attached by the first
		// WatchAll session): topology, live relays, cascade counters.
		sn.Children = append(sn.Children, t.Stats())
	}
	if m.tracer != nil {
		sn.Children = append(sn.Children, m.tracer.Stats())
	}
	sn.Children = append(sn.Children, children...)
	return sn
}

// WatchTracker returns the map's watcher-population tracker. Watch and
// WatchAll attach their ledgers automatically; compositions embedding
// the map can attach their own.
func (m *Map) WatchTracker() *notify.Tracker { return &m.watchTrack }

// Tracer returns the map's flight recorder, nil when Config.Trace is
// off. Walk it for span dumps and per-stage latency breakdowns (all
// walker-side: the recording domains stay wait-free).
func (m *Map) Tracer() *trace.Tracer { return m.tracer }

// traceTree attaches a freshly named recorder ring to a wakeup tree's
// root relay, once per tree: a tree's root relay is a single-writer
// domain, so each traced tree needs its own ring. Attach-once is
// serialized under m.mu (watch-session wiring, never per-event); an
// untraced map is a no-op. Rings accumulate per watched key
// incarnation — bounded by the keys actually watched on a traced map.
func (m *Map) traceTree(t *notify.Tree, name string) {
	if m.tracer == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !t.Traced() {
		t.Trace(m.tracer.Ring(name))
	}
}

// FanRelays sums the running relay goroutines across every wakeup tree
// attached anywhere in the map — value registers, shard directories,
// the map-level gate. Quiescent collection (like ReadStats): call with
// no concurrent shard writer, since it walks the writer-side slot
// arrays unlocked. Leak tests use it to pin that the sum drains to
// zero once every watch session has ended.
func (m *Map) FanRelays() int64 {
	var n int64
	for _, sh := range m.shards {
		if t := sh.dir.Notifier().Gate().Fanned(); t != nil {
			n += t.Relays()
		}
		for _, reg := range sh.wregs {
			if reg == nil {
				continue
			}
			if t := reg.Notifier().Gate().Fanned(); t != nil {
				n += t.Relays()
			}
		}
	}
	if t := m.watchGate.Fanned(); t != nil {
		n += t.Relays()
	}
	return n
}

// statsSnapshot is one shard's validated live collect: load the
// publish window counters, require quiescence (started == done), read
// the stat cells, and accept only if no publication began meanwhile —
// the seqlock discipline Snapshot already uses for values, applied to
// counters. Because the writer flushes the cells exclusively inside
// windows, an accepted read is a point-in-time copy of one flush.
func (sh *shard) statsSnapshot() obs.Snapshot {
	for {
		s1 := sh.pubStarted.Load()
		if s1 != sh.pubDone.Load() {
			runtime.Gosched() // publication in flight: wait it out
			continue
		}
		node := obs.Snapshot{Name: fmt.Sprintf("shard%d", sh.si)}
		node.Put("dir_epoch", sh.stats.epoch.Load())
		node.Put("cgen", sh.stats.cgen.Load())
		node.Put("dir_entries", sh.stats.entries.Load())
		node.Put("dir_bytes", sh.stats.dirBytes.Load())
		node.Put("creates", sh.stats.creates.Load())
		node.Put("deletes", sh.stats.deletes.Load())
		node.Put("compactions", sh.stats.compactions.Load())
		// Independently atomic gauges: consistent with themselves, not
		// window-validated (live_keys moves just outside the window).
		node.Put("live_keys", uint64(sh.liveKeys.Load()))
		node.Put("publications", sh.notify.Epoch())
		node.Put("wakes", sh.notify.Wakes())
		if sh.pubStarted.Load() == s1 {
			return node
		}
		// A publication overlapped the cell reads: the node may mix two
		// flushes — discard and retry.
	}
}

// WriteStats counts the work the map's writer side performed.
type WriteStats struct {
	// Value aggregates the per-key value registers' write counters
	// (live incarnations only; registers retired by Delete drop out).
	Value register.WriteStats
	// Directory aggregates the shard directory registers' write
	// counters; Directory.Ops is the number of directory publications.
	Directory register.WriteStats
	// Keys is the number of keys created, including re-creations of
	// deleted keys.
	Keys uint64
	// Deletes is the number of keys deleted (tombstones published, plus
	// deletions folded directly into a compaction at the ceiling).
	Deletes uint64
	// Compactions is the number of compaction epochs published
	// (automatic and explicit).
	Compactions uint64
	// DirBytes is the current total directory log size across shards —
	// the bounded-memory observable: under churn it saws between the
	// live-set size and the ceiling instead of growing without bound.
	DirBytes uint64
}

// ReadStats counts the work a Reader handle performed.
type ReadStats struct {
	// ReadStats aggregates over the handle's component registers: Ops
	// counts Gets (hits and misses), FastPath counts Gets served with
	// zero RMW instructions (unchanged directory and unchanged or absent
	// key), RMW sums the RMW instructions the directory and per-key
	// handles executed.
	register.ReadStats
	// Misses counts Gets of absent keys.
	Misses uint64
	// DirRefreshes counts directory re-decodes (a changed directory
	// observed); the incremental decode parses only the tail entries.
	DirRefreshes uint64
	// Snapshots counts completed Snapshot calls; SnapshotRetries counts
	// shard re-collects forced by concurrently observed publications
	// (zero at steady state).
	Snapshots       uint64
	SnapshotRetries uint64
	// Repairs counts corrupt latches this handle cleared by rebasing
	// onto a later publication (see ErrShardCorrupt).
	Repairs uint64
}

// readerShard is a Reader's per-shard cache: the directory reader handle
// plus the decoded (epoch, key→slot table, per-key handle) state.
type readerShard struct {
	dirRd *arc.Reader
	// table maps live keys to slots; keys, gens, live mirror the decoded
	// log per slot (key bound to the slot, its generation — the count of
	// add entries that targeted it — and whether the binding is live).
	// regs is the slot snapshot the decode verified; handles are the
	// lazily created per-key reader handles, nil until first Get.
	table   map[string]int
	keys    []string
	gens    []uint32
	live    []bool
	regs    []*arc.Register
	handles []*arc.Reader
	// retired holds handles whose slot re-registered at a different
	// generation (a recycle this handle observed) — the old incarnation
	// is gone for good. They are closed at Reader.Close, not eagerly:
	// the owner may still hold views obtained through them, and the
	// registers they pin are never written again. A handle displaced by
	// a tombstone *alone* stays parked at its (dead) slot instead: it
	// still pins exactly incarnation gens[slot], so if a compaction
	// rebase re-registers the slot at that same generation the handle is
	// picked back up with zero RMW — and the slot's next true recycle
	// displaces it for real.
	retired []*arc.Reader
	// displaced stages handles pulled off their slots mid-decode: the
	// decode may yet fail (and a later rebase may prove the displacement
	// was poisoned), so the handle is not retired until a decode commits.
	// On commit, a staged handle whose slot still carries its generation
	// (with no replacement handle) is reinstated; the rest move to
	// retired. The staging is what keeps repair from leaking handle
	// capacity: each value register has exactly MaxReaders handles, so a
	// reader must never re-acquire a handle for an incarnation it still
	// holds one for.
	displaced []displacedHandle
	// epoch is the decoded publication epoch — a monotonicity guard: a
	// later publication carries a strictly larger epoch, so a decode
	// observing a smaller one (without a rebase) means the protocol
	// broke. cgen is the decoded compaction generation: a publication
	// with a different cgen makes the reader rebase — drop every binding
	// and the incremental frontier, then decode the fresh log from its
	// start. decoded/tailOff track the incremental decode frontier
	// (entries parsed, byte offset of the next one — valid across
	// publications because the log is prefix-stable within a cgen).
	epoch   uint64
	cgen    uint32
	decoded int
	tailOff int
	// corrupt latches a failed decode: the directory handle already
	// holds the broken publication (so freshness probes would pass), and
	// the decode may have half-applied the tail — serving that state
	// silently would be worse than failing, so operations on the shard
	// return the original error until the latch heals: when the
	// directory publishes again, the reader retries with a full rebase
	// decode (all poisoned incremental state discarded), and on success
	// the latch clears (ReadStats.Repairs counts these).
	corrupt error
}

// displacedHandle is one staged handle displacement: h was this reader's
// handle for incarnation gen of slot when a decode replaced the slot's
// generation. See readerShard.displaced.
type displacedHandle struct {
	slot int
	gen  uint32
	h    *arc.Reader
}

// Reader is a per-goroutine read endpoint over the whole map. One handle
// per goroutine; at most MaxReaders live at once.
type Reader struct {
	m      *Map
	shards []readerShard
	closed bool

	// lane is the handle's borrowed flight-recorder ring (nil on
	// untraced maps or when the lane pool is exhausted); laneFree
	// returns it at Close. watchWS points at the ledger of the watch
	// iteration currently running on this handle, so downstream
	// single-writer stages (the HTTP layer's SSE flush) can read
	// LastWake from the owning goroutine.
	lane     *trace.Ring
	laneFree func()
	watchWS  *notify.WatchStats

	ops         uint64
	fastPath    uint64
	misses      uint64
	refreshes   uint64
	snapshots   uint64
	snapRetries uint64
	repairs     uint64
}

// NewReader allocates a reader handle (one directory handle per shard;
// per-key handles are created lazily on first Get of each key).
func (m *Map) NewReader() (*Reader, error) {
	m.mu.Lock()
	if m.liveReaders >= m.maxReaders {
		m.mu.Unlock()
		return nil, register.ErrTooManyReaders
	}
	m.liveReaders++
	m.mu.Unlock()
	r := &Reader{m: m, shards: make([]readerShard, len(m.shards))}
	r.lane, r.laneFree = m.tracer.AcquireLane()
	for i, sh := range m.shards {
		h, err := sh.dir.NewReaderHandle()
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("regmap: shard %d directory handle: %w", i, err)
		}
		r.shards[i].dirRd = h
		r.shards[i].table = make(map[string]int)
	}
	return r, nil
}

// rebase discards the incremental-decode cursor for a new compaction
// epoch (or a repair): every binding is dropped — the fresh log's
// entries re-register the live ones — and the frontier resets to the
// log's start. Handles stay parked at their slots: a binding that
// re-registers with an unchanged generation picks its handle back up
// for free, one that re-registers with a new generation displaces it
// through the normal staging path.
func (rs *readerShard) rebase(cgen uint32) {
	for slot := range rs.live {
		rs.live[slot] = false
	}
	clear(rs.table)
	rs.cgen = cgen
	rs.decoded = 0
	rs.tailOff = dirHeaderSize
}

// refresh re-views and decodes shard si's directory log. Called when the
// directory register reports a change, on first touch, and to retry a
// corrupt latch after a new publication. The decode is incremental
// within a compaction epoch (only the tail entries parse); a publication
// carrying a different cgen — and any repair attempt — triggers a
// rebase, after which the fresh log decodes from its start.
//
// The apply loop may run more than once: if the slot snapshot is
// observed ahead of the viewed directory (a slot reuse raced in), the
// directory is re-viewed — sound because the snapshot can only run
// ahead of fully published recycles, so the re-view must decode at
// least the recycle's already-published entries. A re-view that decodes
// nothing new while the mismatch persists therefore proves the mismatch
// is not a race, and the shard latches corrupt instead of spinning on a
// log that can never verify.
func (r *Reader) refresh(si int) error {
	rs := &r.shards[si]
	repairing := false
	if rs.corrupt != nil {
		// The latch heals only through a later publication; the handle
		// still holds the poisoned one, so freshness means there is
		// nothing new to rebase onto yet.
		if rs.dirRd.Fresh() {
			return rs.corrupt
		}
		repairing = true
	}
	// fail latches a protocol/decode error (see readerShard.corrupt).
	fail := func(err error) error {
		rs.corrupt = err
		return err
	}
	rebased := false
	for {
		v, err := rs.dirRd.View()
		if err != nil {
			return err
		}
		if len(v) < dirHeaderSize {
			return fail(fmt.Errorf("%w: shard %d shorter than header (%d bytes)", ErrShardCorrupt, si, len(v)))
		}
		epoch := binary.LittleEndian.Uint64(v[0:8])
		count := int(binary.LittleEndian.Uint32(v[8:12]))
		cgen := binary.LittleEndian.Uint32(v[12:16])
		progressed := false
		if cgen != rs.cgen || (repairing && !rebased) {
			// A compaction epoch — or a repair, which re-decodes from
			// scratch unconditionally because the incremental state may
			// be poisoned. The rebase also re-baselines epoch and count:
			// monotonicity is a per-epoch invariant (DESIGN.md §9), and
			// insisting on it across a repair would leave a shard whose
			// reader once accepted garbage unrecoverable.
			rs.rebase(cgen)
			rebased, progressed = true, true
		} else if !rebased && (epoch < rs.epoch || count < rs.decoded) {
			// Within one compaction epoch ARC never serves an older
			// publication to the same handle, so a regressed epoch or
			// entry count means either the directory protocol broke or —
			// indistinguishably from this side — the reader once accepted
			// a plausible-garbage publication that poisoned its
			// baselines. Latching here could be permanent (the broken
			// baseline would condemn every future publication), so
			// re-decode the current publication from scratch instead: a
			// genuine log re-verifies fully against the slot array and
			// the reader heals; garbage fails the decode and latches
			// through the normal corrupt path. Counted as a repair.
			rs.rebase(cgen)
			rebased, progressed, repairing = true, true, true
		}
		// Load the slot snapshot after viewing the directory: the writer
		// stored it before publishing, so it covers every published add —
		// which also bounds every genuine entry's slot index.
		el := r.m.shards[si].entries.Load()
		off := rs.tailOff
		if rs.decoded == 0 {
			off = dirHeaderSize
		}
		if count > rs.decoded {
			progressed = true
		}
		for i := rs.decoded; i < count; i++ {
			tag, n := binary.Uvarint(v[off:])
			if n <= 0 || tag>>1 > math.MaxInt32 {
				return fail(fmt.Errorf("%w: shard %d entry %d corrupt at offset %d", ErrShardCorrupt, si, i, off))
			}
			off += n
			slot := int(tag >> 1)
			if slot >= len(el.regs) {
				// The slot array is stored before any add naming the slot
				// publishes, and el was loaded after viewing v — a genuine
				// log can never name a slot el lacks.
				return fail(fmt.Errorf("%w: shard %d entry %d names slot %d beyond the slot array (%d)",
					ErrShardCorrupt, si, i, slot, len(el.regs)))
			}
			if tag&tombstoneFlag != 0 {
				if slot >= len(rs.keys) || !rs.live[slot] {
					return fail(fmt.Errorf("%w: shard %d entry %d tombstones dead slot %d", ErrShardCorrupt, si, i, slot))
				}
				delete(rs.table, rs.keys[slot])
				rs.live[slot] = false
				// The handle (if any) stays parked at the dead slot: it
				// still pins exactly incarnation gens[slot], so a rebase
				// that re-registers the slot at that generation reuses it,
				// and a true recycle displaces it below.
				continue
			}
			gen64, n := binary.Uvarint(v[off:])
			if n <= 0 || gen64 == 0 || gen64 > math.MaxUint32 {
				return fail(fmt.Errorf("%w: shard %d entry %d has invalid generation", ErrShardCorrupt, si, i))
			}
			off += n
			gen := uint32(gen64)
			klen, n := binary.Uvarint(v[off:])
			// Compare in uint64 space: a klen that would overflow int must
			// not slip past the bound check.
			if n <= 0 || klen > uint64(len(v)-(off+n)) {
				return fail(fmt.Errorf("%w: shard %d entry %d corrupt at offset %d", ErrShardCorrupt, si, i, off))
			}
			off += n
			key := string(v[off : off+int(klen)])
			off += int(klen)
			// Extend the per-slot arrays up to the named slot: a compacted
			// log registers only live slots, so its slot indices may be
			// sparse (bounded by the el check above).
			for slot >= len(rs.keys) {
				rs.keys = append(rs.keys, "")
				rs.gens = append(rs.gens, 0)
				rs.live = append(rs.live, false)
				rs.handles = append(rs.handles, nil)
			}
			if rs.live[slot] {
				return fail(fmt.Errorf("%w: shard %d entry %d adds occupied slot %d", ErrShardCorrupt, si, i, slot))
			}
			if h := rs.handles[slot]; h != nil && rs.gens[slot] != gen {
				// The slot re-registers as a different incarnation while
				// this reader still holds the old one's handle. Stage the
				// displacement instead of retiring: if this decode fails
				// and a repair later proves the slot still carries the
				// staged generation, the handle is reinstated — never
				// re-acquired (registers hold exactly MaxReaders handles).
				rs.displaced = append(rs.displaced, displacedHandle{slot: slot, gen: rs.gens[slot], h: h})
				rs.handles[slot] = nil
			}
			rs.keys[slot] = key
			rs.gens[slot] = gen
			rs.live[slot] = true
			if _, dup := rs.table[key]; dup {
				return fail(fmt.Errorf("%w: shard %d entry %d re-adds live key %q", ErrShardCorrupt, si, i, key))
			}
			rs.table[key] = slot
		}
		rs.decoded = count
		rs.tailOff = off
		rs.epoch = epoch
		// Verify the snapshot matches the decoded state generation by
		// generation. The snapshot is stored before its add publishes, so
		// it can be ahead of the view (never behind it); ahead means a
		// reuse raced in and el.regs would hand a live binding the wrong
		// incarnation's register — re-view, which must observe the reuse's
		// already-published entries (see the progress rule above).
		ok := true
		for slot, g := range rs.gens {
			if !rs.live[slot] {
				continue
			}
			if slot >= len(el.gens) || el.gens[slot] < g {
				return fail(fmt.Errorf("%w: shard %d slot snapshot behind directory (slot %d gen %d)", ErrShardCorrupt, si, slot, g))
			}
			if el.gens[slot] != g {
				ok = false
				break
			}
		}
		if !ok {
			if !progressed {
				return fail(fmt.Errorf("%w: shard %d slot array ahead of a stationary directory", ErrShardCorrupt, si))
			}
			runtime.Gosched()
			continue
		}
		rs.regs = el.regs
		// Commit the staged displacements: a handle whose slot still
		// carries its generation (and grew no replacement) was displaced
		// by a decode that never committed — reinstate it; the rest pin
		// incarnations that are truly gone.
		for _, d := range rs.displaced {
			if rs.gens[d.slot] == d.gen && rs.handles[d.slot] == nil {
				rs.handles[d.slot] = d.h
			} else {
				rs.retired = append(rs.retired, d.h)
			}
		}
		rs.displaced = rs.displaced[:0]
		if repairing {
			rs.corrupt = nil
			r.repairs++
		}
		r.refreshes++
		return nil
	}
}

// Get returns a zero-copy view of key's freshest value, or ErrKeyNotFound.
// The view is valid until this handle's next Get/GetCopy/Snapshot of the
// same key or Close; Gets of other keys do not invalidate it, and neither
// does the key's deletion (the retired register is never written again).
// When neither the shard directory nor the key changed since the handle's
// last Get of it, the cost is two atomic loads — zero RMW instructions,
// zero decoding.
func (r *Reader) Get(key string) ([]byte, error) {
	v, _, err := r.GetFresh(key)
	return v, err
}

// GetFresh is Get plus a change report, the map-level counterpart of
// register.FreshViewer: changed is false exactly when the returned view
// is the same publication of the same key incarnation the handle's
// previous Get/GetFresh of key returned — so pollers skip decoding on
// directory churn that did not touch their key. The first read of a key
// (and of every re-created incarnation) reports changed == true.
func (r *Reader) GetFresh(key string) (v []byte, changed bool, err error) {
	if r.closed {
		return nil, false, register.ErrReaderClosed
	}
	si := r.m.ShardOf(key)
	rs := &r.shards[si]
	r.ops++
	// One extra nil check on the hot path, no RMW: a corrupt shard
	// routes through refresh, which returns the latch — or repairs it,
	// if the directory has published something new to rebase onto.
	dirFresh := rs.corrupt == nil && rs.dirRd.Fresh()
	if !dirFresh {
		if err := r.refresh(si); err != nil {
			return nil, false, err
		}
	}
	i, ok := rs.table[key]
	if !ok {
		r.misses++
		if dirFresh {
			r.fastPath++ // one load, no RMW: the directory probe
		}
		return nil, false, ErrKeyNotFound
	}
	h := rs.handles[i]
	if h == nil {
		// First read of this incarnation through this handle: a change
		// by definition (tombstone processing nils replaced handles).
		h, err = rs.regs[i].NewReaderHandle()
		if err != nil {
			return nil, false, fmt.Errorf("regmap: key %q handle: %w", key, err)
		}
		rs.handles[i] = h
		changed = true
	}
	v, vchanged, err := h.ViewFresh()
	if err != nil {
		return nil, false, err
	}
	if dirFresh && !vchanged {
		r.fastPath++ // two loads, no RMW: the fully gated hot path
	}
	return v, changed || vchanged, nil
}

// GetCopy copies key's freshest value into dst and returns its length
// (register.ErrBufferTooSmall with the required length if dst cannot
// hold it).
func (r *Reader) GetCopy(key string, dst []byte) (int, error) {
	v, err := r.Get(key)
	if err != nil {
		return 0, err
	}
	if len(dst) < len(v) {
		return len(v), register.ErrBufferTooSmall
	}
	return copy(dst, v), nil
}

// Fresh reports whether the handle's last Get of key would return the
// same publication again — the map-level freshness probe: true only when
// the shard directory is unchanged, the key is known, and its register
// still holds the handle's slot. A key this handle never Get was not
// read, so it reports false (matching register.FreshnessProber).
func (r *Reader) Fresh(key string) bool {
	if r.closed {
		return false
	}
	rs := &r.shards[r.m.ShardOf(key)]
	if rs.corrupt != nil || !rs.dirRd.Fresh() {
		return false
	}
	i, ok := rs.table[key]
	if !ok {
		return false
	}
	h := rs.handles[i]
	return h != nil && h.Fresh()
}

// Keys returns the map's live keys (shard by shard, slot order within a
// shard; no cross-shard snapshot is implied — each shard's listing is
// individually atomic; use Snapshot for a map-wide cut). The slice is
// the caller's.
func (r *Reader) Keys() ([]string, error) {
	if r.closed {
		return nil, register.ErrReaderClosed
	}
	n := 0
	for si := range r.shards {
		rs := &r.shards[si]
		if rs.corrupt != nil || !rs.dirRd.Fresh() {
			if err := r.refresh(si); err != nil {
				return nil, err
			}
		}
		n += len(rs.table)
	}
	out := make([]string, 0, n)
	for si := range r.shards {
		rs := &r.shards[si]
		for slot, key := range rs.keys {
			if rs.live[slot] {
				out = append(out, key)
			}
		}
	}
	return out, nil
}

// Len reports the number of live keys visible to this handle (refreshing
// each shard's directory view first).
func (r *Reader) Len() (int, error) {
	if r.closed {
		return 0, register.ErrReaderClosed
	}
	n := 0
	for si := range r.shards {
		rs := &r.shards[si]
		if rs.corrupt != nil || !rs.dirRd.Fresh() {
			if err := r.refresh(si); err != nil {
				return 0, err
			}
		}
		n += len(rs.table)
	}
	return n, nil
}

// Snapshot returns a point-in-time copy of every live key and its value
// — atomic across all keys and shards: there is an instant during the
// call at which the map's state was exactly the returned one (the
// linearization argument is in DESIGN.md §7). Values are copies, owned
// by the caller; the map they live in is freshly allocated.
//
// Snapshot reads through the handle's cached per-key registers, so it
// counts as a Get of every live key: views previously returned by Get
// may be invalidated. It executes no RMW instructions; at steady state
// (no concurrent publications) every per-key read is ARC's one-load
// fast path and the collect completes in one pass. A shard is
// re-collected only when its publish counter is observed to move, so
// retries are bounded by the publications that actually race the call.
func (r *Reader) Snapshot() (map[string][]byte, error) {
	if r.closed {
		return nil, register.ErrReaderClosed
	}
	nsh := len(r.m.shards)
	parts := make([]map[string][]byte, nsh)
	epochs := make([]uint64, nsh)
	pending := make([]int, nsh)
	for i := range pending {
		pending[i] = i
	}
	total := 0
	for len(pending) > 0 {
		for _, si := range pending {
			part, ep, err := r.collectShard(si)
			if err != nil {
				return nil, err
			}
			parts[si], epochs[si] = part, ep
		}
		// Global verification pass: every shard whose publish counter
		// still matches its collect was unchanged from its collect
		// through this pass — so a pass with no movement certifies all
		// shards simultaneously.
		pending = pending[:0]
		for si, sh := range r.m.shards {
			if sh.pubStarted.Load() != epochs[si] {
				pending = append(pending, si)
				r.snapRetries++
			}
		}
	}
	for _, p := range parts {
		total += len(p)
	}
	out := make(map[string][]byte, total)
	for _, p := range parts {
		for k, v := range p {
			out[k] = v
		}
	}
	r.snapshots++
	return out, nil
}

// collectShard performs one validated collect of shard si: a counter
// window (started == done before, started unchanged after) brackets a
// full read of the shard's live keys, certifying the part as the shard's
// exact state at the window's opening. Retries consume observed
// publications; like a seqlock reader, the collect waits out a publish
// caught in flight on this shard (the read path proper never does).
func (r *Reader) collectShard(si int) (map[string][]byte, uint64, error) {
	sh := r.m.shards[si]
	rs := &r.shards[si]
	for {
		started := sh.pubStarted.Load()
		if started != sh.pubDone.Load() {
			r.snapRetries++
			runtime.Gosched()
			continue
		}
		if rs.corrupt != nil || !rs.dirRd.Fresh() {
			if err := r.refresh(si); err != nil {
				return nil, 0, err
			}
		}
		part := make(map[string][]byte, len(rs.table))
		for key, slot := range rs.table {
			h := rs.handles[slot]
			if h == nil {
				var err error
				h, err = rs.regs[slot].NewReaderHandle()
				if err != nil {
					return nil, 0, fmt.Errorf("regmap: key %q handle: %w", key, err)
				}
				rs.handles[slot] = h
			}
			v, _, err := h.ViewFresh()
			if err != nil {
				return nil, 0, err
			}
			part[key] = append([]byte(nil), v...)
		}
		if sh.pubStarted.Load() == started {
			return part, started, nil
		}
		r.snapRetries++
	}
}

// Stats reports the handle's read counters. Collect after the owning
// goroutine has quiesced.
func (r *Reader) Stats() ReadStats {
	st := ReadStats{
		ReadStats:       register.ReadStats{Ops: r.ops, FastPath: r.fastPath},
		Misses:          r.misses,
		DirRefreshes:    r.refreshes,
		Snapshots:       r.snapshots,
		SnapshotRetries: r.snapRetries,
		Repairs:         r.repairs,
	}
	for si := range r.shards {
		rs := &r.shards[si]
		if rs.dirRd != nil {
			st.RMW += rs.dirRd.ReadStats().RMW
		}
		for _, h := range rs.handles {
			if h != nil {
				st.RMW += h.ReadStats().RMW
			}
		}
		for _, h := range rs.retired {
			st.RMW += h.ReadStats().RMW
		}
		for _, d := range rs.displaced {
			st.RMW += d.h.ReadStats().RMW
		}
	}
	return st
}

// Close releases the handle: every per-key handle (live and retired) and
// directory handle is returned to its register, and the map-level
// capacity is freed.
func (r *Reader) Close() error {
	if r.closed {
		return register.ErrReaderClosed
	}
	r.closed = true
	for si := range r.shards {
		rs := &r.shards[si]
		if rs.dirRd != nil {
			rs.dirRd.Close()
		}
		for _, h := range rs.handles {
			if h != nil {
				h.Close()
			}
		}
		for _, h := range rs.retired {
			h.Close()
		}
		for _, d := range rs.displaced {
			d.h.Close()
		}
	}
	if r.laneFree != nil {
		r.laneFree()
	}
	r.m.mu.Lock()
	r.m.liveReaders--
	r.m.mu.Unlock()
	return nil
}

// TraceRing returns the handle's flight-recorder lane, nil when the map
// is untraced or the lane pool was exhausted at NewReader. Owner
// goroutine only — downstream single-writer stages (the HTTP layer's
// SSE flush) record into it.
func (r *Reader) TraceRing() *trace.Ring { return r.lane }

// LastWake returns the origin publish stamp of the most recent waking
// park of the watch iteration running on this handle, 0 when none is
// running or it has not been woken by a stamped wake. Owner goroutine
// only — it joins downstream stages to the in-flight span.
func (r *Reader) LastWake() int64 {
	if r.watchWS == nil {
		return 0
	}
	return r.watchWS.LastWake()
}

// LiveReaders reports the number of open Reader handles.
func (m *Map) LiveReaders() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.liveReaders
}
