package regmap

// FuzzDirectoryDecode drives the directory log — including tombstone
// entries — from arbitrary operation scripts and holds the reader's
// incremental decode to a model map; FuzzDirectoryDecodeCorrupt feeds
// the decoder syntactically broken logs and requires a clean error
// (never a panic, never silent acceptance).

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
)

// FuzzDirectoryDecode interprets data as a script of Set/Delete
// operations over a small key space, applying each to a Map and to a
// model map, and after every step verifies an incrementally refreshing
// reader (created up front) and a freshly decoding reader (created at
// the end) agree with the model on membership, values, Len and Snapshot.
func FuzzDirectoryDecode(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x80, 0x01, 0x91})       // set, set, delete, set, delete
	f.Add([]byte{0x00, 0x80})                         // create then delete
	f.Add([]byte{0x00, 0x80, 0x00})                   // create, delete, recreate
	f.Add(bytes.Repeat([]byte{0x07, 0x87}, 8))        // flap one key
	f.Add([]byte{0x00, 0x10, 0x20, 0x90, 0x10, 0x30}) // interleaved adds/deletes
	f.Fuzz(func(t *testing.T, script []byte) {
		m, err := New(Config{Shards: 2, MaxReaders: 2, MaxValueSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		rd, err := m.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		model := map[string]string{}
		for step, op := range script {
			key := fmt.Sprintf("key-%d", op&0x0f)
			if op&0x80 != 0 {
				err := m.Delete(key)
				_, existed := model[key]
				if existed != (err == nil) {
					t.Fatalf("step %d: Delete(%q) = %v, model existed=%v", step, key, err, existed)
				}
				if !existed && err != ErrKeyNotFound {
					t.Fatalf("step %d: Delete(%q) = %v, want ErrKeyNotFound", step, key, err)
				}
				delete(model, key)
			} else {
				val := fmt.Sprintf("v%d-%d", op, step)
				if err := m.Set(key, []byte(val)); err != nil {
					t.Fatalf("step %d: Set(%q): %v", step, key, err)
				}
				model[key] = val
			}
			// The incremental reader tracks the model exactly.
			for i := 0; i < 16; i++ {
				k := fmt.Sprintf("key-%d", i)
				got, err := rd.Get(k)
				want, ok := model[k]
				if ok != (err == nil) || (ok && string(got) != want) {
					t.Fatalf("step %d: Get(%q) = %q, %v; model %q, %v", step, k, got, err, want, ok)
				}
				if !ok && err != ErrKeyNotFound {
					t.Fatalf("step %d: Get(%q) miss = %v", step, k, err)
				}
			}
			if n, err := rd.Len(); err != nil || n != len(model) {
				t.Fatalf("step %d: Len = %d, %v; model %d", step, n, err, len(model))
			}
		}
		// A from-scratch reader decodes the whole log to the same state,
		// and Snapshot matches the model.
		rd2, err := m.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rd2.Close()
		snap, err := rd2.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap) != len(model) {
			t.Fatalf("snapshot %d keys, model %d", len(snap), len(model))
		}
		for k, want := range model {
			if got, ok := snap[k]; !ok || string(got) != want {
				t.Fatalf("snapshot[%q] = %q (%v), want %q", k, got, ok, want)
			}
		}
		if m.Len() != len(model) {
			t.Fatalf("Map.Len = %d, model %d", m.Len(), len(model))
		}
	})
}

// FuzzDirectoryDecodeCorrupt publishes arbitrary bytes as a shard
// directory and requires the reader's decode to either succeed (when the
// bytes happen to form a valid log extension) or fail with an error —
// never panic and never mis-parse silently into a torn lookup.
func FuzzDirectoryDecodeCorrupt(f *testing.F) {
	valid := func(cgen uint32, entries ...[]byte) []byte {
		buf := make([]byte, dirHeaderSize)
		n := 0
		for _, e := range entries {
			buf = append(buf, e...)
			n++
		}
		binary.LittleEndian.PutUint64(buf[0:8], uint64(n))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(n))
		binary.LittleEndian.PutUint32(buf[12:16], cgen)
		return buf
	}
	addEntry := func(slot int, gen uint32, key string) []byte {
		return appendAdd(nil, slot, gen, key)
	}
	tombEntry := func(slot int) []byte {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], uint64(slot)<<1|tombstoneFlag)
		return append([]byte(nil), tmp[:n]...)
	}
	f.Add(valid(0, addEntry(0, 1, "a")))
	f.Add(valid(0, addEntry(0, 1, "a"), tombEntry(0)))
	f.Add(valid(0, tombEntry(3)))                             // tombstone of a never-added slot
	f.Add(valid(0, addEntry(7, 1, "gap")))                    // add skipping slots
	f.Add(valid(0, addEntry(0, 1, "a"), addEntry(0, 2, "b"))) // add onto an occupied slot
	f.Add(valid(1, addEntry(0, 1, "a")))                      // compaction epoch naming an unknown slot
	f.Add(valid(0, addEntry(0, 0, "a")))                      // generation zero is invalid
	f.Add([]byte{1, 2, 3})                                    // shorter than the header
	f.Add(append(valid(0, addEntry(0, 1, "a")), 0xff))        // trailing garbage (beyond count: ignored)
	truncated := valid(0, addEntry(0, 1, "a-long-key"))
	f.Add(truncated[:len(truncated)-4]) // keylen overruns the buffer

	f.Fuzz(func(t *testing.T, dir []byte) {
		m, err := New(Config{Shards: 1, MaxReaders: 1, MaxValueSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		rd, err := m.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		// Publish the fuzzed bytes directly through the shard's directory
		// register, bypassing the writer-side encoder.
		sh := m.shards[0]
		if err := sh.dir.Write(dir); err != nil {
			t.Skip() // oversized for the register; not a decode concern
		}
		// The decode must either error cleanly or leave the reader in a
		// self-consistent state (Get of any probed key terminates).
		_, err = rd.Get("probe")
		if err != nil && err != ErrKeyNotFound {
			// Rejected: the corruption is sticky until the next
			// publication — repeated operations keep returning errors
			// rather than serving a half-applied directory.
			if _, err2 := rd.Len(); err2 == nil {
				t.Fatalf("decode rejected Get (%v) but accepted Len", err)
			}
			if rd.Fresh("probe") {
				t.Fatalf("corrupt shard reports fresh")
			}
			if _, err2 := rd.Snapshot(); err2 == nil {
				t.Fatalf("decode rejected Get (%v) but accepted Snapshot", err)
			}
		} else {
			// Accepted: the bytes formed a plausible log. Lookups must
			// stay terminating and consistent.
			if _, err := rd.Len(); err != nil {
				t.Fatalf("Len after accepted decode: %v", err)
			}
		}
		// Whatever the bytes did — rejected garbage or silently plausible
		// divergence — one compaction epoch repairs it: the writer's
		// tables never saw the fuzzed publication, so Compact republishes
		// the writer's truth (an empty map) and the reader must rebase
		// onto it, whether it was latched, poisoned, or healthy.
		if err := m.Compact(); err != nil {
			t.Fatalf("Compact: %v", err)
		}
		if _, err := rd.Get("probe"); err != ErrKeyNotFound {
			t.Fatalf("Get after repair compaction = %v, want ErrKeyNotFound", err)
		}
		if n, err := rd.Len(); err != nil || n != 0 {
			t.Fatalf("Len after repair compaction = %d, %v; want 0", n, err)
		}
		if snap, err := rd.Snapshot(); err != nil || len(snap) != 0 {
			t.Fatalf("Snapshot after repair compaction = %d keys, %v; want empty", len(snap), err)
		}
	})
}
