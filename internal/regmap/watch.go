package regmap

// The map's watch layer: parked, context-aware change subscriptions
// over single keys (Watch) and over the whole map (WatchAll), built on
// the internal/notify publication sequencers the shard writers drive.
//
// Wakeup routing is two-level, mirroring the map's read path:
//
//   - A single-key watcher parks on the key's value-register gate (its
//     own publications only — sibling keys on the shard do not wake
//     it) AND the shard's directory-register gate (key creation and
//     deletion — the lifecycle events that re-route the key). The
//     change predicate is Reader.Fresh(key), which is exact, so a
//     wakeup either yields a change or re-parks.
//
//   - A whole-map watcher parks on the map-level gate every shard
//     sequencer chains to; its predicate compares the per-shard
//     sequencer epochs snapshotted before the last collect.
//
// Watchers never park on those gates directly: each watch session
// subscribes a leaf of the gate's wakeup tree (notify.Tree via
// Gate.Fan) and parks there, so a publication's broadcast cost is
// spread across the tree's relay goroutines instead of one inline
// close over every parked watcher. Directory and map subscriptions
// live for the session; a value-register subscription lives for one
// key incarnation — Watch re-subscribes when delete/recreate (or
// slot reuse) rebinds the key to a different register, so a stale
// incarnation's tree can never be the only thing waking the watcher
// (the directory leaf covers every lifecycle transition).
//
// Both follow the snapshot-epoch-before-read discipline, giving
// at-least-once delivery of every publication with latest-value
// conflation: a burst of Sets may be observed as one change carrying
// the newest value. Deletion and re-creation are generation-aware by
// construction — a re-created key is a fresh register seeded with its
// first value, so a watcher can never be woken into a stale
// incarnation's bytes (no resurrection wakeups).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"

	"arcreg/internal/arc"
	"arcreg/internal/notify"
	"arcreg/internal/trace"
)

// Wakeup-tree topologies for the watch layer. Per-key and per-shard
// fans stay shallow (one cascade level) — their gates are many and
// mostly cold, so the tree's fixed gate cost matters more than cohort
// width. The single map-level gate is where whole-map watcher
// populations concentrate, so it gets the deep default fan.
const (
	keyFanArity, keyFanDepth = 16, 1
	dirFanArity, dirFanDepth = 8, 1
	mapFanArity, mapFanDepth = notify.DefaultFanArity, notify.DefaultFanDepth
)

// watchTrace wires a watch session's ledger into the handle's trace
// lane for the duration of the iteration, returning the detach. The
// lane then carries the session's StageWake events (via noteWake) and
// the StageConflate decisions recorded below.
func (r *Reader) watchTrace(ws *notify.WatchStats) func() {
	ws.Trace(r.lane)
	r.watchWS = ws
	return func() { r.watchWS = nil }
}

// noteConflate records a delivery's conflation decision into the
// session's trace lane: Arg is the number of publications this delivery
// conflates away (mirroring NoteDelivered's epoch-jump accounting,
// computed before the ledger frame advances), Aux the epoch frame being
// delivered. It runs at decision time — before the value is yielded —
// so a span's stages read in pipeline order: the decision, then the
// frame flush the consumer performs inside the yield. The span is the
// origin stamp of the wake that triggered the decision; first-poll
// deliveries (no wake yet) record unthreaded, which Spans() skips but
// Breakdown counts. The ledger itself still advances only after the
// yield returns (NoteDelivered semantics: delivery completes when
// processing does), so a consumer that breaks mid-yield leaves the
// decision on the trace but not on the ledger.
func (r *Reader) noteConflate(ws *notify.WatchStats, e uint64) {
	if r.lane == nil {
		return
	}
	var drops uint64
	if prev := ws.Observed(); ws.Delivered() > 0 && e > prev+1 {
		drops = e - prev - 1
	}
	r.lane.Record(trace.StageConflate, uint32(drops), ws.LastWake(), e)
}

// observe folds an observe-no-change probe into the ledger and records
// the (negative) conflation decision: Arg 0 drops, Aux 0 — the probe
// found nothing new. Threaded by the triggering wake like deliver.
func (r *Reader) observe(ws *notify.WatchStats, e uint64) {
	ws.NoteObserved(e)
	r.lane.Record(trace.StageConflate, 0, ws.LastWake(), 0)
}

// Watch returns an iterator over key's publications: it yields the
// value current when iteration starts (or ErrKeyNotFound if the key is
// absent), then every change it observes, parking between changes
// instead of polling. Yielded views follow Get's aliasing rules (valid
// until the handle's next operation on the key).
//
// Lifecycle events are part of the stream: a deletion yields
// (nil, ErrKeyNotFound) once and the watch continues — a later
// re-creation yields the new incarnation's value. A corrupt shard is a
// lifecycle event too: the watch yields (nil, ErrShardCorrupt) once per
// episode, parks on the directory gate, and resumes when a later
// publication repairs the shard (see ErrShardCorrupt) — corruption
// degrades a watch, it does not kill it. The iterator ends when the
// consumer breaks, when ctx is done (yielding ctx's error), or on a
// terminal register error.
//
// Watch owns the Reader while it runs (handles are single-goroutine,
// like every reader in this package); run concurrent watches on
// separate Reader handles.
func (r *Reader) Watch(ctx context.Context, key string) iter.Seq2[[]byte, error] {
	return func(yield func([]byte, error) bool) {
		si := r.m.ShardOf(key)
		sh := r.m.shards[si]
		rs := &r.shards[si]
		// The watcher's backpressure ledger, framed by the shard's
		// publication epoch (the finest epoch that covers both the
		// key's value publications and its directory lifecycle). The
		// frame is wider than the subscription, so sibling-key activity
		// delivered in one wakeup shows up as conflation — documented
		// in DESIGN §10. Attach/detach are the iterator's lifecycle
		// edges, never per-event.
		ws := &notify.WatchStats{}
		r.m.watchTrack.Attach(ws)
		defer r.m.watchTrack.Detach(ws)
		// On a traced map, the session records into the handle's lane:
		// StageWake on every waking park (via the ledger), StageConflate
		// on every delivery decision (deliver/observe below).
		detachTrace := r.watchTrace(ws)
		defer detachTrace()
		// The session's leaf subscriptions. The directory leaf lives as
		// long as the iterator; the value leaf follows the key's current
		// register and is re-subscribed when a delete/recreate rebinds
		// the key (valOwner tracks the incarnation).
		dirFan := sh.dir.Notifier().Fan(dirFanArity, dirFanDepth)
		r.m.traceTree(dirFan, fmt.Sprintf("fan-dir%d", si))
		dirSub := dirFan.Subscribe()
		defer dirSub.Close()
		var valSub *notify.Sub
		var valOwner *arc.Register
		defer func() {
			if valSub != nil {
				valSub.Close()
			}
		}()
		first := true
		lastMiss := false
		lastCorrupt := false
		for {
			if err := ctx.Err(); err != nil {
				yield(nil, err)
				return
			}
			// Epoch snapshot strictly before the read: the value (or
			// absence) GetFresh returns is current as of at least this
			// epoch, so a delivery observes the frame at seen.
			seen := sh.notify.Epoch()
			ws.NoteSeen(seen)
			v, changed, err := r.GetFresh(key)
			switch {
			case errors.Is(err, ErrKeyNotFound):
				// Deletion (or initial absence) is an observation too —
				// delivered once per transition, then the watch parks on
				// the directory gate alone: only a directory publication
				// (a re-creation) can make the key exist again.
				if first || !lastMiss {
					r.noteConflate(ws, seen)
					if !yield(nil, ErrKeyNotFound) {
						return
					}
					ws.NoteDelivered(seen)
				} else {
					r.observe(ws, seen)
				}
				first, lastMiss, lastCorrupt = false, true, false
				err := notify.AwaitStats(ctx, func() bool {
					return !rs.dirRd.Fresh()
				}, ws, dirSub.Gate())
				if err != nil {
					yield(nil, err)
					return
				}
			case errors.Is(err, ErrShardCorrupt):
				// Corruption is an episode, not the end of the stream:
				// deliver it once, then park on the directory gate — the
				// next publication is GetFresh's repair opportunity, and
				// the watch resumes with the repaired state. The ledger's
				// observed frame deliberately stays put: publications the
				// episode hides from the watcher are real lag.
				if first || !lastCorrupt {
					if !yield(nil, err) {
						return
					}
				}
				first, lastCorrupt = false, true
				err := notify.AwaitStats(ctx, func() bool {
					return !rs.dirRd.Fresh()
				}, ws, dirSub.Gate())
				if err != nil {
					yield(nil, err)
					return
				}
			case err != nil:
				yield(nil, err) // terminal: closed handle or register failure
				return
			default:
				if first || changed {
					r.noteConflate(ws, seen)
					if !yield(v, nil) {
						return
					}
					ws.NoteDelivered(seen)
				} else {
					r.observe(ws, seen)
				}
				first, lastMiss, lastCorrupt = false, false, false
				// Park on a leaf of the key's own value-gate tree plus
				// the session's directory leaf. The Fresh predicate is
				// loaded after arming (inside Await), closing the publish
				// race; it spans both the value register and the
				// directory, so either gate's publication makes it report
				// stale.
				slot, ok := rs.table[key]
				if !ok {
					continue // deleted between GetFresh and here: re-read
				}
				if reg := rs.regs[slot]; valOwner != reg {
					// New incarnation (first round, or delete/recreate
					// rebound the key): move the value subscription to
					// the register that Fresh now reads. The old tree
					// must not be our only wake source — and after this
					// swap it wakes nobody for free.
					if valSub != nil {
						valSub.Close()
					}
					valOwner = reg
					valFan := reg.Notifier().Fan(keyFanArity, keyFanDepth)
					r.m.traceTree(valFan, "fan-key:"+key)
					valSub = valFan.Subscribe()
				}
				err := notify.AwaitStats(ctx, func() bool {
					return !r.Fresh(key)
				}, ws, valSub.Gate(), dirSub.Gate())
				if err != nil {
					yield(nil, err)
					return
				}
			}
		}
	}
}

// Delta is one WatchAll event: the keys whose values changed since the
// previous event and the keys that disappeared. Values are copies owned
// by the caller (Snapshot's ownership rules).
type Delta struct {
	// Values holds created keys and keys whose bytes changed, with
	// their new values. On the first event it is the complete snapshot.
	Values map[string][]byte
	// Deleted lists keys present in the previous event and absent now,
	// sorted for deterministic consumption.
	Deleted []string
	// Full marks the first event (Values is the whole map).
	Full bool
}

// WatchAll returns an iterator over whole-map changes as a
// snapshot-delta stream: the first event is a full linearizable
// Snapshot, every later event the difference between consecutive
// Snapshots — created/changed keys with their new values, and deleted
// keys. Between events the watcher parks on the map-level gate; every
// shard publication wakes it, and collects that observe no byte-level
// difference are conflated away (no empty events are yielded).
//
// Each event is atomic across the whole map (it derives from one
// linearizable Snapshot), so a consumer applying the deltas in order
// reconstructs exactly the sequence of map states the snapshots
// certified. Delivery is at-least-once per publication with
// latest-value conflation, and WatchAll owns the Reader while it runs.
func (r *Reader) WatchAll(ctx context.Context) iter.Seq2[Delta, error] {
	return func(yield func(Delta, error) bool) {
		nsh := len(r.m.shards)
		epochs := make([]uint64, nsh)
		var prev map[string][]byte
		first := true
		corrupted := false
		// The whole-map ledger, framed by the sum of the shard
		// publication epochs — the exact frame of the subscription
		// (every publication anywhere is one epoch tick), so lag and
		// conflation count real map publications.
		ws := &notify.WatchStats{}
		r.m.watchTrack.Attach(ws)
		defer r.m.watchTrack.Detach(ws)
		// Trace wiring, as in Watch: the session's wakes and conflation
		// decisions land in the handle's lane.
		detachTrace := r.watchTrace(ws)
		defer detachTrace()
		// One leaf of the map-level gate's tree for the session:
		// whole-map watchers are the population that concentrates on a
		// single gate, so this is where the deep fan pays. On a traced
		// map its root relay records cascades into the dedicated fan
		// ring allocated at construction.
		mapFan := r.m.watchGate.Fan(mapFanArity, mapFanDepth)
		if r.m.fanRing != nil && !mapFan.Traced() {
			mapFan.Trace(r.m.fanRing)
		}
		mapSub := mapFan.Subscribe()
		defer mapSub.Close()
		for {
			if err := ctx.Err(); err != nil {
				yield(Delta{}, err)
				return
			}
			// Epoch snapshot strictly before the collect: a publication
			// racing the Snapshot either lands in it or advances an
			// epoch past this snapshot and forces another round.
			var seen uint64
			for i, sh := range r.m.shards {
				epochs[i] = sh.notify.Epoch()
				seen += epochs[i]
			}
			ws.NoteSeen(seen)
			snap, err := r.Snapshot()
			if errors.Is(err, ErrShardCorrupt) {
				// A corrupt shard degrades the stream instead of ending
				// it (mirroring Watch): deliver the episode once, park,
				// and retry on the next publication — which is also the
				// snapshot's repair opportunity. The observed frame stays
				// put while the episode lasts (that unobservability IS
				// lag).
				if !corrupted {
					if !yield(Delta{}, err) {
						return
					}
					corrupted = true
				}
				err = notify.AwaitStats(ctx, func() bool {
					for i, sh := range r.m.shards {
						if sh.notify.Epoch() != epochs[i] {
							return true
						}
					}
					return false
				}, ws, mapSub.Gate())
				if err != nil {
					yield(Delta{}, err)
					return
				}
				continue
			}
			if err != nil {
				yield(Delta{}, err)
				return
			}
			corrupted = false
			delta := diffSnapshots(prev, snap)
			if first || len(delta.Values) > 0 || len(delta.Deleted) > 0 {
				delta.Full = first
				r.noteConflate(ws, seen)
				if !yield(delta, nil) {
					return
				}
				ws.NoteDelivered(seen)
				first = false
			} else {
				// Nothing to deliver: the collect proved we are current
				// as of seen (byte-identical snapshots conflate away).
				r.observe(ws, seen)
			}
			prev = snap
			err = notify.AwaitStats(ctx, func() bool {
				for i, sh := range r.m.shards {
					if sh.notify.Epoch() != epochs[i] {
						return true
					}
				}
				return false
			}, ws, mapSub.Gate())
			if err != nil {
				yield(Delta{}, err)
				return
			}
		}
	}
}

// diffSnapshots computes the delta from prev to cur. Both maps are
// Snapshot results (values caller-owned), so entries move into the
// delta without copying.
func diffSnapshots(prev, cur map[string][]byte) Delta {
	d := Delta{Values: make(map[string][]byte)}
	for k, v := range cur {
		if pv, ok := prev[k]; !ok || !bytes.Equal(pv, v) {
			d.Values[k] = v
		}
	}
	for k := range prev {
		if _, ok := cur[k]; !ok {
			d.Deleted = append(d.Deleted, k)
		}
	}
	sort.Strings(d.Deleted)
	return d
}
