package regmap

// Watch-layer tests: single-key subscriptions across the full key
// lifecycle (set, delete, re-create), the whole-map snapshot-delta
// stream, and a -race churn battery that runs subscribe/cancel loops
// against delete/recreate loops while checking the no-resurrection
// invariant and goroutine hygiene.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arcreg/internal/notify"
)

// collectWatch runs a Watch iterator in a goroutine, forwarding events
// into a channel the test consumes with timeouts.
type watchEvent struct {
	val []byte
	err error
}

func startWatch(t *testing.T, r *Reader, ctx context.Context, key string) <-chan watchEvent {
	t.Helper()
	ch := make(chan watchEvent, 64)
	go func() {
		defer close(ch)
		for v, err := range r.Watch(ctx, key) {
			var cp []byte
			if v != nil {
				cp = append([]byte(nil), v...) // views die with the next op
			}
			ch <- watchEvent{val: cp, err: err}
		}
	}()
	return ch
}

func nextEvent(t *testing.T, ch <-chan watchEvent) watchEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("watch iterator ended unexpectedly")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("no watch event within 10s")
	}
	panic("unreachable")
}

// TestWatchKeyLifecycle walks one key through set → update → delete →
// re-create under a parked watcher: every transition must be delivered,
// the deletion exactly once, and the re-created value must be the fresh
// incarnation's (never the deleted bytes).
func TestWatchKeyLifecycle(t *testing.T) {
	m, err := New(Config{MaxReaders: 2, MaxValueSize: 64, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := startWatch(t, rd, ctx, "k")
	defer func() { // watcher owns the handle: stop and drain before Close
		cancel()
		for range ch {
		}
		rd.Close()
	}()

	if ev := nextEvent(t, ch); ev.err != nil || string(ev.val) != "v1" {
		t.Fatalf("first event = (%q, %v), want (v1, nil)", ev.val, ev.err)
	}
	if err := m.Set("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if ev := nextEvent(t, ch); ev.err != nil || string(ev.val) != "v2" {
		t.Fatalf("update event = (%q, %v), want (v2, nil)", ev.val, ev.err)
	}
	if err := m.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if ev := nextEvent(t, ch); !errors.Is(ev.err, ErrKeyNotFound) {
		t.Fatalf("delete event = (%q, %v), want ErrKeyNotFound", ev.val, ev.err)
	}
	if err := m.Set("k", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if ev := nextEvent(t, ch); ev.err != nil || string(ev.val) != "v3" {
		t.Fatalf("re-create event = (%q, %v), want (v3, nil) — a stale value here is a resurrection", ev.val, ev.err)
	}
	cancel()
	// The cancellation is delivered as a terminal ctx error event.
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if ev.err != nil && !errors.Is(ev.err, ErrKeyNotFound) {
				if !errors.Is(ev.err, context.Canceled) {
					t.Fatalf("terminal event error = %v, want context.Canceled", ev.err)
				}
			}
		case <-time.After(10 * time.Second):
			t.Fatal("watch did not terminate after cancel")
		}
	}
}

// TestWatchAbsentKeyThenCreate: watching a key that does not exist
// yields the miss once, parks on the directory gate, and delivers the
// creation.
func TestWatchAbsentKeyThenCreate(t *testing.T) {
	m, err := New(Config{MaxReaders: 2, MaxValueSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := startWatch(t, rd, ctx, "ghost")
	defer func() { // watcher owns the handle: stop and drain before Close
		cancel()
		for range ch {
		}
		rd.Close()
	}()
	if ev := nextEvent(t, ch); !errors.Is(ev.err, ErrKeyNotFound) {
		t.Fatalf("initial event = (%q, %v), want ErrKeyNotFound", ev.val, ev.err)
	}
	if err := m.Set("ghost", []byte("appeared")); err != nil {
		t.Fatal(err)
	}
	if ev := nextEvent(t, ch); ev.err != nil || string(ev.val) != "appeared" {
		t.Fatalf("creation event = (%q, %v), want (appeared, nil)", ev.val, ev.err)
	}
}

// TestWatchIgnoresSiblingKeys: a parked single-key watcher is not
// obliged to wake on sibling-key traffic — and must never yield for it.
func TestWatchIgnoresSiblingKeys(t *testing.T) {
	m, err := New(Config{MaxReaders: 2, MaxValueSize: 64, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set("mine", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("other", []byte("x")); err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := startWatch(t, rd, ctx, "mine")
	defer func() { // watcher owns the handle: stop and drain before Close
		cancel()
		for range ch {
		}
		rd.Close()
	}()
	if ev := nextEvent(t, ch); string(ev.val) != "v1" {
		t.Fatalf("first event = (%q, %v)", ev.val, ev.err)
	}
	// Same-shard sibling updates (shard count 1 forces co-residency).
	for i := 0; i < 100; i++ {
		if err := m.Set("other", []byte(strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case ev := <-ch:
		t.Fatalf("sibling-key traffic produced event (%q, %v)", ev.val, ev.err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := m.Set("mine", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if ev := nextEvent(t, ch); string(ev.val) != "v2" {
		t.Fatalf("own-key event = (%q, %v), want v2", ev.val, ev.err)
	}
}

// TestWatchAllDeltaStream: the snapshot-delta stream starts with a full
// snapshot and then delivers per-event creations, updates and
// deletions.
func TestWatchAllDeltaStream(t *testing.T) {
	m, err := New(Config{MaxReaders: 2, MaxValueSize: 64, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	events := make(chan Delta, 16)
	defer func() { // watcher owns the handle: stop and drain before Close
		cancel()
		for range events {
		}
		rd.Close()
	}()
	go func() {
		defer close(events)
		for d, err := range rd.WatchAll(ctx) {
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Errorf("WatchAll error: %v", err)
				}
				return
			}
			events <- d
		}
	}()
	next := func() Delta {
		t.Helper()
		select {
		case d, ok := <-events:
			if !ok {
				t.Fatal("WatchAll ended early")
			}
			return d
		case <-time.After(10 * time.Second):
			t.Fatal("no WatchAll event within 10s")
		}
		panic("unreachable")
	}

	d := next()
	if !d.Full || len(d.Values) != 2 || string(d.Values["a"]) != "1" || string(d.Values["b"]) != "2" {
		t.Fatalf("first event = %+v, want full snapshot {a:1 b:2}", d)
	}
	if err := m.Set("c", []byte("3")); err != nil {
		t.Fatal(err)
	}
	d = next()
	if d.Full || string(d.Values["c"]) != "3" || len(d.Deleted) != 0 {
		t.Fatalf("create event = %+v, want {c:3}", d)
	}
	if err := m.Delete("a"); err != nil {
		t.Fatal(err)
	}
	d = next()
	if len(d.Deleted) != 1 || d.Deleted[0] != "a" {
		t.Fatalf("delete event = %+v, want Deleted=[a]", d)
	}
	if err := m.Set("b", []byte("22")); err != nil {
		t.Fatal(err)
	}
	d = next()
	if string(d.Values["b"]) != "22" || len(d.Deleted) != 0 {
		t.Fatalf("update event = %+v, want {b:22}", d)
	}
}

// TestWatchChurn is the -race lifecycle battery: one writer per shard
// churns keys through set/delete/re-create while watchers subscribe,
// consume and cancel in a loop. Invariants:
//
//   - values carry a per-key monotonically increasing version; no
//     watcher may ever observe a version going backwards (a resurrected
//     value from a pre-delete incarnation would);
//   - after every context is cancelled, all watch goroutines exit
//     (checked by the leak guard below).
func TestWatchChurn(t *testing.T) {
	const (
		keys     = 4
		watchers = 8
		rounds   = 300
	)
	m, err := New(Config{MaxReaders: watchers + 1, MaxValueSize: 64, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Writer: churn every key through versioned set/delete/recreate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		version := make([]int, keys)
		for r := 0; r < rounds && !stop.Load(); r++ {
			for k := 0; k < keys; k++ {
				key := "key-" + strconv.Itoa(k)
				version[k]++
				val := fmt.Sprintf("%d:%d", k, version[k])
				if err := m.Set(key, []byte(val)); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
				if r%7 == k%7 {
					if err := m.Delete(key); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}
	}()

	// Watchers: subscribe to a key, consume a few events, cancel,
	// resubscribe — checking version monotonicity across the whole run
	// (deletes yield misses; values never go backwards).
	for w := 0; w < watchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rd, err := m.NewReader()
			if err != nil {
				t.Errorf("NewReader: %v", err)
				return
			}
			defer rd.Close()
			key := "key-" + strconv.Itoa(w%keys)
			lastVersion := -1
			for !stop.Load() {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
				consumed := 0
				for v, err := range rd.Watch(ctx, key) {
					if err != nil {
						if errors.Is(err, ErrKeyNotFound) {
							continue // deletion notification: keep watching
						}
						break // ctx deadline/cancel: resubscribe
					}
					parts := strings.SplitN(string(v), ":", 2)
					ver, convErr := strconv.Atoi(parts[1])
					if len(parts) != 2 || convErr != nil {
						t.Errorf("watcher %d: malformed value %q", w, v)
						cancel()
						return
					}
					if ver < lastVersion {
						t.Errorf("watcher %d: version regressed %d → %d (resurrected value)", w, lastVersion, ver)
						cancel()
						return
					}
					lastVersion = ver
					if consumed++; consumed >= 5 {
						break
					}
				}
				cancel()
			}
		}(w)
	}

	time.Sleep(500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// Leak guard: every Watch goroutine must have exited once its
	// context died and its consumer returned.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after churn: %d before, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// drainTrees asserts every wakeup tree attached anywhere in the map —
// value registers, shard directories, the map-level gate — has zero
// running relays, polling briefly because relay exit is asynchronous
// after the last unsubscribe.
func drainTrees(t *testing.T, m *Map) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		stuck := ""
		for si, sh := range m.shards {
			if tr := sh.dir.Notifier().Gate().Fanned(); tr != nil && tr.Relays() != 0 {
				stuck = fmt.Sprintf("shard %d dir tree: %d relays", si, tr.Relays())
			}
			for slot, reg := range sh.wregs {
				if reg == nil {
					continue
				}
				if tr := reg.Notifier().Gate().Fanned(); tr != nil && tr.Relays() != 0 {
					stuck = fmt.Sprintf("shard %d slot %d value tree: %d relays", si, slot, tr.Relays())
				}
			}
		}
		if tr := m.watchGate.Fanned(); tr != nil && tr.Relays() != 0 {
			stuck = fmt.Sprintf("map tree: %d relays", tr.Relays())
		}
		if stuck == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("wakeup-tree relays leaked: %s", stuck)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWatchTreeHygieneAndLedgers drives single-key and whole-map watch
// sessions through subscribe/cancel storms while the writer side runs
// delete/recreate churn and explicit compactions — the lifecycle edges
// that rebind keys to different registers and rebase readers. Alongside
// the churn, a stats walker continuously checks every live watcher's
// ledger invariant (observed ≤ published). Afterwards every tree
// attached anywhere in the map must have zero running relays and the
// goroutine count must settle back to baseline.
func TestWatchTreeHygieneAndLedgers(t *testing.T) {
	const (
		keys     = 6
		watchers = 6
		rounds   = 150
	)
	m, err := New(Config{MaxReaders: watchers + 2, MaxValueSize: 64, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writer: set/delete/recreate churn with periodic compactions —
	// compaction rebases readers while their watch sessions hold live
	// leaf subscriptions on pre-compaction registers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds && !stop.Load(); r++ {
			for k := 0; k < keys; k++ {
				key := "key-" + strconv.Itoa(k)
				if err := m.Set(key, []byte(fmt.Sprintf("%d:%d", k, r))); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
				if (r+k)%5 == 0 {
					if err := m.Delete(key); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
			if r%20 == 19 {
				if err := m.Compact(); err != nil {
					t.Errorf("Compact: %v", err)
					return
				}
			}
		}
	}()

	// Keyed watchers: short sessions, constant resubscription.
	for w := 0; w < watchers-1; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rd, err := m.NewReader()
			if err != nil {
				t.Errorf("NewReader: %v", err)
				return
			}
			defer rd.Close()
			key := "key-" + strconv.Itoa(w%keys)
			for !stop.Load() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				for _, err := range rd.Watch(ctx, key) {
					if err != nil && !errors.Is(err, ErrKeyNotFound) {
						break
					}
				}
				cancel()
			}
		}(w)
	}

	// One whole-map watcher churning WatchAll sessions (the map-level
	// tree's subscribe/drain cycle).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rd, err := m.NewReader()
		if err != nil {
			t.Errorf("NewReader: %v", err)
			return
		}
		defer rd.Close()
		for !stop.Load() {
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
			for _, err := range rd.WatchAll(ctx) {
				if err != nil {
					break
				}
			}
			cancel()
		}
	}()

	// Ledger walker: the observed ≤ published invariant must hold in
	// every concurrent snapshot of every live watcher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			m.WatchTracker().Each(func(ws *notify.WatchStats) {
				if o, p := ws.Observed(), ws.Published(); o > p {
					t.Errorf("ledger inverted: observed %d > published %d", o, p)
				}
			})
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	drainTrees(t, m)
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after tree churn: %d before, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
