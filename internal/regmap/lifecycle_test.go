package regmap

// Lifecycle tests: tombstone deletion semantics (miss-after-delete,
// recreate-after-delete, no stale resurrection, slot reuse), the atomic
// multi-key snapshot (model equivalence, cross-shard linearization
// invariants), and the snapshot-vs-concurrent-delete race (run under
// -race in CI).

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"arcreg/internal/register"
)

// TestDeleteSemantics pins the deletion contract: miss after delete,
// Fresh false, Len/Keys shrink, deleting an absent key errors, and the
// map keeps working afterwards.
func TestDeleteSemantics(t *testing.T) {
	m := newMap(t, Config{Shards: 4, MaxReaders: 2, MaxValueSize: 64})
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	if err := m.Delete("never"); err != ErrKeyNotFound {
		t.Fatalf("Delete(absent) = %v, want ErrKeyNotFound", err)
	}
	for i := 0; i < 16; i++ {
		if err := m.Set(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Set("k05", []byte("updated")); err != nil { // one value publish
		t.Fatal(err)
	}
	if _, err := rd.Get("k05"); err != nil {
		t.Fatal(err)
	}
	if got := m.WriteStats().Value.Ops; got != 1 {
		t.Fatalf("Value.Ops before delete = %d, want 1", got)
	}
	if err := m.Delete("k05"); err != nil {
		t.Fatal(err)
	}
	// The retired register's counters leave the aggregate at the Delete.
	if got := m.WriteStats().Value.Ops; got != 0 {
		t.Fatalf("Value.Ops after delete = %d, want 0", got)
	}
	if _, err := rd.Get("k05"); err != ErrKeyNotFound {
		t.Fatalf("Get after delete = %v, want ErrKeyNotFound", err)
	}
	if rd.Fresh("k05") {
		t.Error("deleted key reports fresh")
	}
	if m.Len() != 15 {
		t.Fatalf("Map.Len after delete = %d, want 15", m.Len())
	}
	if n, err := rd.Len(); err != nil || n != 15 {
		t.Fatalf("Reader.Len after delete = %d, %v", n, err)
	}
	keys, err := rd.Keys()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if k == "k05" {
			t.Error("deleted key still enumerated")
		}
	}
	if len(keys) != 15 {
		t.Fatalf("Keys after delete = %d entries", len(keys))
	}
	if err := m.Delete("k05"); err != ErrKeyNotFound {
		t.Fatalf("double Delete = %v, want ErrKeyNotFound", err)
	}
	// The rest of the shard keeps working.
	if v, err := rd.Get("k06"); err != nil || string(v) != "v06" {
		t.Fatalf("neighbor Get after delete = %q, %v", v, err)
	}
	ws := m.WriteStats()
	if ws.Deletes != 1 || ws.Keys != 16 {
		t.Fatalf("WriteStats = %+v", ws)
	}
}

// TestRecreateAfterDelete pins the no-resurrection guarantee: a deleted
// then re-created key serves only its new value — to readers that
// observed the old one, to readers that never did, and through the
// freshness probe — even though its slot is reused.
func TestRecreateAfterDelete(t *testing.T) {
	m := newMap(t, Config{Shards: 1, MaxReaders: 2, MaxValueSize: 64})
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	if err := m.Set("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Get("k"); err != nil {
		t.Fatal(err)
	}
	sh := m.shards[0]
	slotsBefore := len(sh.wregs)
	if err := m.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got := len(sh.wregs); got != slotsBefore {
		t.Fatalf("recreation did not reuse the slot: %d slots, was %d", got, slotsBefore)
	}
	if got := sh.wgens[0]; got != 2 {
		t.Fatalf("slot generation = %d, want 2", got)
	}
	v, err := rd.Get("k")
	if err != nil || string(v) != "new" {
		t.Fatalf("Get after recreate = %q, %v (stale resurrection?)", v, err)
	}
	// A late reader decodes the full log and lands on the new value too.
	rd2, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd2.Close()
	if v, err := rd2.Get("k"); err != nil || string(v) != "new" {
		t.Fatalf("late reader Get = %q, %v", v, err)
	}
	// Another delete/recreate cycle with a different key reusing the slot.
	if err := m.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("other", []byte("third")); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Get("k"); err != ErrKeyNotFound {
		t.Fatalf("Get of deleted key after slot handoff = %v", err)
	}
	if v, err := rd.Get("other"); err != nil || string(v) != "third" {
		t.Fatalf("Get of slot successor = %q, %v", v, err)
	}
}

// TestDeletePreservesHeldViews pins the aliasing rule under deletion: a
// view obtained before the delete stays intact (the retired register is
// never written again), and hot Gets of other keys return to the
// zero-RMW fast path after the directory settles.
func TestDeletePreservesHeldViews(t *testing.T) {
	m := newMap(t, Config{Shards: 1, MaxReaders: 1, MaxValueSize: 64})
	m.Set("doomed", []byte("last-value"))
	m.Set("hot", []byte("hot-value"))
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	view, err := rd.Get("doomed")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("replacement", []byte("xxxxxxxxxx")); err != nil { // reuses the slot
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := rd.Get("replacement"); err != nil {
			t.Fatal(err)
		}
	}
	if string(view) != "last-value" {
		t.Fatalf("held view of deleted key corrupted to %q", view)
	}
	// Steady state after the churn: hot Gets are zero-RMW again.
	if _, err := rd.Get("hot"); err != nil {
		t.Fatal(err)
	}
	base := rd.Stats()
	for i := 0; i < 100; i++ {
		if _, err := rd.Get("hot"); err != nil {
			t.Fatal(err)
		}
	}
	st := rd.Stats()
	if st.RMW != base.RMW {
		t.Errorf("hot Gets after delete churn executed %d RMW", st.RMW-base.RMW)
	}
	if st.FastPath-base.FastPath != 100 {
		t.Errorf("fast-path Gets = %d, want 100", st.FastPath-base.FastPath)
	}
}

// TestSnapshotModel checks Snapshot against a model map through a
// scripted add/update/delete history, including the empty map.
func TestSnapshotModel(t *testing.T) {
	m := newMap(t, Config{Shards: 4, MaxReaders: 1, MaxValueSize: 64})
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	check := func(model map[string]string) {
		t.Helper()
		snap, err := rd.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap) != len(model) {
			t.Fatalf("snapshot has %d keys, model %d", len(snap), len(model))
		}
		for k, want := range model {
			if got, ok := snap[k]; !ok || string(got) != want {
				t.Fatalf("snapshot[%q] = %q (%v), want %q", k, got, ok, want)
			}
		}
	}

	check(map[string]string{})
	model := map[string]string{}
	for i := 0; i < 40; i++ {
		k, v := fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i)
		if err := m.Set(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	check(model)
	for i := 0; i < 40; i += 3 {
		k := fmt.Sprintf("k%02d", i)
		if err := m.Delete(k); err != nil {
			t.Fatal(err)
		}
		delete(model, k)
	}
	check(model)
	for i := 0; i < 40; i += 6 {
		k, v := fmt.Sprintf("k%02d", i), fmt.Sprintf("r%02d", i)
		if err := m.Set(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	check(model)
	// Snapshot copies: mutating the result must not affect the map.
	snap, _ := rd.Snapshot()
	for _, v := range snap {
		for i := range v {
			v[i] = 'X'
		}
	}
	check(model)
	st := rd.Stats()
	if st.Snapshots == 0 {
		t.Error("snapshots not counted")
	}
	if st.SnapshotRetries != 0 {
		t.Errorf("quiescent snapshots retried %d times", st.SnapshotRetries)
	}
}

// TestSnapshotZeroRMWSteadyState pins the snapshot cost model: with no
// concurrent publications, a second snapshot of an unchanged map
// executes zero RMW instructions (every per-key read is ARC's one-load
// fast path) and completes in one pass.
func TestSnapshotZeroRMWSteadyState(t *testing.T) {
	m := newMap(t, Config{Shards: 4, MaxReaders: 1, MaxValueSize: 64})
	for i := 0; i < 64; i++ {
		if err := m.Set(fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, err := rd.Snapshot(); err != nil { // first pass pays the acquisitions
		t.Fatal(err)
	}
	base := rd.Stats()
	for i := 0; i < 10; i++ {
		if _, err := rd.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	st := rd.Stats()
	if st.RMW != base.RMW {
		t.Errorf("steady-state snapshots executed %d RMW instructions, want 0", st.RMW-base.RMW)
	}
	if st.SnapshotRetries != base.SnapshotRetries {
		t.Errorf("steady-state snapshots retried %d times", st.SnapshotRetries-base.SnapshotRetries)
	}
}

// TestSnapshotAtomicityUnderConcurrency is the -race acceptance test:
// per-shard writers continuously update, delete and re-create keys while
// readers take snapshots. Two invariants certify the point-in-time
// guarantee:
//
//  1. version chain: each writer bumps a version and writes it to all
//     its keys in order, so at every instant the versions of one
//     writer's keys form a non-increasing sequence that drops by at most
//     one end to end; every snapshot must preserve that.
//  2. flap pairs: each writer deletes and re-creates a (flapA, flapB)
//     pair strictly in the order "delete A, delete B, create B', create
//     A'" with matching payloads; a snapshot may cut anywhere, but if it
//     contains A it must contain the matching B (A is only ever present
//     while B is).
func TestSnapshotAtomicityUnderConcurrency(t *testing.T) {
	const (
		shards  = 4
		chain   = 5
		rounds  = 300
		readers = 2
	)
	m := newMap(t, Config{Shards: shards, MaxReaders: readers, MaxValueSize: 64})

	// Pre-assign chain keys per shard (the version-chain invariant needs
	// all of one writer's keys on one shard to honor single-writer).
	chainKeys := make([][]string, shards)
	flapA := make([]string, shards)
	flapB := make([]string, shards)
	for si := 0; si < shards; si++ {
		for i := 0; len(chainKeys[si]) < chain; i++ {
			k := fmt.Sprintf("chain-%d-%d", si, i)
			if m.ShardOf(k) == si {
				chainKeys[si] = append(chainKeys[si], k)
			}
		}
		for i := 0; ; i++ {
			k := fmt.Sprintf("flapA-%d-%d", si, i)
			if m.ShardOf(k) == si {
				flapA[si] = k
				break
			}
		}
		for i := 0; ; i++ {
			k := fmt.Sprintf("flapB-%d-%d", si, i)
			if m.ShardOf(k) == si {
				flapB[si] = k
				break
			}
		}
	}
	enc := func(v uint64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		return b[:]
	}
	for si := 0; si < shards; si++ {
		for _, k := range chainKeys[si] {
			if err := m.Set(k, enc(0)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, shards+readers)
	for si := 0; si < shards; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			for v := uint64(1); v <= rounds; v++ {
				for _, k := range chainKeys[si] {
					if err := m.Set(k, enc(v)); err != nil {
						errs <- err
						return
					}
				}
				// Flap cycle: A exists only while B exists.
				if v%2 == 0 {
					if err := m.Set(flapB[si], enc(v)); err != nil {
						errs <- err
						return
					}
					if err := m.Set(flapA[si], enc(v)); err != nil {
						errs <- err
						return
					}
				} else if v > 1 {
					if err := m.Delete(flapA[si]); err != nil {
						errs <- err
						return
					}
					if err := m.Delete(flapB[si]); err != nil {
						errs <- err
						return
					}
				}
			}
		}(si)
	}

	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rd, err := m.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		rg.Add(1)
		go func(rd *Reader) {
			defer rg.Done()
			defer rd.Close()
			lastV := make([]uint64, shards)
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := rd.Snapshot()
				if err != nil {
					errs <- err
					return
				}
				for si := 0; si < shards; si++ {
					// Invariant 1: non-increasing version chain, drop ≤ 1,
					// and monotone across snapshots.
					var first, prev uint64
					for i, k := range chainKeys[si] {
						b, ok := snap[k]
						if !ok || len(b) != 8 {
							errs <- fmt.Errorf("snapshot lost chain key %q", k)
							return
						}
						v := binary.LittleEndian.Uint64(b)
						if i == 0 {
							first, prev = v, v
							continue
						}
						if v > prev || first > v+1 {
							errs <- fmt.Errorf("torn snapshot: shard %d chain versions not a cut (%d then %d, first %d)", si, prev, v, first)
							return
						}
						prev = v
					}
					if first < lastV[si] {
						errs <- fmt.Errorf("snapshot regressed: shard %d version %d after %d", si, first, lastV[si])
						return
					}
					lastV[si] = first
					// Invariant 2: A present ⟹ B present with equal payload.
					if a, ok := snap[flapA[si]]; ok {
						b, ok := snap[flapB[si]]
						if !ok {
							errs <- fmt.Errorf("torn snapshot: shard %d has %q without %q", si, flapA[si], flapB[si])
							return
						}
						if !bytes.Equal(a, b) {
							errs <- fmt.Errorf("torn snapshot: flap payloads differ (%x vs %x)", a, b)
							return
						}
					}
				}
			}
		}(rd)
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSnapshotClosedReader pins the closed-handle error.
func TestSnapshotClosedReader(t *testing.T) {
	m := newMap(t, Config{Shards: 1, MaxReaders: 1})
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	rd.Close()
	if _, err := rd.Snapshot(); err != register.ErrReaderClosed {
		t.Fatalf("Snapshot after Close = %v", err)
	}
}

// TestDirectoryFullOnDelete pins the administrative ceiling's new
// semantics under compaction epochs: Delete always succeeds (at the
// ceiling the deletion folds into a compaction instead of appending a
// tombstone), and Set of a new key fails with ErrDirectoryFull only
// when the live set alone fills the ceiling — garbage never wedges the
// shard (DESIGN.md §9 records the protocol).
func TestDirectoryFullOnDelete(t *testing.T) {
	m := newMap(t, Config{Shards: 1, MaxReaders: 2, MaxValueSize: 16})
	if err := m.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	sh := m.shards[0]
	// Lower the enforced ceiling to the log's current size; restore after.
	saved := dirCapacity
	dirCapacity = len(sh.dirBuf)
	defer func() { dirCapacity = saved }()
	// The live set alone fills the ceiling: creating another key must
	// fail with the sentinel (compaction cannot shrink a garbage-free
	// log), and the failed Set must not leak writer state.
	if err := m.Set("k2", []byte("v")); !errors.Is(err, ErrDirectoryFull) {
		t.Fatalf("Set on a full garbage-free directory = %v, want ErrDirectoryFull", err)
	}
	if _, ok := sh.index["k2"]; ok {
		t.Fatal("failed Set left the key in the writer index")
	}
	// Delete at the ceiling folds into a compaction epoch and succeeds.
	if err := m.Delete("k"); err != nil {
		t.Fatalf("Delete at the ceiling = %v, want success via compaction", err)
	}
	if _, ok := sh.index["k"]; ok {
		t.Fatal("Delete left the key in the writer index")
	}
	if sh.compactions == 0 {
		t.Fatal("ceiling Delete did not compact")
	}
	// The compacted log is empty again: the shard took the deletion and
	// (under a ceiling with room for one entry's conservative varint
	// pre-check) accepts a re-creation — no wedged-forever state.
	dirCapacity = len(sh.dirBuf) + addEntryMax("k3")
	if err := m.Set("k3", []byte("v")); err != nil {
		t.Fatalf("Set after ceiling Delete = %v", err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if v, err := rd.Get("k3"); err != nil || string(v) != "v" {
		t.Fatalf("Get(k3) after compaction = %q, %v", v, err)
	}
	if _, err := rd.Get("k"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Get(k) after compacted delete = %v, want ErrKeyNotFound", err)
	}
}
