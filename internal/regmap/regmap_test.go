package regmap

// Tests for the sharded snapshot map: shard-routing determinism,
// directory protocol (epoch, incremental decode, ordering), fresh-gated
// Get accounting, handle lifecycle, and the concurrent key-creation race
// (run under -race in CI).

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"

	"arcreg/internal/register"
)

func newMap(t testing.TB, cfg Config) *Map {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestShardRoutingDeterminism pins the routing contract: ShardOf is a
// pure function of (key, shard count) — identical across Map instances
// and matching the stdlib FNV-1a reference.
func TestShardRoutingDeterminism(t *testing.T) {
	a := newMap(t, Config{Shards: 16, MaxReaders: 1})
	b := newMap(t, Config{Shards: 16, MaxReaders: 4, MaxValueSize: 123})
	keys := []string{"", "a", "key", "key-000001", "a longer key with spaces", "\x00\xff"}
	for _, k := range keys {
		if a.ShardOf(k) != b.ShardOf(k) {
			t.Errorf("ShardOf(%q) differs across instances: %d vs %d", k, a.ShardOf(k), b.ShardOf(k))
		}
		ref := fnv.New64a()
		ref.Write([]byte(k))
		if got, want := Hash(k), ref.Sum64(); got != want {
			t.Errorf("Hash(%q) = %d, stdlib fnv = %d", k, got, want)
		}
		if got := a.ShardOf(k); got != int(Hash(k)&15) {
			t.Errorf("ShardOf(%q) = %d, want %d", k, got, Hash(k)&15)
		}
	}
}

// TestShardCountRounding pins the power-of-two rounding and the default.
func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		m := newMap(t, Config{Shards: tc.in, MaxReaders: 1})
		if got := m.Shards(); got != tc.want {
			t.Errorf("Shards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if _, err := New(Config{Shards: -1, MaxReaders: 1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := New(Config{MaxReaders: 0}); err == nil {
		t.Error("zero MaxReaders accepted")
	}
}

// TestDirectoryProtocol exercises the directory mechanics across many
// keys: epoch increments per key creation, readers decode incrementally,
// Keys/Len agree, and new keys are immediately visible with their first
// value (never key-without-value).
func TestDirectoryProtocol(t *testing.T) {
	m := newMap(t, Config{Shards: 4, MaxReaders: 2, MaxValueSize: 64})
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	if n, err := rd.Len(); err != nil || n != 0 {
		t.Fatalf("empty Len = %d, %v", n, err)
	}
	if _, err := rd.Get("nope"); err != ErrKeyNotFound {
		t.Fatalf("absent Get err = %v", err)
	}

	const nkeys = 100
	for i := 0; i < nkeys; i++ {
		key := fmt.Sprintf("k%03d", i)
		val := []byte(fmt.Sprintf("v%03d", i))
		if err := m.Set(key, val); err != nil {
			t.Fatal(err)
		}
		// The new key is visible to an existing reader immediately.
		got, err := rd.Get(key)
		if err != nil {
			t.Fatalf("Get(%q) after create: %v", key, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("Get(%q) = %q, want %q", key, got, val)
		}
	}
	if m.Len() != nkeys {
		t.Fatalf("Map.Len = %d", m.Len())
	}
	if n, _ := rd.Len(); n != nkeys {
		t.Fatalf("Reader.Len = %d", n)
	}
	keys, err := rd.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != nkeys {
		t.Fatalf("Keys len = %d", len(keys))
	}
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	for i := 0; i < nkeys; i++ {
		if !seen[fmt.Sprintf("k%03d", i)] {
			t.Fatalf("key k%03d missing from enumeration", i)
		}
	}
	// Directory epochs: one publication per key creation, summed across
	// shards; the shard's epoch equals its key count while add-only.
	ws := m.WriteStats()
	if ws.Keys != nkeys {
		t.Errorf("WriteStats.Keys = %d", ws.Keys)
	}
	if ws.Directory.Ops != nkeys {
		t.Errorf("Directory.Ops = %d, want %d", ws.Directory.Ops, nkeys)
	}
	for si, sh := range m.shards {
		if sh.epoch != uint64(len(sh.wregs)) {
			t.Errorf("shard %d epoch %d != %d keys", si, sh.epoch, len(sh.wregs))
		}
	}
	// A late reader decodes the whole directory at once.
	rd2, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd2.Close()
	got, err := rd2.Get("k042")
	if err != nil || string(got) != "v042" {
		t.Fatalf("late reader Get = %q, %v", got, err)
	}
}

// TestFreshGatedGetAccounting pins the acceptance criterion at the unit
// level: repeated Gets of an unchanged hot key execute zero RMW
// instructions and count as FastPath; an update costs exactly the ARC
// re-acquisition (2 RMW); a directory change re-decodes without
// touching other keys' handles.
func TestFreshGatedGetAccounting(t *testing.T) {
	m := newMap(t, Config{Shards: 2, MaxReaders: 1, MaxValueSize: 64})
	if err := m.Set("hot", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	if _, err := rd.Get("hot"); err != nil {
		t.Fatal(err)
	}
	base := rd.Stats()
	for i := 0; i < 100; i++ {
		if _, err := rd.Get("hot"); err != nil {
			t.Fatal(err)
		}
	}
	st := rd.Stats()
	if st.RMW != base.RMW {
		t.Errorf("hot Gets executed %d RMW", st.RMW-base.RMW)
	}
	if st.FastPath-base.FastPath != 100 {
		t.Errorf("fast-path Gets = %d, want 100", st.FastPath-base.FastPath)
	}
	if st.DirRefreshes != base.DirRefreshes {
		t.Errorf("hot Gets refreshed the directory %d times", st.DirRefreshes-base.DirRefreshes)
	}

	// Value update: one release + one acquire on the key's register.
	if err := m.Set("hot", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, err := rd.Get("hot")
	if err != nil || string(v) != "v2" {
		t.Fatalf("post-update Get = %q, %v", v, err)
	}
	after := rd.Stats()
	if got := after.RMW - st.RMW; got != 2 {
		t.Errorf("post-update Get executed %d RMW, want 2", got)
	}

	// Misses on an unchanged directory are one-load fast paths.
	preMiss := rd.Stats()
	for i := 0; i < 10; i++ {
		if _, err := rd.Get("absent"); err != ErrKeyNotFound {
			t.Fatal(err)
		}
	}
	postMiss := rd.Stats()
	if postMiss.Misses-preMiss.Misses != 10 {
		t.Errorf("misses = %d, want 10", postMiss.Misses-preMiss.Misses)
	}
	if postMiss.RMW != preMiss.RMW {
		t.Errorf("misses executed %d RMW", postMiss.RMW-preMiss.RMW)
	}

	// A key creation on the other shard refreshes that directory but
	// leaves the hot key's fast path intact.
	other := "spill-0"
	for i := 0; m.ShardOf(other) == m.ShardOf("hot"); i++ {
		other = fmt.Sprintf("spill-%d", i)
	}
	if err := m.Set(other, []byte("x")); err != nil {
		t.Fatal(err)
	}
	preHot := rd.Stats()
	if _, err := rd.Get("hot"); err != nil {
		t.Fatal(err)
	}
	if got := rd.Stats(); got.RMW != preHot.RMW {
		t.Errorf("hot Get after foreign-shard create executed %d RMW", got.RMW-preHot.RMW)
	}
}

// TestViewValidityAcrossOtherKeys pins the documented aliasing rule: a
// view stays valid across Gets of other keys (only a Get of the same
// key, or Close, moves its handle).
func TestViewValidityAcrossOtherKeys(t *testing.T) {
	m := newMap(t, Config{Shards: 2, MaxReaders: 1, MaxValueSize: 64})
	m.Set("a", []byte("alpha"))
	m.Set("b", []byte("beta"))
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	va, err := rd.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := rd.Get("b"); err != nil {
			t.Fatal(err)
		}
	}
	if string(va) != "alpha" {
		t.Fatalf("view of a corrupted to %q by Gets of b", va)
	}
}

// TestReaderCapacityAndClose pins the handle lifecycle: MaxReaders
// enforced, capacity recycled on Close, closed handles error, and every
// component register (directories and keys) reports zero live handles
// after all readers close.
func TestReaderCapacityAndClose(t *testing.T) {
	m := newMap(t, Config{Shards: 2, MaxReaders: 2, MaxValueSize: 32})
	m.Set("k1", []byte("v"))
	m.Set("k2", []byte("v"))

	a, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewReader(); err != register.ErrTooManyReaders {
		t.Fatalf("over-capacity NewReader: %v", err)
	}
	for _, rd := range []*Reader{a, b} {
		if _, err := rd.Get("k1"); err != nil {
			t.Fatal(err)
		}
		if _, err := rd.Get("k2"); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != register.ErrReaderClosed {
		t.Fatalf("double Close: %v", err)
	}
	if _, err := a.Get("k1"); err != register.ErrReaderClosed {
		t.Fatalf("Get after Close: %v", err)
	}
	if _, err := a.Keys(); err != register.ErrReaderClosed {
		t.Fatalf("Keys after Close: %v", err)
	}
	c, err := m.NewReader()
	if err != nil {
		t.Fatalf("NewReader after Close: %v", err)
	}
	b.Close()
	c.Close()
	if got := m.LiveReaders(); got != 0 {
		t.Fatalf("LiveReaders = %d after close", got)
	}
	for si, sh := range m.shards {
		if got := sh.dir.LiveReaders(); got != 0 {
			t.Fatalf("shard %d directory leaked %d handles", si, got)
		}
		for i, reg := range sh.wregs {
			if got := reg.LiveReaders(); got != 0 {
				t.Fatalf("shard %d key %d leaked %d handles", si, i, got)
			}
		}
	}
}

// TestValueSizeBound pins ErrValueTooLarge on both the update and the
// key-creation path, without corrupting the map.
func TestValueSizeBound(t *testing.T) {
	m := newMap(t, Config{Shards: 1, MaxReaders: 1, MaxValueSize: 8})
	if err := m.Set("new", make([]byte, 9)); err == nil {
		t.Fatal("oversized create accepted")
	}
	if m.Len() != 0 {
		t.Fatalf("failed create left %d keys", m.Len())
	}
	if err := m.Set("k", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("k", make([]byte, 9)); err == nil {
		t.Fatal("oversized update accepted")
	}
	rd, _ := m.NewReader()
	defer rd.Close()
	if v, err := rd.Get("k"); err != nil || string(v) != "ok" {
		t.Fatalf("Get after rejected update = %q, %v", v, err)
	}
}

// TestDynamicValues exercises the exact-size allocation variant end to
// end.
func TestDynamicValues(t *testing.T) {
	m := newMap(t, Config{Shards: 2, MaxReaders: 1, MaxValueSize: 1 << 20, DynamicValues: true})
	rd, _ := m.NewReader()
	defer rd.Close()
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%d", i%4)
		val := bytes.Repeat([]byte{byte(i)}, 1+i*100)
		if err := m.Set(key, val); err != nil {
			t.Fatal(err)
		}
		got, err := rd.Get(key)
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("round %d: %v", i, err)
		}
	}
}

// TestConcurrentKeyCreation is the race test of the acceptance criteria:
// per-shard writer goroutines create and update keys concurrently while
// readers Get hot keys, enumerate, and chase just-created keys across
// shards. Run with -race (CI does).
func TestConcurrentKeyCreation(t *testing.T) {
	const (
		shards  = 4
		readers = 3
		perKind = 200
	)
	m := newMap(t, Config{Shards: shards, MaxReaders: readers, MaxValueSize: 64})
	// Pre-assign each writer goroutine the keys of one shard, honoring
	// the per-shard single-writer contract while creating keys on every
	// shard concurrently.
	keysByShard := make([][]string, shards)
	filled := 0
	for i := 0; filled < shards; i++ {
		k := fmt.Sprintf("key-%06d", i)
		si := m.ShardOf(k)
		if len(keysByShard[si]) < perKind {
			keysByShard[si] = append(keysByShard[si], k)
			if len(keysByShard[si]) == perKind {
				filled++
			}
		}
	}
	if err := m.Set("hot", []byte("genesis")); err != nil {
		t.Fatal(err)
	}
	hotShard := m.ShardOf("hot")

	var wg sync.WaitGroup
	errs := make(chan error, shards+readers)
	for si := 0; si < shards; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				for i, k := range keysByShard[si] {
					if err := m.Set(k, []byte(fmt.Sprintf("s%dv%dr%d", si, i, round))); err != nil {
						errs <- err
						return
					}
					if si == hotShard && i%16 == 0 {
						if err := m.Set("hot", []byte(fmt.Sprintf("hot-%d-%d", round, i))); err != nil {
							errs <- err
							return
						}
					}
				}
			}
		}(si)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rd, err := m.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		rg.Add(1)
		go func(rd *Reader, r int) {
			defer rg.Done()
			defer rd.Close()
			lastLen := 0
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := rd.Get("hot"); err != nil {
					errs <- fmt.Errorf("reader %d hot: %w", r, err)
					return
				}
				// Chase a key that may not exist yet: either outcome is
				// legal, errors are not.
				k := keysByShard[i%shards][(i/7)%perKind]
				if _, err := rd.Get(k); err != nil && err != ErrKeyNotFound {
					errs <- fmt.Errorf("reader %d chase %q: %w", r, k, err)
					return
				}
				if i%64 == 0 {
					n, err := rd.Len()
					if err != nil {
						errs <- err
						return
					}
					if n < lastLen {
						errs <- fmt.Errorf("reader %d saw key count regress: %d after %d", r, n, lastLen)
						return
					}
					lastLen = n
				}
			}
		}(rd, r)
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if want := shards*perKind + 1; m.Len() != want {
		t.Fatalf("Len = %d, want %d", m.Len(), want)
	}
	// Post-quiescence: every key readable with its final round-1 value.
	rd, _ := m.NewReader()
	defer rd.Close()
	for si := 0; si < shards; si++ {
		for i, k := range keysByShard[si] {
			v, err := rd.Get(k)
			if err != nil {
				t.Fatalf("final Get(%q): %v", k, err)
			}
			if want := fmt.Sprintf("s%dv%dr1", si, i); string(v) != want {
				t.Fatalf("final Get(%q) = %q, want %q", k, v, want)
			}
		}
	}
}

// TestMapFreshProbe pins Reader.Fresh's contract (mirrors the register
// FreshnessProber conformance clause at map level, per key).
func TestMapFreshProbe(t *testing.T) {
	m := newMap(t, Config{Shards: 2, MaxReaders: 1, MaxValueSize: 32})
	m.Set("k", []byte("v1"))
	rd, _ := m.NewReader()
	defer rd.Close()
	if rd.Fresh("k") {
		t.Error("never-read key reports fresh")
	}
	if _, err := rd.Get("k"); err != nil {
		t.Fatal(err)
	}
	if !rd.Fresh("k") {
		t.Error("just-read key not fresh")
	}
	m.Set("k", []byte("v2"))
	if rd.Fresh("k") {
		t.Error("stale key reports fresh")
	}
	if rd.Fresh("absent") {
		t.Error("absent key reports fresh")
	}
}
