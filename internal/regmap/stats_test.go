package regmap

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"arcreg/internal/notify"
)

// TestMapStatsShape pins the quiescent Stats tree: map totals agree
// with the per-shard children and with WriteStats' quiescent view.
func TestMapStatsShape(t *testing.T) {
	m := newMap(t, Config{Shards: 2, MaxReaders: 2, MaxValueSize: 64})
	for i := 0; i < 8; i++ {
		if err := m.Set(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Delete("k0"); err != nil {
		t.Fatal(err)
	}
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}

	sn := m.Stats()
	get := func(name string) uint64 {
		v, ok := sn.Get(name)
		if !ok {
			t.Fatalf("map node missing %q:\n%s", name, sn.String())
		}
		return v
	}
	if get("live_keys") != 7 {
		t.Fatalf("live_keys = %d, want 7", get("live_keys"))
	}
	if get("creates") != 8 || get("deletes") != 1 {
		t.Fatalf("creates/deletes = %d/%d, want 8/1", get("creates"), get("deletes"))
	}
	if get("compactions") != uint64(m.Shards()) {
		t.Fatalf("compactions = %d, want %d", get("compactions"), m.Shards())
	}
	if get("shards") != uint64(m.Shards()) {
		t.Fatalf("shards = %d", get("shards"))
	}
	ws := m.WriteStats()
	if get("dir_bytes") != ws.DirBytes {
		t.Fatalf("dir_bytes = %d, WriteStats says %d", get("dir_bytes"), ws.DirBytes)
	}

	// Children: the watcher aggregate plus one node per shard, each
	// internally consistent (cgen == compactions).
	if sn.Child("watchers") == nil {
		t.Fatalf("no watchers child:\n%s", sn.String())
	}
	var shardSum uint64
	for si := 0; si < m.Shards(); si++ {
		node := sn.Child(fmt.Sprintf("shard%d", si))
		if node == nil {
			t.Fatalf("no shard%d child", si)
		}
		cgen, _ := node.Get("cgen")
		comp, _ := node.Get("compactions")
		if cgen != comp {
			t.Fatalf("shard%d: cgen %d != compactions %d", si, cgen, comp)
		}
		lk, _ := node.Get("live_keys")
		shardSum += lk
	}
	if shardSum != 7 {
		t.Fatalf("shard live_keys sum = %d, want 7", shardSum)
	}
}

// TestMapStatsDuringCompact is the Stats-vs-Compact race audit: a
// walker hammers Map.Stats while churn against a shrunken directory
// ceiling forces continual auto-compaction epochs. Every accepted
// snapshot must be internally consistent — cgen == compactions per
// shard (the two cells bump together exactly once per compact, and the
// validated collect must never tear across that publication) — and the
// per-shard directory epoch and compaction counters must be monotone
// across snapshots.
func TestMapStatsDuringCompact(t *testing.T) {
	restore := SetDirCapacity(512)
	defer restore()
	m := newMap(t, Config{Shards: 1, MaxReaders: 2, MaxValueSize: 32})

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errc := make(chan error, 4)

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch, lastComp uint64
			for ctx.Err() == nil {
				sn := m.Stats()
				node := sn.Child("shard0")
				if node == nil {
					errc <- fmt.Errorf("stats lost shard0")
					return
				}
				cgen, _ := node.Get("cgen")
				comp, _ := node.Get("compactions")
				if cgen != comp {
					errc <- fmt.Errorf("torn stats: cgen %d != compactions %d", cgen, comp)
					return
				}
				epoch, _ := node.Get("dir_epoch")
				if epoch < lastEpoch || comp < lastComp {
					errc <- fmt.Errorf("stats regressed: epoch %d<%d or compactions %d<%d",
						epoch, lastEpoch, comp, lastComp)
					return
				}
				lastEpoch, lastComp = epoch, comp
			}
		}()
	}

	// Writer: delete/recreate churn that overflows the 512-byte ceiling
	// and forces auto-compaction epochs mid-walk.
	const keys = 4
	var ver uint64
	key := func(i int) string { return fmt.Sprintf("churn-%d", i) }
	for i := 0; i < keys; i++ {
		ver++
		if err := m.Set(key(i), verVal(ver)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for round := 0; time.Now().Before(deadline); round++ {
		i := round % keys
		if err := m.Delete(key(i)); err != nil {
			t.Fatalf("round %d: Delete: %v", round, err)
		}
		ver++
		if err := m.Set(key(i), verVal(ver)); err != nil {
			t.Fatalf("round %d: Set: %v", round, err)
		}
	}
	cancel()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if sn := m.Stats(); true {
		comp, _ := sn.Get("compactions")
		if comp == 0 {
			t.Fatal("churn forced no compaction — the race was never exercised")
		}
	}
}

// TestWatchStatsLedgerOnMap drives a single-key watch through a burst
// of publications consumed in one wakeup and checks the backpressure
// ledger: observed ≤ published always, conflation counts the skipped
// publications, and the tracker exposes the population while the watch
// is live.
func TestWatchStatsLedgerOnMap(t *testing.T) {
	m := newMap(t, Config{Shards: 1, MaxReaders: 2, MaxValueSize: 64})
	if err := m.Set("k", []byte("v0")); err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	got := make(chan []byte)
	go func() {
		for v, err := range rd.Watch(ctx, "k") {
			if err != nil {
				close(got)
				return
			}
			select {
			case got <- append([]byte(nil), v...):
			case <-ctx.Done():
				close(got)
				return
			}
		}
		close(got)
	}()

	if v := <-got; string(v) != "v0" {
		t.Fatalf("first delivery %q", v)
	}
	// The watcher is between deliveries; its ledger is attached.
	for m.WatchTracker().Watchers() != 1 {
		time.Sleep(time.Millisecond)
	}
	// The ledger attaches at session start, before the watcher has
	// parked — and a watcher that is not yet parked when the burst
	// lands consumes it through the freshness probe alone, with no
	// wakeup to count. Wait for the watcher's leaf to arm on the key
	// register's wakeup tree before bursting, so the burst provably
	// races a parked watcher. (Reading the writer-side index here is
	// safe: this goroutine is the shard writer.)
	sh := m.shards[m.ShardOf("k")]
	vtree := sh.wregs[sh.index["k"]].Notifier().Fan(keyFanArity, keyFanDepth)
	for {
		if armed, _ := vtree.Stats().Get("leaves_armed"); armed > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Publish a burst while the consumer is blocked in the unbuffered
	// channel send (it cannot deliver until we receive): at least the
	// intermediate publications conflate.
	const burst = 50
	for i := 0; i < burst; i++ {
		if err := m.Set("k", []byte(fmt.Sprintf("v%d", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Drain until the final value arrives.
	for v := range got {
		if string(v) == fmt.Sprintf("v%d", burst) {
			break
		}
	}

	sn := m.WatchTracker().Stats()
	if v, _ := sn.Get("live"); v != 1 {
		t.Fatalf("live watchers = %d, want 1", v)
	}
	if v, _ := sn.Get("delivered"); v < 2 {
		t.Fatalf("delivered = %d, want ≥ 2", v)
	}
	conflated, _ := sn.Get("conflated")
	wakeups, _ := sn.Get("wakeups")
	if conflated == 0 {
		t.Fatalf("burst of %d conflated nothing (wakeups=%d):\n%s", burst, wakeups, sn.String())
	}
	if wakeups == 0 {
		t.Fatal("watcher parked through a burst without a wakeup")
	}

	// Per-watcher invariant: observed ≤ published in every live ledger.
	m.WatchTracker().Each(func(ws *notify.WatchStats) {
		if o, p := ws.Observed(), ws.Published(); o > p {
			t.Errorf("observed %d > published %d", o, p)
		}
	})

	cancel()
	for range got {
	}
	if m.WatchTracker().Watchers() != 0 {
		t.Fatalf("watchers after exit = %d", m.WatchTracker().Watchers())
	}
}
