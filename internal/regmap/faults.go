package regmap

// Fault-injection points and chaos hooks. The points are permanent
// instrumentation (one atomic load each while disarmed — they ride the
// writer's publish paths, never the reader's hot Get); the hooks exist
// for the chaos suite (cmd/arcstress) and tests.
//
// Crash capability follows one placement rule: a point may allow Crash
// only where (a) it sits outside a beginPub/endPub window — a crash
// inside would leave pubStarted != pubDone forever and wedge Snapshot's
// seqlock wait — and never between a directory Write and its notify
// Publish (watchers would lose the wakeup), and (b) the writer-side
// tables (index, wregs, wgens, wkeys, freeSlots) are mutually
// consistent at the point, so that compact() — which rebuilds the
// published log purely from those tables — is a complete repair for
// whatever the crash left unpublished.

import (
	"encoding/binary"
	"fmt"

	"arcreg/internal/fault"
)

// Fault point names, exported for schedules (cmd/arcstress, tests).
const (
	// FaultValuePublish sits inside a value Set's publication window,
	// between beginPub and the register write. Stall/yield only.
	FaultValuePublish = "regmap/value-publish"
	// FaultDirPrepublish sits in addKey and Delete after all writer
	// state is mutated and the log entry appended, before the
	// publication window opens. Crashing here models dying with a
	// fully prepared but unpublished directory entry.
	FaultDirPrepublish = "regmap/dir-prepublish"
	// FaultDirPublish sits inside Delete's publication window, between
	// beginPub and the directory write. Stall/yield only.
	FaultDirPublish = "regmap/dir-publish"
	// FaultSlotStore sits inside addKey's publication window, between
	// the slot-array store and the directory write — stalling here
	// widens exactly the array-ahead-of-directory race the reader's
	// generation check exists for. Stall/yield only.
	FaultSlotStore = "regmap/slot-store"
	// FaultDeleteRecycle sits in Delete after the key is unbound from
	// the writer tables and its slot recycled, before the tombstone is
	// appended. Crashing here models dying with a delete applied but
	// never published — the canonical divergence compact() repairs.
	FaultDeleteRecycle = "regmap/delete-recycle"
	// FaultCompactBuilt sits in compact after the fresh log and slot
	// snapshot are built and the writer counters bumped, before the
	// publication window opens. Crashing here models dying mid-
	// compaction; the next compact simply rebuilds.
	FaultCompactBuilt = "regmap/compact-built"
	// FaultCompactPublish sits inside compact's publication window,
	// between the slot-snapshot store and the directory write.
	// Stall/yield only.
	FaultCompactPublish = "regmap/compact-publish"
)

var (
	faultValuePublish   = fault.NewPoint(FaultValuePublish, fault.CanYield|fault.CanStall)
	faultDirPrepublish  = fault.NewPoint(FaultDirPrepublish, fault.CanYield|fault.CanStall|fault.CanCrash)
	faultDirPublish     = fault.NewPoint(FaultDirPublish, fault.CanYield|fault.CanStall)
	faultSlotStore      = fault.NewPoint(FaultSlotStore, fault.CanYield|fault.CanStall)
	faultDeleteRecycle  = fault.NewPoint(FaultDeleteRecycle, fault.CanYield|fault.CanStall|fault.CanCrash)
	faultCompactBuilt   = fault.NewPoint(FaultCompactBuilt, fault.CanYield|fault.CanStall|fault.CanCrash)
	faultCompactPublish = fault.NewPoint(FaultCompactPublish, fault.CanYield|fault.CanStall)
)

// SetDirCapacity overrides the per-shard directory-log ceiling — a test
// and chaos hook (the stress scenarios shrink it to drive compaction
// epochs in seconds instead of days). Call before any concurrent use of
// a Map; the returned function restores the previous ceiling.
func SetDirCapacity(n int) (restore func()) {
	saved := dirCapacity
	dirCapacity = n
	return func() { dirCapacity = saved }
}

// InjectDirectoryCorruption publishes a syntactically corrupt directory
// log on shard si — a chaos hook modelling a torn or bit-flipped
// publication. The published bytes extend the current log with an entry
// whose varint cannot terminate, so every reader that refreshes onto the
// publication latches ErrShardCorrupt. The writer's own tables are left
// untouched: its next publication on the shard (an append, or a
// Compact) republishes the genuine state, which is what readers repair
// onto. Same single-writer-per-shard contract as Set and Delete.
func (m *Map) InjectDirectoryCorruption(si int) error {
	if si < 0 || si >= len(m.shards) {
		return fmt.Errorf("regmap: shard %d out of range", si)
	}
	sh := m.shards[si]
	bad := append([]byte(nil), sh.dirBuf...)
	for i := 0; i < 10; i++ {
		bad = append(bad, 0xff) // an overlong varint: Uvarint reports overflow
	}
	binary.LittleEndian.PutUint64(bad[0:8], sh.epoch+1)
	binary.LittleEndian.PutUint32(bad[8:12], uint32(sh.nentries+1))
	sh.beginPub()
	err := sh.dir.Write(bad)
	sh.endPub()
	if err == nil {
		sh.notify.Publish()
	}
	return err
}
