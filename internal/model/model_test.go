package model

import (
	"strings"
	"testing"
)

// The faithful protocol must be safe over the FULL interleaving space of
// small configurations — the mechanized counterpart of the §4 proofs.
func TestFaithfulARCSafe(t *testing.T) {
	configs := []Config{
		{Readers: 1, MaxWrites: 3, MaxReadsPerReader: 3},
		{Readers: 2, MaxWrites: 2, MaxReadsPerReader: 2},
		{Readers: 2, MaxWrites: 3, MaxReadsPerReader: 2},
	}
	for _, cfg := range configs {
		res, err := Check(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.Violation != nil {
			t.Fatalf("R=%d W=%d RD=%d: %v", cfg.Readers, cfg.MaxWrites, cfg.MaxReadsPerReader, res.Violation)
		}
		if res.States < 100 {
			t.Fatalf("suspiciously small state space: %d states", res.States)
		}
		t.Logf("R=%d W=%d RD=%d: %d states, %d transitions — safe",
			cfg.Readers, cfg.MaxWrites, cfg.MaxReadsPerReader, res.States, res.Transitions)
	}
}

// Deeper single configuration (the expensive one), gated behind -short.
func TestFaithfulARCSafeDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep model check skipped in -short")
	}
	res, err := Check(Config{Readers: 2, MaxWrites: 4, MaxReadsPerReader: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	t.Logf("deep: %d states, %d transitions — safe", res.States, res.Transitions)
}

// The ablated protocol (no fast path) must still be safe: the fast path
// is an optimization, not a correctness mechanism.
func TestNoFastPathSafe(t *testing.T) {
	res, err := Check(Config{Readers: 2, MaxWrites: 3, MaxReadsPerReader: 2, DisableFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
}

// Every mutation must be caught — this is what gives the checker teeth,
// and it doubles as a mechanized justification of the paper's statement
// ordering and W1 conditions.
func TestMutationsCaught(t *testing.T) {
	cases := []struct {
		mutation Mutation
		wantKind []string // any of these kinds is an acceptable catch
		cfg      Config
	}{
		{
			// Removing "slot ≠ last_slot" lets the writer recycle the
			// published slot and overwrite what fast-path readers hold.
			mutation: MutNoLastSlotExclusion,
			wantKind: []string{"lemma-4.2", "regularity", "process-order", "new-old-inversion"},
			cfg:      Config{Readers: 2, MaxWrites: 3, MaxReadsPerReader: 3},
		},
		{
			// Removing the r_start == r_end check overwrites held slots.
			mutation: MutNoFreeCheck,
			wantKind: []string{"lemma-4.2", "regularity", "process-order", "new-old-inversion"},
			cfg:      Config{Readers: 2, MaxWrites: 3, MaxReadsPerReader: 3},
		},
		{
			// Acquiring before releasing lets a reader transiently hold
			// two slots, overflowing the N+2 budget.
			mutation: MutAcquireBeforeRelease,
			wantKind: []string{"lemma-4.1", "lemma-4.2", "regularity"},
			cfg:      Config{Readers: 2, MaxWrites: 4, MaxReadsPerReader: 3},
		},
		{
			// Freezing before publishing freezes a stale counter: slots
			// look free while readers still hold them.
			mutation: MutFreezeBeforePublish,
			wantKind: []string{"lemma-4.1", "lemma-4.2", "regularity", "process-order", "new-old-inversion"},
			cfg:      Config{Readers: 2, MaxWrites: 4, MaxReadsPerReader: 3},
		},
	}
	for _, c := range cases {
		t.Run(c.mutation.String(), func(t *testing.T) {
			cfg := c.cfg
			cfg.Mutation = c.mutation
			res, err := Check(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation == nil {
				t.Fatalf("mutation %s not caught over %d states — checker has no teeth or the clause is not load-bearing",
					c.mutation, res.States)
			}
			ok := false
			for _, k := range c.wantKind {
				if res.Violation.Kind == k {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("mutation %s caught as %q, expected one of %v (%s)",
					c.mutation, res.Violation.Kind, c.wantKind, res.Violation.Desc)
			}
			t.Logf("%s caught: %v", c.mutation, res.Violation)
		})
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Readers: 0, MaxWrites: 1, MaxReadsPerReader: 1},
		{Readers: 7, MaxWrites: 1, MaxReadsPerReader: 1},
		{Readers: 1, MaxWrites: 0, MaxReadsPerReader: 1},
		{Readers: 1, MaxWrites: 1, MaxReadsPerReader: 0},
	}
	for _, cfg := range bad {
		if _, err := Check(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestStateBudget(t *testing.T) {
	_, err := Check(Config{Readers: 2, MaxWrites: 3, MaxReadsPerReader: 3, MaxStates: 100})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("tiny budget not enforced: %v", err)
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Kind: "lemma-4.1", Depth: 7, Desc: "boom"}
	msg := v.Error()
	for _, want := range []string{"lemma-4.1", "depth 7", "boom"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q missing %q", msg, want)
		}
	}
}

func TestMutationStrings(t *testing.T) {
	for m := MutNone; m <= MutFreezeBeforePublish; m++ {
		if m.String() == "unknown" {
			t.Fatalf("mutation %d has no name", m)
		}
	}
}
