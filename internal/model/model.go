// Package model is an explicit-state model checker for the ARC protocol:
// it exhaustively enumerates every interleaving of a small configuration
// (one writer, R readers, R+2 slots, a bounded number of operations) at
// the granularity of individual atomic actions, and checks the safety
// properties behind the paper's §4 proofs on every reachable state:
//
//   - Lemma 4.1 — the writer's free-slot search never fails;
//   - Lemma 4.2 — no reader ever observes a slot while the writer is
//     copying into it (value reads are modelled as two steps bracketing
//     the buffer access, so any overlapping write is caught as a torn
//     read, exactly like a multi-word access in the real system);
//   - Regularity (Theorem 4.3) — every read returns either the last
//     write completed before it started or a concurrent write's value;
//   - No new-old inversion (Theorem 4.4) — a read never returns a value
//     older than one returned by any read that completed before it
//     started (per-process order is the special case of a reader's own
//     previous read).
//
// Where the package-level tests of internal/arc sample schedules, the
// model checker covers all of them — for a bounded configuration. It also
// checks deliberately broken protocol mutants (wrong statement orders,
// missing exclusions) and demonstrates that each mutation is caught,
// which validates both the paper's design decisions and the checker
// itself.
//
// Modelling choices, and why they are sound:
//
//   - The W1 slot scan executes as one step. In the real algorithm the
//     scan is a sequence of loads, but a slot observed free cannot be
//     re-acquired before the writer publishes it (readers acquire only
//     the current slot), so collapsing the scan loses no violations. The
//     scan branches nondeterministically over every eligible slot.
//   - The value copy is two steps (begin/end) guarding a `writing` flag;
//     the value read is two steps recording (version, writing) at both
//     ends. A read is torn iff the flag was set at either end or the
//     version changed in between — the standard two-step simulation of
//     multi-word access.
//   - Reads and writes are bounded per run; counters are bounded by
//     construction (presence counts never exceed R).
package model

import (
	"fmt"
)

// Config bounds the explored configuration.
type Config struct {
	// Readers is R; the model uses R+2 slots (the paper's bound).
	Readers int
	// MaxWrites bounds the writer's operations.
	MaxWrites int
	// MaxReadsPerReader bounds each reader's operations.
	MaxReadsPerReader int
	// Mutation selects a protocol variant (MutNone = faithful ARC).
	Mutation Mutation
	// DisableFastPath explores the ablated protocol (every read
	// releases and re-acquires).
	DisableFastPath bool
	// MaxStates aborts exploration beyond this many states (safety net;
	// 0 means a generous default).
	MaxStates int
}

// Mutation selects a deliberately broken protocol variant, used to prove
// the checker detects real bugs.
type Mutation int

const (
	// MutNone is the faithful ARC protocol.
	MutNone Mutation = iota
	// MutNoLastSlotExclusion lets W1 pick the slot that is currently
	// published (the paper's "slot ≠ last_slot" clause removed). The
	// writer can then overwrite the snapshot fast-path readers hold.
	MutNoLastSlotExclusion
	// MutNoFreeCheck lets W1 pick any slot other than last_slot without
	// checking r_start == r_end — overwriting snapshots readers still
	// hold.
	MutNoFreeCheck
	// MutAcquireBeforeRelease swaps R3 and R4: the reader acquires the
	// new slot before releasing the old one, transiently holding two
	// slots and breaking the Σ(r_start−r_end) ≤ N accounting that
	// Lemma 4.1 needs.
	MutAcquireBeforeRelease
	// MutFreezeBeforePublish swaps W2 and W3: the writer freezes the
	// retired slot's r_start before publishing the new slot, freezing a
	// stale counter value.
	MutFreezeBeforePublish
)

// String implements fmt.Stringer.
func (m Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutNoLastSlotExclusion:
		return "no-last-slot-exclusion"
	case MutNoFreeCheck:
		return "no-free-check"
	case MutAcquireBeforeRelease:
		return "acquire-before-release"
	case MutFreezeBeforePublish:
		return "freeze-before-publish"
	}
	return "unknown"
}

// Program counters.
type wpc uint8

const (
	wIdle      wpc = iota
	wCopyEnd       // copy in progress; next step completes it
	wReset         // counters reset pending
	wPublish       // W2 pending
	wFreeze        // W3 pending
	wFreezeAlt     // mutation order: freeze before publish
	wPublishAlt
	wDone
)

type rpc uint8

const (
	rIdle    rpc = iota
	rR1          // loaded nothing yet; next step is the R1 current load
	rRelease     // R3 pending (slow path, holding a slot)
	rAcquire     // R4 pending
	rReadBeg     // first half of the value read
	rReadEnd     // second half of the value read
	rRelLate     // mutation order: release after acquire
	rDone
)

// maxSlots bounds the fixed-size state arrays (R ≤ 6 ⇒ slots ≤ 8).
const maxSlots = 8

// maxReaders bounds the reader arrays.
const maxReaders = 6

// slotState is one register slot in the model.
type slotState struct {
	rStart  uint8
	rEnd    uint8
	ver     uint8 // version of the value stored
	writing bool  // writer mid-copy
}

// readerState is one reader process.
type readerState struct {
	pc        rpc
	lastIndex uint8 // slot held; noHold if none
	curIdx    uint8 // index loaded at R1/R4
	begVer    uint8 // version observed at read-begin
	begWrite  bool  // writing flag observed at read-begin
	reads     uint8 // operations completed
	// Atomicity bookkeeping, recorded at operation start:
	floorWrite uint8 // last write completed before this read started
	floorRead  uint8 // max version returned by reads completed before
	lastSeen   uint8 // per-process monotonicity
}

// noHold marks a reader holding no slot.
const noHold = uint8(0xFF)

// state is one global state. It is a value type usable as a map key.
type state struct {
	slots    [maxSlots]slotState
	curIdx   uint8 // current word: slot index
	curCnt   uint8 // current word: presence counter
	writer   wpc
	wSlot    uint8 // slot chosen by W1
	wVer     uint8 // version being written
	wOldIdx  uint8 // index retired by W2
	wOldCnt  uint8 // counter retired by W2
	lastSlot uint8
	writes   uint8
	readers  [maxReaders]readerState
	// Global atomicity bookkeeping.
	completedWrites uint8 // version of the last COMPLETED write
	maxReadDone     uint8 // max version returned by any completed read
}

// Violation describes a property breach found on some reachable path.
type Violation struct {
	Kind  string
	Depth int
	Desc  string
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("model: %s at depth %d: %s", v.Kind, v.Depth, v.Desc)
}

// Result summarizes an exploration.
type Result struct {
	States      int
	Transitions int
	Violation   *Violation // nil when every reachable state is safe
}

// Check explores the configuration exhaustively (BFS over the state
// graph) and returns the first violation found, if any.
func Check(cfg Config) (Result, error) {
	if cfg.Readers < 1 || cfg.Readers > maxReaders {
		return Result{}, fmt.Errorf("model: Readers must be in [1,%d]", maxReaders)
	}
	if cfg.Readers+2 > maxSlots {
		return Result{}, fmt.Errorf("model: too many slots")
	}
	if cfg.MaxWrites < 1 || cfg.MaxWrites > 200 {
		return Result{}, fmt.Errorf("model: MaxWrites must be in [1,200]")
	}
	if cfg.MaxReadsPerReader < 1 || cfg.MaxReadsPerReader > 200 {
		return Result{}, fmt.Errorf("model: MaxReadsPerReader must be in [1,200]")
	}
	if cfg.MaxStates == 0 {
		cfg.MaxStates = 20_000_000
	}
	e := &explorer{cfg: cfg, nslots: cfg.Readers + 2}

	var init state
	init.curIdx = 0
	init.curCnt = 0
	init.lastSlot = 0
	for i := range init.readers {
		init.readers[i].lastIndex = noHold
	}
	// Slot 0 holds version 0 (the initial value); writes produce 1,2,…

	e.visited = make(map[state]struct{}, 1<<16)
	queue := []state{init}
	e.visited[init] = struct{}{}
	depth := 0

	for len(queue) > 0 {
		next := queue[:0:0]
		for _, s := range queue {
			succs, viol := e.successors(s, depth)
			if viol != nil {
				return Result{States: len(e.visited), Transitions: e.transitions, Violation: viol}, nil
			}
			for _, ns := range succs {
				if _, seen := e.visited[ns]; !seen {
					if len(e.visited) >= cfg.MaxStates {
						return Result{}, fmt.Errorf("model: state budget %d exhausted at depth %d", cfg.MaxStates, depth)
					}
					e.visited[ns] = struct{}{}
					next = append(next, ns)
				}
			}
		}
		queue = next
		depth++
	}
	return Result{States: len(e.visited), Transitions: e.transitions}, nil
}

type explorer struct {
	cfg         Config
	nslots      int
	visited     map[state]struct{}
	transitions int
}

// successors enumerates every enabled atomic step from s.
func (e *explorer) successors(s state, depth int) ([]state, *Violation) {
	var out []state
	add := func(ns state) {
		e.transitions++
		out = append(out, ns)
	}

	// ----- Writer steps -----
	switch s.writer {
	case wIdle:
		if s.writes < uint8(e.cfg.MaxWrites) {
			// W1: choose a free slot. Branch over all eligible slots.
			found := false
			for idx := 0; idx < e.nslots; idx++ {
				sl := s.slots[idx]
				switch e.cfg.Mutation {
				case MutNoLastSlotExclusion:
					if sl.rStart != sl.rEnd {
						continue
					}
				case MutNoFreeCheck:
					if uint8(idx) == s.lastSlot {
						continue
					}
				default:
					if uint8(idx) == s.lastSlot || sl.rStart != sl.rEnd {
						continue
					}
				}
				found = true
				ns := s
				ns.wSlot = uint8(idx)
				ns.wVer = s.writes + 1
				ns.slots[idx].writing = true // copy begins
				ns.writer = wCopyEnd
				add(ns)
			}
			if !found {
				return nil, &Violation{
					Kind:  "lemma-4.1",
					Depth: depth,
					Desc:  "writer found no free slot (free-slot search failed)",
				}
			}
		}
	case wCopyEnd:
		ns := s
		ns.slots[s.wSlot].writing = false
		ns.slots[s.wSlot].ver = s.wVer
		ns.writer = wReset
		add(ns)
	case wReset:
		ns := s
		ns.slots[s.wSlot].rStart = 0
		ns.slots[s.wSlot].rEnd = 0
		if e.cfg.Mutation == MutFreezeBeforePublish {
			ns.writer = wFreezeAlt
		} else {
			ns.writer = wPublish
		}
		add(ns)
	case wPublish: // W2
		ns := s
		ns.wOldIdx = s.curIdx
		ns.wOldCnt = s.curCnt
		ns.curIdx = s.wSlot
		ns.curCnt = 0
		ns.writer = wFreeze
		add(ns)
	case wFreeze: // W3
		ns := s
		ns.slots[s.wOldIdx].rStart = s.wOldCnt
		ns.lastSlot = s.wSlot
		ns.writes = s.writes + 1
		ns.completedWrites = s.writes + 1
		ns.writer = wIdle
		add(ns)
	case wFreezeAlt: // mutation: freeze with the PRE-publish counter
		ns := s
		ns.slots[s.curIdx].rStart = s.curCnt
		ns.writer = wPublishAlt
		add(ns)
	case wPublishAlt:
		ns := s
		ns.curIdx = s.wSlot
		ns.curCnt = 0
		ns.lastSlot = s.wSlot
		ns.writes = s.writes + 1
		ns.completedWrites = s.writes + 1
		ns.writer = wIdle
		add(ns)
	}

	// ----- Reader steps -----
	for ri := 0; ri < e.cfg.Readers; ri++ {
		r := s.readers[ri]
		switch r.pc {
		case rIdle:
			if r.reads < uint8(e.cfg.MaxReadsPerReader) {
				ns := s
				nr := &ns.readers[ri]
				nr.floorWrite = s.completedWrites
				nr.floorRead = s.maxReadDone
				nr.pc = rR1
				add(ns)
			}
		case rR1: // load current; branch on fast path
			ns := s
			nr := &ns.readers[ri]
			nr.curIdx = s.curIdx
			if !e.cfg.DisableFastPath && r.lastIndex != noHold && s.curIdx == r.lastIndex {
				nr.pc = rReadBeg // fast path: straight to the value read
			} else if e.cfg.Mutation == MutAcquireBeforeRelease {
				nr.pc = rAcquire
			} else if r.lastIndex != noHold {
				nr.pc = rRelease
			} else {
				nr.pc = rAcquire
			}
			add(ns)
		case rRelease: // R3
			ns := s
			nr := &ns.readers[ri]
			ns.slots[r.lastIndex].rEnd++
			nr.lastIndex = noHold
			nr.pc = rAcquire
			add(ns)
		case rAcquire: // R4: counter++ and read index atomically
			ns := s
			nr := &ns.readers[ri]
			ns.curCnt = s.curCnt + 1
			nr.curIdx = ns.curIdx
			if e.cfg.Mutation == MutAcquireBeforeRelease && r.lastIndex != noHold {
				// The old hold is released AFTER acquiring (the mutation).
				nr.pc = rRelLate
				nr.begVer = nr.lastIndex // stash the old slot index
				nr.lastIndex = ns.curIdx
			} else {
				nr.lastIndex = ns.curIdx
				nr.pc = rReadBeg
			}
			add(ns)
		case rRelLate: // mutation: late R3
			ns := s
			nr := &ns.readers[ri]
			ns.slots[r.begVer].rEnd++ // begVer stashed the old slot
			nr.pc = rReadBeg
			add(ns)
		case rReadBeg: // first half of the multi-word value read
			ns := s
			nr := &ns.readers[ri]
			nr.begVer = s.slots[r.lastIndex].ver
			nr.begWrite = s.slots[r.lastIndex].writing
			nr.pc = rReadEnd
			add(ns)
		case rReadEnd: // second half; all assertions fire here
			sl := s.slots[r.lastIndex]
			if r.begWrite || sl.writing || sl.ver != r.begVer {
				return nil, &Violation{
					Kind:  "lemma-4.2",
					Depth: depth,
					Desc: fmt.Sprintf("reader %d observed slot %d mid-write (torn read: begVer=%d endVer=%d begW=%v endW=%v)",
						ri, r.lastIndex, r.begVer, sl.ver, r.begWrite, sl.writing),
				}
			}
			v := sl.ver
			if v < r.floorWrite {
				return nil, &Violation{
					Kind:  "regularity",
					Depth: depth,
					Desc: fmt.Sprintf("reader %d returned version %d although write %d completed before the read started",
						ri, v, r.floorWrite),
				}
			}
			if v > s.writes+1 { // at most one write in flight
				return nil, &Violation{
					Kind:  "no-future",
					Depth: depth,
					Desc:  fmt.Sprintf("reader %d returned version %d; only %d writes started", ri, v, s.writes+1),
				}
			}
			if v < r.floorRead {
				return nil, &Violation{
					Kind:  "new-old-inversion",
					Depth: depth,
					Desc: fmt.Sprintf("reader %d returned version %d although an earlier-finished read returned %d",
						ri, v, r.floorRead),
				}
			}
			if v < r.lastSeen {
				return nil, &Violation{
					Kind:  "process-order",
					Depth: depth,
					Desc:  fmt.Sprintf("reader %d returned %d after previously returning %d", ri, v, r.lastSeen),
				}
			}
			ns := s
			nr := &ns.readers[ri]
			nr.lastSeen = v
			nr.reads = r.reads + 1
			if v > ns.maxReadDone {
				ns.maxReadDone = v
			}
			nr.pc = rIdle
			add(ns)
		}
	}
	return out, nil
}
