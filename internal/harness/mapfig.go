package harness

// The keyed-workload experiment: deployments against the regmap sharded
// snapshot map (one writer, N−1 readers, K keys with Zipf popularity),
// swept over key counts × thread counts. This is the "large-scale data
// sharing" figure the paper's title promises and its evaluation never
// shows: the register composed into an addressable store, with the
// fresh-gated Get keeping the hot path at zero RMW instructions no
// matter how many keys the map holds.

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"arcreg/internal/membuf"
	"arcreg/internal/metrics"
	"arcreg/internal/regmap"
	"arcreg/internal/steal"
	"arcreg/internal/workload"
)

// MapRunConfig describes one measured keyed deployment — one cell of the
// map figure.
type MapRunConfig struct {
	// Threads is the total worker count: 1 writer + Threads−1 readers.
	Threads int
	// Keys is the number of pre-populated keys.
	Keys int
	// Shards is the map's shard count (0 = regmap default).
	Shards int
	// ValueSize is the per-key value size in bytes.
	ValueSize int
	// Zipf is the key-popularity exponent (>1 = skewed, else uniform).
	Zipf float64
	// MissEvery > 0 makes every Nth Get target an absent key.
	MissEvery int
	// ChurnEvery > 0 makes every Nth Set create a brand-new key,
	// re-publishing that shard's directory under the readers.
	ChurnEvery int
	// DeleteEvery > 0 enables the delete-mix: every Nth writer operation
	// deletes or re-creates a lifecycle-pool key, publishing tombstones
	// under the readers.
	DeleteEvery int
	// SnapshotEvery > 0 makes every Nth reader operation a full
	// multi-key Snapshot instead of a Get.
	SnapshotEvery int
	// Mode selects dummy or processing operation bodies.
	Mode workload.Mode
	// Duration is the measurement window; Warmup precedes it.
	Duration time.Duration
	Warmup   time.Duration
	// StealFraction > 0 enables the virtualized-platform simulation
	// (same injector as the register deployments).
	StealFraction float64
	// StealSlice overrides the steal event length (0 = default).
	StealSlice time.Duration
	// Pin binds workers to CPUs round-robin when supported.
	Pin bool
	// LatencySample records every Nth operation's latency (0 = off).
	LatencySample int
	// Seed fixes the key-popularity and steal schedules.
	Seed uint64
	// DynamicValues selects exact-size allocation per Set.
	DynamicValues bool
}

func (c *MapRunConfig) defaults() error {
	if c.Threads < 2 {
		return fmt.Errorf("harness: map run needs ≥ 2 threads (1 writer + readers), got %d", c.Threads)
	}
	if c.Keys <= 0 {
		c.Keys = 64
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 1024
	}
	if c.ValueSize < membuf.MinPayload {
		c.ValueSize = membuf.MinPayload
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Warmup < 0 {
		return errors.New("harness: negative warmup")
	}
	if c.Warmup == 0 {
		c.Warmup = 100 * time.Millisecond
	}
	return nil
}

// MapResult aggregates one keyed run.
type MapResult struct {
	Config  MapRunConfig
	GetOps  uint64
	SetOps  uint64
	Elapsed time.Duration
	// ReadStat aggregates every reader handle's map-level counters; the
	// headline ratio is ReadStat.RMW / ReadStat.Ops — rmw/get.
	ReadStat regmap.ReadStats
	// WriteStat is the map's publish-side aggregate (value + directory).
	WriteStat regmap.WriteStats
	// KeysCreated counts churn and lifecycle keys added during the run.
	KeysCreated uint64
	// KeysDeleted counts tombstones published during the run.
	KeysDeleted uint64
	// Snapshots counts multi-key Snapshots taken during the run.
	Snapshots uint64
	// Steal aggregates injected CPU-steal events (virtualized runs).
	Steal steal.VCPUStats
	// GetLat and SetLat hold sampled operation latencies when
	// LatencySample is set.
	GetLat metrics.Histogram
	SetLat metrics.Histogram
	// Sink defeats dead-code elimination.
	Sink uint64
}

// Throughput returns the combined Get+Set rate over the measured window.
func (r MapResult) Throughput() metrics.Throughput {
	return metrics.Throughput{Ops: r.GetOps + r.SetOps, Elapsed: r.Elapsed}
}

// Mops is shorthand for Throughput().Mops().
func (r MapResult) Mops() float64 { return r.Throughput().Mops() }

// RMWPerGet is the average RMW instructions per Get — ~0 when the
// fresh-gate holds through the map layer.
func (r MapResult) RMWPerGet() float64 {
	if r.ReadStat.Ops == 0 {
		return 0
	}
	return float64(r.ReadStat.RMW) / float64(r.ReadStat.Ops)
}

// RunMap executes one measured keyed deployment: the map is
// pre-populated with cfg.Keys keys, then 1 writer Sets and Threads−1
// readers Get under Zipf popularity for the configured window.
func RunMap(cfg MapRunConfig) (MapResult, error) {
	if err := cfg.defaults(); err != nil {
		return MapResult{}, err
	}
	readers := cfg.Threads - 1

	m, err := regmap.New(regmap.Config{
		Shards:        cfg.Shards,
		MaxReaders:    readers,
		MaxValueSize:  cfg.ValueSize,
		DynamicValues: cfg.DynamicValues,
	})
	if err != nil {
		return MapResult{}, err
	}
	keys := make([]string, cfg.Keys)
	seed := make([]byte, cfg.ValueSize)
	membuf.Encode(seed, 0)
	for i := range keys {
		keys[i] = workload.KeyName(i)
		if err := m.Set(keys[i], seed); err != nil {
			return MapResult{}, fmt.Errorf("harness: populate %q: %w", keys[i], err)
		}
	}

	env, err := newLoopEnv(cfg.Threads, cfg.Pin, cfg.LatencySample, steal.Config{
		Fraction: cfg.StealFraction,
		Slice:    cfg.StealSlice,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return MapResult{}, err
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		res      MapResult
		workErrs []error
	)
	res.Config = cfg

	worker := func(id int, body func() error, cleanup func(), done func(ops uint64, lat *metrics.Histogram)) {
		defer wg.Done()
		if cleanup != nil {
			defer cleanup()
		}
		ops, lat, vs, err := env.loop(id, body)
		mu.Lock()
		defer mu.Unlock()
		res.Steal.Steals += vs.Steals
		res.Steal.Stolen += vs.Stolen
		res.Steal.Ticks += vs.Ticks
		if err != nil {
			workErrs = append(workErrs, fmt.Errorf("map worker %d: %w", id, err))
			return
		}
		done(ops, &lat)
	}

	// Worker 0: the map's writer.
	sw := workload.NewMapSetWork(m, keys,
		workload.NewKeyChooser(cfg.Keys, cfg.Zipf, cfg.Seed), cfg.Mode, cfg.ValueSize, cfg.ChurnEvery).
		WithDeletes(cfg.DeleteEvery, 0)
	wg.Add(1)
	go worker(0, sw.Do, nil, func(ops uint64, lat *metrics.Histogram) {
		res.SetOps += ops
		res.SetLat.Merge(lat)
		res.KeysCreated += sw.Created()
		res.KeysDeleted += sw.Deleted()
	})

	// Workers 1..Threads−1: readers, one map handle each.
	for i := 0; i < readers; i++ {
		rd, err := m.NewReader()
		if err != nil {
			env.abort()
			wg.Wait()
			return MapResult{}, fmt.Errorf("harness: map reader %d: %w", i, err)
		}
		rw := workload.NewMapGetWork(rd, keys,
			workload.NewKeyChooser(cfg.Keys, cfg.Zipf, cfg.Seed+uint64(i)+1), cfg.Mode, cfg.MissEvery).
			WithSnapshots(cfg.SnapshotEvery)
		wg.Add(1)
		go worker(1+i, rw.Do,
			func() { rd.Close() },
			func(ops uint64, lat *metrics.Histogram) {
				res.GetOps += ops
				res.GetLat.Merge(lat)
				res.Sink += rw.Sink()
				st := rd.Stats()
				res.ReadStat.Add(st.ReadStats)
				res.ReadStat.Misses += st.Misses
				res.ReadStat.DirRefreshes += st.DirRefreshes
				res.ReadStat.Snapshots += st.Snapshots
				res.ReadStat.SnapshotRetries += st.SnapshotRetries
				res.ReadStat.Repairs += st.Repairs
				res.Snapshots += rw.Snapshots()
			})
	}

	elapsed := env.window(cfg.Warmup, cfg.Duration)
	wg.Wait()

	if len(workErrs) > 0 {
		return MapResult{}, errors.Join(workErrs...)
	}
	res.Elapsed = elapsed
	res.WriteStat = m.WriteStats()
	return res, nil
}

// MapFigure describes the keyed-workload sweep: key counts × thread
// counts at a fixed value size and popularity skew.
type MapFigure struct {
	ID      string
	Caption string
	// Threads and Keys span the sweep.
	Threads []int
	Keys    []int
	// ValueSize, Zipf, Shards, MissEvery, ChurnEvery, DeleteEvery,
	// SnapshotEvery, Mode apply to every cell.
	ValueSize     int
	Zipf          float64
	Shards        int
	MissEvery     int
	ChurnEvery    int
	DeleteEvery   int
	SnapshotEvery int
	Mode          workload.Mode
	// StealFraction > 0 simulates the virtualized host in every cell.
	StealFraction float64
	// Pin requests CPU pinning in the physical regime.
	Pin bool
	// Duration and Warmup apply to every cell.
	Duration time.Duration
	Warmup   time.Duration
	// Seed fixes key-popularity schedules.
	Seed uint64
	// DynamicValues selects exact-size value allocation.
	DynamicValues bool
}

// FigMap is the keyed-workload figure: thread sweep × key-count sweep on
// the sharded snapshot map, Zipf(1.2) key popularity, with light
// directory churn and a light delete-mix so the sweep also covers key
// creation and tombstone publication under readers.
func FigMap() MapFigure {
	return MapFigure{
		ID:         "map",
		Caption:    "Sharded snapshot map: keyed Gets under Zipf popularity (regmap)",
		Threads:    []int{2, 4, 8, 16},
		Keys:       []int{16, 256, 4096},
		ValueSize:  1024,
		Zipf:       1.2,
		Shards:     16,
		ChurnEvery: 4096,
		// Prime, so it almost never collides with ChurnEvery ticks — on a
		// collision the delete-mix branch wins and the churn key is
		// skipped (see workload.MapSetWork.Do).
		DeleteEvery: 2731,
		Mode:        workload.Dummy,
		Duration:    time.Second,
		Warmup:      200 * time.Millisecond,
		Seed:        5,
	}
}

// Scale shrinks the figure for smoke tests and CI, mirroring
// Figure.Scale: thread counts capped, key sweep thinned, windows
// reduced.
func (f MapFigure) Scale(maxThreads int, duration, warmup time.Duration) MapFigure {
	if maxThreads > 0 {
		var th []int
		for _, t := range f.Threads {
			if t <= maxThreads {
				th = append(th, t)
			}
		}
		if len(th) == 0 {
			th = []int{max(2, maxThreads)}
		}
		f.Threads = th
	}
	if len(f.Keys) > 2 {
		f.Keys = f.Keys[:2]
	}
	if duration > 0 {
		f.Duration = duration
	}
	if warmup > 0 {
		f.Warmup = warmup
	}
	return f
}

// MapCell is one measured point of the map figure.
type MapCell struct {
	Threads int
	Keys    int
	Result  MapResult
	Err     error
}

// MapFigureData is the measured content of the map figure.
type MapFigureData struct {
	Figure MapFigure
	Cells  []MapCell
}

// MapProgress receives cell-completion callbacks (nil to disable).
type MapProgress func(done, total int, c MapCell)

// Run measures every cell of the figure.
func (f MapFigure) Run(progress MapProgress) (MapFigureData, error) {
	data := MapFigureData{Figure: f}
	total := len(f.Keys) * len(f.Threads)
	done := 0
	for _, keys := range f.Keys {
		for _, th := range f.Threads {
			cell := MapCell{Threads: th, Keys: keys}
			res, err := RunMap(MapRunConfig{
				Threads:       th,
				Keys:          keys,
				Shards:        f.Shards,
				ValueSize:     f.ValueSize,
				Zipf:          f.Zipf,
				MissEvery:     f.MissEvery,
				ChurnEvery:    f.ChurnEvery,
				DeleteEvery:   f.DeleteEvery,
				SnapshotEvery: f.SnapshotEvery,
				Mode:          f.Mode,
				StealFraction: f.StealFraction,
				Pin:           f.Pin,
				Duration:      f.Duration,
				Warmup:        f.Warmup,
				Seed:          f.Seed,
				DynamicValues: f.DynamicValues,
			})
			if err != nil {
				return data, fmt.Errorf("figure %s (%d keys, %d threads): %w", f.ID, keys, th, err)
			}
			cell.Result = res
			data.Cells = append(data.Cells, cell)
			done++
			if progress != nil {
				progress(done, total, cell)
			}
		}
	}
	return data, nil
}

// RenderTable writes the figure as two ASCII tables — throughput
// (Mops/s) and rmw/get — rows are thread counts, columns key counts.
func (d *MapFigureData) RenderTable(w io.Writer) {
	f := d.Figure
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Caption)
	fmt.Fprintf(w, "mode=%s value=%s zipf=%.2f shards=%d churn=1/%d deletes=1/%d snapshots=1/%d steal=%.0f%% duration=%v\n",
		f.Mode, fmtSize(f.ValueSize), f.Zipf, f.Shards, f.ChurnEvery, f.DeleteEvery, f.SnapshotEvery, f.StealFraction*100, f.Duration)
	render := func(title string, metric func(MapResult) float64, format string) {
		fmt.Fprintf(w, "\n-- %s --\n", title)
		fmt.Fprintf(w, "%8s", "threads")
		for _, k := range f.Keys {
			fmt.Fprintf(w, " %14s", fmt.Sprintf("%d keys", k))
		}
		fmt.Fprintln(w)
		for _, th := range f.Threads {
			fmt.Fprintf(w, "%8d", th)
			for _, k := range f.Keys {
				c := d.cell(th, k)
				if c == nil {
					fmt.Fprintf(w, " %14s", "-")
					continue
				}
				fmt.Fprintf(w, format, metric(c.Result))
			}
			fmt.Fprintln(w)
		}
	}
	render("throughput (Mops/s)", MapResult.Mops, " %14.2f")
	render("rmw/get", MapResult.RMWPerGet, " %14.4f")
	fmt.Fprintln(w)
}

// RenderCSV writes the figure in long form.
func (d *MapFigureData) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, "figure,keys,threads,mops,get_ops,set_ops,rmw,fastpath,misses,dir_refreshes,keys_created,keys_deleted,snapshots,snapshot_retries,compactions,dir_bytes,repairs")
	for _, c := range d.Cells {
		if c.Err != nil {
			continue
		}
		r := c.Result
		fmt.Fprintf(w, "%s,%d,%d,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			d.Figure.ID, c.Keys, c.Threads, r.Mops(),
			r.GetOps, r.SetOps, r.ReadStat.RMW, r.ReadStat.FastPath,
			r.ReadStat.Misses, r.ReadStat.DirRefreshes, r.KeysCreated,
			r.KeysDeleted, r.Snapshots, r.ReadStat.SnapshotRetries,
			r.WriteStat.Compactions, r.WriteStat.DirBytes, r.ReadStat.Repairs)
	}
}

func (d *MapFigureData) cell(threads, keys int) *MapCell {
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Threads == threads && c.Keys == keys {
			return c
		}
	}
	return nil
}
