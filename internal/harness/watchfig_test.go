package harness

import (
	"strings"
	"testing"
	"time"
)

// TestRunWatchModes smoke-runs both subscriber disciplines and checks
// the cells are internally consistent: publications flow, every change
// observation carries a latency sample, and the watch series observes
// at least as many changes as... (on a 1-CPU host schedules vary, so
// the assertions stay structural, not quantitative).
func TestRunWatchModes(t *testing.T) {
	for _, cfg := range []WatchRunConfig{
		{Mode: ModeWatch, Watchers: 2, PublishEvery: 200 * time.Microsecond,
			ValueSize: 32, Duration: 100 * time.Millisecond, Warmup: 20 * time.Millisecond},
		{Mode: ModePoll, PollEvery: 100 * time.Microsecond, Watchers: 2,
			PublishEvery: 200 * time.Microsecond, ValueSize: 32,
			Duration: 100 * time.Millisecond, Warmup: 20 * time.Millisecond},
	} {
		res, err := RunWatch(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Mode, err)
		}
		if res.Published == 0 {
			t.Errorf("%s: no publications in the measured window", cfg.Mode)
		}
		if res.Observed == 0 {
			t.Errorf("%s: watchers observed nothing", cfg.Mode)
		}
		if res.Latency.Count() != res.Observed {
			t.Errorf("%s: %d latency samples for %d observations", cfg.Mode, res.Latency.Count(), res.Observed)
		}
	}
}

// TestRunWatchSlowConsumerBackpressure pins the backpressure columns:
// a deliberately slow consumer against a fast publish cadence must
// show conflation (publications skipped forever) and non-zero lag in
// the mid-window samples, while delivery still makes progress.
func TestRunWatchSlowConsumerBackpressure(t *testing.T) {
	res, err := RunWatch(WatchRunConfig{
		Mode:          ModeWatch,
		Watchers:      2,
		SlowConsumers: 1,
		SlowDelay:     5 * time.Millisecond,
		PublishEvery:  100 * time.Microsecond,
		ValueSize:     32,
		Duration:      300 * time.Millisecond,
		Warmup:        20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Published == 0 || res.Observed == 0 {
		t.Fatalf("no traffic: published=%d observed=%d", res.Published, res.Observed)
	}
	if res.Conflated == 0 {
		t.Errorf("slow consumer conflated nothing (published=%d observed=%d)",
			res.Published, res.Observed)
	}
	if res.LagMax == 0 {
		t.Errorf("slow consumer showed no lag in any mid-window sample (published=%d)",
			res.Published)
	}
	if res.Wakeups == 0 {
		t.Error("parked watchers took no wakeups")
	}
}

// TestWatchFigureRender runs the scaled figure end to end and checks
// the table carries every series.
func TestWatchFigureRender(t *testing.T) {
	fig := FigWatch().Scale(2, 50*time.Millisecond, 10*time.Millisecond)
	data, err := fig.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var tbl, csv strings.Builder
	data.RenderTable(&tbl)
	data.RenderCSV(&csv)
	for _, want := range []string{"watch", "poll-100µs", "poll-1ms", "lat p99", "lag max", "conflated"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}
	if got := strings.Count(csv.String(), "\n"); got != len(data.Cells)+1 {
		t.Errorf("CSV has %d lines, want %d cells + header", got, len(data.Cells))
	}
}
