package harness

import (
	"strings"
	"testing"
	"time"
)

// TestRunWatchModes smoke-runs both subscriber disciplines and checks
// the cells are internally consistent: publications flow, every change
// observation carries a latency sample, and the watch series observes
// at least as many changes as... (on a 1-CPU host schedules vary, so
// the assertions stay structural, not quantitative).
func TestRunWatchModes(t *testing.T) {
	for _, cfg := range []WatchRunConfig{
		{Mode: ModeWatch, Watchers: 2, PublishEvery: 200 * time.Microsecond,
			ValueSize: 32, Duration: 100 * time.Millisecond, Warmup: 20 * time.Millisecond},
		{Mode: ModeWatch, Watchers: 4, FanArity: 2, FanDepth: 2,
			PublishEvery: 200 * time.Microsecond, ValueSize: 32,
			Duration: 100 * time.Millisecond, Warmup: 20 * time.Millisecond},
		{Mode: ModePoll, PollEvery: 100 * time.Microsecond, Watchers: 2,
			PublishEvery: 200 * time.Microsecond, ValueSize: 32,
			Duration: 100 * time.Millisecond, Warmup: 20 * time.Millisecond},
	} {
		label := string(cfg.Mode)
		if cfg.FanArity > 0 {
			label += "-tree"
		}
		res, err := RunWatch(cfg)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.Published == 0 {
			t.Errorf("%s: no publications in the measured window", label)
		}
		if res.Observed == 0 {
			t.Errorf("%s: watchers observed nothing", label)
		}
		if res.Latency.Count() != res.Observed {
			t.Errorf("%s: %d latency samples for %d observations", label, res.Latency.Count(), res.Observed)
		}
		if res.PubOverhead.Count() != res.Published {
			t.Errorf("%s: %d publisher-overhead samples for %d publications",
				label, res.PubOverhead.Count(), res.Published)
		}
	}
}

// TestRunWatchSlowConsumerBackpressure pins the backpressure columns:
// a deliberately slow consumer against a fast publish cadence must
// show conflation (publications skipped forever) and non-zero lag in
// the mid-window samples, while delivery still makes progress.
func TestRunWatchSlowConsumerBackpressure(t *testing.T) {
	res, err := RunWatch(WatchRunConfig{
		Mode:          ModeWatch,
		Watchers:      2,
		SlowConsumers: 1,
		SlowDelay:     5 * time.Millisecond,
		PublishEvery:  100 * time.Microsecond,
		ValueSize:     32,
		Duration:      300 * time.Millisecond,
		Warmup:        20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Published == 0 || res.Observed == 0 {
		t.Fatalf("no traffic: published=%d observed=%d", res.Published, res.Observed)
	}
	if res.Conflated == 0 {
		t.Errorf("slow consumer conflated nothing (published=%d observed=%d)",
			res.Published, res.Observed)
	}
	if res.LagMax == 0 {
		t.Errorf("slow consumer showed no lag in any mid-window sample (published=%d)",
			res.Published)
	}
	if res.Wakeups == 0 {
		t.Error("parked watchers took no wakeups")
	}
}

// TestWatchFigureRender runs the scaled figure end to end and checks
// the table carries every series.
func TestWatchFigureRender(t *testing.T) {
	fig := FigWatch().Scale(2, 50*time.Millisecond, 10*time.Millisecond)
	data, err := fig.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var tbl, csv strings.Builder
	data.RenderTable(&tbl)
	data.RenderCSV(&csv)
	for _, want := range []string{"watch", "watch-flat", "poll-100µs", "poll-1ms", "lat p99", "pub p99", "lag max", "conflated"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}
	if got := strings.Count(csv.String(), "\n"); got != len(data.Cells)+1 {
		t.Errorf("CSV has %d lines, want %d cells + header", got, len(data.Cells))
	}
	// The CI smoke job greps this exact substring from the header; the
	// pub columns must extend it, never break it.
	if !strings.Contains(csv.String(), "lag_p50,lag_max,conflated,wakeups,pub_p50_ns,pub_p99_ns") {
		t.Errorf("CSV header lost its stable column prefix:\n%s", csv.String())
	}
	// Both watch disciplines must run in the default figure: the tree
	// series and the flat baseline are a comparison, not alternatives.
	var tree, flat int
	for _, c := range data.Cells {
		if c.Mode != ModeWatch {
			continue
		}
		if c.FanArity > 0 {
			tree++
		} else {
			flat++
		}
	}
	if tree == 0 || flat == 0 {
		t.Errorf("figure ran %d tree and %d flat watch cells, want both", tree, flat)
	}
}

// TestWatchFigurePollClamp pins the poll-series cap: a watcher count
// past maxPollWatchers keeps its watch cells (parked watchers are
// cheap) but drops the poll cells — a many-thousand-goroutine sleep
// loop measures the scheduler, not the subsystem.
func TestWatchFigurePollClamp(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two cells with >4096 parked watchers")
	}
	fig := FigWatch()
	fig.Watchers = []int{2, maxPollWatchers + 1}
	fig.Duration = 30 * time.Millisecond
	fig.Warmup = 5 * time.Millisecond
	data, err := fig.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	cells := map[WatchMode]map[int]int{ModeWatch: {}, ModePoll: {}}
	for _, c := range data.Cells {
		cells[c.Mode][c.Watchers]++
	}
	if got := cells[ModePoll][2]; got != len(fig.PollEvery) {
		t.Errorf("small watcher count ran %d poll cells, want %d", got, len(fig.PollEvery))
	}
	if got := cells[ModePoll][maxPollWatchers+1]; got != 0 {
		t.Errorf("oversized watcher count ran %d poll cells, want 0", got)
	}
	if got := cells[ModeWatch][maxPollWatchers+1]; got != 2 {
		t.Errorf("oversized watcher count ran %d watch cells, want 2 (tree + flat)", got)
	}
}
