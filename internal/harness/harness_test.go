package harness

import (
	"strings"
	"testing"
	"time"

	"arcreg/internal/register"
	"arcreg/internal/workload"
)

// quickCfg returns a config with a tiny window, adequate for smoke tests.
func quickCfg(alg Algorithm, threads int) RunConfig {
	return RunConfig{
		Algorithm: alg,
		Threads:   threads,
		ValueSize: 1024,
		Mode:      workload.Dummy,
		Duration:  50 * time.Millisecond,
		Warmup:    10 * time.Millisecond,
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, s := range []string{"arc", "rf", "peterson", "lock", "arc-nofastpath", "arc-nohint", "seqlock", "leftright"} {
		if _, err := ParseAlgorithm(s); err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", s, err)
		}
	}
	if _, err := ParseAlgorithm("mutex"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestNewRegisterFactories(t *testing.T) {
	cfg := register.Config{MaxReaders: 2, MaxValueSize: 64}
	for _, alg := range []Algorithm{AlgARC, AlgARCNoFast, AlgARCNoHint, AlgRF, AlgPeterson, AlgLock, AlgSeqlock, AlgLeftRight} {
		r, err := NewRegister(alg, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if err := r.Writer().Write([]byte("x")); err != nil {
			t.Fatalf("%s: write: %v", alg, err)
		}
	}
	if _, err := NewRegister("bogus", cfg); err == nil {
		t.Fatal("bogus algorithm constructed")
	}
}

func TestAlgorithmLimits(t *testing.T) {
	if AlgRF.MaxReaders() != 58 {
		t.Fatalf("RF limit = %d", AlgRF.MaxReaders())
	}
	if AlgARC.MaxReaders() < 1<<31 {
		t.Fatalf("ARC limit = %d, want ≥ 2^31", AlgARC.MaxReaders())
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{Algorithm: AlgARC, Threads: 1}); err == nil {
		t.Error("Threads=1 accepted")
	}
	if _, err := Run(RunConfig{Algorithm: AlgRF, Threads: 60,
		Duration: time.Millisecond, Warmup: time.Millisecond}); err == nil {
		t.Error("59 RF readers accepted")
	}
}

func TestRunAllAlgorithmsSmoke(t *testing.T) {
	for _, alg := range []Algorithm{AlgARC, AlgRF, AlgPeterson, AlgLock} {
		cfg := quickCfg(alg, 4)
		cfg.Duration = 150 * time.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.WriteOps == 0 {
			// A short window on an oversubscribed CI host can deschedule
			// the writer for the whole measurement; retry once with a
			// wider window before declaring failure.
			cfg.Duration = 500 * time.Millisecond
			if res, err = Run(cfg); err != nil {
				t.Fatalf("%s (retry): %v", alg, err)
			}
		}
		if res.ReadOps == 0 {
			t.Errorf("%s: no reads measured", alg)
		}
		if res.WriteOps == 0 {
			t.Errorf("%s: no writes measured", alg)
		}
		if res.Mops() <= 0 {
			t.Errorf("%s: throughput %v", alg, res.Mops())
		}
		if res.Elapsed <= 0 {
			t.Errorf("%s: elapsed %v", alg, res.Elapsed)
		}
	}
}

func TestRunProcessingMode(t *testing.T) {
	cfg := quickCfg(AlgARC, 3)
	cfg.Mode = workload.Processing
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sink == 0 {
		t.Error("processing mode produced no checksum traffic")
	}
}

func TestRunWithSteal(t *testing.T) {
	cfg := quickCfg(AlgARC, 3)
	cfg.StealFraction = 0.5
	cfg.StealSlice = 100 * time.Microsecond
	cfg.Duration = 150 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steal.Steals == 0 {
		t.Error("steal-enabled run recorded no steal events")
	}
}

func TestRunLatencySampling(t *testing.T) {
	cfg := quickCfg(AlgARC, 3)
	cfg.LatencySample = 16
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadLat.Count() == 0 {
		t.Error("latency sampling recorded nothing")
	}
}

func TestRunStatsPlumbed(t *testing.T) {
	res, err := Run(quickCfg(AlgARC, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadStat.Ops == 0 {
		t.Error("reader stats not collected")
	}
	if res.WriteStat.Ops == 0 {
		t.Error("writer stats not collected")
	}
	// ARC under a hot writer still fast-paths a large share of reads.
	if res.ReadStat.FastPath == 0 {
		t.Error("no fast-path reads recorded for ARC")
	}

	resRF, err := Run(quickCfg(AlgRF, 4))
	if err != nil {
		t.Fatal(err)
	}
	if resRF.ReadStat.RMW != resRF.ReadStat.Ops {
		t.Errorf("RF reads=%d rmw=%d; RF must pay one RMW per read",
			resRF.ReadStat.Ops, resRF.ReadStat.RMW)
	}
}

func TestFigureByID(t *testing.T) {
	for _, id := range []string{"fig1", "fig2", "fig3", "1", "2", "3", "processing", "ablation"} {
		if _, err := FigureByID(id); err != nil {
			t.Errorf("FigureByID(%q): %v", id, err)
		}
	}
	if _, err := FigureByID("fig9"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestFigureScale(t *testing.T) {
	f := Fig1().Scale(8, 20*time.Millisecond, 5*time.Millisecond)
	for _, th := range f.Threads {
		if th > 8 {
			t.Fatalf("thread %d above cap", th)
		}
	}
	if f.Duration != 20*time.Millisecond || f.Warmup != 5*time.Millisecond {
		t.Fatal("scale did not apply windows")
	}
	// Scaling below the smallest sweep entry still leaves one point.
	f3 := Fig3().Scale(8, time.Millisecond, time.Millisecond)
	if len(f3.Threads) != 1 || f3.Threads[0] != 8 {
		t.Fatalf("fig3 scaled threads = %v", f3.Threads)
	}
}

func TestFigureRunAndRender(t *testing.T) {
	f := Figure{
		ID:         "test",
		Caption:    "smoke figure",
		Algorithms: []Algorithm{AlgARC, AlgRF},
		Threads:    []int{2, 3},
		Sizes:      []int{256},
		Mode:       workload.Dummy,
		Duration:   30 * time.Millisecond,
		Warmup:     5 * time.Millisecond,
	}
	var progressed int
	data, err := f.Run(func(done, total int, c Cell) { progressed++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(data.Cells))
	}
	if progressed != 4 {
		t.Fatalf("progress callbacks = %d", progressed)
	}
	for _, c := range data.Cells {
		if c.Err != nil {
			t.Fatalf("unexpected infeasible cell: %v", c.Err)
		}
		if c.Result.Mops() <= 0 {
			t.Fatalf("cell %s/%d has zero throughput", c.Algorithm, c.Threads)
		}
	}
	if got := data.Series(AlgARC, 256); len(got) != 2 {
		t.Fatalf("series length %d", len(got))
	}

	var tbl strings.Builder
	data.RenderTable(&tbl)
	for _, want := range []string{"smoke figure", "threads", "arc", "rf", "256B"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}
	var csv strings.Builder
	data.RenderCSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 5 { // header + 4 cells
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "figure,size,threads,algorithm,writers,mops") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

// Infeasible cells (RF beyond 58 readers) must be recorded, not fatal —
// the paper's Figure 3 note.
func TestFigureInfeasibleCells(t *testing.T) {
	f := Figure{
		ID:         "cap",
		Algorithms: []Algorithm{AlgRF},
		Threads:    []int{100},
		Sizes:      []int{64},
		Duration:   5 * time.Millisecond,
		Warmup:     time.Millisecond,
	}
	data, err := f.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Cells) != 1 || data.Cells[0].Err == nil {
		t.Fatalf("expected one infeasible cell, got %+v", data.Cells)
	}
	var tbl strings.Builder
	data.RenderTable(&tbl)
	if !strings.Contains(tbl.String(), "n/a") {
		t.Fatalf("table does not mark infeasible cell:\n%s", tbl.String())
	}
}

func TestRMWComparison(t *testing.T) {
	rep, err := RunRMWComparison([]int{3}, 512, 40*time.Millisecond, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (arc, arc-nofastpath, rf)", len(rep.Rows))
	}
	byAlg := map[Algorithm]RMWRow{}
	for _, r := range rep.Rows {
		byAlg[r.Algorithm] = r
	}
	if rf := byAlg[AlgRF]; rf.RMWPerRead() < 0.999 {
		t.Errorf("RF rmw/read = %v, want 1", rf.RMWPerRead())
	}
	if arcRow := byAlg[AlgARC]; arcRow.RMWPerRead() >= byAlg[AlgRF].RMWPerRead() {
		t.Errorf("ARC rmw/read %v not below RF %v — the paper's central claim",
			arcRow.RMWPerRead(), byAlg[AlgRF].RMWPerRead())
	}
	if noFast := byAlg[AlgARCNoFast]; noFast.FastPathShare() != 0 {
		t.Errorf("ablated ARC shows fast-path reads")
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "rmw/read") {
		t.Fatalf("render missing header:\n%s", sb.String())
	}
}

func TestFmtSize(t *testing.T) {
	cases := map[int]string{
		64:         "64B",
		4096:       "4KB",
		131072:     "128KB",
		1 << 20:    "1MB",
		3*1024 ^ 1: "", // placeholder replaced below
	}
	delete(cases, 3*1024^1)
	for n, want := range cases {
		if got := fmtSize(n); got != want {
			t.Errorf("fmtSize(%d) = %q, want %q", n, got, want)
		}
	}
	if got := fmtSize(1000); got != "1000B" {
		t.Errorf("fmtSize(1000) = %q", got)
	}
}

func TestLatencyComparison(t *testing.T) {
	rep, err := RunLatencyComparison(
		[]Algorithm{AlgARC, AlgLock}, 3, 512, 0,
		40*time.Millisecond, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.ReadLat.Count() == 0 {
			t.Errorf("%s: no read latency samples", r.Algorithm)
		}
	}
	var sb strings.Builder
	rep.Render(&sb)
	for _, want := range []string{"read p99", "arc", "lock"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, sb.String())
		}
	}
}
