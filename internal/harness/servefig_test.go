package harness

import (
	"strings"
	"testing"
	"time"
)

// TestServeFigureSmoke runs a tiny serve figure against a real loopback
// server and checks the contract the CI smoke also greps for: at least
// two client-count rows, traffic in every cell, watch deliveries, and
// the full CSV column set.
func TestServeFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback serving figure")
	}
	f := FigServe().Scale(2, 150*time.Millisecond, 30*time.Millisecond)
	if len(f.Clients) < 2 {
		t.Fatalf("scaled figure kept %d client counts, want >= 2", len(f.Clients))
	}
	data, err := f.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Cells) != len(f.Clients) {
		t.Fatalf("got %d cells, want %d", len(data.Cells), len(f.Clients))
	}
	var observed uint64
	for _, c := range data.Cells {
		if c.Result.Gets == 0 {
			t.Errorf("clients=%d: no GETs completed in the window", c.Clients)
		}
		if c.Result.Rate() <= 0 {
			t.Errorf("clients=%d: rate %.0f, want > 0", c.Clients, c.Result.Rate())
		}
		if c.Result.Puts == 0 {
			t.Errorf("clients=%d: writer published nothing", c.Clients)
		}
		observed += c.Result.Observed
	}
	if observed == 0 {
		t.Error("no watch client observed a publication in any cell")
	}

	var tbl, csv strings.Builder
	data.RenderTable(&tbl)
	if !strings.Contains(tbl.String(), "get req/s") {
		t.Errorf("table missing rate column:\n%s", tbl.String())
	}
	data.RenderCSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(data.Cells) {
		t.Fatalf("CSV has %d lines, want header + %d rows", len(lines), len(data.Cells))
	}
	for _, col := range []string{"figure", "clients", "get_rps", "get_p50_ns", "get_p99_ns", "obs_p50_ns", "obs_p99_ns", "shed", "conflated"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("CSV header missing %q: %s", col, lines[0])
		}
	}
	if !strings.HasPrefix(lines[1], "serve,") {
		t.Errorf("CSV row should start with the figure id: %s", lines[1])
	}
}
