package harness

// Tests for the keyed map deployment: RunMap smoke with stats plumbing,
// steal injection and latency sampling through the shared loop
// machinery, and the map figure's sweep and rendering.

import (
	"strings"
	"testing"
	"time"

	"arcreg/internal/workload"
)

func TestRunMapSmoke(t *testing.T) {
	res, err := RunMap(MapRunConfig{
		Threads:       3,
		Keys:          32,
		ValueSize:     256,
		Zipf:          1.2,
		MissEvery:     16,
		ChurnEvery:    64,
		Mode:          workload.Dummy,
		Duration:      150 * time.Millisecond,
		Warmup:        20 * time.Millisecond,
		LatencySample: 64,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GetOps == 0 || res.SetOps == 0 {
		t.Fatalf("no ops measured: gets=%d sets=%d", res.GetOps, res.SetOps)
	}
	if res.ReadStat.Ops == 0 {
		t.Error("map ReadStats not aggregated")
	}
	if res.ReadStat.Misses == 0 {
		t.Error("MissEvery produced no misses")
	}
	if res.WriteStat.Keys < 32 {
		t.Errorf("WriteStats.Keys = %d, want ≥ 32", res.WriteStat.Keys)
	}
	if res.KeysCreated == 0 {
		t.Error("ChurnEvery created no keys")
	}
	if res.GetLat.Count() == 0 || res.SetLat.Count() == 0 {
		t.Error("latency sampling recorded nothing")
	}
	if res.Sink == 0 {
		t.Error("sink empty")
	}
	// The fresh gate must hold through the map layer even under churn:
	// a read-dominated steady state stays well under 1 rmw/get.
	if got := res.RMWPerGet(); got > 0.5 {
		t.Errorf("rmw/get = %.4f, fresh gate not effective", got)
	}
}

func TestRunMapSteal(t *testing.T) {
	res, err := RunMap(MapRunConfig{
		Threads:       2,
		Keys:          8,
		ValueSize:     256,
		StealFraction: 0.4,
		Duration:      120 * time.Millisecond,
		Warmup:        20 * time.Millisecond,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steal.Steals == 0 {
		t.Error("steal injection produced no events")
	}
	if res.GetOps == 0 {
		t.Error("no reads under steal")
	}
}

func TestRunMapValidation(t *testing.T) {
	if _, err := RunMap(MapRunConfig{Threads: 1}); err == nil {
		t.Error("1 thread accepted (no reader)")
	}
	if _, err := RunMap(MapRunConfig{Threads: 2, Warmup: -time.Second}); err == nil {
		t.Error("negative warmup accepted")
	}
}

func TestMapFigureRunAndRender(t *testing.T) {
	fig := FigMap()
	fig.Threads = []int{2}
	fig.Keys = []int{4, 16}
	fig.ValueSize = 256
	fig.Duration = 30 * time.Millisecond
	fig.Warmup = 5 * time.Millisecond
	data, err := fig.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(data.Cells))
	}
	var tbl strings.Builder
	data.RenderTable(&tbl)
	for _, want := range []string{"== map:", "4 keys", "16 keys", "rmw/get", "zipf=1.20"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}
	var csv strings.Builder
	data.RenderCSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 { // header + 2 cells
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "figure,keys,threads,mops") {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[0], ",compactions,dir_bytes,repairs") {
		t.Fatalf("csv header missing compaction columns: %q", lines[0])
	}
}

func TestMapFigureScale(t *testing.T) {
	fig := FigMap().Scale(4, 40*time.Millisecond, 10*time.Millisecond)
	for _, th := range fig.Threads {
		if th > 4 {
			t.Errorf("Scale left thread count %d", th)
		}
	}
	if len(fig.Keys) > 2 {
		t.Errorf("Scale left %d key counts", len(fig.Keys))
	}
	if fig.Duration != 40*time.Millisecond {
		t.Errorf("Scale duration = %v", fig.Duration)
	}
}
