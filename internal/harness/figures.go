package harness

import (
	"fmt"
	"io"
	"time"

	"arcreg/internal/workload"
)

// Sizes swept by the paper's figures: 4KB, 32KB, 128KB.
var (
	PaperSizes = []int{4 * 1024, 32 * 1024, 128 * 1024}

	// Fig1Threads is the thread sweep on the 32-core physical machine.
	Fig1Threads = []int{2, 4, 8, 16, 24, 32}
	// Fig2Threads extends to the 40-vCPU virtualized host.
	Fig2Threads = []int{2, 4, 8, 16, 24, 32, 40}
	// Fig3Threads is the oversubscribed sweep (log-scale x in the paper).
	Fig3Threads = []int{1000, 1500, 2000, 2500, 3000, 3500, 4000}
)

// Figure describes one reproducible experiment family — one paper figure
// (or ablation table).
type Figure struct {
	// ID names the experiment ("fig1", "fig2", "fig3", …).
	ID string
	// Caption mirrors the paper's figure caption.
	Caption string
	// Algorithms are the compared register implementations, in column
	// order.
	Algorithms []Algorithm
	// Threads and Sizes span the sweep.
	Threads []int
	Sizes   []int
	// Writers is the writer-thread count per cell (0 = 1 writer, the
	// paper's (1,N) shape). The MN figure sets it to M; cells whose
	// thread count leaves no reader are recorded as infeasible.
	Writers int
	// WriterCounts optionally turns the writer count into a sweep axis:
	// every (size, threads, algorithm) cell is measured once per M, with
	// rows labeled by M (`arcbench -figure mn -writers 1,2,4,8`). Empty
	// means the single count in Writers.
	WriterCounts []int
	// Mode is the workload variant.
	Mode workload.Mode
	// StealFraction > 0 simulates the virtualized host.
	StealFraction float64
	// Pin requests CPU pinning in the physical regime.
	Pin bool
	// Duration and Warmup apply to every cell.
	Duration time.Duration
	Warmup   time.Duration
	// Seed fixes the steal schedules.
	Seed uint64
}

// Fig1 is Figure 1: throughput vs threads at each register size on the
// physical machine (no steal, pinned, dummy workload).
func Fig1() Figure {
	return Figure{
		ID:         "fig1",
		Caption:    "Throughput with different register size values (physical machine)",
		Algorithms: Algorithms(),
		Threads:    Fig1Threads,
		Sizes:      PaperSizes,
		Mode:       workload.Dummy,
		Pin:        true,
		Duration:   time.Second,
		Warmup:     200 * time.Millisecond,
		Seed:       1,
	}
}

// Fig2 is Figure 2: the same sweep on the simulated virtualized host
// (CPU-steal injection enabled, no pinning — vCPUs float).
func Fig2() Figure {
	return Figure{
		ID:            "fig2",
		Caption:       "Throughput with different register size values (virtualized host, CPU steal)",
		Algorithms:    Algorithms(),
		Threads:       Fig2Threads,
		Sizes:         PaperSizes,
		Mode:          workload.Dummy,
		StealFraction: 0.25,
		Duration:      time.Second,
		Warmup:        200 * time.Millisecond,
		Seed:          2,
	}
}

// Fig3 is Figure 3: heavily oversubscribed thread counts. RF is excluded
// — its 58-reader limit cannot host the sweep (§5: "RF could not be
// tested").
func Fig3() Figure {
	return Figure{
		ID:         "fig3",
		Caption:    "Throughput with largely-increased thread counts (time-sharing)",
		Algorithms: []Algorithm{AlgARC, AlgPeterson, AlgLock},
		Threads:    Fig3Threads,
		Sizes:      PaperSizes,
		Mode:       workload.Dummy,
		Duration:   time.Second,
		Warmup:     200 * time.Millisecond,
		Seed:       3,
	}
}

// FigProcessing is the paper's second experiment set: operations with
// attached processing latency (write generates data, read scans the
// buffer).
func FigProcessing() Figure {
	f := Fig1()
	f.ID = "processing"
	f.Caption = "Throughput with per-operation processing attached (physical machine)"
	f.Mode = workload.Processing
	return f
}

// FigAblation compares ARC against its own ablated variants, isolating
// the fast-path (R1–R2) and free-slot-hint (§3.4) optimizations.
func FigAblation() Figure {
	f := Fig1()
	f.ID = "ablation"
	f.Caption = "ARC ablations: fast path and free-slot hint contributions"
	f.Algorithms = []Algorithm{AlgARC, AlgARCNoFast, AlgARCNoHint}
	f.Sizes = []int{4 * 1024, 32 * 1024}
	return f
}

// FigExtensions compares ARC against the two modern non-paper baselines,
// seqlock (lock-free reads) and Left-Right (blocking writes), on the
// Figure 1 sweep. It extends the paper's comparison to the design points
// practitioners actually deploy today.
func FigExtensions() Figure {
	f := Fig1()
	f.ID = "extensions"
	f.Caption = "ARC vs seqlock and Left-Right (extension baselines)"
	f.Algorithms = []Algorithm{AlgARC, AlgSeqlock, AlgLeftRight}
	return f
}

// FigMN is the (M,N) composite experiment: a thread sweep at M=4 writers
// comparing the freshness-gated collect against its always-View ablation.
// The gated collect serves unchanged components from the per-handle cache
// (one atomic load each — one load total once the epoch gate validates —
// zero RMW, zero tag decoding), so its advantage grows with the read
// share of the workload; the ablation is the pre-optimization collect
// that performs M full ARC reads per scan. Setting WriterCounts (CLI:
// `-figure mn -writers 1,2,4,8`) sweeps M as an extra axis, with rows
// labeled by M.
func FigMN() Figure {
	return Figure{
		ID:         "mn",
		Caption:    "(M,N) composite: fresh-gated collect vs always-View ablation (M=4 writers)",
		Algorithms: []Algorithm{AlgMN, AlgMNNoGate},
		Threads:    []int{6, 8, 16, 32},
		Sizes:      []int{4 * 1024, 32 * 1024},
		Writers:    4,
		Mode:       workload.Dummy,
		Duration:   time.Second,
		Warmup:     200 * time.Millisecond,
		Seed:       4,
	}
}

// FigureByID resolves a CLI name.
func FigureByID(id string) (Figure, error) {
	switch id {
	case "fig1", "1":
		return Fig1(), nil
	case "fig2", "2":
		return Fig2(), nil
	case "fig3", "3":
		return Fig3(), nil
	case "processing":
		return FigProcessing(), nil
	case "ablation":
		return FigAblation(), nil
	case "extensions":
		return FigExtensions(), nil
	case "mn":
		return FigMN(), nil
	}
	return Figure{}, fmt.Errorf("harness: unknown figure %q (fig1|fig2|fig3|processing|ablation|extensions|mn)", id)
}

// Scale shrinks a figure for smoke tests and CI: thread counts are capped,
// the sweep is thinned, and the timing windows reduced.
func (f Figure) Scale(maxThreads int, duration, warmup time.Duration) Figure {
	if maxThreads > 0 {
		var th []int
		for _, t := range f.Threads {
			if t <= maxThreads {
				th = append(th, t)
			}
		}
		if len(th) == 0 {
			th = []int{min(maxThreads, 2)}
			if maxThreads >= 2 {
				th = []int{maxThreads}
			}
		}
		f.Threads = th
	}
	if duration > 0 {
		f.Duration = duration
	}
	if warmup > 0 {
		f.Warmup = warmup
	}
	return f
}

// writerCounts resolves the writer sweep: WriterCounts when set, else
// the single Writers value (0 = the paper's 1-writer shape).
func (f Figure) writerCounts() []int {
	if len(f.WriterCounts) > 0 {
		return f.WriterCounts
	}
	w := f.Writers
	if w == 0 {
		w = 1
	}
	return []int{w}
}

// Cell is one measured point of a figure.
type Cell struct {
	Algorithm Algorithm
	Threads   int
	Size      int
	// Writers is the cell's writer count M (1 for the (1,N) figures).
	Writers int
	Result  Result
	Err     error // non-nil when the cell is infeasible (e.g. RF > 58)
}

// FigureData is the measured content of a figure: cells in sweep order.
type FigureData struct {
	Figure Figure
	Cells  []Cell
}

// Progress receives cell-completion callbacks (nil to disable).
type Progress func(done, total int, c Cell)

// Run measures every cell of the figure. Infeasible cells (reader counts
// beyond an algorithm's limit) are recorded with an error rather than
// aborting, mirroring the paper's "RF could not be tested" note.
func (f Figure) Run(progress Progress) (FigureData, error) {
	data := FigureData{Figure: f}
	wcs := f.writerCounts()
	total := len(f.Sizes) * len(wcs) * len(f.Threads) * len(f.Algorithms)
	done := 0
	for _, size := range f.Sizes {
		for _, writers := range wcs {
			for _, th := range f.Threads {
				for _, alg := range f.Algorithms {
					cell := Cell{Algorithm: alg, Threads: th, Size: size, Writers: writers}
					switch {
					case writers > 1 && !alg.IsMN():
						cell.Err = fmt.Errorf("%s is a (1,N) register; %d writers need mn", alg, writers)
					case th-writers > alg.MaxReaders():
						cell.Err = fmt.Errorf("%d readers exceed %s limit %d", th-writers, alg, alg.MaxReaders())
					case th < writers+1:
						cell.Err = fmt.Errorf("%d threads leave no reader beside %d writers", th, writers)
					default:
						res, err := Run(RunConfig{
							Algorithm:     alg,
							Threads:       th,
							Writers:       writers,
							ValueSize:     size,
							Mode:          f.Mode,
							Duration:      f.Duration,
							Warmup:        f.Warmup,
							StealFraction: f.StealFraction,
							Pin:           f.Pin,
							Seed:          f.Seed,
						})
						if err != nil {
							return data, fmt.Errorf("figure %s (%s, %d threads, M=%d, %dB): %w",
								f.ID, alg, th, writers, size, err)
						}
						cell.Result = res
					}
					data.Cells = append(data.Cells, cell)
					done++
					if progress != nil {
						progress(done, total, cell)
					}
				}
			}
		}
	}
	return data, nil
}

// Series extracts the (threads → Mops) series for one algorithm and
// size, in sweep order (grouped by writer count when M is swept).
func (d *FigureData) Series(alg Algorithm, size int) []Cell {
	var out []Cell
	for _, c := range d.Cells {
		if c.Algorithm == alg && c.Size == size {
			out = append(out, c)
		}
	}
	return out
}

// RenderTable writes the figure as one ASCII table per register size —
// rows are thread counts, columns are algorithms, cells are Mops/s (the
// paper's y-axis).
func (d *FigureData) RenderTable(w io.Writer) {
	f := d.Figure
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Caption)
	wcs := f.writerCounts()
	sweep := len(wcs) > 1
	if sweep {
		fmt.Fprintf(w, "mode=%s writers=%s steal=%.0f%% duration=%v\n", f.Mode, fmtInts(wcs), f.StealFraction*100, f.Duration)
	} else {
		fmt.Fprintf(w, "mode=%s writers=%d steal=%.0f%% duration=%v\n", f.Mode, wcs[0], f.StealFraction*100, f.Duration)
	}
	for _, size := range f.Sizes {
		fmt.Fprintf(w, "\n-- register size %s --\n", fmtSize(size))
		fmt.Fprintf(w, "%8s", "threads")
		if sweep {
			fmt.Fprintf(w, " %4s", "M")
		}
		for _, alg := range f.Algorithms {
			fmt.Fprintf(w, " %14s", alg)
		}
		fmt.Fprintln(w)
		for _, wc := range wcs {
			for _, th := range f.Threads {
				fmt.Fprintf(w, "%8d", th)
				if sweep {
					fmt.Fprintf(w, " %4d", wc)
				}
				for _, alg := range f.Algorithms {
					c := d.cell(alg, th, size, wc)
					switch {
					case c == nil:
						fmt.Fprintf(w, " %14s", "-")
					case c.Err != nil:
						fmt.Fprintf(w, " %14s", "n/a")
					default:
						fmt.Fprintf(w, " %14.2f", c.Result.Mops())
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
	fmt.Fprintln(w)
}

func fmtInts(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", x)
	}
	return s
}

// RenderCSV writes the figure in long form:
// figure,size,threads,algorithm,writers,mops,read_ops,write_ops,…
func (d *FigureData) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, "figure,size,threads,algorithm,writers,mops,read_ops,write_ops,read_rmw,read_fastpath,write_scan_steps,hint_hits,steal_events")
	for _, c := range d.Cells {
		if c.Err != nil {
			continue
		}
		r := c.Result
		fmt.Fprintf(w, "%s,%d,%d,%s,%d,%.4f,%d,%d,%d,%d,%d,%d,%d\n",
			d.Figure.ID, c.Size, c.Threads, c.Algorithm, c.Writers, r.Mops(),
			r.ReadOps, r.WriteOps, r.ReadStat.RMW, r.ReadStat.FastPath,
			r.WriteStat.ScanSteps, r.WriteStat.HintHits, r.Steal.Steals)
	}
}

func (d *FigureData) cell(alg Algorithm, threads, size, writers int) *Cell {
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Algorithm == alg && c.Threads == threads && c.Size == size && c.Writers == writers {
			return c
		}
	}
	return nil
}

func fmtSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
