package harness

// The serving-layer experiment behind `arcbench -figure serve`: a real
// arcserve HTTP server on a loopback TCP listener, N keep-alive GET
// clients hammering hot keys, one HTTP PUT writer publishing
// timestamped values at a fixed cadence, and SSE watch clients
// decoding them — measuring what the network edge costs on top of the
// register. Two numbers matter: sustained GET req/s (the wait-free
// read behind a syscall) and publish→client-observe latency through
// PUT → shard writer queue → register publish → Watch wakeup → SSE
// frame → client decode. Timestamps are nanoseconds on the process's
// monotonic clock, written into the value's first 8 bytes by the
// writer client and subtracted on the watcher client — one process,
// one clock, no skew.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arcreg/internal/metrics"
	"arcreg/internal/regmap"
	"arcreg/internal/serve"
	"arcreg/internal/trace"
)

// ServeRunConfig describes one cell of the serve figure.
type ServeRunConfig struct {
	// Clients is the concurrent keep-alive GET client count.
	Clients int
	// Watchers is the SSE watch client count (each on the hot key).
	Watchers int
	// Keys is the key population GET clients cycle over.
	Keys int
	// ValueSize is the published value size (≥ 16; the first 8 bytes
	// carry the publish timestamp).
	ValueSize int
	// PublishEvery is the HTTP PUT writer cadence (0 = back-to-back).
	PublishEvery time.Duration
	// Duration is the measurement window; Warmup precedes it.
	Duration time.Duration
	Warmup   time.Duration
	// PoolReaders/QueueDepth tune the server (0 = serve defaults
	// scaled to the client count).
	PoolReaders int
	QueueDepth  int
}

// ServeResult is one cell's outcome.
type ServeResult struct {
	// Gets counts completed 200 GETs in the window; GetLat is their
	// client-side request latency (ns).
	Gets   uint64
	GetLat metrics.Histogram
	// Puts counts writer publications in the window.
	Puts uint64
	// Observed counts watch deliveries decoded in the window; ObsLat
	// is their publish→client-observe latency (ns), merged over
	// watchers.
	Observed uint64
	ObsLat   metrics.Histogram
	// Shed counts 503s (write queue + watch cap) over the whole run;
	// Conflated is the watcher ledgers' skipped-publication total.
	Shed      uint64
	Conflated uint64
	// CascadeLat and FlushLat are the flight recorder's per-stage
	// decomposition of the publish→observe path: origin publication →
	// wakeup-tree root cascade, and origin publication → SSE frame
	// flushed. ConflateDrops sums the publications conflated away at
	// delivery decisions. All three cover the trailing ring window (the
	// recorder keeps the last events per domain), not the full run.
	CascadeLat    metrics.Histogram
	FlushLat      metrics.Histogram
	ConflateDrops uint64
	Elapsed       time.Duration
}

// Rate is sustained GETs per second over the measured window.
func (r ServeResult) Rate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Gets) / r.Elapsed.Seconds()
}

// RunServe measures one serving cell against a live loopback server.
func RunServe(cfg ServeRunConfig) (ServeResult, error) {
	if cfg.Clients <= 0 {
		return ServeResult{}, fmt.Errorf("harness: serve figure needs at least one client, got %d", cfg.Clients)
	}
	if cfg.Watchers <= 0 {
		cfg.Watchers = 1
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 16
	}
	if cfg.ValueSize < 16 {
		cfg.ValueSize = 16
	}
	pool := cfg.PoolReaders
	if pool <= 0 {
		pool = cfg.Clients
		if pool > 16 {
			pool = 16
		}
	}
	queue := cfg.QueueDepth
	if queue <= 0 {
		queue = 256
	}
	m, err := regmap.New(regmap.Config{
		Shards:       4,
		MaxReaders:   pool + cfg.Watchers + 2,
		MaxValueSize: cfg.ValueSize,
		// The flight recorder stays on for the measurement: its stage
		// breakdown is what the cascade/flush columns report, and its
		// recording paths are zero-RMW/zero-alloc by construction (the
		// guard tests pin this), so the figure's numbers are the traced
		// production configuration, not a special quiet mode.
		Trace: true,
	})
	if err != nil {
		return ServeResult{}, err
	}
	srv, err := serve.New(serve.Config{
		Map:          m,
		Readers:      pool,
		WatchStreams: cfg.Watchers + 1,
		QueueDepth:   queue,
	})
	if err != nil {
		return ServeResult{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return ServeResult{}, err
	}
	hs := &http.Server{Handler: srv, ConnState: srv.ConnState}
	go hs.Serve(serve.Listener(ln))
	base := "http://" + ln.Addr().String()
	defer func() {
		hs.Close()
		srv.Close()
	}()

	keys := make([]string, cfg.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("hot-%03d", i)
	}
	seed := make([]byte, cfg.ValueSize)
	for _, k := range keys {
		if err := srv.Set(k, seed); err != nil {
			return ServeResult{}, err
		}
	}

	epoch := time.Now()
	now := func() uint64 { return uint64(time.Since(epoch)) }

	const (
		phaseWarmup = iota
		phaseMeasure
		phaseStop
	)
	var phase atomic.Int32
	transport := &http.Transport{
		MaxIdleConns:        cfg.Clients + cfg.Watchers + 4,
		MaxIdleConnsPerHost: cfg.Clients + cfg.Watchers + 4,
	}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	failed := func(err error) {
		e := err
		firstErr.CompareAndSwap(nil, &e)
		phase.Store(phaseStop)
		cancel()
	}

	// Writer client: HTTP PUTs of timestamped values, cycling the hot
	// key (watched) and the rest of the population.
	var puts uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, cfg.ValueSize)
		var round uint64
		for phase.Load() != phaseStop {
			round++
			key := keys[round%uint64(len(keys))]
			binary.LittleEndian.PutUint64(buf, now())
			req, err := http.NewRequest("PUT", base+"/k/"+key, bytes.NewReader(buf))
			if err != nil {
				failed(err)
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				if phase.Load() == phaseStop {
					return
				}
				failed(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusNoContent && phase.Load() == phaseMeasure {
				atomic.AddUint64(&puts, 1)
			}
			if cfg.PublishEvery > 0 {
				time.Sleep(cfg.PublishEvery)
			}
		}
	}()

	// GET clients: keep-alive request loops over the key population.
	type getStats struct {
		gets uint64
		hist metrics.Histogram
	}
	gstats := make([]getStats, cfg.Clients)
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(st *getStats, ci int) {
			defer wg.Done()
			var i int
			for phase.Load() != phaseStop {
				key := keys[(ci+i)%len(keys)]
				i++
				start := now()
				resp, err := client.Get(base + "/k/" + key)
				if err != nil {
					if phase.Load() == phaseStop {
						return
					}
					failed(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK && phase.Load() == phaseMeasure {
					st.hist.Record(now() - start)
					st.gets++
				}
			}
		}(&gstats[ci], ci)
	}

	// Watch clients: SSE streams on the hot key, decoding the publish
	// timestamp out of each delivered value.
	type obsStats struct {
		observed uint64
		hist     metrics.Histogram
	}
	ostats := make([]obsStats, cfg.Watchers)
	for wi := 0; wi < cfg.Watchers; wi++ {
		req, err := http.NewRequestWithContext(ctx, "GET", base+"/watch/"+keys[0]+"?b64=1", nil)
		if err != nil {
			failed(err)
			break
		}
		resp, err := client.Do(req)
		if err != nil {
			failed(err)
			break
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			failed(fmt.Errorf("harness: watch stream status %d", resp.StatusCode))
			break
		}
		wg.Add(1)
		go func(st *obsStats, body io.ReadCloser) {
			defer wg.Done()
			defer body.Close()
			br := bufio.NewReader(body)
			for {
				data, err := readSSEData(br)
				if err != nil {
					return // stream canceled at teardown
				}
				raw, err := base64.StdEncoding.DecodeString(data)
				if err != nil || len(raw) < 8 {
					continue // deleted/degraded frame: no timestamp
				}
				ts := binary.LittleEndian.Uint64(raw)
				if phase.Load() == phaseMeasure && ts > 0 {
					st.hist.Record(now() - ts)
					st.observed++
				}
			}
		}(&ostats[wi], resp.Body)
	}

	time.Sleep(cfg.Warmup)
	phase.Store(phaseMeasure)
	start := time.Now()
	time.Sleep(cfg.Duration)
	phase.Store(phaseStop)
	elapsed := time.Since(start)

	// Read the server ledgers before tearing the streams down: the
	// watcher conflation counters live on the map tracker while the
	// streams are attached.
	sn := srv.Stats()
	shedW, _ := sn.Get("shed_writes")
	shedS, _ := sn.Get("shed_watch")
	conflated, _ := sn.Get("watch_conflated")
	breakdown := m.Tracer().Breakdown()

	cancel()
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return ServeResult{}, *ep
	}

	res := ServeResult{
		Puts:          atomic.LoadUint64(&puts),
		Shed:          shedW + shedS,
		Conflated:     conflated,
		CascadeLat:    breakdown.Latency[trace.StageCascade],
		FlushLat:      breakdown.Latency[trace.StageFlush],
		ConflateDrops: breakdown.ConflateDrops,
		Elapsed:       elapsed,
	}
	for i := range gstats {
		res.Gets += gstats[i].gets
		res.GetLat.Merge(&gstats[i].hist)
	}
	for i := range ostats {
		res.Observed += ostats[i].observed
		res.ObsLat.Merge(&ostats[i].hist)
	}
	return res, nil
}

// readSSEData reads the next SSE frame and returns its joined data
// payload (events without data yield an empty string).
func readSSEData(br *bufio.Reader) (string, error) {
	var data []string
	seen := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return "", err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if !seen {
				continue
			}
			return strings.Join(data, "\n"), nil
		case strings.HasPrefix(line, "data: "):
			seen = true
			data = append(data, line[len("data: "):])
		default:
			seen = true
		}
	}
}

// ServeFigure sweeps concurrent client counts against one server.
type ServeFigure struct {
	ID           string
	Clients      []int
	Watchers     int
	Keys         int
	ValueSize    int
	PublishEvery time.Duration
	Duration     time.Duration
	Warmup       time.Duration
}

// FigServe returns the standard serving figure: sustained loopback GET
// req/s and publish→client-observe latency, swept over client counts.
func FigServe() ServeFigure {
	return ServeFigure{
		ID:           "serve",
		Clients:      []int{1, 4, 16},
		Watchers:     2,
		Keys:         16,
		ValueSize:    64,
		PublishEvery: 500 * time.Microsecond,
		Duration:     time.Second,
		Warmup:       200 * time.Millisecond,
	}
}

// Scale clamps the figure for smoke runs, always keeping at least two
// client counts — the figure's contract is req/s and latency for ≥ 2
// concurrency levels.
func (f ServeFigure) Scale(maxClients int, duration, warmup time.Duration) ServeFigure {
	if maxClients < 2 {
		maxClients = 2
	}
	var cs []int
	for _, c := range f.Clients {
		if c <= maxClients {
			cs = append(cs, c)
		}
	}
	if len(cs) == 0 {
		cs = []int{1}
	}
	if len(cs) == 1 {
		next := cs[0] * 2
		if next > maxClients {
			next = maxClients
		}
		if next == cs[0] {
			next++
		}
		cs = append(cs, next)
	}
	f.Clients = cs
	if duration > 0 && duration < f.Duration {
		f.Duration = duration
	}
	if warmup > 0 && warmup < f.Warmup {
		f.Warmup = warmup
	}
	return f
}

// ServeCell is one measured figure cell.
type ServeCell struct {
	Clients int
	Result  ServeResult
	Err     error
}

// ServeData is the figure outcome.
type ServeData struct {
	Figure ServeFigure
	Cells  []ServeCell
}

// Run executes the client-count sweep.
func (f ServeFigure) Run(progress func(done, total int, c ServeCell)) (ServeData, error) {
	data := ServeData{Figure: f}
	for i, clients := range f.Clients {
		res, err := RunServe(ServeRunConfig{
			Clients:      clients,
			Watchers:     f.Watchers,
			Keys:         f.Keys,
			ValueSize:    f.ValueSize,
			PublishEvery: f.PublishEvery,
			Duration:     f.Duration,
			Warmup:       f.Warmup,
		})
		cell := ServeCell{Clients: clients, Result: res, Err: err}
		if err != nil {
			return data, err
		}
		data.Cells = append(data.Cells, cell)
		if progress != nil {
			progress(i+1, len(f.Clients), cell)
		}
	}
	return data, nil
}

// RenderTable writes the figure as an ASCII table.
func (d ServeData) RenderTable(w io.Writer) {
	f := d.Figure
	fmt.Fprintf(w, "== loopback serving: GET req/s and publish→client-observe latency (publish every %v, value %dB, %d keys, %d watchers, window %v) ==\n",
		f.PublishEvery, f.ValueSize, f.Keys, f.Watchers, f.Duration)
	fmt.Fprintf(w, "%8s %10s %12s %10s %10s %8s %12s %12s %12s %8s %10s %12s %12s %10s\n",
		"clients", "gets", "get req/s", "get p50", "get p99", "puts",
		"obs p50", "obs p99", "obs max", "shed", "conflated",
		"cascade p99", "flush p99", "drops")
	for _, c := range d.Cells {
		r := c.Result
		fmt.Fprintf(w, "%8d %10d %12.0f %10s %10s %8d %12s %12s %12s %8d %10d %12s %12s %10d\n",
			c.Clients, r.Gets, r.Rate(),
			metrics.Duration(r.GetLat.Quantile(0.5)),
			metrics.Duration(r.GetLat.Quantile(0.99)),
			r.Puts,
			metrics.Duration(r.ObsLat.Quantile(0.5)),
			metrics.Duration(r.ObsLat.Quantile(0.99)),
			time.Duration(r.ObsLat.Max()),
			r.Shed, r.Conflated,
			metrics.Duration(r.CascadeLat.Quantile(0.99)),
			metrics.Duration(r.FlushLat.Quantile(0.99)),
			r.ConflateDrops)
	}
}

// RenderCSV appends machine-readable rows.
func (d ServeData) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, "figure,clients,watchers,keys,value_size,window_ms,gets,get_rps,get_p50_ns,get_p99_ns,puts,observed,obs_p50_ns,obs_p99_ns,obs_max_ns,shed,conflated,cascade_p99_ns,conflate_drops,flush_p99_ns")
	for _, c := range d.Cells {
		r := c.Result
		fmt.Fprintf(w, "%s,%d,%d,%d,%d,%.0f,%d,%.0f,%.0f,%.0f,%d,%d,%.0f,%.0f,%d,%d,%d,%.0f,%d,%.0f\n",
			d.Figure.ID, c.Clients, d.Figure.Watchers, d.Figure.Keys, d.Figure.ValueSize,
			float64(r.Elapsed)/float64(time.Millisecond),
			r.Gets, r.Rate(),
			r.GetLat.Quantile(0.5), r.GetLat.Quantile(0.99),
			r.Puts, r.Observed,
			r.ObsLat.Quantile(0.5), r.ObsLat.Quantile(0.99), r.ObsLat.Max(),
			r.Shed, r.Conflated,
			r.CascadeLat.Quantile(0.99), r.ConflateDrops, r.FlushLat.Quantile(0.99))
	}
}
