package harness

// Tests for the (M,N) composite deployment: RunConfig.Writers plumbing,
// the mn figure, and the MN RMW accounting.

import (
	"strings"
	"testing"
	"time"

	"arcreg/internal/workload"
)

func TestParseMNAlgorithms(t *testing.T) {
	for _, s := range []string{"mn", "mn-nogate"} {
		a, err := ParseAlgorithm(s)
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", s, err)
		}
		if !a.IsMN() {
			t.Errorf("%s: IsMN() = false", a)
		}
	}
	if AlgARC.IsMN() {
		t.Error("arc reports IsMN")
	}
}

func TestRunWritersValidation(t *testing.T) {
	base := RunConfig{ValueSize: 256, Duration: 20 * time.Millisecond, Warmup: 5 * time.Millisecond}

	cfg := base
	cfg.Algorithm, cfg.Threads, cfg.Writers = AlgARC, 4, 2
	if _, err := Run(cfg); err == nil {
		t.Error("2 writers accepted for a (1,N) algorithm")
	}
	cfg = base
	cfg.Algorithm, cfg.Threads, cfg.Writers = AlgMN, 2, 2
	if _, err := Run(cfg); err == nil {
		t.Error("Threads == Writers accepted (no reader)")
	}
	cfg = base
	cfg.Algorithm, cfg.Threads, cfg.Writers = AlgMN, 3, -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative writer count accepted")
	}
}

func TestRunMNSmoke(t *testing.T) {
	for _, alg := range []Algorithm{AlgMN, AlgMNNoGate} {
		res, err := Run(RunConfig{
			Algorithm: alg,
			Threads:   4,
			Writers:   2,
			ValueSize: 256,
			Mode:      workload.Dummy,
			Duration:  150 * time.Millisecond,
			Warmup:    20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.ReadOps == 0 {
			t.Errorf("%s: no reads measured", alg)
		}
		if res.WriteOps == 0 {
			t.Errorf("%s: no writes measured", alg)
		}
		// Composite stats must be plumbed: reads happened, so the
		// protocol counters cannot stay zero.
		if res.ReadStat.Ops == 0 {
			t.Errorf("%s: composite ReadStats not aggregated", alg)
		}
		// Both writers contribute publish-side stats.
		if res.WriteStat.Ops == 0 {
			t.Errorf("%s: composite WriteStats not aggregated", alg)
		}
		if alg == AlgMNNoGate && res.ReadStat.FastPath != 0 {
			t.Errorf("mn-nogate counted %d fresh scans", res.ReadStat.FastPath)
		}
	}
}

func TestFigMNByID(t *testing.T) {
	fig, err := FigureByID("mn")
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "mn" || fig.Writers != 4 {
		t.Fatalf("FigMN = %+v", fig)
	}
	if len(fig.Algorithms) != 2 || fig.Algorithms[0] != AlgMN || fig.Algorithms[1] != AlgMNNoGate {
		t.Fatalf("FigMN algorithms = %v", fig.Algorithms)
	}
}

func TestFigMNRunAndRender(t *testing.T) {
	fig := FigMN()
	fig.Writers = 2
	fig.Threads = []int{2, 3} // 2 is infeasible (no reader), 3 runs
	fig.Sizes = []int{256}
	fig.Duration = 30 * time.Millisecond
	fig.Warmup = 5 * time.Millisecond
	data, err := fig.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var infeasible, measured int
	for _, c := range data.Cells {
		switch {
		case c.Threads == 2 && c.Err != nil:
			infeasible++
		case c.Threads == 3 && c.Err == nil:
			measured++
		default:
			t.Errorf("unexpected cell %s threads=%d err=%v", c.Algorithm, c.Threads, c.Err)
		}
	}
	if infeasible != 2 || measured != 2 {
		t.Fatalf("infeasible=%d measured=%d, want 2/2", infeasible, measured)
	}
	var sb strings.Builder
	data.RenderTable(&sb)
	if !strings.Contains(sb.String(), "writers=2") || !strings.Contains(sb.String(), "mn-nogate") {
		t.Fatalf("table missing MN columns:\n%s", sb.String())
	}
}

// TestFigMNWriterSweep pins the writer-count sweep axis: WriterCounts
// multiplies the cell grid, rows carry their M, infeasible (threads ≤ M)
// cells are recorded, and the rendered table labels rows by M.
func TestFigMNWriterSweep(t *testing.T) {
	fig := FigMN()
	fig.WriterCounts = []int{1, 2}
	fig.Threads = []int{3}
	fig.Sizes = []int{256}
	fig.Duration = 20 * time.Millisecond
	fig.Warmup = 5 * time.Millisecond
	data, err := fig.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Cells) != 4 { // 2 writer counts × 1 thread × 2 algorithms
		t.Fatalf("cells = %d, want 4", len(data.Cells))
	}
	byM := map[int]int{}
	for _, c := range data.Cells {
		if c.Err != nil {
			t.Errorf("cell %s th=%d M=%d infeasible: %v", c.Algorithm, c.Threads, c.Writers, c.Err)
		}
		byM[c.Writers]++
	}
	if byM[1] != 2 || byM[2] != 2 {
		t.Fatalf("cells per M = %v, want 2 each", byM)
	}
	var sb strings.Builder
	data.RenderTable(&sb)
	out := sb.String()
	for _, want := range []string{"writers=1,2", " M", "mn-nogate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	var csv strings.Builder
	data.RenderCSV(&csv)
	if !strings.Contains(csv.String(), "mn,256,3,mn,2,") {
		t.Fatalf("csv missing M=2 row:\n%s", csv.String())
	}
}

// TestFigWriterSweepInfeasibleForSingleWriterAlg pins that sweeping M
// over a (1,N) algorithm records infeasible cells instead of failing.
func TestFigWriterSweepInfeasibleForSingleWriterAlg(t *testing.T) {
	f := Figure{
		ID:           "sweep-1n",
		Algorithms:   []Algorithm{AlgARC},
		Threads:      []int{4},
		Sizes:        []int{64},
		WriterCounts: []int{2},
		Duration:     5 * time.Millisecond,
		Warmup:       time.Millisecond,
	}
	data, err := f.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Cells) != 1 || data.Cells[0].Err == nil {
		t.Fatalf("expected one infeasible cell, got %+v", data.Cells)
	}
}

func TestMNRMWComparison(t *testing.T) {
	rep, err := RunMNRMWComparison([]int{2, 4}, 2, 256, 40*time.Millisecond, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// threads=2 leaves no reader and is skipped; threads=4 yields one row
	// per variant.
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Threads != 4 {
			t.Errorf("row threads = %d", row.Threads)
		}
		if row.ReadOps == 0 {
			t.Errorf("%s: no reads accounted", row.Algorithm)
		}
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "mn-nogate") {
		t.Fatalf("render missing mn rows:\n%s", sb.String())
	}
}
