package harness

// The wakeup-latency experiment behind `arcbench -figure watch`: one
// writer publishes timestamped values at a fixed cadence; W subscribers
// observe them either event-driven (parked on the publication
// sequencer, the notify subsystem under the Watch API) or by polling
// the freshness probe at a fixed interval. The measured
// publish→observe latency quantifies what the subsystem buys: a parked
// watcher wakes in scheduler time regardless of how rarely values
// change, while a poller's latency floor is half its poll interval —
// and its idle cost is a CPU-resident loop. This is the figure the
// paper's evaluation never shows (its readers spin), and the one that
// matters for the "millions of mostly-idle readers" deployment the
// north star names.

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"arcreg/internal/arc"
	"arcreg/internal/metrics"
	"arcreg/internal/notify"
	"arcreg/internal/register"
	"arcreg/internal/trace"
)

// WatchMode selects how a subscriber observes publications.
type WatchMode string

const (
	// ModeWatch parks on the publication sequencer between changes —
	// the notify/Watch path.
	ModeWatch WatchMode = "watch"
	// ModePoll probes freshness in a sleep loop (PollEvery per round) —
	// the pre-notify Values discipline.
	ModePoll WatchMode = "poll"
)

// WatchRunConfig describes one cell of the watch figure.
type WatchRunConfig struct {
	// Mode is the subscriber discipline; PollEvery is the poll-mode
	// sleep per probe round (ignored in watch mode).
	Mode      WatchMode
	PollEvery time.Duration
	// Watchers is the subscriber count.
	Watchers int
	// FanArity/FanDepth route watch-mode parks through the sequencer
	// gate's wakeup tree: each watcher subscribes a leaf and parks
	// there, so a publication costs the writer one root wake and the
	// fan-out runs on the tree's relay helpers. Zero means the flat
	// baseline — every watcher parks directly on the sequencer gate and
	// the writer's publish closes one channel with Watchers waiters
	// inline. Ignored in poll mode.
	FanArity int
	FanDepth int
	// PublishEvery is the writer cadence (0 = back-to-back).
	PublishEvery time.Duration
	// ValueSize is the published value size (≥ 8; the first 8 bytes
	// carry the publish timestamp).
	ValueSize int
	// Duration is the measurement window; Warmup precedes it.
	Duration time.Duration
	Warmup   time.Duration
	// SlowConsumers makes the first SlowConsumers watchers spend
	// SlowDelay "processing" each delivery before completing it — the
	// backpressure cell: a consumer that cannot keep up with the
	// publish cadence, whose ledger shows lag and conflation while the
	// fast watchers' stays near zero.
	SlowConsumers int
	SlowDelay     time.Duration
}

// WatchResult is one cell's outcome.
type WatchResult struct {
	// Published counts writer publications in the measured window;
	// Observed counts change observations summed over watchers.
	Published uint64
	Observed  uint64
	// Latency is the publish→observe distribution (ns), merged over
	// watchers.
	Latency metrics.Histogram
	Elapsed time.Duration
	// LagP50 and LagMax are the live population's backpressure lag
	// (publications known but not yet delivered), sampled mid-window
	// while the watchers run — lag is a property of a running
	// population, not of its quiescent residue.
	LagP50 uint64
	LagMax uint64
	// Conflated counts publications skipped forever by latest-value
	// conflation, Wakeups the park→wake edges, both summed over
	// watchers for the whole run.
	Conflated uint64
	Wakeups   uint64
	// PubOverhead is the writer-side cost distribution: nanoseconds per
	// Write call in the measured window. This is the column that
	// separates the flat gate from the tree — a flat publish with W
	// parked watchers closes a W-waiter channel inline, so its tail
	// grows with the audience; a tree publish wakes one root relay no
	// matter how many leaves are parked below it.
	PubOverhead metrics.Histogram
	// CascadeLat and FlushLat are the flight recorder's per-stage
	// decomposition over the trailing ring window: origin publication →
	// wakeup-tree root cascade, and → frame flush. This figure runs at
	// the register level — there is no serving edge, so FlushLat is
	// always empty here; the column exists so the watch and serve CSVs
	// share one stage-breakdown shape. ConflateDrops sums publications
	// conflated away at delivery decisions. All zero for poll cells
	// (the recorder traces the notify path, which pollers bypass).
	CascadeLat    metrics.Histogram
	FlushLat      metrics.Histogram
	ConflateDrops uint64
}

// RunWatch measures one watch-latency cell.
func RunWatch(cfg WatchRunConfig) (WatchResult, error) {
	if cfg.Watchers <= 0 {
		return WatchResult{}, fmt.Errorf("harness: watch figure needs at least one watcher, got %d", cfg.Watchers)
	}
	if cfg.ValueSize < 8 {
		cfg.ValueSize = 8
	}
	reg, err := arc.New(register.Config{
		MaxReaders:   cfg.Watchers,
		MaxValueSize: cfg.ValueSize,
	}, arc.Options{})
	if err != nil {
		return WatchResult{}, err
	}

	// Watch cells run with the flight recorder on: the register's
	// publish stamps spans, the fan tree's root relay records cascades,
	// and each watcher's lane records wakes and conflation decisions —
	// the stage-breakdown columns. The recording paths are zero-RMW and
	// zero-alloc (guard-tested), so the traced cell is the production
	// configuration. Pollers bypass the notify path entirely and stay
	// untraced.
	var tracer *trace.Tracer
	if cfg.Mode == ModeWatch {
		tracer = trace.New(trace.Config{Lanes: cfg.Watchers})
		reg.Trace(tracer.Ring("writer"))
		if cfg.FanArity > 0 {
			reg.Notifier().Fan(cfg.FanArity, cfg.FanDepth).Trace(tracer.Ring("fan"))
		}
	}

	// Timestamps are nanoseconds since base on Go's monotonic clock,
	// encoded into the value's first 8 bytes.
	base := time.Now()
	now := func() uint64 { return uint64(time.Since(base)) }

	const (
		phaseWarmup = iota
		phaseMeasure
		phaseStop
	)
	var phase atomic.Int32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var published uint64
	var pubHist metrics.Histogram
	var wg sync.WaitGroup

	// Writer: publish a timestamped value every PublishEvery, timing
	// each measured-window Write into the publisher-overhead histogram
	// (single goroutine; read only after wg.Wait).
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, cfg.ValueSize)
		for phase.Load() != phaseStop {
			binary.LittleEndian.PutUint64(buf, now())
			measured := phase.Load() == phaseMeasure
			t0 := now()
			if err := reg.Write(buf); err != nil {
				return
			}
			if measured {
				pubHist.Record(now() - t0)
				published++
			}
			if cfg.PublishEvery > 0 {
				time.Sleep(cfg.PublishEvery)
			}
		}
	}()

	// Watchers: observe every change, record publish→observe latency,
	// and keep a backpressure ledger per watcher.
	type watchStats struct {
		hist     metrics.Histogram
		observed uint64
	}
	track := &notify.Tracker{}
	stats := make([]watchStats, cfg.Watchers)
	for w := 0; w < cfg.Watchers; w++ {
		rd, err := reg.NewReaderHandle()
		if err != nil {
			phase.Store(phaseStop)
			cancel()
			wg.Wait()
			return WatchResult{}, err
		}
		var slow time.Duration
		if w < cfg.SlowConsumers {
			slow = cfg.SlowDelay
		}
		wg.Add(1)
		go func(st *watchStats, slow time.Duration) {
			defer wg.Done()
			defer rd.Close()
			ws := &notify.WatchStats{}
			var lane *trace.Ring
			if tracer != nil {
				var release func()
				lane, release = tracer.AcquireLane()
				if release != nil {
					defer release()
				}
				ws.Trace(lane)
			}
			track.Attach(ws)
			defer track.Detach(ws)
			seq := reg.Notifier()
			// Tree cell: park on a private wakeup-tree leaf instead of the
			// sequencer gate itself; the publisher's wake reaches it through
			// the relay cascade.
			var sub *notify.Sub
			if cfg.Mode == ModeWatch && cfg.FanArity > 0 {
				sub = seq.Fan(cfg.FanArity, cfg.FanDepth).Subscribe()
				defer sub.Close()
			}
			for {
				// Snapshot before read: the at-least-once discipline of
				// the Watch engine, reproduced at the register level.
				seen := seq.Epoch()
				ws.NoteSeen(seen)
				v, changed, err := rd.ViewFresh()
				if err != nil {
					return
				}
				if changed && len(v) >= 8 {
					lat := now() - binary.LittleEndian.Uint64(v)
					if phase.Load() == phaseMeasure {
						st.hist.Record(lat)
						st.observed++
					}
					// A slow consumer spends SlowDelay processing the
					// value; the delivery completes only when processing
					// does (Watch-engine semantics: NoteDelivered fires
					// after yield returns), so mid-window lag samples see
					// the backlog it accumulates.
					if slow > 0 {
						time.Sleep(slow)
					}
					// Conflation drops mirror NoteDelivered's epoch-jump
					// accounting, computed before the ledger frame advances.
					var drops uint64
					if lane != nil && ws.Delivered() > 0 && seen > ws.Observed()+1 {
						drops = seen - ws.Observed() - 1
					}
					ws.NoteDelivered(seen)
					if lane != nil {
						lane.Record(trace.StageConflate, uint32(drops), ws.LastWake(), seen)
					}
				} else {
					ws.NoteObserved(seen)
					if lane != nil {
						lane.Record(trace.StageConflate, 0, ws.LastWake(), 0)
					}
				}
				if phase.Load() == phaseStop {
					return
				}
				switch cfg.Mode {
				case ModeWatch:
					if sub != nil {
						if _, err := notify.WaitEpoch(ctx, seq.Epoch, seen, ws, sub.Gate()); err != nil {
							return
						}
					} else if _, err := seq.WaitStats(ctx, seen, ws); err != nil {
						return
					}
				default: // ModePoll: probe-and-sleep
					if cfg.PollEvery > 0 {
						time.Sleep(cfg.PollEvery)
					}
				}
			}
		}(&stats[w], slow)
	}

	time.Sleep(cfg.Warmup)
	phase.Store(phaseMeasure)
	start := time.Now()
	// Sample the live population's lag while the window runs (a slow
	// consumer's backlog exists only mid-flight; after stop every
	// watcher drains and lag collapses to zero). Keep the worst sample.
	var lagP50, lagMax uint64
	const lagSamples = 4
	for i := 0; i < lagSamples; i++ {
		time.Sleep(cfg.Duration / lagSamples)
		sn := track.Stats()
		if p50, _ := sn.Get("lag_p50"); p50 > lagP50 {
			lagP50 = p50
		}
		if max, _ := sn.Get("lag_max"); max > lagMax {
			lagMax = max
		}
	}
	phase.Store(phaseStop)
	elapsed := time.Since(start)
	// Snapshot the recorder before teardown: lanes are released (and
	// may be re-zeroed for reuse) as watchers exit.
	var breakdown trace.Breakdown
	if tracer != nil {
		breakdown = tracer.Breakdown()
	}
	cancel() // release parked watchers
	wg.Wait()

	res := WatchResult{
		Published: published, Elapsed: elapsed,
		LagP50: lagP50, LagMax: lagMax,
		PubOverhead:   pubHist,
		CascadeLat:    breakdown.Latency[trace.StageCascade],
		FlushLat:      breakdown.Latency[trace.StageFlush],
		ConflateDrops: breakdown.ConflateDrops,
	}
	// Every watcher has detached: the tracker's totals are the retired
	// sums for the whole run.
	fin := track.Stats()
	res.Conflated, _ = fin.Get("conflated")
	res.Wakeups, _ = fin.Get("wakeups")
	for i := range stats {
		res.Observed += stats[i].observed
		res.Latency.Merge(&stats[i].hist)
	}
	return res, nil
}

// WatchFigure sweeps subscriber disciplines × watcher counts.
type WatchFigure struct {
	ID           string
	Watchers     []int
	PollEvery    []time.Duration // one poll-mode series per interval
	PublishEvery time.Duration
	ValueSize    int
	Duration     time.Duration
	Warmup       time.Duration
	// SlowConsumers/SlowDelay deliberately lag that many watchers per
	// cell (see WatchRunConfig), populating the lag and conflation
	// columns with a real backpressure signal.
	SlowConsumers int
	SlowDelay     time.Duration
	// FanArity/FanDepth configure the tree-parked watch series (the
	// "watch" rows). The figure also always runs the flat baseline
	// ("watch-flat"), where every watcher parks directly on the
	// sequencer gate — the pair is the fan-out comparison. Zero arity
	// drops the tree series.
	FanArity int
	FanDepth int
}

// FigWatch returns the standard watch-latency figure: parked watchers
// versus 100µs and 1ms pollers, swept over watcher counts, with one
// deliberately slow consumer per cell so the backpressure columns
// (lag, conflation) measure a real lagging subscriber.
func FigWatch() WatchFigure {
	return WatchFigure{
		ID:            "watch",
		Watchers:      []int{1, 4, 16},
		PollEvery:     []time.Duration{100 * time.Microsecond, time.Millisecond},
		PublishEvery:  200 * time.Microsecond,
		ValueSize:     64,
		Duration:      time.Second,
		Warmup:        100 * time.Millisecond,
		SlowConsumers: 1,
		SlowDelay:     5 * time.Millisecond,
		FanArity:      notify.DefaultFanArity,
		FanDepth:      notify.DefaultFanDepth,
	}
}

// maxPollWatchers caps the poll series: above this count a poll cell
// is skipped rather than run, because N polling goroutines are N
// CPU-resident sleep loops — at 100k they measure scheduler thrash,
// not the subsystem, and would make the sweep take hours. The watch
// series has no such cap; parked watchers are free.
const maxPollWatchers = 4096

// Scale clamps the figure for smoke runs.
func (f WatchFigure) Scale(maxWatchers int, duration, warmup time.Duration) WatchFigure {
	var ws []int
	for _, w := range f.Watchers {
		if w <= maxWatchers {
			ws = append(ws, w)
		}
	}
	if len(ws) == 0 {
		ws = []int{1}
	}
	f.Watchers = ws
	if duration > 0 && duration < f.Duration {
		f.Duration = duration
	}
	if warmup > 0 && warmup < f.Warmup {
		f.Warmup = warmup
	}
	return f
}

// WatchCell is one measured figure cell.
type WatchCell struct {
	Mode      WatchMode
	PollEvery time.Duration
	Watchers  int
	// FanArity/FanDepth are the wakeup-tree topology for a tree-parked
	// watch cell; zero arity marks the flat-gate baseline.
	FanArity int
	FanDepth int
	Result   WatchResult
	Err      error
}

// Series names the cell's subscriber discipline for tables and CSV.
func (c WatchCell) Series() string {
	if c.Mode == ModeWatch {
		if c.FanArity > 0 {
			return "watch"
		}
		return "watch-flat"
	}
	return fmt.Sprintf("poll-%s", c.PollEvery)
}

// WatchData is the figure outcome.
type WatchData struct {
	Figure WatchFigure
	Cells  []WatchCell
}

// Run executes the sweep: the tree-parked watch series (when FanArity
// is set), the flat-gate baseline, and one poll series per configured
// interval, each across the watcher counts. Poll cells above
// maxPollWatchers are skipped, not silently shrunk — they simply do
// not appear in the output.
func (f WatchFigure) Run(progress func(done, total int, c WatchCell)) (WatchData, error) {
	type series struct {
		mode     WatchMode
		poll     time.Duration
		fanArity int
		fanDepth int
	}
	var sweeps []series
	if f.FanArity > 0 {
		sweeps = append(sweeps, series{ModeWatch, 0, f.FanArity, f.FanDepth})
	}
	sweeps = append(sweeps, series{ModeWatch, 0, 0, 0}) // flat baseline
	for _, p := range f.PollEvery {
		sweeps = append(sweeps, series{mode: ModePoll, poll: p})
	}
	data := WatchData{Figure: f}
	total := 0
	for _, s := range sweeps {
		for _, w := range f.Watchers {
			if s.mode == ModePoll && w > maxPollWatchers {
				continue
			}
			total++
		}
	}
	done := 0
	for _, s := range sweeps {
		for _, w := range f.Watchers {
			if s.mode == ModePoll && w > maxPollWatchers {
				continue
			}
			res, err := RunWatch(WatchRunConfig{
				Mode:          s.mode,
				PollEvery:     s.poll,
				Watchers:      w,
				FanArity:      s.fanArity,
				FanDepth:      s.fanDepth,
				PublishEvery:  f.PublishEvery,
				ValueSize:     f.ValueSize,
				Duration:      f.Duration,
				Warmup:        f.Warmup,
				SlowConsumers: f.SlowConsumers,
				SlowDelay:     f.SlowDelay,
			})
			cell := WatchCell{
				Mode: s.mode, PollEvery: s.poll, Watchers: w,
				FanArity: s.fanArity, FanDepth: s.fanDepth,
				Result: res, Err: err,
			}
			if err != nil {
				return data, err
			}
			data.Cells = append(data.Cells, cell)
			done++
			if progress != nil {
				progress(done, total, cell)
			}
		}
	}
	return data, nil
}

// RenderTable writes the figure as an ASCII table.
func (d WatchData) RenderTable(w io.Writer) {
	f := d.Figure
	fmt.Fprintf(w, "== publish→observe wakeup latency (publish every %v, value %dB, window %v, %d slow consumer(s) +%v) ==\n",
		f.PublishEvery, f.ValueSize, f.Duration, f.SlowConsumers, f.SlowDelay)
	fmt.Fprintf(w, "%12s %9s %10s %10s %12s %12s %12s %10s %10s %8s %8s %10s %9s %12s %10s\n",
		"series", "watchers", "published", "observed", "lat p50", "lat p99", "lat max",
		"pub p50", "pub p99", "lag p50", "lag max", "conflated", "wakeups",
		"cascade p99", "drops")
	for _, c := range d.Cells {
		r := c.Result
		fmt.Fprintf(w, "%12s %9d %10d %10d %12s %12s %12s %10s %10s %8d %8d %10d %9d %12s %10d\n",
			c.Series(), c.Watchers, r.Published, r.Observed,
			metrics.Duration(r.Latency.Quantile(0.5)),
			metrics.Duration(r.Latency.Quantile(0.99)),
			time.Duration(r.Latency.Max()),
			metrics.Duration(r.PubOverhead.Quantile(0.5)),
			metrics.Duration(r.PubOverhead.Quantile(0.99)),
			r.LagP50, r.LagMax, r.Conflated, r.Wakeups,
			metrics.Duration(r.CascadeLat.Quantile(0.99)),
			r.ConflateDrops)
	}
}

// RenderCSV appends machine-readable rows.
func (d WatchData) RenderCSV(w io.Writer) {
	// New columns go at the end: CI's smoke grep matches the prefix of
	// this header, and downstream plotting scripts index by name.
	fmt.Fprintln(w, "figure,series,watchers,publish_every_us,poll_every_us,published,observed,lat_p50_ns,lat_p99_ns,lat_max_ns,lag_p50,lag_max,conflated,wakeups,pub_p50_ns,pub_p99_ns,cascade_p99_ns,conflate_drops,flush_p99_ns")
	for _, c := range d.Cells {
		r := c.Result
		fmt.Fprintf(w, "%s,%s,%d,%.1f,%.1f,%d,%d,%.0f,%.0f,%d,%d,%d,%d,%d,%.0f,%.0f,%.0f,%d,%.0f\n",
			d.Figure.ID, c.Series(), c.Watchers,
			float64(d.Figure.PublishEvery)/float64(time.Microsecond),
			float64(c.PollEvery)/float64(time.Microsecond),
			r.Published, r.Observed,
			r.Latency.Quantile(0.5), r.Latency.Quantile(0.99), r.Latency.Max(),
			r.LagP50, r.LagMax, r.Conflated, r.Wakeups,
			r.PubOverhead.Quantile(0.5), r.PubOverhead.Quantile(0.99),
			r.CascadeLat.Quantile(0.99), r.ConflateDrops, r.FlushLat.Quantile(0.99))
	}
}
