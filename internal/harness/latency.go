package harness

import (
	"fmt"
	"io"
	"time"

	"arcreg/internal/metrics"
	"arcreg/internal/workload"
)

// LatencyRow is one line of the latency experiment: per-operation read and
// write latency quantiles for an algorithm under the standard deployment.
// The paper reports throughput only; tail latency is the supplementary
// view that exposes seqlock's unbounded read retries and the lock/
// Left-Right writer stalls that aggregate throughput hides. AlgMap rows
// run the keyed store through its single-key adapter, so its
// directory-probe-then-value-read path is held to the same tail-latency
// scrutiny as the raw algorithms.
type LatencyRow struct {
	Algorithm Algorithm
	Threads   int
	ReadLat   metrics.Histogram
	WriteLat  metrics.Histogram
}

// LatencyReport is the experiment outcome.
type LatencyReport struct {
	Size     int
	Steal    float64
	Duration time.Duration
	Rows     []LatencyRow
}

// RunLatencyComparison samples per-op latencies for the given algorithms.
// Sampling records every 64th operation so the clock reads stay out of
// the measured contention path.
func RunLatencyComparison(algs []Algorithm, threads, size int, stealFrac float64, duration, warmup time.Duration) (LatencyReport, error) {
	rep := LatencyReport{Size: size, Steal: stealFrac, Duration: duration}
	for _, alg := range algs {
		if threads-1 > alg.MaxReaders() {
			continue
		}
		res, err := Run(RunConfig{
			Algorithm:     alg,
			Threads:       threads,
			ValueSize:     size,
			Mode:          workload.Dummy,
			Duration:      duration,
			Warmup:        warmup,
			StealFraction: stealFrac,
			LatencySample: 64,
		})
		if err != nil {
			return rep, fmt.Errorf("latency experiment (%s): %w", alg, err)
		}
		rep.Rows = append(rep.Rows, LatencyRow{
			Algorithm: alg,
			Threads:   threads,
			ReadLat:   res.ReadLat,
			WriteLat:  res.WriteLat,
		})
	}
	return rep, nil
}

// Render writes the report as an ASCII table (nanoseconds).
func (rep LatencyReport) Render(w io.Writer) {
	fmt.Fprintf(w, "== per-operation latency (size %s, steal %.0f%%, window %v) ==\n",
		fmtSize(rep.Size), rep.Steal*100, rep.Duration)
	fmt.Fprintf(w, "%12s %9s %8s %12s %12s %12s %12s %12s %12s\n",
		"algorithm", "waitfree", "threads", "read p50", "read p99", "read max", "write p50", "write p99", "write max")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%12s %9s %8d %12s %12s %12s %12s %12s %12s\n",
			r.Algorithm, r.Algorithm.WaitFreeLabel(), r.Threads,
			metrics.Duration(r.ReadLat.Quantile(0.5)), metrics.Duration(r.ReadLat.Quantile(0.99)),
			time.Duration(r.ReadLat.Max()),
			metrics.Duration(r.WriteLat.Quantile(0.5)), metrics.Duration(r.WriteLat.Quantile(0.99)),
			time.Duration(r.WriteLat.Max()))
	}
}
