package harness

import (
	"fmt"
	"io"
	"time"

	"arcreg/internal/workload"
)

// RMWRow is one line of the RMW-accounting experiment: how many
// read-modify-write instructions each algorithm spends per read — the
// mechanism behind the paper's §1/§5 claim that ARC outperforms RF by
// avoiding RMW execution on reads of unchanged content.
type RMWRow struct {
	Algorithm     Algorithm
	Threads       int
	ReadOps       uint64
	ReadRMW       uint64
	FastPathReads uint64
	WriteOps      uint64
	WriteRMW      uint64
}

// RMWPerRead is the average RMW instructions per read operation.
func (r RMWRow) RMWPerRead() float64 {
	if r.ReadOps == 0 {
		return 0
	}
	return float64(r.ReadRMW) / float64(r.ReadOps)
}

// FastPathShare is the fraction of reads served with zero RMW.
func (r RMWRow) FastPathShare() float64 {
	if r.ReadOps == 0 {
		return 0
	}
	return float64(r.FastPathReads) / float64(r.ReadOps)
}

// RMWReport is the experiment outcome.
type RMWReport struct {
	Size     int
	Duration time.Duration
	Rows     []RMWRow
}

// RunRMWComparison measures RMW economy for ARC, the fast-path-ablated
// ARC, and RF across the given thread counts. RF issues exactly one RMW
// per read by construction; ARC's count falls with concurrency because
// more reads land on unchanged content (the scenario §5 highlights).
func RunRMWComparison(threads []int, size int, duration, warmup time.Duration) (RMWReport, error) {
	rep := RMWReport{Size: size, Duration: duration}
	for _, th := range threads {
		for _, alg := range []Algorithm{AlgARC, AlgARCNoFast, AlgRF} {
			if th-1 > alg.MaxReaders() {
				continue
			}
			res, err := Run(RunConfig{
				Algorithm: alg,
				Threads:   th,
				ValueSize: size,
				Mode:      workload.Dummy,
				Duration:  duration,
				Warmup:    warmup,
			})
			if err != nil {
				return rep, fmt.Errorf("rmw experiment (%s, %d threads): %w", alg, th, err)
			}
			// Use the protocol counters for both numerator and
			// denominator: they cover the same operations (warmup
			// included), unlike the measured-window op counts.
			rep.Rows = append(rep.Rows, RMWRow{
				Algorithm:     alg,
				Threads:       th,
				ReadOps:       res.ReadStat.Ops,
				ReadRMW:       res.ReadStat.RMW,
				FastPathReads: res.ReadStat.FastPath,
				WriteOps:      res.WriteStat.Ops,
				WriteRMW:      res.WriteStat.RMW,
			})
		}
	}
	return rep, nil
}

// RunMNRMWComparison measures the RMW economy of the (M,N) composite:
// the fresh-gated collect versus its always-View ablation, at a fixed
// writer count across the given total thread counts. The composite
// ReadStats aggregate component RMW per composite read, so the table's
// rmw/read column is directly comparable to the (1,N) rows: a
// read-dominated steady state shows ~0 for the gated collect. Thread
// counts that leave no reader beside the writers are skipped.
func RunMNRMWComparison(threads []int, writers, size int, duration, warmup time.Duration) (RMWReport, error) {
	rep := RMWReport{Size: size, Duration: duration}
	for _, th := range threads {
		if th < writers+1 {
			continue
		}
		for _, alg := range []Algorithm{AlgMN, AlgMNNoGate} {
			res, err := Run(RunConfig{
				Algorithm: alg,
				Threads:   th,
				Writers:   writers,
				ValueSize: size,
				Mode:      workload.Dummy,
				Duration:  duration,
				Warmup:    warmup,
			})
			if err != nil {
				return rep, fmt.Errorf("mn rmw experiment (%s, %d threads): %w", alg, th, err)
			}
			rep.Rows = append(rep.Rows, RMWRow{
				Algorithm:     alg,
				Threads:       th,
				ReadOps:       res.ReadStat.Ops,
				ReadRMW:       res.ReadStat.RMW,
				FastPathReads: res.ReadStat.FastPath,
				WriteOps:      res.WriteStat.Ops,
				WriteRMW:      res.WriteStat.RMW,
			})
		}
	}
	return rep, nil
}

// Render writes the report as an ASCII table.
func (rep RMWReport) Render(w io.Writer) {
	fmt.Fprintf(w, "== RMW accounting (register size %s, window %v) ==\n", fmtSize(rep.Size), rep.Duration)
	fmt.Fprintf(w, "%8s %16s %9s %14s %14s %12s %12s\n",
		"threads", "algorithm", "waitfree", "reads", "rmw/read", "fastpath%", "rmw/write")
	for _, r := range rep.Rows {
		perWrite := 0.0
		if r.WriteOps > 0 {
			perWrite = float64(r.WriteRMW) / float64(r.WriteOps)
		}
		fmt.Fprintf(w, "%8d %16s %9s %14d %14.4f %11.1f%% %12.2f\n",
			r.Threads, r.Algorithm, r.Algorithm.WaitFreeLabel(), r.ReadOps, r.RMWPerRead(), r.FastPathShare()*100, perWrite)
	}
}
