// Package harness runs the paper's evaluation (§5): it deploys one writer
// thread and N−1 reader threads against a chosen register implementation,
// measures throughput over a timed window, and renders the series behind
// every figure — thread sweeps across register sizes on a "physical"
// deployment (Figure 1), the same sweeps under simulated CPU steal
// standing in for the 40-vCPU virtualized host (Figure 2), and heavily
// oversubscribed thread counts (Figure 3). It also runs the
// RMW-accounting and ablation experiments that quantify ARC's two
// optimizations (the R1–R2 fast path and the §3.4 free-slot hint).
//
// Measurement discipline: workers spin on the operation loop and count
// into goroutine-local state; a shared phase word (warmup → measure →
// stop) delimits the window; all aggregation happens after the workers
// join. Throughput is reported in Mops/s, the unit of the paper's plots.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"arcreg/internal/affinity"
	"arcreg/internal/arc"
	"arcreg/internal/history"
	"arcreg/internal/leftright"
	"arcreg/internal/lockreg"
	"arcreg/internal/membuf"
	"arcreg/internal/metrics"
	"arcreg/internal/mnreg"
	"arcreg/internal/peterson"
	"arcreg/internal/register"
	"arcreg/internal/regmap"
	"arcreg/internal/rf"
	"arcreg/internal/seqlock"
	"arcreg/internal/steal"
	"arcreg/internal/word"
	"arcreg/internal/workload"
)

// Algorithm names a register implementation (or an ARC ablation variant).
type Algorithm string

// The benchmarkable algorithms. The two arc-no* variants are ablations of
// the paper's optimizations, used by the ablation experiment only.
const (
	AlgARC       Algorithm = "arc"
	AlgARCNoFast Algorithm = "arc-nofastpath"
	AlgARCNoHint Algorithm = "arc-nohint"
	AlgRF        Algorithm = "rf"
	AlgPeterson  Algorithm = "peterson"
	AlgLock      Algorithm = "lock"
	// Extension baselines beyond the paper's comparison set (see the
	// seqlock and leftright package docs for their progress properties).
	AlgSeqlock   Algorithm = "seqlock"
	AlgLeftRight Algorithm = "leftright"
	// The (M,N) composite built from M ARC components, with the
	// freshness-gated collect and its always-View ablation. These are the
	// only algorithms that support RunConfig.Writers > 1.
	AlgMN       Algorithm = "mn"
	AlgMNNoGate Algorithm = "mn-nogate"
	// The regmap sharded snapshot map, adapted to the (1,N) contract
	// through a single key — every operation runs the full map path
	// (shard routing, directory probe, key lookup, value register), so
	// the conformance battery and single runs measure the map's real
	// overhead versus raw ARC.
	AlgMap Algorithm = "map"
)

// Algorithms lists the standard comparison set of the paper's Figures 1–2.
func Algorithms() []Algorithm {
	return []Algorithm{AlgARC, AlgRF, AlgPeterson, AlgLock}
}

// ParseAlgorithm converts a CLI string.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch Algorithm(s) {
	case AlgARC, AlgARCNoFast, AlgARCNoHint, AlgRF, AlgPeterson, AlgLock,
		AlgSeqlock, AlgLeftRight, AlgMN, AlgMNNoGate, AlgMap:
		return Algorithm(s), nil
	}
	return "", fmt.Errorf("harness: unknown algorithm %q", s)
}

// IsMN reports whether the algorithm is an (M,N) composite variant.
func (a Algorithm) IsMN() bool { return a == AlgMN || a == AlgMNNoGate }

// MaxReaders reports the algorithm's architectural reader bound: 58 for
// RF, 2³²−2 for the ARC variants, administrative limits for the rest.
func (a Algorithm) MaxReaders() int {
	switch a {
	case AlgRF:
		return rf.MaxReaders
	case AlgPeterson:
		return peterson.MaxReaders
	case AlgLock:
		return lockreg.MaxReaders
	case AlgSeqlock:
		return seqlock.MaxReaders
	case AlgLeftRight:
		return leftright.MaxReaders
	default:
		return int(word.ARCMaxReaders)
	}
}

// Caps reports the named algorithm's capability set (register.Caps).
// Capabilities are constants per implementation, published through
// CapabilityReporter; this constructs a minimal instance to read them,
// so the summary tables surface Caps.WaitFree* without hand-maintained
// duplicates.
func (a Algorithm) Caps() register.Caps {
	cfg := register.Config{MaxReaders: 1, MaxValueSize: 64}
	if a.IsMN() {
		r, err := mnreg.New(mnreg.Config{Writers: 2, Readers: 1, MaxValueSize: 64}, mnreg.Options{})
		if err != nil {
			return register.Caps{}
		}
		return r.Caps()
	}
	r, err := NewRegister(a, cfg)
	if err != nil {
		return register.Caps{}
	}
	return register.CapsOf(r)
}

// WaitFreeLabel renders the algorithm's wait-freedom capabilities for
// the summary tables: "r+w" (both sides wait-free), "r" or "w" (one
// side), "-" (neither).
func (a Algorithm) WaitFreeLabel() string {
	c := a.Caps()
	switch {
	case c.WaitFreeRead && c.WaitFreeWrite:
		return "r+w"
	case c.WaitFreeRead:
		return "r"
	case c.WaitFreeWrite:
		return "w"
	}
	return "-"
}

// NewRegister constructs the named register.
func NewRegister(alg Algorithm, cfg register.Config) (register.Register, error) {
	switch alg {
	case AlgARC:
		return arc.New(cfg, arc.Options{})
	case AlgARCNoFast:
		return arc.New(cfg, arc.Options{DisableFastPath: true})
	case AlgARCNoHint:
		return arc.New(cfg, arc.Options{DisableFreeHint: true})
	case AlgRF:
		return rf.New(cfg)
	case AlgPeterson:
		return peterson.New(cfg)
	case AlgLock:
		return lockreg.New(cfg)
	case AlgSeqlock:
		return seqlock.New(cfg)
	case AlgLeftRight:
		return leftright.New(cfg)
	case AlgMap:
		return regmap.NewSingleKeyRegister(cfg)
	}
	return nil, fmt.Errorf("harness: unknown algorithm %q", alg)
}

// RunConfig describes one measured deployment — one cell of a figure.
type RunConfig struct {
	Algorithm Algorithm
	// Threads is the total worker count: Writers writers + the rest
	// readers (1 writer + Threads−1 readers in the paper's deployment
	// shape). Minimum Writers+1.
	Threads int
	// Writers is the number of writer threads. 0 defaults to 1, the
	// paper's (1,N) shape. Values above 1 require an (M,N) algorithm
	// (AlgMN / AlgMNNoGate), which deploys an M-component composite.
	Writers int
	// ValueSize is the register value size in bytes (4KB/32KB/128KB in
	// the paper).
	ValueSize int
	// Mode selects dummy (max contention) or processing workloads.
	Mode workload.Mode
	// Duration is the measurement window; Warmup precedes it.
	Duration time.Duration
	Warmup   time.Duration
	// StealFraction > 0 enables the virtualized-platform simulation.
	StealFraction float64
	// StealSlice overrides the steal event length (0 = default).
	StealSlice time.Duration
	// Pin binds workers to CPUs round-robin when supported and when
	// Threads ≤ NumCPU (the paper's physical-machine regime).
	Pin bool
	// LatencySample records every Nth operation's latency (0 = off).
	LatencySample int
	// Seed makes steal schedules reproducible.
	Seed uint64
}

func (c *RunConfig) defaults() error {
	if c.Writers == 0 {
		c.Writers = 1
	}
	if c.Writers < 0 {
		return fmt.Errorf("harness: negative writer count %d", c.Writers)
	}
	if c.Writers > 1 && !c.Algorithm.IsMN() {
		return fmt.Errorf("harness: %s is a (1,N) register; %d writers need the mn algorithm",
			c.Algorithm, c.Writers)
	}
	if c.Threads < c.Writers+1 {
		return fmt.Errorf("harness: need ≥ %d threads (%d writers + readers), got %d",
			c.Writers+1, c.Writers, c.Threads)
	}
	if c.ValueSize <= 0 {
		c.ValueSize = register.DefaultMaxValueSize
	}
	if c.ValueSize < membuf.MinPayload {
		c.ValueSize = membuf.MinPayload
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Warmup < 0 {
		return errors.New("harness: negative warmup")
	}
	if c.Warmup == 0 {
		c.Warmup = 100 * time.Millisecond
	}
	if readers := c.Threads - c.Writers; readers > c.Algorithm.MaxReaders() {
		return fmt.Errorf("harness: %d readers exceed %s's limit of %d",
			readers, c.Algorithm, c.Algorithm.MaxReaders())
	}
	return nil
}

// deployment abstracts the register under test over the (1,N) and (M,N)
// shapes: the writer endpoints (one per writer worker) and a reader
// factory. Writer endpoints that implement register.StatWriter and reader
// handles that implement register.StatReader contribute to the Result's
// aggregate stats.
type deployment struct {
	writers   []register.Writer
	newReader func() (register.Reader, error)
}

func newDeployment(cfg RunConfig, seed []byte) (*deployment, error) {
	readers := cfg.Threads - cfg.Writers
	if cfg.Algorithm.IsMN() {
		reg, err := mnreg.New(mnreg.Config{
			Writers:      cfg.Writers,
			Readers:      readers,
			MaxValueSize: cfg.ValueSize,
			Initial:      seed,
		}, mnreg.Options{DisableFreshGate: cfg.Algorithm == AlgMNNoGate})
		if err != nil {
			return nil, err
		}
		d := &deployment{newReader: func() (register.Reader, error) { return reg.NewReader() }}
		for i := 0; i < cfg.Writers; i++ {
			w, err := reg.NewWriter()
			if err != nil {
				return nil, fmt.Errorf("harness: mn writer %d: %w", i, err)
			}
			d.writers = append(d.writers, w)
		}
		return d, nil
	}
	reg, err := NewRegister(cfg.Algorithm, register.Config{
		MaxReaders:   readers,
		MaxValueSize: cfg.ValueSize,
		Initial:      seed,
	})
	if err != nil {
		return nil, err
	}
	return &deployment{writers: []register.Writer{reg.Writer()}, newReader: reg.NewReader}, nil
}

// Result aggregates one run.
type Result struct {
	Config    RunConfig
	ReadOps   uint64
	WriteOps  uint64
	Elapsed   time.Duration
	ReadStat  register.ReadStats
	WriteStat register.WriteStats
	Steal     steal.VCPUStats
	ReadLat   metrics.Histogram
	WriteLat  metrics.Histogram
	// Sink defeats dead-code elimination across the measurement; it also
	// lets callers confirm reads observed real data.
	Sink uint64
}

// Throughput returns the combined read+write rate in the measured window —
// the quantity on the paper's y-axes.
func (r Result) Throughput() metrics.Throughput {
	return metrics.Throughput{Ops: r.ReadOps + r.WriteOps, Elapsed: r.Elapsed}
}

// Mops is shorthand for Throughput().Mops().
func (r Result) Mops() float64 { return r.Throughput().Mops() }

// run phases.
const (
	phaseWarmup = iota
	phaseMeasure
	phaseStop
)

// loopEnv is the shared measured-operation machinery used by Run and
// RunMap: the phase word, the all-spawned start gate, the steal
// injector, CPU pinning and latency sampling. Extracting it keeps the
// measurement discipline (spawn gating, warmup window, op counting)
// identical across the register and map deployments.
type loopEnv struct {
	phase         atomic.Uint32
	start         chan struct{}
	clock         *history.Clock
	inj           *steal.Injector
	pin           bool
	latencySample int
}

func newLoopEnv(threads int, pin bool, latencySample int, stealCfg steal.Config) (*loopEnv, error) {
	inj, err := steal.NewInjector(stealCfg)
	if err != nil {
		return nil, err
	}
	return &loopEnv{
		start:         make(chan struct{}),
		clock:         history.NewClock(),
		inj:           inj,
		pin:           pin && affinity.Available() && threads <= runtime.NumCPU(),
		latencySample: latencySample,
	}, nil
}

// loop drives one worker: block until every worker exists (without this
// gate, spawning degenerates at oversubscribed thread counts — the
// first spawned workers saturate the CPUs and the spawning goroutine
// waits out their scheduler quanta between spawns), pin if requested,
// then spin on body until phaseStop, counting ops and sampling latency
// inside the measured window only.
func (e *loopEnv) loop(id int, body func() error) (ops uint64, lat metrics.Histogram, vs steal.VCPUStats, err error) {
	<-e.start
	if e.pin {
		if release, perr := affinity.Pin(id % runtime.NumCPU()); perr == nil {
			defer release()
		}
	}
	vcpu := e.inj.VCPU(id)
	for {
		p := e.phase.Load()
		if p == phaseStop {
			break
		}
		sample := e.latencySample > 0 && p == phaseMeasure &&
			ops%uint64(e.latencySample) == 0
		var t0 int64
		if sample {
			t0 = e.clock.Now()
		}
		if err = body(); err != nil {
			return ops, lat, vcpu.Stats(), err
		}
		if sample {
			lat.RecordSince(t0, e.clock.Now())
		}
		if p == phaseMeasure {
			ops++
		}
		vcpu.Tick()
	}
	return ops, lat, vcpu.Stats(), nil
}

// window releases the workers, sleeps out warmup + duration, stops the
// run and reports the measured window's length.
func (e *loopEnv) window(warmup, duration time.Duration) time.Duration {
	close(e.start)
	time.Sleep(warmup)
	t0 := time.Now()
	e.phase.Store(phaseMeasure)
	time.Sleep(duration)
	e.phase.Store(phaseStop)
	return time.Since(t0)
}

// abort stops a run whose setup failed before the window opened.
func (e *loopEnv) abort() {
	e.phase.Store(phaseStop)
	close(e.start)
}

// Run executes one measured deployment.
func Run(cfg RunConfig) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	readers := cfg.Threads - cfg.Writers

	seed := make([]byte, cfg.ValueSize)
	membuf.Encode(seed, 0)
	dep, err := newDeployment(cfg, seed)
	if err != nil {
		return Result{}, err
	}

	env, err := newLoopEnv(cfg.Threads, cfg.Pin, cfg.LatencySample, steal.Config{
		Fraction: cfg.StealFraction,
		Slice:    cfg.StealSlice,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return Result{}, err
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards the aggregates below after workers finish
		res      Result
		workErrs []error
	)
	res.Config = cfg

	worker := func(id int, body func() error, cleanup func(), done func(ops uint64, lat *metrics.Histogram, vs steal.VCPUStats)) {
		defer wg.Done()
		if cleanup != nil {
			// Runs on every exit, including the error path: a reader
			// abandoning a pinned lock view would deadlock the writer.
			defer cleanup()
		}
		ops, lat, vs, err := env.loop(id, body)
		if err != nil {
			mu.Lock()
			workErrs = append(workErrs, fmt.Errorf("worker %d: %w", id, err))
			mu.Unlock()
			return
		}
		done(ops, &lat, vs)
	}

	// Writers (workers 0..Writers-1); one for the paper's (1,N) shape, M
	// for the (M,N) composite.
	for i, wr := range dep.writers {
		wr := wr
		ww := workload.NewWriterWork(wr, cfg.Mode, cfg.ValueSize)
		wg.Add(1)
		go worker(i, ww.Do, nil, func(ops uint64, lat *metrics.Histogram, vs steal.VCPUStats) {
			mu.Lock()
			defer mu.Unlock()
			res.WriteOps += ops
			res.WriteLat.Merge(lat)
			res.Steal.Steals += vs.Steals
			res.Steal.Stolen += vs.Stolen
			res.Steal.Ticks += vs.Ticks
			if sw, ok := wr.(register.StatWriter); ok {
				res.WriteStat.Add(sw.WriteStats())
			}
		})
	}

	// Readers (workers Writers..Threads-1). Handles and workload state are
	// created here, serially, before any worker runs.
	for i := 0; i < readers; i++ {
		rd, err := dep.newReader()
		if err != nil {
			env.abort()
			wg.Wait()
			return Result{}, fmt.Errorf("harness: reader %d: %w", i, err)
		}
		rw := workload.NewReaderWork(rd, cfg.Mode, cfg.ValueSize)
		wg.Add(1)
		go worker(cfg.Writers+i, rw.Do,
			func() {
				// Release the handle on every exit: lock-register views
				// pin the read lock until the next handle operation, and
				// a pinned view left behind would block the writer's
				// final iteration forever.
				rd.Close()
			},
			func(ops uint64, lat *metrics.Histogram, vs steal.VCPUStats) {
				mu.Lock()
				defer mu.Unlock()
				res.ReadOps += ops
				res.ReadLat.Merge(lat)
				res.Sink += rw.Sink()
				res.Steal.Steals += vs.Steals
				res.Steal.Stolen += vs.Stolen
				res.Steal.Ticks += vs.Ticks
				if sr, ok := rd.(register.StatReader); ok {
					res.ReadStat.Add(sr.ReadStats())
				}
			})
	}

	elapsed := env.window(cfg.Warmup, cfg.Duration)
	wg.Wait()

	if len(workErrs) > 0 {
		return Result{}, errors.Join(workErrs...)
	}
	res.Elapsed = elapsed
	return res, nil
}
