// Package regtest is the cross-algorithm conformance battery: one set of
// behavioral requirements, applied uniformly to every register
// implementation in the repository through the harness registry. The
// per-package tests probe each algorithm's internals; this suite pins the
// shared contract (register.Register/Reader/Writer semantics) so the
// implementations cannot drift apart — any new register added to the
// harness is automatically held to it.
package regtest

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"arcreg/internal/harness"
	"arcreg/internal/membuf"
	"arcreg/internal/register"
)

// Constructor builds a register for one battery case. Implementations
// fail the test on construction errors.
type Constructor func(t *testing.T, readers, size int, initial []byte) register.Register

// Conformance runs the full battery against the named algorithm.
func Conformance(t *testing.T, alg harness.Algorithm) {
	t.Helper()
	ConformanceConstructor(t, func(t *testing.T, readers, size int, initial []byte) register.Register {
		t.Helper()
		r, err := harness.NewRegister(alg, register.Config{
			MaxReaders:   readers,
			MaxValueSize: size,
			Initial:      initial,
		})
		if err != nil {
			t.Fatalf("construct %s: %v", alg, err)
		}
		return r
	})
}

// ConformanceConstructor runs the full battery against registers built
// by mk — the hook that holds adapters and facades (not just the raw
// algorithms) to the shared contract.
func ConformanceConstructor(t *testing.T, mk Constructor) {
	t.Helper()

	t.Run("identity", func(t *testing.T) {
		r := mk(t, 2, 64, nil)
		if r.Name() == "" {
			t.Error("empty Name()")
		}
		if r.MaxReaders() != 2 {
			t.Errorf("MaxReaders() = %d", r.MaxReaders())
		}
		if r.MaxValueSize() != 64 {
			t.Errorf("MaxValueSize() = %d", r.MaxValueSize())
		}
		if r.Writer() == nil {
			t.Error("nil Writer()")
		}
	})

	t.Run("initial-value", func(t *testing.T) {
		r := mk(t, 1, 32, []byte("genesis"))
		rd, err := r.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		buf := make([]byte, 32)
		n, err := rd.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf[:n]) != "genesis" {
			t.Errorf("initial read %q", buf[:n])
		}
	})

	t.Run("roundtrip", func(t *testing.T) {
		r := mk(t, 1, 128, nil)
		rd, _ := r.NewReader()
		defer rd.Close()
		w := r.Writer()
		buf := make([]byte, 128)
		for i := 0; i < 64; i++ {
			val := []byte(fmt.Sprintf("value-%03d", i))
			if err := w.Write(val); err != nil {
				t.Fatal(err)
			}
			n, err := rd.Read(buf)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf[:n], val) {
				t.Fatalf("iteration %d: %q != %q", i, buf[:n], val)
			}
		}
	})

	t.Run("variable-sizes", func(t *testing.T) {
		r := mk(t, 1, 256, nil)
		rd, _ := r.NewReader()
		defer rd.Close()
		buf := make([]byte, 256)
		for _, size := range []int{0, 1, 7, 8, 9, 63, 64, 255, 256} {
			val := bytes.Repeat([]byte{byte(size)}, size)
			if err := r.Writer().Write(val); err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
			n, err := rd.Read(buf)
			if err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
			if n != size || !bytes.Equal(buf[:n], val) {
				t.Fatalf("size %d read back as %d bytes", size, n)
			}
		}
	})

	t.Run("oversized-write", func(t *testing.T) {
		r := mk(t, 1, 16, nil)
		if err := r.Writer().Write(make([]byte, 17)); !errors.Is(err, register.ErrValueTooLarge) {
			t.Errorf("got %v", err)
		}
		// The register keeps working after a rejected write.
		if err := r.Writer().Write([]byte("ok")); err != nil {
			t.Errorf("write after rejection: %v", err)
		}
	})

	t.Run("buffer-too-small", func(t *testing.T) {
		r := mk(t, 1, 32, nil)
		rd, _ := r.NewReader()
		defer rd.Close()
		if err := r.Writer().Write([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		n, err := rd.Read(make([]byte, 3))
		if !errors.Is(err, register.ErrBufferTooSmall) {
			t.Fatalf("err = %v", err)
		}
		if n != 10 {
			t.Fatalf("needed length = %d, want 10", n)
		}
		// And the handle still works with an adequate buffer.
		if _, err := rd.Read(make([]byte, 32)); err != nil {
			t.Fatalf("read after short buffer: %v", err)
		}
	})

	t.Run("capacity-and-recycling", func(t *testing.T) {
		r := mk(t, 2, 16, nil)
		a, err := r.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.NewReader(); !errors.Is(err, register.ErrTooManyReaders) {
			t.Fatalf("over-capacity NewReader: %v", err)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		c, err := r.NewReader()
		if err != nil {
			t.Fatalf("NewReader after Close: %v", err)
		}
		b.Close()
		c.Close()
	})

	t.Run("closed-handle", func(t *testing.T) {
		r := mk(t, 1, 16, nil)
		rd, _ := r.NewReader()
		if err := rd.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := rd.Read(make([]byte, 16)); !errors.Is(err, register.ErrReaderClosed) {
			t.Errorf("Read after close: %v", err)
		}
		if err := rd.Close(); !errors.Is(err, register.ErrReaderClosed) {
			t.Errorf("double Close: %v", err)
		}
	})

	t.Run("view-consistency", func(t *testing.T) {
		r := mk(t, 1, 64, nil)
		rd, _ := r.NewReader()
		defer rd.Close()
		v, ok := rd.(register.Viewer)
		if !ok {
			t.Skip("no zero-copy view")
		}
		scratch := make([]byte, 64)
		for i := 0; i < 16; i++ {
			val := []byte(fmt.Sprintf("view-%02d", i))
			if err := r.Writer().Write(val); err != nil {
				t.Fatal(err)
			}
			got, err := v.View()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, val) {
				t.Fatalf("view %q want %q", got, val)
			}
			// Release the pin before the next write: for the lock and
			// Left-Right registers a live view BLOCKS the writer (their
			// documented semantics), and writer and viewer share this
			// goroutine. A copying Read leaves no pin behind on any
			// implementation.
			if _, err := rd.Read(scratch); err != nil {
				t.Fatal(err)
			}
		}
	})

	t.Run("freshness-contract", func(t *testing.T) {
		r := mk(t, 1, 32, nil)
		rd, _ := r.NewReader()
		defer rd.Close()
		p, ok := rd.(register.FreshnessProber)
		if !ok {
			t.Skip("no freshness probe")
		}
		if p.Fresh() {
			t.Error("unread handle fresh")
		}
		rd.Read(make([]byte, 32))
		if !p.Fresh() {
			t.Error("just-read handle not fresh")
		}
		r.Writer().Write([]byte("new"))
		if p.Fresh() {
			t.Error("stale handle fresh")
		}
	})

	t.Run("concurrent-integrity", func(t *testing.T) {
		const (
			readers = 3
			writes  = 800
			size    = 256
		)
		seed := make([]byte, size)
		membuf.Encode(seed, 0)
		r := mk(t, readers, size, seed)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		errs := make(chan error, readers)
		for i := 0; i < readers; i++ {
			rd, err := r.NewReader()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer rd.Close()
				dst := make([]byte, size)
				var last uint64
				for {
					select {
					case <-stop:
						return
					default:
					}
					n, err := rd.Read(dst)
					if err != nil {
						errs <- err
						return
					}
					ver, err := membuf.Verify(dst[:n])
					if err != nil {
						errs <- fmt.Errorf("torn read: %w", err)
						return
					}
					if ver < last {
						errs <- fmt.Errorf("version regressed: %d after %d", ver, last)
						return
					}
					last = ver
				}
			}()
		}
		buf := make([]byte, size)
		for i := uint64(1); i <= writes; i++ {
			membuf.Encode(buf, i)
			if err := r.Writer().Write(buf); err != nil {
				t.Fatal(err)
			}
		}
		close(stop)
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	})
}
