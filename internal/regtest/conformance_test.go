package regtest

import (
	"testing"

	"arcreg/internal/harness"
)

// Every register implementation in the harness registry must satisfy the
// same behavioral contract.
func TestConformance(t *testing.T) {
	algs := []harness.Algorithm{
		harness.AlgARC,
		harness.AlgARCNoFast,
		harness.AlgARCNoHint,
		harness.AlgRF,
		harness.AlgPeterson,
		harness.AlgLock,
		harness.AlgSeqlock,
		harness.AlgLeftRight,
	}
	for _, alg := range algs {
		t.Run(string(alg), func(t *testing.T) {
			Conformance(t, alg)
		})
	}
}
