package regtest

import (
	"testing"

	"arcreg/internal/harness"
)

// Every register implementation in the harness registry must satisfy the
// same behavioral contract.
func TestConformance(t *testing.T) {
	algs := []harness.Algorithm{
		harness.AlgARC,
		harness.AlgARCNoFast,
		harness.AlgARCNoHint,
		harness.AlgRF,
		harness.AlgPeterson,
		harness.AlgLock,
		harness.AlgSeqlock,
		harness.AlgLeftRight,
		// The regmap sharded snapshot map, adapted through a single key:
		// Set/Get run the full directory-probe + value-register path, so
		// the map layer is held to the same (1,N) behavioral contract as
		// the raw algorithms.
		harness.AlgMap,
	}
	for _, alg := range algs {
		t.Run(string(alg), func(t *testing.T) {
			Conformance(t, alg)
		})
	}
}
