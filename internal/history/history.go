// Package history records timed read/write histories of a (1,N) register
// and checks them against the atomicity criterion the ARC paper proves its
// register satisfies (§3.1, Criterion 1):
//
//   - Regularity — a read returns either the value of the last write
//     completed before it started or the value of a write concurrent with
//     it. Equivalently: no-past (the returned write is not succeeded by
//     another write that itself completed before the read began) and
//     no-future (the returned write started before the read ended).
//
//   - No new-old inversion — for reads r1 → r2 (r1 finishes before r2
//     starts, in any processes), r2 does not return an older write than r1.
//
// For a single-writer register whose writes carry unique, monotonically
// increasing versions, these checks are a complete decision procedure for
// atomicity — no search over linearizations is needed, which is what makes
// the checker usable on millions of operations. Torn values (mixed bytes
// of two writes, detected by the membuf codec) are reported separately:
// they violate even safeness.
//
// The package is the test-side counterpart of the paper's §4: Theorem 4.3
// corresponds to the regularity checks, Theorem 4.4 to the inversion
// check.
package history

import (
	"fmt"
	"sort"
	"time"
)

// Kind discriminates operations.
type Kind uint8

const (
	// OpRead is a read operation.
	OpRead Kind = iota
	// OpWrite is a write operation.
	OpWrite
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == OpRead {
		return "read"
	}
	return "write"
}

// Op is one timed register operation. Start and End are nanoseconds on a
// single monotonic clock (see Clock); Version is the payload version
// written or observed.
type Op struct {
	Kind    Kind
	Proc    int // process id; readers ≥ 0, the writer conventionally −1
	Start   int64
	End     int64
	Version uint64
	Torn    bool // payload failed integrity verification (reads only)
}

// Clock issues timestamps comparable across goroutines. It is a thin
// wrapper over Go's monotonic clock with a common base, so recorded
// intervals can be compared as plain integers.
type Clock struct {
	base time.Time
}

// NewClock starts a clock.
func NewClock() *Clock { return &Clock{base: time.Now()} }

// Now returns nanoseconds since the clock's base.
func (c *Clock) Now() int64 { return int64(time.Since(c.base)) }

// Log is a per-goroutine operation log. Each goroutine appends to its own
// Log with no synchronization; Merge combines them after the goroutines
// quiesce.
type Log struct {
	ops []Op
}

// NewLog returns a log with capacity for n operations pre-allocated, so
// recording does not perturb the measured run with allocations.
func NewLog(n int) *Log { return &Log{ops: make([]Op, 0, n)} }

// RecordRead appends a read operation.
func (l *Log) RecordRead(proc int, start, end int64, version uint64, torn bool) {
	l.ops = append(l.ops, Op{Kind: OpRead, Proc: proc, Start: start, End: end, Version: version, Torn: torn})
}

// RecordWrite appends a write operation.
func (l *Log) RecordWrite(proc int, start, end int64, version uint64) {
	l.ops = append(l.ops, Op{Kind: OpWrite, Proc: proc, Start: start, End: end, Version: version})
}

// Len reports the number of recorded operations.
func (l *Log) Len() int { return len(l.ops) }

// Ops exposes the recorded operations (shared slice; treat as read-only).
func (l *Log) Ops() []Op { return l.ops }

// History is a merged, checkable execution history.
type History struct {
	reads  []Op
	writes []Op // sorted by version == writer program order
}

// Merge combines per-goroutine logs into a checkable history.
func Merge(logs ...*Log) *History {
	h := &History{}
	for _, l := range logs {
		for _, op := range l.ops {
			if op.Kind == OpRead {
				h.reads = append(h.reads, op)
			} else {
				h.writes = append(h.writes, op)
			}
		}
	}
	sort.Slice(h.writes, func(i, j int) bool { return h.writes[i].Version < h.writes[j].Version })
	return h
}

// Reads reports the number of read operations in the history.
func (h *History) Reads() int { return len(h.reads) }

// Writes reports the number of write operations in the history.
func (h *History) Writes() int { return len(h.writes) }

// ViolationKind classifies atomicity violations.
type ViolationKind uint8

const (
	// VTorn: a read returned bytes mixing two writes (worse than any
	// ordering violation — the value never existed).
	VTorn ViolationKind = iota
	// VUnknownVersion: a read returned a version no write produced.
	VUnknownVersion
	// VFuture: a read returned a write that started after the read ended.
	VFuture
	// VPast: a read returned a write although a newer write completed
	// before the read started (violates no-past / regularity).
	VPast
	// VInversion: reads r1 → r2 with version(r2) < version(r1)
	// (violates Criterion 1's no new-old inversion).
	VInversion
	// VWriterOrder: writer versions not strictly increasing — the
	// harness itself misbehaved.
	VWriterOrder
	// VProcOrder: a single process's reads observed decreasing versions.
	// Subsumed by VInversion but reported distinctly because it is the
	// paper's "two reads from the same process" special case.
	VProcOrder
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case VTorn:
		return "torn-read"
	case VUnknownVersion:
		return "unknown-version"
	case VFuture:
		return "future-read"
	case VPast:
		return "stale-read"
	case VInversion:
		return "new-old-inversion"
	case VWriterOrder:
		return "writer-order"
	case VProcOrder:
		return "process-order"
	}
	return "unknown"
}

// Violation is one detected atomicity breach.
type Violation struct {
	Kind   ViolationKind
	Op     Op     // the offending operation
	Detail string // human-readable specifics
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s: proc %d %s [%d,%d] version %d: %s",
		v.Kind, v.Op.Proc, v.Op.Kind, v.Op.Start, v.Op.End, v.Op.Version, v.Detail)
}

// Result summarizes a check.
type Result struct {
	Violations []Violation
	Checked    int // operations examined
}

// Ok reports whether the history is atomic.
func (r Result) Ok() bool { return len(r.Violations) == 0 }

// maxViolations caps the report so a systematically broken register does
// not drown the test output.
const maxViolations = 32

// Check decides atomicity of the history. Version 0 denotes the register's
// initial value (a write completed before every operation).
func (h *History) Check() Result {
	res := Result{Checked: len(h.reads) + len(h.writes)}
	add := func(v Violation) bool {
		if len(res.Violations) < maxViolations {
			res.Violations = append(res.Violations, v)
		}
		return len(res.Violations) < maxViolations
	}

	// Writer sanity: versions strictly increasing, intervals sequential.
	known := make(map[uint64]bool, len(h.writes)+1)
	known[0] = true
	for i, w := range h.writes {
		known[w.Version] = true
		if i > 0 {
			prev := h.writes[i-1]
			if w.Version <= prev.Version {
				if !add(Violation{VWriterOrder, w, fmt.Sprintf("version %d after %d", w.Version, prev.Version)}) {
					return res
				}
			}
			if w.Start < prev.End {
				if !add(Violation{VWriterOrder, w, fmt.Sprintf("write overlaps predecessor (start %d < prev end %d)", w.Start, prev.End)}) {
					return res
				}
			}
		}
	}

	// Regularity per read: binary search over the writer's (sequential,
	// version-ordered) intervals.
	starts := make([]int64, len(h.writes))
	ends := make([]int64, len(h.writes))
	for i, w := range h.writes {
		starts[i] = w.Start
		ends[i] = w.End
	}
	// maxCompletedBefore(t): version of the last write with End ≤ t.
	maxCompletedBefore := func(t int64) uint64 {
		i := sort.Search(len(ends), func(i int) bool { return ends[i] > t })
		if i == 0 {
			return 0
		}
		return h.writes[i-1].Version
	}
	// maxStartedBefore(t): version of the last write with Start ≤ t.
	maxStartedBefore := func(t int64) uint64 {
		i := sort.Search(len(starts), func(i int) bool { return starts[i] > t })
		if i == 0 {
			return 0
		}
		return h.writes[i-1].Version
	}

	for _, r := range h.reads {
		if r.Torn {
			if !add(Violation{VTorn, r, "payload mixes bytes of different writes"}) {
				return res
			}
			continue
		}
		if !known[r.Version] {
			if !add(Violation{VUnknownVersion, r, "no write produced this version"}) {
				return res
			}
			continue
		}
		if floor := maxCompletedBefore(r.Start); r.Version < floor {
			if !add(Violation{VPast, r, fmt.Sprintf("write %d completed before the read started", floor)}) {
				return res
			}
		}
		if ceil := maxStartedBefore(r.End); r.Version > ceil {
			if !add(Violation{VFuture, r, fmt.Sprintf("only versions ≤ %d had started when the read ended", ceil)}) {
				return res
			}
		}
	}

	// Per-process order: reads of one process are sequential; their
	// versions must not decrease. (Reads within a log are already in
	// program order; after merging, recover it per proc by Start, which
	// equals program order for sequential ops.)
	byProc := map[int][]Op{}
	for _, r := range h.reads {
		byProc[r.Proc] = append(byProc[r.Proc], r)
	}
	for _, ops := range byProc {
		sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
		var last uint64
		for _, r := range ops {
			if r.Torn {
				continue
			}
			if r.Version < last {
				if !add(Violation{VProcOrder, r, fmt.Sprintf("process previously observed version %d", last)}) {
					return res
				}
			}
			if r.Version > last {
				last = r.Version
			}
		}
	}

	// Global no new-old inversion: sweep reads by start time, tracking the
	// maximum version among reads that ended strictly before the current
	// read started.
	byStart := make([]Op, 0, len(h.reads))
	byEnd := make([]Op, 0, len(h.reads))
	for _, r := range h.reads {
		if !r.Torn {
			byStart = append(byStart, r)
			byEnd = append(byEnd, r)
		}
	}
	sort.Slice(byStart, func(i, j int) bool { return byStart[i].Start < byStart[j].Start })
	sort.Slice(byEnd, func(i, j int) bool { return byEnd[i].End < byEnd[j].End })
	var (
		maxEnded uint64
		j        int
	)
	for _, r := range byStart {
		for j < len(byEnd) && byEnd[j].End < r.Start {
			if byEnd[j].Version > maxEnded {
				maxEnded = byEnd[j].Version
			}
			j++
		}
		if r.Version < maxEnded {
			if !add(Violation{VInversion, r, fmt.Sprintf("an earlier-finished read observed version %d", maxEnded)}) {
				return res
			}
		}
	}
	return res
}
