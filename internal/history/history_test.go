package history

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// helper: build a history from op lists.
func hist(writes, reads []Op) *History {
	l := NewLog(len(writes) + len(reads))
	for _, w := range writes {
		l.RecordWrite(w.Proc, w.Start, w.End, w.Version)
	}
	for _, r := range reads {
		l.ops = append(l.ops, r)
	}
	return Merge(l)
}

func wOp(start, end int64, v uint64) Op {
	return Op{Kind: OpWrite, Proc: -1, Start: start, End: end, Version: v}
}

func rOp(proc int, start, end int64, v uint64) Op {
	return Op{Kind: OpRead, Proc: proc, Start: start, End: end, Version: v}
}

func TestEmptyHistoryOk(t *testing.T) {
	res := hist(nil, nil).Check()
	if !res.Ok() {
		t.Fatalf("empty history rejected: %v", res.Violations)
	}
}

func TestSequentialHistoryOk(t *testing.T) {
	writes := []Op{wOp(10, 20, 1), wOp(30, 40, 2), wOp(50, 60, 3)}
	reads := []Op{
		rOp(0, 0, 5, 0),   // before first write: initial value
		rOp(0, 22, 25, 1), // after write 1
		rOp(1, 45, 48, 2),
		rOp(0, 70, 75, 3),
	}
	res := hist(writes, reads).Check()
	if !res.Ok() {
		t.Fatalf("valid sequential history rejected: %v", res.Violations)
	}
	if res.Checked != 7 {
		t.Fatalf("checked = %d, want 7", res.Checked)
	}
}

func TestConcurrentReadMayReturnOldOrNew(t *testing.T) {
	writes := []Op{wOp(10, 30, 1)}
	// A read overlapping the write may return 0 or 1.
	for _, v := range []uint64{0, 1} {
		res := hist(writes, []Op{rOp(0, 15, 25, v)}).Check()
		if !res.Ok() {
			t.Fatalf("overlapping read of version %d rejected: %v", v, res.Violations)
		}
	}
}

func TestFutureReadDetected(t *testing.T) {
	writes := []Op{wOp(100, 120, 1)}
	res := hist(writes, []Op{rOp(0, 10, 20, 1)}).Check() // ends before write starts
	if res.Ok() {
		t.Fatal("future read accepted")
	}
	if res.Violations[0].Kind != VFuture {
		t.Fatalf("kind = %v, want VFuture", res.Violations[0].Kind)
	}
}

func TestStaleReadDetected(t *testing.T) {
	writes := []Op{wOp(10, 20, 1), wOp(30, 40, 2)}
	res := hist(writes, []Op{rOp(0, 50, 60, 1)}).Check() // write 2 completed before
	if res.Ok() {
		t.Fatal("stale read accepted")
	}
	if res.Violations[0].Kind != VPast {
		t.Fatalf("kind = %v, want VPast", res.Violations[0].Kind)
	}
}

func TestNewOldInversionDetected(t *testing.T) {
	// Both reads overlap the write, so each alone is regular; but r1
	// finishes before r2 starts and r1 saw the NEW value while r2 saw the
	// OLD one — the exact Criterion 1 violation.
	writes := []Op{wOp(10, 100, 1)}
	reads := []Op{
		rOp(0, 20, 30, 1),
		rOp(1, 40, 50, 0),
	}
	res := hist(writes, reads).Check()
	if res.Ok() {
		t.Fatal("new-old inversion accepted")
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == VInversion {
			found = true
		}
	}
	if !found {
		t.Fatalf("no VInversion among %v", res.Violations)
	}
}

func TestProcessOrderDetected(t *testing.T) {
	// Same process reads new then old, both overlapping the write: the
	// paper's "later read cannot return the old value if the earlier read
	// returned the new one".
	writes := []Op{wOp(10, 100, 1)}
	reads := []Op{
		rOp(0, 20, 30, 1),
		rOp(0, 40, 50, 0),
	}
	res := hist(writes, reads).Check()
	if res.Ok() {
		t.Fatal("process-order violation accepted")
	}
	kinds := map[ViolationKind]bool{}
	for _, v := range res.Violations {
		kinds[v.Kind] = true
	}
	if !kinds[VProcOrder] {
		t.Fatalf("no VProcOrder among %v", res.Violations)
	}
}

func TestTornReadDetected(t *testing.T) {
	writes := []Op{wOp(10, 20, 1)}
	reads := []Op{{Kind: OpRead, Proc: 0, Start: 30, End: 40, Version: 1, Torn: true}}
	res := hist(writes, reads).Check()
	if res.Ok() {
		t.Fatal("torn read accepted")
	}
	if res.Violations[0].Kind != VTorn {
		t.Fatalf("kind = %v, want VTorn", res.Violations[0].Kind)
	}
}

func TestUnknownVersionDetected(t *testing.T) {
	writes := []Op{wOp(10, 20, 1)}
	res := hist(writes, []Op{rOp(0, 30, 40, 7)}).Check()
	if res.Ok() {
		t.Fatal("unknown version accepted")
	}
	if res.Violations[0].Kind != VUnknownVersion {
		t.Fatalf("kind = %v, want VUnknownVersion", res.Violations[0].Kind)
	}
}

func TestWriterOrderDetected(t *testing.T) {
	l := NewLog(2)
	l.RecordWrite(-1, 10, 20, 2)
	l.RecordWrite(-1, 30, 40, 1) // decreasing version
	res := Merge(l).Check()
	if res.Ok() {
		t.Fatal("non-monotone writer accepted")
	}
}

func TestOverlappingWritesDetected(t *testing.T) {
	writes := []Op{wOp(10, 50, 1), wOp(40, 60, 2)} // overlap: two writers?
	res := hist(writes, nil).Check()
	if res.Ok() {
		t.Fatal("overlapping writes accepted in a (1,N) history")
	}
}

func TestViolationCap(t *testing.T) {
	writes := []Op{wOp(10, 20, 1), wOp(30, 40, 2)}
	var reads []Op
	for i := 0; i < 100; i++ {
		reads = append(reads, rOp(i, 50+int64(i), 60+int64(i), 1)) // all stale
	}
	res := hist(writes, reads).Check()
	if res.Ok() {
		t.Fatal("stale flood accepted")
	}
	if len(res.Violations) > maxViolations {
		t.Fatalf("violation report not capped: %d", len(res.Violations))
	}
}

func TestViolationStringHasDetail(t *testing.T) {
	writes := []Op{wOp(10, 20, 1), wOp(30, 40, 2)}
	res := hist(writes, []Op{rOp(3, 50, 60, 1)}).Check()
	if res.Ok() {
		t.Fatal("expected violation")
	}
	s := res.Violations[0].String()
	for _, want := range []string{"stale-read", "proc 3", "version 1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("violation string %q missing %q", s, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("Kind strings wrong")
	}
	for k := VTorn; k <= VProcOrder; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestClockMonotone(t *testing.T) {
	c := NewClock()
	a := c.Now()
	time.Sleep(time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("clock not monotone: %d then %d", a, b)
	}
}

// Property: a history generated by simulating an ideal atomic register
// (instantaneous operations at distinct times) always checks clean.
func TestIdealRegisterAlwaysOk(t *testing.T) {
	f := func(script []byte) bool {
		l := NewLog(len(script))
		var (
			now     int64 = 1
			version uint64
		)
		for _, b := range script {
			start := now
			now += int64(b%7) + 1
			end := now
			now++
			if b%3 == 0 {
				version++
				l.RecordWrite(-1, start, end, version)
			} else {
				l.RecordRead(int(b%4), start, end, version, false)
			}
		}
		return Merge(l).Check().Ok()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: corrupting one read of an ideal sequential history to an
// impossible version is always caught.
func TestCorruptedVersionAlwaysCaught(t *testing.T) {
	f := func(script []byte, pick uint8) bool {
		if len(script) == 0 {
			return true
		}
		l := NewLog(len(script))
		var (
			now     int64 = 1
			version uint64
		)
		reads := 0
		for _, b := range script {
			start := now
			now += int64(b%7) + 1
			end := now
			now++
			if b%3 == 0 {
				version++
				l.RecordWrite(-1, start, end, version)
			} else {
				l.RecordRead(int(b%4), start, end, version, false)
				reads++
			}
		}
		if reads == 0 || version == 0 {
			return true
		}
		// Corrupt one read to a version that never existed.
		idx := int(pick) % len(l.ops)
		for l.ops[idx].Kind != OpRead {
			idx = (idx + 1) % len(l.ops)
		}
		l.ops[idx].Version = version + 1000
		return !Merge(l).Check().Ok()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end: a mutex-guarded register with randomized delays recorded
// from many goroutines must always produce an atomic history — this
// validates the checker against true concurrency before it is trusted to
// judge the wait-free algorithms.
func TestMutexRegisterHistoryOk(t *testing.T) {
	const (
		readers = 6
		writes  = 300
	)
	var (
		mu      sync.Mutex
		value   uint64
		clock   = NewClock()
		logs    = make([]*Log, readers+1)
		wg      sync.WaitGroup
		stopped = make(chan struct{})
	)
	for i := range logs {
		logs[i] = NewLog(writes * 4)
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			l := logs[proc]
			for {
				select {
				case <-stopped:
					return
				default:
				}
				start := clock.Now()
				mu.Lock()
				v := value
				mu.Unlock()
				l.RecordRead(proc, start, clock.Now(), v, false)
			}
		}(i)
	}
	wl := logs[readers]
	for i := uint64(1); i <= writes; i++ {
		start := clock.Now()
		mu.Lock()
		value = i
		mu.Unlock()
		wl.RecordWrite(-1, start, clock.Now(), i)
	}
	close(stopped)
	wg.Wait()
	res := Merge(logs...).Check()
	if !res.Ok() {
		for _, v := range res.Violations {
			t.Error(v)
		}
		t.Fatalf("mutex register produced %d violations", len(res.Violations))
	}
	if res.Checked < writes {
		t.Fatalf("checked only %d ops", res.Checked)
	}
}
