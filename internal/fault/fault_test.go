package fault

import (
	"testing"
	"time"
)

// Test points are registered once (the registry is process-global and
// duplicate names panic by design).
var (
	tpOn    = NewPoint("fault-test/on", CanYield|CanStall|CanCrash)
	tpEvery = NewPoint("fault-test/every", CanYield|CanCrash)
	tpProb  = NewPoint("fault-test/prob", CanYield)
	tpNoCr  = NewPoint("fault-test/nocrash", CanYield|CanStall)
	tpDead  = NewPoint("fault-test/never-armed", CanYield)
)

func TestDisarmedPointIsInert(t *testing.T) {
	before := tpOn.Hits()
	for i := 0; i < 1000; i++ {
		tpOn.Hit()
	}
	if got := tpOn.Hits(); got != before {
		t.Fatalf("disarmed hits advanced: %d -> %d", before, got)
	}
}

func TestOnFiresExactlyOnce(t *testing.T) {
	s, err := NewSchedule(1, Rule{Point: tpOn.Name(), Kind: Crash, On: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	defer s.Disarm()
	crashes := 0
	for i := 0; i < 10; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					c, ok := r.(Crashed)
					if !ok {
						t.Fatalf("panic value %T, want Crashed", r)
					}
					if c.Point != tpOn.Name() || c.Hit != 3 {
						t.Fatalf("Crashed = %+v, want point %q hit 3", c, tpOn.Name())
					}
					crashes++
				}
			}()
			tpOn.Hit()
		}()
	}
	if crashes != 1 {
		t.Fatalf("On=3 fired %d times over 10 hits, want 1", crashes)
	}
}

func TestEveryCadence(t *testing.T) {
	s, err := NewSchedule(1, Rule{Point: tpEvery.Name(), Kind: Yield, Every: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	defer s.Disarm()
	base := tpEvery.Fired()
	for i := 0; i < 40; i++ {
		tpEvery.Hit()
	}
	if got := tpEvery.Fired() - base; got != 10 {
		t.Fatalf("Every=4 fired %d times over 40 hits, want 10", got)
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []uint64 {
		s, err := NewSchedule(seed, Rule{Point: tpProb.Name(), Kind: Yield, Prob: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		s.Arm()
		defer s.Disarm()
		var fires []uint64
		base := tpProb.Fired()
		for i := 0; i < 200; i++ {
			tpProb.Hit()
			if f := tpProb.Fired(); f > base {
				fires = append(fires, uint64(i))
				base = f
			}
		}
		return fires
	}
	a, b := run(7), run(7)
	if len(a) == 0 {
		t.Fatal("Prob=0.25 never fired in 200 hits")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different firing counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different firing sequence at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing sequences (suspicious)")
	}
}

func TestStallSleeps(t *testing.T) {
	s, err := NewSchedule(1, Rule{Point: tpOn.Name(), Kind: Stall, On: 1, Stall: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	defer s.Disarm()
	start := time.Now()
	tpOn.Hit()
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("stall slept %v, want >= ~5ms", d)
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(1, Rule{Point: "fault-test/unregistered", Kind: Yield, On: 1}); err == nil {
		t.Fatal("unregistered point accepted")
	}
	if _, err := NewSchedule(1, Rule{Point: tpNoCr.Name(), Kind: Crash, On: 1}); err == nil {
		t.Fatal("crash on a non-crashable point accepted")
	}
	if _, err := NewSchedule(1, Rule{Point: tpNoCr.Name(), Kind: Yield}); err == nil {
		t.Fatal("rule that can never fire accepted")
	}
	if _, err := NewSchedule(1, Rule{Point: tpNoCr.Name(), On: 1}); err == nil {
		t.Fatal("rule with no action accepted")
	}
}

func TestCoverageTracksArming(t *testing.T) {
	armed, unarmed := Coverage()
	found := func(list []string, name string) bool {
		for _, n := range list {
			if n == name {
				return true
			}
		}
		return false
	}
	// tpDead exists but no schedule ever arms it.
	if !found(unarmed, tpDead.Name()) {
		t.Fatalf("never-armed point missing from unarmed set %v", unarmed)
	}
	s, err := NewSchedule(1, Rule{Point: tpDead.Name(), Kind: Yield, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	s.Disarm()
	armed, unarmed = Coverage()
	if !found(armed, tpDead.Name()) || found(unarmed, tpDead.Name()) {
		t.Fatalf("armed point not tracked: armed=%v unarmed=%v", armed, unarmed)
	}
}
