// Package fault provides named, deterministically schedulable fault
// injection points — crash, stall, yield — for chaos-testing the
// register compositions in this module.
//
// A Point is declared once, at package init, at the exact line in the
// production code where a fault is interesting (immediately before a
// publication, inside a recycle window, between a slot-array store and
// the directory write). The instrumentation call, Point.Hit, costs one
// atomic pointer load while the point is disarmed — cheap enough to
// leave compiled into release binaries, which is the whole trick: the
// chaos suite exercises the same machine code production runs.
//
// Faults are driven by a Schedule: a seeded set of Rules, each arming
// one point with a deterministic firing pattern (the K-th hit after
// arming, every K-th hit, or an independent seeded coin per hit). Given
// the same seed, rules, and per-point hit sequence, a schedule fires
// identically on every run — chaos failures reproduce from their seed.
//
// Crash firings unwind the calling goroutine with panic(Crashed{...});
// scenario harnesses recover that one type at the operation boundary
// and run the system's repair path, letting any other panic propagate
// as a real bug. Because a crash is an unwind, points sited where a
// non-returning caller would wedge a collective protocol (for example
// inside regmap's pubStarted/pubDone window, which Snapshot spins on)
// must register without CanCrash; NewSchedule rejects rules that try to
// arm a crash there.
package fault

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Caps declares which fault kinds a point tolerates, fixed at
// registration. The mask encodes the call site's structural guarantees:
// a point is CanCrash only if a panic there leaves the surrounding
// state machine repairable (see the package comment).
type Caps uint8

const (
	CanYield Caps = 1 << iota
	CanStall
	CanCrash
)

// Kind is the action a rule performs when it fires.
type Kind uint8

const (
	// None never fires; a Rule must pick a real kind.
	None Kind = iota
	// Yield calls runtime.Gosched — the cheapest way to shake out
	// ordering assumptions between two adjacent operations.
	Yield
	// Stall sleeps for the rule's Stall duration, modelling a preempted
	// or page-faulting writer holding a window open.
	Stall
	// Crash panics with Crashed, modelling the process dying at the
	// point (the caller's recover is the "restart").
	Crash
)

func (k Kind) String() string {
	switch k {
	case Yield:
		return "yield"
	case Stall:
		return "stall"
	case Crash:
		return "crash"
	}
	return "none"
}

// Crashed is the panic value a Crash firing throws. Chaos harnesses
// recover exactly this type at the operation boundary and invoke their
// repair path; any other panic value is a genuine bug and must
// propagate.
type Crashed struct {
	Point string // the point that fired
	Hit   uint64 // 1-based hit index since the rule was armed
}

func (c Crashed) Error() string {
	return fmt.Sprintf("fault: injected crash at %s (hit %d)", c.Point, c.Hit)
}

// Point is a named fault-injection site. Declare with NewPoint at
// package init and call Hit at the instrumented line.
type Point struct {
	name string
	caps Caps
	// armed is the currently installed rule, nil when disarmed — the
	// single load Hit pays on the production path.
	armed     atomic.Pointer[armedRule]
	hits      atomic.Uint64 // armed hits observed (advances only while armed)
	fired     atomic.Uint64 // rule firings
	everArmed atomic.Bool   // any schedule ever armed this point (coverage)
}

// armedRule is a Rule compiled against a point at arm time.
type armedRule struct {
	kind  Kind
	on    uint64
	every uint64
	prob  uint64 // per-hit fire threshold in [0, 2^64) space; 0 disables
	stall time.Duration
	seed  uint64
	base  uint64 // point hit count when armed; firing indices restart here
}

var (
	mu       sync.Mutex
	registry = map[string]*Point{}
)

// NewPoint registers a named point with its capability mask. Call once
// per name, at package init; a duplicate name or an empty mask is a
// programming error and panics.
func NewPoint(name string, caps Caps) *Point {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic("fault: duplicate point " + name)
	}
	if caps == 0 {
		panic("fault: point " + name + " registered with no capabilities")
	}
	p := &Point{name: name, caps: caps}
	registry[name] = p
	return p
}

// Name reports the point's registered name.
func (p *Point) Name() string { return p.name }

// Hits reports how many armed hits the point has observed.
func (p *Point) Hits() uint64 { return p.hits.Load() }

// Fired reports how many times the point's armed rules fired.
func (p *Point) Fired() uint64 { return p.fired.Load() }

// Hit is the instrumentation call sited in production code: one atomic
// load when the point is disarmed, the armed rule's decision otherwise.
func (p *Point) Hit() {
	if p.armed.Load() == nil {
		return
	}
	p.slowHit()
}

func (p *Point) slowHit() {
	r := p.armed.Load()
	if r == nil {
		return
	}
	k := p.hits.Add(1) - r.base
	fire := false
	switch {
	case r.on != 0 && k == r.on:
		fire = true
	case r.every != 0 && k%r.every == 0:
		fire = true
	case r.prob != 0 && splitmix64(r.seed^nameHash(p.name)^k) < r.prob:
		fire = true
	}
	if !fire {
		return
	}
	p.fired.Add(1)
	switch r.kind {
	case Yield:
		runtime.Gosched()
	case Stall:
		time.Sleep(r.stall)
	case Crash:
		panic(Crashed{Point: p.name, Hit: k})
	}
}

// Rule arms one point with one deterministic firing pattern. Exactly
// one of On / Every / Prob should be set (the first that matches a hit
// fires): On fires at the K-th hit after arming, Every on every K-th
// hit, Prob as an independent seeded coin per hit. Stall sets the stall
// length for Kind == Stall (default 100µs).
type Rule struct {
	Point string
	Kind  Kind
	On    uint64
	Every uint64
	Prob  float64
	Stall time.Duration
}

// Schedule is a validated set of rules bound to their points, armed and
// disarmed as a unit.
type Schedule struct {
	seed   uint64
	rules  []Rule
	points []*Point
}

// NewSchedule validates rules against the registered points: every rule
// must name a registered point, pick an action the point's capability
// mask allows, and be able to fire. The seed drives Prob rules; the
// same seed reproduces the same firings.
func NewSchedule(seed uint64, rules ...Rule) (*Schedule, error) {
	s := &Schedule{seed: seed, rules: rules}
	mu.Lock()
	defer mu.Unlock()
	for _, r := range rules {
		p, ok := registry[r.Point]
		if !ok {
			return nil, fmt.Errorf("fault: schedule arms unregistered point %q", r.Point)
		}
		var need Caps
		switch r.Kind {
		case Yield:
			need = CanYield
		case Stall:
			need = CanStall
		case Crash:
			need = CanCrash
		default:
			return nil, fmt.Errorf("fault: rule for %q has no action", r.Point)
		}
		if p.caps&need == 0 {
			return nil, fmt.Errorf("fault: point %q does not allow %v", r.Point, r.Kind)
		}
		if r.On == 0 && r.Every == 0 && r.Prob <= 0 {
			return nil, fmt.Errorf("fault: rule for %q can never fire (zero On/Every/Prob)", r.Point)
		}
		s.points = append(s.points, p)
	}
	return s, nil
}

// Arm installs the schedule's rules into their points. Firing indices
// count from zero at each Arm, so a schedule is deterministic per
// arming, not per process. Arming a point twice (same or different
// schedule) replaces the earlier rule.
func (s *Schedule) Arm() {
	for i, r := range s.rules {
		p := s.points[i]
		stall := r.Stall
		if stall == 0 {
			stall = 100 * time.Microsecond
		}
		var prob uint64
		if r.Prob >= 1 {
			prob = math.MaxUint64
		} else if r.Prob > 0 {
			prob = uint64(r.Prob * float64(math.MaxUint64))
		}
		p.armed.Store(&armedRule{
			kind:  r.Kind,
			on:    r.On,
			every: r.Every,
			prob:  prob,
			stall: stall,
			seed:  s.seed,
			base:  p.hits.Load(),
		})
		p.everArmed.Store(true)
	}
}

// Disarm removes the schedule's rules from their points, returning the
// instrumented paths to their one-load no-op.
func (s *Schedule) Disarm() {
	for _, p := range s.points {
		p.armed.Store(nil)
	}
}

// Fired sums rule firings across the schedule's points (each point
// counted once) — the liveness check scenarios use to assert their
// schedule actually exercised the instrumented paths.
func (s *Schedule) Fired() uint64 {
	seen := make(map[*Point]struct{}, len(s.points))
	var n uint64
	for _, p := range s.points {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		n += p.Fired()
	}
	return n
}

// Points lists every registered point name, sorted.
func Points() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Coverage partitions the registered points by whether any schedule has
// ever armed them in this process — the suite-level check that no
// declared fault point is dead instrumentation. Both slices are sorted.
func Coverage() (armed, unarmed []string) {
	mu.Lock()
	defer mu.Unlock()
	for name, p := range registry {
		if p.everArmed.Load() {
			armed = append(armed, name)
		} else {
			unarmed = append(unarmed, name)
		}
	}
	sort.Strings(armed)
	sort.Strings(unarmed)
	return armed, unarmed
}

// splitmix64 is the SplitMix64 mixing function — a full-avalanche
// bijection, so per-hit coins derived from (seed, point, index) are
// independent and reproducible.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nameHash is FNV-1a over the point name, mixed into Prob coins so two
// points armed by one schedule fire independently.
func nameHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
