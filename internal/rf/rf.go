// Package rf implements the Readers-Field (RF) wait-free multi-word atomic
// (1,N) register of Larsson, Gidenstam, Ha, Papatriantafilou and Tsigas
// ("Multiword atomic read/write registers on multiprocessor systems",
// Journal of Experimental Algorithmics 13, 2009). It is the closest prior
// work to ARC — the only other (1,N) register built on RMW instructions —
// and the paper's principal comparison baseline.
//
// RF steers coordination through one 64-bit word partitioned into a 6-bit
// buffer index and a 58-bit reader bitfield, one bit per named reader:
//
//	sync = index<<58 | readerMask
//
// A read FetchAndOrs the reader's bit into sync; the returned word names
// the freshest buffer. Because every read issues an RMW instruction — even
// when the register has not changed — RF pays the interconnect cost of an
// atomic on every read, which is precisely the overhead ARC's fast path
// removes (paper §1, §5). And because readers are named by bit position,
// at most 58 readers fit; ARC's anonymous counter lifts that to 2³²−2.
//
// The writer swaps in the new index with a zeroed mask, then records, for
// every reader bit observed in the swapped-out word, that the reader may
// still be reading the retired buffer (the trace). A buffer is reusable
// when it is neither the freshest one nor traced for any reader, so the
// free-buffer search is O(N) per write — versus ARC's amortized O(1).
//
// Like ARC, RF uses N+2 buffers and performs no intermediate copy: readers
// access the slot buffer directly.
package rf

import (
	"fmt"
	"math/bits"
	"sync"

	"arcreg/internal/membuf"
	"arcreg/internal/pad"
	"arcreg/internal/register"
	"arcreg/internal/word"
)

// MaxReaders is RF's architectural reader bound: 58 bits of the 64-bit
// sync word name readers; the remaining 6 address the N+2 ≤ 60 buffers.
const MaxReaders = word.RFMaxReaders

// Register is the RF (1,N) register. One goroutine writes; up to 58
// goroutines read, each through its own Reader handle.
type Register struct {
	// sync is the shared synchronization word: index<<58 | readerMask.
	sync pad.PaddedUint64

	bufs  [][]byte // N+2 pre-allocated value buffers
	sizes []int    // value length per buffer, writer-owned pre-publish

	maxReaders   int
	maxValueSize int

	// Writer-local state.
	curIdx uint32   // index published by the last write
	trace  []uint32 // trace[i]: buffer reader i may still be reading
	inUse  []bool   // scratch for the free-buffer scan
	wstats register.WriteStats

	// Reader-id allocation.
	mu      sync.Mutex
	freeIDs []int
}

// noTrace marks a reader that has never been observed reading.
const noTrace = ^uint32(0)

var (
	_ register.Register   = (*Register)(nil)
	_ register.Writer     = (*Register)(nil)
	_ register.StatWriter = (*Register)(nil)
	_ register.Reader     = (*Reader)(nil)
	_ register.Viewer     = (*Reader)(nil)
	_ register.StatReader = (*Reader)(nil)
)

// New constructs an RF register. cfg.MaxReaders must be ≤ 58.
func New(cfg register.Config) (*Register, error) {
	if err := cfg.Validate(MaxReaders); err != nil {
		return nil, err
	}
	initial := cfg.InitialOrDefault()
	if cfg.MaxValueSize < len(initial) {
		cfg.MaxValueSize = len(initial)
	}
	n := cfg.MaxReaders
	r := &Register{
		bufs:         membuf.Matrix(n+2, cfg.MaxValueSize),
		sizes:        make([]int, n+2),
		maxReaders:   n,
		maxValueSize: cfg.MaxValueSize,
		trace:        make([]uint32, n),
		inUse:        make([]bool, n+2),
		freeIDs:      make([]int, 0, n),
	}
	for i := range r.trace {
		r.trace[i] = noTrace
	}
	for id := n - 1; id >= 0; id-- {
		r.freeIDs = append(r.freeIDs, id)
	}
	r.sizes[0] = copy(r.bufs[0], initial)
	r.sync.Store(word.PackSync(0, 0))
	r.curIdx = 0
	return r, nil
}

// Name implements register.Register.
func (r *Register) Name() string { return "rf" }

// Caps implements register.CapabilityReporter: RF views without copying
// and probes freshness (via its sync word), but has no combined
// probe-and-fetch; all operations are wait-free.
func (r *Register) Caps() register.Caps {
	return register.Caps{
		ZeroCopyView:  true,
		FreshProbe:    true,
		ReadStats:     true,
		WriteStats:    true,
		WaitFreeRead:  true,
		WaitFreeWrite: true,
	}
}

// MaxReaders implements register.Register.
func (r *Register) MaxReaders() int { return r.maxReaders }

// MaxValueSize implements register.Register.
func (r *Register) MaxValueSize() int { return r.maxValueSize }

// BufferCount reports the number of value buffers (always MaxReaders+2).
func (r *Register) BufferCount() int { return len(r.bufs) }

// Writer implements register.Register.
func (r *Register) Writer() register.Writer { return r }

// WriteStats implements register.StatWriter.
func (r *Register) WriteStats() register.WriteStats { return r.wstats }

// Write publishes a new value. Wait-free; O(N) due to the trace scan.
func (r *Register) Write(p []byte) error {
	if len(p) > r.maxValueSize {
		return fmt.Errorf("%w: %d > %d", register.ErrValueTooLarge, len(p), r.maxValueSize)
	}
	idx := r.findFreeBuffer()
	r.sizes[idx] = copy(r.bufs[idx], p)
	// Publish: new index, empty reader field.
	old := r.sync.Swap(word.PackSync(idx, 0))
	r.wstats.RMW++
	// Every reader bit collected since the previous swap names a reader
	// that obtained the retired index and may still be dereferencing it.
	oldIdx := word.SyncIndex(old)
	mask := word.SyncMask(old)
	for mask != 0 {
		id := bits.TrailingZeros64(mask)
		mask &^= uint64(1) << uint(id)
		r.trace[id] = oldIdx
	}
	r.curIdx = idx
	r.wstats.Ops++
	return nil
}

// findFreeBuffer returns a buffer that is neither published nor traced —
// the O(N) scan that dominates RF's write cost.
func (r *Register) findFreeBuffer() uint32 {
	for i := range r.inUse {
		r.inUse[i] = false
	}
	r.inUse[r.curIdx] = true
	for _, t := range r.trace {
		if t != noTrace {
			r.inUse[t] = true
		}
	}
	r.wstats.ScanSteps += uint64(1 + len(r.trace)) // the exclusion build is the scan
	for i, used := range r.inUse {
		r.wstats.ScanSteps++
		if !used {
			return uint32(i)
		}
	}
	// Unreachable: at most N traced + 1 published < N+2 buffers.
	panic("rf: no free buffer; N+2 invariant violated")
}

// Reader is a per-goroutine read endpoint identified by a bit position in
// the sync word.
type Reader struct {
	reg     *Register
	bit     uint64
	id      int
	lastIdx uint32 // buffer returned by the last View/Read
	hasRead bool
	closed  bool
	stats   register.ReadStats
}

// NewReader implements register.Register, allocating one of the 58 reader
// identities.
func (r *Register) NewReader() (register.Reader, error) {
	rd, err := r.newReader()
	if err != nil {
		return nil, err
	}
	return rd, nil
}

// NewReaderHandle is the concrete-typed variant of NewReader.
func (r *Register) NewReaderHandle() (*Reader, error) { return r.newReader() }

func (r *Register) newReader() (*Reader, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.freeIDs) == 0 {
		return nil, register.ErrTooManyReaders
	}
	id := r.freeIDs[len(r.freeIDs)-1]
	r.freeIDs = r.freeIDs[:len(r.freeIDs)-1]
	return &Reader{reg: r, id: id, bit: word.ReaderBit(id)}, nil
}

// ID reports the reader's bit position, for tests.
func (rd *Reader) ID() int { return rd.id }

// ReadStats implements register.StatReader.
func (rd *Reader) ReadStats() register.ReadStats { return rd.stats }

// View returns the freshest value without copying. Unlike ARC, obtaining
// it always costs one RMW instruction (the FetchAndOr), even when the
// register has not changed since the handle's last read. The view stays
// valid until the handle's next View, Read or Close: the writer's trace
// conservatively protects the buffer exactly that long.
func (rd *Reader) View() ([]byte, error) {
	if rd.closed {
		return nil, register.ErrReaderClosed
	}
	reg := rd.reg
	old := reg.sync.Or(rd.bit) // FetchAndOr: announce and locate in one RMW
	rd.stats.RMW++
	idx := word.SyncIndex(old)
	rd.lastIdx = idx
	rd.hasRead = true
	rd.stats.Ops++
	return reg.bufs[idx][:reg.sizes[idx]], nil
}

// Fresh implements register.FreshnessProber with a plain load of the sync
// word. Note the asymmetry with ARC: RF can PROBE freshness cheaply, but
// acting on it (re-reading) still costs a FetchAndOr, whereas ARC's whole
// re-read is RMW-free.
func (rd *Reader) Fresh() bool {
	if rd.closed || !rd.hasRead {
		return false
	}
	return word.SyncIndex(rd.reg.sync.Load()) == rd.lastIdx
}

// Read copies the freshest value into dst.
func (rd *Reader) Read(dst []byte) (int, error) {
	v, err := rd.View()
	if err != nil {
		return 0, err
	}
	if len(dst) < len(v) {
		return len(v), register.ErrBufferTooSmall
	}
	return copy(dst, v), nil
}

// Close releases the reader identity. The identity's trace entry and any
// set bit remain — they conservatively protect a buffer until the identity
// is reused, which is safe (protection errs toward keeping buffers).
func (rd *Reader) Close() error {
	if rd.closed {
		return register.ErrReaderClosed
	}
	rd.closed = true
	reg := rd.reg
	reg.mu.Lock()
	reg.freeIDs = append(reg.freeIDs, rd.id)
	reg.mu.Unlock()
	return nil
}

// CheckInvariants validates writer-side bookkeeping at quiescence.
func (r *Register) CheckInvariants() error {
	if int(r.curIdx) >= len(r.bufs) {
		return fmt.Errorf("rf: current index %d out of range", r.curIdx)
	}
	if got := word.SyncIndex(r.sync.Load()); got != r.curIdx {
		return fmt.Errorf("rf: sync index %d != writer curIdx %d", got, r.curIdx)
	}
	excluded := 1
	for _, t := range r.trace {
		if t == noTrace {
			continue
		}
		if int(t) >= len(r.bufs) {
			return fmt.Errorf("rf: trace entry %d out of range", t)
		}
		excluded++
	}
	if excluded >= len(r.bufs) {
		return fmt.Errorf("rf: %d buffers excluded, none free (N+2 invariant violated)", excluded)
	}
	return nil
}
