package rf

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"arcreg/internal/membuf"
	"arcreg/internal/register"
)

func newReg(t testing.TB, readers, size int) *Register {
	t.Helper()
	r, err := New(register.Config{MaxReaders: readers, MaxValueSize: size})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestReaderLimit58(t *testing.T) {
	if _, err := New(register.Config{MaxReaders: 58, MaxValueSize: 8}); err != nil {
		t.Fatalf("58 readers rejected: %v", err)
	}
	if _, err := New(register.Config{MaxReaders: 59, MaxValueSize: 8}); err == nil {
		t.Fatal("59 readers accepted; RF must cap at 58")
	}
}

func TestBufferCountIsNPlus2(t *testing.T) {
	for _, n := range []int{1, 2, 17, 58} {
		r := newReg(t, n, 8)
		if got := r.BufferCount(); got != n+2 {
			t.Fatalf("N=%d: %d buffers, want %d", n, got, n+2)
		}
	}
}

func TestReadReturnsLastWrite(t *testing.T) {
	r := newReg(t, 3, 128)
	rd, _ := r.NewReaderHandle()
	for i := 0; i < 200; i++ {
		val := []byte(fmt.Sprintf("value-%03d", i))
		if err := r.Write(val); err != nil {
			t.Fatal(err)
		}
		got, err := rd.View()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("iteration %d: read %q, want %q", i, got, val)
		}
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInitialValue(t *testing.T) {
	r, err := New(register.Config{MaxReaders: 1, MaxValueSize: 16, Initial: []byte("init")})
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := r.NewReaderHandle()
	v, _ := rd.View()
	if string(v) != "init" {
		t.Fatalf("initial value %q", v)
	}
}

// RF's defining cost: one RMW on EVERY read, changed register or not —
// the contrast to ARC's fast path that the paper measures in §5.
func TestEveryReadIsRMW(t *testing.T) {
	r := newReg(t, 2, 32)
	rd, _ := r.NewReaderHandle()
	if err := r.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	const reads = 50
	for i := 0; i < reads; i++ {
		if _, err := rd.View(); err != nil {
			t.Fatal(err)
		}
	}
	st := rd.ReadStats()
	if st.RMW != reads {
		t.Fatalf("RMW = %d, want %d (one per read)", st.RMW, reads)
	}
	if st.FastPath != 0 {
		t.Fatalf("RF reported %d fast-path reads; it has no fast path", st.FastPath)
	}
}

// The writer's scan is O(N) per write: ScanSteps grows with MaxReaders
// even when nobody reads.
func TestWriterScanLinearInN(t *testing.T) {
	small := newReg(t, 2, 8)
	large := newReg(t, 58, 8)
	const writes = 20
	for i := 0; i < writes; i++ {
		if err := small.Write([]byte{1}); err != nil {
			t.Fatal(err)
		}
		if err := large.Write([]byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	smallSteps := small.WriteStats().ScanSteps
	largeSteps := large.WriteStats().ScanSteps
	if largeSteps < smallSteps*5 {
		t.Fatalf("scan steps did not grow with N: N=2 → %d, N=58 → %d", smallSteps, largeSteps)
	}
}

func TestWriteTooLarge(t *testing.T) {
	r := newReg(t, 1, 8)
	if err := r.Write(make([]byte, 9)); !errors.Is(err, register.ErrValueTooLarge) {
		t.Fatalf("want ErrValueTooLarge, got %v", err)
	}
	if err := r.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestVariableSizes(t *testing.T) {
	r := newReg(t, 1, 256)
	rd, _ := r.NewReaderHandle()
	for _, n := range []int{0, 1, 255, 7, 256} {
		val := bytes.Repeat([]byte{0xAB}, n)
		if err := r.Write(val); err != nil {
			t.Fatal(err)
		}
		got, _ := rd.View()
		if len(got) != n {
			t.Fatalf("size %d read back as %d", n, len(got))
		}
	}
}

func TestReaderIDsDistinctAndRecycled(t *testing.T) {
	r := newReg(t, 3, 8)
	a, _ := r.NewReaderHandle()
	b, _ := r.NewReaderHandle()
	c, _ := r.NewReaderHandle()
	if a.ID() == b.ID() || b.ID() == c.ID() || a.ID() == c.ID() {
		t.Fatal("reader ids collide")
	}
	if _, err := r.NewReader(); !errors.Is(err, register.ErrTooManyReaders) {
		t.Fatalf("fourth handle: %v", err)
	}
	freed := b.ID()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := r.NewReaderHandle()
	if err != nil {
		t.Fatal(err)
	}
	if d.ID() != freed {
		t.Fatalf("recycled id %d, want %d", d.ID(), freed)
	}
}

func TestClosedReaderErrors(t *testing.T) {
	r := newReg(t, 1, 8)
	rd, _ := r.NewReaderHandle()
	rd.Close()
	if _, err := rd.View(); !errors.Is(err, register.ErrReaderClosed) {
		t.Fatalf("View after close: %v", err)
	}
	if err := rd.Close(); !errors.Is(err, register.ErrReaderClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestReadCopies(t *testing.T) {
	r := newReg(t, 1, 32)
	rd, _ := r.NewReaderHandle()
	r.Write([]byte("payload"))
	dst := make([]byte, 32)
	n, err := rd.Read(dst)
	if err != nil || string(dst[:n]) != "payload" {
		t.Fatalf("Read: n=%d err=%v content=%q", n, err, dst[:n])
	}
	if n, err := rd.Read(make([]byte, 2)); !errors.Is(err, register.ErrBufferTooSmall) || n != 7 {
		t.Fatalf("small dst: n=%d err=%v", n, err)
	}
}

// A slow reader's buffer must survive arbitrarily many subsequent writes:
// the trace pins it (RF's equivalent of ARC's presence pinning).
func TestViewStableWhilePinned(t *testing.T) {
	r := newReg(t, 2, 128)
	pinned, _ := r.NewReaderHandle()
	buf := make([]byte, 128)
	membuf.Encode(buf, 1)
	if err := r.Write(buf); err != nil {
		t.Fatal(err)
	}
	view, err := pinned.View()
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), view...)
	for i := uint64(2); i < 200; i++ {
		membuf.Encode(buf, i)
		if err := r.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(view, snapshot) {
		t.Fatal("pinned view changed under subsequent writes")
	}
	if v, err := membuf.Verify(view); err != nil || v != 1 {
		t.Fatalf("pinned view corrupt: version=%d err=%v", v, err)
	}
}

// Writer wait-freedom with all readers parked on distinct buffers.
func TestWriterWaitFreeUnderStalledReaders(t *testing.T) {
	const n = 8
	r := newReg(t, n, 32)
	for i := 0; i < n; i++ {
		if err := r.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		rd, err := r.NewReaderHandle()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rd.View(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		if err := r.Write([]byte{0xFF}); err != nil {
			t.Fatalf("write %d failed: %v", i, err)
		}
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Sequential model check against last-written-value semantics.
func TestSequentialModelQuick(t *testing.T) {
	f := func(ops []byte) bool {
		r, err := New(register.Config{MaxReaders: 2, MaxValueSize: 64})
		if err != nil {
			return false
		}
		rd, err := r.NewReaderHandle()
		if err != nil {
			return false
		}
		model := []byte{0}
		for _, op := range ops {
			if op%2 == 0 {
				val := bytes.Repeat([]byte{op}, 1+int(op)%32)
				if r.Write(val) != nil {
					return false
				}
				model = val
			} else {
				got, err := rd.View()
				if err != nil || !bytes.Equal(got, model) {
					return false
				}
			}
		}
		return r.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent torture: every read untorn, versions monotone per reader.
func TestConcurrentIntegrity(t *testing.T) {
	const (
		readers = 8
		writes  = 2000
		size    = 256
	)
	r := newReg(t, readers, size)
	seed := make([]byte, size)
	membuf.Encode(seed, 0)
	if err := r.Write(seed); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		rd, err := r.NewReaderHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := rd.View()
				if err != nil {
					errs <- err
					return
				}
				ver, err := membuf.Verify(v)
				if err != nil {
					errs <- fmt.Errorf("torn read: %w", err)
					return
				}
				if ver < last {
					errs <- fmt.Errorf("version regressed: %d after %d", ver, last)
					return
				}
				last = ver
			}
		}()
	}
	buf := make([]byte, size)
	for i := uint64(1); i <= writes; i++ {
		membuf.Encode(buf, i)
		if err := r.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestName(t *testing.T) {
	r := newReg(t, 1, 8)
	if r.Name() != "rf" {
		t.Fatalf("Name() = %q", r.Name())
	}
	if r.Writer() == nil {
		t.Fatal("Writer() returned nil")
	}
}

var _ register.FreshnessProber = (*Reader)(nil)

func TestFreshProbe(t *testing.T) {
	r := newReg(t, 1, 32)
	rd, _ := r.NewReaderHandle()
	if rd.Fresh() {
		t.Fatal("unread handle reports fresh")
	}
	if _, err := rd.View(); err != nil {
		t.Fatal(err)
	}
	if !rd.Fresh() {
		t.Fatal("just-read handle not fresh")
	}
	if err := r.Write([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if rd.Fresh() {
		t.Fatal("handle fresh after a write")
	}
	if _, err := rd.View(); err != nil {
		t.Fatal(err)
	}
	if !rd.Fresh() {
		t.Fatal("handle not fresh after re-read")
	}
	rd.Close()
	if rd.Fresh() {
		t.Fatal("closed handle reports fresh")
	}
}
