// Package word defines the 64-bit synchronization-word layouts used by the
// register algorithms in this repository.
//
// ARC (§3.3 of the paper) steers all coordination through one 64-bit
// variable named current, split into a 32-bit slot index (high half) and a
// 32-bit anonymous readers counter (low half). The counter field is what
// lets ARC admit up to 2³²−2 concurrent readers: registering a read is an
// anonymous increment rather than setting a per-reader bit.
//
// The RF baseline (Larsson et al., JEA 2009) instead partitions its 64-bit
// word into a 6-bit buffer index (high bits) and a 58-bit reader bitmask,
// one bit per named reader — which is precisely why RF tops out at 58
// readers.
//
// Keeping the packing arithmetic in one small, heavily-tested package means
// the algorithm packages contain only algorithm logic.
package word

// ---------------------------------------------------------------------------
// ARC current word: index<<32 | counter
// ---------------------------------------------------------------------------

const (
	// ARCIndexShift is the bit position of the slot index field.
	ARCIndexShift = 32
	// ARCCounterMask isolates the anonymous readers counter.
	ARCCounterMask = (uint64(1) << ARCIndexShift) - 1
	// ARCMaxReaders is the maximum number of readers an ARC register can
	// admit: the index field must address N+2 slots with 32 bits, so
	// N ≤ 2³² − 2 (paper §3.3, footnote 2).
	ARCMaxReaders = (uint64(1) << 32) - 2
)

// PackCurrent builds an ARC current word from a slot index and a readers
// counter.
func PackCurrent(index uint32, counter uint32) uint64 {
	return uint64(index)<<ARCIndexShift | uint64(counter)
}

// CurrentIndex extracts the slot index field (paper statement R1/R5:
// index ← current ≫ 32).
func CurrentIndex(cur uint64) uint32 { return uint32(cur >> ARCIndexShift) }

// CurrentCounter extracts the anonymous readers counter (paper statement
// W3: old_curr & (2³²−1)).
func CurrentCounter(cur uint64) uint32 { return uint32(cur & ARCCounterMask) }

// PublishWord is the value the ARC writer swaps into current at W2: the
// new slot index with a zeroed readers counter.
func PublishWord(index uint32) uint64 { return uint64(index) << ARCIndexShift }

// ---------------------------------------------------------------------------
// RF sync word: index<<58 | reader bitmask
// ---------------------------------------------------------------------------

const (
	// RFMaxReaders is the architectural reader limit of the RF algorithm:
	// 64 bits minus the 6 bits needed to index N+2 ≤ 60 buffers.
	RFMaxReaders = 58
	// RFIndexShift is the bit position of the buffer index field.
	RFIndexShift = RFMaxReaders
	// RFMaskBits isolates the reader bitmask.
	RFMaskBits = (uint64(1) << RFIndexShift) - 1
)

// PackSync builds an RF sync word from a buffer index and a reader bitmask.
func PackSync(index uint32, mask uint64) uint64 {
	return uint64(index)<<RFIndexShift | (mask & RFMaskBits)
}

// SyncIndex extracts the buffer index field.
func SyncIndex(sync uint64) uint32 { return uint32(sync >> RFIndexShift) }

// SyncMask extracts the reader bitmask.
func SyncMask(sync uint64) uint64 { return sync & RFMaskBits }

// ReaderBit returns the bitmask bit owned by reader id. id must be < 58.
func ReaderBit(id int) uint64 { return uint64(1) << uint(id) }
