package word

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPackCurrentRoundTrip(t *testing.T) {
	cases := []struct {
		index   uint32
		counter uint32
	}{
		{0, 0},
		{0, 1},
		{1, 0},
		{7, 42},
		{math.MaxUint32, math.MaxUint32},
		{math.MaxUint32 - 1, 0},
		{0, math.MaxUint32},
	}
	for _, c := range cases {
		w := PackCurrent(c.index, c.counter)
		if got := CurrentIndex(w); got != c.index {
			t.Errorf("PackCurrent(%d,%d): index = %d, want %d", c.index, c.counter, got, c.index)
		}
		if got := CurrentCounter(w); got != c.counter {
			t.Errorf("PackCurrent(%d,%d): counter = %d, want %d", c.index, c.counter, got, c.counter)
		}
	}
}

// Property: packing then unpacking an ARC current word is the identity on
// both fields, for all field values.
func TestPackCurrentRoundTripQuick(t *testing.T) {
	f := func(index, counter uint32) bool {
		w := PackCurrent(index, counter)
		return CurrentIndex(w) == index && CurrentCounter(w) == counter
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the counter field is the low half, so incrementing the packed
// word by one increments the counter and leaves the index untouched as long
// as the counter does not overflow. This is the exact property statement R4
// (AtomicAddAndFetch(current, 1)) relies on.
func TestCounterIncrementDoesNotDisturbIndex(t *testing.T) {
	f := func(index, counter uint32) bool {
		if counter == math.MaxUint32 {
			counter-- // overflow is excluded by the ≤ 2³²−2 reader bound
		}
		w := PackCurrent(index, counter) + 1
		return CurrentIndex(w) == index && CurrentCounter(w) == counter+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The reader bound exists precisely so that N readers can each add at most
// one presence unit between two writes without the counter carrying into
// the index field.
func TestARCMaxReadersFitsCounter(t *testing.T) {
	w := PackCurrent(5, 0)
	for i := uint64(0); i < 3; i++ {
		w++
	}
	if CurrentIndex(w) != 5 || CurrentCounter(w) != 3 {
		t.Fatalf("increments disturbed the word: index=%d counter=%d", CurrentIndex(w), CurrentCounter(w))
	}
	// The maximum admissible counter value still fits.
	top := PackCurrent(1, uint32(ARCMaxReaders))
	if CurrentIndex(top) != 1 {
		t.Fatalf("counter at ARCMaxReaders overflowed into the index field")
	}
}

func TestPublishWordZeroesCounter(t *testing.T) {
	f := func(index uint32) bool {
		w := PublishWord(index)
		return CurrentIndex(w) == index && CurrentCounter(w) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackSyncRoundTrip(t *testing.T) {
	cases := []struct {
		index uint32
		mask  uint64
	}{
		{0, 0},
		{0, 1},
		{59, 0}, // max index for N+2 = 60 buffers
		{3, RFMaskBits},
		{63, 0xAAAAAAAAAAAAAA & RFMaskBits},
	}
	for _, c := range cases {
		w := PackSync(c.index, c.mask)
		if got := SyncIndex(w); got != c.index {
			t.Errorf("PackSync(%d,%#x): index = %d, want %d", c.index, c.mask, got, c.index)
		}
		if got := SyncMask(w); got != c.mask {
			t.Errorf("PackSync(%d,%#x): mask = %#x, want %#x", c.index, c.mask, got, c.mask)
		}
	}
}

// Property: round trip for all masks (truncated to the 58-bit field) and
// all 6-bit indices.
func TestPackSyncRoundTripQuick(t *testing.T) {
	f := func(index uint32, mask uint64) bool {
		index &= 0x3F // 6-bit field
		w := PackSync(index, mask)
		return SyncIndex(w) == index && SyncMask(w) == mask&RFMaskBits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ORing a reader bit into a sync word never disturbs the index
// field — the invariant behind RF's FetchAndOr read protocol.
func TestReaderBitORPreservesIndex(t *testing.T) {
	f := func(index uint32, mask uint64, id uint8) bool {
		index &= 0x3F
		rid := int(id) % RFMaxReaders
		w := PackSync(index, mask) | ReaderBit(rid)
		return SyncIndex(w) == index && SyncMask(w)&ReaderBit(rid) != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReaderBitsDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for id := 0; id < RFMaxReaders; id++ {
		b := ReaderBit(id)
		if b == 0 {
			t.Fatalf("ReaderBit(%d) = 0", id)
		}
		if b&^RFMaskBits != 0 {
			t.Fatalf("ReaderBit(%d) = %#x escapes the mask field", id, b)
		}
		if prev, dup := seen[b]; dup {
			t.Fatalf("ReaderBit(%d) collides with ReaderBit(%d)", id, prev)
		}
		seen[b] = id
	}
}

func TestFieldConstantsConsistent(t *testing.T) {
	if ARCIndexShift != 32 {
		t.Errorf("ARCIndexShift = %d, want 32", ARCIndexShift)
	}
	if ARCCounterMask != math.MaxUint32 {
		t.Errorf("ARCCounterMask = %#x, want %#x", ARCCounterMask, uint64(math.MaxUint32))
	}
	if RFMaxReaders+6 != 64 {
		t.Errorf("RF fields do not tile 64 bits: %d mask bits + 6 index bits", RFMaxReaders)
	}
	if ARCMaxReaders != math.MaxUint32-1 {
		t.Errorf("ARCMaxReaders = %d, want 2^32-2", ARCMaxReaders)
	}
}
