// Package spin provides a reader/writer spinlock built on RMW
// instructions, the substrate of the lock-based register the ARC paper
// uses as its non-wait-free comparator (§5: "a classical lock-based
// approach (using read/write spin-locks still implemented using RMW
// instructions) not ensuring wait-freedom").
//
// The lock is a test-and-test-and-set design with writer preference: a
// single word carries the reader count (or −1 when a writer holds the
// lock), and a side word counts waiting writers so that a continuous
// stream of readers cannot starve the single writer indefinitely. None of
// this makes the lock wait-free — a preempted lock holder stalls everyone,
// which is exactly the pathology Figure 2 (CPU steal) and Figure 3
// (oversubscription) expose.
package spin

import (
	"arcreg/internal/pad"
)

// writerHeld is the state value while a writer owns the lock.
const writerHeld = int64(-1)

// RWLock is a reader/writer spinlock. The zero value is unlocked.
type RWLock struct {
	// state is the reader count, or writerHeld.
	state pad.PaddedInt64
	// wwait counts writers spinning for the lock; readers defer to them.
	wwait pad.PaddedInt64
}

// RLock acquires the lock in shared mode, spinning as needed. It returns
// the number of acquisition attempts (1 = uncontended), which the
// benchmark harness accumulates as LockSpins.
func (l *RWLock) RLock() uint64 {
	var (
		b     pad.Backoff
		spins uint64
	)
	for {
		spins++
		// Writer preference: while a writer waits, do not join the
		// reader crowd — drain it so the writer can get in.
		if l.wwait.Load() == 0 {
			v := l.state.Load()
			if v >= 0 && l.state.CompareAndSwap(v, v+1) {
				return spins
			}
		}
		b.Wait()
	}
}

// RUnlock releases a shared hold.
func (l *RWLock) RUnlock() {
	if n := l.state.Add(-1); n < 0 {
		panic("spin: RUnlock without matching RLock")
	}
}

// Lock acquires the lock exclusively, spinning as needed, and returns the
// number of acquisition attempts.
func (l *RWLock) Lock() uint64 {
	l.wwait.Add(1)
	var (
		b     pad.Backoff
		spins uint64
	)
	for {
		spins++
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, writerHeld) {
			l.wwait.Add(-1)
			return spins
		}
		b.Wait()
	}
}

// Unlock releases an exclusive hold.
func (l *RWLock) Unlock() {
	if !l.state.CompareAndSwap(writerHeld, 0) {
		panic("spin: Unlock without matching Lock")
	}
}

// TryRLock attempts a single shared acquisition without spinning.
func (l *RWLock) TryRLock() bool {
	if l.wwait.Load() != 0 {
		return false
	}
	v := l.state.Load()
	return v >= 0 && l.state.CompareAndSwap(v, v+1)
}

// TryLock attempts a single exclusive acquisition without spinning.
func (l *RWLock) TryLock() bool {
	return l.state.CompareAndSwap(0, writerHeld)
}

// Readers reports the current shared-hold count (negative means a writer
// holds the lock); diagnostic only.
func (l *RWLock) Readers() int64 { return l.state.Load() }
