package spin

import (
	"sync"
	"testing"
	"time"
)

func TestExclusiveLockMutualExclusion(t *testing.T) {
	var (
		l       RWLock
		counter int
		wg      sync.WaitGroup
	)
	const (
		goroutines = 8
		perG       = 5000
	)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Fatalf("lost updates under exclusive lock: %d != %d", counter, goroutines*perG)
	}
}

func TestReadersShareWritersExclude(t *testing.T) {
	var (
		l      RWLock
		shared int
		wg     sync.WaitGroup
	)
	const writers, readers, rounds = 2, 6, 2000
	wg.Add(writers + readers)
	for w := 0; w < writers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				l.Lock()
				shared++ // exclusive section
				l.Unlock()
			}
		}()
	}
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			last := -1
			for i := 0; i < rounds; i++ {
				l.RLock()
				v := shared // shared section: reads must be consistent
				l.RUnlock()
				if v < last {
					t.Error("shared counter observed going backwards")
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
	if shared != writers*rounds {
		t.Fatalf("counter = %d, want %d", shared, writers*rounds)
	}
}

func TestConcurrentReadersOverlap(t *testing.T) {
	var l RWLock
	// Two readers must be able to hold the lock simultaneously.
	l.RLock()
	done := make(chan struct{})
	go func() {
		l.RLock()
		close(done)
		l.RUnlock()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("second reader could not share the lock")
	}
	l.RUnlock()
}

func TestWriterBlocksReaders(t *testing.T) {
	var l RWLock
	l.Lock()
	if l.TryRLock() {
		t.Fatal("TryRLock succeeded while a writer holds the lock")
	}
	if l.TryLock() {
		t.Fatal("TryLock succeeded while a writer holds the lock")
	}
	l.Unlock()
	if !l.TryRLock() {
		t.Fatal("TryRLock failed on a free lock")
	}
	if l.TryLock() {
		t.Fatal("TryLock succeeded while a reader holds the lock")
	}
	l.RUnlock()
	if !l.TryLock() {
		t.Fatal("TryLock failed on a free lock")
	}
	l.Unlock()
}

// Writer preference: with a continuous stream of readers, a writer must
// still get the lock in bounded wall-clock time.
func TestWriterNotStarvedByReaders(t *testing.T) {
	var (
		l    RWLock
		wg   sync.WaitGroup
		stop = make(chan struct{})
	)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.RLock()
				l.RUnlock()
			}
		}()
	}
	acquired := make(chan struct{})
	go func() {
		l.Lock()
		l.Unlock()
		close(acquired)
	}()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Error("writer starved for 5s despite writer preference")
	}
	close(stop)
	wg.Wait()
}

func TestSpinCountsReported(t *testing.T) {
	var l RWLock
	if spins := l.RLock(); spins != 1 {
		t.Fatalf("uncontended RLock took %d attempts", spins)
	}
	l.RUnlock()
	if spins := l.Lock(); spins != 1 {
		t.Fatalf("uncontended Lock took %d attempts", spins)
	}
	l.Unlock()
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RUnlock on a free lock did not panic")
		}
	}()
	var l RWLock
	l.RUnlock()
}

func TestWriterUnlockWithoutLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock on a free lock did not panic")
		}
	}()
	var l RWLock
	l.Unlock()
}

func TestReadersDiagnostic(t *testing.T) {
	var l RWLock
	if l.Readers() != 0 {
		t.Fatal("fresh lock reports holders")
	}
	l.RLock()
	l.RLock()
	if l.Readers() != 2 {
		t.Fatalf("Readers() = %d, want 2", l.Readers())
	}
	l.RUnlock()
	l.RUnlock()
	l.Lock()
	if l.Readers() != -1 {
		t.Fatalf("Readers() = %d under writer, want -1", l.Readers())
	}
	l.Unlock()
}
