// Package affinity provides best-effort CPU pinning for benchmark
// workers. The paper's evaluation schedules one thread per core (§5: up to
// 32 threads on the 32-core host "avoiding time-sharing concurrency …
// among them on a same CPU-core"); pinning reduces scheduler-induced
// variance when reproducing that regime. On platforms without
// sched_setaffinity the harness silently runs unpinned — pinning affects
// variance, not correctness.
package affinity
