package affinity

import (
	"runtime"
	"testing"
)

func TestPinAndRelease(t *testing.T) {
	if !Available() {
		if _, err := Pin(0); err == nil {
			t.Fatal("Pin succeeded on an unsupported platform")
		}
		t.Skip("affinity unsupported on this platform")
	}
	release, err := Pin(0)
	if err != nil {
		t.Skipf("Pin(0) failed (restricted environment?): %v", err)
	}
	// The pinned goroutine must still make progress.
	sum := 0
	for i := 0; i < 1000; i++ {
		sum += i
	}
	if sum == 0 {
		t.Fatal("impossible")
	}
	release()
}

func TestPinOutOfRange(t *testing.T) {
	if !Available() {
		t.Skip("affinity unsupported on this platform")
	}
	if _, err := Pin(-1); err == nil {
		t.Fatal("Pin(-1) accepted")
	}
	if _, err := Pin(1 << 20); err == nil {
		t.Fatal("Pin(huge) accepted")
	}
}

func TestPinBeyondHardwareFails(t *testing.T) {
	if !Available() {
		t.Skip("affinity unsupported on this platform")
	}
	// Pinning to a CPU the machine does not have must fail cleanly, not
	// wedge the thread.
	ncpu := runtime.NumCPU()
	if _, err := Pin(ncpu + 512); err == nil {
		t.Fatalf("Pin(%d) succeeded with only %d CPUs", ncpu+512, ncpu)
	}
}
