//go:build linux

package affinity

import (
	"fmt"
	"runtime"
	"syscall"
	"unsafe"
)

// cpuSetWords covers 1024 CPUs, the kernel's default cpu_set_t width.
const cpuSetWords = 16

// Available reports whether pinning is supported on this platform.
func Available() bool { return true }

// Pin locks the calling goroutine to its OS thread and binds that thread
// to the given CPU. The returned release function restores the previous
// affinity mask and unlocks the thread. The paper's harness pins one
// pthread per core; this is the Go equivalent.
func Pin(cpu int) (release func(), err error) {
	if cpu < 0 || cpu >= cpuSetWords*64 {
		return nil, fmt.Errorf("affinity: cpu %d out of range", cpu)
	}
	runtime.LockOSThread()

	var prev [cpuSetWords]uint64
	if _, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
		0, uintptr(len(prev)*8), uintptr(unsafe.Pointer(&prev[0]))); errno != 0 {
		runtime.UnlockOSThread()
		return nil, fmt.Errorf("affinity: sched_getaffinity: %v", errno)
	}

	var set [cpuSetWords]uint64
	set[cpu/64] = 1 << uint(cpu%64)
	if _, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(set)*8), uintptr(unsafe.Pointer(&set[0]))); errno != 0 {
		runtime.UnlockOSThread()
		return nil, fmt.Errorf("affinity: sched_setaffinity(cpu %d): %v", cpu, errno)
	}

	return func() {
		syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
			0, uintptr(len(prev)*8), uintptr(unsafe.Pointer(&prev[0])))
		runtime.UnlockOSThread()
	}, nil
}
