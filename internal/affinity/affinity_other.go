//go:build !linux

package affinity

import "errors"

// ErrUnsupported reports that this platform cannot pin threads.
var ErrUnsupported = errors.New("affinity: thread pinning unsupported on this platform")

// Available reports whether pinning is supported on this platform.
func Available() bool { return false }

// Pin is unavailable; callers fall back to unpinned execution.
func Pin(cpu int) (release func(), err error) { return nil, ErrUnsupported }
