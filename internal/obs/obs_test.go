package obs

import (
	"expvar"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"arcreg/internal/metrics"
)

func TestCellPublishAndLoad(t *testing.T) {
	var c Cell
	if c.Load() != 0 || c.Local() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Add(3)
	c.Add(4)
	if c.Load() != 7 || c.Local() != 7 {
		t.Fatalf("Load = %d, Local = %d, want 7", c.Load(), c.Local())
	}
	c.Store(100)
	if c.Load() != 100 || c.Local() != 100 {
		t.Fatalf("Store not reflected: load=%d local=%d", c.Load(), c.Local())
	}
}

// TestCellConcurrentReads: one owner advancing, many readers loading —
// readers must only ever see monotonically nondecreasing values. Run
// under -race this also proves the publish idiom is race-free.
func TestCellConcurrentReads(t *testing.T) {
	var c Cell
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for !stop.Load() {
				v := c.Load()
				if v < last {
					t.Errorf("cell regressed: %d after %d", v, last)
					return
				}
				last = v
			}
		}()
	}
	for i := 0; i < 100_000; i++ {
		c.Add(1)
	}
	stop.Store(true)
	wg.Wait()
	if c.Load() != 100_000 {
		t.Fatalf("final = %d, want 100000", c.Load())
	}
}

func TestHistMirrorsHistogram(t *testing.T) {
	var h Hist
	var want metrics.Histogram
	for _, ns := range []uint64{1, 17, 1000, 250_000, 3} {
		h.Record(ns)
		want.Record(ns)
	}
	got := h.Snapshot()
	if got.Count() != want.Count() || got.Sum() != want.Sum() ||
		got.Min() != want.Min() || got.Max() != want.Max() {
		t.Fatalf("snapshot mismatch: got %v want %v", got.String(), want.String())
	}
	for i := 0; i < metrics.NumBuckets; i++ {
		if got.Bucket(i) != want.Bucket(i) {
			t.Fatalf("bucket %d: got %d want %d", i, got.Bucket(i), want.Bucket(i))
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
}

func TestHistRecordSince(t *testing.T) {
	var h Hist
	h.RecordSince(100, 350)
	h.RecordSince(350, 100) // clock went backwards: clamp to 0
	s := h.Snapshot()
	if s.Count() != 2 || s.Max() != 250 || s.Min() != 0 {
		t.Fatalf("got count=%d min=%d max=%d", s.Count(), s.Min(), s.Max())
	}
}

func TestSnapshotTree(t *testing.T) {
	root := Snapshot{Name: "map"}
	root.Put("epoch", 42).Put("keys", 7)
	root.Put("epoch", 43) // update in place, no duplicate
	var lat metrics.Histogram
	lat.Record(1000)
	root.PutHist("wakeup_latency", lat)
	root.Children = append(root.Children, Snapshot{Name: "shard0"})
	root.Child("shard0").Put("cgen", 2)

	if v, ok := root.Get("epoch"); !ok || v != 43 {
		t.Fatalf("epoch = %d,%v", v, ok)
	}
	if len(root.Stats) != 2 {
		t.Fatalf("duplicate stat appended: %v", root.Stats)
	}
	if root.Child("missing") != nil {
		t.Fatal("Child(missing) != nil")
	}
	if v, ok := root.Child("shard0").Get("cgen"); !ok || v != 2 {
		t.Fatalf("child cgen = %d,%v", v, ok)
	}

	text := root.String()
	for _, want := range []string{"map:", "epoch", "43", "shard0:", "cgen", "wakeup_latency"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text dump missing %q:\n%s", want, text)
		}
	}

	js := root.JSON()
	for _, want := range []string{`"name":"map"`, `"epoch":43`, `"keys":7`, `"name":"shard0"`, `"wakeup_latency"`, `"count":1`} {
		if !strings.Contains(js, want) {
			t.Fatalf("JSON missing %q:\n%s", want, js)
		}
	}
	// Determinism: two renderings must be byte-identical.
	if js != root.JSON() {
		t.Fatal("JSON rendering not deterministic")
	}
}

func TestRegistryComposesSorted(t *testing.T) {
	var r Registry
	mk := func(name string, v uint64) Source {
		return SourceFunc(func() Snapshot {
			s := Snapshot{Name: "ignored"}
			s.Put("v", v)
			return s
		})
	}
	if err := r.Register("zeta", mk("zeta", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("alpha", mk("alpha", 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("alpha", mk("alpha", 3)); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	s := r.Stats()
	if len(s.Children) != 2 || s.Children[0].Name != "alpha" || s.Children[1].Name != "zeta" {
		t.Fatalf("children = %+v", s.Children)
	}
	r.Unregister("zeta")
	if s := r.Stats(); len(s.Children) != 1 {
		t.Fatalf("after unregister: %+v", s.Children)
	}
}

func TestVarIsExpvarCompatible(t *testing.T) {
	src := SourceFunc(func() Snapshot {
		s := Snapshot{Name: "reg"}
		s.Put("epoch", 9)
		return s
	})
	var v expvar.Var = Var{Source: src}
	out := v.String()
	if !strings.Contains(out, `"epoch":9`) {
		t.Fatalf("expvar payload missing counter: %s", out)
	}
	if (Var{}).String() != "{}" {
		t.Fatal("nil-source Var should render {}")
	}
}
