package obs

import (
	"strings"
	"testing"
	"time"

	"arcreg/internal/metrics"
)

func TestWritePromRendersTree(t *testing.T) {
	var h metrics.Histogram
	h.Record(100)
	h.Record(3000)
	root := Snapshot{Name: "server"}
	root.Put("gets", 42)
	root.PutInfo("go_version", "go1.24")
	child := Snapshot{Name: "shard-0"}
	child.Put("publishes", 7)
	child.PutHist("latency", h)
	root.Children = append(root.Children, child)

	var b strings.Builder
	WriteProm(&b, "arc", root)
	out := b.String()

	for _, want := range []string{
		"# TYPE arc_gets untyped\narc_gets 42\n",
		`arc_info{go_version="go1.24"} 1`,
		"arc_shard_0_publishes 7\n",
		"# TYPE arc_shard_0_latency histogram\n",
		`arc_shard_0_latency_bucket{le="+Inf"} 2`,
		"arc_shard_0_latency_sum 3100\n",
		"arc_shard_0_latency_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: the le="127" bucket (2^6..2^7-1 holds 100)
	// must already include the first sample.
	if !strings.Contains(out, `arc_shard_0_latency_bucket{le="127"} 1`) {
		t.Fatalf("cumulative bucket wrong:\n%s", out)
	}
	// No finite le may exceed the +Inf count semantics: last finite
	// bucket carries every sample below 2^34.
	if !strings.Contains(out, `arc_shard_0_latency_bucket{le="17179869183"} 2`) {
		t.Fatalf("final finite bucket wrong:\n%s", out)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	root := Snapshot{Name: "x"}
	root.PutInfo("note", "a\"b\\c\nd")
	var b strings.Builder
	WriteProm(&b, "p", root)
	if !strings.Contains(b.String(), `note="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped: %s", b.String())
	}
}

func TestProcessInfo(t *testing.T) {
	sn := ProcessInfo(time.Now().Add(-3 * time.Second))
	if up, ok := sn.Get("uptime_s"); !ok || up < 3 {
		t.Fatalf("uptime_s = %d, %v", up, ok)
	}
	if v, ok := sn.GetInfo("go_version"); !ok || !strings.HasPrefix(v, "go") {
		t.Fatalf("go_version = %q, %v", v, ok)
	}
	if gm, ok := sn.Get("gomaxprocs"); !ok || gm == 0 {
		t.Fatalf("gomaxprocs = %d, %v", gm, ok)
	}
	// Text and JSON renders must carry the infos.
	if !strings.Contains(sn.String(), "go_version") {
		t.Fatalf("text render missing info: %s", sn.String())
	}
	if !strings.Contains(sn.JSON(), `"info":{`) {
		t.Fatalf("json render missing info: %s", sn.JSON())
	}
}
