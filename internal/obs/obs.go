// Package obs is the runtime observability layer: the live counterpart
// to internal/metrics' collect-at-quiescence discipline. Where metrics
// aggregates plain per-goroutine structs after a measurement window has
// closed, obs lets a snapshot walker read counters while the system
// runs — without putting a read-modify-write, a lock, or an allocation
// on any recording path.
//
// # Recording discipline
//
// Every obs cell is single-writer: the goroutine that owns the counted
// event advances a plain local mirror and then publishes it with one
// atomic store — the same publish idiom the notify sequencer uses for
// its epoch word. No recording path executes an RMW instruction, takes
// a lock, or allocates. Snapshot walkers read the published words with
// atomic loads from any goroutine, so live collection is race-free by
// construction (and -race agrees).
//
// This buys liveness at a price the repository's doctrine bounds
// precisely: one atomic store per recorded event. That price is
// affordable exactly on paths that already pay for synchronization —
// publication, park/wake, key lifecycle, compaction — and unaffordable
// on the register's hot read path, whose whole point is two loads and
// nothing else. Hot-path op counters therefore stay plain per-handle
// fields (register.ReadStats/WriteStats), enter the tree only through
// quiescent collection, and obs never touches them. DESIGN.md §10 is
// the full catalogue of which counter lives in which tier and why.
//
// # The Stats tree
//
// Snapshot is a named node of counters, histograms and children —
// the one shape that unifies the register, (M,N), shard and map stats
// the packages used to expose through three divergent structs. Sources
// produce Snapshots on demand; a Registry composes many named Sources
// into one tree; Var adapts any Source to expvar.Var, so a process
// exports its whole tree through the stdlib /debug/vars endpoint with
// no dependencies.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"arcreg/internal/metrics"
)

// Cell is one single-writer live counter: the owner advances a plain
// local mirror and publishes it with one atomic store; any goroutine
// reads the published word with one atomic load. The zero value is
// ready to use. Cells are deliberately unpadded (16 bytes): group the
// cells one goroutine owns into a block and pad the block — false
// sharing only exists between distinct writers, and a cell has exactly
// one.
type Cell struct {
	local uint64
	v     atomic.Uint64
}

// Add advances the counter by n: one plain add, one atomic store, no
// RMW. Owner only.
func (c *Cell) Add(n uint64) {
	c.local += n
	c.v.Store(c.local)
}

// Store publishes an absolute value (gauge semantics: epochs, sizes).
// Owner only.
func (c *Cell) Store(v uint64) {
	c.local = v
	c.v.Store(v)
}

// Local returns the owner's mirror without an atomic load. Owner only.
func (c *Cell) Local() uint64 { return c.local }

// Load returns the published value: one atomic load, any goroutine.
func (c *Cell) Load() uint64 { return c.v.Load() }

// Hist is the live counterpart of metrics.Histogram: the owner records
// into a plain local mirror and publishes the touched words (one bucket,
// count, sum, min, max) with atomic stores — five stores per sample, no
// RMW, no allocation. Snapshot rebuilds a metrics.Histogram from the
// published words on any goroutine. A snapshot racing a Record may tear
// across words (e.g. see the new bucket but the old sum); every word is
// individually atomic and monotone-enough that the tear is bounded by
// one sample, which is the documented price of liveness.
type Hist struct {
	local   metrics.Histogram
	buckets [metrics.NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64
	max     atomic.Uint64
}

// Record adds one sample in nanoseconds. Owner only.
func (h *Hist) Record(ns uint64) {
	h.local.Record(ns)
	i := metrics.BucketIndex(ns)
	h.buckets[i].Store(h.local.Bucket(i))
	h.count.Store(h.local.Count())
	h.sum.Store(h.local.Sum())
	h.min.Store(h.local.Min())
	h.max.Store(h.local.Max())
}

// RecordSince is Record(now-start) on a monotonic nanosecond clock.
func (h *Hist) RecordSince(startNs, nowNs int64) {
	if nowNs > startNs {
		h.Record(uint64(nowNs - startNs))
	} else {
		h.Record(0)
	}
}

// Count returns the published sample count: any goroutine.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Snapshot rebuilds a metrics.Histogram from the published words: any
// goroutine, atomic loads only.
func (h *Hist) Snapshot() metrics.Histogram {
	var b [metrics.NumBuckets]uint64
	for i := range b {
		b[i] = h.buckets[i].Load()
	}
	return metrics.Restore(b, h.count.Load(), h.sum.Load(), h.min.Load(), h.max.Load())
}

// Stat is one named counter value in a Snapshot.
type Stat struct {
	Name  string
	Value uint64
}

// HistStat is one named latency distribution in a Snapshot.
type HistStat struct {
	Name string
	Hist metrics.Histogram
}

// Info is one named string annotation in a Snapshot — build revision,
// Go version, listen address: facts about the process that are not
// counters. Renderers emit them alongside the numbers (the Prometheus
// exposition folds a node's infos into a single `_info` gauge's labels,
// the textfile idiom).
type Info struct {
	Name  string
	Value string
}

// Snapshot is one node of the Stats tree: a point-in-time, caller-owned
// copy. Stats, Hists, Infos and Children preserve insertion order so
// text and JSON renderings are deterministic.
type Snapshot struct {
	Name     string
	Stats    []Stat
	Hists    []HistStat
	Infos    []Info
	Children []Snapshot
}

// Put appends (or updates) a counter value on the node and returns the
// node for chaining.
func (s *Snapshot) Put(name string, v uint64) *Snapshot {
	for i := range s.Stats {
		if s.Stats[i].Name == name {
			s.Stats[i].Value = v
			return s
		}
	}
	s.Stats = append(s.Stats, Stat{Name: name, Value: v})
	return s
}

// PutHist appends (or updates) a histogram on the node.
func (s *Snapshot) PutHist(name string, h metrics.Histogram) *Snapshot {
	for i := range s.Hists {
		if s.Hists[i].Name == name {
			s.Hists[i].Hist = h
			return s
		}
	}
	s.Hists = append(s.Hists, HistStat{Name: name, Hist: h})
	return s
}

// PutInfo appends (or updates) a string annotation on the node.
func (s *Snapshot) PutInfo(name, value string) *Snapshot {
	for i := range s.Infos {
		if s.Infos[i].Name == name {
			s.Infos[i].Value = value
			return s
		}
	}
	s.Infos = append(s.Infos, Info{Name: name, Value: value})
	return s
}

// GetInfo returns the named annotation's value and whether it exists.
func (s Snapshot) GetInfo(name string) (string, bool) {
	for _, in := range s.Infos {
		if in.Name == name {
			return in.Value, true
		}
	}
	return "", false
}

// Get returns the named counter's value and whether it exists.
func (s Snapshot) Get(name string) (uint64, bool) {
	for _, st := range s.Stats {
		if st.Name == name {
			return st.Value, true
		}
	}
	return 0, false
}

// Child returns the named child node, or nil.
func (s *Snapshot) Child(name string) *Snapshot {
	for i := range s.Children {
		if s.Children[i].Name == name {
			return &s.Children[i]
		}
	}
	return nil
}

// WriteText renders the tree as an indented human-readable dump —
// the payload of a /debug/arcvars text endpoint.
func (s Snapshot) WriteText(w io.Writer) {
	s.writeText(w, 0)
}

func (s Snapshot) writeText(w io.Writer, depth int) {
	indent := strings.Repeat("  ", depth)
	name := s.Name
	if name == "" {
		name = "stats"
	}
	fmt.Fprintf(w, "%s%s:\n", indent, name)
	for _, st := range s.Stats {
		fmt.Fprintf(w, "%s  %-24s %d\n", indent, st.Name, st.Value)
	}
	for _, h := range s.Hists {
		fmt.Fprintf(w, "%s  %-24s %s\n", indent, h.Name, h.Hist.String())
	}
	for _, in := range s.Infos {
		fmt.Fprintf(w, "%s  %-24s %s\n", indent, in.Name, in.Value)
	}
	for _, c := range s.Children {
		c.writeText(w, depth+1)
	}
}

// String renders the tree as the WriteText dump.
func (s Snapshot) String() string {
	var b strings.Builder
	s.WriteText(&b)
	return b.String()
}

// appendJSON renders the node as a JSON object, hand-encoded to keep
// insertion order (encoding/json sorts map keys and obs promises
// deterministic renderings).
func (s Snapshot) appendJSON(b *strings.Builder) {
	b.WriteByte('{')
	b.WriteString(`"name":`)
	b.WriteString(strconv.Quote(s.Name))
	if len(s.Stats) > 0 {
		b.WriteString(`,"stats":{`)
		for i, st := range s.Stats {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(st.Name))
			b.WriteByte(':')
			b.WriteString(strconv.FormatUint(st.Value, 10))
		}
		b.WriteByte('}')
	}
	if len(s.Hists) > 0 {
		b.WriteString(`,"hists":{`)
		for i, h := range s.Hists {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(h.Name))
			fmt.Fprintf(b, `:{"count":%d,"mean_ns":%.0f,"p50_ns":%.0f,"p99_ns":%.0f,"max_ns":%d}`,
				h.Hist.Count(), h.Hist.Mean(), h.Hist.Quantile(0.5), h.Hist.Quantile(0.99), h.Hist.Max())
		}
		b.WriteByte('}')
	}
	if len(s.Infos) > 0 {
		b.WriteString(`,"info":{`)
		for i, in := range s.Infos {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(in.Name))
			b.WriteByte(':')
			b.WriteString(strconv.Quote(in.Value))
		}
		b.WriteByte('}')
	}
	if len(s.Children) > 0 {
		b.WriteString(`,"children":[`)
		for i, c := range s.Children {
			if i > 0 {
				b.WriteByte(',')
			}
			c.appendJSON(b)
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
}

// JSON renders the tree as a JSON document with deterministic key
// order — the expvar payload.
func (s Snapshot) JSON() string {
	var b strings.Builder
	s.appendJSON(&b)
	return b.String()
}

// Source yields a point-in-time Stats tree. Implementations must be
// safe to call from any goroutine at any time — that is the contract
// that makes a Source exportable through expvar.
type Source interface {
	Stats() Snapshot
}

// SourceFunc adapts a function to Source.
type SourceFunc func() Snapshot

// Stats implements Source.
func (f SourceFunc) Stats() Snapshot { return f() }

// Var adapts a Source to expvar.Var: String renders the live tree as
// JSON. Publish it with expvar.Publish (or arcreg.Observe) and the
// stdlib /debug/vars endpoint serves the tree.
type Var struct {
	Source Source
}

// String implements expvar.Var (and fmt.Stringer).
func (v Var) String() string {
	if v.Source == nil {
		return "{}"
	}
	return v.Source.Stats().JSON()
}

// Registry composes named Sources into one tree: Stats returns a root
// whose children are the registered sources' snapshots in name order.
// Registration is mutex-guarded wiring-time work; Stats holds the lock
// only to copy the source list, never while snapshotting.
type Registry struct {
	mu      sync.Mutex
	sources map[string]Source
}

// Register binds src under name; registering a taken name is a wiring
// bug and returns an error.
func (r *Registry) Register(name string, src Source) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sources == nil {
		r.sources = make(map[string]Source)
	}
	if _, dup := r.sources[name]; dup {
		return fmt.Errorf("obs: source %q already registered", name)
	}
	r.sources[name] = src
	return nil
}

// Unregister removes the named source (a no-op when absent).
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	delete(r.sources, name)
	r.mu.Unlock()
}

// Stats implements Source: the root node's children are every
// registered source's snapshot, renamed to its registered name, in
// name order.
func (r *Registry) Stats() Snapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.sources))
	for name := range r.sources {
		names = append(names, name)
	}
	srcs := make([]Source, len(names))
	sort.Strings(names)
	for i, name := range names {
		srcs[i] = r.sources[name]
	}
	r.mu.Unlock()
	root := Snapshot{Name: "arcreg"}
	for i, name := range names {
		child := srcs[i].Stats()
		child.Name = name
		root.Children = append(root.Children, child)
	}
	return root
}
