package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// ProcessInfo builds the "process" Stats node: uptime and runtime
// gauges as counters, and the identity facts (Go version, os/arch,
// VCS revision from debug.ReadBuildInfo) as Infos. Walker-side only —
// it calls into the runtime; never collect it on a hot path.
func ProcessInfo(start time.Time) Snapshot {
	sn := Snapshot{Name: "process"}
	sn.Put("uptime_s", uint64(time.Since(start)/time.Second))
	sn.Put("gomaxprocs", uint64(runtime.GOMAXPROCS(0)))
	sn.Put("goroutines", uint64(runtime.NumGoroutine()))
	sn.PutInfo("go_version", runtime.Version())
	sn.PutInfo("os_arch", runtime.GOOS+"/"+runtime.GOARCH)
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, modified := "unknown", ""
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					modified = "+dirty"
				}
			}
		}
		sn.PutInfo("revision", rev+modified)
	}
	return sn
}
