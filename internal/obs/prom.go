package obs

import (
	"fmt"
	"io"
	"strings"
)

// WriteProm renders a Stats tree in the Prometheus text exposition
// format (version 0.0.4), stdlib only. Each counter becomes
// `<prefix>_<path>_<name>` where path joins the node names from the
// root's children down (the root's own name is carried by the prefix);
// each histogram becomes the standard `_bucket`/`_sum`/`_count` triple
// with the log₂ bucket bounds as `le` labels; each node's Infos fold
// into one `<prefix>_<path>_info{...} 1` gauge, the build-info idiom.
// Values are emitted as untyped (the tree does not distinguish counters
// from gauges) except histograms. Rendering is deterministic: insertion
// order within a node, depth-first across children.
func WriteProm(w io.Writer, prefix string, sn Snapshot) {
	if prefix == "" {
		prefix = "arcreg"
	}
	writePromNode(w, sanitizeMetric(prefix), sn, true)
}

func writePromNode(w io.Writer, path string, sn Snapshot, root bool) {
	if !root && sn.Name != "" {
		path = path + "_" + sanitizeMetric(sn.Name)
	}
	for _, st := range sn.Stats {
		name := path + "_" + sanitizeMetric(st.Name)
		fmt.Fprintf(w, "# TYPE %s untyped\n%s %d\n", name, name, st.Value)
	}
	for _, h := range sn.Hists {
		name := path + "_" + sanitizeMetric(h.Name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		hist := h.Hist
		cum := uint64(0)
		for i := 0; i < histPromBuckets; i++ {
			cum += hist.Bucket(i)
			// Bucket i holds samples in [2^i, 2^(i+1)); le is the
			// inclusive upper bound 2^(i+1)-1 ns.
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, uint64(1)<<(i+1)-1, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, hist.Count())
		fmt.Fprintf(w, "%s_sum %d\n", name, hist.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, hist.Count())
	}
	if len(sn.Infos) > 0 {
		name := path + "_info"
		fmt.Fprintf(w, "# TYPE %s gauge\n%s{", name, name)
		for i, in := range sn.Infos {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s=\"%s\"", sanitizeMetric(in.Name), escapeLabel(in.Value))
		}
		io.WriteString(w, "} 1\n")
	}
	for _, c := range sn.Children {
		writePromNode(w, path, c, false)
	}
}

// histPromBuckets caps the emitted le series: log₂ bucket 34 covers
// ≥ 2^34 ns (≈ 17 s) and up, which the +Inf bucket absorbs — emitting
// it as a finite le would mislabel the unbounded tail.
const histPromBuckets = 34

// sanitizeMetric maps an arbitrary node/stat name into the Prometheus
// metric-name alphabet [a-zA-Z0-9_].
func sanitizeMetric(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format
// (backslash, quote, newline).
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
