package steal

import (
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	if _, err := NewInjector(Config{Fraction: -0.1}); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := NewInjector(Config{Fraction: 0.95}); err == nil {
		t.Error("fraction > 0.9 accepted")
	}
	if _, err := NewInjector(Config{Fraction: 0.5, Slice: -time.Millisecond}); err == nil {
		t.Error("negative slice accepted")
	}
	if _, err := NewInjector(Config{Fraction: 0.5, CheckEvery: -1}); err == nil {
		t.Error("negative CheckEvery accepted")
	}
	if _, err := NewInjector(Config{Fraction: 0.3}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDisabledInjectorIsFree(t *testing.T) {
	inj, err := NewInjector(Config{Fraction: 0})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Enabled() {
		t.Fatal("zero-fraction injector reports enabled")
	}
	v := inj.VCPU(0)
	start := time.Now()
	const ticks = 200_000
	for i := 0; i < ticks; i++ {
		v.Tick()
	}
	// Generous bound: the point is that a disabled injector never sleeps,
	// not a micro-benchmark of the counter increment.
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("disabled Tick too slow: %v for %d ticks", el, ticks)
	}
	st := v.Stats()
	if st.Steals != 0 || st.Stolen != 0 {
		t.Fatalf("disabled injector stole: %+v", st)
	}
	if st.Ticks != ticks {
		t.Fatalf("ticks = %d, want %d", st.Ticks, ticks)
	}
}

func TestNilSafety(t *testing.T) {
	var inj *Injector
	if inj.Enabled() {
		t.Fatal("nil injector enabled")
	}
	if inj.Fraction() != 0 {
		t.Fatal("nil injector fraction nonzero")
	}
}

func TestIntervalCalibration(t *testing.T) {
	inj, err := NewInjector(Config{Fraction: 0.5, Slice: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// f = 0.5 ⇒ interval == slice.
	if inj.interval != time.Millisecond {
		t.Fatalf("interval = %v, want 1ms at fraction 0.5", inj.interval)
	}
	inj2, _ := NewInjector(Config{Fraction: 0.25, Slice: time.Millisecond})
	// f = 0.25 ⇒ interval = slice·3.
	if inj2.interval != 3*time.Millisecond {
		t.Fatalf("interval = %v, want 3ms at fraction 0.25", inj2.interval)
	}
}

func TestStealsActuallyHappen(t *testing.T) {
	inj, err := NewInjector(Config{
		Fraction:   0.5,
		Slice:      200 * time.Microsecond,
		CheckEvery: 8,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := inj.VCPU(0)
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		v.Tick()
	}
	st := v.Stats()
	if st.Steals < 5 {
		t.Fatalf("only %d steal events over 100ms at fraction 0.5", st.Steals)
	}
	// Loose lower bound only: time.Sleep overshoot on a loaded host
	// stretches each cycle, reducing how many scheduled events fit in the
	// window, so the scheduled-stolen total can undershoot the nominal
	// fraction substantially without indicating a bug.
	if st.Stolen < time.Millisecond {
		t.Fatalf("stolen %v over a 100ms window at fraction 0.5", st.Stolen)
	}
}

func TestSchedulesDeterministicPerSeed(t *testing.T) {
	mk := func(seed uint64, id int) time.Duration {
		inj, err := NewInjector(Config{Fraction: 0.3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		v := inj.VCPU(id)
		var total time.Duration
		for i := 0; i < 100; i++ {
			total += v.gap()
		}
		return total
	}
	if mk(7, 0) != mk(7, 0) {
		t.Fatal("same seed+id produced different schedules")
	}
	if mk(7, 0) == mk(7, 1) {
		t.Fatal("different vCPUs share a schedule")
	}
	if mk(7, 0) == mk(8, 0) {
		t.Fatal("different seeds share a schedule")
	}
}

func TestGapJitterBounds(t *testing.T) {
	inj, err := NewInjector(Config{Fraction: 0.5, Slice: time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := inj.VCPU(0)
	for i := 0; i < 1000; i++ {
		g := v.gap()
		if g < inj.interval/2 || g > inj.interval*3/2 {
			t.Fatalf("gap %v outside ±50%% of mean %v", g, inj.interval)
		}
	}
}
