// Package steal simulates hypervisor CPU-steal time, standing in for the
// paper's virtualized evaluation platform (an Amazon EC2 m4.10xlarge with
// 40 vCPUs, §5 / Figure 2).
//
// The phenomenon the paper studies on that platform: a virtualized core
// can lose the physical CPU at any instant ("CPU stealing by the
// underlying hypervisor"), so a thread holding a lock — or publishing a
// value others spin on — stalls every peer, while wait-free algorithms
// degrade only proportionally to the stolen time. Reproducing this needs
// neither EC2 nor a hypervisor; it needs threads that are suspended for
// externally imposed slices at unpredictable points in their execution.
//
// Each worker goroutine attaches a VCPU handle and calls Tick between
// operations. The handle maintains a schedule of steal events — intervals
// drawn from a jittered distribution calibrated so that a configured
// fraction of wall-clock time is stolen in slices of configured length —
// and serves them by blocking the goroutine (time.Sleep surrenders the
// underlying P, exactly what a stolen vCPU experiences). The schedule is
// deterministic per seed, so experiments are repeatable.
package steal

import (
	"fmt"
	"time"

	"arcreg/internal/pad"
)

// Config parametrizes an Injector.
type Config struct {
	// Fraction is the portion of wall-clock time to steal from each vCPU,
	// in [0, 0.9]. Zero disables injection entirely (Tick compiles to a
	// counter increment and a rare clock read).
	Fraction float64
	// Slice is the duration of one steal event. Default 200µs — the
	// order of a hypervisor scheduling quantum slice observable by guest
	// vCPUs.
	Slice time.Duration
	// CheckEvery is the number of Ticks between clock reads; the clock is
	// not consulted on every operation to keep the probe overhead out of
	// the measured path. Default 64.
	CheckEvery int
	// Seed derives each vCPU's jitter stream. Zero means a fixed default.
	Seed uint64
}

// DefaultSlice is the steal-event length used when Config.Slice is zero.
const DefaultSlice = 200 * time.Microsecond

// DefaultCheckEvery is the tick granularity used when CheckEvery is zero.
const DefaultCheckEvery = 64

// Injector hands out per-goroutine VCPU handles sharing one calibration.
type Injector struct {
	fraction   float64
	slice      time.Duration
	interval   time.Duration // mean gap between steal events
	checkEvery int
	seed       uint64
}

// NewInjector validates cfg and builds an injector.
func NewInjector(cfg Config) (*Injector, error) {
	if cfg.Fraction < 0 || cfg.Fraction > 0.9 {
		return nil, fmt.Errorf("steal: fraction %.2f outside [0, 0.9]", cfg.Fraction)
	}
	if cfg.Slice == 0 {
		cfg.Slice = DefaultSlice
	}
	if cfg.Slice < 0 {
		return nil, fmt.Errorf("steal: negative slice %v", cfg.Slice)
	}
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = DefaultCheckEvery
	}
	if cfg.CheckEvery < 0 {
		return nil, fmt.Errorf("steal: negative CheckEvery %d", cfg.CheckEvery)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xA5EEDBA5EEDBA5ED
	}
	inj := &Injector{
		fraction:   cfg.Fraction,
		slice:      cfg.Slice,
		checkEvery: cfg.CheckEvery,
		seed:       cfg.Seed,
	}
	if cfg.Fraction > 0 {
		// fraction = slice / (slice + interval)  ⇒  interval = slice·(1−f)/f
		inj.interval = time.Duration(float64(cfg.Slice) * (1 - cfg.Fraction) / cfg.Fraction)
	}
	return inj, nil
}

// Enabled reports whether the injector actually steals time.
func (inj *Injector) Enabled() bool { return inj != nil && inj.fraction > 0 }

// Fraction reports the configured steal fraction.
func (inj *Injector) Fraction() float64 {
	if inj == nil {
		return 0
	}
	return inj.fraction
}

// VCPUStats counts what a handle suffered.
type VCPUStats struct {
	// Steals is the number of steal events served.
	Steals uint64
	// Stolen is the cumulative intended stolen time. (The actual sleep
	// may be longer under scheduler load; Stolen counts the schedule.)
	Stolen time.Duration
	// Ticks is the number of Tick calls observed.
	Ticks uint64
}

// VCPU is a per-goroutine steal-time handle. Not safe for concurrent use —
// one per worker, like a register reader handle.
type VCPU struct {
	inj       *Injector
	rng       pad.XorShift64
	ticks     uint64
	nextSteal time.Time
	stats     VCPUStats
}

// VCPU derives the handle for worker id. Handles with distinct ids have
// independent, deterministic steal schedules.
func (inj *Injector) VCPU(id int) *VCPU {
	seed := inj.seed
	for i := 0; i <= id; i++ {
		pad.SplitMix64(&seed)
	}
	v := &VCPU{inj: inj, rng: pad.NewXorShift64(seed)}
	if inj.Enabled() {
		v.nextSteal = time.Now().Add(v.gap())
	}
	return v
}

// gap draws the next inter-steal interval: the mean interval with ±50%
// uniform jitter, so steals are irregular but the long-run fraction holds.
func (v *VCPU) gap() time.Duration {
	mean := float64(v.inj.interval)
	jitter := 0.5 + v.rng.Float64() // uniform in [0.5, 1.5)
	return time.Duration(mean * jitter)
}

// Tick marks one unit of work. Most calls cost one branch and one
// increment; every CheckEvery-th call reads the clock, and if a steal
// event is due the goroutine sleeps for the slice — the vCPU just lost its
// physical CPU.
func (v *VCPU) Tick() {
	v.ticks++
	v.stats.Ticks++
	if !v.inj.Enabled() {
		return
	}
	if v.ticks < uint64(v.inj.checkEvery) {
		return
	}
	v.ticks = 0
	now := time.Now()
	if now.Before(v.nextSteal) {
		return
	}
	slice := v.inj.slice
	v.stats.Steals++
	v.stats.Stolen += slice
	time.Sleep(slice)
	v.nextSteal = time.Now().Add(v.gap())
}

// Stats returns the handle's counters; collect after the worker quiesces.
func (v *VCPU) Stats() VCPUStats { return v.stats }
