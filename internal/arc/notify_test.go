package arc

import (
	"context"
	"testing"
	"time"

	"arcreg/internal/notify"
	"arcreg/internal/register"
)

// TestWatchZeroRMWIdle pins the tentpole cost claim at the register
// level: with no waiter parked, the publication sequencer adds zero RMW
// instructions and zero allocations to Write. WriteStats.RMW counts
// every RMW the write path executes — exactly one per write (the W2
// swap) means the notify hook added none — and the gate must stay
// unarmed, proving the wakeup branch never ran.
func TestWatchZeroRMWIdle(t *testing.T) {
	r, err := New(register.Config{MaxReaders: 4, MaxValueSize: 64}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	val := []byte("payload")
	const writes = 1000
	base := r.WriteStats()
	for i := 0; i < writes; i++ {
		if err := r.Write(val); err != nil {
			t.Fatal(err)
		}
	}
	st := r.WriteStats()
	if got := st.RMW - base.RMW; got != writes {
		t.Errorf("no-waiter Write executed %d RMW over %d writes, want exactly %d (the W2 swap only)",
			got, writes, writes)
	}
	if r.Notifier().Gate().Armed() {
		t.Error("no-waiter writes armed the gate")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := r.Write(val); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("no-waiter Write allocates %.1f objects/op, want 0", allocs)
	}
	if e := r.Notifier().Epoch(); e == 0 {
		t.Error("sequencer epoch did not advance with the writes")
	}
}

// TestWatchStormRMWBitIdentical is the wakeup-storm guard: the
// publisher's instrumented RMW trace over a run of writes must be
// BIT-IDENTICAL with zero watchers and with 100k watchers subscribed
// and armed through the gate's wakeup tree. The 100k population is
// built without 100k goroutines — each subscription's leaf gate is
// armed directly (Arm is exactly what a parked watcher does before
// blocking), so the writer faces fully armed wakeup state at every
// publish. Any publisher-side cost that scaled with the audience —
// a per-watcher RMW, an O(watchers) close attributed to an
// instrumented atomic — would break the equality.
func TestWatchStormRMWBitIdentical(t *testing.T) {
	const writes = 200
	watchers := 100_000
	if testing.Short() {
		watchers = 10_000
	}
	val := []byte("payload")

	run := func(subs int) (rmw uint64) {
		r, err := New(register.Config{MaxReaders: 4, MaxValueSize: 64}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tree := r.Notifier().Fan(32, 2) // 1024 leaves
		held := make([]*notify.Sub, 0, subs)
		for i := 0; i < subs; i++ {
			sub := tree.Subscribe()
			sub.Gate().Arm()
			held = append(held, sub)
		}
		base := r.WriteStats()
		for i := 0; i < writes; i++ {
			if err := r.Write(val); err != nil {
				t.Fatal(err)
			}
		}
		st := r.WriteStats()
		for _, sub := range held {
			sub.Close()
		}
		return st.RMW - base.RMW
	}

	idle := run(0)
	stormed := run(watchers)
	if idle != stormed {
		t.Errorf("publisher RMW not bit-identical: %d with 0 watchers vs %d with %d armed watchers",
			idle, stormed, watchers)
	}
	if idle != writes {
		t.Errorf("baseline RMW = %d over %d writes, want exactly %d (the W2 swap only)",
			idle, writes, writes)
	}
}

// TestNotifierWaitObservesWrite: a waiter parked on the register's
// sequencer wakes on Write and then reads the new value.
func TestNotifierWaitObservesWrite(t *testing.T) {
	r, err := New(register.Config{MaxReaders: 1, MaxValueSize: 64}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := r.NewReaderHandle()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, err := rd.View(); err != nil { // prime the handle
		t.Fatal(err)
	}
	seq := r.Notifier()
	seen := seq.Epoch()
	got := make(chan string, 1)
	go func() {
		if _, err := seq.Wait(context.Background(), seen); err != nil {
			t.Errorf("Wait: %v", err)
			return
		}
		v, err := rd.View()
		if err != nil {
			t.Errorf("View after wake: %v", err)
			return
		}
		got <- string(v)
	}()
	for i := 0; i < 1000 && !seq.Gate().Armed(); i++ {
		time.Sleep(10 * time.Microsecond)
	}
	if err := r.Write([]byte("woken")); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "woken" {
			t.Fatalf("woken reader saw %q, want %q", v, "woken")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke on Write")
	}
}
