package arc

// Tests of the StaticInit mode, which reproduces Algorithm 1 literally:
// current is initialized to N (index 0, counter N) and every handle starts
// pre-charged on slot 0 with last_index = 0, exactly as in the paper's
// fixed-process model.

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"arcreg/internal/membuf"
	"arcreg/internal/register"
)

func newStatic(t *testing.T, readers, size int) *Register {
	t.Helper()
	r, err := New(register.Config{MaxReaders: readers, MaxValueSize: size},
		Options{StaticInit: true})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// I1: with no writes ever, all readers read the initial value through the
// fast path indefinitely ("if no update is ever made on the register's
// content, readers will indefinitely read this value", §3.3).
func TestStaticInitialFastPath(t *testing.T) {
	const n = 4
	r := newStatic(t, n, 32)
	for i := 0; i < n; i++ {
		rd, err := r.NewReaderHandle()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 10; j++ {
			v, err := rd.View()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(v, []byte{0}) {
				t.Fatalf("reader %d read %v", i, v)
			}
		}
		st := rd.ReadStats()
		// Pre-charged on slot 0: every read, including the first, is a
		// fast-path hit with zero RMW.
		if st.RMW != 0 || st.FastPath != 10 {
			t.Fatalf("reader %d: RMW=%d fastpath=%d; want 0 and 10", i, st.RMW, st.FastPath)
		}
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The static model admits exactly N handle creations, ever: each binds one
// of the N pre-charged presence units.
func TestStaticHandleBudget(t *testing.T) {
	r := newStatic(t, 2, 16)
	a, err := r.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewReader(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewReader(); !errors.Is(err, register.ErrTooManyReaders) {
		t.Fatalf("third static handle: %v", err)
	}
	// Closing does NOT return capacity in static mode (the paper's
	// processes are fixed for the register's lifetime).
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewReader(); !errors.Is(err, register.ErrTooManyReaders) {
		t.Fatalf("static handle after close: %v", err)
	}
}

// Never-created or never-reading static readers keep slot 0 pinned, but the
// writer still never runs out of slots (Lemma 4.1, Case 1 and 2).
func TestStaticPhantomReadersDoNotBlockWriter(t *testing.T) {
	const n = 3
	r := newStatic(t, n, 16)
	// No reader handle ever created: N phantom units pin slot 0.
	for i := 0; i < 200; i++ {
		if err := r.Write([]byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A static reader's first post-write read releases its pre-charged unit on
// slot 0; once all N have done so, slot 0 becomes reusable.
func TestStaticSlotZeroReclamation(t *testing.T) {
	const n = 3
	r := newStatic(t, n, 16)
	readers := make([]*Reader, n)
	for i := range readers {
		rd, err := r.NewReaderHandle()
		if err != nil {
			t.Fatal(err)
		}
		readers[i] = rd
	}
	if err := r.Write([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Before any post-write read, slot 0 must not be free: its frozen
	// r_start is N, r_end is 0.
	s0 := &r.slots[0]
	if s0.rStart.Load() != n || s0.rEnd.Load() != 0 {
		t.Fatalf("slot 0 counters after first write: start=%d end=%d, want %d and 0",
			s0.rStart.Load(), s0.rEnd.Load(), n)
	}
	for i, rd := range readers {
		v, err := rd.View()
		if err != nil {
			t.Fatal(err)
		}
		if string(v) != "v1" {
			t.Fatalf("reader %d read %q", i, v)
		}
	}
	if s0.rEnd.Load() != n {
		t.Fatalf("slot 0 r_end = %d after all readers moved on, want %d", s0.rEnd.Load(), n)
	}
	// Slot 0 is free again; enough writes must eventually recycle it.
	recycled := false
	for i := 0; i < 2*(n+2); i++ {
		if err := r.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if r.lastSlot == 0 {
			recycled = true
		}
	}
	if !recycled {
		t.Fatal("slot 0 never recycled after all pre-charged units were released")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Closing a static handle that never read must release its pre-charged
// unit (otherwise the unit leaks and slot 0 can never be reclaimed even
// after every process exits).
func TestStaticCloseReleasesPrecharge(t *testing.T) {
	const n = 2
	r := newStatic(t, n, 16)
	a, _ := r.NewReaderHandle()
	b, _ := r.NewReaderHandle()
	if err := r.Write([]byte("x")); err != nil { // freezes r_start[0] = 2
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	s0 := &r.slots[0]
	if s0.rStart.Load() != s0.rEnd.Load() {
		t.Fatalf("slot 0 not free after all static handles closed: start=%d end=%d",
			s0.rStart.Load(), s0.rEnd.Load())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Full concurrent integrity in static mode, mirroring the dynamic-mode
// torture test.
func TestStaticConcurrentIntegrity(t *testing.T) {
	const (
		readers = 4
		writes  = 1500
		size    = 128
	)
	r := newStatic(t, readers, size)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		rd, err := r.NewReaderHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := rd.View()
				if err != nil {
					errs <- err
					return
				}
				// The initial value is not codec-encoded; skip it.
				if len(v) == 1 {
					continue
				}
				ver, err := membuf.Verify(v)
				if err != nil {
					errs <- fmt.Errorf("torn read: %w", err)
					return
				}
				if ver < last {
					errs <- fmt.Errorf("version regressed: %d after %d", ver, last)
					return
				}
				last = ver
			}
		}()
	}
	buf := make([]byte, size)
	for i := uint64(1); i <= writes; i++ {
		membuf.Encode(buf, i)
		if err := r.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
