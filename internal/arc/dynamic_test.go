package arc

// Tests of the DynamicBuffers variant (§3.3: per-write exact-size
// allocation with GC reclamation).

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"arcreg/internal/membuf"
	"arcreg/internal/register"
)

func newDyn(t testing.TB, readers, size int) *Register {
	t.Helper()
	r, err := New(register.Config{MaxReaders: readers, MaxValueSize: size},
		Options{DynamicBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDynamicRoundTrip(t *testing.T) {
	r := newDyn(t, 2, 1<<20) // 1MB cap, but nothing near that allocated
	rd, _ := r.NewReaderHandle()
	for i := 0; i < 100; i++ {
		val := bytes.Repeat([]byte{byte(i)}, 1+i*7)
		if err := r.Write(val); err != nil {
			t.Fatal(err)
		}
		got, err := rd.View()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("iteration %d: mismatch", i)
		}
		// Exact-size property: the view's capacity is the value size, not
		// MaxValueSize.
		if cap(got) > len(val)+64 {
			t.Fatalf("iteration %d: buffer capacity %d for a %d-byte value; not exact-size",
				i, cap(got), len(val))
		}
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicInitialValue(t *testing.T) {
	r, err := New(register.Config{MaxReaders: 1, MaxValueSize: 1 << 20, Initial: []byte("tiny")},
		Options{DynamicBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := r.NewReaderHandle()
	v, _ := rd.View()
	if string(v) != "tiny" {
		t.Fatalf("initial = %q", v)
	}
}

// A stale view must stay intact even after its slot is recycled: with
// dynamic buffers the writer installs a NEW buffer into the slot, so the
// old bytes are immortal until the view drops them (GC reclamation).
func TestDynamicStaleViewImmortal(t *testing.T) {
	r := newDyn(t, 2, 4096)
	pinned, _ := r.NewReaderHandle()
	buf := make([]byte, 256)
	membuf.Encode(buf, 1)
	if err := r.Write(buf); err != nil {
		t.Fatal(err)
	}
	view, _ := pinned.View()

	// Move the pinned reader on so its old slot CAN be recycled…
	for i := uint64(2); i < 50; i++ {
		membuf.Encode(buf, i)
		if err := r.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pinned.View(); err != nil { // releases the old slot
		t.Fatal(err)
	}
	for i := uint64(50); i < 100; i++ { // recycle every slot several times
		membuf.Encode(buf, i)
		if err := r.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	// …and the stale view still verifies: the slot was reused but its old
	// buffer was never overwritten.
	if v, err := membuf.Verify(view); err != nil || v != 1 {
		t.Fatalf("stale view corrupted: version=%d err=%v", v, err)
	}
}

func TestDynamicConcurrentIntegrity(t *testing.T) {
	const (
		readers = 4
		writes  = 2000
	)
	r := newDyn(t, readers, 4096)
	seed := make([]byte, 64)
	membuf.Encode(seed, 0)
	if err := r.Write(seed); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		rd, _ := r.NewReaderHandle()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := rd.View()
				if err != nil {
					errs <- err
					return
				}
				ver, err := membuf.Verify(v)
				if err != nil {
					errs <- fmt.Errorf("torn dynamic read: %w", err)
					return
				}
				if ver < last {
					errs <- fmt.Errorf("version regressed: %d after %d", ver, last)
					return
				}
				last = ver
			}
		}()
	}
	// Vary sizes across writes — the point of the dynamic variant.
	for i := uint64(1); i <= writes; i++ {
		size := membuf.MinPayload + int(i%37)*64
		buf := make([]byte, size)
		membuf.Encode(buf, i)
		if err := r.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The pre-allocated variant must not allocate on writes; the dynamic
// variant allocates exactly once per write.
func TestWriteAllocations(t *testing.T) {
	static := newReg(t, 1, 4096, Options{})
	val := bytes.Repeat([]byte{7}, 512)
	if avg := testing.AllocsPerRun(200, func() {
		if err := static.Write(val); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("pre-allocated ARC writes allocate %.1f times/op, want 0", avg)
	}

	dyn := newDyn(t, 1, 4096)
	if avg := testing.AllocsPerRun(200, func() {
		if err := dyn.Write(val); err != nil {
			t.Fatal(err)
		}
	}); avg > 1.5 {
		t.Errorf("dynamic ARC writes allocate %.1f times/op, want ~1", avg)
	}
}

// Reads never allocate in either variant.
func TestReadAllocations(t *testing.T) {
	for _, opts := range []Options{{}, {DynamicBuffers: true}} {
		r, err := New(register.Config{MaxReaders: 1, MaxValueSize: 4096}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Write([]byte("steady")); err != nil {
			t.Fatal(err)
		}
		rd, _ := r.NewReaderHandle()
		if avg := testing.AllocsPerRun(200, func() {
			if _, err := rd.View(); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("DynamicBuffers=%v: views allocate %.1f times/op, want 0",
				opts.DynamicBuffers, avg)
		}
	}
}
