package arc

import (
	"testing"

	"arcreg/internal/register"
)

var _ register.FreshnessProber = (*Reader)(nil)

func TestFreshLifecycle(t *testing.T) {
	r := newReg(t, 2, 64, Options{})
	rd, _ := r.NewReaderHandle()

	// Never read: not fresh by definition.
	if rd.Fresh() {
		t.Fatal("unread handle reports fresh")
	}
	if _, err := rd.View(); err != nil {
		t.Fatal(err)
	}
	if !rd.Fresh() {
		t.Fatal("just-read handle not fresh")
	}
	// A write invalidates.
	if err := r.Write([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if rd.Fresh() {
		t.Fatal("handle fresh after a write")
	}
	// Re-reading restores freshness.
	if _, err := rd.View(); err != nil {
		t.Fatal(err)
	}
	if !rd.Fresh() {
		t.Fatal("handle not fresh after re-read")
	}
	// Closed handles are never fresh.
	rd.Close()
	if rd.Fresh() {
		t.Fatal("closed handle reports fresh")
	}
}

// The probe must not perturb the protocol: freshness polling between
// reads leaves counters and stats untouched.
func TestFreshIsPure(t *testing.T) {
	r := newReg(t, 1, 64, Options{})
	rd, _ := r.NewReaderHandle()
	r.Write([]byte("x"))
	rd.View()
	before := rd.ReadStats()
	for i := 0; i < 1000; i++ {
		if !rd.Fresh() {
			t.Fatal("freshness flapped with no writes")
		}
	}
	after := rd.ReadStats()
	if before != after {
		t.Fatalf("Fresh() mutated stats: %+v -> %+v", before, after)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// ViewFresh pairs the view with the change report: changed on the first
// read and after every publish, unchanged (and RMW-free) in between.
func TestViewFreshChangeReport(t *testing.T) {
	r := newReg(t, 2, 64, Options{})
	rd, _ := r.NewReaderHandle()

	v, changed, err := rd.ViewFresh()
	if err != nil || !changed {
		t.Fatalf("first read: changed=%v err=%v", changed, err)
	}
	if string(v) != "\x00" {
		t.Fatalf("initial view = %q", v)
	}
	before := rd.ReadStats()
	for i := 0; i < 5; i++ {
		v, changed, err = rd.ViewFresh()
		if err != nil || changed {
			t.Fatalf("idle read %d: changed=%v err=%v", i, changed, err)
		}
	}
	if after := rd.ReadStats(); after.RMW != before.RMW || after.FastPath != before.FastPath+5 {
		t.Fatalf("idle ViewFresh stats: %+v -> %+v", before, after)
	}
	if err := r.Write([]byte("new")); err != nil {
		t.Fatal(err)
	}
	v, changed, err = rd.ViewFresh()
	if err != nil || !changed {
		t.Fatalf("post-write read: changed=%v err=%v", changed, err)
	}
	if string(v) != "new" {
		t.Fatalf("post-write view = %q", v)
	}
	rd.Close()
	if _, _, err := rd.ViewFresh(); err != register.ErrReaderClosed {
		t.Fatalf("closed ViewFresh err = %v", err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// With the fast path ablated, ViewFresh conservatively reports changed on
// every call — callers must re-decode, never wrongly reuse a cache.
func TestViewFreshNoFastPath(t *testing.T) {
	r := newReg(t, 2, 64, Options{DisableFastPath: true})
	rd, _ := r.NewReaderHandle()
	for i := 0; i < 3; i++ {
		if _, changed, err := rd.ViewFresh(); err != nil || !changed {
			t.Fatalf("read %d: changed=%v err=%v (want changed with fast path off)", i, changed, err)
		}
	}
}

func TestFreshAllocFree(t *testing.T) {
	r := newReg(t, 1, 64, Options{})
	rd, _ := r.NewReaderHandle()
	r.Write([]byte("x"))
	rd.View()
	if avg := testing.AllocsPerRun(100, func() { rd.Fresh() }); avg != 0 {
		t.Fatalf("Fresh allocates %.1f/op", avg)
	}
}
