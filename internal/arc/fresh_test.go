package arc

import (
	"testing"

	"arcreg/internal/register"
)

var _ register.FreshnessProber = (*Reader)(nil)

func TestFreshLifecycle(t *testing.T) {
	r := newReg(t, 2, 64, Options{})
	rd, _ := r.NewReaderHandle()

	// Never read: not fresh by definition.
	if rd.Fresh() {
		t.Fatal("unread handle reports fresh")
	}
	if _, err := rd.View(); err != nil {
		t.Fatal(err)
	}
	if !rd.Fresh() {
		t.Fatal("just-read handle not fresh")
	}
	// A write invalidates.
	if err := r.Write([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if rd.Fresh() {
		t.Fatal("handle fresh after a write")
	}
	// Re-reading restores freshness.
	if _, err := rd.View(); err != nil {
		t.Fatal(err)
	}
	if !rd.Fresh() {
		t.Fatal("handle not fresh after re-read")
	}
	// Closed handles are never fresh.
	rd.Close()
	if rd.Fresh() {
		t.Fatal("closed handle reports fresh")
	}
}

// The probe must not perturb the protocol: freshness polling between
// reads leaves counters and stats untouched.
func TestFreshIsPure(t *testing.T) {
	r := newReg(t, 1, 64, Options{})
	rd, _ := r.NewReaderHandle()
	r.Write([]byte("x"))
	rd.View()
	before := rd.ReadStats()
	for i := 0; i < 1000; i++ {
		if !rd.Fresh() {
			t.Fatal("freshness flapped with no writes")
		}
	}
	after := rd.ReadStats()
	if before != after {
		t.Fatalf("Fresh() mutated stats: %+v -> %+v", before, after)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreshAllocFree(t *testing.T) {
	r := newReg(t, 1, 64, Options{})
	rd, _ := r.NewReaderHandle()
	r.Write([]byte("x"))
	rd.View()
	if avg := testing.AllocsPerRun(100, func() { rd.Fresh() }); avg != 0 {
		t.Fatalf("Fresh allocates %.1f/op", avg)
	}
}
