package arc

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"arcreg/internal/membuf"
	"arcreg/internal/register"
)

func newReg(t testing.TB, readers, size int, opts Options) *Register {
	t.Helper()
	r, err := New(register.Config{MaxReaders: readers, MaxValueSize: size}, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestInitialValueDefault(t *testing.T) {
	r := newReg(t, 4, 64, Options{})
	rd, err := r.NewReaderHandle()
	if err != nil {
		t.Fatal(err)
	}
	v, err := rd.View()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte{0}) {
		t.Fatalf("initial value = %v, want the one-byte default", v)
	}
}

func TestInitialValueConfigured(t *testing.T) {
	init := []byte("hello register")
	r, err := New(register.Config{MaxReaders: 2, MaxValueSize: 64, Initial: init}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := r.NewReaderHandle()
	v, _ := rd.View()
	if !bytes.Equal(v, init) {
		t.Fatalf("initial value = %q, want %q", v, init)
	}
}

func TestReadReturnsLastWrite(t *testing.T) {
	r := newReg(t, 2, 128, Options{})
	rd, _ := r.NewReaderHandle()
	for i := 0; i < 100; i++ {
		val := []byte(fmt.Sprintf("value-%03d", i))
		if err := r.Write(val); err != nil {
			t.Fatal(err)
		}
		got, err := rd.View()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("iteration %d: read %q, want %q", i, got, val)
		}
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVariableSizes(t *testing.T) {
	r := newReg(t, 2, 1024, Options{})
	rd, _ := r.NewReaderHandle()
	for _, n := range []int{1, 7, 64, 1024, 3, 0, 512} {
		val := bytes.Repeat([]byte{byte(n)}, n)
		if err := r.Write(val); err != nil {
			t.Fatalf("Write(%d bytes): %v", n, err)
		}
		got, _ := rd.View()
		if len(got) != n {
			t.Fatalf("read %d bytes, want %d", len(got), n)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("content mismatch at size %d", n)
		}
	}
}

func TestWriteTooLarge(t *testing.T) {
	r := newReg(t, 2, 16, Options{})
	err := r.Write(make([]byte, 17))
	if !errors.Is(err, register.ErrValueTooLarge) {
		t.Fatalf("want ErrValueTooLarge, got %v", err)
	}
	// The register must still work after a rejected write.
	if err := r.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestReadCopies(t *testing.T) {
	r := newReg(t, 2, 64, Options{})
	rd, _ := r.NewReaderHandle()
	if err := r.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	n, err := rd.Read(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(dst[:n]) != "abcdef" {
		t.Fatalf("Read copied %q", dst[:n])
	}
	// Too-small destination reports the needed size.
	small := make([]byte, 2)
	n, err = rd.Read(small)
	if !errors.Is(err, register.ErrBufferTooSmall) {
		t.Fatalf("want ErrBufferTooSmall, got %v", err)
	}
	if n != 6 {
		t.Fatalf("needed length = %d, want 6", n)
	}
}

func TestSlotCountIsNPlus2(t *testing.T) {
	for _, n := range []int{1, 2, 7, 32} {
		r := newReg(t, n, 8, Options{})
		if got := r.SlotCount(); got != n+2 {
			t.Fatalf("N=%d: slot count %d, want %d", n, got, n+2)
		}
	}
}

func TestReaderCapacity(t *testing.T) {
	r := newReg(t, 2, 8, Options{})
	a, err := r.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewReader(); !errors.Is(err, register.ErrTooManyReaders) {
		t.Fatalf("third handle: want ErrTooManyReaders, got %v", err)
	}
	// Closing returns capacity (dynamic mode).
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := r.NewReader()
	if err != nil {
		t.Fatalf("handle after close: %v", err)
	}
	_ = b
	_ = c
	if r.LiveReaders() != 2 {
		t.Fatalf("live readers = %d, want 2", r.LiveReaders())
	}
}

func TestClosedReaderErrors(t *testing.T) {
	r := newReg(t, 1, 8, Options{})
	rd, _ := r.NewReaderHandle()
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.View(); !errors.Is(err, register.ErrReaderClosed) {
		t.Fatalf("View after close: %v", err)
	}
	if _, err := rd.Read(make([]byte, 8)); !errors.Is(err, register.ErrReaderClosed) {
		t.Fatalf("Read after close: %v", err)
	}
	if err := rd.Close(); !errors.Is(err, register.ErrReaderClosed) {
		t.Fatalf("double Close: %v", err)
	}
}

// The fast path (R1–R2) must serve repeated reads of an unchanged value
// with zero RMW instructions — the paper's key optimization over RF.
func TestFastPathAvoidsRMW(t *testing.T) {
	r := newReg(t, 2, 64, Options{})
	rd, _ := r.NewReaderHandle()
	if err := r.Write([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	const reads = 100
	for i := 0; i < reads; i++ {
		if _, err := rd.View(); err != nil {
			t.Fatal(err)
		}
	}
	st := rd.ReadStats()
	if st.Ops != reads {
		t.Fatalf("ops = %d, want %d", st.Ops, reads)
	}
	// First read acquires (1 RMW: no release since the handle held no
	// slot); the remaining 99 hit the fast path.
	if st.FastPath != reads-1 {
		t.Fatalf("fast-path reads = %d, want %d", st.FastPath, reads-1)
	}
	if st.RMW != 1 {
		t.Fatalf("read RMW count = %d, want 1", st.RMW)
	}
}

// After each write, a read takes the slow path exactly once (release +
// acquire = 2 RMW), then fast-paths again.
func TestSlowPathRMWBound(t *testing.T) {
	r := newReg(t, 2, 64, Options{})
	rd, _ := r.NewReaderHandle()
	if _, err := rd.View(); err != nil { // initial acquire: 1 RMW
		t.Fatal(err)
	}
	const writes = 50
	for i := 0; i < writes; i++ {
		if err := r.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ { // one slow read + two fast reads
			if _, err := rd.View(); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := rd.ReadStats()
	wantRMW := uint64(1 + writes*2) // initial acquire + (release+acquire) per write
	if st.RMW != wantRMW {
		t.Fatalf("read RMW = %d, want %d", st.RMW, wantRMW)
	}
	if st.FastPath != uint64(writes*2) {
		t.Fatalf("fast-path reads = %d, want %d", st.FastPath, writes*2)
	}
}

// DisableFastPath must force RMW on every read (the ablation baseline).
func TestDisableFastPath(t *testing.T) {
	r := newReg(t, 2, 64, Options{DisableFastPath: true})
	rd, _ := r.NewReaderHandle()
	if err := r.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	const reads = 20
	for i := 0; i < reads; i++ {
		if _, err := rd.View(); err != nil {
			t.Fatal(err)
		}
	}
	st := rd.ReadStats()
	if st.FastPath != 0 {
		t.Fatalf("fast-path reads = %d with the fast path disabled", st.FastPath)
	}
	// First read: acquire only (1). Every later read: release + acquire (2).
	if st.RMW != 1+2*(reads-1) {
		t.Fatalf("RMW = %d, want %d", st.RMW, 1+2*(reads-1))
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A write issues exactly one RMW instruction (the W2 exchange): the hint
// path is load/store only. This backs the paper's RMW-economy claim.
func TestWriteSingleRMW(t *testing.T) {
	r := newReg(t, 2, 64, Options{})
	rd, _ := r.NewReaderHandle()
	for i := 0; i < 40; i++ {
		if err := r.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := rd.View(); err != nil {
			t.Fatal(err)
		}
	}
	ws := r.WriteStats()
	if ws.Ops != 40 {
		t.Fatalf("write ops = %d", ws.Ops)
	}
	if ws.RMW != 40 {
		t.Fatalf("write RMW = %d, want exactly one per write", ws.RMW)
	}
}

// With a single reader promptly releasing slots, the free-slot hint should
// serve most writes, keeping the scan amortized constant (§3.4).
func TestFreeHintHits(t *testing.T) {
	r := newReg(t, 1, 64, Options{})
	rd, _ := r.NewReaderHandle()
	const writes = 200
	for i := 0; i < writes; i++ {
		if err := r.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := rd.View(); err != nil {
			t.Fatal(err)
		}
	}
	ws := r.WriteStats()
	if ws.HintHits == 0 {
		t.Fatal("free-slot hint never hit despite prompt releases")
	}
	// Amortized constant: average probes per write should stay tiny.
	if avg := float64(ws.ScanSteps) / float64(ws.Ops); avg > float64(r.SlotCount()) {
		t.Fatalf("average scan steps per write = %.2f", avg)
	}
}

func TestDisableFreeHint(t *testing.T) {
	r := newReg(t, 1, 64, Options{DisableFreeHint: true})
	rd, _ := r.NewReaderHandle()
	for i := 0; i < 50; i++ {
		if err := r.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := rd.View(); err != nil {
			t.Fatal(err)
		}
	}
	if hits := r.WriteStats().HintHits; hits != 0 {
		t.Fatalf("hint hits = %d with the hint disabled", hits)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A view must remain valid and byte-stable across an unbounded number of
// subsequent writes: the handle's presence unit pins the slot (Lemma 4.2's
// flip side). This is the zero-copy contract of §2's "readers read
// directly from the buffer targeted by the write serialized before them".
func TestViewStableWhilePinned(t *testing.T) {
	r := newReg(t, 2, 128, Options{})
	pinned, _ := r.NewReaderHandle()
	buf := make([]byte, 128)
	membuf.Encode(buf, 1)
	if err := r.Write(buf); err != nil {
		t.Fatal(err)
	}
	view, err := pinned.View()
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([]byte, len(view))
	copy(snapshot, view)
	// Hammer the register with far more writes than there are slots.
	for i := uint64(2); i < 100; i++ {
		membuf.Encode(buf, i)
		if err := r.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(view, snapshot) {
		t.Fatal("pinned view changed under subsequent writes")
	}
	if v, err := membuf.Verify(view); err != nil || v != 1 {
		t.Fatalf("pinned view failed verification: version=%d err=%v", v, err)
	}
	// After the pinned reader moves on, the slot recycles and the
	// register keeps functioning.
	got, err := pinned.View()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := membuf.Verify(got); err != nil || v != 99 {
		t.Fatalf("post-release view: version=%d err=%v", v, err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Wait-freedom of the writer in the presence of a stalled reader: a reader
// that acquired a snapshot and never returns must not block any number of
// subsequent writes (it pins exactly one of the N+2 slots).
func TestWriterWaitFreeUnderStalledReader(t *testing.T) {
	r := newReg(t, 2, 64, Options{})
	stalled, _ := r.NewReaderHandle()
	if err := r.Write([]byte("pinned")); err != nil {
		t.Fatal(err)
	}
	if _, err := stalled.View(); err != nil { // acquires and never releases
		t.Fatal(err)
	}
	active, _ := r.NewReaderHandle()
	for i := 0; i < 500; i++ {
		if err := r.Write([]byte{byte(i)}); err != nil {
			t.Fatalf("write %d blocked by stalled reader: %v", i, err)
		}
		if _, err := active.View(); err != nil {
			t.Fatal(err)
		}
	}
	// The stalled reader's snapshot is still intact.
	v, _ := stalled.View() // this read moves it to the freshest value
	want := []byte{byte(499 % 256)}
	if !bytes.Equal(v, want) {
		t.Fatalf("stalled reader resumed to %v, want %v", v, want)
	}
}

// With every reader stalled (all pinning distinct slots), the writer still
// has 2 spare slots and must keep succeeding — the N+2 lower bound at work.
func TestWriterWaitFreeAllReadersStalled(t *testing.T) {
	const n = 8
	r := newReg(t, n, 32, Options{})
	// Park each reader on a distinct snapshot.
	for i := 0; i < n; i++ {
		if err := r.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		rd, err := r.NewReaderHandle()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rd.View(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		if err := r.Write([]byte{0xFF}); err != nil {
			t.Fatalf("write %d failed with all readers stalled: %v", i, err)
		}
	}
	ws := r.WriteStats()
	// Wait-freedom bound: the scan may never exceed SlotCount probes per
	// write.
	if maxAvg := float64(r.SlotCount()); float64(ws.ScanSteps)/float64(ws.Ops) > maxAvg {
		t.Fatalf("scan steps per write %.1f exceed the slot count", float64(ws.ScanSteps)/float64(ws.Ops))
	}
}

// Sequential model check: against a simple "last written value" model, an
// ARC register with interleaved reads/writes on one goroutine must agree
// exactly (atomicity degenerates to that in the absence of concurrency).
func TestSequentialModelQuick(t *testing.T) {
	f := func(ops []byte, sizes []byte) bool {
		r, err := New(register.Config{MaxReaders: 2, MaxValueSize: 64}, Options{})
		if err != nil {
			return false
		}
		rd, err := r.NewReaderHandle()
		if err != nil {
			return false
		}
		model := []byte{0} // initial default
		for i, op := range ops {
			if op%2 == 0 { // write
				size := 1
				if len(sizes) > 0 {
					size = 1 + int(sizes[i%len(sizes)])%63
				}
				val := bytes.Repeat([]byte{op}, size)
				if err := r.Write(val); err != nil {
					return false
				}
				model = val
			} else { // read
				got, err := rd.View()
				if err != nil || !bytes.Equal(got, model) {
					return false
				}
			}
		}
		return r.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent torture: one writer, many readers, every read must verify as
// an untorn payload with a version that never decreases per reader.
// This is the executable form of Theorem 4.3 + per-process monotonicity.
func TestConcurrentIntegrity(t *testing.T) {
	const (
		readers = 8
		writes  = 2000
		size    = 256
	)
	r := newReg(t, readers, size, Options{})
	seed := make([]byte, size)
	membuf.Encode(seed, 0)
	if err := r.Write(seed); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)

	for i := 0; i < readers; i++ {
		rd, err := r.NewReaderHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(rd *Reader) {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := rd.View()
				if err != nil {
					errs <- err
					return
				}
				ver, err := membuf.Verify(v)
				if err != nil {
					errs <- fmt.Errorf("torn read: %w", err)
					return
				}
				if ver < last {
					errs <- fmt.Errorf("version regressed: %d after %d", ver, last)
					return
				}
				last = ver
			}
		}(rd)
	}

	buf := make([]byte, size)
	for i := uint64(1); i <= writes; i++ {
		membuf.Encode(buf, i)
		if err := r.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Concurrent readers churning handles (open/read/close) must neither leak
// capacity nor break invariants.
func TestReaderChurn(t *testing.T) {
	const readers = 4
	r := newReg(t, readers, 64, Options{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rd, err := r.NewReader()
				if err != nil {
					continue // transient capacity exhaustion is fine
				}
				buf := make([]byte, 64)
				if _, err := rd.Read(buf); err != nil {
					panic(err)
				}
				if err := rd.Close(); err != nil {
					panic(err)
				}
			}
		}()
	}
	for i := 0; i < 3000; i++ {
		if err := r.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if r.LiveReaders() != 0 {
		t.Fatalf("leaked %d reader handles", r.LiveReaders())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(register.Config{MaxReaders: 0}, Options{}); err == nil {
		t.Error("MaxReaders=0 accepted")
	}
	if _, err := New(register.Config{MaxReaders: -3}, Options{}); err == nil {
		t.Error("negative MaxReaders accepted")
	}
	if _, err := New(register.Config{MaxReaders: 1, MaxValueSize: -1}, Options{}); err == nil {
		t.Error("negative MaxValueSize accepted")
	}
	if _, err := New(register.Config{MaxReaders: 1, MaxValueSize: 4, Initial: make([]byte, 8)}, Options{}); err == nil {
		t.Error("oversized initial value accepted")
	}
}

func TestName(t *testing.T) {
	r := newReg(t, 1, 8, Options{})
	if r.Name() != "arc" {
		t.Fatalf("Name() = %q", r.Name())
	}
	if r.MaxReaders() != 1 || r.MaxValueSize() != 8 {
		t.Fatal("config accessors wrong")
	}
	if r.Writer() == nil {
		t.Fatal("Writer() returned nil")
	}
}
