// Package arc implements Anonymous Readers Counting (ARC), the wait-free
// multi-word atomic (1,N) register of Ianni, Pellegrini and Quaglia
// (CLUSTER 2017). This package is the paper's primary contribution and the
// core of this repository; every statement labelled R1–R5, W1–W3 or I1
// below refers to the pseudo-code line of Algorithms 1–3 in the paper.
//
// # Protocol
//
// The register keeps N+2 slots (the classical lower bound for wait-free
// (1,N) registers), each holding one snapshot of the register value and a
// pair of counters:
//
//   - r_start: reads started on the slot during its last publication,
//     frozen into the slot by the writer when the slot is retired (W3);
//   - r_end: reads finished on the slot, incremented by readers (R3).
//
// A single 64-bit word, current = index<<32 | counter, names the freshest
// slot and counts the readers that acquired it. Readers are anonymous:
// acquiring the freshest snapshot is one AtomicAddAndFetch on current (R4)
// — it simultaneously increments the presence counter and returns the slot
// index. That anonymity is what lifts the reader bound from 58 (the RF
// register, which dedicates one bit per reader) to 2³²−2.
//
// A read that finds its previously acquired slot still freshest
// (current.index == last_index, R1–R2) returns the same buffer with zero
// RMW instructions — the fast path whose effect the paper measures in §5.
// Otherwise the reader releases its slot (R3) and acquires the new one
// (R4–R5): exactly two RMW instructions, constant time.
//
// The writer picks a free slot (r_start == r_end, excluding the slot it
// published last, W1), copies the new value in, zeroes the counters, and
// publishes with one AtomicExchange on current (W2). The counter value the
// exchange returns is frozen into the retired slot's r_start (W3): from
// then on the slot becomes free exactly when the readers it hosted have
// all moved on (r_end catches up to r_start). Readers accelerate the W1
// search by posting just-freed slots into a hint word (§3.4), making
// writes amortized constant time.
//
// # Deviation from the paper's initialization
//
// Algorithm 1 initializes current to N, pre-charging all N statically
// known readers onto slot 0 (each implicitly holds one presence unit and
// starts with last_index = 0). This implementation defaults to dynamic
// reader registration: a fresh handle holds no slot (last_index is a
// sentinel) and its first read takes the acquire path without a release.
// The accounting of Lemma 4.1 is unchanged — Σ(r_start − r_end) is bounded
// by the number of live handles, at most N. The paper's static scheme is
// available via the StaticInit option and exercised by tests.
package arc

import (
	"fmt"
	"sync"

	"arcreg/internal/membuf"
	"arcreg/internal/notify"
	"arcreg/internal/obs"
	"arcreg/internal/pad"
	"arcreg/internal/register"
	"arcreg/internal/trace"
	"arcreg/internal/word"
)

// noSlot is the sentinel last_index of a reader handle that holds no slot.
const noSlot = ^uint32(0)

// noHint marks an empty free-slot hint word.
const noHint = int64(-1)

// slot is one of the register's N+2 snapshot containers (paper §3.3).
// The counters live on dedicated cache lines: they are the RMW targets of
// concurrent readers, and the paper's §1 discussion of QuickPath costs is
// exactly about keeping such words from sharing (or straddling) lines.
type slot struct {
	// rStart is the number of reads that started on this slot during its
	// last publication. It is zeroed by the writer before publication and
	// frozen to the retired presence count at retirement (W3). Between
	// publication and retirement it stays 0 and is not consulted.
	rStart pad.PaddedUint64
	// rEnd counts reads finished on this slot (R3). rEnd ≤ total
	// acquisitions at all times; the slot is free iff rStart == rEnd and
	// it is not the freshest slot.
	rEnd pad.PaddedUint64
	// size is the length of the value stored in content. Written only by
	// the writer while the slot is free; readers observe it through the
	// happens-before edge established by the RMW chain on current.
	size int
	// content is the pre-allocated value buffer (MaxValueSize bytes).
	content []byte
}

// Options tune the register. The zero value is the paper's algorithm with
// all optimizations enabled.
type Options struct {
	// DisableFastPath forces every read through the release/acquire path
	// (R3–R5) even when the held slot is still freshest, i.e. it turns
	// off the R1–R2 optimization. Used by the ablation benchmarks to
	// quantify the RMW-avoidance claim of §1/§5.
	DisableFastPath bool
	// DisableFreeHint turns off the §3.4 reader-posted free-slot hint,
	// leaving the writer with the plain W1 linear scan. Used by the
	// amortized-constant-time ablation.
	DisableFreeHint bool
	// StaticInit reproduces Algorithm 1 literally: current starts at N
	// (index 0, counter N) and every handle starts pre-charged on slot 0
	// with last_index = 0. In this mode exactly MaxReaders handles can
	// ever be created (the paper's fixed-process model).
	StaticInit bool
	// DynamicBuffers implements the §3.3 variant the paper sketches: "In
	// any real implementation … dynamic buffer allocation/release, with
	// each buffer made up by the amount of bytes fitting the size of the
	// register value … could be employed." Each write allocates an
	// exact-size buffer instead of copying into the pre-allocated
	// MaxValueSize one, so memory scales with the live values rather than
	// with (N+2)·MaxValueSize. Old buffers are reclaimed by the garbage
	// collector, which also makes stale views safe indefinitely (they
	// alias buffers no writer will ever touch again). The price is one
	// allocation per write.
	DynamicBuffers bool
}

// Register is a wait-free multi-word atomic (1,N) register.
//
// Concurrency contract: any number of goroutines may read, each through
// its own Reader handle; a single goroutine at a time may write. These are
// the paper's (1,N) ground rules, not an implementation shortcut.
type Register struct {
	// current is the synchronization word: index<<32 | counter (§3.3).
	current pad.PaddedUint64
	// freeHint is the §3.4 shared proposal word: the index of a slot a
	// reader observed becoming free, or noHint.
	freeHint pad.PaddedInt64
	// seq is the publication sequencer watchers park on: Publish after
	// every W2 costs the writer one atomic store plus one gate load —
	// zero RMW and zero allocation while nobody is parked (see
	// internal/notify and TestWatchZeroRMWIdle).
	seq notify.Sequencer

	slots        []slot
	maxReaders   int
	maxValueSize int
	opts         Options

	// Writer-local state (single writer ⇒ plain fields).
	lastSlot   uint32 // slot of the last write; always == current index
	scanCursor uint32 // round-robin start position for the W1 scan
	wstats     register.WriteStats
	// rec is the writer's flight-recorder ring (nil = untraced): each
	// stamped write records one StagePublish event after the W2 swap.
	// Writer-owned like the rest of this block — Trace is wiring-time.
	rec *trace.Ring

	// Reader-handle accounting.
	mu          sync.Mutex
	liveReaders int
	everCreated int // static mode: total handles ever created
}

// Compile-time interface conformance checks.
var (
	_ register.Register        = (*Register)(nil)
	_ register.Writer          = (*Register)(nil)
	_ register.StatWriter      = (*Register)(nil)
	_ register.Reader          = (*Reader)(nil)
	_ register.Viewer          = (*Reader)(nil)
	_ register.FreshViewer     = (*Reader)(nil)
	_ register.StatReader      = (*Reader)(nil)
	_ register.FreshnessProber = (*Reader)(nil)
)

// New constructs an ARC register from cfg. opts tunes paper ablations; use
// Options{} for the published algorithm.
func New(cfg register.Config, opts Options) (*Register, error) {
	if err := cfg.Validate(word.ARCMaxReaders); err != nil {
		return nil, err
	}
	initial := cfg.InitialOrDefault()
	if cfg.MaxValueSize < len(initial) {
		cfg.MaxValueSize = len(initial)
	}
	nslots := cfg.MaxReaders + 2 // the N+2 lower bound (§3.3)
	r := &Register{
		slots:        make([]slot, nslots),
		maxReaders:   cfg.MaxReaders,
		maxValueSize: cfg.MaxValueSize,
		opts:         opts,
	}
	if !opts.DynamicBuffers {
		for i := range r.slots {
			r.slots[i].content = membuf.Aligned(cfg.MaxValueSize)
		}
	}
	// Algorithm 1: the initial value is posted into slot 0; every other
	// slot starts with r_start == r_end == 0 (free).
	if opts.DynamicBuffers {
		r.slots[0].content = append([]byte(nil), initial...)
		r.slots[0].size = len(initial)
	} else {
		r.slots[0].size = copy(r.slots[0].content, initial)
	}
	if opts.StaticInit {
		// I1: current ← N — index 0, counter N, as if all N readers had
		// already started reading slot 0.
		r.current.Store(word.PackCurrent(0, uint32(cfg.MaxReaders)))
	} else {
		// Dynamic registration: nobody holds slot 0 yet.
		r.current.Store(word.PackCurrent(0, 0))
	}
	r.freeHint.Store(noHint)
	r.lastSlot = 0
	r.scanCursor = 1
	return r, nil
}

// Name implements register.Register.
func (r *Register) Name() string { return "arc" }

// Caps implements register.CapabilityReporter: ARC has the full set —
// zero-copy views, the one-load freshness probe behind the R1–R2 fast
// path, combined probe-and-fetch, stats on both sides, and wait-free
// progress for every operation.
func (r *Register) Caps() register.Caps {
	return register.Caps{
		ZeroCopyView:  true,
		FreshProbe:    true,
		FreshView:     true,
		ReadStats:     true,
		WriteStats:    true,
		WaitFreeRead:  true,
		WaitFreeWrite: true,
		Watchable:     true,
	}
}

// MaxReaders implements register.Register.
func (r *Register) MaxReaders() int { return r.maxReaders }

// MaxValueSize implements register.Register.
func (r *Register) MaxValueSize() int { return r.maxValueSize }

// SlotCount reports the number of snapshot slots (always MaxReaders+2).
func (r *Register) SlotCount() int { return len(r.slots) }

// Writer implements register.Register. The register itself is the writer
// endpoint; the single-writer contract is the caller's to uphold.
func (r *Register) Writer() register.Writer { return r }

// WriteStats implements register.StatWriter. Call only while no write is
// in flight.
func (r *Register) WriteStats() register.WriteStats { return r.wstats }

// Stats returns the register's live telemetry as a Stats-tree node:
// capacity gauges plus the publication sequencer's counters. Safe from
// any goroutine at any time — it reads only tier-1 words (atomically
// published cells and the handle-table mutex), never the writer's or a
// reader's plain hot-path counters; those stay quiescent-collection
// only (WriteStats/ReadStats) per the DESIGN §10 recording discipline.
func (r *Register) Stats() obs.Snapshot {
	sn := obs.Snapshot{Name: "register"}
	sn.Put("slots", uint64(len(r.slots)))
	sn.Put("max_readers", uint64(r.maxReaders))
	sn.Put("live_readers", uint64(r.LiveReaders()))
	sn.Children = append(sn.Children, r.seq.Stats())
	return sn
}

// Write publishes a new register value (Algorithm 3). It is wait-free:
// the free-slot search is bounded by the slot count (Lemma 4.1 guarantees
// success) and everything else is straight-line code. The value is copied
// exactly once, into the selected slot — ARC's "no intermediate copies"
// property.
func (r *Register) Write(p []byte) error { return r.WriteStamped(p, 0) }

// WriteStamped is Write with a caller-supplied origin stamp (trace.Now
// at the moment the caller decided to publish): the stamp becomes the
// span ID threading this publication through the flight recorder — the
// StagePublish event here, the notify cascade, watcher wakes, and any
// downstream delivery stages all share it. stamp 0 on a traced register
// self-stamps; on an untraced register it stays 0, so the plain Write
// path never reads the clock and its instruction trace is unchanged
// (see TestTraceZeroOverheadGuard).
func (r *Register) WriteStamped(p []byte, stamp int64) error {
	if len(p) > r.maxValueSize {
		return fmt.Errorf("%w: %d > %d", register.ErrValueTooLarge, len(p), r.maxValueSize)
	}
	idx := r.findFreeSlot() // W1
	s := &r.slots[idx]
	if r.opts.DynamicBuffers {
		// §3.3 variant: an exact-size buffer per write. The previous
		// buffer is unreferenced by the protocol once the slot was freed;
		// the GC reclaims it when the last stale view drops it.
		s.content = append(make([]byte, 0, len(p)), p...)
		s.size = len(p)
	} else {
		s.size = copy(s.content, p) // single copy of the new content
	}
	s.rStart.Store(0)
	s.rEnd.Store(0)
	// W2: publish atomically; the returned word carries the retired
	// slot's index and its final presence count.
	old := r.current.Swap(word.PublishWord(idx))
	r.wstats.RMW++
	oldSlot := word.CurrentIndex(old)
	// W3: freeze the presence count into the retired slot. From here the
	// slot is free exactly when its readers have all released it.
	r.slots[oldSlot].rStart.Store(uint64(word.CurrentCounter(old)))
	r.lastSlot = idx
	r.wstats.Ops++
	// Flight recorder: one StagePublish event per traced write, after
	// the W2 swap (the publication instant) and before the wake, so the
	// span's first event timestamps the value becoming visible. Four
	// atomic stores plus a head publish into a writer-owned ring — no
	// RMW, no allocation; untraced registers skip even the clock read.
	if r.rec != nil {
		if stamp == 0 {
			stamp = trace.Now()
		}
		r.rec.Record(trace.StagePublish, idx, stamp, uint64(len(p)))
	}
	// Announce the publication after the W2 swap made it visible:
	// watchers woken here (or skipping their park on the epoch recheck)
	// observe the new current word. The stamp rides the wake so leaf
	// watchers and the recorder attribute latency to this publish.
	r.seq.PublishAt(stamp)
	return nil
}

// Trace attaches a flight-recorder ring to the writer: subsequent
// writes record StagePublish events and stamp their publications.
// Wiring-time only — call from the writer goroutine (or before the
// register is shared), like every writer-local field. nil detaches.
func (r *Register) Trace(ring *trace.Ring) { r.rec = ring }

// Notifier returns the register's publication sequencer: its epoch
// advances on every Write, and waiters park on its gate. Compositions
// chain the gate to an aggregate (mnreg's composite gate, regmap's
// shard gates) at wiring time.
func (r *Register) Notifier() *notify.Sequencer { return &r.seq }

// findFreeSlot returns a slot with r_start == r_end that is not the
// freshest slot (W1), consulting the §3.4 reader hint first.
func (r *Register) findFreeSlot() uint32 {
	if !r.opts.DisableFreeHint {
		if h := r.freeHint.Load(); h != noHint {
			// Single writer ⇒ load-then-clear needs no RMW. A hint a
			// reader posts between the load and the clear is lost, which
			// is harmless: hints are an accelerator, not a correctness
			// mechanism.
			r.freeHint.Store(noHint)
			idx := uint32(h)
			r.wstats.ScanSteps++
			if idx != r.lastSlot && int(idx) < len(r.slots) {
				s := &r.slots[idx]
				// Re-validate: the hinted slot may have been reused for
				// an earlier write since the reader posted it (§3.4's
				// corner case).
				if s.rStart.Load() == s.rEnd.Load() {
					r.wstats.HintHits++
					return idx
				}
			}
		}
	}
	// Linear scan from a roving cursor. A slot observed free cannot be
	// re-acquired by readers (only the freshest slot can be acquired, and
	// only the writer republishes), so one full pass must succeed.
	n := uint32(len(r.slots))
	for probes := uint32(0); probes < n; probes++ {
		idx := r.scanCursor
		r.scanCursor++
		if r.scanCursor == n {
			r.scanCursor = 0
		}
		r.wstats.ScanSteps++
		if idx == r.lastSlot {
			continue
		}
		s := &r.slots[idx]
		if s.rStart.Load() == s.rEnd.Load() {
			return idx
		}
	}
	// Unreachable by Lemma 4.1: Σ(r_start − r_end) ≤ N live readers, so
	// at least 2 of the N+2 slots are free and at least one of them is
	// not last_slot. Reaching this line means the implementation broke
	// the paper's invariant — fail loudly rather than corrupt data.
	panic("arc: no free slot found; Lemma 4.1 invariant violated")
}

// Reader is a per-goroutine read endpoint. It carries the process-local
// last_index state of Algorithm 2 and must not be shared between
// goroutines.
type Reader struct {
	reg *Register
	// lastIndex is the slot this handle holds a presence unit on, or
	// noSlot. Exactly the paper's last_index process-local variable.
	lastIndex uint32
	closed    bool
	stats     register.ReadStats
}

// NewReader implements register.Register. It fails with ErrTooManyReaders
// once MaxReaders handles are live (or, under StaticInit, were ever
// created).
func (r *Register) NewReader() (register.Reader, error) {
	rd, err := r.newReader()
	if err != nil {
		return nil, err
	}
	return rd, nil
}

// NewReaderHandle is the concrete-typed variant of NewReader, for callers
// that want the zero-copy View without a type assertion.
func (r *Register) NewReaderHandle() (*Reader, error) { return r.newReader() }

func (r *Register) newReader() (*Reader, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.opts.StaticInit {
		if r.everCreated >= r.maxReaders {
			return nil, register.ErrTooManyReaders
		}
		r.everCreated++
		r.liveReaders++
		// Algorithm 1/I1 pre-charged this handle's presence unit onto
		// slot 0 at construction time.
		return &Reader{reg: r, lastIndex: 0}, nil
	}
	if r.liveReaders >= r.maxReaders {
		return nil, register.ErrTooManyReaders
	}
	r.liveReaders++
	return &Reader{reg: r, lastIndex: noSlot}, nil
}

// LiveReaders reports the number of open reader handles.
func (r *Register) LiveReaders() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.liveReaders
}

// ReadStats implements register.StatReader. Collect after the owning
// goroutine has quiesced.
func (rd *Reader) ReadStats() register.ReadStats { return rd.stats }

// View returns the freshest register value without copying (Algorithm 2).
// The returned slice aliases the slot buffer and remains valid until this
// handle's next View, Read or Close — the protocol pins the slot exactly
// that long (the handle's presence unit is outstanding, so the writer
// cannot observe r_start == r_end and recycle it). Callers must not write
// through the view.
//
// Wait-freedom: the fast path is one atomic load; the slow path adds two
// RMW instructions. There are no loops and no retries.
func (rd *Reader) View() ([]byte, error) {
	v, _, err := rd.ViewFresh()
	return v, err
}

// ViewFresh implements register.FreshViewer: View plus a change report.
// changed is false exactly when the call took the R1–R2 fast path onto the
// slot the handle already held — the same publication epoch as the
// previous read, so one atomic load and zero RMW instructions. Callers
// that cache state derived from the previous view (a decoded header, the
// view's tag) may keep it when changed is false; internal/mnreg gates its
// per-component collect on this.
func (rd *Reader) ViewFresh() ([]byte, bool, error) {
	if rd.closed {
		return nil, false, register.ErrReaderClosed
	}
	reg := rd.reg
	cur := reg.current.Load() // R1
	idx := word.CurrentIndex(cur)
	if !reg.opts.DisableFastPath && idx == rd.lastIndex {
		// R2: the held snapshot is still the freshest in the
		// linearizable history; return it without any RMW. The held slot
		// cannot have been republished (it is never free while held), so
		// index equality implies the same publication epoch — no ABA.
		s := &reg.slots[idx]
		rd.stats.Ops++
		rd.stats.FastPath++
		return s.content[:s.size], false, nil
	}
	// Slow path. R3: release the previously held slot, if any.
	rd.release()
	// R4: acquire the freshest slot and register presence in one RMW.
	cur = reg.current.Add(1)
	rd.stats.RMW++
	idx = word.CurrentIndex(cur) // R5
	rd.lastIndex = idx
	s := &reg.slots[idx]
	rd.stats.Ops++
	return s.content[:s.size], true, nil
}

// release increments r_end on the held slot (R3) and posts the §3.4 free
// hint when this release made the slot reusable.
func (rd *Reader) release() {
	if rd.lastIndex == noSlot {
		return
	}
	reg := rd.reg
	s := &reg.slots[rd.lastIndex]
	end := s.rEnd.Add(1)
	rd.stats.RMW++
	if !reg.opts.DisableFreeHint && end == s.rStart.Load() {
		// This release freed the slot: propose it to the writer. (If the
		// slot is instead still published and r_start is transiently 0,
		// end ≥ 1 ≠ 0 keeps the comparison false.)
		reg.freeHint.Store(int64(rd.lastIndex))
	}
	rd.lastIndex = noSlot
}

// Fresh implements register.FreshnessProber: it reports whether the slot
// this handle holds is still the freshest publication — the R1 comparison
// of the fast path, exposed as a standalone probe. One atomic load, zero
// RMW instructions, making "has anything changed?" polls essentially
// free.
func (rd *Reader) Fresh() bool {
	if rd.closed || rd.lastIndex == noSlot {
		return false
	}
	return word.CurrentIndex(rd.reg.current.Load()) == rd.lastIndex
}

// Read copies the freshest value into dst and returns its length,
// implementing register.Reader on top of View.
func (rd *Reader) Read(dst []byte) (int, error) {
	v, err := rd.View()
	if err != nil {
		return 0, err
	}
	if len(dst) < len(v) {
		return len(v), register.ErrBufferTooSmall
	}
	return copy(dst, v), nil
}

// Close releases the handle's presence unit and returns its capacity to
// the register.
func (rd *Reader) Close() error {
	if rd.closed {
		return register.ErrReaderClosed
	}
	rd.release()
	rd.closed = true
	reg := rd.reg
	reg.mu.Lock()
	reg.liveReaders--
	reg.mu.Unlock()
	return nil
}

// CheckInvariants verifies the structural invariants behind Lemma 4.1 and
// Lemma 4.2. It must be called at quiescence (no reads or writes in
// flight); tests call it between phases.
func (r *Register) CheckInvariants() error {
	cur := r.current.Load()
	idx := word.CurrentIndex(cur)
	if int(idx) >= len(r.slots) {
		return fmt.Errorf("arc: current index %d out of range (%d slots)", idx, len(r.slots))
	}
	if idx != r.lastSlot {
		return fmt.Errorf("arc: current index %d != lastSlot %d", idx, r.lastSlot)
	}
	// Σ(r_start − r_end) over retired slots plus the live counter must
	// not exceed the number of presence units ever issued to live
	// readers; at quiescence every live handle holds at most one unit.
	var outstanding int64
	for i := range r.slots {
		s := &r.slots[i]
		start := s.rStart.Load()
		end := s.rEnd.Load()
		if uint32(i) == idx {
			// Published slot: r_start is 0 until retirement; its
			// acquisitions live in the current counter.
			start = uint64(word.CurrentCounter(cur))
		}
		if end > start {
			return fmt.Errorf("arc: slot %d has r_end %d > r_start %d", i, end, start)
		}
		outstanding += int64(start) - int64(end)
	}
	r.mu.Lock()
	live := r.liveReaders
	static := r.opts.StaticInit
	created := r.everCreated
	maxR := r.maxReaders
	r.mu.Unlock()
	bound := int64(live)
	if static {
		// Pre-charged units of never-created handles are permanently
		// outstanding by design.
		bound = int64(live) + int64(maxR-created)
	}
	if outstanding > bound {
		return fmt.Errorf("arc: %d outstanding presence units exceed bound %d (live readers %d)",
			outstanding, bound, live)
	}
	// A writer must always find a free slot: count them (Lemma 4.1).
	free := 0
	for i := range r.slots {
		if uint32(i) == idx {
			continue
		}
		s := &r.slots[i]
		if s.rStart.Load() == s.rEnd.Load() {
			free++
		}
	}
	if free < 1 {
		return fmt.Errorf("arc: no free slot at quiescence; Lemma 4.1 violated")
	}
	return nil
}
