package seqlock

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"arcreg/internal/membuf"
	"arcreg/internal/register"
)

func newReg(t testing.TB, readers, size int) *Register {
	t.Helper()
	r, err := New(register.Config{MaxReaders: readers, MaxValueSize: size})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReadReturnsLastWrite(t *testing.T) {
	r := newReg(t, 2, 64)
	rd, _ := r.NewReaderHandle()
	dst := make([]byte, 64)
	for i := 0; i < 100; i++ {
		val := []byte(fmt.Sprintf("v%03d", i))
		if err := r.Write(val); err != nil {
			t.Fatal(err)
		}
		n, err := rd.Read(dst)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst[:n], val) {
			t.Fatalf("read %q want %q", dst[:n], val)
		}
	}
}

func TestInitialValue(t *testing.T) {
	r, err := New(register.Config{MaxReaders: 1, MaxValueSize: 16, Initial: []byte("seed")})
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := r.NewReaderHandle()
	dst := make([]byte, 16)
	n, err := rd.Read(dst)
	if err != nil || string(dst[:n]) != "seed" {
		t.Fatalf("read %q %v", dst[:n], err)
	}
}

// A write in progress (odd sequence) must make readers wait — seqlock
// reads are lock-free, not wait-free. This is the structural difference
// from ARC that the package documents.
func TestReaderWaitsOutInProgressWrite(t *testing.T) {
	r := newReg(t, 1, 16)
	r.Write([]byte("stable"))
	// Simulate a writer preempted mid-write: force the sequence odd.
	seq := r.seq.Load()
	r.seq.Store(seq + 1)

	rd, _ := r.NewReaderHandle()
	done := make(chan struct{})
	go func() {
		dst := make([]byte, 16)
		rd.Read(dst)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("read completed while the sequence was odd")
	case <-time.After(50 * time.Millisecond):
		// expected: reader is spinning
	}
	r.seq.Store(seq + 2) // writer "resumes" and finishes
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reader did not resume after the write completed")
	}
	if rd.ReadStats().Retries == 0 {
		t.Fatal("no retries recorded despite an in-progress write")
	}
}

// The writer never blocks, even with readers hammering the register.
func TestWriterNeverBlocks(t *testing.T) {
	r := newReg(t, 4, 64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		rd, _ := r.NewReaderHandle()
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]byte, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				rd.Read(dst)
			}
		}()
	}
	start := time.Now()
	for i := 0; i < 100_000; i++ {
		if err := r.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if elapsed > 30*time.Second {
		t.Fatalf("writes took %v; writer appears to block", elapsed)
	}
}

func TestSequentialModelQuick(t *testing.T) {
	f := func(ops []byte) bool {
		r, err := New(register.Config{MaxReaders: 1, MaxValueSize: 64})
		if err != nil {
			return false
		}
		rd, err := r.NewReaderHandle()
		if err != nil {
			return false
		}
		model := []byte{0}
		dst := make([]byte, 64)
		for _, op := range ops {
			if op%2 == 0 {
				val := bytes.Repeat([]byte{op}, 1+int(op)%32)
				if r.Write(val) != nil {
					return false
				}
				model = val
			} else {
				n, err := rd.Read(dst)
				if err != nil || !bytes.Equal(dst[:n], model) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentIntegrity(t *testing.T) {
	const (
		readers = 4
		writes  = 2000
		size    = 512
	)
	r := newReg(t, readers, size)
	seed := make([]byte, size)
	membuf.Encode(seed, 0)
	if err := r.Write(seed); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		rd, _ := r.NewReaderHandle()
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]byte, size)
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				n, err := rd.Read(dst)
				if err != nil {
					errs <- err
					return
				}
				ver, err := membuf.Verify(dst[:n])
				if err != nil {
					errs <- fmt.Errorf("torn seqlock read: %w", err)
					return
				}
				if ver < last {
					errs <- fmt.Errorf("version regressed: %d after %d", ver, last)
					return
				}
				last = ver
			}
		}()
	}
	buf := make([]byte, size)
	for i := uint64(1); i <= writes; i++ {
		membuf.Encode(buf, i)
		if err := r.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestErrorsAndCapacity(t *testing.T) {
	r := newReg(t, 1, 8)
	if err := r.Write(make([]byte, 9)); !errors.Is(err, register.ErrValueTooLarge) {
		t.Fatalf("oversized: %v", err)
	}
	rd, _ := r.NewReaderHandle()
	if _, err := r.NewReader(); !errors.Is(err, register.ErrTooManyReaders) {
		t.Fatalf("capacity: %v", err)
	}
	r.Write([]byte("12345678"))
	if n, err := rd.Read(make([]byte, 2)); !errors.Is(err, register.ErrBufferTooSmall) || n != 8 {
		t.Fatalf("small dst: %d %v", n, err)
	}
	rd.Close()
	if _, err := rd.Read(make([]byte, 8)); !errors.Is(err, register.ErrReaderClosed) {
		t.Fatalf("closed: %v", err)
	}
	if err := rd.Close(); !errors.Is(err, register.ErrReaderClosed) {
		t.Fatalf("double close: %v", err)
	}
	if r.LiveReaders() != 0 {
		t.Fatalf("live = %d", r.LiveReaders())
	}
}

func TestName(t *testing.T) {
	r := newReg(t, 1, 8)
	if r.Name() != "seqlock" || r.MaxReaders() != 1 || r.MaxValueSize() != 8 || r.Writer() == nil {
		t.Fatal("accessors wrong")
	}
}
