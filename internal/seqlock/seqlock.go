// Package seqlock implements a sequence-lock multi-word (1,N) register —
// the folklore mechanism (Linux kernel seqcount, Lameter 2005) that
// occupies the design point between the paper's lock-based comparator and
// its wait-free registers, included here as an extension baseline: the
// "scattered seqlock variants" that exist in systems practice without the
// paper's guarantees.
//
// A single buffer is guarded by a version word. The writer makes it odd,
// mutates the buffer, makes it even again. Readers double-collect: sample
// the version (retry while odd), copy the buffer, resample; a change means
// interference and the copy is discarded.
//
// Properties, in the paper's terms:
//
//   - Writes are wait-free and cheap: one copy, two version stores, no
//     RMW (single writer), one buffer total.
//   - Reads are only LOCK-FREE: a reader that keeps colliding with writes
//     retries without bound — exactly the progress property Lamport's 1977
//     construction had and that the paper's wait-free designs improve on.
//     Under a saturating writer, reader tail latency explodes; the
//     harness's steal simulation makes this vivid (a writer preempted
//     mid-write leaves the version odd and EVERY reader spinning).
//   - Reads copy the value (no zero-copy view is possible: the single
//     buffer is overwritten in place).
//
// The buffer is word-atomic (membuf.StoreWords/LoadWords) for the same
// reason as Peterson's: torn reads are part of the design and must be
// race-detector-clean.
package seqlock

import (
	"fmt"
	"sync"

	"arcreg/internal/membuf"
	"arcreg/internal/pad"
	"arcreg/internal/register"
)

// MaxReaders is administrative; the algorithm is population-oblivious
// (readers need no identity at all).
const MaxReaders = 1 << 20

// Register is the seqlock (1,N) register.
type Register struct {
	// seq is even when the buffer is stable, odd while a write is in
	// progress.
	seq pad.PaddedUint64

	buf          []uint64
	maxReaders   int
	maxValueSize int

	wstats register.WriteStats

	mu          sync.Mutex
	liveReaders int
}

var (
	_ register.Register   = (*Register)(nil)
	_ register.Writer     = (*Register)(nil)
	_ register.StatWriter = (*Register)(nil)
	_ register.Reader     = (*Reader)(nil)
	_ register.StatReader = (*Reader)(nil)
)

// New constructs a seqlock register.
func New(cfg register.Config) (*Register, error) {
	if err := cfg.Validate(MaxReaders); err != nil {
		return nil, err
	}
	initial := cfg.InitialOrDefault()
	if cfg.MaxValueSize < len(initial) {
		cfg.MaxValueSize = len(initial)
	}
	r := &Register{
		buf:          membuf.AlignedWords(membuf.WordsFor(cfg.MaxValueSize)),
		maxReaders:   cfg.MaxReaders,
		maxValueSize: cfg.MaxValueSize,
	}
	membuf.StoreWords(r.buf, initial)
	return r, nil
}

// Name implements register.Register.
func (r *Register) Name() string { return "seqlock" }

// Caps implements register.CapabilityReporter: seqlock writes are
// wait-free over a single buffer, but reads retry unboundedly while a
// write is in flight (lock-free only) and must copy out to validate.
func (r *Register) Caps() register.Caps {
	return register.Caps{
		ReadStats:     true,
		WriteStats:    true,
		WaitFreeWrite: true,
	}
}

// MaxReaders implements register.Register.
func (r *Register) MaxReaders() int { return r.maxReaders }

// MaxValueSize implements register.Register.
func (r *Register) MaxValueSize() int { return r.maxValueSize }

// Writer implements register.Register.
func (r *Register) Writer() register.Writer { return r }

// WriteStats implements register.StatWriter.
func (r *Register) WriteStats() register.WriteStats { return r.wstats }

// Write publishes a new value in place. Wait-free; single buffer; the
// odd/even fence pair is the entire protocol.
func (r *Register) Write(p []byte) error {
	if len(p) > r.maxValueSize {
		return fmt.Errorf("%w: %d > %d", register.ErrValueTooLarge, len(p), r.maxValueSize)
	}
	seq := r.seq.Load()
	r.seq.Store(seq + 1) // odd: write in progress
	membuf.StoreWords(r.buf, p)
	r.seq.Store(seq + 2) // even: stable
	r.wstats.Ops++
	return nil
}

// Reader is a per-goroutine read endpoint.
type Reader struct {
	reg    *Register
	closed bool
	stats  register.ReadStats
}

// NewReader implements register.Register.
func (r *Register) NewReader() (register.Reader, error) {
	rd, err := r.newReader()
	if err != nil {
		return nil, err
	}
	return rd, nil
}

// NewReaderHandle is the concrete-typed variant of NewReader.
func (r *Register) NewReaderHandle() (*Reader, error) { return r.newReader() }

func (r *Register) newReader() (*Reader, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.liveReaders >= r.maxReaders {
		return nil, register.ErrTooManyReaders
	}
	r.liveReaders++
	return &Reader{reg: r}, nil
}

// LiveReaders reports open handles.
func (r *Register) LiveReaders() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.liveReaders
}

// ReadStats implements register.StatReader. Retries counts discarded
// collection attempts — the lock-free (not wait-free) cost of seqlock.
func (rd *Reader) ReadStats() register.ReadStats { return rd.stats }

// Read copies the freshest stable value into dst. Lock-free: it retries
// until a collect is undisturbed, with no upper bound on attempts.
func (rd *Reader) Read(dst []byte) (int, error) {
	if rd.closed {
		return 0, register.ErrReaderClosed
	}
	reg := rd.reg
	var b pad.Backoff
	for {
		s1 := reg.seq.Load()
		if s1&1 == 1 { // write in progress: wait it out
			rd.stats.Retries++
			b.Wait()
			continue
		}
		size := membuf.LoadWords(reg.buf, dst, reg.maxValueSize)
		s2 := reg.seq.Load()
		if s1 == s2 {
			rd.stats.Ops++
			if size > len(dst) {
				return size, register.ErrBufferTooSmall
			}
			return size, nil
		}
		rd.stats.Retries++
		b.Wait()
	}
}

// Close releases the handle.
func (rd *Reader) Close() error {
	if rd.closed {
		return register.ErrReaderClosed
	}
	rd.closed = true
	rd.reg.mu.Lock()
	rd.reg.liveReaders--
	rd.reg.mu.Unlock()
	return nil
}
