// Package codec is the one encoding layer between the byte-oriented
// registers and the typed public API. Every typed surface in the
// repository — Reg[T]/New[T], the deprecated Typed[T]/TypedMN[T]
// wrappers, and the keyed MapOf[T] — funnels through the Codec[T]
// contract defined here, so a new encoding (protobuf, flatbuffers, a
// hand-rolled wire format) plugs into all of them at once.
//
// Codecs run outside the registers' critical operations: encoding
// happens before the wait-free write, decoding after the wait-free read.
// They may therefore be arbitrarily expensive without affecting other
// threads' progress — but their Decode must respect the aliasing
// contract below, because registers hand decoders direct views of their
// internal slots.
package codec

import (
	"bytes"
	"encoding"
	"encoding/gob"
	"encoding/json"
	"fmt"
)

// Codec converts between Go values and the byte strings registers store.
//
// Decode is handed a slice that may alias a register slot which is
// recycled as soon as Decode returns: implementations must not retain p
// or any sub-slice of it (encoding/json and encoding/gob already copy;
// a decoder that keeps sub-slices must copy them first). Raw is the one
// deliberate exception and documents its view semantics.
type Codec[T any] interface {
	// Encode serializes v. The returned slice is owned by the caller
	// until the register copies it (registers copy on Write).
	Encode(v T) ([]byte, error)
	// Decode deserializes p into a fresh value, without retaining p.
	Decode(p []byte) (T, error)
	// Name identifies the codec in diagnostics ("json", "raw", ...).
	Name() string
}

// jsonCodec implements Codec via encoding/json.
type jsonCodec[T any] struct{}

func (jsonCodec[T]) Encode(v T) ([]byte, error) { return json.Marshal(v) }

func (jsonCodec[T]) Decode(p []byte) (T, error) {
	var v T
	err := json.Unmarshal(p, &v)
	return v, err
}

func (jsonCodec[T]) Name() string { return "json" }

// JSON returns the encoding/json codec — the zero-configuration choice
// for sharing configuration structs, snapshots and similar values.
func JSON[T any]() Codec[T] { return jsonCodec[T]{} }

// gobCodec implements Codec via encoding/gob. Each call uses a fresh
// encoder/decoder so every blob is self-contained (a long-lived gob
// stream elides type information after the first value, which would
// make register blobs undecodable in isolation).
type gobCodec[T any] struct{}

func (gobCodec[T]) Encode(v T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (gobCodec[T]) Decode(p []byte) (T, error) {
	var v T
	err := gob.NewDecoder(bytes.NewReader(p)).Decode(&v)
	return v, err
}

func (gobCodec[T]) Name() string { return "gob" }

// Gob returns the encoding/gob codec — the binary stdlib choice for Go
// value graphs (maps, slices, nested structs) without hand-written
// marshalers. Denser and faster than JSON for most struct payloads, at
// the cost of a per-blob type preamble and Go-only wire compatibility.
// encoding/gob copies everything it decodes, satisfying the register
// aliasing contract.
func Gob[T any]() Codec[T] { return gobCodec[T]{} }

// rawCodec is the zero-copy []byte passthrough.
type rawCodec struct{}

func (rawCodec) Encode(v []byte) ([]byte, error) { return v, nil }

func (rawCodec) Decode(p []byte) ([]byte, error) { return p, nil }

func (rawCodec) Name() string { return "raw" }

// Raw returns the zero-copy []byte passthrough codec: Encode and Decode
// are the identity. It is the one codec whose Decode intentionally
// aliases its input, so values obtained through it follow zero-copy view
// semantics — valid only until the reading handle's next operation, and
// never to be modified. Use it when T is []byte and the copy-free read
// path matters; use String (or a copying codec) when values must outlive
// the handle's next read.
func Raw() Codec[[]byte] { return rawCodec{} }

// stringCodec copies through string conversion on both sides.
type stringCodec struct{}

func (stringCodec) Encode(v string) ([]byte, error) { return []byte(v), nil }

func (stringCodec) Decode(p []byte) (string, error) { return string(p), nil }

func (stringCodec) Name() string { return "string" }

// String returns the codec for plain string values. Both directions
// copy, so decoded strings are immune to slot recycling.
func String() Codec[string] { return stringCodec{} }

// binaryCodec implements Codec via encoding.BinaryMarshaler /
// BinaryUnmarshaler on *T.
type binaryCodec[T any, PT interface {
	*T
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}] struct{}

func (binaryCodec[T, PT]) Encode(v T) ([]byte, error) { return PT(&v).MarshalBinary() }

func (binaryCodec[T, PT]) Decode(p []byte) (T, error) {
	var v T
	err := PT(&v).UnmarshalBinary(p)
	return v, err
}

func (binaryCodec[T, PT]) Name() string { return "binary" }

// Binary returns a codec for types implementing
// encoding.BinaryMarshaler and encoding.BinaryUnmarshaler on their
// pointer receiver: Binary[Point, *Point](). The stdlib
// BinaryUnmarshaler contract already requires implementations to copy
// data they retain, which is exactly the register aliasing contract.
func Binary[T any, PT interface {
	*T
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}]() Codec[T] {
	return binaryCodec[T, PT]{}
}

// funcCodec adapts a pair of functions.
type funcCodec[T any] struct {
	enc func(T) ([]byte, error)
	dec func([]byte) (T, error)
}

func (c funcCodec[T]) Encode(v T) ([]byte, error) { return c.enc(v) }

func (c funcCodec[T]) Decode(p []byte) (T, error) { return c.dec(p) }

func (funcCodec[T]) Name() string { return "funcs" }

// Funcs adapts an encode/decode function pair into a Codec — the bridge
// the deprecated NewTyped/NewTypedMN/NewMapOf constructors use. dec is
// held to the Codec aliasing contract: it must not retain its argument.
func Funcs[T any](enc func(T) ([]byte, error), dec func([]byte) (T, error)) Codec[T] {
	return funcCodec[T]{enc: enc, dec: dec}
}

// ZeroInitial encodes T's zero value for use as a register's initial
// value, bounds-checked against maxValueSize (0 = unchecked here; the
// register's own Validate applies the default bound later). This is the
// one copy of the bootstrap every typed constructor shares: readers that
// Get before the first Set decode this blob instead of failing on the
// registers' one-zero-byte default.
func ZeroInitial[T any](c Codec[T], maxValueSize int) ([]byte, error) {
	var zero T
	blob, err := c.Encode(zero)
	if err != nil {
		return nil, fmt.Errorf("arcreg: encoding zero value: %w", err)
	}
	if maxValueSize != 0 && len(blob) > maxValueSize {
		return nil, fmt.Errorf("arcreg: zero value needs %d bytes > MaxValueSize %d", len(blob), maxValueSize)
	}
	if blob == nil {
		// A nil encoding (Raw's zero value) still means "seed with the
		// empty value": registers treat a nil Initial as unset and would
		// substitute their one-zero-byte default instead.
		blob = []byte{}
	}
	return blob, nil
}
