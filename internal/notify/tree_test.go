package notify

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"arcreg/internal/fault"
)

// treeRng is SplitMix64 — the battery's deterministic topology and
// churn driver, so every failure reproduces from its seed.
type treeRng struct{ x uint64 }

func (r *treeRng) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *treeRng) intn(n int) int { return int(r.next() % uint64(n)) }

// randTopology draws a legal topology: depth 1–4, arity 2–64, capped
// at 4096 leaves so a single case stays fast under -race.
func randTopology(r *treeRng) (arity, depth int) {
	depth = MinFanDepth + r.intn(MaxFanDepth)
	maxA := MaxFanArity
	for {
		leaves := 1
		for i := 0; i < depth; i++ {
			leaves *= maxA
		}
		if leaves <= 4096 || maxA == MinFanArity {
			break
		}
		maxA /= 2
	}
	arity = MinFanArity + r.intn(maxA-MinFanArity+1)
	return arity, depth
}

// waitRelaysDrained polls until the tree has no running relays —
// relay exit is asynchronous after the last Close.
func waitRelaysDrained(t *testing.T, tree *Tree) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for tree.Relays() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("relays never drained: %d still running (subs=%d)",
				tree.Relays(), tree.Subs())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestTreeWakesSubscriber is the smallest end-to-end path: one
// subscriber parked on a leaf observes a publish cascaded through the
// full relay chain, at every depth.
func TestTreeWakesSubscriber(t *testing.T) {
	for depth := MinFanDepth; depth <= MaxFanDepth; depth++ {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			var s Sequencer
			tree := s.Fan(2, depth)
			sub := tree.Subscribe()
			defer sub.Close()
			done := make(chan error, 1)
			go func() {
				_, err := WaitEpoch(context.Background(), s.Epoch, 0, nil, sub.Gate())
				done <- err
			}()
			// Let the watcher park (Subscribe guarantees the relay path
			// is armed; the watcher's own leaf arm is what we wait for).
			deadline := time.Now().Add(2 * time.Second)
			for !sub.Gate().Armed() {
				if time.Now().After(deadline) {
					t.Fatal("watcher never parked on its leaf")
				}
				time.Sleep(time.Microsecond)
			}
			s.Publish()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("WaitEpoch: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("publish never reached the leaf watcher")
			}
		})
	}
}

// TestTreeBroadcastAllWatchers parks more watchers than leaves (so
// leaf cohorts have size > 1) and asserts a single publish wakes every
// one of them — the tree is a broadcast, not an anycast.
func TestTreeBroadcastAllWatchers(t *testing.T) {
	var s Sequencer
	tree := s.Fan(4, 2) // 16 leaves
	const watchers = 64
	var parked, woken sync.WaitGroup
	parked.Add(watchers)
	woken.Add(watchers)
	for i := 0; i < watchers; i++ {
		sub := tree.Subscribe()
		go func(sub *Sub) {
			defer woken.Done()
			defer sub.Close()
			if _, err := WaitEpoch(context.Background(), s.Epoch, 0, nil, sub.Gate()); err != nil {
				t.Errorf("WaitEpoch: %v", err)
			}
		}(sub)
		go func(sub *Sub) {
			defer parked.Done()
			for !sub.Gate().Armed() {
				time.Sleep(time.Microsecond)
			}
		}(sub)
	}
	parked.Wait()
	s.Publish()
	ok := make(chan struct{})
	go func() { woken.Wait(); close(ok) }()
	select {
	case <-ok:
	case <-time.After(10 * time.Second):
		t.Fatal("not every watcher woke from one publish")
	}
	waitRelaysDrained(t, tree)
}

// TestTreeNoLostWakeupStress is the battery the tentpole's correctness
// rests on: randomized topologies, a hammering publisher, parked
// watchers, subscriber churn, and yield/stall fault schedules on the
// tree-wake, wake-swap and publish-epoch points — asserting every
// watcher observes the final epoch (at-least-once delivery with
// conflation) and the ledger invariant observed ≤ published holds.
func TestTreeNoLostWakeupStress(t *testing.T) {
	seeds := []uint64{1, 7, 42, 1917}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := &treeRng{x: seed}
			arity, depth := randTopology(rng)
			rounds := 4000 + rng.intn(4000)
			if testing.Short() {
				rounds /= 4
			}
			watchers := 4 + rng.intn(8)
			churners := 2 + rng.intn(4)
			t.Logf("arity=%d depth=%d leaves=%d rounds=%d watchers=%d churners=%d",
				arity, depth, pow(arity, depth), rounds, watchers, churners)

			// One rule per point (a later rule for the same point would
			// replace the earlier at Arm). Alternate the tree-wake kind
			// across seeds so the battery covers both reordering
			// (yield) and held-open-cascade (stall) windows.
			treeRule := fault.Rule{Point: FaultTreeWake, Kind: fault.Yield, Every: 3}
			if seed%2 == 0 {
				treeRule = fault.Rule{Point: FaultTreeWake, Kind: fault.Stall,
					Every: uint64(129 + rng.intn(128)), Stall: 200 * time.Microsecond}
			}
			sched, err := fault.NewSchedule(seed,
				treeRule,
				fault.Rule{Point: FaultWakeSwap, Kind: fault.Yield, Every: 5},
				fault.Rule{Point: FaultPublishEpoch, Kind: fault.Yield, Every: 7},
			)
			if err != nil {
				t.Fatalf("schedule: %v", err)
			}
			sched.Arm()
			defer sched.Disarm()

			var s Sequencer
			tree := s.Fan(arity, depth)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			var wg sync.WaitGroup
			errs := make(chan string, watchers+churners)
			target := uint64(rounds)

			// Watchers: park on a leaf, observe monotone epochs until
			// the final one, keeping the backpressure ledger.
			ledgers := make([]*WatchStats, watchers)
			for w := 0; w < watchers; w++ {
				ws := &WatchStats{}
				ledgers[w] = ws
				sub := tree.Subscribe()
				wg.Add(1)
				go func(w int, sub *Sub, ws *WatchStats) {
					defer wg.Done()
					defer sub.Close()
					var seen uint64
					for seen < target {
						e, err := WaitEpoch(ctx, s.Epoch, seen, ws, sub.Gate())
						if err != nil {
							errs <- fmt.Sprintf("watcher %d: %v (seen %d / target %d)", w, err, seen, target)
							return
						}
						if e < seen {
							errs <- fmt.Sprintf("watcher %d: epoch regressed %d after %d", w, e, seen)
							return
						}
						seen = e
						ws.NoteDelivered(e)
					}
				}(w, sub, ws)
			}

			// Churners: subscribe/park-briefly/close in a tight loop —
			// the relay lifecycle (spawn, drain, revive) under fire.
			stop := make(chan struct{})
			for c := 0; c < churners; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					crng := &treeRng{x: seed ^ uint64(c)<<32}
					for {
						select {
						case <-stop:
							return
						default:
						}
						sub := tree.Subscribe()
						if crng.intn(2) == 0 {
							cctx, ccancel := context.WithTimeout(ctx, time.Duration(crng.intn(200))*time.Microsecond)
							_, _ = WaitEpoch(cctx, s.Epoch, s.Epoch(), nil, sub.Gate())
							ccancel()
						}
						sub.Close()
					}
				}(c)
			}

			for i := 0; i < rounds; i++ {
				s.Publish()
				if i%256 == 0 {
					runtime.Gosched() // 1-CPU container: let waiters park
				}
			}
			// Watchers exit on their own: the final publish's cascade
			// must reach every parked watcher — that is the theorem
			// under test. No nudge publishes.
			close(stop)
			wg.Wait()
			select {
			case msg := <-errs:
				t.Fatal(msg)
			default:
			}
			for w, ws := range ledgers {
				if ws.Observed() > ws.Published() {
					t.Errorf("watcher %d: ledger inverted: observed %d > published %d",
						w, ws.Observed(), ws.Published())
				}
				if ws.Observed() < target {
					t.Errorf("watcher %d: never observed final epoch: %d < %d",
						w, ws.Observed(), target)
				}
			}
			if tree.Cascades() == 0 {
				t.Error("no cascades ran — tree was never exercised")
			}
			if fired := sched.Fired(); fired == 0 {
				t.Error("fault schedule never fired — stress ran unfaulted")
			}
			waitRelaysDrained(t, tree)
		})
	}
}

func pow(a, d int) int {
	n := 1
	for i := 0; i < d; i++ {
		n *= a
	}
	return n
}

// TestTreeRelayHygiene storms Subscribe/Close from many goroutines and
// asserts the relay population returns to zero — no helper-goroutine
// leak — and that goroutine counts settle back to the baseline.
func TestTreeRelayHygiene(t *testing.T) {
	base := runtime.NumGoroutine()
	var g Gate
	tree := g.Fan(8, 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			iters := 300
			if testing.Short() {
				iters = 50
			}
			for i := 0; i < iters; i++ {
				sub := tree.Subscribe()
				if i%3 == 0 {
					g.Wake() // cascade against a live but empty tree
				}
				sub.Close()
			}
		}(w)
	}
	wg.Wait()
	if subs := tree.Subs(); subs != 0 {
		t.Errorf("live subs after churn: %d, want 0", subs)
	}
	waitRelaysDrained(t, tree)
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTreeMixedDirectAndLeafWaiters pins the mixed-cohort contract: a
// waiter parked directly on the source gate and a tree subscriber
// parked on a leaf are both woken by one publish — attaching a tree
// must not strand pre-existing direct waiters.
func TestTreeMixedDirectAndLeafWaiters(t *testing.T) {
	var s Sequencer
	tree := s.Fan(2, 1)
	sub := tree.Subscribe()
	defer sub.Close()
	var woken sync.WaitGroup
	woken.Add(2)
	go func() {
		defer woken.Done()
		if _, err := s.Wait(context.Background(), 0); err != nil {
			t.Errorf("direct Wait: %v", err)
		}
	}()
	go func() {
		defer woken.Done()
		if _, err := WaitEpoch(context.Background(), s.Epoch, 0, nil, sub.Gate()); err != nil {
			t.Errorf("leaf WaitEpoch: %v", err)
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !sub.Gate().Armed() {
		if time.Now().After(deadline) {
			t.Fatal("leaf watcher never parked")
		}
		time.Sleep(time.Microsecond)
	}
	s.Publish()
	done := make(chan struct{})
	go func() { woken.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("mixed cohort: not both waiters woke")
	}
}

// TestTreeStampPropagation asserts a cascaded wake carries the ORIGIN
// publish stamp to the leaf, not the stamp of the last relay hop — the
// latency histograms must measure publish→observe, not hop→observe.
func TestTreeStampPropagation(t *testing.T) {
	var s Sequencer
	tree := s.Fan(2, 3)
	sub := tree.Subscribe()
	defer sub.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = WaitEpoch(context.Background(), s.Epoch, 0, nil, sub.Gate())
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !sub.Gate().Armed() {
		if time.Now().After(deadline) {
			t.Fatal("watcher never parked")
		}
		time.Sleep(time.Microsecond)
	}
	s.Publish()
	<-done
	src, leaf := s.Gate().WakeStamp(), sub.Gate().WakeStamp()
	if leaf != src {
		t.Errorf("leaf stamp %d != source stamp %d (origin stamp must propagate)", leaf, src)
	}
}

// TestTreeRoundRobinBalance pins leaf assignment: K×leaves sequential
// subscriptions land exactly K per leaf.
func TestTreeRoundRobinBalance(t *testing.T) {
	var g Gate
	tree := g.Fan(4, 1)
	const k = 3
	counts := map[*Gate]int{}
	var subs []*Sub
	for i := 0; i < k*tree.Leaves(); i++ {
		sub := tree.Subscribe()
		subs = append(subs, sub)
		counts[sub.Gate()]++
	}
	for leaf, n := range counts {
		if n != k {
			t.Errorf("leaf %p got %d subscribers, want %d", leaf, n, k)
		}
	}
	if len(counts) != tree.Leaves() {
		t.Errorf("subscriptions hit %d distinct leaves, want %d", len(counts), tree.Leaves())
	}
	for _, sub := range subs {
		sub.Close()
	}
	waitRelaysDrained(t, tree)
}

// TestTreeFanCaching pins Gate.Fan idempotence under racing first
// calls: one tree wins, everyone gets it, topology arguments after the
// first are ignored.
func TestTreeFanCaching(t *testing.T) {
	var g Gate
	const racers = 16
	trees := make([]*Tree, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trees[i] = g.Fan(8, 2)
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if trees[i] != trees[0] {
			t.Fatalf("racing Fan calls returned distinct trees")
		}
	}
	if got := g.Fan(4, 1); got != trees[0] {
		t.Error("later Fan with different topology returned a new tree")
	}
	if g.Fanned() != trees[0] {
		t.Error("Fanned does not return the attached tree")
	}
}

// TestTreeIdlePublishUnchanged pins the publisher-side contract: with
// a tree attached but ZERO subscribers, no relays run, the source gate
// stays unarmed, and Publish remains allocation-free — the tree costs
// nothing until someone subscribes.
func TestTreeIdlePublishUnchanged(t *testing.T) {
	var s Sequencer
	tree := s.Fan(16, 2)
	if tree.Relays() != 0 {
		t.Fatalf("relays running before any Subscribe: %d", tree.Relays())
	}
	allocs := testing.AllocsPerRun(1000, func() { s.Publish() })
	if allocs != 0 {
		t.Errorf("idle Publish with attached tree allocates %.1f objects/op, want 0", allocs)
	}
	if s.Gate().Armed() {
		t.Error("idle tree armed the source gate")
	}
	if tree.Cascades() != 0 {
		t.Error("cascades ran with no subscribers")
	}
}

// TestTreeTopologyPanics pins NewTree's bounds.
func TestTreeTopologyPanics(t *testing.T) {
	cases := []struct {
		name         string
		arity, depth int
	}{
		{"arity-low", 1, 1},
		{"arity-high", 65, 1},
		{"depth-low", 8, 0},
		{"depth-high", 8, 5},
		{"leaf-cap", 64, 4}, // 64^4 = 16M leaves
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTree(arity=%d, depth=%d) did not panic", tc.arity, tc.depth)
				}
			}()
			var g Gate
			NewTree(&g, tc.arity, tc.depth)
		})
	}
	t.Run("nil-src", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("NewTree(nil, ...) did not panic")
			}
		}()
		NewTree(nil, 2, 1)
	})
}

// TestTreeStatsShape sanity-checks the stats node: topology counters,
// per-level children, live relay counts while subscribed.
func TestTreeStatsShape(t *testing.T) {
	var s Sequencer
	tree := s.Fan(4, 2)
	sub := tree.Subscribe()
	sn := tree.Stats()
	want := map[string]uint64{"arity": 4, "depth": 2, "leaves": 16, "subs": 1}
	for k, v := range want {
		if got, ok := sn.Get(k); !ok || got != v {
			t.Errorf("fan stats %s = %d (present=%v), want %d", k, got, ok, v)
		}
	}
	if got, _ := sn.Get("relays"); got == 0 {
		t.Error("fan stats relays = 0 with a live subscription")
	}
	if len(sn.Children) != 2 {
		t.Fatalf("fan stats has %d level children, want 2", len(sn.Children))
	}
	if n, _ := sn.Children[0].Get("nodes"); n != 1 {
		t.Errorf("level0 nodes = %d, want 1 (root)", n)
	}
	if n, _ := sn.Children[1].Get("nodes"); n != 4 {
		t.Errorf("level1 nodes = %d, want 4", n)
	}
	// The sequencer's stats node carries the fan child once attached.
	seqSn := s.Stats()
	if seqSn.Child("fan") == nil {
		t.Error("Sequencer.Stats missing fan child after Fan")
	}
	sub.Close()
	waitRelaysDrained(t, tree)
}

// TestTreeSubscribeDuringCascade overlaps Subscribe with in-flight
// cascades: a subscriber must never return before its leaf path is
// live, so a publish issued after Subscribe returns is always
// observed. Regression guard for the ready-handshake.
func TestTreeSubscribeDuringCascade(t *testing.T) {
	var s Sequencer
	tree := s.Fan(2, 2)
	iters := 500
	if testing.Short() {
		iters = 100
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // background publisher keeps cascades in flight
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Publish()
			}
		}
	}()
	for i := 0; i < iters; i++ {
		sub := tree.Subscribe()
		seen := s.Epoch()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		// The publisher is hot, so the epoch moves past `seen`
		// immediately; the theorem is that parking on the just-
		// subscribed leaf still observes it (no dark window).
		if _, err := WaitEpoch(ctx, s.Epoch, seen, nil, sub.Gate()); err != nil {
			t.Fatalf("iter %d: subscribe-then-wait lost the publish: %v", i, err)
		}
		cancel()
		sub.Close()
	}
	close(stop)
	wg.Wait()
	waitRelaysDrained(t, tree)
}
