// Package notify is the publication-notification layer under the Watch
// API: a per-register publication sequencer (a monotonic epoch plus a
// swap-on-publish broadcast gate) that lets idle readers park on "has
// anything been published?" instead of busy-polling, without taxing the
// writer.
//
// # Why not per-waiter channel registration
//
// The obvious design — waiters register a channel in a list, the writer
// walks the list on publish — is unsound for a wait-free writer: the
// list needs a lock or an unbounded-retry lock-free structure on the
// *publish* path, the walk is O(waiters), and a slow waiter's full
// channel either blocks the writer or forces a per-waiter drop policy.
// Every one of those breaks the register's writer-side guarantees (the
// paper's writer is bounded straight-line code; see DESIGN.md §8 for
// the full analysis).
//
// This package inverts the responsibility, following the same
// validated-gate discipline as the mnreg epoch gate and the regmap
// snapshot counters:
//
//   - The epoch is a single padded word the publisher advances with a
//     plain atomic store (the publisher is the register's single
//     writer, so no RMW is needed — it owns the counter).
//
//   - The gate is one atomic pointer holding the broadcast channel the
//     currently parked waiters share, or nil when nobody is parked.
//     The publisher's wakeup check is one atomic load; only when a
//     waiter is actually parked does it swap the pointer out and close
//     the channel — a broadcast to every parked waiter at once, off
//     the no-waiter fast path.
//
//   - Waiters do the expensive part: allocate the channel, install it
//     with a CAS, and — crucially — re-check the epoch *after* arming
//     the gate. Both the waiter (gate CAS, then epoch load) and the
//     publisher (epoch store, then gate load) cross the two words in
//     opposite orders with sequentially consistent atomics, so at
//     least one side observes the other: either the waiter sees the
//     new epoch and never sleeps, or the publisher sees the armed gate
//     and closes it. A lost wakeup would require both loads to miss
//     both stores, which sequential consistency forbids (the
//     linearization argument is spelled out in DESIGN.md §8).
//
// The publisher's cost with no waiter parked is therefore one atomic
// store plus one atomic load per chained gate — zero RMW instructions,
// zero allocations, zero branches on shared mutable state beyond the
// nil check. Waiters pay one allocation and one CAS per park, which is
// the right side of the ledger: parked waiters are idle by definition.
//
// # Gate chaining
//
// A Gate may be chained to a parent Gate at wiring time: waking a gate
// also wakes its ancestors. Compositions use this to aggregate many
// publishers into one parking point — the (M,N) register chains its M
// component sequencers to one composite gate, and the sharded map
// chains its per-shard sequencers to one map-level gate — while each
// waiter still rechecks its own epoch predicate after arming, so the
// chain adds only atomic loads to the publish path, never RMW.
//
// # Gate trees
//
// A flat gate's close is O(parked waiters) of scheduler work executed
// inline in the publisher — fine at tens of waiters, a wakeup storm at
// 100k. Tree (see tree.go) attaches a fixed-arity hierarchy of gates
// to any source gate: watchers subscribe to a leaf and park there, and
// per-node relay goroutines cascade each wake down level by level, so
// the publisher's worst case stays one swap + one close (of the root
// relay's one-waiter channel) and no single goroutine ever closes more
// than one cohort. The no-lost-wakeup argument above then applies per
// level; the relay's re-arm-before-propagate ordering is what makes
// the induction go through.
package notify

import (
	"context"
	"reflect"
	"sync/atomic"

	"arcreg/internal/obs"
	"arcreg/internal/pad"
	"arcreg/internal/trace"
)

// nowNanos is the package's monotonic nanosecond clock: wake stamps
// and wakeup-latency samples are durations since process start, immune
// to wall-clock steps. It is the flight recorder's clock (trace.Now),
// so wake stamps, span stamps and trace event timestamps are directly
// comparable — the property that lets one publication stamp thread a
// span across the notify cascade.
func nowNanos() int64 { return trace.Now() }

// Gate is the parking point: an atomic pointer to the broadcast channel
// shared by the currently parked waiters, nil when nobody is parked.
// The zero value is ready to use. Publishers call Wake; waiters call
// Arm, re-check their change predicate, and then block on the returned
// channel (see Await for the packaged protocol).
type Gate struct {
	// armed is padded like every shared synchronization word in this
	// repository: it is CAS target of parking waiters and must not
	// false-share with the epoch word or neighbouring gates.
	_     [pad.CacheLineSize - 8]byte
	armed atomic.Pointer[chan struct{}]
	_     [pad.CacheLineSize - 8]byte
	// stamp is the monotonic time of the last waking publish, stored
	// only on the armed slow path (just before the swap-and-close, so
	// the channel close's happens-before edge carries it to every woken
	// waiter). The no-waiter publish path never touches it.
	stamp  atomic.Int64
	_      [pad.CacheLineSize - 8]byte
	parent *Gate
	// fan is the lazily attached wakeup tree (nil for the common flat
	// gate). Cold: touched only by Fan/Fanned, never on the publish
	// path — Wake goes through the armed pointer exactly as before,
	// the tree's root relay being just another parked waiter.
	fan atomic.Pointer[Tree]
	_   pad.CacheLinePad
}

// Chain links g to parent: every Wake of g also wakes parent (and its
// ancestors). Wiring-time only — call before the gate is shared with
// concurrent publishers or waiters.
func (g *Gate) Chain(parent *Gate) { g.parent = parent }

// Arm installs (or joins) the broadcast channel waiters park on and
// returns it. The caller MUST re-check its change predicate after Arm
// and before blocking on the channel: the arm-then-recheck order is
// what closes the lost-wakeup window against a concurrent publish.
// The returned channel may already be closed (a publish raced the arm);
// blocking on it then returns immediately, which is safe — spurious
// wakeups are absorbed by the caller's predicate loop.
func (g *Gate) Arm() <-chan struct{} {
	for {
		if p := g.armed.Load(); p != nil {
			return *p // join the parked cohort: one load
		}
		ch := make(chan struct{})
		p := &ch
		if g.armed.CompareAndSwap(nil, p) {
			return ch
		}
		// CAS lost: either another waiter armed first (next load joins
		// it) or a publisher cleared a just-closed channel (next load
		// is nil and the CAS retries). Each retry implies another
		// party made progress, and the caller's predicate recheck
		// bounds the loop in practice: this is the waiter slow path.
	}
}

// Wake wakes every parked waiter on g and its ancestors. With no waiter
// parked the cost is one atomic load per gate in the chain — zero RMW
// instructions and zero allocations, preserving the publisher's
// wait-free zero-RMW publish path. With waiters parked it swaps the
// channel out and closes it: one RMW plus one close, amortized over
// every waiter in the cohort.
//
// Wake must be ordered after the publication it announces (an atomic
// store or RMW on the published state), so that a waiter woken by the
// close — or one that never slept because its post-Arm recheck saw the
// publication — observes the new state.
//
// Wake returns the number of broadcast channels it closed (0 on the
// no-waiter fast path), so publishers can count waking publications
// without re-probing the gate.
func (g *Gate) Wake() int { return g.WakeAt(0) }

// WakeAt is Wake with a caller-supplied wake stamp: gate trees use it
// to propagate the *origin* publish time down a cascade so leaf
// watchers measure full publish→observe latency rather than the last
// relay hop. stamp 0 means "now" (plain Wake).
func (g *Gate) WakeAt(stamp int64) int {
	woke := 0
	for gg := g; gg != nil; gg = gg.parent {
		if gg.armed.Load() == nil {
			continue // fast path: nobody parked on this gate
		}
		// Armed slow path: stamp the wake time before the swap so the
		// channel close's happens-before edge publishes the stamp to
		// every waiter it wakes (their latency sample is close-to-
		// observe, the backpressure half of the park→publish→observe
		// path).
		faultWakeSwap.Hit()
		if stamp != 0 {
			gg.stamp.Store(stamp)
		} else {
			gg.stamp.Store(nowNanos())
		}
		// Swap-then-close: the channel leaves the gate before it
		// closes, so no waiter can be handed an already-closed channel
		// *through the gate* (one obtained just before the swap wakes
		// immediately, which the predicate loop absorbs). Swap rather
		// than store-nil keeps this correct even when several
		// publishers share a parent gate.
		if p := gg.armed.Swap(nil); p != nil {
			close(*p)
			woke++
		}
	}
	return woke
}

// disarm clears the gate's armed pointer if it still holds ch — the
// exiting relay's cleanup for an interior gate it owns exclusively. A
// concurrent Wake that already swapped the channel out wins the race
// harmlessly (the CAS fails and nothing is disarmed).
func (g *Gate) disarm(ch <-chan struct{}) {
	if p := g.armed.Load(); p != nil && *p == ch {
		g.armed.CompareAndSwap(p, nil)
	}
}

// Fan returns the gate's wakeup tree, creating one with the given
// topology on first call (see NewTree for the bounds). Concurrent
// first calls race benignly — one tree wins the CAS, losers are
// discarded before any relay spawns — and later calls return the
// cached tree regardless of the arity/depth they ask for: a gate has
// one fan shape, fixed by whoever attaches it first.
func (g *Gate) Fan(arity, depth int) *Tree {
	if t := g.fan.Load(); t != nil {
		return t
	}
	t := NewTree(g, arity, depth)
	if g.fan.CompareAndSwap(nil, t) {
		return t
	}
	return g.fan.Load()
}

// Fanned returns the gate's wakeup tree if one has been attached, nil
// otherwise — the stats walkers' no-allocate probe.
func (g *Gate) Fanned() *Tree { return g.fan.Load() }

// WakeStamp returns the monotonic nanosecond time of the last waking
// publish through g, 0 if none has happened. Woken waiters read it to
// compute their wakeup latency; the close that woke them orders the
// stamp before their load.
func (g *Gate) WakeStamp() int64 { return g.stamp.Load() }

// Armed reports whether a waiter is currently parked (or arming) on g.
// Test and diagnostics hook; the answer is immediately stale.
func (g *Gate) Armed() bool { return g.armed.Load() != nil }

// Await parks on one or more gates until changed reports true or ctx
// is done, packaging the arm → recheck → block protocol. changed must
// be monotone over the caller's wait (once true it stays true until
// the caller acts) and is evaluated under no lock; its loads of
// published state are what the arm-then-recheck ordering protects.
//
// One and two gates — every steady-state composition in this
// repository (a keyed watch parks on the key's value gate and the
// shard's directory gate at once; tree watchers park on a single leaf)
// — take an unrolled allocation-free select. Three or more gates fall
// back to reflect.Select, which allocates per park; that path exists
// for multi-source compositions and tests, not hot loops. Await panics
// on zero gates rather than silently never waking.
func Await(ctx context.Context, changed func() bool, gates ...*Gate) error {
	return AwaitStats(ctx, changed, nil, gates...)
}

// AwaitStats is Await with per-watcher telemetry: each pass through the
// park→wake edge records one wakeup on ws, a wakeup-latency sample
// against the waking gate's stamp, and a spurious wakeup when the wake
// did not satisfy the predicate. ws may be nil (plain Await). All
// recording happens on the waiter's side of the park — the publish path
// is untouched beyond the stamp it already writes when a waiter is
// parked.
func AwaitStats(ctx context.Context, changed func() bool, ws *WatchStats, gates ...*Gate) error {
	switch len(gates) {
	case 0:
		panic("notify: Await needs at least one gate")
	case 1, 2:
		return await2(ctx, changed, ws, gates)
	default:
		return awaitN(ctx, changed, ws, gates)
	}
}

// await2 is the unrolled 1-or-2-gate park loop — no per-iteration
// allocation beyond the shared broadcast channel Arm may create.
func await2(ctx context.Context, changed func() bool, ws *WatchStats, gates []*Gate) error {
	for {
		if changed() {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		c0 := gates[0].Arm()
		var c1 <-chan struct{}
		if len(gates) == 2 {
			c1 = gates[1].Arm()
		}
		// The decisive recheck: armed before, loaded after. A publish
		// missed here must observe the armed gate and close it.
		if changed() {
			return nil
		}
		var woke *Gate
		select {
		case <-c0:
			woke = gates[0]
		case <-c1: // nil when one gate: never ready
			woke = gates[1]
		case <-ctx.Done():
			return ctx.Err()
		}
		noteWake(ws, woke, changed)
	}
}

// awaitN is the general N-gate park loop (N ≥ 3) built on
// reflect.Select. Same protocol, same recheck ordering; the price is
// one case-slice build and reflect's per-call allocations per park.
func awaitN(ctx context.Context, changed func() bool, ws *WatchStats, gates []*Gate) error {
	cases := make([]reflect.SelectCase, len(gates)+1)
	cases[len(gates)] = reflect.SelectCase{
		Dir: reflect.SelectRecv, Chan: reflect.ValueOf(ctx.Done()),
	}
	for {
		if changed() {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		for i, g := range gates {
			cases[i] = reflect.SelectCase{
				Dir: reflect.SelectRecv, Chan: reflect.ValueOf(g.Arm()),
			}
		}
		// The decisive recheck, after every gate is armed.
		if changed() {
			return nil
		}
		chosen, _, _ := reflect.Select(cases)
		if chosen == len(gates) {
			return ctx.Err()
		}
		noteWake(ws, gates[chosen], changed)
	}
}

// noteWake records one park→wake edge on ws: the wakeup, its latency
// against the waking gate's stamp, and whether it was spurious. The
// caller falls through to its loop head afterwards — the predicate is
// monotone, so the extra changed() there costs one pass and keeps one
// exit path.
func noteWake(ws *WatchStats, woke *Gate, changed func() bool) {
	if ws == nil {
		return
	}
	ws.wakeups.Add(1)
	if stamp := woke.WakeStamp(); stamp != 0 {
		now := nowNanos()
		ws.latency.RecordSince(stamp, now)
		// Flight-recorder hook: one StageWake event per waking park,
		// spanned by the origin publish stamp WakeAt propagated. The
		// ring is owner-plain (this watcher goroutine is the ring's
		// single writer), so the record is four atomic stores and a
		// head publish — no RMW, no allocation. lastWake is plain for
		// the same reason: only this goroutine reads it back (to span
		// downstream stages like the SSE flush).
		ws.ring.Record(trace.StageWake, 0, stamp, uint64(now-stamp))
		ws.lastWake = stamp
	}
	if !changed() {
		ws.spurious.Add(1)
	}
}

// WaitEpoch parks on the given gates until epoch() differs from seen,
// returning the epoch it observed — the shared engine behind
// Sequencer.WaitStats, the (M,N) composite wait, and tree-leaf parks.
// epoch must be monotone in the "eventually differs" sense (it is a
// publication counter, or a sum of them). The observed epoch is noted
// as published on ws when ws is non-nil.
func WaitEpoch(ctx context.Context, epoch func() uint64, seen uint64, ws *WatchStats, gates ...*Gate) (uint64, error) {
	var e uint64
	err := AwaitStats(ctx, func() bool {
		e = epoch()
		return e != seen
	}, ws, gates...)
	if err != nil {
		return seen, err
	}
	if ws != nil {
		ws.NoteSeen(e)
	}
	return e, nil
}

// Sequencer is the per-register publication sequencer: a monotonic
// epoch advanced by the register's single publisher on every
// publication, plus the broadcast Gate waiters park on. The zero value
// is ready to use (epoch 0 = "nothing published yet").
//
// Concurrency contract: exactly one goroutine calls Publish at a time —
// the same single-writer contract as the (1,N) register it instruments,
// which is what lets the epoch advance with a plain store instead of an
// RMW. Any number of goroutines may call Epoch, Wait and Gate().Arm.
type Sequencer struct {
	epoch pad.PaddedUint64
	gate  Gate
	// local mirrors epoch on the publisher's side so Publish needs no
	// atomic read-modify-write — the publisher owns the counter.
	local uint64
	// wakes counts waking publications (a waiter was parked and the
	// gate closed) — publisher-owned, advanced only on the armed slow
	// path, so the no-waiter publish cost is unchanged.
	wakes obs.Cell
}

// Publish records one publication: it advances the epoch (one atomic
// store) and wakes parked waiters (one atomic load per chained gate;
// a swap and a channel close only when someone is parked). Call it
// after the publication itself is visible (after the register's
// publish store/RMW), from the single publisher goroutine.
func (s *Sequencer) Publish() { s.PublishAt(0) }

// PublishAt is Publish with a caller-supplied origin stamp (trace.Now
// at the moment the publication became visible): the stamp rides the
// gate wake — and, through WakeAt, the whole fan-out cascade — so leaf
// watchers and the flight recorder attribute latency to the *origin*
// publish, not the last relay hop. stamp 0 means "unstamped" (plain
// Publish): the no-waiter publish path then never reads the clock.
func (s *Sequencer) PublishAt(stamp int64) {
	s.local++
	s.epoch.Store(s.local)
	faultPublishEpoch.Hit()
	if s.gate.WakeAt(stamp) > 0 {
		s.wakes.Add(1)
	}
}

// Wakes reports how many publications found a waiter parked and woke
// it: any goroutine, one atomic load.
func (s *Sequencer) Wakes() uint64 { return s.wakes.Load() }

// Stats returns the sequencer's live counters as a Stats-tree node:
// publication epoch, waking publications, and whether a waiter is
// currently parked. Safe from any goroutine at any time.
func (s *Sequencer) Stats() obs.Snapshot {
	sn := obs.Snapshot{Name: "notify"}
	sn.Put("epoch", s.epoch.Load())
	sn.Put("wakes", s.wakes.Load())
	armed := uint64(0)
	if s.gate.Armed() {
		armed = 1
	}
	sn.Put("gate_armed", armed)
	if t := s.gate.Fanned(); t != nil {
		sn.Children = append(sn.Children, t.Stats())
	}
	return sn
}

// Epoch returns the current publication count: one atomic load. Two
// different values mean a publication happened in between; equal values
// mean none did (the epoch is monotone and only the publisher advances
// it).
func (s *Sequencer) Epoch() uint64 { return s.epoch.Load() }

// Gate returns the sequencer's parking gate, for callers composing
// multi-gate waits (see Await).
func (s *Sequencer) Gate() *Gate { return &s.gate }

// Chain links the sequencer's gate to parent (see Gate.Chain).
// Wiring-time only.
func (s *Sequencer) Chain(parent *Gate) { s.gate.Chain(parent) }

// Wait blocks until the epoch differs from seen or ctx is done,
// returning the epoch it observed. A caller that snapshots Epoch
// *before* reading the register and Waits on that snapshot is
// guaranteed at-least-once delivery: any publication after the
// snapshot makes Wait return, and the caller's re-read then observes
// it (or something newer — latest-value conflation).
func (s *Sequencer) Wait(ctx context.Context, seen uint64) (uint64, error) {
	return s.WaitStats(ctx, seen, nil)
}

// WaitStats is Wait with per-watcher telemetry: park/wake accounting
// goes through AwaitStats, and the epoch observed at return is noted as
// published on ws (the caller notes delivery once it has actually
// yielded the value — see WatchStats.NoteDelivered). ws may be nil.
func (s *Sequencer) WaitStats(ctx context.Context, seen uint64, ws *WatchStats) (uint64, error) {
	return WaitEpoch(ctx, s.Epoch, seen, ws, &s.gate)
}

// Fan returns the sequencer gate's wakeup tree, attaching one on first
// call (see Gate.Fan). Large watcher populations subscribe a leaf and
// park there instead of on the shared gate, bounding every wakeup
// cohort at watchers/leaves while the publish path keeps its flat-gate
// cost.
func (s *Sequencer) Fan(arity, depth int) *Tree { return s.gate.Fan(arity, depth) }
