// Watch-side backpressure telemetry: per-watcher counters recorded on
// the park/wake and delivery paths (never on a publish fast path), and
// a Tracker aggregating the live watcher population into one Stats
// node.
//
// # The backpressure ledger
//
// The notification layer conflates by design — a waiter that parks
// through three publications wakes once and reads the latest value.
// That is the right delivery semantics for a register, but it makes
// "is this watcher keeping up?" invisible without a ledger of what was
// published versus what was observed. WatchStats keeps that ledger in
// the watcher's own epoch frame:
//
//	published — highest publication epoch the watcher has seen evidence
//	            of (from its epoch snapshots; monotone)
//	observed  — the epoch frame of the last value it delivered
//	lag       — published - observed: publications the watcher knows
//	            about but has not delivered yet
//	conflated — publications skipped forever: epoch jumps >1 between
//	            consecutive deliveries
//	wakeups / spurious — park→wake edges, and wakes whose predicate
//	            was not yet satisfied
//	latency   — close-to-observe wakeup latency histogram
//
// The invariant observed ≤ published holds in every snapshot: delivery
// stores published before observed, and Lag loads observed before
// published, so a torn read can only under-report lag, never invert it.
package notify

import (
	"sort"
	"sync"

	"arcreg/internal/metrics"
	"arcreg/internal/obs"
	"arcreg/internal/pad"
	"arcreg/internal/trace"
)

// WatchStats is one watcher's backpressure ledger. Single-writer: the
// watcher goroutine records (via AwaitStats, NoteSeen, NoteDelivered);
// any goroutine reads via the accessors or Stats. The zero value is
// ready to use. Pad-bracketed so per-watcher blocks in an array or
// arena do not false-share.
type WatchStats struct {
	_         pad.CacheLinePad
	published obs.Cell
	observed  obs.Cell
	delivered obs.Cell
	conflated obs.Cell
	wakeups   obs.Cell
	spurious  obs.Cell
	latency   obs.Hist
	// ring is the watcher's flight-recorder lane (nil = untraced):
	// noteWake records a StageWake event into it on every waking park.
	// lastWake mirrors the stamp of that wake, plain — both fields are
	// owner-only (the watcher goroutine), set at wiring time / read to
	// span downstream stages (conflation decision, SSE flush).
	ring     *trace.Ring
	lastWake int64
	_        pad.CacheLinePad
}

// Trace attaches a flight-recorder ring to the watcher's ledger:
// subsequent waking parks record StageWake events spanned by the origin
// publish stamp. Wiring-time, watcher goroutine only; a nil ring keeps
// the watcher untraced (Ring.Record is nil-safe, so no branch is added
// to the park path either way).
func (ws *WatchStats) Trace(r *trace.Ring) { ws.ring = r }

// TraceRing returns the attached flight-recorder ring, nil if untraced.
// Watcher goroutine only.
func (ws *WatchStats) TraceRing() *trace.Ring { return ws.ring }

// LastWake returns the origin publish stamp of the watcher's most
// recent waking park, 0 if it has never been woken by a stamped wake.
// Watcher goroutine only — downstream stages (the conflation decision,
// the SSE frame flush) use it to join the same span.
func (ws *WatchStats) LastWake() int64 { return ws.lastWake }

// NoteSeen records evidence that publication epoch e exists (from an
// epoch snapshot taken before a read, or the epoch a Wait returned).
// Monotone: stale evidence is ignored. Watcher goroutine only.
func (ws *WatchStats) NoteSeen(e uint64) {
	if e > ws.published.Local() {
		ws.published.Store(e)
	}
}

// NoteDelivered records that the watcher delivered the value published
// at epoch e: one delivery, epoch-jump conflation accounting, and the
// observed/published frame advance. Watcher goroutine only.
//
// Conflation counts from the second delivery on — the first delivery
// of a watch is a baseline read, not a skipped publication. Store
// order (published, then observed) maintains observed ≤ published for
// concurrent readers.
func (ws *WatchStats) NoteDelivered(e uint64) {
	prev := ws.observed.Local()
	if e <= prev {
		// Same-epoch redelivery (e.g. a directory event without a value
		// change): count the delivery, leave the frame alone.
		ws.delivered.Add(1)
		return
	}
	if ws.delivered.Local() > 0 && e > prev+1 {
		ws.conflated.Add(e - prev - 1)
	}
	ws.delivered.Add(1)
	if e > ws.published.Local() {
		ws.published.Store(e)
	}
	ws.observed.Store(e)
}

// NoteObserved advances the observed frame to e without counting a
// delivery or conflation — the watcher probed and verified it is
// current as of epoch e (nothing to deliver). Keeps an up-to-date
// watcher's lag at zero when the epoch frame is wider than its
// subscription (e.g. a single-key watch framed by its shard's epoch).
// Watcher goroutine only.
func (ws *WatchStats) NoteObserved(e uint64) {
	if e <= ws.observed.Local() {
		return
	}
	if e > ws.published.Local() {
		ws.published.Store(e)
	}
	ws.observed.Store(e)
}

// Published returns the highest publication epoch the watcher has seen
// evidence of. Any goroutine.
func (ws *WatchStats) Published() uint64 { return ws.published.Load() }

// Observed returns the epoch frame of the last delivered value. Any
// goroutine.
func (ws *WatchStats) Observed() uint64 { return ws.observed.Load() }

// Delivered returns the number of values the watcher has delivered.
func (ws *WatchStats) Delivered() uint64 { return ws.delivered.Load() }

// Conflated returns the number of publications skipped forever by
// latest-value conflation.
func (ws *WatchStats) Conflated() uint64 { return ws.conflated.Load() }

// Wakeups returns the number of park→wake edges the watcher has taken.
func (ws *WatchStats) Wakeups() uint64 { return ws.wakeups.Load() }

// Spurious returns the number of wakeups whose predicate was not yet
// satisfied.
func (ws *WatchStats) Spurious() uint64 { return ws.spurious.Load() }

// Latency returns a point-in-time copy of the wakeup-latency histogram.
func (ws *WatchStats) Latency() metrics.Histogram { return ws.latency.Snapshot() }

// Lag returns published - observed: how many known publications the
// watcher has not delivered. Loads observed first so a concurrent
// delivery can only shrink the reported lag, never make it negative.
func (ws *WatchStats) Lag() uint64 {
	o := ws.observed.Load()
	p := ws.published.Load()
	if p <= o {
		return 0
	}
	return p - o
}

// Stats returns the watcher's ledger as a Stats-tree node.
func (ws *WatchStats) Stats() obs.Snapshot {
	sn := obs.Snapshot{Name: "watcher"}
	sn.Put("published", ws.published.Load())
	sn.Put("observed", ws.observed.Load())
	sn.Put("lag", ws.Lag())
	sn.Put("delivered", ws.delivered.Load())
	sn.Put("conflated", ws.conflated.Load())
	sn.Put("wakeups", ws.wakeups.Load())
	sn.Put("spurious", ws.spurious.Load())
	if h := ws.latency.Snapshot(); h.Count() > 0 {
		sn.PutHist("wakeup_latency", h)
	}
	return sn
}

// Tracker aggregates a population of watchers into one Stats node:
// live watchers attach on start and detach on exit (their totals fold
// into retired sums so counters never go backwards), and Stats walks
// the live set for population lag quantiles. Attach/Detach are
// mutex-guarded lifecycle edges — never on a read or publish path.
type Tracker struct {
	mu   sync.Mutex
	live map[*WatchStats]struct{}
	// Retired totals: the monotone residue of detached watchers.
	retiredWatchers  uint64
	retiredDelivered uint64
	retiredConflated uint64
	retiredWakeups   uint64
	retiredSpurious  uint64
	retiredLatency   metrics.Histogram
}

// Attach registers ws as a live watcher.
func (t *Tracker) Attach(ws *WatchStats) {
	t.mu.Lock()
	if t.live == nil {
		t.live = make(map[*WatchStats]struct{})
	}
	t.live[ws] = struct{}{}
	t.mu.Unlock()
}

// Detach removes ws from the live set, folding its final totals into
// the tracker's retired sums. A Detach without a prior Attach is a
// no-op.
func (t *Tracker) Detach(ws *WatchStats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.live[ws]; !ok {
		return
	}
	delete(t.live, ws)
	t.retiredWatchers++
	t.retiredDelivered += ws.Delivered()
	t.retiredConflated += ws.Conflated()
	t.retiredWakeups += ws.Wakeups()
	t.retiredSpurious += ws.Spurious()
	h := ws.Latency()
	t.retiredLatency.Merge(&h)
}

// Watchers returns the live watcher count.
func (t *Tracker) Watchers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.live)
}

// Each calls f for every live watcher under the tracker's lock; f must
// not call back into the tracker.
func (t *Tracker) Each(f func(*WatchStats)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for ws := range t.live {
		f(ws)
	}
}

// Stats aggregates the population: live count, retired count, total
// deliveries/conflations/wakeups/spurious across live and retired
// watchers, lag quantiles (p50/max) over the live set, and the merged
// wakeup-latency histogram.
func (t *Tracker) Stats() obs.Snapshot {
	t.mu.Lock()
	lags := make([]uint64, 0, len(t.live))
	var delivered, conflated, wakeups, spurious uint64
	latency := t.retiredLatency
	for ws := range t.live {
		lags = append(lags, ws.Lag())
		delivered += ws.Delivered()
		conflated += ws.Conflated()
		wakeups += ws.Wakeups()
		spurious += ws.Spurious()
		h := ws.Latency()
		latency.Merge(&h)
	}
	live := uint64(len(t.live))
	retired := t.retiredWatchers
	delivered += t.retiredDelivered
	conflated += t.retiredConflated
	wakeups += t.retiredWakeups
	spurious += t.retiredSpurious
	t.mu.Unlock()

	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	var lagP50, lagMax uint64
	if n := len(lags); n > 0 {
		lagP50 = lags[n/2]
		lagMax = lags[n-1]
	}

	sn := obs.Snapshot{Name: "watchers"}
	sn.Put("live", live)
	sn.Put("retired", retired)
	sn.Put("delivered", delivered)
	sn.Put("conflated", conflated)
	sn.Put("wakeups", wakeups)
	sn.Put("spurious", spurious)
	sn.Put("lag_p50", lagP50)
	sn.Put("lag_max", lagMax)
	if latency.Count() > 0 {
		sn.PutHist("wakeup_latency", latency)
	}
	return sn
}
