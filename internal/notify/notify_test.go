package notify

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWaitSeesPublish: a waiter parked on an old epoch is woken by
// Publish and observes the advanced epoch.
func TestWaitSeesPublish(t *testing.T) {
	var s Sequencer
	seen := s.Epoch()
	done := make(chan uint64, 1)
	go func() {
		e, err := s.Wait(context.Background(), seen)
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
		done <- e
	}()
	// Let the waiter park (best effort; the protocol is correct either
	// way — this just makes the test exercise the parked path often).
	for i := 0; i < 1000 && !s.Gate().Armed(); i++ {
		time.Sleep(10 * time.Microsecond)
	}
	s.Publish()
	select {
	case e := <-done:
		if e != 1 {
			t.Fatalf("woken at epoch %d, want 1", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after Publish")
	}
}

// TestWaitImmediateWhenStale: Wait on an already-stale epoch returns
// without parking.
func TestWaitImmediateWhenStale(t *testing.T) {
	var s Sequencer
	s.Publish()
	s.Publish()
	e, err := s.Wait(context.Background(), 0)
	if err != nil || e != 2 {
		t.Fatalf("Wait(stale) = (%d, %v), want (2, nil)", e, err)
	}
	if s.Gate().Armed() {
		t.Error("stale Wait left the gate armed")
	}
}

// TestWaitContextCancel: a parked waiter is released by context
// cancellation with ctx.Err().
func TestWaitContextCancel(t *testing.T) {
	var s Sequencer
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Wait(ctx, s.Epoch())
		done <- err
	}()
	for i := 0; i < 1000 && !s.Gate().Armed(); i++ {
		time.Sleep(10 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Wait returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
}

// TestPublishIdleNoAllocNoArm pins the writer-side fast-path claim: a
// Publish with no waiter parked allocates nothing and leaves the gate
// unarmed (the RMW-freeness is structural — Publish is a plain store
// plus gate loads — and is cross-checked at the register level by
// arc's TestWatchZeroRMWIdle).
func TestPublishIdleNoAllocNoArm(t *testing.T) {
	var s Sequencer
	allocs := testing.AllocsPerRun(1000, func() { s.Publish() })
	if allocs != 0 {
		t.Errorf("idle Publish allocates %.1f objects/op, want 0", allocs)
	}
	if s.Gate().Armed() {
		t.Error("idle Publish armed the gate")
	}
}

// TestNoLostWakeupStress hammers the arm/recheck/publish protocol: a
// publisher advances the epoch while a waiter repeatedly waits for the
// next epoch. Every epoch advance must be observed (at-least-once,
// conflated): the waiter's observed epoch must reach the final count.
func TestNoLostWakeupStress(t *testing.T) {
	const rounds = 20000
	var s Sequencer
	var observed atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		var seen uint64
		for seen < rounds {
			e, err := s.Wait(context.Background(), seen)
			if err != nil {
				t.Errorf("Wait: %v", err)
				return
			}
			if e < seen {
				t.Errorf("epoch regressed: %d after %d", e, seen)
				return
			}
			seen = e
			observed.Store(seen)
		}
	}()
	for i := 0; i < rounds; i++ {
		s.Publish()
		if i%64 == 0 {
			time.Sleep(time.Microsecond) // let the waiter park sometimes
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("waiter stuck at epoch %d of %d — lost wakeup", observed.Load(), rounds)
	}
}

// TestBroadcastWakesCohort: many waiters parked on one gate all wake on
// a single Publish.
func TestBroadcastWakesCohort(t *testing.T) {
	const waiters = 32
	var s Sequencer
	var wg sync.WaitGroup
	var woke atomic.Int64
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Wait(context.Background(), 0); err == nil {
				woke.Add(1)
			}
		}()
	}
	for i := 0; i < 1000 && !s.Gate().Armed(); i++ {
		time.Sleep(10 * time.Microsecond)
	}
	s.Publish()
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d waiters woke", woke.Load(), waiters)
	}
	if woke.Load() != waiters {
		t.Fatalf("%d/%d waiters woke", woke.Load(), waiters)
	}
}

// TestGateChainWakesParent: publishing through a chained sequencer
// wakes waiters parked on the parent gate — the (M,N)/map composition
// shape, with the waiter's predicate reading the component epochs.
func TestGateChainWakesParent(t *testing.T) {
	var parent Gate
	comps := make([]*Sequencer, 4)
	for i := range comps {
		comps[i] = new(Sequencer)
		comps[i].Chain(&parent)
	}
	sum := func() uint64 {
		var n uint64
		for _, c := range comps {
			n += c.Epoch()
		}
		return n
	}
	seen := sum()
	done := make(chan error, 1)
	go func() {
		done <- Await(context.Background(), func() bool { return sum() != seen }, &parent)
	}()
	for i := 0; i < 1000 && !parent.Armed(); i++ {
		time.Sleep(10 * time.Microsecond)
	}
	comps[2].Publish()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Await: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parent-gate waiter never woke on component publish")
	}
}

// TestAwaitTwoGates: a waiter parked on two gates wakes when either
// one's publisher fires — the keyed-watch shape (value gate + directory
// gate).
func TestAwaitTwoGates(t *testing.T) {
	for fire := 0; fire < 2; fire++ {
		var a, b Sequencer
		seqs := [2]*Sequencer{&a, &b}
		changed := func() bool { return a.Epoch()+b.Epoch() != 0 }
		done := make(chan error, 1)
		go func() {
			done <- Await(context.Background(), changed, a.Gate(), b.Gate())
		}()
		for i := 0; i < 1000 && !seqs[fire].Gate().Armed(); i++ {
			time.Sleep(10 * time.Microsecond)
		}
		seqs[fire].Publish()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Await (gate %d): %v", fire, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("two-gate waiter never woke on gate %d", fire)
		}
	}
}

// TestAwaitGateCountPanics pins the documented 1-or-2-gates contract.
func TestAwaitGateCountPanics(t *testing.T) {
	// Zero gates is the only illegal count: the wait could never wake.
	defer func() {
		if recover() == nil {
			t.Error("Await(0 gates) did not panic")
		}
	}()
	_ = Await(context.Background(), func() bool { return true })
}

// TestAwaitManyGates pins the N-gate contract (N ≥ 3 rides the
// reflect.Select path): a wake on ANY of the armed gates unparks the
// waiter, and a satisfied predicate returns without parking.
func TestAwaitManyGates(t *testing.T) {
	for n := 3; n <= 5; n++ {
		for wakeIdx := 0; wakeIdx < n; wakeIdx++ {
			gates := make([]*Gate, n)
			for i := range gates {
				gates[i] = new(Gate)
			}
			var fired atomic.Bool
			done := make(chan error, 1)
			go func() {
				done <- Await(context.Background(), fired.Load, gates...)
			}()
			// Wait for the waiter to actually park on all gates.
			deadline := time.Now().Add(2 * time.Second)
			for {
				armed := 0
				for _, g := range gates {
					if g.Armed() {
						armed++
					}
				}
				if armed == n {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("n=%d: waiter never armed all gates", n)
				}
				time.Sleep(time.Microsecond)
			}
			fired.Store(true)
			gates[wakeIdx].Wake()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("n=%d wake=%d: Await: %v", n, wakeIdx, err)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("n=%d wake=%d: Await never returned", n, wakeIdx)
			}
		}
	}
	// Immediate-true predicate returns without parking on any gate.
	gates := []*Gate{new(Gate), new(Gate), new(Gate)}
	if err := Await(context.Background(), func() bool { return true }, gates...); err != nil {
		t.Fatalf("Await immediate: %v", err)
	}
	for i, g := range gates {
		if g.Armed() {
			t.Errorf("gate %d left armed by immediate Await", i)
		}
	}
}

// BenchmarkPublishIdle measures the no-waiter publish path (the cost
// added to every register write): expect a handful of ns, 0 allocs.
func BenchmarkPublishIdle(b *testing.B) {
	var s Sequencer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Publish()
	}
}

// BenchmarkPublishChainedIdle is the same with a parent gate in the
// chain (the regmap shard shape): one extra load.
func BenchmarkPublishChainedIdle(b *testing.B) {
	var parent Gate
	var s Sequencer
	s.Chain(&parent)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Publish()
	}
}
