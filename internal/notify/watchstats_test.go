package notify

import (
	"context"
	"sync"
	"testing"
	"time"

	"arcreg/internal/fault"
)

func TestWatchStatsLedger(t *testing.T) {
	var ws WatchStats
	ws.NoteSeen(5)
	ws.NoteSeen(3) // stale evidence ignored
	if ws.Published() != 5 {
		t.Fatalf("published = %d, want 5", ws.Published())
	}
	if ws.Lag() != 5 {
		t.Fatalf("lag = %d, want 5", ws.Lag())
	}

	ws.NoteDelivered(5) // baseline delivery: no conflation
	if ws.Conflated() != 0 || ws.Delivered() != 1 || ws.Observed() != 5 || ws.Lag() != 0 {
		t.Fatalf("after baseline: conflated=%d delivered=%d observed=%d lag=%d",
			ws.Conflated(), ws.Delivered(), ws.Observed(), ws.Lag())
	}

	ws.NoteDelivered(6) // consecutive: nothing skipped
	if ws.Conflated() != 0 {
		t.Fatalf("consecutive delivery conflated = %d", ws.Conflated())
	}

	ws.NoteDelivered(10) // epochs 7,8,9 skipped forever
	if ws.Conflated() != 3 || ws.Observed() != 10 || ws.Published() != 10 {
		t.Fatalf("after jump: conflated=%d observed=%d published=%d",
			ws.Conflated(), ws.Observed(), ws.Published())
	}

	ws.NoteDelivered(10) // same-epoch redelivery: frame untouched
	if ws.Conflated() != 3 || ws.Delivered() != 4 || ws.Observed() != 10 {
		t.Fatalf("after redelivery: conflated=%d delivered=%d observed=%d",
			ws.Conflated(), ws.Delivered(), ws.Observed())
	}

	sn := ws.Stats()
	if v, _ := sn.Get("conflated"); v != 3 {
		t.Fatalf("stats conflated = %d", v)
	}
	if v, _ := sn.Get("lag"); v != 0 {
		t.Fatalf("stats lag = %d", v)
	}
}

// TestWatchStatsInvariantUnderConcurrentReads pins observed ≤ published
// in every concurrent snapshot while the owner delivers with jumps.
func TestWatchStatsInvariantUnderConcurrentReads(t *testing.T) {
	var ws WatchStats
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				o := ws.Observed()
				p := ws.Published()
				if o > p {
					t.Errorf("invariant violated: observed %d > published %d", o, p)
					return
				}
			}
		}()
	}
	for e := uint64(1); e <= 50_000; e += 3 {
		ws.NoteSeen(e + 2)
		ws.NoteDelivered(e)
	}
	close(done)
	wg.Wait()
}

func TestAwaitStatsCountsWakeupsAndLatency(t *testing.T) {
	var s Sequencer
	var ws WatchStats
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	seen := s.Epoch()
	parked := make(chan struct{})
	res := make(chan error, 1)
	go func() {
		close(parked)
		_, err := s.WaitStats(ctx, seen, &ws)
		res <- err
	}()
	<-parked
	// Give the waiter time to actually park so the publish takes the
	// armed slow path and stamps the gate.
	for !s.Gate().Armed() {
		time.Sleep(100 * time.Microsecond)
	}
	s.Publish()
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	if ws.Wakeups() != 1 {
		t.Fatalf("wakeups = %d, want 1", ws.Wakeups())
	}
	if ws.Published() != 1 {
		t.Fatalf("published = %d, want 1", ws.Published())
	}
	if h := ws.Latency(); h.Count() != 1 {
		t.Fatalf("latency samples = %d, want 1", h.Count())
	}
	if s.Wakes() != 1 {
		t.Fatalf("sequencer wakes = %d, want 1", s.Wakes())
	}
}

func TestTrackerAggregatesLiveAndRetired(t *testing.T) {
	var tr Tracker
	a, b := &WatchStats{}, &WatchStats{}
	tr.Attach(a)
	tr.Attach(b)
	if tr.Watchers() != 2 {
		t.Fatalf("watchers = %d", tr.Watchers())
	}

	a.NoteDelivered(1)
	a.NoteDelivered(5) // 3 conflated
	a.NoteSeen(9)      // lag 4
	b.NoteDelivered(1) // lag 0

	sn := tr.Stats()
	if v, _ := sn.Get("lag_max"); v != 4 {
		t.Fatalf("lag_max = %d, want 4", v)
	}
	if v, _ := sn.Get("conflated"); v != 3 {
		t.Fatalf("conflated = %d, want 3", v)
	}
	if v, _ := sn.Get("delivered"); v != 3 {
		t.Fatalf("delivered = %d, want 3", v)
	}

	tr.Detach(a)
	tr.Detach(a) // double detach is a no-op
	sn = tr.Stats()
	if v, _ := sn.Get("live"); v != 1 {
		t.Fatalf("live = %d, want 1", v)
	}
	if v, _ := sn.Get("retired"); v != 1 {
		t.Fatalf("retired = %d, want 1", v)
	}
	// Retired totals keep the detached watcher's counters.
	if v, _ := sn.Get("conflated"); v != 3 {
		t.Fatalf("conflated after detach = %d, want 3", v)
	}
	if v, _ := sn.Get("lag_max"); v != 0 {
		t.Fatalf("lag_max after detach = %d, want 0 (only b live)", v)
	}
}

// TestNotifyFaultPointsFire arms both notify points and checks they
// observe hits on a publish with a parked waiter — the coverage the
// watchstorm scenario depends on.
func TestNotifyFaultPointsFire(t *testing.T) {
	sched, err := fault.NewSchedule(1,
		fault.Rule{Point: FaultPublishEpoch, Kind: fault.Yield, Every: 1},
		fault.Rule{Point: FaultWakeSwap, Kind: fault.Yield, Every: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	sched.Arm()
	defer sched.Disarm()

	var s Sequencer
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() {
		for !s.Gate().Armed() {
			time.Sleep(100 * time.Microsecond)
		}
		s.Publish()
	}()
	if _, err := s.Wait(ctx, 0); err != nil {
		t.Fatal(err)
	}
}
