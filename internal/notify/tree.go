// Gate trees: hierarchical wakeup fan-out for large watcher counts.
//
// A single broadcast Gate is the right shape for tens of waiters — one
// swap, one close, the runtime readies the cohort. At 100k parked
// watchers that close is O(waiters) of goready work executed inline in
// the *publisher*, which breaks the whole point of the wait-free
// writer: publish cost must not scale with the audience.
//
// A Tree restores the bound. It attaches to an existing source Gate
// (the sequencer gate, a composite gate, the map-level gate — any gate,
// with all its Chain wiring untouched) and interposes a fixed-arity
// tree of interior gates between the source and the watchers:
//
//	source Gate ── root relay ── interior gates ── … ── leaf Gates
//	                 (goroutine)    (one relay each)        (watchers park here)
//
// Watchers subscribe to a leaf (round-robin assignment) and park on the
// leaf Gate with the ordinary Arm → recheck → block protocol. One relay
// goroutine per active interior node parks on its node's gate exactly
// like a waiter; when woken it wakes its children's gates and re-parks.
// The publisher's path is completely unchanged: it still pays one
// atomic load on the source gate when idle, and one swap + one close of
// a one-waiter channel (the root relay) when the tree is live. No
// goroutine — publisher or relay — ever closes more than arity
// channels per cascade, so a 100k-watcher wakeup storm is spread across
// O(leaves) helper closes instead of one inline O(100k) close.
//
// # No lost wakeups across levels
//
// The flat gate's correctness argument is a two-word SC crossing: the
// waiter arms then rechecks, the publisher stores then loads, so one
// side always observes the other. The tree preserves that argument
// *per level* by one ordering rule in the relay loop:
//
//	the relay RE-ARMS its own gate BEFORE waking its children.
//
// With that order, a relay's gate is unarmed only while a cascade
// through it is pending. Suppose a leaf watcher armed, rechecked, and
// missed epoch E (its recheck ran before E's store). The publisher's
// post-store load of the source gate then either (a) finds it armed —
// the re-arm already happened — and starts a fresh cascade that is
// ordered after the watcher's arm at every level, reaching its leaf; or
// (b) finds it unarmed, which means a previous cascade was swapped out
// but its propagation had not yet re-armed — and that pending cascade's
// downward wakes are themselves ordered after each child's earlier
// state, ultimately closing a leaf channel created no later than the
// watcher's arm. Either way the watcher's channel closes. The same
// argument applies inductively at each interior level (relays are
// themselves arm-then-recheck waiters whose "predicate" is the pending
// cascade). DESIGN.md §12 spells the interleavings out.
//
// # Relay lifecycle
//
// Relays exist only while someone is subscribed below them. Subscribe
// reference-counts the root→leaf-parent path and spawns a relay on a
// node's 0→1 edge; Close decrements and signals the relay to drain on
// the 1→0 edge. Subscribe does not return until every relay on its
// path has armed at least once (a ready handshake), so the leaf's
// wake linkage is complete before the watcher's first recheck. A
// draining relay that loses the race with a re-subscribe picks up the
// fresh quit channel and keeps running. On exit a relay disarms the
// interior gate it owns exclusively; the root relay never disarms the
// shared source gate (direct waiters may be parked in the same cohort),
// leaving at most one harmless extra swap+close to the next publish.
package notify

import (
	"sync"
	"sync/atomic"

	"arcreg/internal/obs"
	"arcreg/internal/trace"
)

// Tree topology bounds. Arity and depth are clamped-by-panic (a
// programming error, not a runtime condition) and the leaf count is
// capped so a typo cannot allocate millions of gates.
const (
	MinFanArity  = 2
	MaxFanArity  = 64
	MinFanDepth  = 1
	MaxFanDepth  = 4
	maxFanLeaves = 1 << 16
)

// Default topology for facade-level fans: 16² = 256 leaves keeps the
// largest single cohort at watchers/256 while the publisher's worst
// case stays one swap+close (the root relay).
const (
	DefaultFanArity = 16
	DefaultFanDepth = 2
)

// Tree is a hierarchical wakeup fan attached to a source Gate. Create
// with NewTree or, for the common lazily-attached case, Gate.Fan.
// All methods are safe for concurrent use.
type Tree struct {
	src   *Gate
	arity int
	depth int

	root       *treeNode
	nodes      []*treeNode // every interior node, root first (BFS-ish)
	leaves     []Gate
	leafParent []*treeNode

	// next drives round-robin leaf assignment; subs/relays are
	// multi-writer lifecycle counters (raw atomics, not obs.Cell —
	// Cells are single-writer).
	next   atomic.Uint64
	subs   atomic.Int64
	relays atomic.Int64

	// cascades counts relay fan-out steps (all levels); leafWakes
	// counts leaf broadcast channels closed by cascades. Multi-writer:
	// every relay advances them.
	cascades  atomic.Uint64
	leafWakes atomic.Uint64

	// rec is the tree's flight-recorder ring (nil = untraced). Only the
	// ROOT relay records into it — the root node's relay is the ring's
	// single writer (relay lifecycle hands the goroutine off under
	// n.mu, never overlapping), while interior relays stay silent so
	// one cascade yields one StageCascade event, not one per level.
	// Atomic pointer so Trace may attach after relays are live.
	rec atomic.Pointer[Ring]
}

// Ring aliases the flight-recorder ring type so callers wiring trees
// don't import trace alongside notify.
type Ring = trace.Ring

// treeNode is one interior node: a parking gate (unused by the root,
// which parks on the tree's source gate), the relay lifecycle state,
// and either children (upper levels) or a leaf range (last interior
// level).
type treeNode struct {
	t      *Tree
	level  int // 0 = root
	parent *treeNode
	gate   Gate

	children []*treeNode // nil at the leaf-parent level
	leafLo   int         // when children == nil: wakes leaves [leafLo, leafHi)
	leafHi   int

	mu      sync.Mutex
	refs    int
	running bool
	quit    chan struct{} // close to ask the relay to drain; replaced on re-up
	ready   chan struct{} // closed by the relay once its gate is armed
}

// NewTree builds a tree of the given arity and depth over src without
// spawning anything: relays start on first Subscribe, so an unused tree
// costs only its gates. Depth counts cascade levels — depth 1 is a
// root relay waking arity leaves, depth 2 adds one interior level
// (arity² leaves), and so on. Panics if the topology is out of bounds
// (arity 2–64, depth 1–4, at most 65536 leaves).
func NewTree(src *Gate, arity, depth int) *Tree {
	if src == nil {
		panic("notify: NewTree with nil source gate")
	}
	if arity < MinFanArity || arity > MaxFanArity {
		panic("notify: tree arity out of range")
	}
	if depth < MinFanDepth || depth > MaxFanDepth {
		panic("notify: tree depth out of range")
	}
	nleaves := 1
	for i := 0; i < depth; i++ {
		nleaves *= arity
		if nleaves > maxFanLeaves {
			panic("notify: tree leaf count exceeds cap")
		}
	}
	t := &Tree{
		src:        src,
		arity:      arity,
		depth:      depth,
		leaves:     make([]Gate, nleaves),
		leafParent: make([]*treeNode, nleaves),
	}
	t.root = t.build(nil, 0, 0, nleaves)
	return t
}

// build creates the interior node at the given level covering leaves
// [lo, lo+span), recursing until the leaf-parent level.
func (t *Tree) build(parent *treeNode, level, lo, span int) *treeNode {
	n := &treeNode{t: t, level: level, parent: parent}
	t.nodes = append(t.nodes, n)
	if level == t.depth-1 {
		n.leafLo, n.leafHi = lo, lo+span
		for i := lo; i < lo+span; i++ {
			t.leafParent[i] = n
		}
		return n
	}
	childSpan := span / t.arity
	n.children = make([]*treeNode, t.arity)
	for c := 0; c < t.arity; c++ {
		n.children[c] = t.build(n, level+1, lo+c*childSpan, childSpan)
	}
	return n
}

// Arity returns the tree's fan-out per level.
func (t *Tree) Arity() int { return t.arity }

// Depth returns the number of cascade levels.
func (t *Tree) Depth() int { return t.depth }

// Leaves returns the number of leaf gates (arity^depth).
func (t *Tree) Leaves() int { return len(t.leaves) }

// Subs returns the number of live subscriptions.
func (t *Tree) Subs() int64 { return t.subs.Load() }

// Relays returns the number of relay goroutines currently running —
// the goroutine-hygiene number leak tests pin to zero after churn.
func (t *Tree) Relays() int64 { return t.relays.Load() }

// Sub is one watcher's leaf subscription. Park on Gate() with Await /
// AwaitStats / WaitEpoch exactly as on a flat gate; Close when the
// watch session ends so unused relays drain. A Sub is owned by one
// goroutine; Close is idempotent but not concurrent-safe.
type Sub struct {
	t      *Tree
	leaf   *Gate
	path   [MaxFanDepth]*treeNode // root-first, path[0..pathLen)
	pathn  int
	closed bool
}

// Subscribe assigns the caller a leaf (round-robin, so cohort sizes
// stay balanced regardless of caller identity), spins up any missing
// relays on the root→leaf path, and returns once the path is fully
// armed — from that point a publish on the source gate is guaranteed
// to cascade to this leaf.
func (t *Tree) Subscribe() *Sub {
	li := int(t.next.Add(1)-1) % len(t.leaves)
	s := &Sub{t: t, leaf: &t.leaves[li]}
	for n := t.leafParent[li]; n != nil; n = n.parent {
		s.pathn++
		s.path[t.depth-s.pathn] = n // parent walk is leaf→root; store reversed
	}
	for i := 0; i < s.pathn; i++ {
		t.ref(s.path[i])
	}
	t.subs.Add(1)
	return s
}

// Gate returns the leaf gate this subscription parks on.
func (s *Sub) Gate() *Gate { return s.leaf }

// Close releases the subscription's references leaf-parent→root so
// relays with no remaining subscribers drain. Idempotent.
func (s *Sub) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for i := s.pathn - 1; i >= 0; i-- {
		s.t.unref(s.path[i])
	}
	s.t.subs.Add(-1)
}

// ref takes one reference on n, spawning its relay on the 0→1 edge and
// blocking until the relay's gate is armed. Every caller waits on the
// ready handshake — not just the spawner — so no subscriber can reach
// its leaf recheck while the path above it is still dark.
func (t *Tree) ref(n *treeNode) {
	n.mu.Lock()
	n.refs++
	if !n.running {
		n.running = true
		n.quit = make(chan struct{})
		n.ready = make(chan struct{})
		t.relays.Add(1)
		go t.relay(n, n.quit, n.ready)
	}
	// A draining relay (refs hit 0, quit closed, not yet exited) is
	// revived by the fresh quit channel the 0→1 edge above installed;
	// it re-reads n.quit under mu before exiting. Its gate stayed armed
	// throughout, so ready (closed since first arm) remains truthful.
	ready := n.ready
	n.mu.Unlock()
	<-ready
}

// unref drops one reference; on the 1→0 edge it closes the relay's
// quit channel. The relay itself decides between exit and revival
// under n.mu, so an unref/ref race settles on whichever edge ran last.
func (t *Tree) unref(n *treeNode) {
	n.mu.Lock()
	if n.refs--; n.refs == 0 && n.running {
		close(n.quit)
		// Replace the closed channel so a later 0→1 edge that finds
		// running==true (relay not yet exited) installs a fresh one —
		// see ref. Leaving the closed channel here would make that
		// revival signal a second drain immediately.
		n.quit = make(chan struct{})
	}
	n.mu.Unlock()
}

// relay is the per-node helper loop: park on the node's gate (the
// source gate for the root), and on every wake RE-ARM FIRST, then fan
// the wake out to the children. The re-arm-before-propagate order is
// the tree's correctness invariant — see the package comment and
// DESIGN.md §12. quit asks the relay to drain; it re-checks refs under
// the node lock so a concurrent re-subscribe revives it instead.
func (t *Tree) relay(n *treeNode, quit, ready chan struct{}) {
	park := &n.gate
	if n == t.root {
		park = t.src
	}
	ch := park.Arm()
	close(ready)
	for {
		select {
		case <-ch:
			// Re-arm before propagating: from here to the last child
			// wake below, this node's "cascade pending" state stands in
			// for its armed gate in the per-level SC-crossing argument.
			ch = park.Arm()
			t.fanOut(n, park.WakeStamp())
		case <-quit:
			n.mu.Lock()
			if n.refs > 0 {
				quit = n.quit // revived: pick up the fresh drain signal
				n.mu.Unlock()
				continue
			}
			if n != t.root {
				// Disarm the interior gate this relay owns exclusively
				// so the parent's next cascade skips it (one load). The
				// root must NOT disarm the source gate: direct waiters
				// may share its cohort channel.
				park.disarm(ch)
			}
			n.running = false
			n.mu.Unlock()
			t.relays.Add(-1)
			return
		}
	}
}

// Trace attaches a flight-recorder ring: each root-relay cascade then
// records one StageCascade event spanned by the origin publish stamp.
// Attach once, before or after relays start; nil detaches.
func (t *Tree) Trace(r *Ring) { t.rec.Store(r) }

// Traced reports whether a flight-recorder ring is attached — the
// attach-once probe for wiring layers that allocate rings lazily.
func (t *Tree) Traced() bool { return t.rec.Load() != nil }

// fanOut wakes n's children — interior gates on upper levels, the leaf
// range on the last level — propagating the origin publish stamp so
// leaf watchers measure full publish→observe latency across the
// cascade, not just the last hop.
func (t *Tree) fanOut(n *treeNode, stamp int64) {
	faultTreeWake.Hit()
	t.cascades.Add(1)
	if n == t.root && stamp != 0 {
		// One event per cascade, from the root relay only (the ring's
		// single writer); Aux carries the tree shape for the timeline.
		t.rec.Load().Record(trace.StageCascade, uint32(t.depth), stamp, uint64(len(t.leaves)))
	}
	if n.children != nil {
		for _, c := range n.children {
			c.gate.WakeAt(stamp)
		}
		return
	}
	woke := 0
	for i := n.leafLo; i < n.leafHi; i++ {
		woke += t.leaves[i].WakeAt(stamp)
	}
	if woke > 0 {
		t.leafWakes.Add(uint64(woke))
	}
}

// Cascades reports how many relay fan-out steps have run (all levels).
func (t *Tree) Cascades() uint64 { return t.cascades.Load() }

// LeafWakes reports how many leaf broadcast channels cascades closed.
func (t *Tree) LeafWakes() uint64 { return t.leafWakes.Load() }

// Stats returns the tree's shape and live counters as a Stats-tree
// node, with one child per level reporting node and running-relay
// counts. Safe from any goroutine; relay counts are immediately stale.
func (t *Tree) Stats() obs.Snapshot {
	sn := obs.Snapshot{Name: "fan"}
	sn.Put("arity", uint64(t.arity))
	sn.Put("depth", uint64(t.depth))
	sn.Put("leaves", uint64(len(t.leaves)))
	sn.Put("subs", uint64(max64(t.subs.Load(), 0)))
	sn.Put("relays", uint64(max64(t.relays.Load(), 0)))
	sn.Put("cascades", t.cascades.Load())
	sn.Put("leaf_wakes", t.leafWakes.Load())
	armedLeaves := uint64(0)
	for i := range t.leaves {
		if t.leaves[i].Armed() {
			armedLeaves++
		}
	}
	sn.Put("leaves_armed", armedLeaves)
	levels := make([]struct{ nodes, running uint64 }, t.depth)
	for _, n := range t.nodes {
		levels[n.level].nodes++
		n.mu.Lock()
		if n.running {
			levels[n.level].running++
		}
		n.mu.Unlock()
	}
	for lvl, c := range levels {
		child := obs.Snapshot{Name: "level" + itoa(lvl)}
		child.Put("nodes", c.nodes)
		child.Put("relays_running", c.running)
		sn.Children = append(sn.Children, child)
	}
	return sn
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// itoa formats a small non-negative int without strconv (levels ≤ 4).
func itoa(n int) string {
	if n < 10 {
		return string([]byte{'0' + byte(n)})
	}
	return string([]byte{'0' + byte(n/10), '0' + byte(n%10)})
}
