package notify

import "arcreg/internal/fault"

// Named fault-injection points in the publication-notification
// protocol. Both sit on the two-word SC crossing the lost-wakeup
// argument depends on (epoch store → gate load vs gate CAS → epoch
// load), so stalling them holds the crossing open and drives the
// wakeup storms the chaos scenarios assert backpressure counters
// against.
//
// Neither point is CanCrash: Publish and Wake run on the register's
// single publisher goroutine inside compositions (regmap holds its
// publication window open around them), so an unwind here would wedge
// collective protocols that a recover cannot repair.
const (
	// FaultPublishEpoch fires between the sequencer's epoch store and
	// its gate wake — the publisher's half of the crossing. A stall
	// here widens the window where waiters arm against an
	// already-advanced epoch, forcing the recheck path.
	FaultPublishEpoch = "notify/publish-epoch"
	// FaultWakeSwap fires inside Gate.Wake after the armed check and
	// before the stamp/swap/close — the broadcast edge. A stall here
	// delays the close while more waiters pile onto the armed channel,
	// turning the eventual close into a thundering wake.
	FaultWakeSwap = "notify/wake-swap"
	// FaultTreeWake fires at the top of a gate-tree relay's fan-out
	// step, after the relay re-armed its own gate and before it wakes
	// any child. A stall here holds a cascade open mid-tree — exactly
	// the "pending cascade" window the per-level no-lost-wakeup
	// argument (DESIGN.md §12) reasons about — while publishes and
	// subscriber churn keep arriving above and below it.
	FaultTreeWake = "notify/tree-wake"
)

var (
	faultPublishEpoch = fault.NewPoint(FaultPublishEpoch, fault.CanYield|fault.CanStall)
	faultWakeSwap     = fault.NewPoint(FaultWakeSwap, fault.CanYield|fault.CanStall)
	faultTreeWake     = fault.NewPoint(FaultTreeWake, fault.CanYield|fault.CanStall)
)
