package lockreg

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"arcreg/internal/membuf"
	"arcreg/internal/register"
)

func newReg(t testing.TB, readers, size int) *Register {
	t.Helper()
	r, err := New(register.Config{MaxReaders: readers, MaxValueSize: size})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestReadReturnsLastWrite(t *testing.T) {
	r := newReg(t, 2, 64)
	rd, _ := r.NewReaderHandle()
	dst := make([]byte, 64)
	for i := 0; i < 100; i++ {
		val := []byte(fmt.Sprintf("v%03d", i))
		if err := r.Write(val); err != nil {
			t.Fatal(err)
		}
		n, err := rd.Read(dst)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst[:n], val) {
			t.Fatalf("read %q want %q", dst[:n], val)
		}
	}
}

func TestInitialValue(t *testing.T) {
	r, err := New(register.Config{MaxReaders: 1, MaxValueSize: 16, Initial: []byte("seed")})
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := r.NewReaderHandle()
	v, err := rd.View()
	if err != nil || string(v) != "seed" {
		t.Fatalf("View: %q, %v", v, err)
	}
}

// A live view holds the read lock: the writer must block until the view is
// released — the non-wait-freedom the paper contrasts ARC against.
func TestLiveViewBlocksWriter(t *testing.T) {
	r := newReg(t, 1, 16)
	rd, _ := r.NewReaderHandle()
	if _, err := rd.View(); err != nil {
		t.Fatal(err)
	}
	wrote := make(chan struct{})
	go func() {
		if err := r.Write([]byte("blocked")); err != nil {
			t.Error(err)
		}
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("write completed while a view pinned the read lock")
	case <-time.After(100 * time.Millisecond):
		// expected: writer is spinning
	}
	// Releasing the view (by taking the next one) unblocks the writer.
	if _, err := rd.View(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wrote:
	case <-time.After(5 * time.Second):
		t.Fatal("writer still blocked after view release")
	}
	rd.Close()
}

func TestViewReleasedOnClose(t *testing.T) {
	r := newReg(t, 1, 16)
	rd, _ := r.NewReaderHandle()
	if _, err := rd.View(); err != nil {
		t.Fatal(err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		r.Write([]byte("after close"))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release the pinned read lock")
	}
}

func TestWriteTooLarge(t *testing.T) {
	r := newReg(t, 1, 4)
	if err := r.Write(make([]byte, 5)); !errors.Is(err, register.ErrValueTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestBufferTooSmall(t *testing.T) {
	r := newReg(t, 1, 32)
	rd, _ := r.NewReaderHandle()
	r.Write([]byte("0123456789"))
	n, err := rd.Read(make([]byte, 3))
	if !errors.Is(err, register.ErrBufferTooSmall) || n != 10 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	// The failed read must not leave the lock held.
	done := make(chan struct{})
	go func() {
		r.Write([]byte("x"))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("lock leaked by failed Read")
	}
}

func TestReaderCapacityAndClose(t *testing.T) {
	r := newReg(t, 2, 8)
	a, _ := r.NewReader()
	if _, err := r.NewReader(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewReader(); !errors.Is(err, register.ErrTooManyReaders) {
		t.Fatalf("third handle: %v", err)
	}
	a.Close()
	if _, err := r.NewReader(); err != nil {
		t.Fatalf("after close: %v", err)
	}
	if r.LiveReaders() != 2 {
		t.Fatalf("live = %d", r.LiveReaders())
	}
}

func TestClosedReaderErrors(t *testing.T) {
	r := newReg(t, 1, 8)
	rd, _ := r.NewReaderHandle()
	rd.Close()
	if _, err := rd.View(); !errors.Is(err, register.ErrReaderClosed) {
		t.Fatalf("View: %v", err)
	}
	if _, err := rd.Read(make([]byte, 8)); !errors.Is(err, register.ErrReaderClosed) {
		t.Fatalf("Read: %v", err)
	}
	if err := rd.Close(); !errors.Is(err, register.ErrReaderClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestRMWAccounting(t *testing.T) {
	r := newReg(t, 1, 8)
	rd, _ := r.NewReaderHandle()
	r.Write([]byte("a"))
	dst := make([]byte, 8)
	rd.Read(dst)
	if st := rd.ReadStats(); st.RMW == 0 {
		t.Fatal("lock reads must cost RMW instructions")
	}
	if ws := r.WriteStats(); ws.RMW == 0 {
		t.Fatal("lock writes must cost RMW instructions")
	}
}

func TestSequentialModelQuick(t *testing.T) {
	f := func(ops []byte) bool {
		r, err := New(register.Config{MaxReaders: 1, MaxValueSize: 64})
		if err != nil {
			return false
		}
		rd, err := r.NewReaderHandle()
		if err != nil {
			return false
		}
		model := []byte{0}
		dst := make([]byte, 64)
		for _, op := range ops {
			if op%2 == 0 {
				val := bytes.Repeat([]byte{op}, 1+int(op)%32)
				if r.Write(val) != nil {
					return false
				}
				model = val
			} else {
				n, err := rd.Read(dst)
				if err != nil || !bytes.Equal(dst[:n], model) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentIntegrity(t *testing.T) {
	const (
		readers = 4
		writes  = 1500
		size    = 256
	)
	r := newReg(t, readers, size)
	seed := make([]byte, size)
	membuf.Encode(seed, 0)
	if err := r.Write(seed); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		rd, err := r.NewReaderHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]byte, size)
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				n, err := rd.Read(dst)
				if err != nil {
					errs <- err
					return
				}
				ver, err := membuf.Verify(dst[:n])
				if err != nil {
					errs <- fmt.Errorf("torn read under lock: %w", err)
					return
				}
				if ver < last {
					errs <- fmt.Errorf("version regressed: %d after %d", ver, last)
					return
				}
				last = ver
			}
		}()
	}
	buf := make([]byte, size)
	for i := uint64(1); i <= writes; i++ {
		membuf.Encode(buf, i)
		if err := r.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestName(t *testing.T) {
	r := newReg(t, 1, 8)
	if r.Name() != "lock" {
		t.Fatalf("Name() = %q", r.Name())
	}
	if r.Writer() == nil || r.MaxReaders() != 1 || r.MaxValueSize() != 8 {
		t.Fatal("accessors wrong")
	}
}
