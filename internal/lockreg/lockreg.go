// Package lockreg implements the lock-based multi-word (1,N) register used
// as the ARC paper's non-wait-free comparator (§5). A single value buffer
// is guarded by a reader/writer spinlock built on RMW instructions
// (internal/spin); reads share the lock, writes take it exclusively.
//
// The register is linearizable but NOT wait-free: a reader preempted while
// holding the lock stalls the writer (and, through writer preference,
// subsequent readers), and a preempted writer stalls everyone. That
// sensitivity to lock-holder preemption is what the paper's virtualized
// (Fig. 2) and oversubscribed (Fig. 3) experiments exhibit.
//
// To let the same benchmarks drive all algorithms, the reader supports the
// View protocol with pinning semantics matching ARC and RF: View acquires
// the read lock and holds it until the handle's next View, Read or Close.
// The view is thus a true zero-copy window — at the price that holding it
// blocks the writer, which is precisely the algorithmic difference the
// paper measures.
package lockreg

import (
	"fmt"
	"sync"

	"arcreg/internal/membuf"
	"arcreg/internal/register"
	"arcreg/internal/spin"
)

// MaxReaders is administrative; the lock itself has no reader limit.
const MaxReaders = 1 << 20

// Register is the lock-based (1,N) register.
type Register struct {
	lock spin.RWLock

	// buf and size are guarded by lock.
	buf  []byte
	size int

	maxReaders   int
	maxValueSize int

	wstats register.WriteStats

	mu          sync.Mutex
	liveReaders int
}

var (
	_ register.Register   = (*Register)(nil)
	_ register.Writer     = (*Register)(nil)
	_ register.StatWriter = (*Register)(nil)
	_ register.Reader     = (*Reader)(nil)
	_ register.Viewer     = (*Reader)(nil)
	_ register.StatReader = (*Reader)(nil)
)

// New constructs a lock-based register.
func New(cfg register.Config) (*Register, error) {
	if err := cfg.Validate(MaxReaders); err != nil {
		return nil, err
	}
	initial := cfg.InitialOrDefault()
	if cfg.MaxValueSize < len(initial) {
		cfg.MaxValueSize = len(initial)
	}
	r := &Register{
		buf:          membuf.Aligned(cfg.MaxValueSize),
		maxReaders:   cfg.MaxReaders,
		maxValueSize: cfg.MaxValueSize,
	}
	r.size = copy(r.buf, initial)
	return r, nil
}

// Name implements register.Register.
func (r *Register) Name() string { return "lock" }

// Caps implements register.CapabilityReporter: the lock register views
// without copying (a live view holds the read lock) but is not
// wait-free in either direction — the comparator's defining weakness.
func (r *Register) Caps() register.Caps {
	return register.Caps{
		ZeroCopyView: true,
		ReadStats:    true,
		WriteStats:   true,
	}
}

// MaxReaders implements register.Register.
func (r *Register) MaxReaders() int { return r.maxReaders }

// MaxValueSize implements register.Register.
func (r *Register) MaxValueSize() int { return r.maxValueSize }

// Writer implements register.Register.
func (r *Register) Writer() register.Writer { return r }

// WriteStats implements register.StatWriter.
func (r *Register) WriteStats() register.WriteStats { return r.wstats }

// Write stores a new value under the exclusive lock. Blocking: it spins
// until every reader view is released.
func (r *Register) Write(p []byte) error {
	if len(p) > r.maxValueSize {
		return fmt.Errorf("%w: %d > %d", register.ErrValueTooLarge, len(p), r.maxValueSize)
	}
	spins := r.lock.Lock()
	r.size = copy(r.buf, p)
	r.lock.Unlock()
	r.wstats.LockSpins += spins
	r.wstats.RMW += 2 // acquire CAS + release CAS (uncontended floor)
	r.wstats.Ops++
	return nil
}

// Reader is a per-goroutine read endpoint.
type Reader struct {
	reg    *Register
	pinned bool // this handle currently holds the read lock (live View)
	closed bool
	stats  register.ReadStats
}

// NewReader implements register.Register.
func (r *Register) NewReader() (register.Reader, error) {
	rd, err := r.newReader()
	if err != nil {
		return nil, err
	}
	return rd, nil
}

// NewReaderHandle is the concrete-typed variant of NewReader.
func (r *Register) NewReaderHandle() (*Reader, error) { return r.newReader() }

func (r *Register) newReader() (*Reader, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.liveReaders >= r.maxReaders {
		return nil, register.ErrTooManyReaders
	}
	r.liveReaders++
	return &Reader{reg: r}, nil
}

// LiveReaders reports open handles.
func (r *Register) LiveReaders() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.liveReaders
}

// ReadStats implements register.StatReader.
func (rd *Reader) ReadStats() register.ReadStats { return rd.stats }

// unpin releases a held read lock, if any.
func (rd *Reader) unpin() {
	if rd.pinned {
		rd.reg.lock.RUnlock()
		rd.pinned = false
	}
}

// View returns the register buffer under the read lock, holding the lock
// until this handle's next View, Read or Close. While any view is live the
// writer blocks — the defining cost of the lock-based design.
func (rd *Reader) View() ([]byte, error) {
	if rd.closed {
		return nil, register.ErrReaderClosed
	}
	rd.unpin()
	spins := rd.reg.lock.RLock()
	rd.pinned = true
	rd.stats.Retries += spins - 1
	rd.stats.RMW++ // the acquisition CAS
	rd.stats.Ops++
	return rd.reg.buf[:rd.reg.size], nil
}

// Read copies the freshest value into dst under the read lock, releasing
// it before returning.
func (rd *Reader) Read(dst []byte) (int, error) {
	if rd.closed {
		return 0, register.ErrReaderClosed
	}
	rd.unpin()
	spins := rd.reg.lock.RLock()
	size := rd.reg.size
	if len(dst) < size {
		rd.reg.lock.RUnlock()
		return size, register.ErrBufferTooSmall
	}
	n := copy(dst, rd.reg.buf[:size])
	rd.reg.lock.RUnlock()
	rd.stats.Retries += spins - 1
	rd.stats.RMW += 2 // acquire + release
	rd.stats.Ops++
	return n, nil
}

// Close releases any held view and the handle.
func (rd *Reader) Close() error {
	if rd.closed {
		return register.ErrReaderClosed
	}
	rd.unpin()
	rd.closed = true
	rd.reg.mu.Lock()
	rd.reg.liveReaders--
	rd.reg.mu.Unlock()
	return nil
}
