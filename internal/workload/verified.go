package workload

import (
	"arcreg/internal/history"
	"arcreg/internal/membuf"
	"arcreg/internal/register"
)

// VerifiedReader performs reads that are timed, integrity-checked and
// recorded into a history log — the correctness-harness counterpart of
// ReaderWork. Each completed operation contributes one Op that the
// history checker later judges against the paper's atomicity criterion.
type VerifiedReader struct {
	reader  register.Reader
	viewer  register.Viewer
	scratch []byte
	proc    int
	clock   *history.Clock
	log     *history.Log
}

// NewVerifiedReader builds a verified read body for process id proc.
func NewVerifiedReader(rd register.Reader, proc int, maxSize int, clock *history.Clock, log *history.Log) *VerifiedReader {
	v := &VerifiedReader{reader: rd, proc: proc, clock: clock, log: log}
	if vw, ok := rd.(register.Viewer); ok {
		v.viewer = vw
	} else {
		v.scratch = make([]byte, maxSize)
	}
	return v
}

// Do performs one verified read. Protocol errors are returned; integrity
// failures are recorded as torn reads for the checker to report.
func (v *VerifiedReader) Do() error {
	start := v.clock.Now()
	var (
		val []byte
		err error
	)
	if v.viewer != nil {
		val, err = v.viewer.View()
	} else {
		var n int
		n, err = v.reader.Read(v.scratch)
		val = v.scratch[:max(n, 0)]
	}
	end := v.clock.Now()
	if err != nil {
		return err
	}
	version, verr := membuf.Verify(val)
	v.log.RecordRead(v.proc, start, end, version, verr != nil)
	return nil
}

// VerifiedWriter performs timed, version-stamped writes recorded into a
// history log.
type VerifiedWriter struct {
	writer  register.Writer
	buf     []byte
	version uint64
	clock   *history.Clock
	log     *history.Log
}

// NewVerifiedWriter builds the verified write body. Writes carry versions
// 1, 2, 3, …; version 0 is reserved for the initial value.
func NewVerifiedWriter(wr register.Writer, size int, clock *history.Clock, log *history.Log) *VerifiedWriter {
	if size < membuf.MinPayload {
		size = membuf.MinPayload
	}
	return &VerifiedWriter{writer: wr, buf: make([]byte, size), clock: clock, log: log}
}

// SeedValue returns a version-0 payload of the writer's size, suitable as
// the register's initial value so that the very first reads verify.
func (v *VerifiedWriter) SeedValue() []byte {
	seed := make([]byte, len(v.buf))
	membuf.Encode(seed, 0)
	return seed
}

// Do performs one verified write.
func (v *VerifiedWriter) Do() error {
	v.version++
	membuf.Encode(v.buf, v.version)
	start := v.clock.Now()
	err := v.writer.Write(v.buf)
	end := v.clock.Now()
	if err != nil {
		v.version--
		return err
	}
	v.log.RecordWrite(-1, start, end, v.version)
	return nil
}

// Versions reports how many writes completed.
func (v *VerifiedWriter) Versions() uint64 { return v.version }
