package workload

import (
	"testing"

	"arcreg/internal/arc"
	"arcreg/internal/history"
	"arcreg/internal/membuf"
	"arcreg/internal/peterson"
	"arcreg/internal/register"
)

func newARC(t *testing.T, readers, size int) *arc.Register {
	t.Helper()
	seed := make([]byte, size)
	membuf.Encode(seed, 0)
	r, err := arc.New(register.Config{MaxReaders: readers, MaxValueSize: size, Initial: seed}, arc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestModeParse(t *testing.T) {
	if m, err := ParseMode("dummy"); err != nil || m != Dummy {
		t.Fatalf("dummy: %v %v", m, err)
	}
	if m, err := ParseMode("processing"); err != nil || m != Processing {
		t.Fatalf("processing: %v %v", m, err)
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if Dummy.String() != "dummy" || Processing.String() != "processing" {
		t.Fatal("mode strings wrong")
	}
}

func TestReaderWorkUsesViewForViewers(t *testing.T) {
	r := newARC(t, 1, 64)
	rd, _ := r.NewReader()
	w := NewReaderWork(rd, Dummy, 64)
	if w.viewer == nil {
		t.Fatal("ARC reader not recognized as a Viewer")
	}
	if w.scratch != nil {
		t.Fatal("viewer path should not allocate scratch")
	}
	for i := 0; i < 10; i++ {
		if err := w.Do(); err != nil {
			t.Fatal(err)
		}
	}
	if w.Sink() == 0 {
		t.Fatal("dummy read left no trace in the sink")
	}
}

func TestReaderWorkCopiesForNonViewers(t *testing.T) {
	p, err := peterson.New(register.Config{MaxReaders: 1, MaxValueSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := p.NewReader()
	w := NewReaderWork(rd, Dummy, 64)
	if w.viewer != nil {
		t.Fatal("Peterson reader wrongly treated as Viewer")
	}
	if len(w.scratch) != 64 {
		t.Fatalf("scratch size %d", len(w.scratch))
	}
	if err := w.Do(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessingModeScans(t *testing.T) {
	r := newARC(t, 1, 256)
	wr := NewWriterWork(r.Writer(), Processing, 256)
	rd, _ := r.NewReader()
	w := NewReaderWork(rd, Processing, 256)
	if err := wr.Do(); err != nil {
		t.Fatal(err)
	}
	if err := w.Do(); err != nil {
		t.Fatal(err)
	}
	s1 := w.Sink()
	if s1 == 0 {
		t.Fatal("processing read produced no checksum")
	}
	if err := wr.Do(); err != nil { // new version, new content
		t.Fatal(err)
	}
	if err := w.Do(); err != nil {
		t.Fatal(err)
	}
	if w.Sink() == s1*2 {
		t.Fatal("second scan identical to first; content not regenerated")
	}
	if wr.Version() != 2 {
		t.Fatalf("writer versions = %d", wr.Version())
	}
}

func TestDummyWriterConstantContent(t *testing.T) {
	r := newARC(t, 1, 64)
	wr := NewWriterWork(r.Writer(), Dummy, 64)
	rd, err := r.NewReaderHandle()
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.Do(); err != nil {
		t.Fatal(err)
	}
	v1, _ := rd.View()
	first := append([]byte(nil), v1...)
	if err := wr.Do(); err != nil {
		t.Fatal(err)
	}
	v2, _ := rd.View()
	if string(first) != string(v2) {
		t.Fatal("dummy writes changed content between ops")
	}
	if wr.Version() != 0 {
		t.Fatal("dummy mode should not bump versions")
	}
}

func TestWriterWorkMinimumSize(t *testing.T) {
	r := newARC(t, 1, 64)
	w := NewWriterWork(r.Writer(), Dummy, 1) // below codec minimum
	if len(w.buf) != membuf.MinPayload {
		t.Fatalf("buffer size %d, want %d", len(w.buf), membuf.MinPayload)
	}
	if err := w.Do(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifiedRoundTrip(t *testing.T) {
	const size = 128
	r := newARC(t, 2, size)
	clock := history.NewClock()
	wlog := history.NewLog(64)
	rlog := history.NewLog(64)

	vw := NewVerifiedWriter(r.Writer(), size, clock, wlog)
	rd, _ := r.NewReader()
	vr := NewVerifiedReader(rd, 0, size, clock, rlog)

	for i := 0; i < 20; i++ {
		if err := vw.Do(); err != nil {
			t.Fatal(err)
		}
		if err := vr.Do(); err != nil {
			t.Fatal(err)
		}
	}
	if vw.Versions() != 20 {
		t.Fatalf("versions = %d", vw.Versions())
	}
	if wlog.Len() != 20 || rlog.Len() != 20 {
		t.Fatalf("logs: %d writes, %d reads", wlog.Len(), rlog.Len())
	}
	res := history.Merge(wlog, rlog).Check()
	if !res.Ok() {
		for _, v := range res.Violations {
			t.Error(v)
		}
	}
}

func TestVerifiedSeedValueVerifies(t *testing.T) {
	r := newARC(t, 1, 64)
	clock := history.NewClock()
	vw := NewVerifiedWriter(r.Writer(), 64, clock, history.NewLog(1))
	seed := vw.SeedValue()
	if v, err := membuf.Verify(seed); err != nil || v != 0 {
		t.Fatalf("seed: version=%d err=%v", v, err)
	}
}

func TestVerifiedReaderNonViewer(t *testing.T) {
	const size = 64
	p, err := peterson.New(register.Config{MaxReaders: 1, MaxValueSize: size})
	if err != nil {
		t.Fatal(err)
	}
	clock := history.NewClock()
	wlog, rlog := history.NewLog(8), history.NewLog(8)
	vw := NewVerifiedWriter(p.Writer(), size, clock, wlog)
	// Seed the register so the first read verifies.
	if err := p.Write(vw.SeedValue()); err != nil {
		t.Fatal(err)
	}
	rd, _ := p.NewReader()
	vr := NewVerifiedReader(rd, 0, size, clock, rlog)
	if err := vr.Do(); err != nil {
		t.Fatal(err)
	}
	if err := vw.Do(); err != nil {
		t.Fatal(err)
	}
	if err := vr.Do(); err != nil {
		t.Fatal(err)
	}
	res := history.Merge(wlog, rlog).Check()
	if !res.Ok() {
		t.Fatalf("violations: %v", res.Violations)
	}
}
