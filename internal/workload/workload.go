// Package workload implements the operation bodies of the paper's two
// experimental workloads (§5), in the spirit of the Hold model the paper
// cites: every thread repeatedly performs operations on the register with
// a configurable amount of attached processing.
//
//   - Dummy mode — "read and write operations are actually 'dummy'
//     operations which only execute the [register] algorithms … each write
//     operation simply copies a same content to the register, and a read
//     operation only retrieves the pointer to the valid register buffer."
//     Logical and physical contention on the register is maximal; this is
//     the workload that exposes the synchronization cost difference
//     between the algorithms.
//
//   - Processing mode — "a write actually generates some data, and a read
//     scans the whole content of the retrieved buffer", attaching a
//     size-proportional latency to every operation.
//
// Algorithms that expose zero-copy views (ARC, RF, the lock register)
// retrieve the buffer without copying, exactly as in the paper's C
// implementation; Peterson reads copy inherently, which is its documented
// structural cost. The checksum sink defeats dead-code elimination.
package workload

import (
	"fmt"

	"arcreg/internal/membuf"
	"arcreg/internal/register"
)

// Mode selects the §5 workload variant.
type Mode uint8

const (
	// Dummy is the zero-processing, maximal-contention workload.
	Dummy Mode = iota
	// Processing attaches data generation to writes and a full scan to
	// reads.
	Processing
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Dummy {
		return "dummy"
	}
	return "processing"
}

// ParseMode converts a CLI string.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "dummy":
		return Dummy, nil
	case "processing":
		return Processing, nil
	}
	return 0, fmt.Errorf("workload: unknown mode %q (want dummy or processing)", s)
}

// ReaderWork drives one reader handle through the selected workload. One
// instance per goroutine.
type ReaderWork struct {
	reader  register.Reader
	viewer  register.Viewer // non-nil when the handle supports views
	scratch []byte
	mode    Mode
	sink    uint64
}

// NewReaderWork prepares the read operation body for rd.
func NewReaderWork(rd register.Reader, mode Mode, maxSize int) *ReaderWork {
	w := &ReaderWork{reader: rd, mode: mode}
	if v, ok := rd.(register.Viewer); ok {
		w.viewer = v
	} else {
		w.scratch = make([]byte, maxSize)
	}
	return w
}

// Do performs one read operation.
func (w *ReaderWork) Do() error {
	var (
		val []byte
		err error
	)
	if w.viewer != nil {
		val, err = w.viewer.View()
		if err != nil {
			return err
		}
	} else {
		var n int
		n, err = w.reader.Read(w.scratch)
		if err != nil {
			return err
		}
		val = w.scratch[:n]
	}
	switch w.mode {
	case Dummy:
		// Pointer retrieval only; touch one byte so the view cannot be
		// optimized away.
		w.sink += uint64(len(val))
		if len(val) > 0 {
			w.sink += uint64(val[0])
		}
	case Processing:
		// "a read scans the whole content of the retrieved buffer".
		w.sink += membuf.Checksum(val)
	}
	return nil
}

// Sink exposes the accumulated checksum so the compiler must keep the
// reads; harness code stores it once after the run.
func (w *ReaderWork) Sink() uint64 { return w.sink }

// WriterWork drives the single writer through the selected workload.
type WriterWork struct {
	writer  register.Writer
	mode    Mode
	buf     []byte
	version uint64
}

// NewWriterWork prepares the write operation body. size is the value size
// for every write in this workload (the paper sweeps 4KB/32KB/128KB).
func NewWriterWork(wr register.Writer, mode Mode, size int) *WriterWork {
	if size < membuf.MinPayload {
		size = membuf.MinPayload
	}
	w := &WriterWork{writer: wr, mode: mode, buf: make([]byte, size)}
	// Dummy mode posts the same pre-built content on every write.
	membuf.Encode(w.buf, 0)
	return w
}

// Do performs one write operation.
func (w *WriterWork) Do() error {
	if w.mode == Processing {
		// "a write actually generates some data": refill the payload
		// with fresh version-dependent content before publishing.
		w.version++
		membuf.Encode(w.buf, w.version)
	}
	return w.writer.Write(w.buf)
}

// Version reports the number of distinct values generated (Processing).
func (w *WriterWork) Version() uint64 { return w.version }
