package workload

// The keyed workload path: operation bodies for the regmap sharded
// snapshot map, extending the paper's Hold-model workloads from one
// register to a keyed store. Key popularity follows a Zipf distribution
// (the standard model for skewed config/cache access: a few hot keys
// absorb most reads) or uniform when the exponent is ≤ 1.

import (
	"errors"
	"fmt"
	"math/rand"

	"arcreg/internal/membuf"
	"arcreg/internal/regmap"
)

// KeyChooser picks key indices in [0, n) — Zipf-skewed when exponent > 1,
// uniform otherwise. Deterministic for a given seed; one instance per
// goroutine.
type KeyChooser struct {
	n    int
	r    *rand.Rand
	zipf *rand.Zipf
}

// NewKeyChooser builds a chooser over n keys. exponent is the Zipf s
// parameter (math/rand requires s > 1; pass 0 or 1 for uniform).
func NewKeyChooser(n int, exponent float64, seed uint64) *KeyChooser {
	if n <= 0 {
		n = 1
	}
	c := &KeyChooser{n: n, r: rand.New(rand.NewSource(int64(seed)))}
	if exponent > 1 && n > 1 {
		c.zipf = rand.NewZipf(c.r, exponent, 1, uint64(n-1))
	}
	return c
}

// Next returns the next key index.
func (c *KeyChooser) Next() int {
	if c.zipf != nil {
		return int(c.zipf.Uint64())
	}
	return c.r.Intn(c.n)
}

// KeyName formats the canonical benchmark key for index i. Shared by the
// populate and operation paths so they agree on the key space.
func KeyName(i int) string { return fmt.Sprintf("key-%06d", i) }

// MapGetWork drives one regmap reader handle through the keyed read
// workload. One instance per goroutine.
type MapGetWork struct {
	rd     *regmap.Reader
	keys   []string
	choose *KeyChooser
	mode   Mode
	// missEvery > 0 makes every missEvery-th Get target an absent key,
	// exercising the directory-probe miss path.
	missEvery uint64
	// snapshotEvery > 0 makes every snapshotEvery-th operation a full
	// multi-key Snapshot instead of a Get — the snapshot workload.
	snapshotEvery uint64
	ops           uint64
	misses        uint64
	snapshots     uint64
	sink          uint64
}

// NewMapGetWork prepares the keyed read body: Gets over keys, chosen by
// choose, with the selected processing mode.
func NewMapGetWork(rd *regmap.Reader, keys []string, choose *KeyChooser, mode Mode, missEvery int) *MapGetWork {
	w := &MapGetWork{rd: rd, keys: keys, choose: choose, mode: mode}
	if missEvery > 0 {
		w.missEvery = uint64(missEvery)
	}
	return w
}

// WithSnapshots makes every nth operation a Snapshot (0 disables).
func (w *MapGetWork) WithSnapshots(n int) *MapGetWork {
	if n > 0 {
		w.snapshotEvery = uint64(n)
	}
	return w
}

// Do performs one Get operation.
func (w *MapGetWork) Do() error {
	w.ops++
	if w.snapshotEvery > 0 && w.ops%w.snapshotEvery == 0 {
		snap, err := w.rd.Snapshot()
		if err != nil {
			return err
		}
		w.snapshots++
		w.sink += uint64(len(snap))
		return nil
	}
	if w.missEvery > 0 && w.ops%w.missEvery == 0 {
		if _, err := w.rd.Get("\x00absent"); !errors.Is(err, regmap.ErrKeyNotFound) {
			if err == nil {
				return errors.New("workload: absent key found")
			}
			return err
		}
		w.misses++
		return nil
	}
	val, err := w.rd.Get(w.keys[w.choose.Next()])
	if err != nil {
		return err
	}
	switch w.mode {
	case Dummy:
		// Pointer retrieval only; touch one byte so the view cannot be
		// optimized away.
		w.sink += uint64(len(val))
		if len(val) > 0 {
			w.sink += uint64(val[0])
		}
	case Processing:
		w.sink += membuf.Checksum(val)
	}
	return nil
}

// Sink exposes the accumulated checksum so the compiler must keep the
// reads.
func (w *MapGetWork) Sink() uint64 { return w.sink }

// Misses reports the deliberate absent-key Gets performed.
func (w *MapGetWork) Misses() uint64 { return w.misses }

// Snapshots reports the multi-key Snapshots performed.
func (w *MapGetWork) Snapshots() uint64 { return w.snapshots }

// MapSetWork drives the map's writer side: updates over the key space,
// optionally interleaved with key creation (directory churn) and a
// delete-mix (keys from a dedicated lifecycle pool deleted and
// re-created, publishing tombstones under the readers). One instance,
// one goroutine — the map's single-writer shape.
type MapSetWork struct {
	m      *regmap.Map
	keys   []string
	choose *KeyChooser
	mode   Mode
	buf    []byte
	// churnEvery > 0 makes every churnEvery-th Set create a brand-new
	// key, re-publishing that shard's directory.
	churnEvery uint64
	// deleteEvery > 0 makes every deleteEvery-th operation flap a
	// lifecycle key: delete it if present, re-create it otherwise. The
	// pool is disjoint from keys, so reader Gets never race a deletion
	// of their own targets. The delete-mix branch runs before the churn
	// one, so on a tick divisible by both, deletion wins — pick coprime
	// periods to keep both mixes flowing.
	deleteEvery uint64
	flap        []string
	flapLive    []bool
	flapNext    int
	version     uint64
	created     uint64
	deleted     uint64
}

// NewMapSetWork prepares the keyed write body. size is the value size for
// every Set.
func NewMapSetWork(m *regmap.Map, keys []string, choose *KeyChooser, mode Mode, size, churnEvery int) *MapSetWork {
	if size < membuf.MinPayload {
		size = membuf.MinPayload
	}
	w := &MapSetWork{m: m, keys: keys, choose: choose, mode: mode, buf: make([]byte, size)}
	if churnEvery > 0 {
		w.churnEvery = uint64(churnEvery)
	}
	// Dummy mode posts the same pre-built content on every write.
	membuf.Encode(w.buf, 0)
	return w
}

// WithDeletes enables the delete-mix: every nth operation flaps one of
// poolSize lifecycle keys (0 disables). Call before the run starts.
func (w *MapSetWork) WithDeletes(n, poolSize int) *MapSetWork {
	if n <= 0 {
		return w
	}
	if poolSize <= 0 {
		poolSize = 4
	}
	w.deleteEvery = uint64(n)
	w.flap = make([]string, poolSize)
	w.flapLive = make([]bool, poolSize)
	for i := range w.flap {
		w.flap[i] = fmt.Sprintf("lifecycle-%04d", i)
	}
	return w
}

// Do performs one Set operation.
func (w *MapSetWork) Do() error {
	w.version++
	if w.mode == Processing {
		// "a write actually generates some data": refill the payload.
		membuf.Encode(w.buf, w.version)
	}
	if w.deleteEvery > 0 && w.version%w.deleteEvery == 0 {
		i := w.flapNext
		w.flapNext = (w.flapNext + 1) % len(w.flap)
		if w.flapLive[i] {
			w.flapLive[i] = false
			w.deleted++
			return w.m.Delete(w.flap[i])
		}
		w.flapLive[i] = true
		w.created++
		return w.m.Set(w.flap[i], w.buf)
	}
	if w.churnEvery > 0 && w.version%w.churnEvery == 0 {
		w.created++
		return w.m.Set(fmt.Sprintf("churn-%08d", w.created), w.buf)
	}
	return w.m.Set(w.keys[w.choose.Next()], w.buf)
}

// Created reports the number of churn and lifecycle keys this work body
// added.
func (w *MapSetWork) Created() uint64 { return w.created }

// Deleted reports the number of tombstones this work body published.
func (w *MapSetWork) Deleted() uint64 { return w.deleted }
