package workload

import (
	"testing"

	"arcreg/internal/regmap"
)

// TestKeyChooserDeterminism pins the chooser contract: same seed → same
// sequence, indices always in range, Zipf actually skews toward low
// indices while uniform does not.
func TestKeyChooserDeterminism(t *testing.T) {
	const n, draws = 64, 4096
	a := NewKeyChooser(n, 1.2, 7)
	b := NewKeyChooser(n, 1.2, 7)
	zipfLow := 0
	for i := 0; i < draws; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
		if x < 0 || x >= n {
			t.Fatalf("draw %d out of range: %d", i, x)
		}
		if x < n/8 {
			zipfLow++
		}
	}
	uni := NewKeyChooser(n, 0, 7)
	uniLow := 0
	for i := 0; i < draws; i++ {
		x := uni.Next()
		if x < 0 || x >= n {
			t.Fatalf("uniform draw out of range: %d", x)
		}
		if x < n/8 {
			uniLow++
		}
	}
	if zipfLow <= uniLow {
		t.Errorf("Zipf(1.2) not skewed: %d low draws vs uniform's %d", zipfLow, uniLow)
	}
	// Degenerate sizes must not panic.
	if got := NewKeyChooser(1, 1.2, 1).Next(); got != 0 {
		t.Errorf("single-key chooser returned %d", got)
	}
	if got := NewKeyChooser(0, 0, 1).Next(); got != 0 {
		t.Errorf("zero-key chooser returned %d", got)
	}
}

// TestMapWorkBodies smoke-tests the keyed operation bodies against a real
// map: misses are deliberate and counted, churn creates keys, the sink
// accumulates.
func TestMapWorkBodies(t *testing.T) {
	m, err := regmap.New(regmap.Config{Shards: 4, MaxReaders: 1, MaxValueSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 8)
	seed := make([]byte, 64)
	for i := range keys {
		keys[i] = KeyName(i)
		if err := m.Set(keys[i], seed); err != nil {
			t.Fatal(err)
		}
	}
	sw := NewMapSetWork(m, keys, NewKeyChooser(len(keys), 0, 1), Processing, 64, 5)
	for i := 0; i < 20; i++ {
		if err := sw.Do(); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Created() != 4 { // every 5th of 20 Sets
		t.Errorf("churn keys = %d, want 4", sw.Created())
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	rw := NewMapGetWork(rd, keys, NewKeyChooser(len(keys), 1.2, 2), Processing, 7)
	for i := 0; i < 70; i++ {
		if err := rw.Do(); err != nil {
			t.Fatal(err)
		}
	}
	if rw.Misses() != 10 {
		t.Errorf("deliberate misses = %d, want 10", rw.Misses())
	}
	if rw.Sink() == 0 {
		t.Error("sink did not accumulate")
	}
}
