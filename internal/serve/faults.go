package serve

// Connection-level fault-injection points. Where internal/regmap's
// points sit on the writer's publish paths, these sit on the network
// edge — the places a real deployment's clients hurt a server: reading
// slowly, vanishing mid-response, and stalling the accept loop. The
// points are permanent instrumentation (one atomic load each while
// disarmed) and are driven by the same seeded fault.Schedule machinery
// as the map points; cmd/arcstress's servechaos scenario arms all
// three against a live loopback server.
//
// Crash capability: only FaultMidResponseDisconnect may Crash. The
// injected fault.Crashed panic is recovered at the top of
// Server.ServeHTTP and re-raised as http.ErrAbortHandler, which makes
// net/http sever the connection without a reply — a faithful
// mid-response client disconnect, not a process death. No serve point
// sits inside a regmap publication window (handlers never hold the
// writer role; the shard writer goroutines do, and they carry no
// injection points of their own beyond regmap's).

import (
	"net"

	"arcreg/internal/fault"
)

// Fault point names, exported for schedules (cmd/arcstress, tests).
const (
	// FaultSlowClient sits in the SSE event loop, between composing an
	// event frame and writing it to the client socket. Stalling here
	// models a client that drains its stream slowly: the stream's
	// goroutine blocks, the register moves on, and the next Watch
	// delivery conflates to the freshest value. Stall/yield only.
	FaultSlowClient = "serve/slow-client"
	// FaultMidResponseDisconnect sits between a successful register
	// read and the response body write. Crashing here aborts the
	// response mid-flight (see package comment); the pooled reader
	// must still be released and the connection accounting must not
	// wedge.
	FaultMidResponseDisconnect = "serve/mid-response-disconnect"
	// FaultAcceptStall sits in the Listener wrapper's Accept, before
	// delegating to the real listener. Stalling here models SYN-flood
	// backpressure / a saturated accept loop. Stall/yield only.
	FaultAcceptStall = "serve/accept-stall"
)

var (
	faultSlowClient  = fault.NewPoint(FaultSlowClient, fault.CanYield|fault.CanStall)
	faultMidResponse = fault.NewPoint(FaultMidResponseDisconnect, fault.CanYield|fault.CanStall|fault.CanCrash)
	faultAcceptStall = fault.NewPoint(FaultAcceptStall, fault.CanYield|fault.CanStall)
)

// Listener wraps l with the serve/accept-stall fault point: every
// Accept first visits the point (one atomic load while disarmed).
// cmd/arcserve and the chaos scenarios wrap their TCP listeners with
// it so accept-loop stalls are schedulable like any other fault.
func Listener(l net.Listener) net.Listener { return chaosListener{l} }

type chaosListener struct{ net.Listener }

func (l chaosListener) Accept() (net.Conn, error) {
	faultAcceptStall.Hit()
	return l.Listener.Accept()
}
