// Package serve is the network edge over the register map: a
// stdlib-only HTTP layer that carries regmap's wait-free-read,
// single-writer-per-shard contract out to N network clients instead of
// N goroutines.
//
// The structural commitments, in order of importance:
//
//   - Reads stay wait-free end to end. GET /k/{key} borrows an
//     exclusive *regmap.Reader from a fixed pool, performs the 2-load
//     0-RMW Get, and writes the returned view straight into the
//     response — no copy, no allocation on the steady-state path for
//     an unchanged value. The view stays valid until that handle's
//     next Get of the same key, and the handle is not released until
//     the response write returns, so zero-copy is safe.
//
//   - Writes stay (1,N). regmap shards are single-writer; HTTP is
//     arbitrarily concurrent. The bridge is one mpsc channel + one
//     writer goroutine per shard: every PUT/DELETE (and every
//     compaction or chaos injection routed through Do) is enqueued to
//     its shard's bounded queue and applied by that shard's sole
//     writer. A full queue sheds the request with 503 + Retry-After
//     rather than queueing unboundedly — overload surfaces at the
//     edge, not as memory.
//
//   - Slow watch clients conflate instead of buffering. SSE and
//     long-poll streams ride the PR 5 Watch engine: a stream that
//     cannot drain blocks only its own goroutine; when it comes back,
//     Watch re-reads the freshest value and the skipped publications
//     are recorded as conflation in the per-watcher ledger. The server
//     holds no per-client event queue at all, so a slow client's
//     memory cost is O(1) forever.
//
// Everything observable lands in a "serve" obs.Snapshot node
// (Server.Stats) beside the map's own tree, served on GET /statz and,
// via expvar, /debug/vars.
package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"arcreg/internal/fault"
	"arcreg/internal/obs"
	"arcreg/internal/regmap"
	"arcreg/internal/trace"
)

// Defaults for Config zero values.
const (
	DefaultReaders         = 8
	DefaultWatchStreams    = 64
	DefaultQueueDepth      = 128
	DefaultRetryAfter      = time.Second
	DefaultLongPollTimeout = 30 * time.Second
)

// Config describes one Server over one map.
type Config struct {
	// Map is the store to serve. The Server takes over the writer role
	// for every shard: after New, all writes must go through the
	// Server (HTTP or the Set/Delete/Compact/Do methods), never
	// through Map.Set directly — shards are single-writer.
	Map *regmap.Map
	// Readers is the GET/keys reader-pool size (default
	// DefaultReaders, clamped to the map's spare reader capacity).
	// Each pooled handle serves one request at a time; requests beyond
	// the pool wait for a handle rather than failing.
	Readers int
	// WatchStreams bounds concurrent watch streams — SSE and long-poll
	// together (default DefaultWatchStreams). Each stream owns a
	// dedicated map reader for its lifetime; beyond the bound, watch
	// requests are shed with 503.
	WatchStreams int
	// QueueDepth is the per-shard write-queue bound (default
	// DefaultQueueDepth). A full queue sheds with 503 + Retry-After.
	QueueDepth int
	// RetryAfter is the hint sent with shed responses (default
	// DefaultRetryAfter, rounded up to whole seconds).
	RetryAfter time.Duration
	// LongPollTimeout caps a long-poll park (default
	// DefaultLongPollTimeout); expiry returns 204 No Content.
	LongPollTimeout time.Duration
	// ExpvarName, when non-empty, publishes the server's combined
	// stats tree (serve + map) in the process-wide expvar registry
	// under that name. Like expvar.Publish, a duplicate name panics —
	// one Server per name per process.
	ExpvarName string
}

// Server is the HTTP layer. It implements http.Handler; mount it at
// the root of an http.Server (and wire ConnState for connection
// accounting).
//
// Routes:
//
//	GET    /k/{key}          value bytes (pooled wait-free read)
//	PUT    /k/{key}          set from body (per-shard writer queue)
//	DELETE /k/{key}          delete (per-shard writer queue)
//	GET    /watch/{key}      SSE value stream; ?poll=1 or ?poll=5s
//	                         long-polls the next change instead
//	GET    /watch            SSE whole-map snapshot-delta stream (JSON)
//	GET    /keys             JSON key list
//	POST   /compact          compact every shard (through the queues)
//	GET    /statz            stats tree (text; ?format=json for JSON)
//	GET    /debug/vars       stdlib expvar
type Server struct {
	m   *regmap.Map
	mux *http.ServeMux

	pool     chan *connReader
	watchSem chan struct{}
	queues   []chan *writeReq
	reqPool  sync.Pool
	bufPool  sync.Pool

	baseCtx context.Context
	cancel  context.CancelFunc
	writers sync.WaitGroup
	closed  atomic.Bool

	retryAfter  string // precomputed whole-seconds header value
	longPoll    time.Duration
	maxValue    int
	watchBudget int
	start       time.Time // process-info anchor for /statz uptime

	st     serveCounters
	shards []shardCells
}

// serveCounters are the handler-side counters. Handlers run on
// arbitrary goroutines, so these are plain atomics — NOT obs.Cells
// (whose Add is single-writer). The tier argument from DESIGN.md §10
// still holds: every one of these rides a path that just paid for a
// syscall, so a LOCK ADD is noise; the register read itself stays
// 0-RMW and is accounted separately via the pooled handles' ReadStats
// deltas (folded in at release time, when the handle is quiescent).
type serveCounters struct {
	connsAccepted atomic.Uint64
	connsActive   atomic.Int64

	reqGet      atomic.Uint64
	reqPut      atomic.Uint64
	reqDelete   atomic.Uint64
	reqWatch    atomic.Uint64
	reqWatchAll atomic.Uint64
	reqStatz    atomic.Uint64
	reqOther    atomic.Uint64

	getHits   atomic.Uint64
	getMisses atomic.Uint64
	degraded  atomic.Uint64

	shedWrites atomic.Uint64
	shedWatch  atomic.Uint64

	watchStreams atomic.Int64 // live gauge
	watchEvents  atomic.Uint64
	longPolls    atomic.Uint64

	readOps      atomic.Uint64
	readFastPath atomic.Uint64
	readRMW      atomic.Uint64

	aborted  atomic.Uint64
	bytesOut atomic.Uint64
}

// shardCells are one shard writer goroutine's counters. Exactly one
// goroutine ever calls Add on them, so they are obs.Cells — the
// single-writer recording discipline, same as the register's own.
type shardCells struct {
	sets    obs.Cell
	deletes obs.Cell
	dos     obs.Cell
	errs    obs.Cell
}

// connReader is one pooled reader handle plus the ReadStats watermark
// from its last release, so each release folds only the delta into
// the server totals.
type connReader struct {
	rd   *regmap.Reader
	last regmap.ReadStats
}

// writeReq is one queued write. done has capacity 1 so the shard
// writer's completion send never blocks, even if the requester has
// abandoned the wait.
type writeReq struct {
	op   byte
	key  string
	val  []byte
	bp   *[]byte // pooled backing buffer for val (opSet)
	fn   func(*regmap.Map) error
	done chan error
}

const (
	opSet byte = iota
	opDelete
	opDo
)

var (
	errClosed   = errors.New("serve: server closed")
	errTooLarge = errors.New("serve: value exceeds MaxValueSize")

	contentTypeOctet = []string{"application/octet-stream"}
	contentTypeSSE   = []string{"text/event-stream"}
	noCache          = []string{"no-cache"}
)

// New builds a Server over cfg.Map, allocating the reader pool eagerly
// and starting one writer goroutine per shard. The pool plus the watch
// budget must fit the map's remaining reader capacity.
func New(cfg Config) (*Server, error) {
	if cfg.Map == nil {
		return nil, errors.New("serve: Config.Map is required")
	}
	if cfg.Readers <= 0 {
		cfg.Readers = DefaultReaders
	}
	if cfg.WatchStreams <= 0 {
		cfg.WatchStreams = DefaultWatchStreams
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.LongPollTimeout <= 0 {
		cfg.LongPollTimeout = DefaultLongPollTimeout
	}
	m := cfg.Map
	spare := m.MaxReaders() - m.LiveReaders()
	if cfg.Readers+cfg.WatchStreams > spare {
		return nil, fmt.Errorf("serve: Readers (%d) + WatchStreams (%d) exceed the map's spare reader capacity (%d)",
			cfg.Readers, cfg.WatchStreams, spare)
	}

	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		m:           m,
		pool:        make(chan *connReader, cfg.Readers),
		watchSem:    make(chan struct{}, cfg.WatchStreams),
		queues:      make([]chan *writeReq, m.Shards()),
		baseCtx:     ctx,
		cancel:      cancel,
		retryAfter:  strconv.Itoa(int((cfg.RetryAfter + time.Second - 1) / time.Second)),
		longPoll:    cfg.LongPollTimeout,
		maxValue:    m.MaxValueSize(),
		watchBudget: cfg.WatchStreams,
		start:       time.Now(),
		shards:      make([]shardCells, m.Shards()),
	}
	s.reqPool.New = func() any { return &writeReq{done: make(chan error, 1)} }
	s.bufPool.New = func() any {
		b := make([]byte, s.maxValue+1)
		return &b
	}
	for i := 0; i < cfg.Readers; i++ {
		rd, err := m.NewReader()
		if err != nil {
			cancel()
			s.drainPool()
			return nil, err
		}
		s.pool <- &connReader{rd: rd}
	}
	for si := range s.queues {
		s.queues[si] = make(chan *writeReq, cfg.QueueDepth)
		s.writers.Add(1)
		go s.shardWriter(si)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /k/{key...}", s.handleGet)
	mux.HandleFunc("PUT /k/{key...}", s.handlePut)
	mux.HandleFunc("DELETE /k/{key...}", s.handleDelete)
	mux.HandleFunc("GET /watch/{key...}", s.handleWatchKey)
	mux.HandleFunc("GET /watch", s.handleWatchAll)
	mux.HandleFunc("GET /keys", s.handleKeys)
	mux.HandleFunc("POST /compact", s.handleCompact)
	mux.HandleFunc("GET /statz", s.handleStatz)
	mux.HandleFunc("GET /metricz", s.handleMetricz)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux = mux

	if cfg.ExpvarName != "" {
		expvar.Publish(cfg.ExpvarName, obs.Var{Source: obs.SourceFunc(s.StatsTree)})
	}
	return s, nil
}

// ServeHTTP dispatches, converting an injected fault.Crashed panic
// into http.ErrAbortHandler: net/http drops the connection without a
// reply — a genuine mid-response disconnect — instead of logging a
// handler crash.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(fault.Crashed); !ok {
				panic(p)
			}
			s.st.aborted.Add(1)
			panic(http.ErrAbortHandler)
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// ConnState is the http.Server.ConnState hook for connection
// accounting (conns_accepted, conns_active).
func (s *Server) ConnState(_ net.Conn, st http.ConnState) {
	switch st {
	case http.StateNew:
		s.st.connsAccepted.Add(1)
		s.st.connsActive.Add(1)
	case http.StateClosed, http.StateHijacked:
		s.st.connsActive.Add(-1)
	}
}

// Close stops the shard writers, ends every watch stream, and closes
// the pooled readers. Shut the http.Server down first so no handler is
// mid-request.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.cancel()
	s.writers.Wait()
	s.drainPool()
	return nil
}

func (s *Server) drainPool() {
	for {
		select {
		case c := <-s.pool:
			c.rd.Close()
		default:
			return
		}
	}
}

// ---- reader pool ----

// acquire borrows an exclusive pooled reader, waiting (bounded by the
// request context) when every handle is busy — reads queue at the
// pool, they do not fail under load.
func (s *Server) acquire(ctx context.Context) (*connReader, error) {
	select {
	case c := <-s.pool:
		return c, nil
	default:
	}
	select {
	case c := <-s.pool:
		return c, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.baseCtx.Done():
		return nil, errClosed
	}
}

// release folds the handle's ReadStats delta into the server totals
// (the handle is quiescent here, so the plain per-handle counters are
// safe to read) and returns it to the pool.
func (s *Server) release(c *connReader) {
	cur := c.rd.Stats()
	s.st.readOps.Add(cur.Ops - c.last.Ops)
	s.st.readFastPath.Add(cur.FastPath - c.last.FastPath)
	s.st.readRMW.Add(cur.RMW - c.last.RMW)
	c.last = cur
	if s.closed.Load() {
		c.rd.Close()
		return
	}
	select {
	case s.pool <- c:
	default:
		c.rd.Close() // unreachable: the pool is sized to hold every handle
	}
}

// ---- shard writer goroutines ----

// shardWriter is shard si's single writer: the only goroutine that
// ever calls Set/Delete/Compact (or a Do closure) on that shard, which
// is what preserves regmap's (1,N) discipline under arbitrary HTTP
// concurrency.
func (s *Server) shardWriter(si int) {
	defer s.writers.Done()
	q := s.queues[si]
	cells := &s.shards[si]
	for {
		select {
		case req := <-q:
			var err error
			switch req.op {
			case opSet:
				err = s.m.Set(req.key, req.val)
				if err == nil {
					cells.sets.Add(1)
				}
			case opDelete:
				err = s.m.Delete(req.key)
				if err == nil {
					cells.deletes.Add(1)
				}
			case opDo:
				err = req.fn(s.m)
				if err == nil {
					cells.dos.Add(1)
				}
			}
			if err != nil {
				cells.errs.Add(1)
			}
			req.done <- err
		case <-s.baseCtx.Done():
			return
		}
	}
}

// enqueue try-sends req to its shard queue; a full queue is overload
// and sheds immediately (the caller answers 503 + Retry-After).
func (s *Server) enqueue(si int, req *writeReq) bool {
	select {
	case s.queues[si] <- req:
		return true
	default:
		return false
	}
}

// await waits for the shard writer's completion. After a successful
// wait the req (and its body buffer) are recycled; on server shutdown
// the req is abandoned to the GC — the writer may still hold it.
func (s *Server) await(req *writeReq) (error, bool) {
	select {
	case err := <-req.done:
		s.recycle(req)
		return err, true
	case <-s.baseCtx.Done():
		return errClosed, false
	}
}

func (s *Server) recycle(req *writeReq) {
	if req.bp != nil {
		s.bufPool.Put(req.bp)
	}
	req.key, req.val, req.bp, req.fn = "", nil, nil, nil
	s.reqPool.Put(req)
}

// submit enqueues op for key's shard and waits; used by the in-process
// write API (facade, chaos, tests). Unlike the HTTP path it blocks on
// a full queue instead of shedding — in-process callers want the
// write, not a 503.
func (s *Server) submit(si int, op byte, key string, fn func(*regmap.Map) error) error {
	req := s.reqPool.Get().(*writeReq)
	req.op, req.key, req.fn = op, key, fn
	select {
	case s.queues[si] <- req:
	case <-s.baseCtx.Done():
		s.recycle(req)
		return errClosed
	}
	err, _ := s.await(req)
	return err
}

// Set routes an in-process write through key's shard writer. The value
// is copied before enqueueing (the register copies again on publish;
// in-process writes are not the hot path — HTTP PUT reuses pooled
// buffers instead).
func (s *Server) Set(key string, val []byte) error {
	if len(val) > s.maxValue {
		return errTooLarge
	}
	req := s.reqPool.Get().(*writeReq)
	bp := s.bufPool.Get().(*[]byte)
	n := copy((*bp)[:s.maxValue], val)
	req.op, req.key, req.val, req.bp = opSet, key, (*bp)[:n], bp
	si := s.m.ShardOf(key)
	select {
	case s.queues[si] <- req:
	case <-s.baseCtx.Done():
		s.recycle(req)
		return errClosed
	}
	err, _ := s.await(req)
	return err
}

// Delete routes an in-process delete through key's shard writer.
func (s *Server) Delete(key string) error {
	return s.submit(s.m.ShardOf(key), opDelete, key, nil)
}

// Compact routes a compaction of every shard through the shard
// writers — the writer role owns compaction, same as Set.
func (s *Server) Compact() error {
	var first error
	for si := 0; si < s.m.Shards(); si++ {
		i := si
		if err := s.submit(si, opDo, "", func(m *regmap.Map) error { return m.CompactShard(i) }); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Do runs fn under shard si's writer role — the bridge the chaos
// suite uses to inject corruption (a publisher-side operation) without
// violating single-writer-per-shard.
func (s *Server) Do(si int, fn func(*regmap.Map) error) error {
	return s.submit(si, opDo, "", fn)
}

// ---- key read/write handlers ----

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.st.reqGet.Add(1)
	key := r.PathValue("key")
	if key == "" {
		http.Error(w, "empty key", http.StatusBadRequest)
		return
	}
	c, err := s.acquire(r.Context())
	if err != nil {
		s.shedRead(w)
		return
	}
	defer s.release(c)
	s.writeKeyValue(w, c, key)
}

// writeKeyValue is the steady-state hot path: one wait-free Get, then
// the view written straight to the socket. Zero allocation for an
// unchanged value (guard-tested) — the header is assigned a
// preallocated slice, the view is the register's own buffer, and
// net/http supplies Content-Length itself for a single Write.
func (s *Server) writeKeyValue(w http.ResponseWriter, c *connReader, key string) {
	v, err := c.rd.Get(key)
	switch {
	case err == nil:
	case errors.Is(err, regmap.ErrKeyNotFound):
		s.st.getMisses.Add(1)
		http.Error(w, "key not found", http.StatusNotFound)
		return
	case errors.Is(err, regmap.ErrShardCorrupt):
		s.degradedResp(w)
		return
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.st.getHits.Add(1)
	faultMidResponse.Hit()
	w.Header()["Content-Type"] = contentTypeOctet
	w.Write(v)
	s.st.bytesOut.Add(uint64(len(v)))
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	s.st.reqPut.Add(1)
	key := r.PathValue("key")
	if key == "" {
		http.Error(w, "empty key", http.StatusBadRequest)
		return
	}
	bp := s.bufPool.Get().(*[]byte)
	buf := (*bp)[:s.maxValue+1]
	n, err := readBody(r.Body, buf)
	if err != nil {
		s.bufPool.Put(bp)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if n > s.maxValue {
		s.bufPool.Put(bp)
		http.Error(w, fmt.Sprintf("value exceeds MaxValueSize %d", s.maxValue), http.StatusRequestEntityTooLarge)
		return
	}
	req := s.reqPool.Get().(*writeReq)
	req.op, req.key, req.val, req.bp = opSet, key, buf[:n], bp
	if !s.enqueue(s.m.ShardOf(key), req) {
		s.recycle(req)
		s.shedWrite(w)
		return
	}
	werr, ok := s.await(req)
	if !ok {
		s.shedWrite(w)
		return
	}
	s.writeErr(w, werr)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.st.reqDelete.Add(1)
	key := r.PathValue("key")
	if key == "" {
		http.Error(w, "empty key", http.StatusBadRequest)
		return
	}
	req := s.reqPool.Get().(*writeReq)
	req.op, req.key = opDelete, key
	if !s.enqueue(s.m.ShardOf(key), req) {
		s.recycle(req)
		s.shedWrite(w)
		return
	}
	werr, ok := s.await(req)
	if !ok {
		s.shedWrite(w)
		return
	}
	s.writeErr(w, werr)
}

// writeErr maps a completed write's error onto a status: 204 on
// success, 404 for a missing delete target, 507 for a full directory
// (the ceiling is a capacity condition, not overload — retrying
// without a compaction won't help), 503 for a corrupt shard (the next
// publication repairs it).
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	switch {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, regmap.ErrKeyNotFound):
		s.st.getMisses.Add(1)
		http.Error(w, "key not found", http.StatusNotFound)
	case errors.Is(err, regmap.ErrDirectoryFull):
		http.Error(w, err.Error(), http.StatusInsufficientStorage)
	case errors.Is(err, regmap.ErrShardCorrupt):
		s.degradedResp(w)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) shedWrite(w http.ResponseWriter) {
	s.st.shedWrites.Add(1)
	w.Header().Set("Retry-After", s.retryAfter)
	http.Error(w, "write queue full", http.StatusServiceUnavailable)
}

func (s *Server) shedRead(w http.ResponseWriter) {
	w.Header().Set("Retry-After", s.retryAfter)
	http.Error(w, "no reader available", http.StatusServiceUnavailable)
}

func (s *Server) degradedResp(w http.ResponseWriter) {
	s.st.degraded.Add(1)
	w.Header().Set("Retry-After", s.retryAfter)
	http.Error(w, "shard degraded; repair pending", http.StatusServiceUnavailable)
}

// readBody fills buf from r, returning the byte count. It tolerates a
// missing EOF after a full buffer read only by reporting n=len(buf),
// which the caller rejects as oversized.
func readBody(r io.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		k, err := r.Read(buf[n:])
		n += k
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ---- watch handlers ----

// watchCtx derives the stream context: canceled by the client
// (request context) or by server Close.
func (s *Server) watchCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// acquireWatch claims one watch-stream slot and a dedicated reader.
func (s *Server) acquireWatch(w http.ResponseWriter) (*regmap.Reader, func(), bool) {
	select {
	case s.watchSem <- struct{}{}:
	default:
		s.st.shedWatch.Add(1)
		w.Header().Set("Retry-After", s.retryAfter)
		http.Error(w, "watch streams exhausted", http.StatusServiceUnavailable)
		return nil, nil, false
	}
	rd, err := s.m.NewReader()
	if err != nil {
		<-s.watchSem
		s.st.shedWatch.Add(1)
		w.Header().Set("Retry-After", s.retryAfter)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return nil, nil, false
	}
	s.st.watchStreams.Add(1)
	release := func() {
		rd.Close()
		<-s.watchSem
		s.st.watchStreams.Add(-1)
	}
	return rd, release, true
}

func (s *Server) handleWatchKey(w http.ResponseWriter, r *http.Request) {
	s.st.reqWatch.Add(1)
	key := r.PathValue("key")
	if key == "" {
		http.Error(w, "empty key", http.StatusBadRequest)
		return
	}
	if p := r.URL.Query().Get("poll"); p != "" {
		s.longPollKey(w, r, key, p)
		return
	}
	rd, release, ok := s.acquireWatch(w)
	if !ok {
		return
	}
	defer release()
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ctx, cancel := s.watchCtx(r)
	defer cancel()
	b64 := r.URL.Query().Get("b64") == "1"
	h := w.Header()
	h["Content-Type"] = contentTypeSSE
	h["Cache-Control"] = noCache
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	scratch := make([]byte, 0, 512)
	for v, err := range rd.Watch(ctx, key) {
		switch {
		case err == nil:
			scratch = appendEvent(scratch[:0], "value", v, b64)
		case errors.Is(err, regmap.ErrKeyNotFound):
			scratch = appendEvent(scratch[:0], "deleted", nil, false)
		case errors.Is(err, regmap.ErrShardCorrupt):
			s.st.degraded.Add(1)
			scratch = appendEvent(scratch[:0], "degraded", nil, false)
		default:
			return // context canceled: client gone or server closing
		}
		faultSlowClient.Hit()
		if _, werr := w.Write(scratch); werr != nil {
			return
		}
		fl.Flush()
		// Flight recorder: the span's terminal stage — this SSE frame
		// left for the socket. Recorded by the connection goroutine into
		// the stream reader's lane (the same single-writer domain that
		// just recorded the wake and the conflation decision); the span
		// is the origin publish stamp the wake carried. Nil-safe on
		// untraced maps or exhausted lane pools.
		rd.TraceRing().Record(trace.StageFlush, 0, rd.LastWake(), uint64(len(scratch)))
		s.st.watchEvents.Add(1)
		s.st.bytesOut.Add(uint64(len(scratch)))
	}
}

// longPollKey parks until key's next change (skipping the Watch
// iterator's initial current-state yield): 200 + value on change, 404
// if the change is a deletion, 503 if the shard degrades, 204 on
// timeout.
func (s *Server) longPollKey(w http.ResponseWriter, r *http.Request, key, pollArg string) {
	s.st.longPolls.Add(1)
	timeout := s.longPoll
	if d, err := time.ParseDuration(pollArg); err == nil && d > 0 && d < timeout {
		timeout = d
	}
	rd, release, ok := s.acquireWatch(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.watchCtx(r)
	defer cancel()
	pctx, pcancel := context.WithTimeout(ctx, timeout)
	defer pcancel()
	first := true
	for v, err := range rd.Watch(pctx, key) {
		if first && (err == nil || errors.Is(err, regmap.ErrKeyNotFound)) {
			first = false // current state; a long-poll wants the next change
			continue
		}
		switch {
		case err == nil:
			w.Header()["Content-Type"] = contentTypeOctet
			w.Write(v)
			// A long-poll response is a one-frame stream: same terminal
			// span stage as the SSE flush.
			rd.TraceRing().Record(trace.StageFlush, 0, rd.LastWake(), uint64(len(v)))
			s.st.watchEvents.Add(1)
			s.st.bytesOut.Add(uint64(len(v)))
		case errors.Is(err, regmap.ErrKeyNotFound):
			http.Error(w, "key deleted", http.StatusNotFound)
		case errors.Is(err, regmap.ErrShardCorrupt):
			s.degradedResp(w)
		case pctx.Err() != nil && ctx.Err() == nil:
			w.WriteHeader(http.StatusNoContent) // timeout: no change
		default:
			// client gone or server closing; nothing to say
		}
		return
	}
	// Iterator ended without yielding a context error (raced shutdown).
	if pctx.Err() != nil && ctx.Err() == nil {
		w.WriteHeader(http.StatusNoContent)
	}
}

// handleWatchAll streams the whole map as SSE: one "snapshot" event
// (the full linearizable Snapshot), then "delta" events — created/
// changed values and deleted keys, JSON-encoded ([]byte values render
// as base64, for free). Conflation is inherited from WatchAll: a slow
// stream coalesces to one cumulative delta per drain.
func (s *Server) handleWatchAll(w http.ResponseWriter, r *http.Request) {
	s.st.reqWatchAll.Add(1)
	rd, release, ok := s.acquireWatch(w)
	if !ok {
		return
	}
	defer release()
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ctx, cancel := s.watchCtx(r)
	defer cancel()
	h := w.Header()
	h["Content-Type"] = contentTypeSSE
	h["Cache-Control"] = noCache
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	scratch := make([]byte, 0, 1024)
	for d, err := range rd.WatchAll(ctx) {
		switch {
		case err == nil:
			payload, jerr := json.Marshal(d)
			if jerr != nil {
				return
			}
			name := "delta"
			if d.Full {
				name = "snapshot"
			}
			scratch = appendEvent(scratch[:0], name, payload, false)
		case errors.Is(err, regmap.ErrShardCorrupt):
			s.st.degraded.Add(1)
			scratch = appendEvent(scratch[:0], "degraded", nil, false)
		default:
			return
		}
		faultSlowClient.Hit()
		if _, werr := w.Write(scratch); werr != nil {
			return
		}
		fl.Flush()
		// Terminal span stage, as in handleWatchKey.
		rd.TraceRing().Record(trace.StageFlush, 0, rd.LastWake(), uint64(len(scratch)))
		s.st.watchEvents.Add(1)
		s.st.bytesOut.Add(uint64(len(scratch)))
	}
}

// appendEvent appends one SSE frame ("event: <name>", data lines, a
// blank terminator) to dst, reusing its backing array — the per-stream
// scratch buffer makes steady-state event writes allocation-free. Raw
// payloads are split on newlines into multiple data lines (SSE frames
// are line-delimited); b64 emits a single base64 data line instead,
// for binary-safe transport.
func appendEvent(dst []byte, name string, data []byte, b64 bool) []byte {
	dst = append(dst, "event: "...)
	dst = append(dst, name...)
	dst = append(dst, '\n')
	switch {
	case b64:
		dst = append(dst, "data: "...)
		n := base64.StdEncoding.EncodedLen(len(data))
		off := len(dst)
		dst = append(dst, make([]byte, n)...)
		base64.StdEncoding.Encode(dst[off:], data)
		dst = append(dst, '\n')
	case len(data) == 0:
		dst = append(dst, "data: \n"...)
	default:
		rest := data
		for {
			i := bytes.IndexByte(rest, '\n')
			line := rest
			if i >= 0 {
				line = rest[:i]
				rest = rest[i+1:]
			}
			dst = append(dst, "data: "...)
			dst = append(dst, line...)
			dst = append(dst, '\n')
			if i < 0 {
				break
			}
		}
	}
	return append(dst, '\n')
}

// ---- introspection handlers ----

func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	s.st.reqOther.Add(1)
	c, err := s.acquire(r.Context())
	if err != nil {
		s.shedRead(w)
		return
	}
	keys, kerr := c.rd.Keys()
	s.release(c)
	if kerr != nil {
		s.writeErr(w, kerr)
		return
	}
	if keys == nil {
		keys = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(keys)
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.st.reqOther.Add(1)
	s.writeErr(w, s.Compact())
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.st.reqStatz.Add(1)
	sn := s.StatsTree()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, sn.JSON())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	sn.WriteText(w)
}

// handleMetricz renders the whole stats tree — serve counters, the
// map's tree (including the trace node's per-stage histograms on a
// traced map), and the process node — in the Prometheus text
// exposition format, stdlib only. The walk is read-only: scraping
// costs the registers nothing beyond the loads the tree always costs.
func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	s.st.reqStatz.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteProm(w, "arcreg", s.StatsTree())
}

// handleTrace dumps the flight recorder: reconstructed publish→deliver
// spans with per-stage latency summaries, as JSON by default or a
// human-readable timeline with ?format=text; ?spans=N bounds the dump
// to the newest N spans (default 32, 0 = all). Snapshotting the rings
// is safe under live traffic (seqlock-validated walks; see
// internal/trace) — 404 when the map was built without tracing.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.st.reqOther.Add(1)
	tr := s.m.Tracer()
	if tr == nil {
		http.Error(w, "tracing disabled (map built without Trace)", http.StatusNotFound)
		return
	}
	maxSpans := 32
	if v := r.URL.Query().Get("spans"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			maxSpans = n
		}
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tr.WriteText(w, maxSpans)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tr.WriteJSON(w, maxSpans)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	s.st.reqOther.Add(1)
	io.WriteString(w, `arcserve: a wait-free-read register map over HTTP

  GET    /k/{key}       value bytes
  PUT    /k/{key}       set from request body
  DELETE /k/{key}       delete
  GET    /watch/{key}   SSE value stream (?b64=1 binary-safe; ?poll=5s long-poll)
  GET    /watch         SSE whole-map snapshot-delta stream (JSON)
  GET    /keys          JSON key list
  POST   /compact       compact all shards
  GET    /statz         stats tree (?format=json)
  GET    /metricz       Prometheus text exposition
  GET    /debug/trace   flight-recorder span dump (?format=text, ?spans=N)
  GET    /debug/vars    expvar
`)
}

// ---- stats ----

// Stats returns the server-side node of the observability tree. The
// register-read totals (read_ops/read_fastpath/read_rmw) are folded in
// at pool-release time, so under live traffic they trail the request
// counters by at most the in-flight requests.
func (s *Server) Stats() obs.Snapshot {
	sn := obs.Snapshot{Name: "serve"}
	sn.Put("conns_accepted", s.st.connsAccepted.Load())
	sn.Put("conns_active", clamp(s.st.connsActive.Load()))
	sn.Put("req_get", s.st.reqGet.Load())
	sn.Put("req_put", s.st.reqPut.Load())
	sn.Put("req_delete", s.st.reqDelete.Load())
	sn.Put("req_watch", s.st.reqWatch.Load())
	sn.Put("req_watch_all", s.st.reqWatchAll.Load())
	sn.Put("req_statz", s.st.reqStatz.Load())
	sn.Put("req_other", s.st.reqOther.Load())
	sn.Put("get_hits", s.st.getHits.Load())
	sn.Put("get_misses", s.st.getMisses.Load())
	sn.Put("degraded", s.st.degraded.Load())
	sn.Put("read_ops", s.st.readOps.Load())
	sn.Put("read_fastpath", s.st.readFastPath.Load())
	sn.Put("read_rmw", s.st.readRMW.Load())
	sn.Put("watch_streams", clamp(s.st.watchStreams.Load()))
	sn.Put("watch_events", s.st.watchEvents.Load())
	sn.Put("longpolls", s.st.longPolls.Load())
	sn.Put("shed_writes", s.st.shedWrites.Load())
	sn.Put("shed_watch", s.st.shedWatch.Load())
	sn.Put("aborted", s.st.aborted.Load())
	sn.Put("bytes_out", s.st.bytesOut.Load())

	var depth, sets, deletes, dos, errs uint64
	for si := range s.queues {
		depth += uint64(len(s.queues[si]))
		sets += s.shards[si].sets.Load()
		deletes += s.shards[si].deletes.Load()
		dos += s.shards[si].dos.Load()
		errs += s.shards[si].errs.Load()
	}
	sn.Put("queue_depth", depth)
	sn.Put("queue_cap", uint64(cap(s.queues[0])*len(s.queues)))
	sn.Put("writes_applied", sets)
	sn.Put("deletes_applied", deletes)
	sn.Put("ops_applied", dos)
	sn.Put("write_errors", errs)

	// The watcher backpressure ledgers live on the map's tracker; the
	// conflation total is the serving layer's headline number (slow
	// clients skip, they do not buffer), so surface it here too.
	tsn := s.m.WatchTracker().Stats()
	if v, ok := tsn.Get("conflated"); ok {
		sn.Put("watch_conflated", v)
	}
	if v, ok := tsn.Get("lag_max"); ok {
		sn.Put("watch_lag_max", v)
	}
	return sn
}

// StatsTree returns the combined tree served on /statz and /metricz:
// the serve node, the map's own tree, and the process node (uptime, Go
// version, GOMAXPROCS, build revision) as siblings under one root.
func (s *Server) StatsTree() obs.Snapshot {
	return obs.Snapshot{
		Name:     "arcserve",
		Children: []obs.Snapshot{s.Stats(), s.m.Stats(), obs.ProcessInfo(s.start)},
	}
}

// DebugMux returns the admin-plane mux for a separate debug listener
// (cmd/arcserve -debug-addr): net/http/pprof under /debug/pprof/,
// expvar under /debug/vars, the flight-recorder dump under
// /debug/trace, and /statz + /metricz — the introspection surface
// without the data plane. Everything here is also reachable through
// ServeHTTP except pprof, which stays off the data plane deliberately
// (profiles are privileged and can be heavy).
func (s *Server) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/metricz", s.handleMetricz)
	return mux
}

func clamp(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}
