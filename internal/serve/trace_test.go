package serve

// End-to-end flight-recorder coverage at the serving edge: one logical
// span must be reconstructible from publish to SSE flush across a real
// loopback connection, and the trace surfaces (/debug/trace, /metricz)
// must render it.

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"arcreg/internal/regmap"
	"arcreg/internal/trace"
)

// TestServeTraceEndToEndSpan drives a publish through a traced map into
// a live SSE stream and asserts the recorder threaded one span through
// every stage: publish → tree cascade → watcher wake → conflation
// decision → SSE frame flushed, with stamps and timestamps monotone
// along the causal chain.
func TestServeTraceEndToEndSpan(t *testing.T) {
	s, ts := newTestServer(t, regmap.Config{Trace: true}, Config{})
	c := ts.Client()
	m := s.m

	if err := s.Set("traced", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	br, closeBody := openSSE(t, ctx, c, ts.URL+"/watch/traced")
	defer closeBody()
	if ev, err := readSSE(br); err != nil || ev.name != "value" {
		t.Fatalf("initial event = %v (%v)", ev, err)
	}

	// The watcher is now parked; these publishes must wake it through
	// the fan tree and flush frames back over the wire.
	for i := 0; i < 3; i++ {
		if err := s.Set("traced", []byte("v2")); err != nil {
			t.Fatal(err)
		}
		if ev, err := readSSE(br); err != nil || ev.name != "value" {
			t.Fatalf("delivered event %d = %v (%v)", i, ev, err)
		}
	}

	// The connection goroutine records the flush after writing the
	// frame, so the client can observe the frame first — poll briefly.
	want := uint32(1<<trace.StagePublish | 1<<trace.StageCascade |
		1<<trace.StageWake | 1<<trace.StageConflate | 1<<trace.StageFlush)
	var full trace.Span
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, sp := range m.Tracer().Spans(0) {
			if sp.Stages()&want == want {
				full = sp
				break
			}
		}
		if full.Stamp != 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if full.Stamp == 0 {
		var got []string
		for _, sp := range m.Tracer().Spans(0) {
			var names []string
			for _, ev := range sp.Events {
				names = append(names, ev.Stage.String())
			}
			got = append(got, strings.Join(names, ","))
		}
		t.Fatalf("no span reached all five stages; spans seen: %v", got)
	}

	// Monotonic stamps along the causal chain: every event's TS is at
	// or after the origin publication stamp, and the stages appear in
	// pipeline order.
	order := []trace.Stage{trace.StagePublish, trace.StageCascade, trace.StageWake, trace.StageConflate, trace.StageFlush}
	var prev trace.SpanEvent
	for i, st := range order {
		ev, ok := full.Stage(st)
		if !ok {
			t.Fatalf("span %d missing stage %s", full.Stamp, st)
		}
		if ev.Span != full.Stamp {
			t.Errorf("stage %s carries stamp %d, want %d", st, ev.Span, full.Stamp)
		}
		if ev.TS < full.Stamp {
			t.Errorf("stage %s at TS %d precedes its origin stamp %d", st, ev.TS, full.Stamp)
		}
		if i > 0 && ev.TS < prev.TS {
			t.Errorf("stage %s (TS %d) precedes %s (TS %d)", st, ev.TS, prev.Stage, prev.TS)
		}
		prev = ev
	}

	// The wire surfaces render it: /debug/trace JSON parses and holds
	// spans, the text timeline names stages, and /metricz exposes the
	// trace node as Prometheus samples.
	resp, body := doReq(t, c, "GET", ts.URL+"/debug/trace", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", resp.StatusCode)
	}
	var dump struct {
		Spans []struct {
			Stamp  int64
			Events []struct {
				Ring  string
				Stage string
			}
		}
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("/debug/trace JSON: %v (%.200q)", err, body)
	}
	if len(dump.Spans) == 0 {
		t.Fatal("/debug/trace returned no spans")
	}
	resp, body = doReq(t, c, "GET", ts.URL+"/debug/trace?format=text&spans=8", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "publish") {
		t.Fatalf("/debug/trace text: status %d body %.200q", resp.StatusCode, body)
	}
	resp, body = doReq(t, c, "GET", ts.URL+"/metricz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metricz: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "arcreg_map_trace_") {
		t.Fatalf("/metricz missing trace samples: %.300q", body)
	}
}

// TestServeTraceDisabled pins the untraced default: the map records
// nothing, and /debug/trace says so instead of serving empty dumps.
func TestServeTraceDisabled(t *testing.T) {
	s, ts := newTestServer(t, regmap.Config{}, Config{})
	c := ts.Client()
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	resp, _ := doReq(t, c, "GET", ts.URL+"/debug/trace", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/trace on untraced map: status %d, want 404", resp.StatusCode)
	}
	if tr := s.m.Tracer(); tr != nil {
		t.Fatal("untraced map returned a live Tracer")
	}
}
