package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"arcreg/internal/regmap"
)

// newTestServer builds a map + Server + httptest front end. The
// returned cleanup order matters: the HTTP server first (quiesces
// handlers), the Server second (stops shard writers, closes readers).
func newTestServer(t *testing.T, mcfg regmap.Config, scfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if mcfg.Shards == 0 {
		mcfg.Shards = 2
	}
	if mcfg.MaxReaders == 0 {
		mcfg.MaxReaders = 16
	}
	if mcfg.MaxValueSize == 0 {
		mcfg.MaxValueSize = 128
	}
	m, err := regmap.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Map = m
	if scfg.Readers == 0 {
		scfg.Readers = 4
	}
	if scfg.WatchStreams == 0 {
		scfg.WatchStreams = 8
	}
	s, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(s)
	ts.Config.ConnState = s.ConnState
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doReq(t *testing.T, c *http.Client, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestServeRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, regmap.Config{}, Config{})
	c := ts.Client()

	// Missing key → 404.
	if resp, _ := doReq(t, c, "GET", ts.URL+"/k/absent", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET absent: status %d, want 404", resp.StatusCode)
	}
	// PUT → 204, GET returns the exact bytes.
	val := []byte("hello over the wire")
	if resp, _ := doReq(t, c, "PUT", ts.URL+"/k/greeting", val); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: status %d, want 204", resp.StatusCode)
	}
	resp, body := doReq(t, c, "GET", ts.URL+"/k/greeting", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, val) {
		t.Fatalf("GET: status %d body %q, want 200 %q", resp.StatusCode, body, val)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("GET Content-Type %q", ct)
	}
	// Keys with slashes ride the {key...} wildcard.
	if resp, _ := doReq(t, c, "PUT", ts.URL+"/k/nested/path/key", []byte("x")); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT nested: status %d", resp.StatusCode)
	}
	if _, body := doReq(t, c, "GET", ts.URL+"/k/nested/path/key", nil); string(body) != "x" {
		t.Fatalf("GET nested: body %q", body)
	}
	// Empty key → 400.
	if resp, _ := doReq(t, c, "GET", ts.URL+"/k/", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET empty key: status %d, want 400", resp.StatusCode)
	}
	// Oversized PUT → 413.
	big := make([]byte, 129)
	if resp, _ := doReq(t, c, "PUT", ts.URL+"/k/big", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("PUT oversized: status %d, want 413", resp.StatusCode)
	}
	// DELETE → 204, then 404 on GET and on a second DELETE.
	if resp, _ := doReq(t, c, "DELETE", ts.URL+"/k/greeting", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d, want 204", resp.StatusCode)
	}
	if resp, _ := doReq(t, c, "GET", ts.URL+"/k/greeting", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET deleted: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := doReq(t, c, "DELETE", ts.URL+"/k/greeting", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE deleted: status %d, want 404", resp.StatusCode)
	}
	// /keys lists what's live.
	_, body = doReq(t, c, "GET", ts.URL+"/keys", nil)
	var keys []string
	if err := json.Unmarshal(body, &keys); err != nil {
		t.Fatalf("keys: %v (%q)", err, body)
	}
	if len(keys) != 1 || keys[0] != "nested/path/key" {
		t.Fatalf("keys = %v", keys)
	}
	// POST /compact → 204 and the map counts epochs.
	if resp, _ := doReq(t, c, "POST", ts.URL+"/compact", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("compact: status %d, want 204", resp.StatusCode)
	}
	if ws := s.m.WriteStats(); ws.Compactions == 0 {
		t.Fatal("compact did not reach the map")
	}
	// Index names the routes.
	if _, body := doReq(t, c, "GET", ts.URL+"/", nil); !bytes.Contains(body, []byte("arcserve")) {
		t.Fatalf("index body %q", body)
	}
	// /statz text is non-empty and carries both subtrees; JSON parses.
	_, body = doReq(t, c, "GET", ts.URL+"/statz", nil)
	if !bytes.Contains(body, []byte("serve")) || !bytes.Contains(body, []byte("map")) {
		t.Fatalf("statz text missing subtrees:\n%s", body)
	}
	_, body = doReq(t, c, "GET", ts.URL+"/statz?format=json", nil)
	var tree map[string]any
	if err := json.Unmarshal(body, &tree); err != nil {
		t.Fatalf("statz json: %v (%q)", err, body)
	}
	// The serve node accounts the verbs.
	sn := s.Stats()
	if v, _ := sn.Get("req_put"); v < 2 {
		t.Fatalf("req_put = %d, want >= 2", v)
	}
	if v, _ := sn.Get("get_hits"); v == 0 {
		t.Fatal("get_hits = 0")
	}
	if v, _ := sn.Get("conns_accepted"); v == 0 {
		t.Fatal("conns_accepted = 0 (ConnState not wired?)")
	}
}

// TestServeQueueShed fills a 1-deep shard queue behind a blocked shard
// writer: the overflow PUT must shed with 503 + Retry-After, and the
// queued one must complete once the writer resumes.
func TestServeQueueShed(t *testing.T) {
	s, ts := newTestServer(t, regmap.Config{Shards: 1}, Config{QueueDepth: 1})
	c := ts.Client()

	block := make(chan struct{})
	busy := make(chan struct{})
	go s.Do(0, func(*regmap.Map) error {
		close(busy)
		<-block
		return nil
	})
	<-busy // the shard writer is now occupied

	// One PUT fits the queue; it will park in await.
	firstDone := make(chan int, 1)
	go func() {
		resp, _ := doReq(t, c, "PUT", ts.URL+"/k/queued", []byte("v1"))
		firstDone <- resp.StatusCode
	}()
	// Wait until it occupies the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queues[0]) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued PUT never reached the shard queue")
		}
		time.Sleep(time.Millisecond)
	}
	// The next PUT overflows → shed.
	resp, _ := doReq(t, c, "PUT", ts.URL+"/k/shed", []byte("v2"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow PUT: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if v, _ := s.Stats().Get("shed_writes"); v == 0 {
		t.Fatal("shed_writes = 0")
	}
	close(block)
	if code := <-firstDone; code != http.StatusNoContent {
		t.Fatalf("queued PUT: status %d, want 204", code)
	}
	if _, body := doReq(t, c, "GET", ts.URL+"/k/queued", nil); string(body) != "v1" {
		t.Fatalf("queued value = %q", body)
	}
}

// waitParked blocks until exactly one watch stream is live (the
// long-poll has reached its park) — a fixed sleep here would flake on
// loaded CI machines.
func waitParked(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := s.Stats().Get("watch_streams"); v == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("long-poll never parked")
		}
		time.Sleep(time.Millisecond)
	}
}

// settle gives the handler time to consume the Watch iterator's
// initial current-state yield after the stream gauge flips; a publish
// landing inside that window would be absorbed as "current state" and
// skipped by the long-poll.
func settle() { time.Sleep(20 * time.Millisecond) }

func TestServeLongPoll(t *testing.T) {
	s, ts := newTestServer(t, regmap.Config{}, Config{})
	c := ts.Client()
	if err := s.Set("lp", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Timeout with no change → 204.
	resp, _ := doReq(t, c, "GET", ts.URL+"/watch/lp?poll=100ms", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("long-poll timeout: status %d, want 204", resp.StatusCode)
	}

	// A change during the park → 200 + the new value.
	type outcome struct {
		code int
		body []byte
	}
	got := make(chan outcome, 1)
	go func() {
		resp, body := doReq(t, c, "GET", ts.URL+"/watch/lp?poll=5s", nil)
		got <- outcome{resp.StatusCode, body}
	}()
	waitParked(t, s)
	settle()
	if err := s.Set("lp", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	select {
	case o := <-got:
		if o.code != http.StatusOK || string(o.body) != "v2" {
			t.Fatalf("long-poll change: status %d body %q, want 200 v2", o.code, o.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never returned after a publish")
	}

	// A deletion during the park → 404.
	go func() {
		resp, body := doReq(t, c, "GET", ts.URL+"/watch/lp?poll=5s", nil)
		got <- outcome{resp.StatusCode, body}
	}()
	waitParked(t, s)
	settle()
	if err := s.Delete("lp"); err != nil {
		t.Fatal(err)
	}
	select {
	case o := <-got:
		if o.code != http.StatusNotFound {
			t.Fatalf("long-poll delete: status %d, want 404", o.code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never returned after a delete")
	}
	if v, _ := s.Stats().Get("longpolls"); v < 3 {
		t.Fatalf("longpolls = %d, want >= 3", v)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data []byte
}

// readSSE parses the next event frame (terminated by a blank line).
func readSSE(br *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	var data [][]byte
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if ev.name == "" && len(data) == 0 {
				continue // leading keep-alive blank
			}
			ev.data = bytes.Join(data, []byte("\n"))
			return ev, nil
		case strings.HasPrefix(line, "event: "):
			ev.name = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = append(data, []byte(line[len("data: "):]))
		}
	}
}

// openSSE starts an SSE request and returns a reader over its frames.
func openSSE(t *testing.T, ctx context.Context, c *http.Client, url string) (*bufio.Reader, func()) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("SSE open: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("SSE Content-Type %q", ct)
	}
	return bufio.NewReader(resp.Body), func() { resp.Body.Close() }
}

func TestServeSSEWatchKey(t *testing.T) {
	s, ts := newTestServer(t, regmap.Config{}, Config{})
	c := ts.Client()
	if err := s.Set("feed", []byte("line1\nline2")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	br, closeBody := openSSE(t, ctx, c, ts.URL+"/watch/feed")
	defer closeBody()

	// First event: the current value, multi-line payload split and
	// rejoined across data lines.
	ev, err := readSSE(br)
	if err != nil {
		t.Fatal(err)
	}
	if ev.name != "value" || string(ev.data) != "line1\nline2" {
		t.Fatalf("first event = %q %q", ev.name, ev.data)
	}
	// A publish is delivered.
	if err := s.Set("feed", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if ev, err = readSSE(br); err != nil || ev.name != "value" || string(ev.data) != "v2" {
		t.Fatalf("second event = %q %q (%v)", ev.name, ev.data, err)
	}
	// A delete is an explicit event.
	if err := s.Delete("feed"); err != nil {
		t.Fatal(err)
	}
	if ev, err = readSSE(br); err != nil || ev.name != "deleted" {
		t.Fatalf("delete event = %q (%v)", ev.name, err)
	}
	// Recreation resumes the value stream (binary-safe via b64 on a
	// second stream).
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	raw := []byte{0x00, 0x01, 0xfe, 0xff, '\n', 0x7f}
	if err := s.Set("feed", raw); err != nil {
		t.Fatal(err)
	}
	br2, closeBody2 := openSSE(t, ctx2, c, ts.URL+"/watch/feed?b64=1")
	defer closeBody2()
	ev, err = readSSE(br2)
	if err != nil || ev.name != "value" {
		t.Fatalf("b64 event = %q (%v)", ev.name, err)
	}
	dec, err := base64.StdEncoding.DecodeString(string(ev.data))
	if err != nil || !bytes.Equal(dec, raw) {
		t.Fatalf("b64 payload = %v (%v), want %v", dec, err, raw)
	}
	if v, _ := s.Stats().Get("watch_events"); v < 4 {
		t.Fatalf("watch_events = %d, want >= 4", v)
	}
}

func TestServeWatchAll(t *testing.T) {
	s, ts := newTestServer(t, regmap.Config{}, Config{})
	c := ts.Client()
	if err := s.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	br, closeBody := openSSE(t, ctx, c, ts.URL+"/watch")
	defer closeBody()

	ev, err := readSSE(br)
	if err != nil {
		t.Fatal(err)
	}
	if ev.name != "snapshot" {
		t.Fatalf("first event = %q, want snapshot", ev.name)
	}
	var d struct {
		Values  map[string][]byte
		Deleted []string
		Full    bool
	}
	if err := json.Unmarshal(ev.data, &d); err != nil {
		t.Fatalf("snapshot decode: %v (%q)", err, ev.data)
	}
	if !d.Full || string(d.Values["a"]) != "1" || string(d.Values["b"]) != "2" {
		t.Fatalf("snapshot = %+v", d)
	}
	// A later write arrives as a delta; a delete lands in Deleted.
	if err := s.Set("c", []byte("3")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	sawC, sawDelA := false, false
	for i := 0; i < 4 && !(sawC && sawDelA); i++ {
		ev, err := readSSE(br)
		if err != nil {
			t.Fatal(err)
		}
		if ev.name != "delta" {
			t.Fatalf("event %d = %q, want delta", i, ev.name)
		}
		var d struct {
			Values  map[string][]byte
			Deleted []string
			Full    bool
		}
		if err := json.Unmarshal(ev.data, &d); err != nil {
			t.Fatal(err)
		}
		if string(d.Values["c"]) == "3" {
			sawC = true
		}
		for _, k := range d.Deleted {
			if k == "a" {
				sawDelA = true
			}
		}
	}
	if !sawC || !sawDelA {
		t.Fatalf("deltas missed changes: sawC=%v sawDelA=%v", sawC, sawDelA)
	}
}

// TestServeWatchShed caps streams at 1: the second concurrent watch
// must shed with 503 and the slot must come back after disconnect.
func TestServeWatchShed(t *testing.T) {
	s, ts := newTestServer(t, regmap.Config{}, Config{WatchStreams: 1})
	c := ts.Client()
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	br, closeBody := openSSE(t, ctx, c, ts.URL+"/watch/k")
	if _, err := readSSE(br); err != nil {
		t.Fatal(err)
	}
	resp, _ := doReq(t, c, "GET", ts.URL+"/watch/k?poll=100ms", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second stream: status %d, want 503", resp.StatusCode)
	}
	if v, _ := s.Stats().Get("shed_watch"); v == 0 {
		t.Fatal("shed_watch = 0")
	}
	cancel()
	closeBody()
	// The slot frees once the stream unwinds.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, _ := s.Stats().Get("watch_streams"); v == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch stream slot never released after disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServeExpvar(t *testing.T) {
	name := fmt.Sprintf("arcserve-test-%d", time.Now().UnixNano())
	_, ts := newTestServer(t, regmap.Config{}, Config{ExpvarName: name})
	c := ts.Client()
	resp, body := doReq(t, c, "GET", ts.URL+"/debug/vars", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars: status %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(name)) {
		t.Fatalf("debug/vars missing %q", name)
	}
}
