package serve

// The serving-layer guard tests, continuing the PR 7 discipline: the
// acceptance claims ("a steady-state GET performs 0 RMW on the
// register read", "the response path is 0 alloc for an unchanged
// value", "slow streams conflate instead of buffering") are pinned by
// tests, not prose.

import (
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"

	"arcreg/internal/fault"
	"arcreg/internal/regmap"
)

// TestServeHotGetZeroRMW drives real HTTP GETs of an unchanged key
// through a 1-reader pool and asserts — via the ReadStats deltas the
// pool folds in at release time — that the register reads behind them
// executed zero RMW instructions and all rode the fast path. This is
// the wire-level restatement of the paper's R1–R2 claim: the network
// edge adds syscalls, but not contention on the register.
func TestServeHotGetZeroRMW(t *testing.T) {
	s, ts := newTestServer(t, regmap.Config{Shards: 1, MaxReaders: 4}, Config{Readers: 1, WatchStreams: 2})
	c := ts.Client()
	if err := s.Set("hot", []byte("steady")); err != nil {
		t.Fatal(err)
	}
	// Warm: the first Get decodes the directory and the value; the
	// second proves freshness. Two requests through the single pooled
	// handle leave it steady for the key.
	for i := 0; i < 3; i++ {
		if resp, _ := doReq(t, c, "GET", ts.URL+"/k/hot", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("warm GET: status %d", resp.StatusCode)
		}
	}
	before := s.Stats()
	bOps, _ := before.Get("read_ops")
	bFast, _ := before.Get("read_fastpath")
	bRMW, _ := before.Get("read_rmw")

	const n = 64
	for i := 0; i < n; i++ {
		resp, body := doReq(t, c, "GET", ts.URL+"/k/hot", nil)
		if resp.StatusCode != http.StatusOK || string(body) != "steady" {
			t.Fatalf("GET %d: status %d body %q", i, resp.StatusCode, body)
		}
	}
	after := s.Stats()
	aOps, _ := after.Get("read_ops")
	aFast, _ := after.Get("read_fastpath")
	aRMW, _ := after.Get("read_rmw")

	if got := aRMW - bRMW; got != 0 {
		t.Fatalf("steady-state GETs executed %d RMW on the register read, want 0", got)
	}
	if got := aOps - bOps; got < n {
		t.Fatalf("read_ops advanced %d, want >= %d", got, n)
	}
	if got := aFast - bFast; got < n {
		t.Fatalf("read_fastpath advanced %d, want >= %d (every unchanged GET must ride the fast path)", got, n)
	}
}

// nullRW is a reusable ResponseWriter: a persistent header map and a
// discarding body, so AllocsPerRun measures only the serving path.
type nullRW struct {
	h http.Header
	n int
}

func (w *nullRW) Header() http.Header         { return w.h }
func (w *nullRW) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
func (w *nullRW) WriteHeader(int)             {}

// TestServeResponsePathZeroAlloc pins the hot GET response path —
// wait-free read, header assign, view write — at zero allocations per
// request for an unchanged value. net/http's connection machinery
// allocates around it; the serving path itself must not add to that.
func TestServeResponsePathZeroAlloc(t *testing.T) {
	m, err := regmap.New(regmap.Config{Shards: 1, MaxReaders: 2, MaxValueSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Map: m, Readers: 1, WatchStreams: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Set("hot", []byte("unchanged value bytes")); err != nil {
		t.Fatal(err)
	}
	c := <-s.pool
	defer func() { s.pool <- c }()
	w := &nullRW{h: make(http.Header)}
	s.writeKeyValue(w, c, "hot") // warm: first Get decodes
	if w.n == 0 {
		t.Fatal("warm write produced no body")
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.writeKeyValue(w, c, "hot")
	})
	if allocs != 0 {
		t.Fatalf("hot GET response path allocates %.1f/op, want 0", allocs)
	}
}

// TestServeSlowClientConflation is the ledger-backed backpressure
// test: a deliberately slow SSE client (stall injection on every
// event write — the serve/slow-client point) against a back-to-back
// in-process writer. The stream must conflate (deliveries < publishes,
// conflated > 0 in the watcher ledger), lag must stay bounded by the
// published count, and server memory must stay flat — the server
// buffers nothing per client.
func TestServeSlowClientConflation(t *testing.T) {
	sched, err := fault.NewSchedule(42,
		fault.Rule{Point: FaultSlowClient, Kind: fault.Stall, Every: 1, Stall: 2 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, regmap.Config{Shards: 1, MaxReaders: 6}, Config{Readers: 2, WatchStreams: 2})
	c := ts.Client()
	if err := s.Set("storm", []byte("v0")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	br, closeBody := openSSE(t, ctx, c, ts.URL+"/watch/storm")
	defer closeBody()
	if _, err := readSSE(br); err != nil { // initial value
		t.Fatal(err)
	}

	runtime.GC()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	sched.Arm()
	stop := make(chan struct{})
	done := make(chan uint64, 1)
	go func() {
		buf := make([]byte, 64)
		var writes uint64
		for {
			select {
			case <-stop:
				done <- writes
				return
			default:
			}
			buf[0] = byte(writes)
			if err := s.Set("storm", buf); err != nil {
				t.Error(err)
				done <- writes
				return
			}
			writes++
		}
	}()
	// Drain the slow stream for a fixed window; every frame costs a
	// 2ms injected stall on the server side, so the writer laps the
	// stream thousands of times over.
	drained := 0
	windowEnd := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(windowEnd) {
		if _, err := readSSE(br); err != nil {
			t.Fatalf("stream died mid-storm: %v", err)
		}
		drained++
	}
	close(stop)
	writes := <-done
	sched.Disarm()

	if drained == 0 || writes == 0 {
		t.Fatalf("storm produced nothing: drained=%d writes=%d", drained, writes)
	}
	// The live ledger: conflation happened, and lag is bounded by what
	// was actually published (the invariant observed ≤ published caps
	// it structurally; assert it directly too).
	sn := s.Stats()
	conflated, _ := sn.Get("watch_conflated")
	lagMax, _ := sn.Get("watch_lag_max")
	if conflated == 0 {
		t.Fatalf("slow stream conflated nothing across %d writes (%d drained)", writes, drained)
	}
	if lagMax > writes+1 {
		t.Fatalf("lag_max %d exceeds published %d", lagMax, writes)
	}
	if uint64(drained) >= writes {
		t.Fatalf("slow stream drained %d >= %d writes — no conflation pressure generated", drained, writes)
	}

	// Memory flat: the server held no per-client backlog. The bound is
	// generous (the test process itself churns), but an unbounded
	// per-event queue at thousands of skipped publications would blow
	// far past it.
	runtime.GC()
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	const memSlack = 8 << 20
	if msAfter.HeapAlloc > msBefore.HeapAlloc+memSlack {
		t.Fatalf("heap grew %d bytes across the storm (before %d, after %d) — slow client buffered?",
			msAfter.HeapAlloc-msBefore.HeapAlloc, msBefore.HeapAlloc, msAfter.HeapAlloc)
	}
}
