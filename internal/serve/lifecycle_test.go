package serve

// Serving-path lifecycle coverage: the map's hard lifecycle machinery
// (compaction epochs, delete/recreate churn, corrupt-latch repair)
// exercised through real HTTP connections, under -race. The claims:
// views survive reader rebase mid-response, deleted values never
// resurrect over the wire, watch streams ride out corrupt-repair
// episodes, and disconnected clients leave no goroutines behind.

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arcreg/internal/membuf"
	"arcreg/internal/regmap"
)

// TestServeLifecycleChurnRace races HTTP GET/PUT/DELETE clients, an
// SSE watcher and a compaction loop (routed through the shard writer
// queues) against each other. Every observed value must verify
// (torn-read detection) with per-key monotone versions — a stale view
// served after a delete+recreate would regress, a resurrected tombstone
// would verify against an old version.
func TestServeLifecycleChurnRace(t *testing.T) {
	restore := regmap.SetDirCapacity(2048)
	defer restore()
	s, ts := newTestServer(t,
		regmap.Config{Shards: 2, MaxReaders: 24, MaxValueSize: 64},
		Config{Readers: 4, WatchStreams: 4, QueueDepth: 256})
	c := ts.Client()

	keys := []string{"churn-0", "churn-1", "churn-2", "stable"}
	var version atomic.Uint64
	put := func(key string) error {
		b := make([]byte, 64)
		membuf.Encode(b, version.Add(1))
		resp, body := doReq(t, c, "PUT", ts.URL+"/k/"+key, b)
		switch resp.StatusCode {
		case http.StatusNoContent:
			return nil
		case http.StatusServiceUnavailable:
			return errShed
		default:
			return fmt.Errorf("PUT %s: status %d: %s", key, resp.StatusCode, body)
		}
	}
	for _, k := range keys {
		if err := put(k); err != nil {
			t.Fatal(err)
		}
	}

	var failures atomic.Uint64
	fail := func(format string, args ...any) {
		if failures.Add(1) == 1 {
			t.Errorf(format, args...)
		}
	}
	stop := make(chan struct{})
	// churn tracks the stop-driven goroutines (readers, writer,
	// compactor); wg tracks the watcher, which outlives them. The final
	// publication below must not race the writer's last round through
	// the shard queue — two in-flight PUTs to the stable key can apply
	// in either order, which would be a genuine (test-inflicted)
	// version regression on the stream — so teardown drains churn
	// before stamping the final version.
	var churn, wg sync.WaitGroup

	// HTTP readers: verify every body, track per-key monotonicity.
	for r := 0; r < 2; r++ {
		churn.Add(1)
		go func(id int) {
			defer churn.Done()
			last := make(map[string]uint64)
			var i int
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := keys[i%len(keys)]
				i++
				resp, body := doReq(t, c, "GET", ts.URL+"/k/"+key, nil)
				switch resp.StatusCode {
				case http.StatusNotFound:
					continue // deleted; recreation carries a newer version
				case http.StatusOK:
				default:
					fail("reader %d: GET %s: status %d", id, key, resp.StatusCode)
					return
				}
				ver, err := membuf.Verify(body)
				if err != nil {
					fail("reader %d: torn value over the wire for %s: %v", id, key, err)
					return
				}
				if ver < last[key] {
					fail("reader %d: %s version regressed %d after %d (resurrection over the wire?)",
						id, key, ver, last[key])
					return
				}
				last[key] = ver
			}
		}(r)
	}

	// SSE watcher on the stable key (never deleted): versions must stay
	// monotone across however many compaction epochs run underneath.
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	var lastWatched atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		br, closeBody := openSSE(t, wctx, c, ts.URL+"/watch/stable?b64=1")
		defer closeBody()
		var last uint64
		for {
			ev, err := readSSE(br)
			if err != nil {
				return // stream ended (cancel at teardown)
			}
			if ev.name != "value" {
				fail("watcher: unexpected event %q", ev.name)
				return
			}
			raw, derr := base64.StdEncoding.DecodeString(string(ev.data))
			if derr != nil {
				fail("watcher: bad b64: %v", derr)
				return
			}
			ver, verr := membuf.Verify(raw)
			if verr != nil {
				fail("watcher: torn value: %v", verr)
				return
			}
			if ver < last {
				fail("watcher: version regressed %d after %d", ver, last)
				return
			}
			last = ver
			lastWatched.Store(ver)
		}
	}()

	// Writer: sequential PUTs with delete/recreate churn. One goroutine
	// issues all writes so per-key versions are globally ordered; the
	// server's shard queues serialize them onto the shard writers.
	churn.Add(1)
	go func() {
		defer churn.Done()
		var round int
		for {
			select {
			case <-stop:
				return
			default:
			}
			round++
			key := keys[round%len(keys)]
			if err := put(key); err != nil && err != errShed {
				fail("writer: %v", err)
				return
			}
			if round%8 == 0 {
				victim := keys[(round/8)%(len(keys)-1)] // never the stable key
				resp, _ := doReq(t, c, "DELETE", ts.URL+"/k/"+victim, nil)
				switch resp.StatusCode {
				case http.StatusNoContent, http.StatusNotFound, http.StatusServiceUnavailable:
				default:
					fail("writer: DELETE %s: status %d", victim, resp.StatusCode)
					return
				}
			}
		}
	}()

	// Compactor: epochs through the writer queues, racing everything.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Compact(); err != nil && !errors.Is(err, errClosed) {
				fail("compactor: %v", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	time.Sleep(800 * time.Millisecond)
	close(stop)
	churn.Wait() // writer's last round is fully acknowledged
	// Final publication must reach the watcher through all the churn.
	final := version.Add(1)
	fb := make([]byte, 64)
	membuf.Encode(fb, final)
	if err := s.Set("stable", fb); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for lastWatched.Load() < final {
		if time.Now().After(deadline) {
			t.Fatalf("watcher never saw the final value (saw %d, want %d)", lastWatched.Load(), final)
		}
		time.Sleep(time.Millisecond)
	}
	// No resurrection: delete a churn key, then its GET must 404 — the
	// DELETE response means the shard writer applied and published it.
	resp, _ := doReq(t, c, "DELETE", ts.URL+"/k/churn-0", nil)
	if resp.StatusCode == http.StatusNoContent {
		if resp, body := doReq(t, c, "GET", ts.URL+"/k/churn-0", nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET after acknowledged DELETE: status %d body %q, want 404", resp.StatusCode, body)
		}
	}
	wcancel()
	wg.Wait()
	if ws := s.m.WriteStats(); ws.Compactions == 0 {
		t.Fatal("lifecycle race ran without a single compaction epoch")
	}
}

var errShed = errors.New("shed")

// TestServeWatchAcrossCorruptRepair degrades a shard under a live SSE
// stream (corruption injected through the shard writer's Do — the
// publisher role), repairs it with a compaction, and requires the
// stream to resume: degraded event, then the next genuine value.
func TestServeWatchAcrossCorruptRepair(t *testing.T) {
	s, ts := newTestServer(t,
		regmap.Config{Shards: 1, MaxReaders: 8, MaxValueSize: 64},
		Config{Readers: 2, WatchStreams: 2})
	c := ts.Client()
	v1 := bytes.Repeat([]byte("a"), 32)
	if err := s.Set("watched", v1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	br, closeBody := openSSE(t, ctx, c, ts.URL+"/watch/watched?b64=1")
	defer closeBody()
	ev, err := readSSE(br)
	if err != nil || ev.name != "value" {
		t.Fatalf("initial event = %q (%v)", ev.name, err)
	}

	// Corrupt the shard's directory through the writer queue.
	if err := s.Do(0, func(m *regmap.Map) error { return m.InjectDirectoryCorruption(0) }); err != nil {
		t.Fatal(err)
	}
	if ev, err = readSSE(br); err != nil || ev.name != "degraded" {
		t.Fatalf("post-corruption event = %q (%v), want degraded", ev.name, err)
	}
	// While degraded, a GET answers 503 + Retry-After.
	resp, _ := doReq(t, c, "GET", ts.URL+"/k/watched", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded GET: status %d Retry-After %q, want 503 + hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Repair (compaction through the queues), then a fresh publication
	// must flow to both the stream and plain GETs.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	v2 := bytes.Repeat([]byte("b"), 32)
	if err := s.Set("watched", v2); err != nil {
		t.Fatal(err)
	}
	for {
		ev, err = readSSE(br)
		if err != nil {
			t.Fatalf("stream died after repair: %v", err)
		}
		if ev.name != "value" {
			continue // a second degraded yield is permissible mid-episode
		}
		raw, derr := base64.StdEncoding.DecodeString(string(ev.data))
		if derr != nil {
			t.Fatal(derr)
		}
		if bytes.Equal(raw, v2) {
			break
		}
	}
	if resp, body := doReq(t, c, "GET", ts.URL+"/k/watched", nil); resp.StatusCode != http.StatusOK || !bytes.Equal(body, v2) {
		t.Fatalf("post-repair GET: status %d body %q", resp.StatusCode, body)
	}
	if v, _ := s.Stats().Get("degraded"); v == 0 {
		t.Fatal("degraded counter never moved")
	}
}

// TestServeDisconnectGoroutineHygiene opens SSE streams over real
// connections, severs the clients, and requires every server-side
// stream goroutine (and its reader handle and semaphore slot) back
// within a bounded wait — the leak guard for the disconnect path.
func TestServeDisconnectGoroutineHygiene(t *testing.T) {
	s, ts := newTestServer(t,
		regmap.Config{Shards: 1, MaxReaders: 16, MaxValueSize: 64},
		Config{Readers: 2, WatchStreams: 8})
	c := ts.Client()
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	baseline := runtime.NumGoroutine()

	const streams = 6
	cancels := make([]context.CancelFunc, 0, streams)
	closers := make([]func(), 0, streams)
	for i := 0; i < streams; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		br, closeBody := openSSE(t, ctx, c, ts.URL+"/watch/k")
		if _, err := readSSE(br); err != nil {
			t.Fatal(err)
		}
		cancels = append(cancels, cancel)
		closers = append(closers, closeBody)
	}
	if v, _ := s.Stats().Get("watch_streams"); v != streams {
		t.Fatalf("watch_streams = %d, want %d", v, streams)
	}
	live := s.m.LiveReaders()
	for i := range cancels {
		cancels[i]() // abrupt client disconnect
		closers[i]()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, _ := s.Stats().Get("watch_streams")
		n := runtime.NumGoroutine()
		// FanRelays must also drain: every stream's Watch session held
		// wakeup-tree leaf subscriptions, and their relay helpers leak
		// exactly like stream goroutines would. (Quiescent here: no
		// writer runs after the disconnects.)
		if v == 0 && n <= baseline+4 && s.m.LiveReaders() <= live-streams && s.m.FanRelays() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnect leak: watch_streams=%d goroutines=%d (baseline %d) live readers=%d (was %d) fan relays=%d",
				v, n, baseline, s.m.LiveReaders(), live, s.m.FanRelays())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
