package peterson

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"arcreg/internal/membuf"
	"arcreg/internal/register"
)

func newReg(t testing.TB, readers, size int) *Register {
	t.Helper()
	r, err := New(register.Config{MaxReaders: readers, MaxValueSize: size})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func readAll(t *testing.T, rd *Reader, size int) []byte {
	t.Helper()
	dst := make([]byte, size)
	n, err := rd.Read(dst)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return dst[:n]
}

func TestInitialValue(t *testing.T) {
	r, err := New(register.Config{MaxReaders: 2, MaxValueSize: 32, Initial: []byte("genesis")})
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := r.NewReaderHandle()
	if got := readAll(t, rd, 32); string(got) != "genesis" {
		t.Fatalf("initial read %q", got)
	}
}

func TestReadReturnsLastWrite(t *testing.T) {
	r := newReg(t, 2, 128)
	rd, _ := r.NewReaderHandle()
	for i := 0; i < 200; i++ {
		val := []byte(fmt.Sprintf("value-%04d", i))
		if err := r.Write(val); err != nil {
			t.Fatal(err)
		}
		if got := readAll(t, rd, 128); !bytes.Equal(got, val) {
			t.Fatalf("iteration %d: read %q, want %q", i, got, val)
		}
	}
}

func TestVariableSizes(t *testing.T) {
	r := newReg(t, 1, 256)
	rd, _ := r.NewReaderHandle()
	for _, n := range []int{0, 1, 3, 7, 8, 9, 255, 256, 17} {
		val := bytes.Repeat([]byte{byte(n)}, n)
		if err := r.Write(val); err != nil {
			t.Fatal(err)
		}
		got := readAll(t, rd, 256)
		if !bytes.Equal(got, val) {
			t.Fatalf("size %d: read %d bytes, mismatch", n, len(got))
		}
	}
}

// Peterson never executes an RMW instruction — it predates their use and
// the ARC paper classifies it accordingly.
func TestZeroRMW(t *testing.T) {
	r := newReg(t, 2, 64)
	rd, _ := r.NewReaderHandle()
	for i := 0; i < 50; i++ {
		if err := r.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		readAll(t, rd, 64)
	}
	if st := rd.ReadStats(); st.RMW != 0 {
		t.Fatalf("read RMW = %d, want 0", st.RMW)
	}
	if ws := r.WriteStats(); ws.RMW != 0 {
		t.Fatalf("write RMW = %d, want 0", ws.RMW)
	}
}

// The writer copy-out scan visits every reader slot per write: O(N).
func TestWriterScanLinearInN(t *testing.T) {
	small := newReg(t, 2, 8)
	large := newReg(t, 64, 8)
	for i := 0; i < 10; i++ {
		small.Write([]byte{1})
		large.Write([]byte{1})
	}
	if s, l := small.WriteStats().ScanSteps, large.WriteStats().ScanSteps; l < s*8 {
		t.Fatalf("scan steps: N=2 → %d, N=64 → %d; not linear in N", s, l)
	}
}

// A pending announce is served at most once per write, and only for
// readers that announced.
func TestCopyOutsOnlyForAnnouncedReaders(t *testing.T) {
	r := newReg(t, 4, 16)
	rd, _ := r.NewReaderHandle()
	if err := r.Write([]byte("a")); err != nil { // nobody announced yet
		t.Fatal(err)
	}
	if co := r.WriteStats().CopyOuts; co != 0 {
		t.Fatalf("copy-outs before any read = %d", co)
	}
	readAll(t, rd, 16) // announces; clean read, but announce stays pending-capable
	r.Write([]byte("b"))
	co1 := r.WriteStats().CopyOuts
	if co1 != 1 {
		t.Fatalf("copy-outs after announced reader = %d, want 1", co1)
	}
	// Without a new read (new announce), further writes must not copy out.
	r.Write([]byte("c"))
	r.Write([]byte("d"))
	if co := r.WriteStats().CopyOuts; co != co1 {
		t.Fatalf("copy-outs grew to %d without a new announce", co)
	}
}

// Deterministic retry: a write landing inside the first attempt window
// dirties it; the second attempt is clean.
func TestRetryPath(t *testing.T) {
	r := newReg(t, 1, 64)
	rd, _ := r.NewReaderHandle()
	if err := r.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	fired := false
	rd.hookAfterVersionLoad = func(attempt int) {
		if attempt == 0 && !fired {
			fired = true
			if err := r.Write([]byte("second")); err != nil {
				t.Error(err)
			}
		}
	}
	got := readAll(t, rd, 64)
	if string(got) != "second" {
		t.Fatalf("read %q after mid-read write, want %q", got, "second")
	}
	st := rd.ReadStats()
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d, want 0", st.Fallbacks)
	}
}

// Deterministic fallback: writes inside both attempt windows force the
// handoff path. The result must be the value of the write that consumed
// the announce (the first write to scan after it).
func TestFallbackPath(t *testing.T) {
	r := newReg(t, 1, 64)
	rd, _ := r.NewReaderHandle()
	if err := r.Write([]byte("v0")); err != nil {
		t.Fatal(err)
	}
	step := 0
	rd.hookAfterVersionLoad = func(attempt int) {
		step++
		if err := r.Write([]byte(fmt.Sprintf("mid-%d", step))); err != nil {
			t.Error(err)
		}
	}
	got := readAll(t, rd, 64)
	// The announce was pending when "mid-1" was written, so its scan
	// consumed the announce with value "mid-1".
	if string(got) != "mid-1" {
		t.Fatalf("fallback returned %q, want %q", got, "mid-1")
	}
	st := rd.ReadStats()
	if st.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", st.Fallbacks)
	}
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
	// A subsequent undisturbed read returns the freshest value cleanly.
	rd.hookAfterVersionLoad = nil
	if got := readAll(t, rd, 64); string(got) != "mid-2" {
		t.Fatalf("follow-up read %q, want %q", got, "mid-2")
	}
}

// The fallback value must never be older than a value the same reader
// already returned (per-process monotonicity through the handoff).
func TestFallbackMonotoneWithPriorReads(t *testing.T) {
	r := newReg(t, 1, 128)
	rd, _ := r.NewReaderHandle()
	buf := make([]byte, 128)
	membuf.Encode(buf, 1)
	r.Write(buf)
	first := readAll(t, rd, 128) // clean read of version 1
	if v, err := membuf.Verify(first); err != nil || v != 1 {
		t.Fatalf("first read: version=%d err=%v", v, err)
	}
	next := uint64(2)
	rd.hookAfterVersionLoad = func(int) {
		membuf.Encode(buf, next)
		r.Write(buf)
		next++
	}
	got := readAll(t, rd, 128)
	v, err := membuf.Verify(got)
	if err != nil {
		t.Fatalf("fallback read torn: %v", err)
	}
	if v < 1 {
		t.Fatalf("fallback regressed to version %d", v)
	}
}

func TestBufferTooSmall(t *testing.T) {
	r := newReg(t, 1, 64)
	rd, _ := r.NewReaderHandle()
	r.Write([]byte("0123456789"))
	n, err := rd.Read(make([]byte, 4))
	if !errors.Is(err, register.ErrBufferTooSmall) {
		t.Fatalf("err = %v", err)
	}
	if n != 10 {
		t.Fatalf("needed = %d, want 10", n)
	}
}

func TestWriteTooLarge(t *testing.T) {
	r := newReg(t, 1, 8)
	if err := r.Write(make([]byte, 9)); !errors.Is(err, register.ErrValueTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestBufferCount(t *testing.T) {
	r := newReg(t, 5, 8)
	if got := r.BufferCount(); got != 7 {
		t.Fatalf("buffer count = %d, want N+2 = 7", got)
	}
}

func TestReaderIDRecycling(t *testing.T) {
	r := newReg(t, 2, 8)
	a, _ := r.NewReaderHandle()
	b, _ := r.NewReaderHandle()
	if _, err := r.NewReader(); !errors.Is(err, register.ErrTooManyReaders) {
		t.Fatalf("third handle: %v", err)
	}
	id := a.ID()
	a.Close()
	c, err := r.NewReaderHandle()
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() != id {
		t.Fatalf("recycled id %d, want %d", c.ID(), id)
	}
	_ = b
}

func TestClosedReaderErrors(t *testing.T) {
	r := newReg(t, 1, 8)
	rd, _ := r.NewReaderHandle()
	rd.Close()
	if _, err := rd.Read(make([]byte, 8)); !errors.Is(err, register.ErrReaderClosed) {
		t.Fatalf("Read after close: %v", err)
	}
	if err := rd.Close(); !errors.Is(err, register.ErrReaderClosed) {
		t.Fatalf("double close: %v", err)
	}
}

// Sequential model check against last-written-value semantics.
func TestSequentialModelQuick(t *testing.T) {
	f := func(ops []byte) bool {
		r, err := New(register.Config{MaxReaders: 2, MaxValueSize: 64})
		if err != nil {
			return false
		}
		rd, err := r.NewReaderHandle()
		if err != nil {
			return false
		}
		model := []byte{0}
		dst := make([]byte, 64)
		for _, op := range ops {
			if op%2 == 0 {
				val := bytes.Repeat([]byte{op}, 1+int(op)%32)
				if r.Write(val) != nil {
					return false
				}
				model = val
			} else {
				n, err := rd.Read(dst)
				if err != nil || !bytes.Equal(dst[:n], model) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent torture: payload integrity and per-reader monotonicity while
// the writer hammers the register. Large values stretch the attempt
// windows, exercising retries and fallbacks under real concurrency.
func TestConcurrentIntegrity(t *testing.T) {
	const (
		readers = 6
		writes  = 1200
		size    = 1024
	)
	r := newReg(t, readers, size)
	seed := make([]byte, size)
	membuf.Encode(seed, 0)
	if err := r.Write(seed); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		rd, err := r.NewReaderHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]byte, size)
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				n, err := rd.Read(dst)
				if err != nil {
					errs <- err
					return
				}
				ver, err := membuf.Verify(dst[:n])
				if err != nil {
					errs <- fmt.Errorf("torn read: %w", err)
					return
				}
				if ver < last {
					errs <- fmt.Errorf("version regressed: %d after %d", ver, last)
					return
				}
				last = ver
			}
		}()
	}
	buf := make([]byte, size)
	for i := uint64(1); i <= writes; i++ {
		membuf.Encode(buf, i)
		if err := r.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestName(t *testing.T) {
	r := newReg(t, 1, 8)
	if r.Name() != "peterson" {
		t.Fatalf("Name() = %q", r.Name())
	}
	if r.Writer() == nil || r.MaxReaders() != 1 || r.MaxValueSize() != 8 {
		t.Fatal("accessors wrong")
	}
}
