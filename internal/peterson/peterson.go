// Package peterson implements a wait-free multi-word atomic (1,N) register
// in the style of Peterson's "Concurrent Reading While Writing" (ACM
// TOPLAS 1983) — the classical baseline the ARC paper compares against.
//
// # Model
//
// Peterson's construction predates hardware RMW adoption: it builds a
// multi-word register exclusively from single-word atomic read/write
// registers. This implementation stays inside that model — every shared
// word is accessed with a plain atomic load or store, and no RMW
// instruction is ever executed (ReadStats.RMW is always zero). Value
// buffers are arrays of 64-bit words accessed word-by-word, which is
// exactly the "array of single-word registers" the 1983 model prescribes;
// torn multi-word reads are possible by construction and are what the
// protocol detects and repairs.
//
// # Protocol
//
// The writer double-buffers the value and publishes through a monotone
// version word. Where Peterson used the boolean pair WFLAG/SWITCH as a
// two-phase clock, we use a single 64-bit version counter — the same
// information without wraparound case analysis; costs are unchanged.
//
//	write w:  copy value into buf[w%2] (word stores), then VER := w,
//	          then for every reader with a pending announce: copy the
//	          value into that reader's copy buffer and consume the
//	          announce.
//
//	read:     announce (READING[i] := ¬WRITING[i]); then up to two
//	          optimistic attempts, each a double collect
//	          (v := VER; copy buf[v%2]; v' := VER; clean iff v' == v);
//	          if both attempts are dirty, return the per-reader copy
//	          buffer, whose announce is then provably consumed.
//
// Why the clean attempt is untorn: writes store VER only after completing
// their buffer copy, and consecutive writes alternate buffers, so observing
// the same version before and after the copy means the source buffer held
// write v's complete value throughout (write v+1 targets the other buffer,
// and write v+2 cannot start before v+1 publishes, which would dirty the
// attempt).
//
// Why the fallback is safe: each dirty attempt brackets a distinct VER
// store; the write issuing the first store finishes its copy-out scan
// before the write issuing the second store begins, and that scan runs
// after the reader's announce — so by fallback time the announce has been
// consumed, meaning the copy into this reader's buffer completed and no
// writer touches it again until the reader's next announce. The returned
// value is that of a write concurrent with this read — linearizable, and
// never older than anything the reader returned before.
//
// # Costs (what the ARC paper measures)
//
// Reads perform one or two full-buffer copies, occasionally three (the
// fallback) — "it must be carried out multiple times (e.g., 2 times in
// [11])" (ARC paper §2). The writer performs one full copy plus up to N
// copy-outs. These extra copies are precisely the locality/caching cost
// that makes Peterson degrade with register size in Figures 1–3, and that
// ARC's zero-copy reads avoid. Buffer footprint: N+2 (two main + N
// per-reader), coinciding with the classical lower bound.
package peterson

import (
	"fmt"
	"sync"

	"arcreg/internal/membuf"
	"arcreg/internal/pad"
	"arcreg/internal/register"
)

// MaxReaders bounds reader handles; Peterson's construction scales with
// memory, not with a word width, so the bound is administrative.
const MaxReaders = 1 << 20

// Register is the Peterson-style (1,N) register.
type Register struct {
	// ver is the publication clock; buf[ver%2] holds the freshest value.
	ver pad.PaddedUint64

	// bufs are the two alternating main buffers; word 0 is the value
	// length in bytes, the rest is data. All access is word-atomic.
	bufs [2][]uint64

	// Per-reader handshake state and copy buffers.
	reading []pad.PaddedUint32 // written by reader i only
	writing []pad.PaddedUint32 // written by the writer only
	copybuf [][]uint64

	maxReaders   int
	maxValueSize int
	words        int // words per buffer (1 size word + data words)

	// Writer-local state.
	seq    uint64 // last published version
	wstats register.WriteStats

	mu      sync.Mutex
	freeIDs []int
}

var (
	_ register.Register   = (*Register)(nil)
	_ register.Writer     = (*Register)(nil)
	_ register.StatWriter = (*Register)(nil)
	_ register.Reader     = (*Reader)(nil)
	_ register.StatReader = (*Reader)(nil)
)

// New constructs a Peterson register.
func New(cfg register.Config) (*Register, error) {
	if err := cfg.Validate(MaxReaders); err != nil {
		return nil, err
	}
	initial := cfg.InitialOrDefault()
	if cfg.MaxValueSize < len(initial) {
		cfg.MaxValueSize = len(initial)
	}
	n := cfg.MaxReaders
	words := membuf.WordsFor(cfg.MaxValueSize)
	r := &Register{
		reading:      make([]pad.PaddedUint32, n),
		writing:      make([]pad.PaddedUint32, n),
		copybuf:      membuf.WordMatrix(n, words),
		maxReaders:   n,
		maxValueSize: cfg.MaxValueSize,
		words:        words,
		freeIDs:      make([]int, 0, n),
	}
	r.bufs[0] = membuf.AlignedWords(words)
	r.bufs[1] = membuf.AlignedWords(words)
	for id := n - 1; id >= 0; id-- {
		r.freeIDs = append(r.freeIDs, id)
	}
	// Version 0's buffer and every copy buffer hold the initial value, so
	// a reader that falls back before the first write still returns it.
	membuf.StoreWords(r.bufs[0], initial)
	for i := range r.copybuf {
		membuf.StoreWords(r.copybuf[i], initial)
	}
	r.ver.Store(0)
	return r, nil
}

// Name implements register.Register.
func (r *Register) Name() string { return "peterson" }

// Caps implements register.CapabilityReporter: Peterson reads inherently
// copy (no views, no freshness probe) but every operation is wait-free.
func (r *Register) Caps() register.Caps {
	return register.Caps{
		ReadStats:     true,
		WriteStats:    true,
		WaitFreeRead:  true,
		WaitFreeWrite: true,
	}
}

// MaxReaders implements register.Register.
func (r *Register) MaxReaders() int { return r.maxReaders }

// MaxValueSize implements register.Register.
func (r *Register) MaxValueSize() int { return r.maxValueSize }

// BufferCount reports the total value buffers (2 main + N per-reader).
func (r *Register) BufferCount() int { return 2 + len(r.copybuf) }

// Writer implements register.Register.
func (r *Register) Writer() register.Writer { return r }

// WriteStats implements register.StatWriter.
func (r *Register) WriteStats() register.WriteStats { return r.wstats }

// Write publishes a new value: one full copy into the off buffer, a
// single-word version store, then the copy-out scan serving pending reader
// announces. Wait-free, O(N + size); zero RMW instructions.
func (r *Register) Write(p []byte) error {
	if len(p) > r.maxValueSize {
		return fmt.Errorf("%w: %d > %d", register.ErrValueTooLarge, len(p), r.maxValueSize)
	}
	w := r.seq + 1
	membuf.StoreWords(r.bufs[w%2], p)
	r.ver.Store(w)
	r.seq = w
	// Copy-out scan: serve every reader whose announce is pending. The
	// consume store MUST follow the copy — the reader's fallback-safety
	// proof depends on it.
	for i := range r.reading {
		ri := r.reading[i].Load()
		if ri != r.writing[i].Load() {
			membuf.StoreWords(r.copybuf[i], p)
			r.writing[i].Store(ri)
			r.wstats.CopyOuts++
		}
		r.wstats.ScanSteps++
	}
	r.wstats.Ops++
	return nil
}

// Reader is a per-goroutine read endpoint.
type Reader struct {
	reg    *Register
	id     int
	closed bool
	stats  register.ReadStats

	// hookAfterVersionLoad, when non-nil, runs inside each optimistic
	// attempt right after the opening version load. Tests use it to
	// interleave writes deterministically and drive the retry and
	// fallback paths; it is nil in production.
	hookAfterVersionLoad func(attempt int)
}

// NewReader implements register.Register.
func (r *Register) NewReader() (register.Reader, error) {
	rd, err := r.newReader()
	if err != nil {
		return nil, err
	}
	return rd, nil
}

// NewReaderHandle is the concrete-typed variant of NewReader.
func (r *Register) NewReaderHandle() (*Reader, error) { return r.newReader() }

func (r *Register) newReader() (*Reader, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.freeIDs) == 0 {
		return nil, register.ErrTooManyReaders
	}
	id := r.freeIDs[len(r.freeIDs)-1]
	r.freeIDs = r.freeIDs[:len(r.freeIDs)-1]
	return &Reader{reg: r, id: id}, nil
}

// ID reports the reader's slot index, for tests.
func (rd *Reader) ID() int { return rd.id }

// ReadStats implements register.StatReader.
func (rd *Reader) ReadStats() register.ReadStats { return rd.stats }

// Read copies the freshest value into dst — Peterson reads are inherently
// copying (there is no zero-copy View). If dst is too small the needed
// length is returned with ErrBufferTooSmall.
func (rd *Reader) Read(dst []byte) (int, error) {
	if rd.closed {
		return 0, register.ErrReaderClosed
	}
	reg := rd.reg
	// Announce: READING[i] := ¬WRITING[i] marks a pending handoff request.
	a := 1 - reg.writing[rd.id].Load()
	reg.reading[rd.id].Store(a)

	for attempt := 0; attempt < 2; attempt++ {
		if attempt == 1 {
			rd.stats.Retries++
		}
		v1 := reg.ver.Load()
		if rd.hookAfterVersionLoad != nil {
			rd.hookAfterVersionLoad(attempt)
		}
		size := membuf.LoadWords(reg.bufs[v1%2], dst, reg.maxValueSize)
		v2 := reg.ver.Load()
		if v1 == v2 {
			// Clean double collect: the buffer held write v1's complete
			// value throughout (see package comment).
			rd.stats.Ops++
			if size > len(dst) {
				return size, register.ErrBufferTooSmall
			}
			return size, nil
		}
	}
	// Both attempts dirty ⇒ the announce has been consumed (two distinct
	// version stores bracket a completed copy-out scan), so the copy
	// buffer is complete, quiescent until our next announce, and holds
	// the value of a write concurrent with this read.
	if reg.writing[rd.id].Load() != a {
		panic("peterson: fallback reached with unconsumed announce; handoff invariant violated")
	}
	rd.stats.Fallbacks++
	rd.stats.Ops++
	size := membuf.LoadWords(reg.copybuf[rd.id], dst, reg.maxValueSize)
	if size > len(dst) {
		return size, register.ErrBufferTooSmall
	}
	return size, nil
}

// Close releases the reader identity for reuse.
func (rd *Reader) Close() error {
	if rd.closed {
		return register.ErrReaderClosed
	}
	rd.closed = true
	reg := rd.reg
	reg.mu.Lock()
	reg.freeIDs = append(reg.freeIDs, rd.id)
	reg.mu.Unlock()
	return nil
}
