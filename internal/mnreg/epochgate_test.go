package mnreg

// Tests for the adaptive epoch gate: one-load all-fresh scans, validated
// snapshot bookkeeping, equivalence with the per-component probe collect
// in a deterministic interleaving, and concurrent monotonicity stress.

import (
	"bytes"
	"sync"
	"testing"

	"arcreg/internal/membuf"
)

// TestEpochGateAccounting pins the gate mechanics: the first collect
// validates a quiescent snapshot, idle collects take the one-load path
// (epochFast), a publish invalidates exactly one collect, and the gate
// revalidates afterwards — all without any reader RMW beyond the
// re-acquisition of changed components.
func TestEpochGateAccounting(t *testing.T) {
	r := newReg(t, 4, 1, 64)
	w, err := r.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := r.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	if !rd.scan.epochGate {
		t.Fatal("reader scan has the epoch gate disabled")
	}
	if _, err := rd.View(); err != nil {
		t.Fatal(err)
	}
	if !rd.scan.epochValid {
		t.Fatal("quiescent first collect did not validate the epoch")
	}
	base := rd.ReadStats()
	for i := 0; i < 10; i++ {
		if _, err := rd.View(); err != nil {
			t.Fatal(err)
		}
	}
	if got := rd.scan.epochFast; got != 10 {
		t.Errorf("idle collects took the one-load path %d times, want 10", got)
	}
	if st := rd.ReadStats(); st.RMW != base.RMW {
		t.Errorf("idle epoch-gated collects executed %d RMW", st.RMW-base.RMW)
	}

	if err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	v, err := rd.View()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte("x")) {
		t.Fatalf("post-publish view = %q", v)
	}
	if rd.scan.epochFast != 10 {
		t.Errorf("post-publish collect took the one-load path")
	}
	if !rd.scan.epochValid {
		t.Error("gate did not revalidate after the publish completed")
	}
	if _, err := rd.View(); err != nil {
		t.Fatal(err)
	}
	if rd.scan.epochFast != 11 {
		t.Errorf("revalidated gate not used: epochFast = %d, want 11", rd.scan.epochFast)
	}
}

// TestEpochGateWriterScansExcluded pins the design choice that writer tag
// collects never use the epoch gate (their own publishes would invalidate
// it every write) while still maintaining the shared counters.
func TestEpochGateWriterScansExcluded(t *testing.T) {
	r := newReg(t, 2, 1, 32)
	w, err := r.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	if w.scan.epochGate {
		t.Error("writer scan has the epoch gate enabled")
	}
	for i := 0; i < 3; i++ {
		if err := w.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.pubStarted.Load(); got != 3 {
		t.Errorf("pubStarted = %d, want 3", got)
	}
	if got := r.pubDone.Load(); got != 3 {
		t.Errorf("pubDone = %d, want 3", got)
	}
	// The two counter bumps per write are reported as writer RMW.
	if st := w.WriteStats(); st.RMW < 3*2 {
		t.Errorf("WriteStats.RMW = %d, want ≥ 6 (2 gate bumps per write)", st.RMW)
	}
}

// TestEpochGateEquivalenceDeterministic interleaves writes and reads in a
// single goroutine across the three collect variants — epoch-gated
// (default), per-component probes only (DisableEpochGate), and the full
// ungated scan (DisableFreshGate) — asserting identical values and tags
// at every step, including repeated all-fresh reads (the one-load path)
// and partial re-decodes.
func TestEpochGateEquivalenceDeterministic(t *testing.T) {
	const m, size = 3, 64
	variants := []Options{
		{},
		{DisableEpochGate: true},
		{DisableFreshGate: true},
	}
	regs := make([]*Register, len(variants))
	writers := make([][]*Writer, len(variants))
	readers := make([]*Reader, len(variants))
	for vi, opts := range variants {
		regs[vi] = newRegOpts(t, m, 1, size, opts)
		for i := 0; i < m; i++ {
			w, err := regs[vi].NewWriter()
			if err != nil {
				t.Fatal(err)
			}
			writers[vi] = append(writers[vi], w)
		}
		rd, err := regs[vi].NewReader()
		if err != nil {
			t.Fatal(err)
		}
		readers[vi] = rd
	}

	check := func(step string) {
		t.Helper()
		v0, err := readers[0].View()
		if err != nil {
			t.Fatalf("%s: variant 0: %v", step, err)
		}
		for vi := 1; vi < len(variants); vi++ {
			v, err := readers[vi].View()
			if err != nil {
				t.Fatalf("%s: variant %d: %v", step, vi, err)
			}
			if !bytes.Equal(v0, v) {
				t.Fatalf("%s: variant %d view %q != %q", step, vi, v, v0)
			}
			if readers[vi].LastTag() != readers[0].LastTag() {
				t.Fatalf("%s: variant %d tag %v != %v", step, vi, readers[vi].LastTag(), readers[0].LastTag())
			}
		}
	}

	check("genesis")
	check("genesis all-fresh")
	check("genesis all-fresh again") // epoch path on the gated variant
	script := []struct {
		w   int
		val string
	}{
		{0, "a1"}, {0, "a2"},
		{1, "b1"},
		{2, "c1"},
		{1, "b2"},
		{0, "a3"},
	}
	for _, s := range script {
		for vi := range variants {
			if err := writers[vi][s.w].Write([]byte(s.val)); err != nil {
				t.Fatal(err)
			}
		}
		check(s.val)
		check(s.val + " all-fresh")
		check(s.val + " all-fresh again")
	}
	// The gated variant must actually have exercised the one-load path.
	if readers[0].scan.epochFast == 0 {
		t.Error("epoch-gated variant never took the one-load path")
	}
}

// TestTagMonotonicityEpochGate is the concurrency stress of
// TestTagMonotonicityUnderGate, run with per-component probes disabled in
// favor of the epoch short-circuit: concurrent writers and readers, tags
// must never regress and payloads must never tear. This is the test that
// would catch an unsound epoch gate (a counter-gated scan serving state
// older than an earlier scan returned).
func TestTagMonotonicityEpochGate(t *testing.T) {
	const (
		writers = 3
		readers = 3
		perW    = 300
		size    = 128
	)
	r := newRegOpts(t, writers, readers, size, Options{})
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	stop := make(chan struct{})
	for wid := 0; wid < writers; wid++ {
		w, err := r.NewWriter()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w *Writer) {
			defer wg.Done()
			buf := make([]byte, size)
			for i := 0; i < perW; i++ {
				membuf.Encode(buf, uint64(w.ID())<<32|uint64(i)+1)
				if err := w.Write(buf); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	epochFast := make(chan uint64, readers)
	for rid := 0; rid < readers; rid++ {
		rd, err := r.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		rg.Add(1)
		go func(rd *Reader) {
			defer rg.Done()
			var last Tag
			for {
				select {
				case <-stop:
					epochFast <- rd.scan.epochFast
					return
				default:
				}
				v, err := rd.View()
				if err != nil {
					errs <- err
					return
				}
				if len(v) > 0 {
					if _, err := membuf.Verify(v); err != nil {
						errs <- err
						return
					}
				}
				tag := rd.LastTag()
				if tag.Less(last) {
					errs <- errTagRegressed(tag, last)
					return
				}
				last = tag
			}
		}(rd)
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// errTagRegressed keeps the stress loop allocation-free until failure.
func errTagRegressed(got, prev Tag) error {
	return &tagRegression{got: got, prev: prev}
}

type tagRegression struct{ got, prev Tag }

func (e *tagRegression) Error() string {
	return "tag regressed: " + e.got.String() + " after " + e.prev.String()
}
