package mnreg

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestWaitPublishWakesOnAnyWriter: a waiter parked on the composite
// gate wakes when any of the M writers publishes, and the epoch-sum
// snapshot taken before a read guarantees the racing publish is never
// lost.
func TestWaitPublishWakesOnAnyWriter(t *testing.T) {
	r, err := New(Config{Writers: 3, Readers: 2, MaxValueSize: 64}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	writers := make([]*Writer, 3)
	for i := range writers {
		if writers[i], err = r.NewWriter(); err != nil {
			t.Fatal(err)
		}
		defer writers[i].Close()
	}
	rd, err := r.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	for i, w := range writers {
		seen := r.NotifyEpoch()
		if _, err := rd.View(); err != nil {
			t.Fatal(err)
		}
		done := make(chan uint64, 1)
		go func() {
			e, err := r.WaitPublish(context.Background(), seen)
			if err != nil {
				t.Errorf("WaitPublish: %v", err)
			}
			done <- e
		}()
		for j := 0; j < 1000 && !r.NotifyGate().Armed(); j++ {
			time.Sleep(10 * time.Microsecond)
		}
		if err := w.Write([]byte(fmt.Sprintf("writer-%d", i))); err != nil {
			t.Fatal(err)
		}
		select {
		case e := <-done:
			if e == seen {
				t.Fatalf("writer %d: woke with unchanged epoch %d", i, e)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("writer %d: composite waiter never woke", i)
		}
		v, err := rd.View()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("writer-%d", i); string(v) != want {
			t.Errorf("after wake View = %q, want %q", v, want)
		}
	}
}

// TestNotifyEpochCountsAllWriters: the composite epoch is the sum of
// component publication counts.
func TestNotifyEpochCountsAllWriters(t *testing.T) {
	r, err := New(Config{Writers: 2, Readers: 1, MaxValueSize: 64}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w0, err := r.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w1, err := r.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	if e := r.NotifyEpoch(); e != 0 {
		t.Fatalf("genesis NotifyEpoch = %d, want 0", e)
	}
	for i := 0; i < 3; i++ {
		if err := w0.Write([]byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := w1.Write([]byte("b")); err != nil {
			t.Fatal(err)
		}
	}
	if e := r.NotifyEpoch(); e != 5 {
		t.Fatalf("NotifyEpoch = %d after 5 writes, want 5", e)
	}
}
