// Package mnreg constructs a multi-writer multi-reader (M,N) atomic
// register from M ARC (1,N) registers — the classical composition the ARC
// paper cites as the reason optimized (1,N) registers matter ("they
// constitute building blocks to realize more general (M,N) registers",
// §1, citing Li/Tromp/Vitányi).
//
// # Construction
//
// Each of the M writers owns one ARC register. Values are published with a
// tag — a (sequence, writerID) pair ordered lexicographically. To write,
// a writer collects the maximum tag currently visible across the other
// M−1 component registers (its own component's tag is its own last
// publish, tracked locally), increments the sequence, and publishes
// tag+value into its own register (one wait-free ARC write). To read, a
// reader collects all M components and returns the value carrying the
// maximum tag.
//
// Because every component register is atomic and component tags are
// monotone (each writer's sequences increase), the maximum tag visible to
// a scan can never regress between non-overlapping operations, which
// yields atomicity of the composite without the reader write-back that
// constructions over weaker (1,1) or regular bases require. A write that
// completed before a scan started placed its tag in a component; the
// component's no-past property forces the scan to see at least that tag.
// Conversely every tag a scan returns was published by a write that had
// started, giving regularity; and two sequential scans relate through each
// component's no-new-old-inversion property.
//
// # The freshness-gated collect
//
// A naive collect performs a full ARC read of every component on every
// scan — M interface calls, M tag decodes, and, whenever a component
// changed, 2 RMW instructions per change. That throws away the ARC
// paper's headline property: a reader whose held slot is still freshest
// pays zero RMW (the R1–R2 fast path). This package keeps the property at
// the composite level. Every scan handle caches, per component, the last
// decoded (tag, view) pair; a collect first probes each component with
// arc.Reader.Fresh — a single atomic load, no RMW — and re-reads
// (arc.Reader.ViewFresh) and re-decodes only the components that actually
// changed. A running argmax over the cached tags makes the all-fresh
// collect return the cached best without looping over tags again. The
// cached views stay pinned by the protocol itself: a held ARC slot is
// never recycled while the handle's presence unit is outstanding, so a
// component that reports Fresh still exposes exactly the cached bytes.
//
// Steady-state cost per composite read (no component changed since the
// last read): M atomic loads, zero RMW instructions, zero tag decoding —
// versus M full ARC reads for the ungated collect. Options.DisableFreshGate
// restores the ungated collect for ablation benchmarks.
//
// # The adaptive epoch gate
//
// On top of the per-component probes, the register keeps a shared pair of
// publish counters — pubStarted, bumped by every writer immediately
// before its component publish, and pubDone, bumped immediately after —
// so a reader can gate an entire all-fresh scan behind ONE atomic load
// instead of M probes. The subtlety is that a bare "counter unchanged ⟹
// nothing changed" check is unsound: the counter and the component
// publish are separate atomic words, so a scan could observe a publish
// whose counter increment is still in flight (or vice versa), and a later
// counter-gated scan would then serve older state than an earlier scan
// returned — a new/old inversion that breaks composite atomicity.
//
// The gate therefore only trusts an epoch recorded by a validated probe
// pass: load started (S) and done (D) before the per-component probes,
// run the probes, and re-load started after. Only when S == D (no publish
// was in flight when the pass began) and started is still S afterwards
// (no publish began during the pass) is the pass a consistent snapshot
// at epoch S; the scan records lastStarted = S. A later collect that
// loads pubStarted == lastStarted knows no publish started since that
// snapshot — and none can be in flight, because in-flight publishes bump
// started first — so the cached (tag, view) table is exactly current and
// is served with zero further loads. Any other outcome simply falls back
// to the per-component probes, which are exact; the epoch word is an
// accelerator, never a correctness mechanism. Validation failure
// invalidates the recorded epoch, keeping every path loop-free and
// wait-free.
//
// Writers do not use the epoch gate for their own tag collects (their
// own publishes invalidate it every write); they pay the probe loop,
// which their skipped own component makes M−1 loads. The two counter
// bumps add 2 RMW instructions per composite write, reported in
// WriteStats.RMW. Options.DisableEpochGate keeps the per-component
// probes only, for ablation and equivalence testing.
//
// Per-component tag monotonicity is what makes the cache sound: a
// component is only ever written by the writer that owns it, with strictly
// increasing sequence numbers (writer identities are recycled only after
// Close, and a new holder seeds its sequence from the component's current
// tag), so a cached tag can never exceed the component's current tag and
// the incremental argmax can never regress.
//
// All operations are wait-free with O(M) time and M·(N+M+2) buffers total
// — inherited directly from ARC's N+2 per component.
package mnreg

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"arcreg/internal/arc"
	"arcreg/internal/notify"
	"arcreg/internal/obs"
	"arcreg/internal/pad"
	"arcreg/internal/register"
)

// tagSize is the per-value header: 8-byte sequence + 4-byte writer id +
// 4 bytes reserved/padding.
const tagSize = 16

// Tag orders writes: lexicographic on (Seq, Writer).
type Tag struct {
	Seq    uint64
	Writer uint32
}

// Less reports whether t orders before u.
func (t Tag) Less(u Tag) bool {
	if t.Seq != u.Seq {
		return t.Seq < u.Seq
	}
	return t.Writer < u.Writer
}

// String implements fmt.Stringer.
func (t Tag) String() string { return fmt.Sprintf("(%d,w%d)", t.Seq, t.Writer) }

func putTag(dst []byte, t Tag) {
	binary.LittleEndian.PutUint64(dst[0:8], t.Seq)
	binary.LittleEndian.PutUint32(dst[8:12], t.Writer)
	binary.LittleEndian.PutUint32(dst[12:16], 0)
}

func getTag(p []byte) Tag {
	return Tag{
		Seq:    binary.LittleEndian.Uint64(p[0:8]),
		Writer: binary.LittleEndian.Uint32(p[8:12]),
	}
}

// Config parametrizes the (M,N) register.
type Config struct {
	// Writers is M, the number of concurrent writer handles.
	Writers int
	// Readers is N, the number of concurrent reader handles.
	Readers int
	// MaxValueSize bounds user values in bytes.
	MaxValueSize int
	// Initial is the register's initial value (optional).
	Initial []byte
}

// Options tune the composite register. The zero value is the optimized
// algorithm with the freshness-gated collect and the adaptive epoch gate
// enabled.
type Options struct {
	// DisableFreshGate forces every collect to perform a full ARC read
	// and tag decode of every component — the ungated O(M·View) scan.
	// It implies DisableEpochGate. Used by the ablation benchmarks to
	// quantify the gate's effect; applications should leave it false.
	DisableFreshGate bool
	// DisableEpochGate keeps the per-component freshness probes but
	// turns off the shared publish-epoch short-circuit (the one-load
	// all-fresh scan). Used by the equivalence tests and ablations.
	DisableEpochGate bool
}

// Register is a wait-free multi-word atomic (M,N) register.
type Register struct {
	// pubStarted and pubDone are the adaptive epoch gate's shared
	// publish counters: every writer bumps pubStarted immediately before
	// and pubDone immediately after its component publish. started ==
	// done ⟺ no publish is in flight. Padded: they are RMW targets of
	// all M writers.
	pubStarted pad.PaddedUint64
	pubDone    pad.PaddedUint64

	comps        []*arc.Register // component (1,N+M) ARC registers
	writers      int
	readers      int
	maxValueSize int
	opts         Options

	// watchGate is the composite parking point: every component
	// sequencer is chained to it, so any writer's publish wakes
	// watchers parked here. The composite epoch is not a separate word
	// — it is the sum of the M component epochs (NotifyEpoch), read
	// with M atomic loads, exactly the package's probe discipline. The
	// chain costs each component publish one extra atomic load (the
	// parent-gate nil check), never an RMW.
	watchGate notify.Gate

	mu          sync.Mutex
	writerIDs   []uint32 // free writer identities
	liveReaders int
}

// New constructs the composite register. Use Options{} for the default
// (fresh-gated) collect.
func New(cfg Config, opts Options) (*Register, error) {
	if cfg.Writers <= 0 {
		return nil, fmt.Errorf("mnreg: Writers must be positive, got %d", cfg.Writers)
	}
	if cfg.Readers <= 0 {
		return nil, fmt.Errorf("mnreg: Readers must be positive, got %d", cfg.Readers)
	}
	if cfg.MaxValueSize <= 0 {
		cfg.MaxValueSize = register.DefaultMaxValueSize
	}
	if len(cfg.Initial) > cfg.MaxValueSize {
		return nil, fmt.Errorf("mnreg: initial value (%d bytes) exceeds MaxValueSize (%d)",
			len(cfg.Initial), cfg.MaxValueSize)
	}
	r := &Register{
		comps:        make([]*arc.Register, cfg.Writers),
		writers:      cfg.Writers,
		readers:      cfg.Readers,
		maxValueSize: cfg.MaxValueSize,
		opts:         opts,
	}
	// Every component is read by all N readers and by all M writers
	// (the tag collect), so its reader capacity is N+M.
	initial := make([]byte, tagSize+len(cfg.Initial))
	copy(initial[tagSize:], cfg.Initial) // tag (0,0): the genesis write
	for i := range r.comps {
		comp, err := arc.New(register.Config{
			MaxReaders:   cfg.Readers + cfg.Writers,
			MaxValueSize: tagSize + cfg.MaxValueSize,
			Initial:      initial,
		}, arc.Options{})
		if err != nil {
			return nil, fmt.Errorf("mnreg: component %d: %w", i, err)
		}
		comp.Notifier().Chain(&r.watchGate)
		r.comps[i] = comp
	}
	for id := cfg.Writers - 1; id >= 0; id-- {
		r.writerIDs = append(r.writerIDs, uint32(id))
	}
	return r, nil
}

// Caps implements register.CapabilityReporter for the composite: the
// freshness probe and zero-copy views survive the (M,N) composition, and
// every operation stays wait-free (O(M) component operations each).
func (r *Register) Caps() register.Caps {
	return register.Caps{
		ZeroCopyView:  true,
		FreshProbe:    true,
		ReadStats:     true,
		WriteStats:    true,
		WaitFreeRead:  true,
		WaitFreeWrite: true,
		Watchable:     true,
	}
}

// NotifyEpoch returns the composite publication epoch: the sum of the M
// component sequencer epochs (M atomic loads, no RMW). The sum is
// monotone — components only advance — so two equal values bracket a
// publication-free interval, and any publish in between is visible as a
// difference. A torn read across the M loads can only under-count (each
// load returns a value at most the component's current epoch), which the
// armed-gate recheck in WaitPublish turns into a wakeup, never a loss.
func (r *Register) NotifyEpoch() uint64 {
	var sum uint64
	for _, comp := range r.comps {
		sum += comp.Notifier().Epoch()
	}
	return sum
}

// NotifyGate returns the composite parking gate (every component
// publish wakes it), for callers composing their own waits.
func (r *Register) NotifyGate() *notify.Gate { return &r.watchGate }

// WaitPublish blocks until NotifyEpoch differs from seen or ctx is
// done, returning the epoch observed. Snapshot NotifyEpoch before
// reading and wait on that snapshot for at-least-once change delivery
// with latest-value conflation (same contract as notify.Sequencer.Wait).
func (r *Register) WaitPublish(ctx context.Context, seen uint64) (uint64, error) {
	return r.WaitPublishStats(ctx, seen, nil)
}

// WaitPublishStats is WaitPublish with per-watcher telemetry: park/wake
// accounting goes through notify.AwaitStats and the epoch observed at
// return is noted as published on ws (in the composite summed-epoch
// frame). ws may be nil.
func (r *Register) WaitPublishStats(ctx context.Context, seen uint64, ws *notify.WatchStats) (uint64, error) {
	return notify.WaitEpoch(ctx, r.NotifyEpoch, seen, ws, &r.watchGate)
}

// Stats returns the composite's live telemetry as a Stats-tree node:
// the summed publication epoch, the publish-window counters, capacity
// gauges, and one child per component register. Safe from any
// goroutine at any time (tier-1 words only; per-handle scan counters
// stay quiescent-collection, see ReadStats).
func (r *Register) Stats() obs.Snapshot {
	sn := obs.Snapshot{Name: "mnreg"}
	sn.Put("epoch", r.NotifyEpoch())
	sn.Put("pub_started", r.pubStarted.Load())
	sn.Put("pub_done", r.pubDone.Load())
	sn.Put("writers", uint64(r.writers))
	sn.Put("readers", uint64(r.readers))
	sn.Put("live_readers", uint64(r.LiveReaders()))
	armed := uint64(0)
	if r.watchGate.Armed() {
		armed = 1
	}
	sn.Put("gate_armed", armed)
	if t := r.watchGate.Fanned(); t != nil {
		// The composite gate's wakeup tree (attached by the first
		// facade watch session): topology, live relays, cascades.
		sn.Children = append(sn.Children, t.Stats())
	}
	for i, comp := range r.comps {
		child := comp.Stats()
		child.Name = fmt.Sprintf("component%d", i)
		sn.Children = append(sn.Children, child)
	}
	return sn
}

// Writers reports M.
func (r *Register) Writers() int { return r.writers }

// Readers reports N.
func (r *Register) Readers() int { return r.readers }

// MaxValueSize reports the user-value bound.
func (r *Register) MaxValueSize() int { return r.maxValueSize }

// LiveReaders reports the number of open composite reader handles.
func (r *Register) LiveReaders() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.liveReaders
}

// noBest marks a scan that has not cached any component yet.
const noBest = -1

// scan holds the per-handle collect state: one ARC reader handle per
// collected component plus the freshness cache — the last decoded tag and
// view per component, a running argmax over the cached tags, and the
// epoch-gate snapshot state.
type scan struct {
	reg     *Register
	handles []*arc.Reader // nil at the writer's own (skipped) component
	tags    []Tag         // cached decoded tag per component
	views   [][]byte      // cached full view (tag header included)
	primed  []bool        // component has a valid (tag, view) cache entry
	nprimed int           // primed entries (all collected primed ⇒ cache complete)
	ncomps  int           // collected (non-skipped) components
	best    int           // index of the max cached tag, or noBest
	gate    bool          // freshness gate enabled (false = ablation)
	buf     []byte        // write staging (writers only)

	// Epoch-gate state: lastStarted is the pubStarted value of the last
	// validated probe pass (see the package doc); epochValid marks it
	// trustworthy. Readers only — writers invalidate it every write.
	epochGate   bool
	epochValid  bool
	lastStarted uint64

	// Collect accounting, surfaced through ReadStats/WriteStats.
	ops       uint64 // collects completed
	fastScans uint64 // collects where every component was fresh
	epochFast uint64 // fast scans served by the one-load epoch gate
}

// newScan builds the collect state. skip names a component to exclude
// (the writer's own; pass -1 to collect all).
func (r *Register) newScan(skip int, withStaging bool) (*scan, error) {
	m := len(r.comps)
	s := &scan{
		reg:     r,
		handles: make([]*arc.Reader, m),
		tags:    make([]Tag, m),
		views:   make([][]byte, m),
		primed:  make([]bool, m),
		best:    noBest,
		gate:    !r.opts.DisableFreshGate,
		// The epoch gate pays off only when the scan covers every
		// component (a writer's own publishes would invalidate it on
		// every write anyway).
		epochGate: skip < 0 && !r.opts.DisableFreshGate && !r.opts.DisableEpochGate,
	}
	for i, comp := range r.comps {
		if i == skip {
			continue
		}
		h, err := comp.NewReaderHandle()
		if err != nil {
			s.close()
			return nil, fmt.Errorf("mnreg: component %d handle: %w", i, err)
		}
		s.handles[i] = h
		s.ncomps++
	}
	if withStaging {
		s.buf = make([]byte, tagSize+r.maxValueSize)
	}
	return s, nil
}

// collect returns the maximum tag visible across the collected components
// and the view carrying it. Fresh components (held slot still the
// component's current publication) are served from the cache: one atomic
// load, no RMW, no tag decode. An all-fresh scan whose previous probe
// pass validated a quiescent epoch is served by one load of pubStarted
// alone. The returned view stays pinned until the underlying handle's
// next re-read — which, by per-component tag monotonicity, can only
// happen after the component published something newer.
func (s *scan) collect() (Tag, []byte, error) {
	if s.epochGate && s.epochValid && s.reg.pubStarted.Load() == s.lastStarted {
		// One load: no publish started since the validated snapshot and
		// none can be in flight (in-flight publishes bump pubStarted
		// first), so the whole cache is exactly current.
		s.ops++
		s.fastScans++
		s.epochFast++
		return s.tags[s.best], s.views[s.best], nil
	}
	var started, done uint64
	if s.epochGate {
		started = s.reg.pubStarted.Load()
		done = s.reg.pubDone.Load()
	}
	changed, err := s.probe()
	if err != nil {
		return Tag{}, nil, err
	}
	if s.epochGate {
		// The pass is a consistent snapshot at epoch `started` only if
		// no publish was in flight when it began and none began during
		// it; otherwise the epoch word proves nothing and the next
		// collect falls back to the (exact) per-component probes.
		if started == done && s.nprimed == s.ncomps && s.reg.pubStarted.Load() == started {
			s.lastStarted = started
			s.epochValid = true
		} else {
			s.epochValid = false
		}
	}
	s.ops++
	if !changed {
		s.fastScans++
	}
	if s.best == noBest {
		// Only reachable for a writer with M == 1: nothing to collect.
		return Tag{}, nil, nil
	}
	return s.tags[s.best], s.views[s.best], nil
}

// probe runs the per-component freshness-gated pass: each collected
// component is either confirmed fresh (one atomic load) or re-read and
// re-decoded into the cache. Reports whether anything changed.
func (s *scan) probe() (changed bool, err error) {
	for i, h := range s.handles {
		if h == nil {
			continue // the writer's own component
		}
		if s.gate && s.primed[i] && h.Fresh() {
			continue // one load: cached (tag, view) still current
		}
		// Re-read and re-decode. The change report is necessarily true
		// here — a failed Fresh probe cannot flip back (a held slot is
		// never republished) and a first read always changes — so only
		// the view is consumed.
		v, _, err := h.ViewFresh()
		if err != nil {
			return changed, err
		}
		if len(v) < tagSize {
			return changed, fmt.Errorf("mnreg: component value shorter than tag header (%d bytes)", len(v))
		}
		t := getTag(v)
		s.tags[i] = t
		s.views[i] = v
		if !s.primed[i] {
			s.primed[i] = true
			s.nprimed++
		}
		changed = true
		// Running argmax. Component tags are monotone, so a component
		// that was the best and changed is still at least its old tag.
		if s.best == noBest || s.best == i || s.tags[s.best].Less(t) {
			s.best = i
		}
	}
	return changed, nil
}

// rmw sums the RMW instructions the scan's component handles executed.
func (s *scan) rmw() (rmw uint64) {
	for _, h := range s.handles {
		if h != nil {
			rmw += h.ReadStats().RMW
		}
	}
	return rmw
}

func (s *scan) close() {
	for _, h := range s.handles {
		if h != nil {
			h.Close()
		}
	}
}

// Writer is one of the M write endpoints. One goroutine per Writer.
type Writer struct {
	reg     *Register
	id      uint32
	scan    *scan
	seq     uint64 // highest sequence this writer has used or observed
	gateRMW uint64 // pubStarted/pubDone bumps executed (2 per write)
	closed  bool
	// base snapshots the own component's register-lifetime write
	// counters at handle creation, so WriteStats reports only this
	// handle's work even when the identity was recycled.
	base register.WriteStats
}

// NewWriter allocates one of the M writer identities.
func (r *Register) NewWriter() (*Writer, error) {
	r.mu.Lock()
	if len(r.writerIDs) == 0 {
		r.mu.Unlock()
		return nil, fmt.Errorf("mnreg: all %d writer identities in use", r.writers)
	}
	id := r.writerIDs[len(r.writerIDs)-1]
	r.writerIDs = r.writerIDs[:len(r.writerIDs)-1]
	r.mu.Unlock()
	release := func() {
		r.mu.Lock()
		r.writerIDs = append(r.writerIDs, id)
		r.mu.Unlock()
	}
	s, err := r.newScan(int(id), true)
	if err != nil {
		release()
		return nil, err
	}
	// The collect skips the own component, so seed the sequence from its
	// current tag: a recycled identity must outbid its predecessor's last
	// publish, which only the own component records.
	seq, err := r.ownSeq(id)
	if err != nil {
		s.close()
		release()
		return nil, err
	}
	return &Writer{reg: r, id: id, scan: s, seq: seq, base: r.comps[id].WriteStats()}, nil
}

// ownSeq reads the sequence number currently published in component id,
// through a transient handle (the component is sized for it: at most
// N readers + M−1 collecting writers are live on it at any time).
func (r *Register) ownSeq(id uint32) (uint64, error) {
	h, err := r.comps[id].NewReaderHandle()
	if err != nil {
		return 0, fmt.Errorf("mnreg: component %d seed handle: %w", id, err)
	}
	defer h.Close()
	v, err := h.View()
	if err != nil {
		return 0, err
	}
	if len(v) < tagSize {
		return 0, fmt.Errorf("mnreg: component %d value shorter than tag header (%d bytes)", id, len(v))
	}
	return getTag(v).Seq, nil
}

// ID reports the writer identity.
func (w *Writer) ID() int { return int(w.id) }

// Write publishes a new value: collect the maximum tag visible across the
// other components (fresh-gated — unchanged components cost one load
// each), outbid it, publish into the own component (one wait-free ARC
// write). The own component is not collected: its tag is this writer's
// own last publish, already folded into w.seq.
func (w *Writer) Write(p []byte) error {
	if w.closed {
		return register.ErrReaderClosed
	}
	if len(p) > w.reg.maxValueSize {
		return fmt.Errorf("%w: %d > %d", register.ErrValueTooLarge, len(p), w.reg.maxValueSize)
	}
	top, _, err := w.scan.collect()
	if err != nil {
		return err
	}
	if top.Seq > w.seq {
		w.seq = top.Seq
	}
	w.seq++
	tag := Tag{Seq: w.seq, Writer: w.id}
	putTag(w.scan.buf, tag)
	n := copy(w.scan.buf[tagSize:], p)
	if w.reg.epochCounters() {
		// Epoch-gate bracket: started before the publish, done after.
		// Readers treat started == done as "no publish in flight".
		w.reg.pubStarted.Add(1)
		defer w.reg.pubDone.Add(1)
		w.gateRMW += 2
	}
	return w.reg.comps[w.id].Write(w.scan.buf[:tagSize+n])
}

// epochCounters reports whether writers must maintain the shared publish
// counters (readers consult them only when the epoch gate is enabled).
func (r *Register) epochCounters() bool {
	return !r.opts.DisableFreshGate && !r.opts.DisableEpochGate
}

// WriteStats implements register.StatWriter for the composite: the own
// component's publish-side counters (this handle's share — a recycled
// identity does not inherit its predecessor's) plus the RMW instructions
// the tag collect spent on the other components. Collect only after the
// writer's goroutine has quiesced.
func (w *Writer) WriteStats() register.WriteStats {
	cur := w.reg.comps[w.id].WriteStats()
	ws := register.WriteStats{
		Ops:       cur.Ops - w.base.Ops,
		RMW:       cur.RMW - w.base.RMW,
		ScanSteps: cur.ScanSteps - w.base.ScanSteps,
		HintHits:  cur.HintHits - w.base.HintHits,
		CopyOuts:  cur.CopyOuts - w.base.CopyOuts,
		LockSpins: cur.LockSpins - w.base.LockSpins,
	}
	ws.RMW += w.scan.rmw() + w.gateRMW
	return ws
}

// Close releases the writer identity and its collect handles.
func (w *Writer) Close() error {
	if w.closed {
		return register.ErrReaderClosed
	}
	w.closed = true
	w.scan.close()
	w.reg.mu.Lock()
	w.reg.writerIDs = append(w.reg.writerIDs, w.id)
	w.reg.mu.Unlock()
	return nil
}

// Reader is one of the N read endpoints. One goroutine per Reader.
type Reader struct {
	reg     *Register
	scan    *scan
	lastTag Tag
	closed  bool
}

// Compile-time interface conformance checks against the shared register
// contract (the composite reader is plugged into the harness unchanged).
var (
	_ register.Reader          = (*Reader)(nil)
	_ register.Viewer          = (*Reader)(nil)
	_ register.FreshnessProber = (*Reader)(nil)
	_ register.StatReader      = (*Reader)(nil)
	_ register.StatWriter      = (*Writer)(nil)
	_ register.Writer          = (*Writer)(nil)
)

// NewReader allocates a reader handle.
func (r *Register) NewReader() (*Reader, error) {
	r.mu.Lock()
	if r.liveReaders >= r.readers {
		r.mu.Unlock()
		return nil, register.ErrTooManyReaders
	}
	r.liveReaders++
	r.mu.Unlock()
	s, err := r.newScan(-1, false)
	if err != nil {
		r.mu.Lock()
		r.liveReaders--
		r.mu.Unlock()
		return nil, err
	}
	return &Reader{reg: r, scan: s}, nil
}

// View returns the freshest value without copying. Valid until this
// handle's next View, Read or Close (every component view stays pinned
// until then). On the steady-state path — no component changed since the
// previous View — the cost is one atomic load per component: zero RMW
// instructions and zero tag decoding.
func (rd *Reader) View() ([]byte, error) {
	if rd.closed {
		return nil, register.ErrReaderClosed
	}
	tag, view, err := rd.scan.collect()
	if err != nil {
		return nil, err
	}
	rd.lastTag = tag
	return view[tagSize:], nil
}

// Read copies the freshest value into dst.
func (rd *Reader) Read(dst []byte) (int, error) {
	v, err := rd.View()
	if err != nil {
		return 0, err
	}
	if len(dst) < len(v) {
		return len(v), register.ErrBufferTooSmall
	}
	return copy(dst, v), nil
}

// LastTag reports the tag of the last value View/Read returned — the
// composite's version, used by tests to assert monotonicity.
func (rd *Reader) LastTag() Tag { return rd.lastTag }

// Fresh implements register.FreshnessProber at the composite level: it
// reports whether the last View/Read still returns the composite's
// current value, without advancing the handle's cache. A validated
// quiescent epoch answers in one atomic load; otherwise the probe costs
// one load per component. The answer is conservative: a component
// publish that loses the tag argmax still reports stale (the caller's
// re-read then serves the unchanged winner from the cache).
func (rd *Reader) Fresh() bool {
	if rd.closed {
		return false
	}
	s := rd.scan
	if s.best == noBest {
		return false // never collected
	}
	if s.epochGate && s.epochValid && s.reg.pubStarted.Load() == s.lastStarted {
		return true
	}
	if s.nprimed != s.ncomps {
		return false
	}
	for _, h := range s.handles {
		if h != nil && !h.Fresh() {
			return false
		}
	}
	return true
}

// ReadStats implements register.StatReader at the composite level: Ops
// counts composite reads, FastPath counts all-fresh collects (served
// entirely from the per-component cache with zero RMW), and RMW sums the
// RMW instructions the component handles executed. Collect only after the
// owning goroutine has quiesced.
func (rd *Reader) ReadStats() register.ReadStats {
	return register.ReadStats{
		Ops:      rd.scan.ops,
		FastPath: rd.scan.fastScans,
		RMW:      rd.scan.rmw(),
	}
}

// Close releases the handle.
func (rd *Reader) Close() error {
	if rd.closed {
		return register.ErrReaderClosed
	}
	rd.closed = true
	rd.scan.close()
	rd.reg.mu.Lock()
	rd.reg.liveReaders--
	rd.reg.mu.Unlock()
	return nil
}
