// Package mnreg constructs a multi-writer multi-reader (M,N) atomic
// register from M ARC (1,N) registers — the classical composition the ARC
// paper cites as the reason optimized (1,N) registers matter ("they
// constitute building blocks to realize more general (M,N) registers",
// §1, citing Li/Tromp/Vitányi).
//
// # Construction
//
// Each of the M writers owns one ARC register. Values are published with a
// tag — a (sequence, writerID) pair ordered lexicographically. To write,
// a writer collects the maximum tag currently visible across all M
// component registers, increments the sequence, and publishes tag+value
// into its own register (one wait-free ARC write; the collect is M
// wait-free ARC reads). To read, a reader views all M components and
// returns the value carrying the maximum tag (M wait-free ARC reads, zero
// copies until the caller asks for one).
//
// Because every component register is atomic and component tags are
// monotone (each writer's sequences increase), the maximum tag visible to
// a scan can never regress between non-overlapping operations, which
// yields atomicity of the composite without the reader write-back that
// constructions over weaker (1,1) or regular bases require. A write that
// completed before a scan started placed its tag in a component; the
// component's no-past property forces the scan to see at least that tag.
// Conversely every tag a scan returns was published by a write that had
// started, giving regularity; and two sequential scans relate through each
// component's no-new-old-inversion property.
//
// All operations are wait-free with O(M) time and M·(N+M+2) buffers total
// — inherited directly from ARC's N+2 per component.
package mnreg

import (
	"encoding/binary"
	"fmt"
	"sync"

	"arcreg/internal/arc"
	"arcreg/internal/register"
)

// tagSize is the per-value header: 8-byte sequence + 4-byte writer id +
// 4 bytes reserved/padding.
const tagSize = 16

// Tag orders writes: lexicographic on (Seq, Writer).
type Tag struct {
	Seq    uint64
	Writer uint32
}

// Less reports whether t orders before u.
func (t Tag) Less(u Tag) bool {
	if t.Seq != u.Seq {
		return t.Seq < u.Seq
	}
	return t.Writer < u.Writer
}

// String implements fmt.Stringer.
func (t Tag) String() string { return fmt.Sprintf("(%d,w%d)", t.Seq, t.Writer) }

func putTag(dst []byte, t Tag) {
	binary.LittleEndian.PutUint64(dst[0:8], t.Seq)
	binary.LittleEndian.PutUint32(dst[8:12], t.Writer)
	binary.LittleEndian.PutUint32(dst[12:16], 0)
}

func getTag(p []byte) Tag {
	return Tag{
		Seq:    binary.LittleEndian.Uint64(p[0:8]),
		Writer: binary.LittleEndian.Uint32(p[8:12]),
	}
}

// Config parametrizes the (M,N) register.
type Config struct {
	// Writers is M, the number of concurrent writer handles.
	Writers int
	// Readers is N, the number of concurrent reader handles.
	Readers int
	// MaxValueSize bounds user values in bytes.
	MaxValueSize int
	// Initial is the register's initial value (optional).
	Initial []byte
}

// Register is a wait-free multi-word atomic (M,N) register.
type Register struct {
	comps        []*arc.Register // component (1,N+M) ARC registers
	writers      int
	readers      int
	maxValueSize int

	mu          sync.Mutex
	writerIDs   []uint32 // free writer identities
	liveReaders int
}

// New constructs the composite register.
func New(cfg Config) (*Register, error) {
	if cfg.Writers <= 0 {
		return nil, fmt.Errorf("mnreg: Writers must be positive, got %d", cfg.Writers)
	}
	if cfg.Readers <= 0 {
		return nil, fmt.Errorf("mnreg: Readers must be positive, got %d", cfg.Readers)
	}
	if cfg.MaxValueSize <= 0 {
		cfg.MaxValueSize = register.DefaultMaxValueSize
	}
	if len(cfg.Initial) > cfg.MaxValueSize {
		return nil, fmt.Errorf("mnreg: initial value (%d bytes) exceeds MaxValueSize (%d)",
			len(cfg.Initial), cfg.MaxValueSize)
	}
	r := &Register{
		comps:        make([]*arc.Register, cfg.Writers),
		writers:      cfg.Writers,
		readers:      cfg.Readers,
		maxValueSize: cfg.MaxValueSize,
	}
	// Every component is read by all N readers and by all M writers
	// (the tag collect), so its reader capacity is N+M.
	initial := make([]byte, tagSize+len(cfg.Initial))
	copy(initial[tagSize:], cfg.Initial) // tag (0,0): the genesis write
	for i := range r.comps {
		comp, err := arc.New(register.Config{
			MaxReaders:   cfg.Readers + cfg.Writers,
			MaxValueSize: tagSize + cfg.MaxValueSize,
			Initial:      initial,
		}, arc.Options{})
		if err != nil {
			return nil, fmt.Errorf("mnreg: component %d: %w", i, err)
		}
		r.comps[i] = comp
	}
	for id := cfg.Writers - 1; id >= 0; id-- {
		r.writerIDs = append(r.writerIDs, uint32(id))
	}
	return r, nil
}

// Writers reports M.
func (r *Register) Writers() int { return r.writers }

// Readers reports N.
func (r *Register) Readers() int { return r.readers }

// MaxValueSize reports the user-value bound.
func (r *Register) MaxValueSize() int { return r.maxValueSize }

// scan holds per-handle component views: both readers and writers collect
// over all M components.
type scan struct {
	handles []*arc.Reader
	buf     []byte // write staging (writers only)
}

func (r *Register) newScan(withStaging bool) (*scan, error) {
	s := &scan{handles: make([]*arc.Reader, len(r.comps))}
	for i, comp := range r.comps {
		h, err := comp.NewReaderHandle()
		if err != nil {
			for _, prev := range s.handles[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("mnreg: component %d handle: %w", i, err)
		}
		s.handles[i] = h
	}
	if withStaging {
		s.buf = make([]byte, tagSize+r.maxValueSize)
	}
	return s, nil
}

// collect views every component and returns the maximum tag and the view
// carrying it. The views stay pinned until the handles' next operation.
func (s *scan) collect() (Tag, []byte, error) {
	var (
		best     Tag
		bestView []byte
	)
	for _, h := range s.handles {
		v, err := h.View()
		if err != nil {
			return Tag{}, nil, err
		}
		if len(v) < tagSize {
			return Tag{}, nil, fmt.Errorf("mnreg: component value shorter than tag header (%d bytes)", len(v))
		}
		t := getTag(v)
		if bestView == nil || best.Less(t) {
			best = t
			bestView = v
		}
	}
	return best, bestView, nil
}

func (s *scan) close() {
	for _, h := range s.handles {
		h.Close()
	}
}

// Writer is one of the M write endpoints. One goroutine per Writer.
type Writer struct {
	reg    *Register
	id     uint32
	scan   *scan
	seq    uint64 // highest sequence this writer has used or observed
	closed bool
}

// NewWriter allocates one of the M writer identities.
func (r *Register) NewWriter() (*Writer, error) {
	r.mu.Lock()
	if len(r.writerIDs) == 0 {
		r.mu.Unlock()
		return nil, fmt.Errorf("mnreg: all %d writer identities in use", r.writers)
	}
	id := r.writerIDs[len(r.writerIDs)-1]
	r.writerIDs = r.writerIDs[:len(r.writerIDs)-1]
	r.mu.Unlock()
	s, err := r.newScan(true)
	if err != nil {
		r.mu.Lock()
		r.writerIDs = append(r.writerIDs, id)
		r.mu.Unlock()
		return nil, err
	}
	return &Writer{reg: r, id: id, scan: s}, nil
}

// ID reports the writer identity.
func (w *Writer) ID() int { return int(w.id) }

// Write publishes a new value: collect the maximum visible tag (M
// wait-free ARC reads), outbid it, publish into the own component (one
// wait-free ARC write).
func (w *Writer) Write(p []byte) error {
	if w.closed {
		return register.ErrReaderClosed
	}
	if len(p) > w.reg.maxValueSize {
		return fmt.Errorf("%w: %d > %d", register.ErrValueTooLarge, len(p), w.reg.maxValueSize)
	}
	top, _, err := w.scan.collect()
	if err != nil {
		return err
	}
	if top.Seq > w.seq {
		w.seq = top.Seq
	}
	w.seq++
	tag := Tag{Seq: w.seq, Writer: w.id}
	putTag(w.scan.buf, tag)
	n := copy(w.scan.buf[tagSize:], p)
	return w.reg.comps[w.id].Write(w.scan.buf[:tagSize+n])
}

// Close releases the writer identity and its collect handles.
func (w *Writer) Close() error {
	if w.closed {
		return register.ErrReaderClosed
	}
	w.closed = true
	w.scan.close()
	w.reg.mu.Lock()
	w.reg.writerIDs = append(w.reg.writerIDs, w.id)
	w.reg.mu.Unlock()
	return nil
}

// Reader is one of the N read endpoints. One goroutine per Reader.
type Reader struct {
	reg     *Register
	scan    *scan
	lastTag Tag
	closed  bool
}

// NewReader allocates a reader handle.
func (r *Register) NewReader() (*Reader, error) {
	r.mu.Lock()
	if r.liveReaders >= r.readers {
		r.mu.Unlock()
		return nil, register.ErrTooManyReaders
	}
	r.liveReaders++
	r.mu.Unlock()
	s, err := r.newScan(false)
	if err != nil {
		r.mu.Lock()
		r.liveReaders--
		r.mu.Unlock()
		return nil, err
	}
	return &Reader{reg: r, scan: s}, nil
}

// View returns the freshest value without copying. Valid until this
// handle's next View, Read or Close (every component view stays pinned
// until then).
func (rd *Reader) View() ([]byte, error) {
	if rd.closed {
		return nil, register.ErrReaderClosed
	}
	tag, view, err := rd.scan.collect()
	if err != nil {
		return nil, err
	}
	rd.lastTag = tag
	return view[tagSize:], nil
}

// Read copies the freshest value into dst.
func (rd *Reader) Read(dst []byte) (int, error) {
	v, err := rd.View()
	if err != nil {
		return 0, err
	}
	if len(dst) < len(v) {
		return len(v), register.ErrBufferTooSmall
	}
	return copy(dst, v), nil
}

// LastTag reports the tag of the last value View/Read returned — the
// composite's version, used by tests to assert monotonicity.
func (rd *Reader) LastTag() Tag { return rd.lastTag }

// Close releases the handle.
func (rd *Reader) Close() error {
	if rd.closed {
		return register.ErrReaderClosed
	}
	rd.closed = true
	rd.scan.close()
	rd.reg.mu.Lock()
	rd.reg.liveReaders--
	rd.reg.mu.Unlock()
	return nil
}
