package mnreg

// Tests for the freshness-gated collect: per-reader tag monotonicity under
// concurrency with the gate on and off, gate/no-gate equivalence in a
// deterministic interleaving, fresh-scan accounting, and handle lifecycle
// (double close, component handle leaks).

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"arcreg/internal/membuf"
	"arcreg/internal/register"
)

func newRegOpts(t testing.TB, m, n, size int, opts Options) *Register {
	t.Helper()
	r, err := New(Config{Writers: m, Readers: n, MaxValueSize: size}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFreshGateEquivalenceDeterministic interleaves writes and reads in a
// single goroutine and asserts the gated and ungated registers return
// identical values and tags at every step — including steps where nothing
// changed between two reads (the all-fresh scan) and steps where only one
// of the M components changed (a partial re-decode).
func TestFreshGateEquivalenceDeterministic(t *testing.T) {
	const m, size = 3, 64
	gated := newRegOpts(t, m, 1, size, Options{})
	plain := newRegOpts(t, m, 1, size, Options{DisableFreshGate: true})

	var gw, pw []*Writer
	for i := 0; i < m; i++ {
		g, err := gated.NewWriter()
		if err != nil {
			t.Fatal(err)
		}
		p, err := plain.NewWriter()
		if err != nil {
			t.Fatal(err)
		}
		gw = append(gw, g)
		pw = append(pw, p)
	}
	grd, err := gated.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	prd, err := plain.NewReader()
	if err != nil {
		t.Fatal(err)
	}

	check := func(step string) {
		t.Helper()
		gv, err := grd.View()
		if err != nil {
			t.Fatalf("%s: gated view: %v", step, err)
		}
		pv, err := prd.View()
		if err != nil {
			t.Fatalf("%s: plain view: %v", step, err)
		}
		if !bytes.Equal(gv, pv) {
			t.Fatalf("%s: gated %q != plain %q", step, gv, pv)
		}
		if grd.LastTag() != prd.LastTag() {
			t.Fatalf("%s: gated tag %v != plain tag %v", step, grd.LastTag(), prd.LastTag())
		}
	}

	check("genesis")
	check("genesis all-fresh") // second read with nothing changed
	// Writer ids are assigned in reverse pop order in both registers, so
	// index i names the same identity in both.
	script := []struct {
		w   int
		val string
	}{
		{0, "a1"}, {0, "a2"}, // repeat writer: single component changes
		{1, "b1"}, // different component changes, must outbid
		{2, "c1"},
		{1, "b2"},
		{0, "a3"},
	}
	for _, s := range script {
		if err := gw[s.w].Write([]byte(s.val)); err != nil {
			t.Fatal(err)
		}
		if err := pw[s.w].Write([]byte(s.val)); err != nil {
			t.Fatal(err)
		}
		check(s.val)
		check(s.val + " all-fresh")
	}
	// Recycle a writer identity: the successor must keep outbidding in
	// both registers (gated writers seed their sequence from the own
	// component since the collect skips it).
	gid, pid := gw[0].ID(), pw[0].ID()
	if gid != pid {
		t.Fatalf("writer identity mismatch: %d vs %d", gid, pid)
	}
	if err := gw[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := pw[0].Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := gated.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := plain.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	before := grd.LastTag()
	if err := g2.Write([]byte("recycled")); err != nil {
		t.Fatal(err)
	}
	if err := p2.Write([]byte("recycled")); err != nil {
		t.Fatal(err)
	}
	check("recycled")
	if !before.Less(grd.LastTag()) {
		t.Fatalf("recycled writer did not outbid: %v then %v", before, grd.LastTag())
	}
}

// TestFreshScanAccounting pins the composite ReadStats semantics: an
// all-fresh scan counts as FastPath with zero additional RMW; a scan after
// a publish re-acquires exactly the changed component (2 RMW: release +
// acquire).
func TestFreshScanAccounting(t *testing.T) {
	r := newReg(t, 4, 1, 64)
	w, err := r.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := r.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.View(); err != nil { // first scan: 4 acquisitions
		t.Fatal(err)
	}
	base := rd.ReadStats()
	if base.Ops != 1 || base.RMW != 4 {
		t.Fatalf("first scan stats = %+v, want Ops=1 RMW=4", base)
	}
	for i := 0; i < 10; i++ {
		if _, err := rd.View(); err != nil {
			t.Fatal(err)
		}
	}
	st := rd.ReadStats()
	if st.RMW != base.RMW {
		t.Errorf("idle scans executed %d RMW", st.RMW-base.RMW)
	}
	if st.FastPath != base.FastPath+10 {
		t.Errorf("fresh scans = %d, want %d", st.FastPath-base.FastPath, 10)
	}
	if err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.View(); err != nil {
		t.Fatal(err)
	}
	after := rd.ReadStats()
	if got := after.RMW - st.RMW; got != 2 {
		t.Errorf("post-publish scan executed %d RMW, want 2 (release+acquire of one component)", got)
	}
	if after.FastPath != st.FastPath {
		t.Errorf("post-publish scan counted as fresh")
	}
}

// TestTagMonotonicityUnderGate is the concurrency stress for the cache: a
// torn or stale cached view must never lower LastTag, with the gate on
// and off. Readers also verify payload integrity so a stale view aliasing
// a recycled slot would be caught.
func TestTagMonotonicityUnderGate(t *testing.T) {
	for _, opts := range []Options{{}, {DisableFreshGate: true}} {
		name := "gate"
		if opts.DisableFreshGate {
			name = "nogate"
		}
		t.Run(name, func(t *testing.T) {
			const (
				writers = 3
				readers = 3
				perW    = 300
				size    = 128
			)
			r := newRegOpts(t, writers, readers, size, opts)
			var wg sync.WaitGroup
			errs := make(chan error, writers+readers)
			stop := make(chan struct{})
			for wid := 0; wid < writers; wid++ {
				w, err := r.NewWriter()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(w *Writer) {
					defer wg.Done()
					buf := make([]byte, size)
					for i := 0; i < perW; i++ {
						membuf.Encode(buf, uint64(w.ID())<<32|uint64(i)+1)
						if err := w.Write(buf); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			var rg sync.WaitGroup
			for rid := 0; rid < readers; rid++ {
				rd, err := r.NewReader()
				if err != nil {
					t.Fatal(err)
				}
				rg.Add(1)
				go func(rd *Reader) {
					defer rg.Done()
					var last Tag
					for {
						select {
						case <-stop:
							return
						default:
						}
						v, err := rd.View()
						if err != nil {
							errs <- err
							return
						}
						if len(v) > 0 {
							if _, err := membuf.Verify(v); err != nil {
								errs <- fmt.Errorf("torn composite read: %w", err)
								return
							}
						}
						tag := rd.LastTag()
						if tag.Less(last) {
							errs <- fmt.Errorf("tag regressed: %v after %v", tag, last)
							return
						}
						last = tag
					}
				}(rd)
			}
			wg.Wait()
			close(stop)
			rg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestWriterStatsNotInheritedOnRecycle pins WriteStats to the handle's
// lifetime: a recycled writer identity must not report its predecessor's
// publishes.
func TestWriterStatsNotInheritedOnRecycle(t *testing.T) {
	r := newReg(t, 2, 1, 32)
	w, err := r.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.WriteStats(); st.Ops != 5 {
		t.Fatalf("first holder Ops = %d, want 5", st.Ops)
	}
	id := w.ID()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := r.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	if w2.ID() != id {
		t.Fatalf("identity not recycled: %d vs %d", w2.ID(), id)
	}
	if st := w2.WriteStats(); st.Ops != 0 || st.RMW != 0 {
		t.Fatalf("recycled holder inherited stats: %+v", st)
	}
	if err := w2.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if st := w2.WriteStats(); st.Ops != 1 {
		t.Fatalf("recycled holder Ops = %d, want 1", st.Ops)
	}
}

// TestCloseReleasesComponentHandles asserts the handle-leak contract:
// after every composite reader and writer is closed, each component ARC
// register reports zero live reader handles (the collect handles and the
// writer's transient seed handle are all returned).
func TestCloseReleasesComponentHandles(t *testing.T) {
	const m, n = 3, 4
	r := newReg(t, m, n, 32)
	var ws []*Writer
	var rds []*Reader
	for i := 0; i < m; i++ {
		w, err := r.NewWriter()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	for i := 0; i < n; i++ {
		rd, err := r.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rd.View(); err != nil { // pin slots on every component
			t.Fatal(err)
		}
		rds = append(rds, rd)
	}
	for i, comp := range r.comps {
		// N readers collect every component; each writer collects the
		// other M−1 components.
		if got, want := comp.LiveReaders(), n+m-1; got != want {
			t.Fatalf("component %d live handles = %d, want %d", i, got, want)
		}
	}
	for _, w := range ws {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != register.ErrReaderClosed {
			t.Fatalf("double writer close: %v", err)
		}
	}
	for _, rd := range rds {
		if err := rd.Close(); err != nil {
			t.Fatal(err)
		}
		if err := rd.Close(); err != register.ErrReaderClosed {
			t.Fatalf("double reader close: %v", err)
		}
	}
	for i, comp := range r.comps {
		if got := comp.LiveReaders(); got != 0 {
			t.Fatalf("component %d leaked %d handles after close", i, got)
		}
	}
	if got := r.LiveReaders(); got != 0 {
		t.Fatalf("composite LiveReaders = %d after close", got)
	}
	// The capacity freed by Close is reusable.
	w, err := r.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := r.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]byte("again")); err != nil {
		t.Fatal(err)
	}
	v, err := rd.View()
	if err != nil || string(v) != "again" {
		t.Fatalf("after reopen: %q %v", v, err)
	}
}
