package mnreg

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"arcreg/internal/membuf"
	"arcreg/internal/register"
)

func newReg(t testing.TB, m, n, size int) *Register {
	t.Helper()
	r, err := New(Config{Writers: m, Readers: n, MaxValueSize: size}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Writers: 0, Readers: 1}, Options{}); err == nil {
		t.Error("zero writers accepted")
	}
	if _, err := New(Config{Writers: 1, Readers: 0}, Options{}); err == nil {
		t.Error("zero readers accepted")
	}
	if _, err := New(Config{Writers: 1, Readers: 1, MaxValueSize: 4, Initial: make([]byte, 8)}, Options{}); err == nil {
		t.Error("oversized initial accepted")
	}
}

func TestInitialValue(t *testing.T) {
	r, err := New(Config{Writers: 2, Readers: 1, MaxValueSize: 32, Initial: []byte("genesis")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := r.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	v, err := rd.View()
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "genesis" {
		t.Fatalf("initial = %q", v)
	}
	if rd.LastTag() != (Tag{0, 0}) {
		t.Fatalf("initial tag = %v", rd.LastTag())
	}
}

func TestSingleWriterSequential(t *testing.T) {
	r := newReg(t, 1, 1, 64)
	w, err := r.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := r.NewReader()
	for i := 0; i < 50; i++ {
		val := []byte(fmt.Sprintf("v%02d", i))
		if err := w.Write(val); err != nil {
			t.Fatal(err)
		}
		got, err := rd.View()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("read %q want %q", got, val)
		}
	}
	if rd.LastTag().Seq != 50 {
		t.Fatalf("final seq = %d", rd.LastTag().Seq)
	}
}

// A later writer must outbid earlier writes from OTHER writers: sequence
// numbers are collected across all components.
func TestWritersOutbidEachOther(t *testing.T) {
	r := newReg(t, 2, 1, 64)
	w0, _ := r.NewWriter()
	w1, _ := r.NewWriter()
	rd, _ := r.NewReader()

	if err := w0.Write([]byte("from-w0")); err != nil {
		t.Fatal(err)
	}
	v, _ := rd.View()
	if string(v) != "from-w0" {
		t.Fatalf("read %q", v)
	}
	t0 := rd.LastTag()

	if err := w1.Write([]byte("from-w1")); err != nil {
		t.Fatal(err)
	}
	v, _ = rd.View()
	if string(v) != "from-w1" {
		t.Fatalf("after w1: read %q", v)
	}
	t1 := rd.LastTag()
	if !t0.Less(t1) {
		t.Fatalf("tag did not advance: %v then %v", t0, t1)
	}

	// And back: w0 must outbid w1's tag.
	if err := w0.Write([]byte("w0-again")); err != nil {
		t.Fatal(err)
	}
	v, _ = rd.View()
	if string(v) != "w0-again" {
		t.Fatalf("after w0 again: read %q", v)
	}
	if !t1.Less(rd.LastTag()) {
		t.Fatalf("tag regressed: %v then %v", t1, rd.LastTag())
	}
}

func TestTagOrdering(t *testing.T) {
	cases := []struct {
		a, b Tag
		less bool
	}{
		{Tag{1, 0}, Tag{2, 0}, true},
		{Tag{2, 0}, Tag{1, 0}, false},
		{Tag{1, 0}, Tag{1, 1}, true},
		{Tag{1, 1}, Tag{1, 0}, false},
		{Tag{1, 1}, Tag{1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v", c.a, c.b, got)
		}
	}
}

func TestTagRoundTrip(t *testing.T) {
	buf := make([]byte, tagSize)
	for _, tag := range []Tag{{0, 0}, {1, 2}, {1 << 60, 1 << 30}} {
		putTag(buf, tag)
		if got := getTag(buf); got != tag {
			t.Fatalf("round trip %v -> %v", tag, got)
		}
	}
}

func TestWriterIdentityExhaustionAndRecycle(t *testing.T) {
	r := newReg(t, 2, 1, 16)
	a, _ := r.NewWriter()
	b, _ := r.NewWriter()
	if _, err := r.NewWriter(); err == nil {
		t.Fatal("third writer accepted with M=2")
	}
	aid := a.ID()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := r.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() != aid {
		t.Fatalf("recycled id %d, want %d", c.ID(), aid)
	}
	_ = b
}

func TestReaderCapacity(t *testing.T) {
	r := newReg(t, 1, 1, 16)
	a, err := r.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewReader(); !errors.Is(err, register.ErrTooManyReaders) {
		t.Fatalf("second reader: %v", err)
	}
	a.Close()
	if _, err := r.NewReader(); err != nil {
		t.Fatalf("after close: %v", err)
	}
}

func TestClosedHandles(t *testing.T) {
	r := newReg(t, 1, 1, 16)
	w, _ := r.NewWriter()
	rd, _ := r.NewReader()
	w.Close()
	rd.Close()
	if err := w.Write([]byte("x")); err == nil {
		t.Error("write on closed writer accepted")
	}
	if _, err := rd.View(); err == nil {
		t.Error("view on closed reader accepted")
	}
	if err := w.Close(); err == nil {
		t.Error("double writer close accepted")
	}
	if err := rd.Close(); err == nil {
		t.Error("double reader close accepted")
	}
}

func TestWriteTooLarge(t *testing.T) {
	r := newReg(t, 1, 1, 8)
	w, _ := r.NewWriter()
	if err := w.Write(make([]byte, 9)); !errors.Is(err, register.ErrValueTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadCopy(t *testing.T) {
	r := newReg(t, 1, 1, 32)
	w, _ := r.NewWriter()
	rd, _ := r.NewReader()
	w.Write([]byte("payload"))
	dst := make([]byte, 32)
	n, err := rd.Read(dst)
	if err != nil || string(dst[:n]) != "payload" {
		t.Fatalf("Read: %q %v", dst[:n], err)
	}
	if n, err := rd.Read(make([]byte, 2)); !errors.Is(err, register.ErrBufferTooSmall) || n != 7 {
		t.Fatalf("small dst: %d %v", n, err)
	}
}

// Concurrent torture: M writers and N readers; every read must verify
// (untorn), and per-reader tags must be monotone — the composite analogue
// of the (1,N) atomicity tests.
func TestConcurrentMultiWriterIntegrity(t *testing.T) {
	const (
		writers = 3
		readers = 4
		perW    = 400
		size    = 256
	)
	r := newReg(t, writers, readers, size)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	stop := make(chan struct{})

	for wid := 0; wid < writers; wid++ {
		w, err := r.NewWriter()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w *Writer) {
			defer wg.Done()
			buf := make([]byte, size)
			for i := 0; i < perW; i++ {
				// Version packs (writer, i) so payloads are unique and
				// verifiable.
				membuf.Encode(buf, uint64(w.ID())<<32|uint64(i)+1)
				if err := w.Write(buf); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	var rg sync.WaitGroup
	for rid := 0; rid < readers; rid++ {
		rd, err := r.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		rg.Add(1)
		go func(rd *Reader) {
			defer rg.Done()
			var last Tag
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := rd.View()
				if err != nil {
					errs <- err
					return
				}
				if len(v) == 0 { // initial empty value
					continue
				}
				if _, err := membuf.Verify(v); err != nil {
					errs <- fmt.Errorf("torn composite read: %w", err)
					return
				}
				tag := rd.LastTag()
				if tag.Less(last) {
					errs <- fmt.Errorf("tag regressed: %v after %v", tag, last)
					return
				}
				last = tag
			}
		}(rd)
	}

	wg.Wait()
	close(stop)
	rg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Two sequential reads through different readers must never invert tags:
// reader B, starting after reader A finished, sees a tag ≥ A's.
func TestNoInversionAcrossReaders(t *testing.T) {
	r := newReg(t, 2, 2, 64)
	w0, _ := r.NewWriter()
	w1, _ := r.NewWriter()
	ra, _ := r.NewReader()
	rb, _ := r.NewReader()
	for i := 0; i < 200; i++ {
		w := w0
		if i%2 == 1 {
			w = w1
		}
		if err := w.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := ra.View(); err != nil {
			t.Fatal(err)
		}
		ta := ra.LastTag()
		if _, err := rb.View(); err != nil {
			t.Fatal(err)
		}
		tb := rb.LastTag()
		if tb.Less(ta) {
			t.Fatalf("iteration %d: inversion %v then %v", i, ta, tb)
		}
	}
}
