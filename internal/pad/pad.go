// Package pad provides low-level concurrency plumbing shared by every
// register implementation in this repository: cache-line padding, padded
// atomic counters, bounded spin/backoff loops, and a tiny per-goroutine
// pseudo-random number generator.
//
// The ARC paper (§1, §3.2) stresses that synchronization variables hit by
// RMW instructions must not share cache lines with unrelated data, since a
// contended or split line amplifies the interconnect cost of every RMW.
// The types here make that discipline explicit and reusable.
package pad

import (
	"runtime"
	"sync/atomic"
)

// CacheLineSize is the assumed size, in bytes, of a CPU cache line.
// 64 bytes is correct for every x86-64 and the vast majority of arm64
// parts; using a constant keeps the struct layouts portable and the
// padding arithmetic checkable at compile time.
const CacheLineSize = 64

// CacheLinePad occupies exactly one cache line. Embed it between fields
// that must not false-share.
type CacheLinePad struct{ _ [CacheLineSize]byte }

// PaddedUint64 is an atomic uint64 alone on its own cache line pair.
// The leading and trailing pads ensure the hot word neither shares a line
// with its neighbours nor straddles a line boundary when embedded in a
// slice (the whole struct is a multiple of the line size).
type PaddedUint64 struct {
	_ [CacheLineSize - 8]byte
	v atomic.Uint64
	_ [CacheLineSize]byte
}

// Load atomically loads the value.
func (p *PaddedUint64) Load() uint64 { return p.v.Load() }

// Store atomically stores val.
func (p *PaddedUint64) Store(val uint64) { p.v.Store(val) }

// Add atomically adds delta and returns the new value.
func (p *PaddedUint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// Swap atomically stores val and returns the previous value.
func (p *PaddedUint64) Swap(val uint64) uint64 { return p.v.Swap(val) }

// CompareAndSwap executes the CAS on the padded word.
func (p *PaddedUint64) CompareAndSwap(old, new uint64) bool {
	return p.v.CompareAndSwap(old, new)
}

// Or atomically ORs mask into the word, returning the previous value.
func (p *PaddedUint64) Or(mask uint64) uint64 { return p.v.Or(mask) }

// And atomically ANDs mask into the word, returning the previous value.
func (p *PaddedUint64) And(mask uint64) uint64 { return p.v.And(mask) }

// PaddedInt64 is the signed sibling of PaddedUint64.
type PaddedInt64 struct {
	_ [CacheLineSize - 8]byte
	v atomic.Int64
	_ [CacheLineSize]byte
}

// Load atomically loads the value.
func (p *PaddedInt64) Load() int64 { return p.v.Load() }

// Store atomically stores val.
func (p *PaddedInt64) Store(val int64) { p.v.Store(val) }

// Add atomically adds delta and returns the new value.
func (p *PaddedInt64) Add(delta int64) int64 { return p.v.Add(delta) }

// Swap atomically stores val and returns the previous value.
func (p *PaddedInt64) Swap(val int64) int64 { return p.v.Swap(val) }

// CompareAndSwap executes the CAS on the padded word.
func (p *PaddedInt64) CompareAndSwap(old, new int64) bool {
	return p.v.CompareAndSwap(old, new)
}

// PaddedUint32 is an atomic uint32 alone on its own cache line pair.
// Peterson's algorithm uses one per reader for its READING/WRITING flags.
type PaddedUint32 struct {
	_ [CacheLineSize - 4]byte
	v atomic.Uint32
	_ [CacheLineSize]byte
}

// Load atomically loads the value.
func (p *PaddedUint32) Load() uint32 { return p.v.Load() }

// Store atomically stores val.
func (p *PaddedUint32) Store(val uint32) { p.v.Store(val) }

// Add atomically adds delta and returns the new value.
func (p *PaddedUint32) Add(delta uint32) uint32 { return p.v.Add(delta) }

// CompareAndSwap executes the CAS on the padded word.
func (p *PaddedUint32) CompareAndSwap(old, new uint32) bool {
	return p.v.CompareAndSwap(old, new)
}

// Backoff implements bounded exponential backoff for spin loops. It is a
// value type: declare one per loop, call Wait in the loop body.
//
// The first few waits are busy spins (cheapest when the conflicting
// operation is a handful of instructions, as with the register word CAS);
// after spinLimit rounds it yields the processor so oversubscribed
// configurations (paper Fig. 3) make progress.
type Backoff struct {
	rounds int
}

const (
	backoffSpinLimit = 6  // rounds of pure spinning before yielding
	backoffSpinBase  = 16 // iterations of the first spin round
)

// Wait performs one backoff step: exponentially growing busy spin first,
// runtime yields once the spin budget is exhausted.
func (b *Backoff) Wait() {
	if b.rounds < backoffSpinLimit {
		spin(backoffSpinBase << uint(b.rounds))
		b.rounds++
		return
	}
	runtime.Gosched()
}

// Reset returns the Backoff to its initial (pure spin) state.
func (b *Backoff) Reset() { b.rounds = 0 }

// Rounds reports how many backoff steps have been taken since the last
// Reset; useful in tests asserting bounded step counts.
func (b *Backoff) Rounds() int { return b.rounds }

//go:noinline
func spin(n int) {
	for i := 0; i < n; i++ {
		// The call itself is the pause; noinline stops the compiler
		// from deleting the loop.
	}
}

// XorShift64 is a tiny, allocation-free PRNG (Marsaglia xorshift64*) for
// per-goroutine use in workload generators and the steal simulator, where
// math/rand's locked global source would serialize the very threads whose
// independence we are measuring.
type XorShift64 struct {
	state uint64
}

// NewXorShift64 returns a generator seeded with seed; a zero seed is
// remapped to a fixed odd constant because the all-zero state is a fixed
// point of xorshift.
func NewXorShift64(seed uint64) XorShift64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return XorShift64{state: seed}
}

// Next returns the next 64 pseudo-random bits.
func (x *XorShift64) Next() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545F4914F6CDD1D
}

// Uint32n returns a pseudo-random number in [0, n). n must be > 0.
func (x *XorShift64) Uint32n(n uint32) uint32 {
	// Lemire's multiply-shift reduction: unbiased enough for workload
	// shaping, and much cheaper than a modulo.
	return uint32((uint64(uint32(x.Next())) * uint64(n)) >> 32)
}

// Float64 returns a pseudo-random float in [0, 1).
func (x *XorShift64) Float64() float64 {
	return float64(x.Next()>>11) / float64(1<<53)
}

// SplitMix64 advances a seed through the splitmix64 sequence; used to
// derive independent per-goroutine seeds from a single experiment seed.
func SplitMix64(seed *uint64) uint64 {
	*seed += 0x9E3779B97F4A7C15
	z := *seed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
