package pad

import (
	"sync"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestPaddedUint64Size(t *testing.T) {
	var p PaddedUint64
	if got := unsafe.Sizeof(p); got%CacheLineSize != 0 {
		t.Errorf("PaddedUint64 size %d is not a multiple of the cache line size", got)
	}
	// The hot word must not straddle a line boundary.
	off := unsafe.Offsetof(p.v)
	if off%8 != 0 {
		t.Errorf("atomic word misaligned at offset %d", off)
	}
	if off/CacheLineSize != (off+7)/CacheLineSize {
		t.Errorf("atomic word straddles a cache line at offset %d", off)
	}
}

func TestPaddedUint64SliceElementsOnDistinctLines(t *testing.T) {
	s := make([]PaddedUint64, 4)
	for i := 1; i < len(s); i++ {
		a := uintptr(unsafe.Pointer(&s[i-1].v))
		b := uintptr(unsafe.Pointer(&s[i].v))
		if b-a < CacheLineSize {
			t.Fatalf("adjacent padded words only %d bytes apart", b-a)
		}
	}
}

func TestPaddedUint64Ops(t *testing.T) {
	var p PaddedUint64
	p.Store(41)
	if p.Add(1) != 42 {
		t.Error("Add did not return the new value")
	}
	if p.Swap(7) != 42 {
		t.Error("Swap did not return the previous value")
	}
	if !p.CompareAndSwap(7, 9) || p.Load() != 9 {
		t.Error("CompareAndSwap(7,9) failed")
	}
	if p.CompareAndSwap(7, 11) {
		t.Error("CompareAndSwap succeeded with stale expected value")
	}
	if p.Or(0x30) != 9 || p.Load() != 0x39 {
		t.Error("Or misbehaved")
	}
	if p.And(0x0F) != 0x39 || p.Load() != 0x09 {
		t.Error("And misbehaved")
	}
}

func TestPaddedInt64Ops(t *testing.T) {
	var p PaddedInt64
	p.Store(-5)
	if p.Add(5) != 0 {
		t.Error("Add did not reach zero")
	}
	if p.Swap(3) != 0 {
		t.Error("Swap did not return previous value")
	}
	if !p.CompareAndSwap(3, -3) || p.Load() != -3 {
		t.Error("CompareAndSwap failed")
	}
}

func TestPaddedUint32Ops(t *testing.T) {
	var p PaddedUint32
	p.Store(1)
	if p.Add(2) != 3 {
		t.Error("Add did not return the new value")
	}
	if !p.CompareAndSwap(3, 4) || p.Load() != 4 {
		t.Error("CompareAndSwap failed")
	}
}

// The padded counter must behave exactly like an atomic counter under
// concurrent increments.
func TestPaddedUint64Concurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
	)
	var (
		p  PaddedUint64
		wg sync.WaitGroup
	)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := p.Load(); got != goroutines*perG {
		t.Fatalf("lost updates: %d != %d", got, goroutines*perG)
	}
}

func TestBackoffProgression(t *testing.T) {
	var b Backoff
	for i := 0; i < backoffSpinLimit; i++ {
		if b.Rounds() != i {
			t.Fatalf("rounds = %d before wait %d", b.Rounds(), i)
		}
		b.Wait()
	}
	// Further waits must not grow the spin budget (they yield instead).
	b.Wait()
	b.Wait()
	if b.Rounds() != backoffSpinLimit {
		t.Fatalf("rounds grew past the spin limit: %d", b.Rounds())
	}
	b.Reset()
	if b.Rounds() != 0 {
		t.Fatal("Reset did not clear rounds")
	}
}

func TestXorShiftZeroSeedRemapped(t *testing.T) {
	x := NewXorShift64(0)
	if x.Next() == 0 && x.Next() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestXorShiftDeterministic(t *testing.T) {
	a := NewXorShift64(12345)
	b := NewXorShift64(12345)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

// Property: Uint32n stays within its bound for any seed and bound.
func TestUint32nInRange(t *testing.T) {
	f := func(seed uint64, n uint32) bool {
		if n == 0 {
			n = 1
		}
		x := NewXorShift64(seed)
		for i := 0; i < 32; i++ {
			if x.Uint32n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Float64 stays in [0, 1).
func TestFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		x := NewXorShift64(seed)
		for i := 0; i < 32; i++ {
			v := x.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// SplitMix64 must derive distinct values from sequential calls, and be
// reproducible from the same starting seed.
func TestSplitMix64(t *testing.T) {
	s1 := uint64(99)
	s2 := uint64(99)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		v1 := SplitMix64(&s1)
		v2 := SplitMix64(&s2)
		if v1 != v2 {
			t.Fatal("splitmix not reproducible")
		}
		if seen[v1] {
			t.Fatal("splitmix collision within 64 draws")
		}
		seen[v1] = true
	}
}

func TestXorShiftRoughUniformity(t *testing.T) {
	// Sanity check, not a statistical suite: each of 8 buckets of
	// Uint32n(8) should get a reasonable share of 64k draws.
	x := NewXorShift64(7)
	var buckets [8]int
	const draws = 1 << 16
	for i := 0; i < draws; i++ {
		buckets[x.Uint32n(8)]++
	}
	for i, c := range buckets {
		if c < draws/16 || c > draws/4 {
			t.Errorf("bucket %d wildly off: %d of %d", i, c, draws)
		}
	}
}
