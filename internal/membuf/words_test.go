package membuf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWordsFor(t *testing.T) {
	cases := map[int]int{0: 1, 1: 2, 7: 2, 8: 2, 9: 3, 64: 9}
	for size, want := range cases {
		if got := WordsFor(size); got != want {
			t.Errorf("WordsFor(%d) = %d, want %d", size, got, want)
		}
	}
}

// Property: store/load round-trips any payload.
func TestStoreLoadWordsRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 128 {
			data = data[:128]
		}
		buf := AlignedWords(WordsFor(128))
		StoreWords(buf, data)
		dst := make([]byte, 128)
		n := LoadWords(buf, dst, 128)
		return n == len(data) && bytes.Equal(dst[:n], data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A torn (garbage) length word must be clamped, never indexed out of
// bounds.
func TestLoadWordsClampsGarbageSize(t *testing.T) {
	buf := AlignedWords(WordsFor(32))
	buf[0] = 1 << 40
	dst := make([]byte, 32)
	if n := LoadWords(buf, dst, 32); n != 32 {
		t.Fatalf("clamped size = %d, want 32", n)
	}
}

// Loading into a short destination returns the true length but writes only
// len(dst) bytes.
func TestLoadWordsShortDst(t *testing.T) {
	buf := AlignedWords(WordsFor(64))
	payload := bytes.Repeat([]byte{0xEE}, 20)
	StoreWords(buf, payload)
	dst := make([]byte, 5)
	n := LoadWords(buf, dst, 64)
	if n != 20 {
		t.Fatalf("length = %d, want 20", n)
	}
	if !bytes.Equal(dst, payload[:5]) {
		t.Fatalf("prefix mismatch: %x", dst)
	}
}

// Overwriting with a shorter value must fully mask the longer one.
func TestStoreWordsOverwrite(t *testing.T) {
	buf := AlignedWords(WordsFor(64))
	StoreWords(buf, bytes.Repeat([]byte{0xFF}, 64))
	StoreWords(buf, []byte("tiny"))
	dst := make([]byte, 64)
	n := LoadWords(buf, dst, 64)
	if n != 4 || string(dst[:n]) != "tiny" {
		t.Fatalf("after overwrite: %q (n=%d)", dst[:n], n)
	}
}
