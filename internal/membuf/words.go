package membuf

import (
	"encoding/binary"
	"sync/atomic"
)

// Word-atomic value codec: values stored in []uint64 buffers accessed one
// word at a time with sync/atomic. This is the storage model of the
// classical register constructions (Peterson 1983 and seqlock-style
// designs), which assume only single-word atomic read/write registers:
// multi-word values can tear, and the enclosing protocol is responsible
// for detecting or preventing it. Word-wise atomics keep the
// implementations honest to that model and race-detector-clean.
//
// Layout: word 0 is the value length in bytes; words 1.. hold the data,
// 8 bytes per word, little-endian.

// WordsFor returns the []uint64 buffer length needed for values up to
// size bytes.
func WordsFor(size int) int { return 1 + (size+7)/8 }

// StoreWords writes p into buf with single-word atomic stores. buf must
// have been sized with WordsFor(≥len(p)).
func StoreWords(buf []uint64, p []byte) {
	atomic.StoreUint64(&buf[0], uint64(len(p)))
	i, w := 0, 1
	for ; i+8 <= len(p); i, w = i+8, w+1 {
		atomic.StoreUint64(&buf[w], binary.LittleEndian.Uint64(p[i:i+8]))
	}
	if i < len(p) {
		var tail [8]byte
		copy(tail[:], p[i:])
		atomic.StoreUint64(&buf[w], binary.LittleEndian.Uint64(tail[:]))
	}
}

// LoadWords copies buf's value into dst with single-word atomic loads and
// returns the length it observed, clamped to maxSize (a concurrent write
// can tear the length word along with the data; callers discard the copy
// when their protocol detects interference). At most min(length, len(dst))
// bytes are written to dst.
func LoadWords(buf []uint64, dst []byte, maxSize int) int {
	size := int(atomic.LoadUint64(&buf[0]))
	if size < 0 || size > maxSize {
		size = maxSize
	}
	n := size
	if n > len(dst) {
		n = len(dst)
	}
	i, w := 0, 1
	for ; i+8 <= n; i, w = i+8, w+1 {
		binary.LittleEndian.PutUint64(dst[i:i+8], atomic.LoadUint64(&buf[w]))
	}
	if i < n {
		var tail [8]byte
		binary.LittleEndian.PutUint64(tail[:], atomic.LoadUint64(&buf[w]))
		copy(dst[i:n], tail[:n-i])
	}
	return size
}
