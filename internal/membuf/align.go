package membuf

import "unsafe"

// addressOf returns the address of the first element of a non-empty byte
// slice's backing array as an integer, for alignment arithmetic only.
func addressOf(b []byte) uintptr {
	if len(b) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&b[0]))
}

// wordAddressOf is addressOf for word slices.
func wordAddressOf(w []uint64) uintptr {
	if len(w) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&w[0]))
}
