// Package membuf supplies the buffer substrate shared by all register
// implementations: cache-line-aligned buffer allocation (the paper
// pre-allocates all N+2 slot buffers with mmap; we pre-allocate slices once
// at register construction) and a versioned payload codec.
//
// The codec is the workhorse of the correctness harness. Every test write
// encodes a monotonically increasing version into the payload, redundantly
// (head marker, tail marker, and a deterministic body fill derived from the
// version). A reader that observes a *torn* value — bytes from two
// different writes — cannot produce a payload that verifies, so Verify
// doubles as an executable test of the paper's Lemma 4.2 ("no reader reads
// a slot being written").
package membuf

import (
	"encoding/binary"
	"errors"
	"fmt"

	"arcreg/internal/pad"
)

// Alignment is the byte alignment of buffers returned by Aligned. One
// cache line keeps slot buffers from false-sharing with their neighbours'
// tails.
const Alignment = pad.CacheLineSize

// Aligned returns a byte slice of the given length whose first element is
// aligned to Alignment bytes. The slice does not share its backing array
// cache lines with any other allocation made through this function.
func Aligned(size int) []byte {
	if size < 0 {
		panic("membuf: negative buffer size")
	}
	raw := make([]byte, size+Alignment)
	off := 0
	if rem := addressOf(raw) % Alignment; rem != 0 {
		off = Alignment - int(rem)
	}
	return raw[off : off+size : off+size]
}

// AlignedWords returns a uint64 slice of the given word count, cache-line
// aligned. Peterson's algorithm models its buffers as arrays of single-word
// atomic registers; this is their storage.
func AlignedWords(words int) []uint64 {
	if words < 0 {
		panic("membuf: negative word count")
	}
	raw := make([]uint64, words+Alignment/8)
	off := 0
	if rem := wordAddressOf(raw) % Alignment; rem != 0 {
		off = (Alignment - int(rem)) / 8
	}
	return raw[off : off+words : off+words]
}

// Matrix allocates n independent aligned buffers of size bytes each —
// the register slot arrays.
func Matrix(n, size int) [][]byte {
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = Aligned(size)
	}
	return bufs
}

// WordMatrix allocates n independent aligned word buffers.
func WordMatrix(n, words int) [][]uint64 {
	bufs := make([][]uint64, n)
	for i := range bufs {
		bufs[i] = AlignedWords(words)
	}
	return bufs
}

// ---------------------------------------------------------------------------
// Versioned payload codec
// ---------------------------------------------------------------------------

// HeaderSize is the number of bytes of payload overhead added by Encode:
// an 8-byte head version, an 8-byte declared length, and an 8-byte tail
// version.
const HeaderSize = 24

// MinPayload is the smallest payload Encode can produce.
const MinPayload = HeaderSize

// ErrTorn reports a payload whose redundant markers disagree — the
// signature of a torn (non-atomic) read.
var ErrTorn = errors.New("membuf: torn payload")

// ErrShort reports a payload too small to carry the codec header.
var ErrShort = errors.New("membuf: payload shorter than codec header")

// Encode writes a verifiable payload for version into dst and returns dst.
// The entire slice participates: head marker, declared length, body fill
// derived from the version, tail marker. len(dst) must be ≥ MinPayload.
func Encode(dst []byte, version uint64) []byte {
	if len(dst) < MinPayload {
		panic(fmt.Sprintf("membuf: Encode into %d bytes; need at least %d", len(dst), MinPayload))
	}
	binary.LittleEndian.PutUint64(dst[0:8], version)
	binary.LittleEndian.PutUint64(dst[8:16], uint64(len(dst)))
	fillBody(dst[16:len(dst)-8], version)
	binary.LittleEndian.PutUint64(dst[len(dst)-8:], version)
	return dst
}

// Version extracts the head version marker without verifying the payload.
func Version(p []byte) uint64 {
	if len(p) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(p[0:8])
}

// Verify checks the full payload invariant and returns the version it
// carries. It fails with ErrTorn if the head and tail markers disagree, if
// the declared length does not match, or if any body byte deviates from
// the deterministic fill — i.e. whenever the payload mixes bytes from two
// different writes.
func Verify(p []byte) (uint64, error) {
	if len(p) < MinPayload {
		return 0, ErrShort
	}
	head := binary.LittleEndian.Uint64(p[0:8])
	declared := binary.LittleEndian.Uint64(p[8:16])
	tail := binary.LittleEndian.Uint64(p[len(p)-8:])
	if head != tail {
		return head, fmt.Errorf("%w: head version %d, tail version %d", ErrTorn, head, tail)
	}
	if declared != uint64(len(p)) {
		return head, fmt.Errorf("%w: declared length %d, actual %d", ErrTorn, declared, len(p))
	}
	if err := verifyBody(p[16:len(p)-8], head); err != nil {
		return head, err
	}
	return head, nil
}

// VerifyQuick checks only the head and tail markers (O(1)). The
// throughput harness uses it in processing mode where a full-body scan is
// the measured work and is performed separately.
func VerifyQuick(p []byte) (uint64, error) {
	if len(p) < MinPayload {
		return 0, ErrShort
	}
	head := binary.LittleEndian.Uint64(p[0:8])
	tail := binary.LittleEndian.Uint64(p[len(p)-8:])
	if head != tail {
		return head, fmt.Errorf("%w: head version %d, tail version %d", ErrTorn, head, tail)
	}
	return head, nil
}

// fillBody writes the deterministic body fill for version: a xorshift
// stream seeded by the version, emitted 8 bytes at a time with a byte-wise
// tail. Body fills for distinct versions differ in essentially every word,
// making mixed-version bodies detectable.
func fillBody(body []byte, version uint64) {
	rng := pad.NewXorShift64(version*2654435761 + 1)
	i := 0
	for ; i+8 <= len(body); i += 8 {
		binary.LittleEndian.PutUint64(body[i:i+8], rng.Next())
	}
	if i < len(body) {
		w := rng.Next()
		for ; i < len(body); i++ {
			body[i] = byte(w)
			w >>= 8
		}
	}
}

// verifyBody re-derives the fill and compares.
func verifyBody(body []byte, version uint64) error {
	rng := pad.NewXorShift64(version*2654435761 + 1)
	i := 0
	for ; i+8 <= len(body); i += 8 {
		if binary.LittleEndian.Uint64(body[i:i+8]) != rng.Next() {
			return fmt.Errorf("%w: body corrupt at offset %d (version %d)", ErrTorn, 16+i, version)
		}
	}
	if i < len(body) {
		w := rng.Next()
		for ; i < len(body); i++ {
			if body[i] != byte(w) {
				return fmt.Errorf("%w: body corrupt at tail offset %d (version %d)", ErrTorn, 16+i, version)
			}
			w >>= 8
		}
	}
	return nil
}

// Checksum computes a cheap 64-bit FNV-1a digest of p. The workload
// generator's processing mode uses it as the "read scans the whole buffer"
// step from §5 of the paper, with a data dependency the compiler cannot
// elide.
func Checksum(p []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
