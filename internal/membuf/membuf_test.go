package membuf

import (
	"errors"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestAlignedAlignment(t *testing.T) {
	for _, size := range []int{0, 1, 7, 8, 63, 64, 65, 4096, 131072} {
		b := Aligned(size)
		if len(b) != size {
			t.Fatalf("Aligned(%d) returned length %d", size, len(b))
		}
		if cap(b) != size {
			t.Fatalf("Aligned(%d) returned capacity %d; want exactly %d to prevent overrun aliasing", size, cap(b), size)
		}
		if size > 0 {
			if addr := uintptr(unsafe.Pointer(&b[0])); addr%Alignment != 0 {
				t.Fatalf("Aligned(%d) misaligned: %#x", size, addr)
			}
		}
	}
}

func TestAlignedWordsAlignment(t *testing.T) {
	for _, words := range []int{0, 1, 8, 512, 16384} {
		w := AlignedWords(words)
		if len(w) != words {
			t.Fatalf("AlignedWords(%d) returned length %d", words, len(w))
		}
		if words > 0 {
			if addr := uintptr(unsafe.Pointer(&w[0])); addr%Alignment != 0 {
				t.Fatalf("AlignedWords(%d) misaligned: %#x", words, addr)
			}
		}
	}
}

func TestAlignedNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Aligned(-1) did not panic")
		}
	}()
	Aligned(-1)
}

func TestMatrixIndependence(t *testing.T) {
	m := Matrix(4, 64)
	if len(m) != 4 {
		t.Fatalf("Matrix returned %d buffers", len(m))
	}
	for i := range m {
		for j := range m[i] {
			m[i][j] = byte(i + 1)
		}
	}
	for i := range m {
		for j := range m[i] {
			if m[i][j] != byte(i+1) {
				t.Fatalf("buffer %d aliased another buffer", i)
			}
		}
	}
}

func TestWordMatrix(t *testing.T) {
	m := WordMatrix(3, 16)
	if len(m) != 3 {
		t.Fatalf("WordMatrix returned %d buffers", len(m))
	}
	for i := range m {
		if len(m[i]) != 16 {
			t.Fatalf("buffer %d has %d words", i, len(m[i]))
		}
		m[i][0] = uint64(i + 100)
	}
	for i := range m {
		if m[i][0] != uint64(i+100) {
			t.Fatal("word buffers alias")
		}
	}
}

func TestEncodeVerifyRoundTrip(t *testing.T) {
	for _, size := range []int{MinPayload, 25, 31, 32, 100, 4096} {
		buf := make([]byte, size)
		Encode(buf, 42)
		v, err := Verify(buf)
		if err != nil {
			t.Fatalf("size %d: Verify failed: %v", size, err)
		}
		if v != 42 {
			t.Fatalf("size %d: version = %d, want 42", size, v)
		}
		if Version(buf) != 42 {
			t.Fatalf("size %d: Version() = %d, want 42", size, Version(buf))
		}
	}
}

// Property: encode/verify round-trips for arbitrary versions and sizes.
func TestEncodeVerifyQuick(t *testing.T) {
	f := func(version uint64, sizeSeed uint16) bool {
		size := MinPayload + int(sizeSeed)%2048
		buf := make([]byte, size)
		Encode(buf, version)
		v, err := Verify(buf)
		if err != nil || v != version {
			return false
		}
		qv, qerr := VerifyQuick(buf)
		return qerr == nil && qv == version
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a payload spliced from two different versions NEVER verifies —
// this is the torn-read detector the linearizability harness depends on.
func TestSplicedPayloadDetected(t *testing.T) {
	f := func(v1, v2 uint64, cutSeed uint16) bool {
		if v1 == v2 {
			v2 = v1 + 1
		}
		const size = 256
		a := make([]byte, size)
		b := make([]byte, size)
		Encode(a, v1)
		Encode(b, v2)
		cut := 1 + int(cutSeed)%(size-2) // at least one byte from each
		spliced := make([]byte, size)
		copy(spliced, a[:cut])
		copy(spliced[cut:], b[cut:])
		_, err := Verify(spliced)
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsSingleFlip(t *testing.T) {
	const size = 128
	buf := make([]byte, size)
	Encode(buf, 7)
	for pos := 0; pos < size; pos++ {
		buf[pos] ^= 0x80
		if _, err := Verify(buf); err == nil {
			t.Fatalf("flip at byte %d went undetected", pos)
		}
		buf[pos] ^= 0x80
	}
	if _, err := Verify(buf); err != nil {
		t.Fatalf("restored payload no longer verifies: %v", err)
	}
}

func TestVerifyShort(t *testing.T) {
	if _, err := Verify(make([]byte, MinPayload-1)); !errors.Is(err, ErrShort) {
		t.Fatalf("want ErrShort, got %v", err)
	}
	if _, err := VerifyQuick(make([]byte, 8)); !errors.Is(err, ErrShort) {
		t.Fatalf("want ErrShort, got %v", err)
	}
}

func TestVerifyTornIsErrTorn(t *testing.T) {
	buf := make([]byte, 64)
	Encode(buf, 3)
	buf[len(buf)-1]++ // corrupt the tail marker
	if _, err := Verify(buf); !errors.Is(err, ErrTorn) {
		t.Fatalf("want ErrTorn, got %v", err)
	}
	if _, err := VerifyQuick(buf); !errors.Is(err, ErrTorn) {
		t.Fatalf("VerifyQuick: want ErrTorn, got %v", err)
	}
}

func TestEncodeTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode into a tiny buffer did not panic")
		}
	}()
	Encode(make([]byte, MinPayload-1), 1)
}

func TestChecksumStability(t *testing.T) {
	a := []byte("the quick brown fox")
	if Checksum(a) != Checksum(a) {
		t.Fatal("checksum not deterministic")
	}
	b := []byte("the quick brown foy")
	if Checksum(a) == Checksum(b) {
		t.Fatal("checksum failed to distinguish near-identical inputs")
	}
	if Checksum(nil) != 14695981039346656037 {
		t.Fatal("empty checksum is not the FNV offset basis")
	}
}

// Distinct versions must produce distinct body fills (probabilistically
// certain; deterministically true for these seeds).
func TestDistinctVersionsDistinctBodies(t *testing.T) {
	a := make([]byte, 64)
	b := make([]byte, 64)
	Encode(a, 1)
	Encode(b, 2)
	same := 0
	for i := 16; i < 56; i++ {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("bodies of versions 1 and 2 agree on %d/40 bytes; fill not version-dependent", same)
	}
}

func BenchmarkEncode4KB(b *testing.B) {
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Encode(buf, uint64(i))
	}
}

func BenchmarkVerify4KB(b *testing.B) {
	buf := make([]byte, 4096)
	Encode(buf, 1)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if _, err := Verify(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksum4KB(b *testing.B) {
	buf := make([]byte, 4096)
	Encode(buf, 1)
	b.SetBytes(4096)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Checksum(buf)
	}
	_ = sink
}
