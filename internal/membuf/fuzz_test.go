package membuf

import (
	"bytes"
	"testing"
)

// FuzzVerify: Verify must never panic and never mistake arbitrary bytes
// for a valid payload unless they ARE one (self-consistency: re-encoding
// the extracted version over the same length must reproduce the input).
func FuzzVerify(f *testing.F) {
	seed := make([]byte, 64)
	Encode(seed, 42)
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, MinPayload))
	f.Add(bytes.Repeat([]byte{0xFF}, 128))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Verify(data)
		if err != nil {
			return
		}
		// Accepted ⇒ byte-identical to a fresh encoding of that version.
		redo := make([]byte, len(data))
		Encode(redo, v)
		if !bytes.Equal(redo, data) {
			t.Fatalf("Verify accepted a non-canonical payload (version %d)", v)
		}
	})
}

// FuzzEncodeVerify: every encoding round-trips, at every size ≥ MinPayload.
func FuzzEncodeVerify(f *testing.F) {
	f.Add(uint64(0), uint16(0))
	f.Add(uint64(1<<63), uint16(999))
	f.Fuzz(func(t *testing.T, version uint64, sizeSeed uint16) {
		size := MinPayload + int(sizeSeed)%4096
		buf := make([]byte, size)
		Encode(buf, version)
		v, err := Verify(buf)
		if err != nil || v != version {
			t.Fatalf("round trip failed: v=%d err=%v", v, err)
		}
	})
}

// FuzzLoadWords: arbitrary word-buffer contents (including garbage length
// words) must never cause a panic or out-of-bounds write.
func FuzzLoadWords(f *testing.F) {
	f.Add(uint64(0), []byte("payload"))
	f.Add(uint64(1<<40), []byte{})
	f.Fuzz(func(t *testing.T, lenWord uint64, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		buf := AlignedWords(WordsFor(256))
		StoreWords(buf, data)
		buf[0] = lenWord // simulate a torn length word
		dst := make([]byte, 64)
		n := LoadWords(buf, dst, 256)
		if n < 0 || n > 256 {
			t.Fatalf("LoadWords returned %d outside [0,256]", n)
		}
	})
}
